package mvptree

import (
	"io"

	"mvptree/internal/dynamic"
	"mvptree/internal/metric"
)

// DynamicStore is a mutable similarity index: an mvp-tree plus an
// overflow buffer and tombstones, rebuilt when updates accumulate. It
// addresses the open problem the paper closes with (§6) — insertions
// and deletions without unbalancing the tree — at amortized O(log n)
// distance computations per update. See internal/dynamic for the
// scheme's details.
type DynamicStore[T any] = dynamic.Store[T]

// DynamicOptions configure a DynamicStore.
type DynamicOptions = dynamic.Options

// NewDynamic builds a dynamic store over the initial items. WithObserver
// and WithTracer attach telemetry; WithCounter is ignored — the store
// owns an internal counter over its ID space (read it via
// DistanceCount).
func NewDynamic[T any](items []T, dist DistanceFunc[T], opts DynamicOptions, ixOpts ...IndexOption[T]) (*DynamicStore[T], error) {
	cfg := resolveIndexConfig(dist, ixOpts)
	s, err := dynamic.New(items, metric.DistanceFunc[T](dist), opts)
	if err != nil {
		return nil, err
	}
	cfg.install(s)
	return s, nil
}

// SaveDynamic compacts the store (a rebuild: tombstones dropped, the
// overflow buffer folded into the tree) and writes it to w.
func SaveDynamic[T any](w io.Writer, s *DynamicStore[T], enc ItemEncoder[T]) error {
	return s.Save(w, dynamic.ItemEncoder[T](enc))
}

// LoadDynamic reads a store written by SaveDynamic; dist must be the
// metric it was built with.
func LoadDynamic[T any](r io.Reader, dist DistanceFunc[T], dec ItemDecoder[T]) (*DynamicStore[T], error) {
	return dynamic.Load(r, metric.DistanceFunc[T](dist), dynamic.ItemDecoder[T](dec))
}
