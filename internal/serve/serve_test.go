package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvptree/internal/codec"
	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/shard"
)

const testDim = 6

func testIndex(t *testing.T, n int, seed uint64) (*mvp.Tree[[]float64], [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1))
	items := dataset.UniformVectors(rng, n, testDim)
	tree, err := mvp.New(items, metric.NewCounter(metric.L2), mvp.Options{Partitions: 2, LeafCapacity: 16, PathLength: 4, Build: mvp.Build{Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return tree, items
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

type rangeResponse struct {
	Results [][]float64 `json:"results"`
	Count   int         `json:"count"`
}

type knnResponse struct {
	Neighbors []struct {
		Item []float64 `json:"item"`
		Dist float64   `json:"dist"`
	} `json:"neighbors"`
	Count int `json:"count"`
}

// Concurrent HTTP range and kNN traffic — with mixed radii and k values
// forcing per-parameter batch groups — answers byte-identically to the
// index queried directly.
func TestServeMatchesDirectQueries(t *testing.T) {
	tree, _ := testIndex(t, 800, 11)
	s := New[[]float64](tree, VectorCodec(testDim), Options{MaxBatch: 8, MaxWait: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewPCG(12, 1))
	queries := dataset.UniformVectors(rng, 24, testDim)
	radii := []float64{0.3, 0.55}
	ks := []int{1, 5}

	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for _, q := range queries {
		for _, r := range radii {
			wg.Add(1)
			go func(q []float64, r float64) {
				defer wg.Done()
				resp, body := postJSON(t, ts.Client(), ts.URL+"/range", map[string]any{"query": q, "r": r})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("range status %d: %s", resp.StatusCode, body)
					return
				}
				var got rangeResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err
					return
				}
				want := tree.Range(q, r)
				if got.Count != len(want) || !reflect.DeepEqual(append([][]float64{}, want...), append([][]float64{}, got.Results...)) {
					errs <- fmt.Errorf("range(%v, %g): got %d results, want %d (or order differs)", q, r, got.Count, len(want))
				}
			}(q, r)
		}
		for _, k := range ks {
			wg.Add(1)
			go func(q []float64, k int) {
				defer wg.Done()
				resp, body := postJSON(t, ts.Client(), ts.URL+"/knn", map[string]any{"query": q, "k": k})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("knn status %d: %s", resp.StatusCode, body)
					return
				}
				var got knnResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err
					return
				}
				want := tree.KNN(q, k)
				if got.Count != len(want) {
					errs <- fmt.Errorf("knn(%v, %d): %d neighbors, want %d", q, k, got.Count, len(want))
					return
				}
				for i := range want {
					if got.Neighbors[i].Dist != want[i].Dist || !reflect.DeepEqual(got.Neighbors[i].Item, want[i].Item) {
						errs <- fmt.Errorf("knn(%v, %d): neighbor %d differs", q, k, i)
						return
					}
				}
			}(q, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The traffic actually went through batches, and /stats adds up.
	st := s.Stats()
	if st.Range.Queries != int64(len(queries)*len(radii)) || st.KNN.Queries != int64(len(queries)*len(ks)) {
		t.Fatalf("stats queries %d/%d, want %d/%d", st.Range.Queries, st.KNN.Queries, len(queries)*len(radii), len(queries)*len(ks))
	}
	if st.Obs.Queries != st.Range.Queries+st.KNN.Queries {
		t.Fatalf("observer saw %d queries, counters say %d", st.Obs.Queries, st.Range.Queries+st.KNN.Queries)
	}
}

// Malformed requests are rejected at the door with 400s, never reaching
// the metric (where a dimension mismatch would panic).
func TestServeRejectsBadRequests(t *testing.T) {
	tree, _ := testIndex(t, 100, 13)
	s := New[[]float64](tree, VectorCodec(testDim), Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		body string
	}{
		{"/range", `{"query": [0.1, 0.2], "r": 0.5}`},            // wrong dim
		{"/range", `{"query": [0.1,0.2,0.3,0.4,0.5,0.6]}`},       // missing r
		{"/range", `{"query": "nope", "r": 0.5}`},                // not a vector
		{"/range", `{"query": [0.1,0.2,0.3,0.4,0.5,0.6], "r": -1}`},
		{"/knn", `{"query": [0.1,0.2,0.3,0.4,0.5,0.6], "k": 0}`},
		{"/knn", `{"query": [], "k": 3}`},
		{"/knn", `not json`},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

// blockingIndex parks every range query on a gate, signalling entry, so
// the admission queue can be filled deterministically.
type blockingIndex struct {
	index.StatsIndex[[]float64]
	entered chan struct{}
	gate    chan struct{}
}

func (b *blockingIndex) RangeWithStats(q []float64, r float64) ([][]float64, index.SearchStats) {
	b.entered <- struct{}{}
	<-b.gate
	return b.StatsIndex.RangeWithStats(q, r)
}

// When the bounded queue is full the server sheds load: 503 with a
// Retry-After hint, immediately, without growing any queue.
func TestServeBackpressure(t *testing.T) {
	tree, _ := testIndex(t, 200, 17)
	blocked := &blockingIndex{StatsIndex: tree, entered: make(chan struct{}, 16), gate: make(chan struct{})}
	s := New[[]float64](blocked, VectorCodec(testDim), Options{MaxBatch: 1, Queue: 1, MaxWait: time.Millisecond, Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	q := make([]float64, testDim)
	body := map[string]any{"query": q, "r": 0.4}

	type result struct {
		status int
		retry  string
	}
	results := make(chan result, 3)
	fire := func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/range", body)
		results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	// First request: collected into an executing batch, parked on the
	// gate. Second: sits in the queue (capacity 1). Third: must bounce.
	go fire()
	<-blocked.entered // batch 1 is executing
	go fire()
	// The queue now holds request 2 (the collector is parked inside
	// request 1). Request 3 finds it full.
	waitFor(t, time.Second, func() bool { return s.rangeB.queueDepth() == 1 })
	go fire()
	first := <-results
	if first.status != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", first.status)
	}
	if first.retry == "" {
		t.Fatalf("503 without Retry-After")
	}

	// Release the gate: the two admitted requests complete.
	close(blocked.gate)
	for i := 0; i < 2; i++ {
		select {
		case <-blocked.entered:
		case <-time.After(2 * time.Second):
		}
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("admitted request: status %d, want 200", r.status)
		}
	}
	if st := s.Stats(); st.Range.Rejected != 1 || st.Range.Admitted != 2 {
		t.Fatalf("stats: admitted %d rejected %d, want 2/1", st.Range.Admitted, st.Range.Rejected)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

// saveSnapshot builds a sharded index over items and commits it to dir.
func saveSnapshot(t *testing.T, dir string, items [][]float64, shards int) *shard.Index[[]float64] {
	t.Helper()
	be := shard.MVP[[]float64](mvp.Options{Partitions: 2, LeafCapacity: 16, PathLength: 4})
	x, err := shard.New(items, metric.NewCounter(metric.L2), be, shard.Options{Shards: shards, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.SaveDir(dir, be, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	return x
}

// The headline guarantee: reloading the snapshot under concurrent
// traffic swaps the index live with zero failed requests, and every
// response — before, during and after the swaps — is exactly correct.
func TestReloadUnderLoadZeroFailures(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 1))
	items := dataset.UniformVectors(rng, 600, testDim)
	dir := filepath.Join(t.TempDir(), "snap")
	direct := saveSnapshot(t, dir, items, 3)

	be := shard.MVP[[]float64](mvp.Options{Partitions: 2, LeafCapacity: 16, PathLength: 4})
	loaded, err := shard.LoadDir(dir, metric.NewCounter(metric.L2), be, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	s := New[[]float64](loaded, VectorCodec(testDim), Options{MaxBatch: 8, MaxWait: time.Millisecond})
	defer s.Close()
	s.SetReloader(func() (index.StatsIndex[[]float64], error) {
		return shard.LoadDir(dir, metric.NewCounter(metric.L2), be, codec.DecodeVector)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := dataset.UniformVectors(rng, 8, testDim)
	const radius = 0.5
	want := make([][][]float64, len(queries))
	for i, q := range queries {
		want[i] = direct.Range(q, radius)
	}

	const clients = 4
	const perClient = 100
	var failures atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				qi := (c + i) % len(queries)
				resp, body := postJSON(t, ts.Client(), ts.URL+"/range", map[string]any{"query": queries[qi], "r": radius})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, body)
					failures.Add(1)
					continue
				}
				var got rangeResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Errorf("client %d req %d: %v", c, i, err)
					failures.Add(1)
					continue
				}
				if !reflect.DeepEqual(append([][]float64{}, want[qi]...), append([][]float64{}, got.Results...)) {
					t.Errorf("client %d req %d: wrong results", c, i)
					failures.Add(1)
				}
			}
		}(c)
	}

	// Reload repeatedly while the clients hammer away.
	const reloads = 5
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			resp, body := postJSON(t, ts.Client(), ts.URL+"/admin/reload", map[string]any{})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: status %d: %s", i, resp.StatusCode, body)
			}
		}
	}()
	wg.Wait()
	close(stop)

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests across the reloads", n)
	}
	st := s.Stats()
	if st.Swaps != reloads {
		t.Fatalf("swaps = %d, want %d", st.Swaps, reloads)
	}
	if st.Range.Queries != clients*perClient {
		t.Fatalf("served %d queries, want %d", st.Range.Queries, clients*perClient)
	}
}

// A failing reload must leave the old index serving and report 500.
func TestReloadFailureKeepsServing(t *testing.T) {
	tree, _ := testIndex(t, 300, 29)
	s := New[[]float64](tree, VectorCodec(testDim), Options{})
	defer s.Close()
	s.SetReloader(func() (index.StatsIndex[[]float64], error) {
		return nil, fmt.Errorf("synthetic corruption")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/admin/reload", map[string]any{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload status %d, want 500 (%s)", resp.StatusCode, body)
	}
	q := make([]float64, testDim)
	for i := range q {
		q[i] = 0.4
	}
	r2, body := postJSON(t, ts.Client(), ts.URL+"/range", map[string]any{"query": q, "r": 0.5})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("query after failed reload: status %d (%s)", r2.StatusCode, body)
	}
	if st := s.Stats(); st.Swaps != 0 {
		t.Fatalf("swaps = %d after failed reload, want 0", st.Swaps)
	}
}

// One cancelled client must not abort its batch-mates: requests
// co-batched with it still get full, correct answers. Only when every
// member of a batch is gone does the merged context cancel the run.
func TestCancellationPassthrough(t *testing.T) {
	tree, _ := testIndex(t, 400, 31)
	// A long window so the cancelled and surviving requests land in one
	// batch deterministically.
	s := New[[]float64](tree, VectorCodec(testDim), Options{MaxBatch: 4, MaxWait: 150 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewPCG(37, 1))
	qs := dataset.UniformVectors(rng, 2, testDim)

	ctx, cancel := context.WithCancel(context.Background())
	raw, _ := json.Marshal(map[string]any{"query": qs[0], "r": 0.5})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/range", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	doomed := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		doomed <- err
	}()
	// Give the doomed request time to enter the batch window, then add
	// the survivor and cancel the first client.
	waitFor(t, time.Second, func() bool { return s.rangeB.queueDepth() == 0 && s.Stats().Range.Admitted >= 1 })
	survivor := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/range", map[string]any{"query": qs[1], "r": 0.5})
		survivor <- struct {
			status int
			body   []byte
		}{resp.StatusCode, body}
	}()
	waitFor(t, time.Second, func() bool { return s.Stats().Range.Admitted >= 2 })
	cancel()
	if err := <-doomed; err == nil {
		t.Fatalf("cancelled request returned without error")
	}

	got := <-survivor
	if got.status != http.StatusOK {
		t.Fatalf("survivor status %d: %s", got.status, got.body)
	}
	var parsed rangeResponse
	if err := json.Unmarshal(got.body, &parsed); err != nil {
		t.Fatal(err)
	}
	want := tree.Range(qs[1], 0.5)
	if !reflect.DeepEqual(append([][]float64{}, want...), append([][]float64{}, parsed.Results...)) {
		t.Fatalf("survivor got wrong results")
	}
}

// After Close the server refuses new work with 503 instead of hanging
// or panicking, and closing twice is safe.
func TestCloseRefusesNewWork(t *testing.T) {
	tree, _ := testIndex(t, 100, 41)
	s := New[[]float64](tree, VectorCodec(testDim), Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	s.Close()
	q := make([]float64, testDim)
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/range", map[string]any{"query": q, "r": 0.2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close status %d, want 503", resp.StatusCode)
	}
}
