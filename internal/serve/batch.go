package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"mvptree/internal/index"
	"mvptree/internal/qexec"
)

// Micro-batching admission path. Each endpoint owns one batcher: a
// bounded queue of pending requests drained by a single collector
// goroutine that groups what it finds into batches for the qexec
// worker-pool executor. The design keeps the goroutine budget fixed —
// one collector per endpoint plus the executor's bounded pool per
// in-flight batch — no matter how many clients connect:
//
//   - Admission is a non-blocking send into the bounded queue. A full
//     queue rejects immediately (the HTTP layer turns that into
//     503 + Retry-After), so overload sheds at the door instead of
//     accumulating goroutines and memory.
//
//   - The collector takes the first waiting request, then keeps
//     collecting until the batch is full or the batching window
//     expires. Under load, batches fill instantly and the window never
//     costs latency; when idle, a lone request pays at most the window.
//
//   - One executed batch serves many HTTP requests: requests are
//     grouped by identical parameter (radius or k) and answered by one
//     qexec.RunRange/RunKNN call over the swap's current index.
//
// Cancellation passes through: each request carries its own context,
// and a batch runs under a context that cancels only when every member
// request has been cancelled — one impatient client cannot abort its
// batch-mates. After a cancelled run the executor's AnsweredMask says
// exactly which slots hold real answers; unanswered members get an
// error reply instead of a fabricated empty result.

// ErrQueueFull is the admission rejection: the endpoint's bounded queue
// had no room. The HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("serve: query queue full")

// ErrShuttingDown rejects requests that raced into the queue while the
// server was stopping.
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrCancelled replies to a request whose batch slot was never answered
// because every member of the batch had been cancelled.
var ErrCancelled = errors.New("serve: request cancelled before execution")

// groupKey identifies requests that may share one executor call: the
// query parameter (radius or k) plus the approximation knobs. Two
// requests batch together only when the whole key matches — an exact
// query is never answered by a budgeted batch or vice versa.
type groupKey struct {
	param   float64
	epsilon float64
	budget  int64
}

// pending is one admitted request waiting for its batch.
type pending[T, R any] struct {
	ctx   context.Context
	query T
	// key is the batch-grouping key: the radius for range queries,
	// float64(k) for kNN, plus the request's approximation knobs.
	key groupKey
	// done receives exactly one reply; buffered so the collector never
	// blocks on a handler that stopped listening.
	done chan reply[R]
}

// reply is the batcher's answer to one pending request.
type reply[R any] struct {
	result R
	// exhausted reports that the answer was cut short by the request's
	// distance budget (always false for exact requests).
	exhausted bool
	err       error
}

// batchStats are the batcher's own counters, read by the stats
// endpoint. All fields are atomics; reads are approximate snapshots.
type batchStats struct {
	admitted  atomic.Int64 // requests accepted into the queue
	rejected  atomic.Int64 // requests refused: queue full
	cancelled atomic.Int64 // admitted requests whose slot went unanswered
	batches   atomic.Int64 // executed batches
	grouped   atomic.Int64 // executed per-parameter groups
	queries   atomic.Int64 // queries answered through batches
}

// batcher is one endpoint's admission queue plus collector.
type batcher[T, R any] struct {
	queue chan *pending[T, R]
	stop  chan struct{}
	done  chan struct{}

	swap     *Swap[T]
	maxBatch int
	maxWait  time.Duration
	exec     func(idx index.StatsIndex[T], queries []T, param float64, opts qexec.Options) ([]R, qexec.Stats, error)
	execOpts func() qexec.Options

	stats batchStats
}

func newBatcher[T, R any](swap *Swap[T], queueCap, maxBatch int, maxWait time.Duration,
	execOpts func() qexec.Options,
	exec func(idx index.StatsIndex[T], queries []T, param float64, opts qexec.Options) ([]R, qexec.Stats, error)) *batcher[T, R] {
	b := &batcher[T, R]{
		queue:    make(chan *pending[T, R], queueCap),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		swap:     swap,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		exec:     exec,
		execOpts: execOpts,
	}
	go b.loop()
	return b
}

// submit admits one request, or rejects it immediately when the queue
// is full. The returned channel yields exactly one reply.
func (b *batcher[T, R]) submit(ctx context.Context, query T, key groupKey) (<-chan reply[R], error) {
	p := &pending[T, R]{ctx: ctx, query: query, key: key, done: make(chan reply[R], 1)}
	select {
	case b.queue <- p:
		b.stats.admitted.Add(1)
		return p.done, nil
	default:
		b.stats.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// close stops the collector and waits for it: the in-flight batch
// finishes, then everything still queued is refused.
func (b *batcher[T, R]) close() {
	close(b.stop)
	<-b.done
}

func (b *batcher[T, R]) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			b.refuseQueued()
			return
		case first := <-b.queue:
			batch := append(make([]*pending[T, R], 0, b.maxBatch), first)
			timer := time.NewTimer(b.maxWait)
		collect:
			for len(batch) < b.maxBatch {
				select {
				case p := <-b.queue:
					batch = append(batch, p)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
			b.execute(batch)
		}
	}
}

// refuseQueued drains whatever raced into the queue after stop and
// replies ErrShuttingDown.
func (b *batcher[T, R]) refuseQueued() {
	for {
		select {
		case p := <-b.queue:
			p.done <- reply[R]{err: ErrShuttingDown}
		default:
			return
		}
	}
}

// execute answers one collected batch: members are grouped by their
// full group key (first-seen order) and each group runs as one
// executor call against the index the swap serves right now.
func (b *batcher[T, R]) execute(batch []*pending[T, R]) {
	b.stats.batches.Add(1)
	idx := b.swap.Load()
	var order []groupKey
	groups := make(map[groupKey][]*pending[T, R], 1)
	for _, p := range batch {
		if _, ok := groups[p.key]; !ok {
			order = append(order, p.key)
		}
		groups[p.key] = append(groups[p.key], p)
	}
	for _, key := range order {
		b.executeGroup(idx, key, groups[key])
	}
}

func (b *batcher[T, R]) executeGroup(idx index.StatsIndex[T], key groupKey, group []*pending[T, R]) {
	b.stats.grouped.Add(1)
	queries := make([]T, len(group))
	for i, p := range group {
		queries[i] = p.query
	}
	ctx, release := mergedContext(group)
	defer release()
	opts := b.execOpts()
	opts.Context = ctx
	opts.Search = index.SearchOptions{Epsilon: key.epsilon, Budget: key.budget}
	results, stats, err := b.exec(idx, queries, key.param, opts)
	for i, p := range group {
		switch {
		case i < len(stats.AnsweredMask) && stats.AnsweredMask[i]:
			b.stats.queries.Add(1)
			p.done <- reply[R]{result: results[i],
				exhausted: i < len(stats.ExhaustedMask) && stats.ExhaustedMask[i]}
		case err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded):
			p.done <- reply[R]{err: err}
		default:
			b.stats.cancelled.Add(1)
			p.done <- reply[R]{err: ErrCancelled}
		}
	}
}

// mergedContext returns a context that cancels only when EVERY member
// request's context has been cancelled — a batch keeps running as long
// as one member still wants its answer, and a fully abandoned batch
// stops wasting distance computations (qexec's partial-results
// contract picks up from there). The release func detaches the
// watchers; it must be called once the batch is done.
func mergedContext[T, R any](group []*pending[T, R]) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(group)))
	stops := make([]func() bool, len(group))
	for i, p := range group {
		stops[i] = context.AfterFunc(p.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// queueDepth reports how many admitted requests wait in the queue.
func (b *batcher[T, R]) queueDepth() int { return len(b.queue) }
