// Package serve is the network serving layer: a stdlib net/http JSON
// query server over any index.StatsIndex — a single tree or a sharded
// shard.Index alike — built for sustained concurrent load:
//
//   - Bounded admission. Each endpoint owns a fixed-capacity queue;
//     when it is full the request is rejected immediately with
//     503 + Retry-After. The server's goroutine budget does not grow
//     with offered load, and overload degrades into fast rejections
//     instead of collapse.
//
//   - Micro-batching. Queued requests are coalesced (up to MaxBatch,
//     within MaxWait) and answered through the qexec worker-pool
//     executor, so concurrent HTTP traffic is served with the same
//     deterministic batch machinery the experiments use.
//
//   - Cancellation passthrough. Every request carries its HTTP
//     context; a batch is cancelled only when all of its members are,
//     and the executor's AnsweredMask separates real answers from
//     abandoned slots.
//
//   - Live index swap. The served index sits behind an atomic pointer
//     (Swap). Reload — from the crash-safe shard snapshot directory —
//     builds the new index off to the side and publishes it with one
//     pointer store: in-flight batches finish on the old index, later
//     batches use the new one, and no request ever fails because of a
//     swap.
//
//   - Telemetry. One obs.Observer records every served query; /stats
//     returns its snapshot plus the admission counters, and the same
//     snapshot is published through expvar on /debug/vars.
package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mvptree/internal/index"
	"mvptree/internal/obs"
	"mvptree/internal/qexec"
)

// Options tune the serving layer. The zero value serves sensible
// defaults.
type Options struct {
	// MaxBatch bounds how many requests one executed batch may carry.
	// Default 32.
	MaxBatch int
	// MaxWait is the batching window: how long the collector waits to
	// fill a batch after its first request arrives. Under saturation
	// batches fill instantly and the window costs nothing; when idle a
	// lone request pays at most this. Default 2ms.
	MaxWait time.Duration
	// Queue is each endpoint's admission-queue capacity; a full queue
	// rejects with 503. Default 256.
	Queue int
	// Workers is the executor worker count per batch. Default
	// GOMAXPROCS.
	Workers int
	// Batch is the shared-traversal micro-batch size handed to the
	// executor (qexec.Options.Batch): each worker answers its stripe of
	// a collected batch in groups of up to Batch queries through one
	// SearchBatch shared traversal when the served index supports it.
	// Answers are byte-identical to unbatched execution; per-query
	// latency samples in /stats are amortized over a group. 0 defaults
	// to MaxBatch (micro-batches execute as one shared traversal); 1
	// disables batched execution.
	Batch int
	// RetryAfter is the hint sent with 503 rejections. Default 1s.
	RetryAfter time.Duration
	// ExpvarName, when non-empty, publishes the server's observer
	// snapshot under this expvar name (readable on /debug/vars).
	ExpvarName string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Batch <= 0 {
		o.Batch = o.MaxBatch
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Codec bridges the wire JSON and the index's item type.
type Codec[T any] struct {
	// DecodeQuery parses the "query" field of a request. Returning an
	// error produces a 400; it is also the place to validate shape
	// (e.g. vector dimensionality) so a malformed query can never
	// reach the metric.
	DecodeQuery func(raw json.RawMessage) (T, error)
	// EncodeItem renders one result item into a JSON-marshalable
	// value.
	EncodeItem func(item T) (any, error)
}

// VectorCodec is the Codec for []float64 items under an enforced
// dimensionality (dim <= 0 skips the check — only safe when every
// stored item already has the same length as every query).
func VectorCodec(dim int) Codec[[]float64] {
	return Codec[[]float64]{
		DecodeQuery: func(raw json.RawMessage) ([]float64, error) {
			var v []float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, fmt.Errorf("query is not a number array: %w", err)
			}
			if len(v) == 0 {
				return nil, errors.New("query vector is empty")
			}
			if dim > 0 && len(v) != dim {
				return nil, fmt.Errorf("query has %d dimensions, index stores %d", len(v), dim)
			}
			return v, nil
		},
		EncodeItem: func(item []float64) (any, error) { return item, nil },
	}
}

// Server is the HTTP serving front end over a swappable index.
type Server[T any] struct {
	opts  Options
	codec Codec[T]
	swap  *Swap[T]
	obs   *obs.Observer

	rangeB *batcher[T, []T]
	knnB   *batcher[T, []index.Neighbor[T]]

	reloadMu sync.Mutex
	reloader func() (index.StatsIndex[T], error)

	closed    atomic.Bool
	closeOnce sync.Once
	started   time.Time
}

// New starts a Server over idx. The collectors run immediately; attach
// the value returned by Handler to an http.Server and call Close on
// the way out.
func New[T any](idx index.StatsIndex[T], codec Codec[T], opts Options) *Server[T] {
	opts = opts.withDefaults()
	s := &Server[T]{
		opts:    opts,
		codec:   codec,
		swap:    NewSwap(idx),
		obs:     obs.NewObserver(0),
		started: time.Now(),
	}
	execOpts := func() qexec.Options {
		return qexec.Options{Workers: opts.Workers, Batch: opts.Batch, Observer: s.obs}
	}
	s.rangeB = newBatcher(s.swap, opts.Queue, opts.MaxBatch, opts.MaxWait, execOpts,
		func(idx index.StatsIndex[T], queries []T, param float64, qo qexec.Options) ([][]T, qexec.Stats, error) {
			return qexec.RunRange[T](idx, queries, param, qo)
		})
	s.knnB = newBatcher(s.swap, opts.Queue, opts.MaxBatch, opts.MaxWait, execOpts,
		func(idx index.StatsIndex[T], queries []T, param float64, qo qexec.Options) ([][]index.Neighbor[T], qexec.Stats, error) {
			return qexec.RunKNN[T](idx, queries, int(param), qo)
		})
	if opts.ExpvarName != "" {
		obs.PublishExpvar(opts.ExpvarName, s.obs)
	}
	s.attachQuantRelay(idx)
	return s
}

// attachQuantRelay registers the server's observer as the index's
// quantize-prune relay, so pre-filter tallies — flushed on the
// structure hosting the arenas and deliberately absent from the
// per-query SearchStats qexec records — still reach /stats and expvar.
// Must run before idx starts serving (construction, or reload before
// the swap publishes); indexes without the hook serve unfiltered and
// are skipped.
func (s *Server[T]) attachQuantRelay(idx index.StatsIndex[T]) {
	if h, ok := any(idx).(interface{ SetQuantObserver(*obs.Observer) }); ok {
		h.SetQuantObserver(s.obs)
	}
}

// SetReloader installs the snapshot loader behind POST /admin/reload.
// Without one the endpoint answers 501.
func (s *Server[T]) SetReloader(fn func() (index.StatsIndex[T], error)) { s.reloader = fn }

// Swap exposes the underlying atomic index holder (for tests and for
// processes that rebuild in-process instead of reloading from disk).
func (s *Server[T]) Swap() *Swap[T] { return s.swap }

// Observer returns the server's query observer.
func (s *Server[T]) Observer() *obs.Observer { return s.obs }

// Close stops the collectors after their in-flight batches finish and
// refuses everything still queued. Call it after http.Server.Shutdown
// so handlers have drained first. Idempotent.
func (s *Server[T]) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.rangeB.close()
		s.knnB.close()
	})
}

// Handler returns the server's routing table:
//
//	POST /range        {"query": ..., "r": 0.5, "epsilon": 0.2, "budget": 500}
//	POST /knn          {"query": ..., "k": 5, "epsilon": 0.2, "budget": 500}
//
// epsilon and budget are optional (zero = exact); approximate
// responses carry "approximate" and "exhausted" flags.
//
// Remaining endpoints:
//	GET  /stats        admission counters + observer snapshot
//	GET  /healthz      liveness
//	POST /admin/reload swap in a freshly loaded snapshot
//	GET  /debug/vars   expvar (includes the observer when ExpvarName set)
func (s *Server[T]) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("POST /knn", s.handleKNN)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// rangeRequest / knnRequest are the POST bodies. epsilon and budget
// are the optional approximation knobs (index.SearchOptions): epsilon
// allows answers within a (1+ε) factor, budget caps the distance
// computations one query may spend. Both default to zero — exact —
// and requests batch only with requests carrying the same knobs.
type rangeRequest struct {
	Query   json.RawMessage `json:"query"`
	R       *float64        `json:"r"`
	Epsilon float64         `json:"epsilon"`
	Budget  int64           `json:"budget"`
}

type knnRequest struct {
	Query   json.RawMessage `json:"query"`
	K       *int            `json:"k"`
	Epsilon float64         `json:"epsilon"`
	Budget  int64           `json:"budget"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// overloaded writes the backpressure rejection: 503 plus a Retry-After
// hint, the contract load generators and clients key off.
func (s *Server[T]) overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter + time.Second - 1) / time.Second)))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrQueueFull.Error()})
}

func (s *Server[T]) handleRange(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		s.overloaded(w)
		return
	}
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad request body: %v", err)
		return
	}
	if req.R == nil || *req.R < 0 {
		badRequest(w, "missing or negative radius %q", "r")
		return
	}
	if req.Epsilon < 0 || req.Budget < 0 {
		badRequest(w, "negative %q or %q", "epsilon", "budget")
		return
	}
	q, err := s.codec.DecodeQuery(req.Query)
	if err != nil {
		badRequest(w, "bad query: %v", err)
		return
	}
	key := groupKey{param: *req.R, epsilon: req.Epsilon, budget: req.Budget}
	done, err := s.rangeB.submit(r.Context(), q, key)
	if err != nil {
		s.overloaded(w)
		return
	}
	select {
	case rep := <-done:
		if rep.err != nil {
			s.replyError(w, rep.err)
			return
		}
		items := make([]any, len(rep.result))
		for i, it := range rep.result {
			if items[i], err = s.codec.EncodeItem(it); err != nil {
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
		}
		body := map[string]any{"results": items, "count": len(items)}
		addApproxFields(body, key, rep.exhausted)
		writeJSON(w, http.StatusOK, body)
	case <-r.Context().Done():
		// Client gone; the buffered reply is dropped on the floor.
	}
}

// addApproxFields annotates an approximate request's response:
// "exhausted" says the budget cut the traversal short, "approximate"
// that the answer is not certified exact (an ε was in play or the
// budget ran out). Exact requests keep the original response shape.
func addApproxFields(body map[string]any, key groupKey, exhausted bool) {
	if key.epsilon == 0 && key.budget == 0 {
		return
	}
	body["exhausted"] = exhausted
	body["approximate"] = key.epsilon > 0 || exhausted
}

func (s *Server[T]) handleKNN(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		s.overloaded(w)
		return
	}
	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		badRequest(w, "bad request body: %v", err)
		return
	}
	if req.K == nil || *req.K < 1 {
		badRequest(w, "missing or non-positive %q", "k")
		return
	}
	if req.Epsilon < 0 || req.Budget < 0 {
		badRequest(w, "negative %q or %q", "epsilon", "budget")
		return
	}
	q, err := s.codec.DecodeQuery(req.Query)
	if err != nil {
		badRequest(w, "bad query: %v", err)
		return
	}
	key := groupKey{param: float64(*req.K), epsilon: req.Epsilon, budget: req.Budget}
	done, err := s.knnB.submit(r.Context(), q, key)
	if err != nil {
		s.overloaded(w)
		return
	}
	select {
	case rep := <-done:
		if rep.err != nil {
			s.replyError(w, rep.err)
			return
		}
		type wireNeighbor struct {
			Item any     `json:"item"`
			Dist float64 `json:"dist"`
		}
		neighbors := make([]wireNeighbor, len(rep.result))
		for i, nb := range rep.result {
			item, err := s.codec.EncodeItem(nb.Item)
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
				return
			}
			neighbors[i] = wireNeighbor{Item: item, Dist: nb.Dist}
		}
		body := map[string]any{"neighbors": neighbors, "count": len(neighbors)}
		addApproxFields(body, key, rep.exhausted)
		writeJSON(w, http.StatusOK, body)
	case <-r.Context().Done():
	}
}

func (s *Server[T]) replyError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShuttingDown):
		s.overloaded(w)
	case errors.Is(err, ErrCancelled):
		// The client that could have read this is gone; 499-style.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// EndpointStats is one endpoint's admission and batching counters.
type EndpointStats struct {
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	Cancelled  int64 `json:"cancelled"`
	Batches    int64 `json:"batches"`
	Groups     int64 `json:"groups"`
	Queries    int64 `json:"queries"`
	QueueDepth int   `json:"queue_depth"`
}

func endpointStats[T, R any](b *batcher[T, R]) EndpointStats {
	return EndpointStats{
		Admitted:   b.stats.admitted.Load(),
		Rejected:   b.stats.rejected.Load(),
		Cancelled:  b.stats.cancelled.Load(),
		Batches:    b.stats.batches.Load(),
		Groups:     b.stats.grouped.Load(),
		Queries:    b.stats.queries.Load(),
		QueueDepth: b.queueDepth(),
	}
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Items     int           `json:"items"`
	Swaps     int64         `json:"swaps"`
	UptimeSec float64       `json:"uptime_sec"`
	Range     EndpointStats `json:"range"`
	KNN       EndpointStats `json:"knn"`
	Obs       obs.Snapshot  `json:"obs"`
}

// Stats assembles the live serving counters and observer snapshot.
func (s *Server[T]) Stats() StatsResponse {
	return StatsResponse{
		Items:     s.swap.Load().Len(),
		Swaps:     s.swap.Swaps(),
		UptimeSec: time.Since(s.started).Seconds(),
		Range:     endpointStats(s.rangeB),
		KNN:       endpointStats(s.knnB),
		Obs:       s.obs.Snapshot(),
	}
}

func (s *Server[T]) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server[T]) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "items": s.swap.Load().Len()})
}

func (s *Server[T]) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.reloader == nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "no reloader configured"})
		return
	}
	// Serialize reloads; queries are never blocked — they keep hitting
	// whatever the swap currently holds.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	idx, err := s.reloader()
	if err != nil {
		// The old index keeps serving; reload failure is not an outage.
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("reload failed, still serving previous index: %v", err)})
		return
	}
	s.attachQuantRelay(idx)
	s.swap.Store(idx)
	writeJSON(w, http.StatusOK, map[string]any{"items": idx.Len(), "swaps": s.swap.Swaps()})
}
