package serve

import (
	"sync/atomic"

	"mvptree/internal/index"
)

// Swap holds the served index behind an atomic pointer so a rebuilt or
// reloaded index can go live under traffic with zero downtime: readers
// Load the pointer once per batch and keep using that index for the
// batch's whole lifetime, while Store publishes the replacement for
// every later batch. The indexes in this repository are immutable after
// construction, so the old index keeps answering its in-flight batches
// correctly until the garbage collector reclaims it — no locks, no
// draining, no failed requests.
type Swap[T any] struct {
	p atomic.Pointer[swapCell[T]]
	// gen counts Store calls, so telemetry can report how many swaps a
	// process has served.
	gen atomic.Int64
}

// swapCell boxes the interface value: atomic.Pointer needs a concrete
// pointee type.
type swapCell[T any] struct {
	idx index.StatsIndex[T]
}

// NewSwap returns a Swap serving idx.
func NewSwap[T any](idx index.StatsIndex[T]) *Swap[T] {
	s := &Swap[T]{}
	s.p.Store(&swapCell[T]{idx: idx})
	return s
}

// Load returns the currently served index. The caller should Load once
// per unit of work and reuse the value, not re-Load mid-query.
func (s *Swap[T]) Load() index.StatsIndex[T] { return s.p.Load().idx }

// Store atomically publishes idx as the served index. In-flight work
// holding the previous index finishes against it unaffected.
func (s *Swap[T]) Store(idx index.StatsIndex[T]) {
	s.p.Store(&swapCell[T]{idx: idx})
	s.gen.Add(1)
}

// Swaps reports how many times Store has been called.
func (s *Swap[T]) Swaps() int64 { return s.gen.Load() }
