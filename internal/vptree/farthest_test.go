package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeFartherMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	w := testutil.NewVectorWorkload(rng, 400, 8, 10, metric.L2)
	radii := []float64{0, 0.3, 0.8, 1.2, 2.0, 10}
	for _, opts := range []Options{
		{Order: 2, Build: Build{Seed: 7}},
		{Order: 3, LeafCapacity: 4, Build: Build{Seed: 7}},
	} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckRangeFarther(t, "vpt", tree, w, radii)
	}
}

func TestKFarthestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 8, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Order: 3, Build: Build{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckKFarthest(t, "vpt", tree, w, []int{1, 2, 5, 17, 300, 1000})
}

func TestRangeFartherFastPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 2))
	w := testutil.NewVectorWorkload(rng, 1000, 8, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Order: 2, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if got := tree.RangeFarther(w.Queries[0], 0); len(got) != 1000 || c.Count() != 0 {
		t.Errorf("RangeFarther(0): %d items, %d computations", len(got), c.Count())
	}
}

func TestFarthestOnClumpedData(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 2))
	w := testutil.NewClumpedWorkload(rng, 400, 5, 6, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Order: 3, Build: Build{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckRangeFarther(t, "vpt-clumped", tree, w, []float64{0.01, 0.5, 1.5})
	testutil.CheckKFarthest(t, "vpt-clumped", tree, w, []int{1, 5, 50})
}
