package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func cascadeItems(seed uint64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x51))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	return items
}

// TestCascadeInvariance checks byte-identical results and
// never-increasing distance counts with the cascade enabled — the
// vp-tree is the structure where the cascade matters most, since it has
// no leaf filter of its own (Computed == Candidates without it).
func TestCascadeInvariance(t *testing.T) {
	items := cascadeItems(19, 3000, 12)
	opts := Options{Order: 3, LeafCapacity: 20, Build: Build{Seed: 7}}
	off, err := New(items, metric.NewCounter(metric.L2), opts)
	if err != nil {
		t.Fatal(err)
	}
	on, err := New(items, metric.NewCounter(metric.L2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := on.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}
	if on.Cascade() == nil {
		t.Fatal("EnableCascade left the filter nil")
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var pruned int
	for qi := 0; qi < 40; qi++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.Float64()
		}
		for _, r := range []float64{0.3, 0.6, 0.9} {
			a, sa := off.RangeWithStats(q, r)
			b, sb := on.RangeWithStats(q, r)
			if len(a) != len(b) {
				t.Fatalf("r=%v: %d results off, %d on", r, len(a), len(b))
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("r=%v: result %d differs", r, i)
					}
				}
			}
			if sb.Distances() > sa.Distances() {
				t.Fatalf("r=%v: cascade-on used %d distances, off %d", r, sb.Distances(), sa.Distances())
			}
			pruned += sb.FilteredByCascade
		}
		for _, k := range []int{1, 10, 50} {
			a, sa := off.KNNWithStats(q, k)
			b, sb := on.KNNWithStats(q, k)
			if len(a) != len(b) {
				t.Fatalf("k=%d: %d results off, %d on", k, len(a), len(b))
			}
			for i := range a {
				if a[i].Dist != b[i].Dist {
					t.Fatalf("k=%d: neighbor %d dist %v off, %v on", k, i, a[i].Dist, b[i].Dist)
				}
			}
			if sb.Distances() > sa.Distances() {
				t.Fatalf("k=%d: cascade-on used %d distances, off %d", k, sb.Distances(), sa.Distances())
			}
			pruned += sb.FilteredByCascade
		}
	}
	if pruned == 0 {
		t.Fatal("cascade never pruned a candidate across 40 queries")
	}
}

// TestCascadeSteadyStateAllocations re-pins the zero-alloc serving
// guarantee with the cascade enabled.
func TestCascadeSteadyStateAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := cascadeItems(13, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Order: 3, LeafCapacity: 20, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	near := items[17]
	tree.Range(far, 0.5)
	tree.KNN(near, 10)
	if allocs := testing.AllocsPerRun(200, func() { tree.Range(far, 0.5) }); allocs != 0 {
		t.Errorf("cascaded empty-result Range allocated %.1f times per query, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.KNN(near, 10) }); allocs > 1 {
		t.Errorf("cascaded KNN allocated %.1f times per query, want <= 1 (the result slice)", allocs)
	}
}
