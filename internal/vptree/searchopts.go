package vptree

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact traversal, byte-identical
// to RangeWithStats / KNNWithStats / their parallel and bounded
// variants (which remain as thin wrappers over the same code paths);
// Epsilon, Budget or Patience switch to the approximate traversal.
// Approximate traversals do not consult the cascade or an external
// KNNBound, and Workers is honored only on exact range queries.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStatsBound(req.Point, req.K, req.Opts.Bound)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		if req.Opts.Workers > 1 {
			out, s := t.RangeParallelWithStats(req.Point, req.Radius, req.Opts.Workers)
			return index.Result[T]{Items: out, Stats: s}
		}
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox prunes shells against the shrunken radius rp = r/(1+ε)
// while acceptance keeps the full r: every reported item is within r
// and every item within rp is guaranteed reported. The budget is
// debited before each computation, so stats match the Counter delta
// even when the traversal stops mid-leaf.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, a *index.Approx, out *[]T, s *SearchStats) {
	if n == nil || a.Stop() {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		computed := 0
		for _, it := range n.items {
			if !a.Pay(1) {
				break
			}
			s.Candidates++
			computed++
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		s.Computed += computed
		if computed > 0 {
			t.TraceDistance(computed)
		}
		return
	}
	if !a.Pay(1) {
		return
	}
	// Exact-path kernel bound (r + cutMax): an abandoned value and the
	// true one land on the same side of every rp-shell test because
	// rp ≤ r.
	d := t.dist.DistanceUpTo(q, n.vantage, r+n.cutMax)
	s.VantagePoints++
	t.TraceDistance(1)
	if d <= r {
		*out = append(*out, n.vantage)
	}
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		if d+rp >= lo && d-rp <= hi {
			t.rangeNodeApprox(c, q, r, rp, a, out, s)
			if a.Stop() {
				return
			}
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// knnApprox is best-first kNN with the approximation knobs: subtrees
// are discarded once their lower bound reaches τ/(1+ε), the budget is
// debited before every computation (the heap always holds the best
// candidates seen so far), and patience stops the search after the
// configured number of consecutive leaves that fail to tighten τ.
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for !a.Stop() {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			computed := 0
			for _, it := range n.items {
				if !a.Pay(1) {
					break
				}
				s.Candidates++
				computed++
				cb := best.Threshold()
				if d := t.dist.DistanceUpTo(q, it, cb); d <= cb {
					best.Push(it, d)
				}
			}
			s.Computed += computed
			if computed > 0 {
				t.TraceDistance(computed)
			}
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		if !a.Pay(1) {
			break
		}
		vb := tau + n.cutMax
		d := t.dist.DistanceUpTo(q, n.vantage, vb)
		if d <= vb {
			best.Push(n.vantage, d)
		}
		s.VantagePoints++
		t.TraceDistance(1)
		for g, c := range n.children {
			if c == nil {
				continue
			}
			lo, hi := shellBounds(n.cutoffs, g)
			lb := 0.0
			if d < lo {
				lb = lo - d
			} else if d > hi {
				lb = d - hi
			}
			if lb < a.Shrink(best.Threshold()) {
				queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}
