package vptree

import (
	"math"
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func buildWorkloadTree(t *testing.T, w *testutil.Workload, opts Options) (*Tree[int], *metric.Counter[int]) {
	t.Helper()
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree, c
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	radii := []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0}
	for _, opts := range []Options{
		{Order: 2, Build: Build{Seed: 7}},
		{Order: 3, Build: Build{Seed: 7}},
		{Order: 5, LeafCapacity: 4, Build: Build{Seed: 7}},
		{Order: 2, Selection: SelectBestSpread, Build: Build{Seed: 7}},
	} {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRange(t, "vpt", tree, w, radii)
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	for _, order := range []int{2, 3, 4} {
		tree, _ := buildWorkloadTree(t, w, Options{Order: order, Build: Build{Seed: 11}})
		testutil.CheckKNN(t, "vpt", tree, w, []int{1, 2, 5, 17, 300, 1000})
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	for _, order := range []int{2, 3} {
		tree, _ := buildWorkloadTree(t, w, Options{Order: order, Build: Build{Seed: 13}})
		testutil.CheckRange(t, "vpt-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
		testutil.CheckKNN(t, "vpt-clumped", tree, w, []int{1, 3, 10})
		testutil.CheckContainsAllOnce(t, "vpt-clumped", tree, w, 1e6)
	}
}

func TestAllPointsIndexedExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 1))
	w := testutil.NewVectorWorkload(rng, 257, 4, 1, metric.L1)
	tree, _ := buildWorkloadTree(t, w, Options{Order: 3, LeafCapacity: 5, Build: Build{Seed: 17}})
	testutil.CheckContainsAllOnce(t, "vpt", tree, w, 1e9)
}

func TestTinyTrees(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 5; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{Order: 3})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		got := tree.Range([]float64{0}, 100)
		if len(got) != n {
			t.Errorf("n=%d: full range returned %d items", n, len(got))
		}
		nn := tree.KNN([]float64{0.2}, 2)
		wantLen := min(2, n)
		if len(nn) != wantLen {
			t.Errorf("n=%d: KNN returned %d items, want %d", n, len(nn), wantLen)
		}
		if n > 0 && nn[0].Item[0] != 0 {
			t.Errorf("n=%d: nearest to 0.2 is %v", n, nn[0].Item)
		}
	}
}

func TestNegativeRadiusAndZeroK(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {2}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Range([]float64{1}, -0.5); got != nil {
		t.Errorf("Range with negative radius = %v, want nil", got)
	}
	if got := tree.KNN([]float64{1}, 0); got != nil {
		t.Errorf("KNN(k=0) = %v, want nil", got)
	}
	if got := tree.KNN([]float64{1}, -3); got != nil {
		t.Errorf("KNN(k<0) = %v, want nil", got)
	}
}

func TestInvalidOptions(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	items := [][]float64{{1}, {2}, {3}}
	for _, opts := range []Options{
		{Order: 1},
		{Order: -2},
		{LeafCapacity: -1},
		{Candidates: -1},
		{SampleSize: -5},
	} {
		if _, err := New(items, dist, opts); err == nil {
			t.Errorf("New with %+v succeeded, want error", opts)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	w := testutil.NewVectorWorkload(rng, 200, 6, 3, metric.L2)
	build := func() ([]int64, [][]int) {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Order: 3, Build: Build{Seed: 99}})
		if err != nil {
			t.Fatal(err)
		}
		var counts []int64
		var results [][]int
		for _, q := range w.Queries {
			c.Reset()
			results = append(results, tree.Range(q, 0.4))
			counts = append(counts, c.Count())
		}
		return counts, results
	}
	c1, r1 := build()
	c2, r2 := build()
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("query %d: distance counts differ between identical builds: %d vs %d", i, c1[i], c2[i])
		}
		if len(r1[i]) != len(r2[i]) {
			t.Errorf("query %d: result sizes differ", i)
		}
	}
}

func TestConstructionCostIsNLogN(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	n := 2048
	w := testutil.NewVectorWorkload(rng, n, 8, 1, metric.L2)
	for _, order := range []int{2, 3} {
		tree, _ := buildWorkloadTree(t, w, Options{Order: order, Build: Build{Seed: 1}})
		// Each level costs ~n distance computations; height ~ log_m n.
		// Allow generous slack for uneven splits.
		logm := math.Log(float64(n)) / math.Log(float64(order))
		limit := int64(3 * float64(n) * logm)
		if tree.BuildCost() > limit {
			t.Errorf("order %d: BuildCost = %d, want ≤ %d (~3·n·log_m n)", order, tree.BuildCost(), limit)
		}
		if tree.BuildCost() < int64(n-1) {
			t.Errorf("order %d: BuildCost = %d, impossibly small", order, tree.BuildCost())
		}
	}
}

func TestHigherOrderShrinksHeight(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	w := testutil.NewVectorWorkload(rng, 1000, 8, 1, metric.L2)
	t2, _ := buildWorkloadTree(t, w, Options{Order: 2, Build: Build{Seed: 1}})
	t4, _ := buildWorkloadTree(t, w, Options{Order: 4, Build: Build{Seed: 1}})
	if t4.Height() >= t2.Height() {
		t.Errorf("height(order 4) = %d, height(order 2) = %d; want strictly smaller", t4.Height(), t2.Height())
	}
	// Balanced splits: height within a constant of log_m(n).
	if h, want := t2.Height(), int(math.Ceil(math.Log2(1000)))+2; h > want {
		t.Errorf("binary height = %d, want ≤ %d", h, want)
	}
}

func TestSearchBeatsLinearScanOnSmallRadii(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	w := testutil.NewVectorWorkload(rng, 3000, 4, 20, metric.L2) // low dim: pruning must work
	tree, c := buildWorkloadTree(t, w, Options{Order: 2, Build: Build{Seed: 3}})
	var total int64
	for _, q := range w.Queries {
		c.Reset()
		tree.Range(q, 0.05)
		total += c.Count()
	}
	avg := float64(total) / float64(len(w.Queries))
	if avg > float64(w.Truth.Len())/2 {
		t.Errorf("avg distance computations %.0f ≥ n/2 = %d; vp-tree is not pruning", avg, w.Truth.Len()/2)
	}
}

func TestDiscreteMetricDegenerate(t *testing.T) {
	// All non-identical points are equidistant: pruning is impossible
	// but correctness must hold.
	items := testutil.IDs(64)
	c := metric.NewCounter(metric.Discrete[int]())
	tree, err := New(items, c, Options{Order: 3, Build: Build{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Range(7, 0)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("Range(7, 0) = %v, want [7]", got)
	}
	if got := tree.Range(7, 1); len(got) != 64 {
		t.Errorf("Range(7, 1) returned %d items, want 64", len(got))
	}
	if got := tree.Range(200, 0.5); len(got) != 0 {
		t.Errorf("Range(foreign, 0.5) = %v, want empty", got)
	}
}

func TestEditDistanceStrings(t *testing.T) {
	words := []string{"book", "books", "cake", "boo", "boon", "cook", "cape", "cart", "case", "cast"}
	c := metric.NewCounter(metric.Edit)
	tree, err := New(words, c, Options{Order: 2, Build: Build{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Range("book", 1)
	want := map[string]bool{"book": true, "books": true, "boo": true, "boon": true, "cook": true}
	if len(got) != len(want) {
		t.Fatalf("Range(book, 1) = %v", got)
	}
	for _, wd := range got {
		if !want[wd] {
			t.Errorf("unexpected word %q in result", wd)
		}
	}
	nn := tree.KNN("cane", 2)
	if len(nn) != 2 || nn[0].Dist != 1 {
		t.Errorf("KNN(cane, 2) = %v; want cake or cape at distance 1 first", nn)
	}
}

func TestBestSpreadReducesQueryCost(t *testing.T) {
	// Not a strict guarantee, but on clustered data the spread
	// heuristic should not be wildly worse than random selection.
	rng := rand.New(rand.NewPCG(9, 1))
	w := testutil.NewClumpedWorkload(rng, 2000, 6, 15, metric.L2)
	cost := func(sel SelectionStrategy) float64 {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Order: 2, Selection: sel, Build: Build{Seed: 21}})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, q := range w.Queries {
			c.Reset()
			tree.Range(q, 0.1)
			total += c.Count()
		}
		return float64(total) / float64(len(w.Queries))
	}
	random := cost(SelectRandom)
	spread := cost(SelectBestSpread)
	if spread > 2.5*random {
		t.Errorf("best-spread cost %.0f vs random %.0f: heuristic catastrophically worse", spread, random)
	}
}

func TestParallelBuildIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	w := testutil.NewVectorWorkload(rng, 3000, 8, 8, metric.L2)
	seq, seqC := buildWorkloadTree(t, w, Options{Order: 3, Build: Build{Seed: 5}})
	par, parC := buildWorkloadTree(t, w, Options{Order: 3, Build: Build{Seed: 5, Workers: 8}})
	if seq.BuildCost() != par.BuildCost() {
		t.Errorf("build cost differs: %d vs %d", seq.BuildCost(), par.BuildCost())
	}
	for _, q := range w.Queries {
		seqC.Reset()
		a := seq.Range(q, 0.3)
		parC.Reset()
		b := par.Range(q, 0.3)
		if seqC.Count() != parC.Count() || len(a) != len(b) {
			t.Fatalf("parallel tree differs: costs %d vs %d, results %d vs %d",
				seqC.Count(), parC.Count(), len(a), len(b))
		}
	}
}

func TestKNNDepthFirstMatchesBestFirst(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	w := testutil.NewVectorWorkload(rng, 600, 8, 10, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Order: 3, Build: Build{Seed: 13}})
	for _, q := range w.Queries {
		for _, k := range []int{1, 5, 20, 600} {
			a := tree.KNN(q, k)
			b := tree.KNNDepthFirst(q, k)
			if len(a) != len(b) {
				t.Fatalf("k=%d: %d vs %d results", k, len(a), len(b))
			}
			for i := range a {
				if a[i].Dist != b[i].Dist {
					t.Fatalf("k=%d: dist[%d] = %g vs %g", k, i, a[i].Dist, b[i].Dist)
				}
			}
		}
	}
	// Best-first expands subtrees in optimal order, so it never makes
	// more distance computations than the [Chi94] depth-first variant.
	var bf, dfs int64
	for _, q := range w.Queries {
		c.Reset()
		tree.KNN(q, 5)
		bf += c.Count()
		c.Reset()
		tree.KNNDepthFirst(q, 5)
		dfs += c.Count()
	}
	if bf > dfs {
		t.Errorf("best-first cost %d > depth-first cost %d; expansion order broken", bf, dfs)
	}
}

func TestKNNDepthFirstEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KNNDepthFirst([]float64{0}, 3); got != nil {
		t.Errorf("empty tree: %v", got)
	}
	tree, err = New([][]float64{{1}, {2}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KNNDepthFirst([]float64{0}, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	got := tree.KNNDepthFirst([]float64{0}, 5)
	if len(got) != 2 || got[0].Dist != 1 {
		t.Errorf("KNNDepthFirst = %v", got)
	}
}

func TestRangeWithStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 1))
	w := testutil.NewVectorWorkload(rng, 1500, 8, 8, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Order: 3, Build: Build{Seed: 4}})
	for _, q := range w.Queries {
		for _, r := range []float64{0.1, 0.4} {
			c.Reset()
			out, s := tree.RangeWithStats(q, r)
			if got := int64(s.Computed + s.VantagePoints); got != c.Count() {
				t.Fatalf("r=%g: stats count %d, counter %d", r, got, c.Count())
			}
			if s.Results != len(out) {
				t.Fatalf("r=%g: Results = %d, len = %d", r, s.Results, len(out))
			}
			// The vp-tree's defining cost property: no stored leaf
			// distances, so every candidate is computed.
			if s.Computed != s.Candidates {
				t.Fatalf("r=%g: Computed %d != Candidates %d", r, s.Computed, s.Candidates)
			}
			// And results must match the plain Range.
			if want := tree.Range(q, r); len(want) != len(out) {
				t.Fatalf("r=%g: %d vs %d results", r, len(out), len(want))
			}
		}
	}
}
