package vptree

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func encodeID(id int) ([]byte, error) {
	return []byte{byte(id), byte(id >> 8)}, nil
}

func decodeID(b []byte) (int, error) {
	if len(b) != 2 {
		return 0, errors.New("bad id encoding")
	}
	return int(b[0]) | int(b[1])<<8, nil
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 3))
	w := testutil.NewVectorWorkload(rng, 600, 8, 8, metric.L2)
	for _, opts := range []Options{
		{Order: 2, Build: Build{Seed: 7}},
		{Order: 4, LeafCapacity: 6, Build: Build{Seed: 7}},
	} {
		c := metric.NewCounter(w.Dist)
		orig, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf, encodeID); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := Load(&buf, c, decodeID)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if loaded.Len() != orig.Len() {
			t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
		}
		testutil.CheckRange(t, "loaded-vpt", loaded, w, []float64{0, 0.2, 0.6, 1.5})
		testutil.CheckKNN(t, "loaded-vpt", loaded, w, []int{1, 5, 50})
	}
}

func TestSaveLoadIdenticalQueryCosts(t *testing.T) {
	rng := rand.New(rand.NewPCG(82, 3))
	w := testutil.NewVectorWorkload(rng, 400, 6, 6, metric.L2)
	c := metric.NewCounter(w.Dist)
	orig, err := New(w.Items, c, Options{Order: 3, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	c2 := metric.NewCounter(w.Dist)
	loaded, err := Load(&buf, c2, decodeID)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		c.Reset()
		orig.Range(q, 0.4)
		c2.Reset()
		loaded.Range(q, 0.4)
		if c.Count() != c2.Count() {
			t.Fatalf("query cost differs after reload: %d vs %d", c.Count(), c2.Count())
		}
	}
}

func TestLoadRejectsCorruptStreams(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 3))
	w := testutil.NewVectorWorkload(rng, 80, 4, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	orig, err := New(w.Items, c, Options{Build: Build{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{7}, []byte("NOTVPTR")...),
		"truncated": valid[:len(valid)/3],
	} {
		if _, err := Load(bytes.NewReader(data), c, decodeID); err == nil {
			t.Errorf("%s: Load succeeded on corrupt data", name)
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	dist := metric.NewCounter(metric.Discrete[int]())
	orig, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, dist, decodeID)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.Range(1, 10) != nil {
		t.Error("empty tree misbehaves after reload")
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	rng := rand.New(rand.NewPCG(84, 3))
	w := testutil.NewVectorWorkload(rng, 60, 4, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	orig, err := New(w.Items, c, Options{Build: Build{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Any single corrupted payload byte must be caught by the checksum.
	for _, i := range []int{len(valid) / 2, len(valid) - 10, 20} {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x55
		if _, err := Load(bytes.NewReader(data), c, decodeID); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
}
