package vptree

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree: a
// breadth-first walk collects the first opts.Pivots vantage points as
// cascade pivots and assigns every leaf item a contiguous id, then
// precomputes the pivot × item distance rows through the tree's own
// counter (internal/cascade). Every Range/KNN query then registers the
// exact distances it computes at stamped vantage points and skips leaf
// candidates whose triangle-inequality lower bound over those
// registered distances already exceeds the query threshold. The vp-tree
// stores no leaf distances of its own (Computed == Candidates without
// the cascade), so this is the structure's first leaf filter. Results
// are byte-identical with the cascade on or off; per-query distance
// counts can only decrease.
//
// The precomputation is lazy and costs Pivots × LeafItems distance
// computations (Cascade().BuildDistances). A tree too small to hold
// leaf items is left uncascaded silently. EnableCascade is not
// synchronized with in-flight queries; the cascade state is not
// serialized by Save — re-enable after Load. RangeParallel and
// KNNDepthFirst do not consult the cascade.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.leaf {
			n.casBase = b.AddItems(n.items)
			continue
		}
		n.cas = b.AddPivot(n.vantage)
		for _, c := range n.children {
			if c != nil {
				queue = append(queue, c)
			}
		}
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
