package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/quant"
	"mvptree/internal/testutil"
)

func batchVecs(seed uint64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	return items
}

// checkBatchMatchesSequential pins the SearchBatch contract: for every
// batch size, results, neighbor order, SearchStats, and the tree's
// counter delta are byte-identical to per-query Search calls.
func checkBatchMatchesSequential[T any](t *testing.T, tree *Tree[T], dist *metric.Counter[T],
	reqs []index.Query[T], sizes []int, eq func(a, b T) bool) {
	t.Helper()

	want := make([]index.Result[T], len(reqs))
	wantDelta := make([]int64, len(reqs))
	for i, req := range reqs {
		c0 := dist.Count()
		want[i] = tree.Search(req)
		wantDelta[i] = dist.Count() - c0
	}

	for _, b := range sizes {
		for lo := 0; lo < len(reqs); lo += b {
			hi := min(lo+b, len(reqs))
			chunk := reqs[lo:hi]
			got := make([]index.Result[T], len(chunk))
			c0 := dist.Count()
			tree.SearchBatch(chunk, got)
			delta := dist.Count() - c0
			var wd int64
			for i := lo; i < hi; i++ {
				wd += wantDelta[i]
			}
			if delta != wd {
				t.Errorf("B=%d chunk [%d,%d): counter delta %d, sequential %d", b, lo, hi, delta, wd)
			}
			for i := range chunk {
				w, g := want[lo+i], got[i]
				if w.Stats != g.Stats {
					t.Errorf("B=%d query %d: stats differ\nseq   %+v\nbatch %+v", b, lo+i, w.Stats, g.Stats)
				}
				if len(w.Items) != len(g.Items) {
					t.Fatalf("B=%d query %d: %d items sequential, %d batched", b, lo+i, len(w.Items), len(g.Items))
				}
				for k := range w.Items {
					if !eq(w.Items[k], g.Items[k]) {
						t.Fatalf("B=%d query %d: item %d differs", b, lo+i, k)
					}
				}
				if len(w.Neighbors) != len(g.Neighbors) {
					t.Fatalf("B=%d query %d: %d neighbors sequential, %d batched", b, lo+i, len(w.Neighbors), len(g.Neighbors))
				}
				for k := range w.Neighbors {
					if w.Neighbors[k].Dist != g.Neighbors[k].Dist || !eq(w.Neighbors[k].Item, g.Neighbors[k].Item) {
						t.Fatalf("B=%d query %d: neighbor %d differs", b, lo+i, k)
					}
				}
			}
		}
	}
}

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var batchSizes = []int{1, 4, 16, 64}

// TestBatchInvariance pins batch == sequential on the vp-tree across
// orders and leaf capacities, mixing exact range, exact kNN,
// approximate and budgeted requests (the latter two exercise the
// per-query fallback inside the batch), with the quantized pre-filter
// and the cascade armed on one variant each.
func TestBatchInvariance(t *testing.T) {
	items := batchVecs(201, 2200, 10)
	variants := []struct {
		name    string
		opts    Options
		cascade bool
	}{
		{"binary", Options{Order: 2, LeafCapacity: 8, Build: Build{Seed: 5}}, false},
		{"m4/quantized", Options{Order: 4, LeafCapacity: 16, Quantize: quant.SQ8, Build: Build{Seed: 6}}, false},
		{"m3/cascade", Options{Order: 3, LeafCapacity: 12, Build: Build{Seed: 7}}, true},
	}
	queries := batchVecs(202, 30, 10)
	queries = append(queries, items[5], items[1717])
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dist := metric.NewCounter(metric.L2)
			tree, err := New(items, dist, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			if v.cascade {
				if err := tree.EnableCascade(cascade.Options{}); err != nil {
					t.Fatal(err)
				}
			}
			var reqs []index.Query[[]float64]
			for qi, q := range queries {
				reqs = append(reqs, index.RangeQuery(q, []float64{0.3, 0.7}[qi%2]))
				reqs = append(reqs, index.KNNQuery(q, []int{1, 10}[qi%2]))
				switch qi % 3 {
				case 0:
					r := index.RangeQuery(q, 0.5)
					r.Opts.Epsilon = 0.5
					reqs = append(reqs, r)
				case 1:
					r := index.KNNQuery(q, 5)
					r.Opts.Budget = 150
					reqs = append(reqs, r)
				case 2:
					reqs = append(reqs, index.RangeQuery(q, 0))
				}
			}
			checkBatchMatchesSequential(t, tree, dist, reqs, batchSizes, vecEq)
		})
	}
}

// TestBatchEdit pins batch == sequential over strings under edit
// distance — no registered block kernel, so the fallback one-at-a-time
// block adapter carries the traversal.
func TestBatchEdit(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 204))
	const letters = "abcde"
	words := make([]string, 500)
	for i := range words {
		n := 3 + rng.IntN(5)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.IntN(len(letters))]
		}
		words[i] = string(b)
	}
	dist := metric.NewCounter(metric.Edit)
	tree, err := New(words, dist, Options{Order: 3, LeafCapacity: 6, Build: Build{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []index.Query[string]
	for qi := 0; qi < 20; qi++ {
		q := words[rng.IntN(len(words))] + string(letters[rng.IntN(len(letters))])
		reqs = append(reqs, index.RangeQuery(q, float64(1+qi%3)))
		reqs = append(reqs, index.KNNQuery(q, 1+qi%6))
	}
	checkBatchMatchesSequential(t, tree, dist, reqs, batchSizes,
		func(a, b string) bool { return a == b })
}

// TestBatchSteadyStateAllocations pins the pooled batch scratch: once
// warm, a batch of empty-result range queries allocates nothing.
func TestBatchSteadyStateAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := batchVecs(205, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Order: 3, LeafCapacity: 16, Build: Build{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	reqs := make([]index.Query[[]float64], 16)
	for i := range reqs {
		reqs[i] = index.RangeQuery(far, 0.5)
	}
	results := make([]index.Result[[]float64], len(reqs))
	tree.SearchBatch(reqs, results) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() {
		tree.SearchBatch(reqs, results)
	}); allocs != 0 {
		t.Errorf("steady-state batch Range allocated %.1f times per batch, want 0", allocs)
	}
}
