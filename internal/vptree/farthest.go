package vptree

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// Farthest-object queries (paper §2): the triangle-inequality bounds of
// the spherical shells are used in reverse. For a vantage point at
// distance d from the query, a shell [lo, hi] bounds its members'
// distances to the query within [gap(d, lo, hi), d+hi].

// RangeFarther returns every indexed item at distance ≥ r from q.
func (t *Tree[T]) RangeFarther(q T, r float64) []T {
	if t.root == nil {
		return nil
	}
	var out []T
	if r <= 0 {
		collectAll(t.root, &out)
		return out
	}
	t.rangeFartherNode(t.root, q, r, &out)
	return out
}

func (t *Tree[T]) rangeFartherNode(n *node[T], q T, r float64, out *[]T) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			if t.dist.Distance(q, it) >= r {
				*out = append(*out, it)
			}
		}
		return
	}
	d := t.dist.Distance(q, n.vantage)
	if d >= r {
		*out = append(*out, n.vantage)
	}
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		if d+hi < r {
			continue // whole shell provably too close
		}
		gap := 0.0
		switch {
		case d < lo:
			gap = lo - d
		case d > hi:
			gap = d - hi
		}
		if gap >= r {
			collectAll(c, out) // whole shell provably far enough
			continue
		}
		t.rangeFartherNode(c, q, r, out)
	}
}

func collectAll[T any](n *node[T], out *[]T) {
	if n == nil {
		return
	}
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	*out = append(*out, n.vantage)
	for _, c := range n.children {
		collectAll(c, out)
	}
}

// KFarthest returns the k indexed items farthest from q in descending
// distance order.
func (t *Tree[T]) KFarthest(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKLargest[T](k)
	// NodeQueue is a min-heap; negated upper bounds make it pop the
	// subtree with the largest upper bound first.
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, negUB, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(-negUB) {
			break
		}
		if n.leaf {
			for _, it := range n.items {
				best.Push(it, t.dist.Distance(q, it))
			}
			continue
		}
		d := t.dist.Distance(q, n.vantage)
		best.Push(n.vantage, d)
		for g, c := range n.children {
			if c == nil {
				continue
			}
			_, hi := shellBounds(n.cutoffs, g)
			ub := d + hi
			if best.Accepts(ub) {
				queue.PushNode(c, -ub)
			}
		}
	}
	return best.Sorted()
}
