package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/testutil"
)

// TestQueryAllocationsUnaffectedByHooks mirrors the mvp-tree test: an
// armed Observer must not add any allocation per query over the
// disarmed nil-check fast path.
func TestQueryAllocationsUnaffectedByHooks(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	rng := rand.New(rand.NewPCG(5, 13))
	items := make([][]float64, 800)
	for i := range items {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	tree, err := New(items, metric.NewCounter(metric.L2), Options{Order: 2, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	q := items[0]

	disarmedRange := testing.AllocsPerRun(100, func() { tree.RangeWithStats(q, 0.3) })
	disarmedKNN := testing.AllocsPerRun(100, func() { tree.KNNWithStats(q, 5) })

	tree.SetObserver(obs.NewObserver(1))
	defer tree.SetObserver(nil)
	armedRange := testing.AllocsPerRun(100, func() { tree.RangeWithStats(q, 0.3) })
	armedKNN := testing.AllocsPerRun(100, func() { tree.KNNWithStats(q, 5) })

	if armedRange > disarmedRange {
		t.Errorf("range: observer added allocations: %.1f armed vs %.1f disarmed", armedRange, disarmedRange)
	}
	if armedKNN > disarmedKNN {
		t.Errorf("knn: observer added allocations: %.1f armed vs %.1f disarmed", armedKNN, disarmedKNN)
	}
}
