package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// TestSteadyStateQueryAllocations pins the PR's zero-alloc serving claim
// absolutely for the vp-tree: a range query that returns nothing
// performs zero heap allocations, and a kNN query at most one — the
// result slice. (AllocsPerRun runs the body once before measuring,
// which warms the kNN scratch pool; the range recursion needs no
// scratch at all.)
func TestSteadyStateQueryAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	rng := rand.New(rand.NewPCG(13, 31))
	items := make([][]float64, 2000)
	for i := range items {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Order: 3, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}

	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	near := items[17]

	if got := tree.Range(far, 0.5); len(got) != 0 {
		t.Fatalf("far query returned %d results, want 0", len(got))
	}
	if got := tree.KNN(near, 10); len(got) != 10 {
		t.Fatalf("KNN returned %d results, want 10", len(got))
	}

	if allocs := testing.AllocsPerRun(200, func() { tree.Range(far, 0.5) }); allocs != 0 {
		t.Errorf("empty-result Range allocated %.1f times per query, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.KNN(near, 10) }); allocs > 1 {
		t.Errorf("KNN allocated %.1f times per query, want <= 1 (the result slice)", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.RangeWithStats(far, 0.5) }); allocs != 0 {
		t.Errorf("empty-result RangeWithStats allocated %.1f times per query, want 0", allocs)
	}
}
