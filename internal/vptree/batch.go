package vptree

// Shared-traversal batch execution, the vp-tree counterpart of the
// mvp-tree's batch.go. SearchBatch answers a group of queries by
// descending the tree once: each node's vantage distances are computed
// for all still-active queries with one blocked metric call
// (metric.Counter.BlockKernel), per-query prune state lives in pooled
// struct-of-arrays scratch, and each leaf bucket is streamed item-major
// once for the group. Results, order, SearchStats and counter deltas
// are byte-identical to per-query Search at every batch size:
//
//   - Exact range is a DFS whose per-node decisions depend only on
//     (q, r), so a shared DFS with per-query active lists visits, per
//     query, exactly the sequential node set in the same child order.
//   - Exact kNN is best-first with one node fully processed per pop;
//     lockstep rounds (each active query pops one node, pops grouped by
//     node) preserve each query's pop sequence and τ evolution exactly
//     because no state is shared between queries.
//   - Block kernels are bit-identical to the one-to-one bounded kernels
//     for every (query, point, bound) triple.
//
// Approximate modes, intra-query parallel requests and external kNN
// bounds fall back to per-query Search inside the same invocation.

import (
	"math"

	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

var _ index.BatchSearcher[int] = (*Tree[int])(nil)

// knnSlot is one query's private best-first state inside a batch.
type knnSlot[T any] struct {
	best  *heapx.KBest[T]
	queue heapx.NodeQueue[*node[T]]
}

// knnVisit is one query's pop in a lockstep round: the slot, the popped
// bound, and the τ snapshot read at pop time.
type knnVisit struct {
	slot  int32
	bound float64
	tau   float64
}

// batchScratch is the pooled working state of one SearchBatch call.
type batchScratch[T any] struct {
	// Shared gather buffers for blocked vantage calls.
	pts    []T
	bounds []float64
	dv     []float64
	// Survivor gather buffers for item-major leaf scans.
	spts    []T
	sbounds []float64
	sdv     []float64
	sslots  []int32

	// Stack-discipline arenas for the shared range DFS.
	act    []int32
	dstack []float64

	// Per-slot query state.
	qs          []T
	rads        []float64
	stats       []SearchStats
	outs        [][]T
	spans       []obs.Span
	ccs         []*cascade.Cache
	qpreps      []quant.Prepared
	quantOn     []bool
	quantPruned []int

	// Leaf-local per-slot stage tallies.
	fC, fQ, comp []int

	// Lockstep kNN bookkeeping.
	knn      []knnSlot[T]
	rangeLst []int32
	knnLst   []int32
	rounds   []int32
	gMap     map[*node[T]]int32
	gNodes   []*node[T]
	gVisits  [][]knnVisit
}

func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growTo(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]float64, n, 2*n)
	copy(ns, s)
	return ns
}

func (t *Tree[T]) getBatchScratch(b int) *batchScratch[T] {
	var bs *batchScratch[T]
	if v := t.bscratch.Get(); v != nil {
		bs = v.(*batchScratch[T])
	} else {
		bs = &batchScratch[T]{gMap: make(map[*node[T]]int32)}
	}
	bs.reserve(b)
	return bs
}

// reserve sizes every per-slot array for b slots (keeping pooled
// sub-state alive across growth) and resets the per-call lists.
func (bs *batchScratch[T]) reserve(b int) {
	if cap(bs.qs) < b {
		bs.qs = make([]T, b)
		bs.rads = make([]float64, b)
		bs.stats = make([]SearchStats, b)
		bs.outs = make([][]T, b)
		bs.spans = make([]obs.Span, b)
		bs.ccs = make([]*cascade.Cache, b)
		bs.qpreps = make([]quant.Prepared, b)
		bs.quantOn = make([]bool, b)
		bs.quantPruned = make([]int, b)
		bs.fC = make([]int, b)
		bs.fQ = make([]int, b)
		bs.comp = make([]int, b)
		knn := make([]knnSlot[T], b)
		copy(knn, bs.knn)
		bs.knn = knn
	} else {
		bs.qs = bs.qs[:b]
		bs.rads = bs.rads[:b]
		bs.stats = bs.stats[:b]
		bs.outs = bs.outs[:b]
		bs.spans = bs.spans[:b]
		bs.ccs = bs.ccs[:b]
		bs.qpreps = bs.qpreps[:b]
		bs.quantOn = bs.quantOn[:b]
		bs.quantPruned = bs.quantPruned[:b]
		bs.fC, bs.fQ, bs.comp = bs.fC[:b], bs.fQ[:b], bs.comp[:b]
		bs.knn = bs.knn[:b]
	}
	bs.rangeLst = bs.rangeLst[:0]
	bs.knnLst = bs.knnLst[:0]
	bs.rounds = bs.rounds[:0]
}

// putBatchScratch clears every reference the scratch took from the
// caller or the tree so pooling never pins them.
func (t *Tree[T]) putBatchScratch(bs *batchScratch[T]) {
	var zero T
	for i := range bs.qs {
		bs.qs[i] = zero
		bs.outs[i] = nil
		bs.ccs[i] = nil
		bs.qpreps[i].Release()
		bs.quantOn[i] = false
	}
	for i := range bs.knn {
		sl := &bs.knn[i]
		sl.queue.Reset()
		if sl.best != nil {
			sl.best.Reset(1)
		}
	}
	clear(bs.pts)
	bs.pts = bs.pts[:0]
	clear(bs.spts)
	bs.spts = bs.spts[:0]
	bs.act = bs.act[:0]
	bs.dstack = bs.dstack[:0]
	clear(bs.gMap)
	for i := range bs.gNodes {
		bs.gNodes[i] = nil
	}
	t.bscratch.Put(bs)
}

// prepareQuantSlot is prepareQuant for one batch slot.
func (t *Tree[T]) prepareQuantSlot(bs *batchScratch[T], i int, q T) {
	bs.quantOn[i] = false
	bs.quantPruned[i] = 0
	if t.qset == nil {
		return
	}
	qv, ok := any(q).([]float64)
	if !ok {
		return
	}
	t.qset.Prepare(&bs.qpreps[i], qv)
	bs.quantOn[i] = true
}

// SearchBatch answers reqs[i] into results[i] with one shared traversal
// per query group (index.BatchSearcher). It panics unless len(results)
// == len(reqs); every results[i] is byte-identical to Search(reqs[i]).
func (t *Tree[T]) SearchBatch(reqs []index.Query[T], results []index.Result[T]) {
	if len(reqs) != len(results) {
		panic("vptree: SearchBatch requires len(results) == len(reqs)")
	}
	if len(reqs) == 0 {
		return
	}
	if len(reqs) == 1 {
		// A group of one shares nothing; the per-query path is the
		// reference the batch is pinned against, so delegating is
		// identical by definition and skips the group scaffolding.
		results[0] = t.Search(reqs[0])
		return
	}
	bs := t.getBatchScratch(len(reqs))
	for i := range reqs {
		req := &reqs[i]
		if req.K > 0 {
			if req.Opts.Approximate() || req.Opts.Bound != nil {
				results[i] = t.Search(*req)
				continue
			}
			bs.spans[i] = t.StartQuery(obs.KindKNN)
			bs.stats[i] = SearchStats{}
			if t.root == nil {
				bs.spans[i].Done(&bs.stats[i])
				results[i] = index.Result[T]{Stats: bs.stats[i]}
				continue
			}
			bs.qs[i] = req.Point
			t.prepareQuantSlot(bs, i, req.Point)
			if t.cas != nil {
				bs.ccs[i] = t.cas.Get()
			}
			sl := &bs.knn[i]
			if sl.best == nil {
				sl.best = heapx.NewKBest[T](req.K)
			} else {
				sl.best.Reset(req.K)
			}
			sl.queue.PushNode(t.root, 0)
			bs.knnLst = append(bs.knnLst, int32(i))
			continue
		}
		if req.Opts.Approximate() || req.Opts.Workers > 1 {
			results[i] = t.Search(*req)
			continue
		}
		bs.spans[i] = t.StartQuery(obs.KindRange)
		bs.stats[i] = SearchStats{}
		if req.Radius < 0 || t.root == nil {
			bs.spans[i].Done(&bs.stats[i])
			results[i] = index.Result[T]{Stats: bs.stats[i]}
			continue
		}
		bs.qs[i] = req.Point
		bs.rads[i] = req.Radius
		t.prepareQuantSlot(bs, i, req.Point)
		if t.cas != nil {
			bs.ccs[i] = t.cas.Get()
		}
		bs.rangeLst = append(bs.rangeLst, int32(i))
	}
	if len(bs.rangeLst) > 0 {
		t.rangeBatchNode(t.root, bs.rangeLst, bs)
		for _, j := range bs.rangeLst {
			s := &bs.stats[j]
			if t.cas != nil {
				t.cas.Put(bs.ccs[j])
				bs.ccs[j] = nil
			}
			t.ObserveQuantPruned(bs.quantPruned[j])
			s.Results = len(bs.outs[j])
			bs.spans[j].Done(s)
			results[j] = index.Result[T]{Items: bs.outs[j], Stats: *s}
			bs.outs[j] = nil // the result slice escapes to the caller
		}
	}
	if len(bs.knnLst) > 0 {
		t.knnBatch(bs)
		for _, j := range bs.knnLst {
			sl := &bs.knn[j]
			out := sl.best.Sorted()
			s := &bs.stats[j]
			if t.cas != nil {
				t.cas.Put(bs.ccs[j])
				bs.ccs[j] = nil
			}
			t.ObserveQuantPruned(bs.quantPruned[j])
			s.Results = len(out)
			bs.spans[j].Done(s)
			results[j] = index.Result[T]{Neighbors: out, Stats: *s}
		}
	}
	t.putBatchScratch(bs)
}

// rangeBatchNode is rangeNodeCas for a group: act holds the slots whose
// query balls can still reach n.
func (t *Tree[T]) rangeBatchNode(n *node[T], act []int32, bs *batchScratch[T]) {
	if n == nil || len(act) == 0 {
		return
	}
	for _, j := range act {
		bs.stats[j].NodesVisited++
		t.TraceNode(n.leaf)
	}
	if n.leaf {
		t.rangeBatchLeaf(n, act, bs)
		return
	}

	na := len(act)
	pts := bs.pts[:0]
	for _, j := range act {
		pts = append(pts, bs.qs[j])
	}
	bs.pts = pts
	blk := t.dist.BlockKernel()

	// The vantage distances live on the dstack so sibling recursion
	// cannot clobber them; one blocked call replaces na sequential ones.
	// Stamped cascade pivots a query's cache still wants are computed
	// exactly (+Inf bound) and registered; everyone else abandons past
	// r+cutMax, exactly as rangeNodeCas does.
	dBase := len(bs.dstack)
	bs.dstack = growTo(bs.dstack, dBase+na)
	dv := bs.dstack[dBase : dBase+na]
	bounds := growF(bs.bounds, na)
	bs.bounds = bounds
	for i, j := range act {
		if cc := bs.ccs[j]; cc != nil && n.cas != 0 && cc.Wants() {
			bounds[i] = math.Inf(1)
		} else {
			bounds[i] = bs.rads[j] + n.cutMax
		}
	}
	blk(n.vantage, pts, bounds, dv)
	if n.cas != 0 {
		for i, j := range act {
			if cc := bs.ccs[j]; cc != nil && cc.Wants() {
				cc.Register(n.cas-1, dv[i])
			}
		}
	}
	t.dist.Add(int64(na))

	for i, j := range act {
		s := &bs.stats[j]
		s.VantagePoints++
		t.TraceDistance(1)
		if dv[i] <= bs.rads[j] {
			bs.outs[j] = append(bs.outs[j], n.vantage)
		}
	}

	// Child visiting order is g ascending — each query's node visit
	// order is exactly its sequential DFS order. The shell window check
	// (and its prune accounting) runs for nil children too, as the
	// sequential code's recursion into nil does nothing but the else
	// branch still counts.
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		gBase := len(bs.act)
		for i, j := range act {
			r := bs.rads[j]
			if dv[i]+r >= lo && dv[i]-r <= hi {
				bs.act = append(bs.act, j)
			} else {
				bs.stats[j].ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
		gAct := bs.act[gBase:]
		if c != nil && len(gAct) > 0 {
			t.rangeBatchNode(c, gAct, bs)
		}
		bs.act = bs.act[:gBase]
	}
	bs.dstack = bs.dstack[:dBase]
}

// rangeBatchLeaf streams one leaf bucket item-major for the group:
// every still-interested query filters item i through its cascade and
// quantized bounds in the sequential order, and one blocked call
// evaluates the survivors. The vp-tree stores no leaf distances, so a
// candidate passing those filters always reaches the kernel.
func (t *Tree[T]) rangeBatchLeaf(n *node[T], act []int32, bs *batchScratch[T]) {
	for _, j := range act {
		bs.stats[j].LeavesVisited++
		bs.fC[j], bs.fQ[j], bs.comp[j] = 0, 0, 0
	}
	blk := t.dist.BlockKernel()
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	hasQuant := qcodes != nil || qf32 != nil
	items := n.items
	for i := range items {
		surv := bs.sslots[:0]
		spts := bs.spts[:0]
		sbounds := bs.sbounds[:0]
		for _, j := range act {
			r := bs.rads[j]
			if cc := bs.ccs[j]; cc != nil && cc.Registered() > 0 {
				if cas.LowerBound(cc, base+int32(i)) > r {
					bs.fC[j]++
					continue
				}
			}
			bs.comp[j]++
			if hasQuant && bs.quantOn[j] && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, r) {
				bs.fQ[j]++
				continue
			}
			surv = append(surv, j)
			spts = append(spts, bs.qs[j])
			sbounds = append(sbounds, r)
		}
		bs.sslots, bs.spts, bs.sbounds = surv, spts, sbounds
		if len(surv) > 0 {
			sdv := growF(bs.sdv, len(surv))
			bs.sdv = sdv
			blk(items[i], spts, sbounds, sdv)
			for k, j := range surv {
				if sdv[k] <= sbounds[k] {
					bs.outs[j] = append(bs.outs[j], items[i])
				}
			}
		}
	}
	total := 0
	for _, j := range act {
		total += bs.comp[j]
		s := &bs.stats[j]
		s.Candidates += len(items)
		s.Computed += bs.comp[j]
		s.FilteredByCascade += bs.fC[j]
		bs.quantPruned[j] += bs.fQ[j]
		if bs.fC[j] > 0 {
			t.TracePrune(obs.FilterCascade, bs.fC[j])
		}
		if bs.fQ[j] > 0 {
			t.TracePrune(obs.FilterQuantized, bs.fQ[j])
		}
		if bs.comp[j] > 0 {
			t.TraceDistance(bs.comp[j])
		}
	}
	t.dist.Add(int64(total))
}

// knnBatchLeaf1 is knnBatchLeaf for a singleton group. Once frontiers
// diverge, most lockstep rounds pop distinct nodes and every group has
// one member, where the gather/blocked-call scaffolding only costs.
// This path runs the same filters in the same order with the direct
// one-to-one kernel — bit-identical to one-element blocked calls by the
// block contract — and settles stats and counts exactly as the group
// path does.
func (t *Tree[T]) knnBatchLeaf1(n *node[T], v knnVisit, bs *batchScratch[T]) {
	j := v.slot
	s := &bs.stats[j]
	s.NodesVisited++
	t.TraceNode(true)
	s.LeavesVisited++
	best := bs.knn[j].best
	kernel := t.dist.Kernel()
	q := bs.qs[j]
	cc := bs.ccs[j]
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	useQuant := bs.quantOn[j] && (qcodes != nil || qf32 != nil)
	hasCas := cc != nil && cc.Registered() > 0
	fC, fQ, comp := 0, 0, 0
	for i, it := range n.items {
		if hasCas {
			if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
				fC++
				continue
			}
		}
		comp++
		cb := best.Threshold()
		if useQuant && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, cb) {
			fQ++
			continue
		}
		if d := kernel(q, it, cb); d <= cb {
			best.Push(it, d)
		}
	}
	s.Candidates += len(n.items)
	s.Computed += comp
	s.FilteredByCascade += fC
	bs.quantPruned[j] += fQ
	if fC > 0 {
		t.TracePrune(obs.FilterCascade, fC)
	}
	if fQ > 0 {
		t.TracePrune(obs.FilterQuantized, fQ)
	}
	if comp > 0 {
		t.TraceDistance(comp)
	}
	t.dist.Add(int64(comp))
}

// knnBatch runs the exact kNN slots of a batch in lockstep rounds: each
// round, every still-active query pops exactly one node (the same step
// the sequential best-first loop takes), pops are grouped by node, and
// each group is processed with blocked kernel calls. No state is shared
// between queries, so each query's pop sequence, τ evolution, pushes
// and stats are exactly its sequential ones.
func (t *Tree[T]) knnBatch(bs *batchScratch[T]) {
	rounds := append(bs.rounds[:0], bs.knnLst...)
	bs.rounds = rounds
	nGroups := 0
	for len(rounds) > 0 {
		// Lone survivor: with one active query no sharing is possible, so
		// drain its queue in the sequential loop shape without any round
		// or grouping bookkeeping. The pop sequence is unchanged — it is
		// exactly what the rounds would have produced.
		if len(rounds) == 1 {
			j := rounds[0]
			sl := &bs.knn[j]
			for {
				pn, bound, ok := sl.queue.PopNode()
				if !ok {
					break
				}
				tau := sl.best.Threshold()
				if bound >= tau {
					break
				}
				v := knnVisit{slot: j, bound: bound, tau: tau}
				if pn.leaf {
					t.knnBatchLeaf1(pn, v, bs)
				} else {
					t.knnBatchInternal1(pn, v, bs)
				}
			}
			return
		}
		w := 0
		for _, j := range rounds {
			sl := &bs.knn[j]
			pn, bound, ok := sl.queue.PopNode()
			if !ok {
				continue // queue drained: this query is finished
			}
			tau := sl.best.Threshold()
			if bound >= tau {
				continue // sequential break: the rest of the queue is dead
			}
			rounds[w] = j
			w++
			gi, seen := bs.gMap[pn]
			if !seen {
				gi = int32(nGroups)
				bs.gMap[pn] = gi
				if nGroups == len(bs.gNodes) {
					bs.gNodes = append(bs.gNodes, pn)
					bs.gVisits = append(bs.gVisits, nil)
				} else {
					bs.gNodes[nGroups] = pn
					bs.gVisits[nGroups] = bs.gVisits[nGroups][:0]
				}
				nGroups++
			}
			bs.gVisits[gi] = append(bs.gVisits[gi], knnVisit{slot: j, bound: bound, tau: tau})
		}
		rounds = rounds[:w]
		for gi := 0; gi < nGroups; gi++ {
			n := bs.gNodes[gi]
			vis := bs.gVisits[gi]
			if n.leaf {
				t.knnBatchLeaf(n, vis, bs)
			} else {
				t.knnBatchInternal(n, vis, bs)
			}
		}
		clear(bs.gMap)
		nGroups = 0
	}
}

// knnBatchInternal1 is knnBatchInternal for a singleton group: the
// sequential internal-node body run directly against the slot's state,
// with none of the gather scaffolding. The vp-tree pops many cheap
// internal nodes per query, so this path carries most of the lockstep
// tail.
func (t *Tree[T]) knnBatchInternal1(n *node[T], v knnVisit, bs *batchScratch[T]) {
	j := v.slot
	s := &bs.stats[j]
	s.NodesVisited++
	t.TraceNode(false)
	sl := &bs.knn[j]
	cc := bs.ccs[j]
	bound := v.tau + n.cutMax
	wants := cc != nil && n.cas != 0 && cc.Wants()
	if wants {
		bound = math.Inf(1)
	}
	d := t.dist.Kernel()(bs.qs[j], n.vantage, bound)
	if wants {
		cc.Register(n.cas-1, d)
	}
	t.dist.Add(1)
	if d <= v.tau+n.cutMax {
		sl.best.Push(n.vantage, d)
	}
	s.VantagePoints++
	t.TraceDistance(1)
	for g, c := range n.children {
		if c == nil {
			continue
		}
		lo, hi := shellBounds(n.cutoffs, g)
		lb := 0.0
		if d < lo {
			lb = lo - d
		} else if d > hi {
			lb = d - hi
		}
		if sl.best.Accepts(lb) {
			sl.queue.PushNode(c, lb)
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// knnBatchInternal processes one internal node for every group member,
// mirroring the internal-node body of KNNWithStatsBound with ext == nil.
func (t *Tree[T]) knnBatchInternal(n *node[T], vis []knnVisit, bs *batchScratch[T]) {
	if len(vis) == 1 {
		t.knnBatchInternal1(n, vis[0], bs)
		return
	}
	nv := len(vis)
	for _, v := range vis {
		bs.stats[v.slot].NodesVisited++
		t.TraceNode(false)
	}
	pts := bs.pts[:0]
	for _, v := range vis {
		pts = append(pts, bs.qs[v.slot])
	}
	bs.pts = pts
	blk := t.dist.BlockKernel()
	dv := growF(bs.dv, nv)
	bs.dv = dv
	bounds := growF(bs.bounds, nv)
	bs.bounds = bounds
	for i, v := range vis {
		if cc := bs.ccs[v.slot]; cc != nil && n.cas != 0 && cc.Wants() {
			bounds[i] = math.Inf(1)
		} else {
			bounds[i] = v.tau + n.cutMax
		}
	}
	blk(n.vantage, pts, bounds, dv)
	if n.cas != 0 {
		for i, v := range vis {
			if cc := bs.ccs[v.slot]; cc != nil && cc.Wants() {
				cc.Register(n.cas-1, dv[i])
			}
		}
	}
	t.dist.Add(int64(nv))

	for i, v := range vis {
		sl := &bs.knn[v.slot]
		s := &bs.stats[v.slot]
		d := dv[i]
		if d <= v.tau+n.cutMax {
			sl.best.Push(n.vantage, d)
		}
		s.VantagePoints++
		t.TraceDistance(1)
		for g, c := range n.children {
			if c == nil {
				continue
			}
			lo, hi := shellBounds(n.cutoffs, g)
			lb := 0.0
			if d < lo {
				lb = lo - d
			} else if d > hi {
				lb = d - hi
			}
			if sl.best.Accepts(lb) {
				sl.queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
}

// knnBatchLeaf processes one leaf bucket for every group member,
// mirroring the leaf body of KNNWithStatsBound with ext == nil: each
// member applies its cascade and quantized filters in item order and
// one blocked call evaluates the survivors against each member's
// current τ.
func (t *Tree[T]) knnBatchLeaf(n *node[T], vis []knnVisit, bs *batchScratch[T]) {
	if len(vis) == 1 {
		t.knnBatchLeaf1(n, vis[0], bs)
		return
	}
	for _, v := range vis {
		s := &bs.stats[v.slot]
		s.NodesVisited++
		t.TraceNode(true)
		s.LeavesVisited++
		bs.fC[v.slot], bs.fQ[v.slot], bs.comp[v.slot] = 0, 0, 0
	}
	blk := t.dist.BlockKernel()
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	hasQuant := qcodes != nil || qf32 != nil
	items := n.items
	for i := range items {
		surv := bs.sslots[:0]
		spts := bs.spts[:0]
		sbounds := bs.sbounds[:0]
		for _, v := range vis {
			j := v.slot
			sl := &bs.knn[j]
			if cc := bs.ccs[j]; cc != nil && cc.Registered() > 0 {
				if clb := cas.LowerBound(cc, base+int32(i)); !sl.best.Accepts(clb) {
					bs.fC[j]++
					continue
				}
			}
			bs.comp[j]++
			cb := sl.best.Threshold()
			if hasQuant && bs.quantOn[j] && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, cb) {
				bs.fQ[j]++
				continue
			}
			surv = append(surv, j)
			spts = append(spts, bs.qs[j])
			sbounds = append(sbounds, cb)
		}
		bs.sslots, bs.spts, bs.sbounds = surv, spts, sbounds
		if len(surv) > 0 {
			sdv := growF(bs.sdv, len(surv))
			bs.sdv = sdv
			blk(items[i], spts, sbounds, sdv)
			for k, j := range surv {
				if d := sdv[k]; d <= sbounds[k] {
					bs.knn[j].best.Push(items[i], d)
				}
			}
		}
	}
	total := 0
	for _, v := range vis {
		j := v.slot
		total += bs.comp[j]
		s := &bs.stats[j]
		s.Candidates += len(items)
		s.Computed += bs.comp[j]
		s.FilteredByCascade += bs.fC[j]
		bs.quantPruned[j] += bs.fQ[j]
		if bs.fC[j] > 0 {
			t.TracePrune(obs.FilterCascade, bs.fC[j])
		}
		if bs.fQ[j] > 0 {
			t.TracePrune(obs.FilterQuantized, bs.fQ[j])
		}
		if bs.comp[j] > 0 {
			t.TraceDistance(bs.comp[j])
		}
	}
	t.dist.Add(int64(total))
}
