package vptree

import "mvptree/internal/index"

// SearchStats breaks a vp-tree range search down by stage, the
// counterpart of the mvp-tree's instrumentation. It is the shared
// index.SearchStats (the alias preserves existing call sites). Note the
// structural difference the vp-tree exposes through it: with no stored
// leaf distances, FilteredByD and FilteredByPath stay zero, every leaf
// candidate costs a real distance computation (Computed == Candidates
// always), and every visited internal node costs one vantage-point
// computation.
type SearchStats = index.SearchStats

// RangeWithStats is Range plus the per-query breakdown.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	var s SearchStats
	if r < 0 {
		return nil, s
	}
	var out []T
	t.rangeNodeStats(t.root, q, r, &out, &s)
	s.Results = len(out)
	return out, s
}

func (t *Tree[T]) rangeNodeStats(n *node[T], q T, r float64, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	if n.leaf {
		s.LeavesVisited++
		for _, it := range n.items {
			s.Candidates++
			s.Computed++
			if t.dist.Distance(q, it) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	d := t.dist.Distance(q, n.vantage)
	s.VantagePoints++
	if d <= r {
		*out = append(*out, n.vantage)
	}
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		if d+r >= lo && d-r <= hi {
			t.rangeNodeStats(c, q, r, out, s)
		} else {
			s.ShellsPruned++
		}
	}
}
