package vptree

import (
	"math"

	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// SearchStats breaks a vp-tree range search down by stage, the
// counterpart of the mvp-tree's instrumentation. It is the shared
// index.SearchStats (the alias preserves existing call sites). Note the
// structural difference the vp-tree exposes through it: with no stored
// leaf distances, FilteredByD and FilteredByPath stay zero, every leaf
// candidate costs a real distance computation (Computed == Candidates
// always), and every visited internal node costs one vantage-point
// computation.
type SearchStats = index.SearchStats

// knnScratch is the pooled best-first traversal state, so steady-state
// KNN allocates nothing but the result slice. Range queries borrow it
// too when the quantized pre-filter is armed (its per-query Prepared
// table lives here).
type knnScratch[T any] struct {
	best  *heapx.KBest[T]
	queue heapx.NodeQueue[*node[T]]
	// Quantized pre-filter state, re-armed per query by prepareQuant
	// (quantOn guards staleness across pool reuse); quantPruned tallies
	// the query's skipped exact evaluations for the Observer.
	qprep       quant.Prepared
	quantOn     bool
	quantPruned int
}

func (t *Tree[T]) getScratch() *knnScratch[T] {
	if v := t.scratch.Get(); v != nil {
		return v.(*knnScratch[T])
	}
	return &knnScratch[T]{}
}

func (t *Tree[T]) putScratch(sc *knnScratch[T]) {
	sc.quantOn = false
	sc.qprep.Release()
	sc.queue.Reset()
	if sc.best != nil {
		sc.best.Reset(1) // clears retained neighbors; re-armed per query
	}
	t.scratch.Put(sc)
}

// RangeWithStats is Range plus the per-query breakdown. It is the only
// range traversal implementation — Range delegates here.
//
// Both distance roles are threshold-only, so both use the metric's
// early-abandoning fast path when one is attached: leaf candidates only
// need membership (bound r), and a vantage distance certified past
// r+cutMax prunes every bounded shell and visits the unbounded
// outermost one — exactly what the exact distance would do. Results,
// distance counts and stats are identical with or without the fast path.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return nil, s
	}
	var out []T
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	// The range traversal only needs scratch for the quantized
	// pre-filter's per-query state; without it the path stays
	// scratch-free as before.
	var sc *knnScratch[T]
	if t.qset != nil {
		sc = t.getScratch()
		t.prepareQuant(sc, q)
	}
	t.rangeNodeCas(t.root, q, r, cc, sc, &out, &s)
	if t.cas != nil {
		t.cas.Put(cc)
	}
	if sc != nil {
		t.finishQuant(sc)
		t.putScratch(sc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// rangeNodeStats is the uncascaded, unquantized traversal, kept as the
// entry point for the intra-query parallel search (whose workers
// cannot share a single-owner cascade cache or prepared filter state).
func (t *Tree[T]) rangeNodeStats(n *node[T], q T, r float64, out *[]T, s *SearchStats) {
	t.rangeNodeCas(n, q, r, nil, nil, out, s)
}

func (t *Tree[T]) rangeNodeCas(n *node[T], q T, r float64, cc *cascade.Cache, sc *knnScratch[T], out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		// Candidate distances go through the uncounted kernel and the
		// batch is settled once — the count matches per-call accounting.
		// The cascade lower bound is the vp-tree's only leaf filter (it
		// stores no leaf distances): a candidate whose bound over the
		// registered vantage distances exceeds r cannot be a result.
		kernel := t.dist.Kernel()
		// Quantized pre-filter state (quantize.go): a pruned candidate
		// still joins computed — the skip stands in for an abandoned
		// kernel call — so every stat and counter below is unchanged.
		useQuant := sc != nil && sc.quantOn && (n.qcodes != nil || n.qf32 != nil)
		var qset *quant.Set
		var qprep *quant.Prepared
		if useQuant {
			qset, qprep = t.qset, &sc.qprep
		}
		if cc != nil && cc.Registered() > 0 {
			cas, base := t.cas, n.casBase
			filtered, filteredQuant, computed := 0, 0, 0
			for i, it := range n.items {
				if cas.LowerBound(cc, base+int32(i)) > r {
					filtered++
					continue
				}
				computed++
				if useQuant && qset.PruneAt(qprep, n.qcodes, n.qf32, i, r) {
					filteredQuant++
					continue
				}
				if kernel(q, it, r) <= r {
					*out = append(*out, it)
				}
			}
			t.dist.Add(int64(computed))
			s.Candidates += len(n.items)
			s.Computed += computed
			s.FilteredByCascade += filtered
			if sc != nil {
				sc.quantPruned += filteredQuant
			}
			if filtered > 0 {
				t.TracePrune(obs.FilterCascade, filtered)
			}
			if filteredQuant > 0 {
				t.TracePrune(obs.FilterQuantized, filteredQuant)
			}
			if computed > 0 {
				t.TraceDistance(computed)
			}
			return
		}
		filteredQuant := 0
		for i, it := range n.items {
			if useQuant && qset.PruneAt(qprep, n.qcodes, n.qf32, i, r) {
				filteredQuant++
				continue
			}
			if kernel(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		t.dist.Add(int64(len(n.items)))
		s.Candidates += len(n.items)
		s.Computed += len(n.items)
		if sc != nil {
			sc.quantPruned += filteredQuant
		}
		if filteredQuant > 0 {
			t.TracePrune(obs.FilterQuantized, filteredQuant)
		}
		if len(n.items) > 0 {
			t.TraceDistance(len(n.items))
		}
		return
	}
	// A vantage point stamped as a cascade pivot is computed exactly
	// while the cache still wants registrations (an exact value is a
	// valid bounded-kernel result, so every shell decision is
	// unchanged) and doubles as a global filter bound.
	var d float64
	if cc != nil && n.cas != 0 && cc.Wants() {
		d = t.dist.Distance(q, n.vantage)
		cc.Register(n.cas-1, d)
	} else {
		d = t.dist.DistanceUpTo(q, n.vantage, r+n.cutMax)
	}
	s.VantagePoints++
	t.TraceDistance(1)
	if d <= r {
		*out = append(*out, n.vantage)
	}
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		if d+r >= lo && d-r <= hi {
			t.rangeNodeCas(c, q, r, cc, sc, out, s)
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// KNNWithStats is KNN plus the per-query breakdown. It is the only
// best-first kNN traversal implementation — KNN delegates here. The
// abandonment bounds mirror RangeWithStats with the live k-th best
// distance τ in place of r (+Inf until the heap fills), and the heap
// and node queue come from the tree's pool.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	return t.KNNWithStatsBound(q, k, nil)
}

// KNNWithStatsBound is KNNWithStats with an optional external pruning
// bound (index.KNNBound), the hook the sharded index uses to share the
// shrinking k-th-best distance across shards. With ext == nil it is
// exactly KNNWithStats. With a bound attached, pruning and abandonment
// consult τ′ = min(τ_local, ext.Tau()), the search publishes its own
// tightening threshold through ext.Publish, and candidates certified
// to exceed the external bound are discarded (they cannot make the
// caller's merged global top-k), so the returned list may be shorter
// than k.
func (t *Tree[T]) KNNWithStatsBound(q T, k int, ext index.KNNBound) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	sc := t.getScratch()
	t.prepareQuant(sc, q)
	if sc.best == nil {
		sc.best = heapx.NewKBest[T](k)
	} else {
		sc.best.Reset(k)
	}
	best, queue := sc.best, &sc.queue
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		// τ′ = min(local threshold, external bound); the min-heap
		// guarantees nothing later can beat it.
		tau := best.Threshold()
		if ext != nil {
			if e := ext.Tau(); e < tau {
				tau = e
			}
		}
		if bound >= tau {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			// Uncounted kernel + one batched settle, as in the range
			// scan. A reported distance above the bound it was computed
			// with may understate the true value and is globally
			// discardable, so only in-bound values enter the heap (with
			// ext == nil the heap would reject out-of-bound values
			// anyway).
			kernel := t.dist.Kernel()
			extTau := math.Inf(1)
			if ext != nil {
				extTau = ext.Tau()
			}
			// The cascade lower bound filters candidates the heap would
			// reject anyway: a bound with !Accepts (or past the external
			// τ) proves the true distance would be rejected too.
			// Quantized pre-filter state (quantize.go): a pruned
			// candidate still joins computed, standing in for an
			// abandoned kernel call.
			useQuant := sc.quantOn && (n.qcodes != nil || n.qf32 != nil)
			var qset *quant.Set
			var qprep *quant.Prepared
			if useQuant {
				qset, qprep = t.qset, &sc.qprep
			}
			if cc != nil && cc.Registered() > 0 {
				cas, base := t.cas, n.casBase
				filtered, filteredQuant, computed := 0, 0, 0
				for i, it := range n.items {
					if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) || clb >= extTau {
						filtered++
						continue
					}
					computed++
					cb := min(best.Threshold(), extTau)
					if useQuant && qset.PruneAt(qprep, n.qcodes, n.qf32, i, cb) {
						filteredQuant++
						continue
					}
					if d := kernel(q, it, cb); d <= cb {
						best.Push(it, d)
					}
				}
				if ext != nil {
					ext.Publish(best.Threshold())
				}
				t.dist.Add(int64(computed))
				s.Candidates += len(n.items)
				s.Computed += computed
				s.FilteredByCascade += filtered
				sc.quantPruned += filteredQuant
				if filtered > 0 {
					t.TracePrune(obs.FilterCascade, filtered)
				}
				if filteredQuant > 0 {
					t.TracePrune(obs.FilterQuantized, filteredQuant)
				}
				if computed > 0 {
					t.TraceDistance(computed)
				}
				continue
			}
			filteredQuant := 0
			for i, it := range n.items {
				cb := min(best.Threshold(), extTau)
				if useQuant && qset.PruneAt(qprep, n.qcodes, n.qf32, i, cb) {
					filteredQuant++
					continue
				}
				if d := kernel(q, it, cb); d <= cb {
					best.Push(it, d)
				}
			}
			if ext != nil {
				ext.Publish(best.Threshold())
			}
			t.dist.Add(int64(len(n.items)))
			s.Candidates += len(n.items)
			s.Computed += len(n.items)
			sc.quantPruned += filteredQuant
			if filteredQuant > 0 {
				t.TracePrune(obs.FilterQuantized, filteredQuant)
			}
			if len(n.items) > 0 {
				t.TraceDistance(len(n.items))
			}
			continue
		}
		// Stamped cascade pivots are computed exactly while the cache
		// wants registrations; the push and shell decisions below are
		// unchanged (an exact value is a valid bounded result).
		vb := tau + n.cutMax
		var d float64
		if cc != nil && n.cas != 0 && cc.Wants() {
			d = t.dist.Distance(q, n.vantage)
			cc.Register(n.cas-1, d)
		} else {
			d = t.dist.DistanceUpTo(q, n.vantage, vb)
		}
		if d <= vb {
			best.Push(n.vantage, d)
		}
		s.VantagePoints++
		t.TraceDistance(1)
		extTau := math.Inf(1)
		if ext != nil {
			ext.Publish(best.Threshold())
			extTau = ext.Tau()
		}
		for g, c := range n.children {
			if c == nil {
				continue
			}
			lo, hi := shellBounds(n.cutoffs, g)
			lb := 0.0
			if d < lo {
				lb = lo - d
			} else if d > hi {
				lb = d - hi
			}
			if best.Accepts(lb) && lb < extTau {
				queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	if t.cas != nil {
		t.cas.Put(cc)
	}
	t.finishQuant(sc)
	t.putScratch(sc)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
