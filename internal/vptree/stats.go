package vptree

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// SearchStats breaks a vp-tree range search down by stage, the
// counterpart of the mvp-tree's instrumentation. It is the shared
// index.SearchStats (the alias preserves existing call sites). Note the
// structural difference the vp-tree exposes through it: with no stored
// leaf distances, FilteredByD and FilteredByPath stay zero, every leaf
// candidate costs a real distance computation (Computed == Candidates
// always), and every visited internal node costs one vantage-point
// computation.
type SearchStats = index.SearchStats

// RangeWithStats is Range plus the per-query breakdown. It is the only
// range traversal implementation — Range delegates here.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return nil, s
	}
	var out []T
	t.rangeNodeStats(t.root, q, r, &out, &s)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNodeStats(n *node[T], q T, r float64, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		for _, it := range n.items {
			s.Candidates++
			s.Computed++
			t.TraceDistance(1)
			if t.dist.Distance(q, it) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	d := t.dist.Distance(q, n.vantage)
	s.VantagePoints++
	t.TraceDistance(1)
	if d <= r {
		*out = append(*out, n.vantage)
	}
	for g, c := range n.children {
		lo, hi := shellBounds(n.cutoffs, g)
		if d+r >= lo && d-r <= hi {
			t.rangeNodeStats(c, q, r, out, s)
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// KNNWithStats is KNN plus the per-query breakdown. It is the only
// best-first kNN traversal implementation — KNN delegates here.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break // min-heap: nothing later can be closer
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			for _, it := range n.items {
				s.Candidates++
				s.Computed++
				t.TraceDistance(1)
				best.Push(it, t.dist.Distance(q, it))
			}
			continue
		}
		d := t.dist.Distance(q, n.vantage)
		best.Push(n.vantage, d)
		s.VantagePoints++
		t.TraceDistance(1)
		for g, c := range n.children {
			if c == nil {
				continue
			}
			lo, hi := shellBounds(n.cutoffs, g)
			lb := 0.0
			if d < lo {
				lb = lo - d
			} else if d > hi {
				lb = d - hi
			}
			if best.Accepts(lb) {
				queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
