package vptree

import (
	"sort"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// KNNDepthFirst answers a k-nearest-neighbor query with the
// decreasing-radius depth-first strategy of Chiueh [Chi94], the vp-tree
// modification the paper cites in §3.2: the search descends the tree
// visiting the most promising shell first, keeps the k best candidates
// found so far, and uses the current k-th distance as a shrinking
// search radius to prune the remaining shells.
//
// It returns exactly the same neighbors as KNN (both are exact); the
// two differ only in traversal order and therefore in the number of
// distance computations. Best-first (KNN) is never worse in distance
// computations but keeps a priority queue; depth-first recursion has no
// auxiliary structure beyond the result heap, which is why [Chi94]
// favored it.
func (t *Tree[T]) KNNDepthFirst(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKBest[T](k)
	t.knnDFS(t.root, q, best)
	return best.Sorted()
}

func (t *Tree[T]) knnDFS(n *node[T], q T, best *heapx.KBest[T]) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			best.Push(it, t.dist.Distance(q, it))
		}
		return
	}
	d := t.dist.Distance(q, n.vantage)
	best.Push(n.vantage, d)

	// Visit children in ascending lower-bound order so the radius
	// shrinks as fast as possible before the less promising shells are
	// reconsidered.
	type cand struct {
		c  *node[T]
		lb float64
	}
	cands := make([]cand, 0, len(n.children))
	for g, c := range n.children {
		if c == nil {
			continue
		}
		lo, hi := shellBounds(n.cutoffs, g)
		lb := 0.0
		switch {
		case d < lo:
			lb = lo - d
		case d > hi:
			lb = d - hi
		}
		cands = append(cands, cand{c, lb})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })
	for _, cd := range cands {
		// Re-test against the *current* radius: earlier siblings may
		// have shrunk it below this shell's bound.
		if !best.Accepts(cd.lb) {
			continue
		}
		t.knnDFS(cd.c, q, best)
	}
}
