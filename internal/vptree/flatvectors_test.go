package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
)

// TestFlatVectorsEquivalence pins the FlatVectors option's contract for
// the vp-tree: the contiguous leaf arena is a pure memory-layout change
// with identical results, distance counts and per-query stats.
func TestFlatVectorsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 103))
	items := make([][]float64, 1200)
	for i := range items {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	opts := Options{Order: 3, LeafCapacity: 20, Build: Build{Seed: 3}}

	distP := metric.NewCounter(metric.L2)
	plain, err := New(items, distP, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsFlat := opts
	optsFlat.FlatVectors = true
	distF := metric.NewCounter(metric.L2)
	flat, err := New(items, distF, optsFlat)
	if err != nil {
		t.Fatal(err)
	}
	if p, f := distP.Count(), distF.Count(); p != f {
		t.Fatalf("build cost differs: %d plain vs %d flat", p, f)
	}

	queries := make([][]float64, 8)
	for i := range queries {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = v
	}
	for qi, q := range queries {
		for _, r := range []float64{0.2, 0.6, 1.1} {
			p0, f0 := distP.Count(), distF.Count()
			resP, stP := plain.RangeWithStats(q, r)
			pd := distP.Count() - p0
			resF, stF := flat.RangeWithStats(q, r)
			fd := distF.Count() - f0
			if len(resP) != len(resF) {
				t.Fatalf("q%d r=%v: %d results plain vs %d flat", qi, r, len(resP), len(resF))
			}
			for i := range resP {
				for j := range resP[i] {
					if resP[i][j] != resF[i][j] {
						t.Fatalf("q%d r=%v: result %d differs between layouts", qi, r, i)
					}
				}
			}
			if stP != stF {
				t.Errorf("q%d r=%v: stats differ:\nplain %+v\nflat  %+v", qi, r, stP, stF)
			}
			if pd != fd {
				t.Errorf("q%d r=%v: distance count differs: %d plain vs %d flat", qi, r, pd, fd)
			}
		}
		for _, k := range []int{1, 10} {
			nbP, stP := plain.KNNWithStats(q, k)
			nbF, stF := flat.KNNWithStats(q, k)
			if len(nbP) != len(nbF) {
				t.Fatalf("q%d k=%d: %d neighbors plain vs %d flat", qi, k, len(nbP), len(nbF))
			}
			for i := range nbP {
				if nbP[i].Dist != nbF[i].Dist {
					t.Errorf("q%d k=%d: neighbor %d dist %v plain vs %v flat", qi, k, i, nbP[i].Dist, nbF[i].Dist)
					break
				}
			}
			if stP != stF {
				t.Errorf("q%d k=%d: stats differ:\nplain %+v\nflat  %+v", qi, k, stP, stF)
			}
		}
	}
}
