package vptree

import (
	"sync"
	"sync/atomic"

	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// Intra-query parallel range search over one vp-tree, the counterpart
// of the mvp-tree's implementation (see internal/mvp/parallel_range.go
// for the two-phase design). The sequential plan expands the top of
// the tree exactly as the recursive search would; the surviving
// frontier subtrees are claimed from an atomic cursor by a bounded
// worker pool; slot-ordered stitching reproduces the sequential
// depth-first output and SearchStats byte for byte at every worker
// count.

const (
	parallelRangeTargetFactor = 4
	parallelRangeMaxRounds    = 8
)

// vpPlanElem is one ordered slot of the planned traversal: the expanded
// nodes' vantage hits, or a pending subtree (index into the task list).
type vpPlanElem[T any] struct {
	out  []T
	task int // -1 when the slot carries only planned output
}

// RangeParallel is Range answered by up to workers goroutines, with a
// result slice byte-identical to Range(q, r) for every workers value.
func (t *Tree[T]) RangeParallel(q T, r float64, workers int) []T {
	out, _ := t.RangeParallelWithStats(q, r, workers)
	return out
}

// RangeParallelWithStats is RangeWithStats answered by up to workers
// goroutines, with identical results, stats and distance counts at
// every worker count.
func (t *Tree[T]) RangeParallelWithStats(q T, r float64, workers int) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	if workers <= 1 {
		var out []T
		t.rangeNodeStats(t.root, q, r, &out, &s)
		s.Results = len(out)
		span.Done(&s)
		return out, s
	}

	// Phase 1: sequential frontier expansion.
	elems := []vpPlanElem[T]{{task: 0}}
	tasks := []*node[T]{t.root}
	target := workers * parallelRangeTargetFactor
	for round := 0; round < parallelRangeMaxRounds && len(tasks) < target; round++ {
		var expanded bool
		elems, tasks, expanded = t.expandPlanLevel(elems, tasks, q, r, &s)
		if !expanded {
			break
		}
	}

	// Phase 2: workers claim subtrees from an atomic cursor.
	outs := make([][]T, len(tasks))
	stats := make([]SearchStats, len(tasks))
	w := min(workers, len(tasks))
	var cursor atomic.Int64
	runWorker := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(tasks) {
				return
			}
			t.rangeNodeStats(tasks[i], q, r, &outs[i], &stats[i])
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker()
		}()
	}
	runWorker() // the calling goroutine is a worker too
	wg.Wait()

	// Stitch slots in plan order; stats summed in the same order.
	total := 0
	for _, e := range elems {
		total += len(e.out)
		if e.task >= 0 {
			total += len(outs[e.task])
		}
	}
	out := make([]T, 0, total)
	for _, e := range elems {
		out = append(out, e.out...)
		if e.task >= 0 {
			out = append(out, outs[e.task]...)
			s.Add(stats[e.task])
		}
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// expandPlanLevel expands every pending internal-node subtree by one
// level, exactly as rangeNodeStats would visit it. Pending leaves stay
// pending. Reports the rebuilt plan and whether anything was expanded.
func (t *Tree[T]) expandPlanLevel(elems []vpPlanElem[T], tasks []*node[T], q T, r float64, s *SearchStats) ([]vpPlanElem[T], []*node[T], bool) {
	expanded := false
	newElems := make([]vpPlanElem[T], 0, len(elems)*2)
	newTasks := make([]*node[T], 0, len(tasks)*2)
	for _, e := range elems {
		if e.task < 0 || tasks[e.task].leaf {
			if e.task >= 0 {
				newTasks = append(newTasks, tasks[e.task])
				e.task = len(newTasks) - 1
			}
			newElems = append(newElems, e)
			continue
		}
		expanded = true
		n := tasks[e.task]
		s.NodesVisited++
		t.TraceNode(false)
		d := t.dist.DistanceUpTo(q, n.vantage, r+n.cutMax)
		s.VantagePoints++
		t.TraceDistance(1)
		var chunk []T
		if d <= r {
			chunk = append(chunk, n.vantage)
		}
		newElems = append(newElems, vpPlanElem[T]{out: chunk, task: -1})
		for g, c := range n.children {
			lo, hi := shellBounds(n.cutoffs, g)
			if d+r < lo || d-r > hi {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
				continue
			}
			if c == nil {
				continue
			}
			newTasks = append(newTasks, c)
			newElems = append(newElems, vpPlanElem[T]{task: len(newTasks) - 1})
		}
	}
	return newElems, newTasks, expanded
}

var _ index.ParallelRangeIndex[int] = (*Tree[int])(nil)
var _ index.BoundedKNNIndex[int] = (*Tree[int])(nil)
