package vptree

import (
	"fmt"

	"mvptree/internal/build"
	"mvptree/internal/metric"
	"mvptree/internal/quant"
)

// EnableQuantize builds the quantized pre-filter for the tree: every
// leaf's item vectors are encoded into a companion arena (SQ8 byte
// codes or float32 copies, internal/quant) that Range and KNN leaf
// scans consult before the exact kernel — a candidate whose quantized
// lower bound certifies its distance exceeds the query threshold skips
// the float64 evaluation. The skip is charged to the distance counter
// and to SearchStats.Computed exactly as the abandoned kernel call
// would have been, so results, order, per-query stats and counter
// deltas are byte-identical with the filter on or off. Skipped
// evaluations surface as FilterQuantized trace events and in the
// Observer's filtered_by_quantized total.
//
// The filter applies only to []float64 items under a metric whose
// kernel registered a quantized lower-bound shape
// (metric.RegisterQuantized); any other tree, and any dataset
// quant.Build rejects, is left unfiltered silently. mode Off tears the
// filter down.
//
// EnableQuantize is not synchronized with in-flight queries: arm the
// filter before serving. The arenas are not serialized by Save;
// re-enable after Load. Intra-query parallel range (RangeParallel)
// does not consult the filter.
func (t *Tree[T]) EnableQuantize(mode quant.Mode) error {
	if mode == quant.Off {
		t.disableQuantize()
		return nil
	}
	if mode != quant.SQ8 && mode != quant.F32 {
		return fmt.Errorf("vptree: unknown quantize mode %v", mode)
	}
	if t.root == nil {
		return nil
	}
	kind := t.dist.QuantKind()
	if kind == metric.QuantNone {
		return nil
	}
	var leaves []*node[T]
	var groups [][]T
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		if n.leaf {
			if len(n.items) > 0 {
				leaves = append(leaves, n)
				groups = append(groups, n.items)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	q, ok := build.QuantizeVectors(groups, kind, mode)
	if !ok {
		return nil
	}
	t.disableQuantize()
	for i, n := range leaves {
		if mode == quant.SQ8 {
			n.qcodes = q.Codes[i]
		} else {
			n.qf32 = q.F32s[i]
		}
	}
	t.qset = q.Set
	return nil
}

// disableQuantize drops the filter state so pruning stops immediately.
func (t *Tree[T]) disableQuantize() {
	if t.qset == nil {
		return
	}
	t.qset = nil
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		if n.leaf {
			n.qcodes, n.qf32 = nil, nil
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// Quantized reports the trained pre-filter, nil unless EnableQuantize
// armed one.
func (t *Tree[T]) Quantized() *quant.Set { return t.qset }

// prepareQuant arms the scratch's pre-filter state for one query
// (quant stays off for non-vector queries; T is erased here).
func (t *Tree[T]) prepareQuant(sc *knnScratch[T], q T) {
	sc.quantOn = false
	sc.quantPruned = 0
	if t.qset == nil {
		return
	}
	qv, ok := any(q).([]float64)
	if !ok {
		return
	}
	t.qset.Prepare(&sc.qprep, qv)
	sc.quantOn = true
}

// finishQuant flushes the query's skipped-evaluation tally to the
// Observer.
func (t *Tree[T]) finishQuant(sc *knnScratch[T]) {
	t.ObserveQuantPruned(sc.quantPruned)
}
