package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

func quantItems(seed uint64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x5555))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	return items
}

// TestQuantizeEquivalence pins the quantized pre-filter's contract on
// the vp-tree: byte-identical results, order, SearchStats and counter
// deltas with the filter on or off, across both representations, the
// registered metric shapes, and with the cascade layered on top (the
// two filters compose in one leaf loop).
func TestQuantizeEquivalence(t *testing.T) {
	metrics := []struct {
		name string
		fn   metric.DistanceFunc[[]float64]
	}{
		{"l1", metric.L1},
		{"l2", metric.L2},
		{"linf", metric.LInf},
	}
	for _, dim := range []int{8, 40} {
		items := quantItems(uint64(40+dim), 1100, dim)
		queries := quantItems(uint64(90+dim), 6, dim)
		queries = append(queries, items[7])
		radii := []float64{0.3, 0.9}
		if dim == 40 {
			radii = []float64{1.2, 2.2}
		}
		opts := Options{Order: 3, LeafCapacity: 25, Build: Build{Seed: 5}}
		for _, m := range metrics {
			for _, mode := range []quant.Mode{quant.SQ8, quant.F32} {
				for _, withCascade := range []bool{false, true} {
					name := map[int]string{8: "dim8", 40: "dim40"}[dim] + "/" + m.name + "/" + mode.String()
					if withCascade {
						name += "/cascade"
					}
					t.Run(name, func(t *testing.T) {
						distP := metric.NewCounter(m.fn)
						plain, err := New(items, distP, opts)
						if err != nil {
							t.Fatal(err)
						}
						optsQ := opts
						optsQ.Quantize = mode
						distQ := metric.NewCounter(m.fn)
						quantized, err := New(items, distQ, optsQ)
						if err != nil {
							t.Fatal(err)
						}
						if quantized.Quantized() == nil {
							t.Fatal("pre-filter did not arm on a quantizable tree")
						}
						if withCascade {
							if err := plain.EnableCascade(cascade.Options{}); err != nil {
								t.Fatal(err)
							}
							if err := quantized.EnableCascade(cascade.Options{}); err != nil {
								t.Fatal(err)
							}
						}
						for qi, q := range queries {
							for _, r := range radii {
								p0, q0 := distP.Count(), distQ.Count()
								resP, stP := plain.RangeWithStats(q, r)
								resQ, stQ := quantized.RangeWithStats(q, r)
								if len(resP) != len(resQ) {
									t.Fatalf("q%d r=%v: %d results plain vs %d quantized", qi, r, len(resP), len(resQ))
								}
								for i := range resP {
									for j := range resP[i] {
										if resP[i][j] != resQ[i][j] {
											t.Fatalf("q%d r=%v: result %d differs", qi, r, i)
										}
									}
								}
								if stP != stQ {
									t.Errorf("q%d r=%v: stats differ:\nplain %+v\nquant %+v", qi, r, stP, stQ)
								}
								if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
									t.Errorf("q%d r=%v: counter delta differs: %d vs %d", qi, r, pd, qd)
								}
							}
							for _, k := range []int{1, 10} {
								p0, q0 := distP.Count(), distQ.Count()
								nbP, stP := plain.KNNWithStats(q, k)
								nbQ, stQ := quantized.KNNWithStats(q, k)
								if len(nbP) != len(nbQ) {
									t.Fatalf("q%d k=%d: %d neighbors plain vs %d quantized", qi, k, len(nbP), len(nbQ))
								}
								for i := range nbP {
									if nbP[i].Dist != nbQ[i].Dist {
										t.Errorf("q%d k=%d: neighbor %d dist differs", qi, k, i)
										break
									}
								}
								if stP != stQ {
									t.Errorf("q%d k=%d: stats differ:\nplain %+v\nquant %+v", qi, k, stP, stQ)
								}
								if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
									t.Errorf("q%d k=%d: counter delta differs: %d vs %d", qi, k, pd, qd)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestQuantizeObserver pins that vp-tree queries feed the Observer's
// filtered_by_quantized total.
func TestQuantizeObserver(t *testing.T) {
	items := quantItems(3, 1500, 12)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Order: 3, LeafCapacity: 30, Build: Build{Seed: 9}, Quantize: quant.SQ8})
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.NewObserver(1)
	tree.SetObserver(ob)
	for _, q := range quantItems(4, 12, 12) {
		tree.Range(q, 0.4)
		tree.KNN(q, 5)
	}
	if got := ob.Snapshot().Search.FilteredByQuantized; got == 0 {
		t.Error("observer saw no quantize-pruned candidates")
	}
}
