package vptree

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"mvptree/internal/metric"
	"mvptree/internal/wire"
)

// Persistence for vp-trees, mirroring the mvp-tree's Save/Load: items
// go through caller-supplied encode/decode functions, the structure
// (vantage points, cutoffs, buckets) is stored verbatim, and no
// distances are recomputed on load.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "VPTREE1"

const (
	tagNil      = 0
	tagLeaf     = 1
	tagInternal = 2
)

// Save writes the tree to w as a CRC-protected payload. The metric
// itself is not serialized; Load must be given the same metric.
func (t *Tree[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	pw.Int(t.order)
	pw.Int(t.size)
	if err := saveNode(pw, t.root, enc); err != nil {
		return err
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

func saveNode[T any](w *wire.Writer, n *node[T], enc ItemEncoder[T]) error {
	if n == nil {
		w.Byte(tagNil)
		return w.Err()
	}
	item := func(it T) error {
		b, err := enc(it)
		if err != nil {
			return fmt.Errorf("vptree: encoding item: %w", err)
		}
		w.Bytes(b)
		return w.Err()
	}
	if n.leaf {
		w.Byte(tagLeaf)
		w.Int(len(n.items))
		for _, it := range n.items {
			if err := item(it); err != nil {
				return err
			}
		}
		return w.Err()
	}
	w.Byte(tagInternal)
	if err := item(n.vantage); err != nil {
		return err
	}
	w.Floats(n.cutoffs)
	w.Int(len(n.children))
	for _, c := range n.children {
		if err := saveNode(w, c, enc); err != nil {
			return err
		}
	}
	return w.Err()
}

// maxLoadDepth guards against corrupt streams.
const maxLoadDepth = 128

// Load reads a tree written by Save, verifying the payload checksum.
// dist must wrap the same metric the tree was built with.
func Load[T any](r io.Reader, dist *metric.Counter[T], dec ItemDecoder[T]) (*Tree[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("vptree: bad magic (not a vp-tree stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("vptree: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))
	t := &Tree[T]{dist: dist}
	t.order = rr.Int()
	t.size = rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if t.order < 2 || t.size < 0 {
		return nil, fmt.Errorf("vptree: corrupt header (order=%d n=%d)", t.order, t.size)
	}
	root, err := loadNode(rr, dec, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func loadNode[T any](r *wire.Reader, dec ItemDecoder[T], depth int) (*node[T], error) {
	if depth > maxLoadDepth {
		return nil, fmt.Errorf("vptree: tree deeper than %d levels (corrupt stream)", maxLoadDepth)
	}
	item := func() (T, error) {
		b := r.Bytes()
		if err := r.Err(); err != nil {
			var zero T
			return zero, err
		}
		it, err := dec(b)
		if err != nil {
			var zero T
			return zero, fmt.Errorf("vptree: decoding item: %w", err)
		}
		return it, nil
	}
	switch tag := r.Byte(); tag {
	case tagNil:
		return nil, r.Err()
	case tagLeaf:
		count := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n := &node[T]{leaf: true, items: make([]T, count)}
		var err error
		for i := 0; i < count; i++ {
			if n.items[i], err = item(); err != nil {
				return nil, err
			}
		}
		return n, r.Err()
	case tagInternal:
		n := &node[T]{}
		var err error
		if n.vantage, err = item(); err != nil {
			return nil, err
		}
		n.cutoffs = r.Floats()
		count := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if count == 0 {
			return nil, fmt.Errorf("vptree: internal node with no children (corrupt stream)")
		}
		n.children = make([]*node[T], count)
		for i := 0; i < count; i++ {
			if n.children[i], err = loadNode(r, dec, depth+1); err != nil {
				return nil, err
			}
		}
		n.setDerived()
		return n, r.Err()
	default:
		return nil, fmt.Errorf("vptree: unknown node tag %d (corrupt stream)", tag)
	}
}
