package vptree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// Same determinism contract as the mvp-tree: every worker count
// reproduces the sequential results, order, stats and counter delta.
func TestRangeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	w := testutil.NewVectorWorkload(rng, 500, 8, 12, metric.L2)
	for _, opts := range []Options{
		{Order: 2, LeafCapacity: 1, Build: Build{Seed: 7}},
		{Order: 2, LeafCapacity: 8, Build: Build{Seed: 7}},
		{Order: 3, LeafCapacity: 16, Build: Build{Seed: 7}},
		{Order: 4, LeafCapacity: 5, Build: Build{Seed: 7}},
	} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for _, q := range w.Queries {
			for _, r := range []float64{0, 0.2, 0.5, 1.0} {
				before := c.Count()
				want, wantStats := tree.RangeWithStats(q, r)
				seqCost := c.Count() - before
				for _, workers := range []int{1, 2, 3, 8} {
					before = c.Count()
					got, gotStats := tree.RangeParallelWithStats(q, r, workers)
					cost := c.Count() - before
					if len(got) != len(want) {
						t.Fatalf("workers=%d q=%d r=%g: got %d results, want %d", workers, q, r, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d q=%d r=%g: result[%d]=%d, want %d (order must match)", workers, q, r, i, got[i], want[i])
						}
					}
					if gotStats != wantStats {
						t.Fatalf("workers=%d q=%d r=%g: stats %+v, want %+v", workers, q, r, gotStats, wantStats)
					}
					if cost != seqCost {
						t.Fatalf("workers=%d q=%d r=%g: counter delta %d, want %d", workers, q, r, cost, seqCost)
					}
				}
			}
		}
	}
}
