// Package vptree implements the vantage-point tree of Uhlmann [Uhl91]
// and Yiannilos [Yia93], the structure the paper (§3.3) uses as its main
// comparison baseline for the mvp-tree.
//
// A vp-tree node holds one vantage point chosen from the data. The
// distances from the vantage point to every other point below the node
// are computed at construction time, the points are ordered by that
// distance and split into m groups of equal cardinality ("spherical
// cuts"), and each group is indexed by a recursively built child. Range
// search prunes whole subtrees with the triangle inequality: a child
// whose spherical shell does not intersect the query ball cannot contain
// an answer.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package vptree

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// SelectionStrategy picks how vantage points are chosen during
// construction.
type SelectionStrategy int

const (
	// SelectRandom picks a uniformly random point, the default the
	// paper uses ("the random function used to pick vantage points").
	SelectRandom SelectionStrategy = iota
	// SelectBestSpread implements the heuristic of [Yia93]: sample a
	// few candidate vantage points, estimate for each the spread of
	// distances to a random subset (second moment about the median),
	// and keep the candidate with the largest spread.
	SelectBestSpread
)

// Options configure construction of a vp-tree.
type Options struct {
	// Build holds the shared construction knobs: Workers spreads
	// construction's distance computations and subtree builds over a
	// bounded goroutine pool (the tree built is identical for every
	// worker count), and Seed makes vantage selection deterministic.
	Build
	// Order is the branching factor m ≥ 2. Each node partitions its
	// points into Order equal-cardinality spherical shells. The
	// default is 2, the binary vp-tree.
	Order int
	// LeafCapacity is the maximum number of points stored in a leaf
	// node (a plain bucket scanned exhaustively at query time). The
	// default is 1. The classic vp-tree keeps partitioning all the way
	// down, which corresponds to a small leaf capacity.
	LeafCapacity int
	// Selection chooses the vantage-point selection strategy.
	Selection SelectionStrategy
	// Candidates and SampleSize tune SelectBestSpread: Candidates
	// vantage candidates are evaluated against SampleSize random
	// points each. Defaults are 5 and 20. Ignored for SelectRandom.
	Candidates int
	SampleSize int
	// FlatVectors, for []float64 items only, copies every leaf's
	// vectors into one contiguous arena after construction so leaf
	// scans read sequential memory. Results, distance counts and the
	// serialized form are unaffected; silently ignored for non-vector
	// item types.
	FlatVectors bool
	// Quantize, for []float64 items under a metric with a registered
	// quantized lower-bound shape, arms the quantized leaf pre-filter
	// (internal/quant): candidates whose quantized lower bound
	// certifies d > threshold skip the exact float64 evaluation.
	// Results, order, SearchStats and counter deltas are byte-identical
	// on or off; silently ignored when the items or metric cannot be
	// quantized. Equivalent to calling EnableQuantize after
	// construction.
	Quantize quant.Mode
}

func (o *Options) setDefaults() {
	if o.Order == 0 {
		o.Order = 2
	}
	if o.LeafCapacity == 0 {
		o.LeafCapacity = 1
	}
	if o.Candidates == 0 {
		o.Candidates = 5
	}
	if o.SampleSize == 0 {
		o.SampleSize = 20
	}
}

func (o *Options) validate() error {
	if err := o.Build.Validate("vptree"); err != nil {
		return err
	}
	if o.Order < 2 {
		return errors.New("vptree: Order must be at least 2")
	}
	if o.LeafCapacity < 1 {
		return errors.New("vptree: LeafCapacity must be at least 1")
	}
	if o.Candidates < 1 || o.SampleSize < 1 {
		return errors.New("vptree: Candidates and SampleSize must be at least 1")
	}
	return nil
}

// Tree is an m-way vantage-point tree over a fixed item set. The
// embedded obs.Hooks let callers attach an Observer and/or Tracer; with
// neither attached the query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	size       int
	order      int
	buildStats build.Stats
	scratch    sync.Pool // *knnScratch[T]; see stats.go
	bscratch   sync.Pool // *batchScratch[T]; see batch.go
	// cas is the cross-query bound cascade, nil unless EnableCascade
	// built one; see cascade.go.
	cas *cascade.Filter[T]
	// qset is the trained quantized pre-filter, nil unless
	// EnableQuantize built one; see quantize.go.
	qset *quant.Set
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

type node[T any] struct {
	// Internal node fields. vantage is a real data point. cutMax
	// caches the largest shell boundary: a query-to-vantage distance
	// certified to exceed radius+cutMax prunes every bounded shell and
	// visits only the unbounded outermost one, so the search can hand
	// the distance kernel a finite abandonment bound without changing
	// any traversal decision.
	vantage  T
	cutoffs  []float64 // order-1 ascending boundaries between shells
	children []*node[T]
	cutMax   float64
	// Leaf node fields.
	leaf  bool
	items []T

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	// cas marks the vantage point as a cascade pivot (pivot index plus
	// one; zero means unstamped), casBase is the cascade id of the
	// leaf's first item.
	cas     int32
	casBase int32

	// Quantized companion views of items (exactly one non-nil when the
	// tree's qset is armed): len(items)·dim entries, item i's block at
	// i·dim. See quantize.go.
	qcodes []byte
	qf32   []float32
}

// setDerived recomputes the cached abandonment bound from the stored
// cutoffs; construction and Load both route through it.
func (n *node[T]) setDerived() {
	n.cutMax = 0
	for _, c := range n.cutoffs {
		if c > n.cutMax {
			n.cutMax = c
		}
	}
}

// New builds a vp-tree over items using the counted metric dist. The
// items slice is not retained. Distance computations made during
// construction are visible on dist and also recorded in BuildCost.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	opts.setDefaults()
	if err := opts.validate(); err != nil {
		return nil, build.Stats{}, err
	}
	t := &Tree[T]{dist: dist, size: len(items), order: opts.Order}
	work := make([]T, len(items))
	copy(work, items)
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, work, build.NewRNG(opts.Seed, 0x767074726565), &opts, 0)
	t.buildStats = b.Finish()
	if opts.FlatVectors {
		t.flattenLeafVectors()
	}
	if opts.Quantize != quant.Off {
		if err := t.EnableQuantize(opts.Quantize); err != nil {
			return nil, build.Stats{}, err
		}
	}
	return t, t.buildStats, nil
}

// flattenLeafVectors rewrites every leaf's item vectors into one
// contiguous arena (no-op for non-[]float64 item types).
func (t *Tree[T]) flattenLeafVectors() {
	var groups [][]T
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		if n.leaf {
			if len(n.items) > 0 {
				groups = append(groups, n.items)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	build.FlattenVectors(groups)
}

// build consumes work (it reorders and slices it freely). src is the
// splittable RNG fixed by this subtree's position, so the tree is
// identical for every worker count.
func (t *Tree[T]) build(b *build.Builder[T], work []T, src build.RNG, opts *Options, depth int) *node[T] {
	if len(work) == 0 {
		return nil
	}
	b.Node(depth)
	if len(work) <= opts.LeafCapacity {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	rng := src.Rand()
	vi := t.selectVantage(work, rng, opts)
	work[vi], work[len(work)-1] = work[len(work)-1], work[vi]
	v := work[len(work)-1]
	rest := work[:len(work)-1]

	ds := make([]float64, len(rest))
	b.Measure(v, func(i int) T { return rest[i] }, ds)
	ord := make([]int, len(rest))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ds[ord[a]] < ds[ord[b]] })

	m := opts.Order
	if m > len(rest) {
		m = len(rest)
	}
	n := &node[T]{vantage: v}
	if m < 2 {
		// One remaining point: a single child leaf.
		n.children = []*node[T]{t.build(b, rest, src.Child(0), opts, depth+1)}
		return n
	}
	n.cutoffs = make([]float64, m-1)
	n.children = make([]*node[T], m)
	groupOf := groupBoundaries(len(rest), m)
	groupsOut := make([][]T, m)
	for g := 0; g < m; g++ {
		lo, hi := groupOf(g)
		group := make([]T, hi-lo)
		for i := lo; i < hi; i++ {
			group[i-lo] = rest[ord[i]]
		}
		groupsOut[g] = group
		if g < m-1 {
			// Cutoff between the largest distance in this group and
			// the smallest in the next; every point in group g is
			// ≤ cutoff[g] and every point in group g+1 is ≥ cutoff[g].
			n.cutoffs[g] = (ds[ord[hi-1]] + ds[ord[hi]]) / 2
		}
	}
	n.setDerived()
	b.Fork(m, func(g int) {
		n.children[g] = t.build(b, groupsOut[g], src.Child(g), opts, depth+1)
	})
	return n
}

// groupBoundaries returns a function mapping group index g ∈ [0,m) to the
// half-open rank interval [lo, hi) of an equal-cardinality m-way split of
// n items (sizes differ by at most one).
func groupBoundaries(n, m int) func(g int) (lo, hi int) {
	base, extra := n/m, n%m
	return func(g int) (int, int) {
		lo := g*base + min(g, extra)
		hi := lo + base
		if g < extra {
			hi++
		}
		return lo, hi
	}
}

func (t *Tree[T]) selectVantage(work []T, rng *rand.Rand, opts *Options) int {
	if opts.Selection == SelectRandom || len(work) <= 2 {
		return rng.IntN(len(work))
	}
	// Best-spread heuristic [Yia93]: maximize the second moment of the
	// distance distribution about its median.
	best, bestSpread := 0, math.Inf(-1)
	cands := min(opts.Candidates, len(work))
	for c := 0; c < cands; c++ {
		ci := rng.IntN(len(work))
		sample := min(opts.SampleSize, len(work)-1)
		ds := make([]float64, 0, sample)
		for s := 0; s < sample; s++ {
			si := rng.IntN(len(work))
			if si == ci {
				continue
			}
			ds = append(ds, t.dist.Distance(work[ci], work[si]))
		}
		if len(ds) == 0 {
			continue
		}
		sort.Float64s(ds)
		median := ds[len(ds)/2]
		var spread float64
		for _, d := range ds {
			dd := d - median
			spread += dd * dd
		}
		spread /= float64(len(ds))
		if spread > bestSpread {
			best, bestSpread = ci, spread
		}
	}
	return best
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports the number of distance computations made during
// construction (O(n · log_m n) for order m).
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report (zero for a tree
// produced by Load, which computes no distances).
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Height reports the height of the tree in edges; a tree holding at most
// one leaf has height 0.
func (t *Tree[T]) Height() int { return height(t.root) }

func height[T any](n *node[T]) int {
	if n == nil || n.leaf {
		return 0
	}
	h := 0
	for _, c := range n.children {
		if ch := height(c); ch > h {
			h = ch
		}
	}
	return h + 1
}

// shellBounds returns the closed distance interval covered by child g.
func shellBounds(cutoffs []float64, g int) (lo, hi float64) {
	lo, hi = 0, math.Inf(1)
	if g > 0 {
		lo = cutoffs[g-1]
	}
	if g < len(cutoffs) {
		hi = cutoffs[g]
	}
	return lo, hi
}

// Range returns every indexed item within distance r of q. It delegates
// to RangeWithStats so there is exactly one traversal implementation;
// the two are guaranteed to agree in both results and distance
// computations.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// KNN returns the k nearest indexed items using best-first traversal:
// subtrees are visited in order of their triangle-inequality lower bound
// and search stops when no pending subtree can beat the k-th candidate.
// It delegates to KNNWithStats (single traversal implementation).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}
