package dynamic

import (
	"math/rand/v2"
	"sync"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// TestConcurrentInsertWhileQuerying races readers (Range, KNN, Len)
// against a writer driving Insert- and Delete-triggered rebuilds. Run
// under -race this is the regression test for the store's RWMutex and
// per-query slots; the assertions additionally pin reader invariants
// that hold at every intermediate state: every Range result really lies
// within the radius, and KNN returns ascending distances.
func TestConcurrentInsertWhileQuerying(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 5))
	const dim = 5
	initial := make([][]float64, 400)
	for i := range initial {
		initial[i] = randVec(rng, dim)
	}
	s, err := New(initial, metric.L2, Options{
		Tree: mvp.Options{Partitions: 2, LeafCapacity: 8, PathLength: 3, Build: mvp.Build{Seed: 1}},
		// Small fraction so the writer triggers many rebuilds while
		// readers are in flight.
		RebuildFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}

	extra := make([][]float64, 300)
	for i := range extra {
		extra[i] = randVec(rng, dim)
	}
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: inserts everything, deletes a slice of the initial items,
	// then signals the readers to wind down.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i, v := range extra {
			if err := s.Insert(v); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if i%10 == 0 {
				if _, err := s.Delete(initial[i%len(initial)]); err != nil {
					t.Errorf("Delete: %v", err)
					return
				}
			}
		}
	}()

	// Readers: mixed Range/KNN/diagnostics until the writer finishes.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				for _, it := range s.Range(q, 0.5) {
					if d := metric.L2(q, it); d > 0.5 {
						t.Errorf("Range(r=0.5) returned item at distance %g", d)
						return
					}
				}
				nn := s.KNN(q, 5)
				for j := 1; j < len(nn); j++ {
					if nn[j].Dist < nn[j-1].Dist {
						t.Errorf("KNN distances not ascending: %g before %g", nn[j-1].Dist, nn[j].Dist)
						return
					}
				}
				if n := s.Len(); n < 0 {
					t.Errorf("Len = %d", n)
					return
				}
				_ = s.Buffered()
				_ = s.Rebuilds()
				_ = s.DistanceCount()
			}
		}(g)
	}
	wg.Wait()

	// Quiesced: the store must have rebuilt at least once (the point of
	// the test is racing readers against rebuilds) and end consistent.
	if s.Rebuilds() < 2 {
		t.Fatalf("only %d rebuilds; the writer never exercised the rebuild path", s.Rebuilds())
	}
	wantLive := len(initial) + len(extra) - deletedCount(initial, extra)
	if s.Len() != wantLive {
		t.Fatalf("Len = %d after churn, want %d", s.Len(), wantLive)
	}
}

// deletedCount replays the writer's deletions against a model to
// compute the expected live count (delete-by-value can remove inserted
// duplicates too, but random vectors are distinct with probability 1).
func deletedCount(initial, extra [][]float64) int {
	deleted := 0
	seen := map[int]bool{}
	for i := range extra {
		if i%10 == 0 {
			id := i % len(initial)
			if !seen[id] {
				seen[id] = true
				deleted++
			}
		}
	}
	return deleted
}
