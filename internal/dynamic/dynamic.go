// Package dynamic addresses the open problem the paper closes with
// (§6): "handling update operations (insertion and deletion) without
// major restructuring, and without violating the balanced structure of
// the tree". It wraps the static mvp-tree in the classic amortized
// scheme:
//
//   - insertions accumulate in an overflow buffer that every query scans
//     linearly alongside the tree;
//   - deletions tombstone their targets (delete-by-value: every stored
//     item at distance zero from the argument);
//   - when buffered plus tombstoned items exceed a fraction of the live
//     set, the tree is rebuilt from scratch over the live items.
//
// The rebuild costs O(n log n) distance computations but is triggered
// only after Ω(n) updates, so updates cost amortized O(log n) distance
// computations while every query still runs against a balanced mvp-tree
// plus a small linear tail — the balance guarantee the paper asks for.
//
// Internally the store indexes small integer IDs and resolves them to
// items through its own table, which is what makes tombstoning possible
// over arbitrary (non-comparable) item types.
//
// The store is safe for concurrent use: queries take a read lock and
// resolve the query item through a private slot, while Insert, Delete
// and Save take the write lock.
package dynamic

import (
	"errors"
	"sync"
	"sync/atomic"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so dynamic call sites match the
// other index packages. A store query reports the underlying mvp-tree's
// breakdown plus the overflow buffer's linear tail: each live buffered
// item adds one to both Candidates and Computed.
type SearchStats = index.SearchStats

// Options configure a dynamic store.
type Options struct {
	// Tree configures the underlying mvp-trees built at each rebuild.
	Tree mvp.Options
	// RebuildFraction triggers a rebuild when
	// (buffered + tombstoned) > RebuildFraction × live items.
	// Default 0.25. Lower values keep queries closer to pure-tree
	// speed at the price of more frequent rebuilds.
	RebuildFraction float64
}

// Store is a dynamic similarity index over a mutable item set.
//
// Store is safe for concurrent use: an RWMutex lets any number of
// queries (Range, KNN, Len, ...) run concurrently with each other while
// Insert, Delete and Save — which mutate the overflow buffer and
// tombstones and may trigger a full rebuild — take the write side and
// run exclusively. Each in-flight query additionally resolves its query
// item through its own negative slot ID (see resolve), so concurrent
// readers share no mutable state beyond the atomic distance Counter.
type Store[T any] struct {
	// Hooks let callers attach an Observer and/or Tracer; with neither
	// attached the query paths pay only nil checks. Attach before
	// serving queries — the hook fields themselves are not guarded by
	// mu. The hooks span the whole store query (tree plus buffer tail);
	// the inner tree's own hooks stay unset.
	obs.Hooks

	opts Options

	// mu guards every field below except dist (whose count is atomic)
	// and the query-slot machinery (queries, slotSeq), which has its
	// own synchronization so readers holding only the read lock can
	// register their query items.
	mu sync.RWMutex

	items []T    // backing table; IDs index into it
	alive []bool // tombstones
	live  int    // number of alive items

	tree     *mvp.Tree[int] // over the IDs present at the last rebuild
	treeIDs  int            // how many IDs the tree covers: IDs < treeIDs
	treeDead int            // tombstoned IDs inside the tree
	buffer   []int          // IDs inserted since the last rebuild

	queries  sync.Map     // negative slot ID → in-flight query item (T)
	slotSeq  atomic.Int64 // allocator for query slots
	dist     *metric.Counter[int]
	itemDist metric.DistanceFunc[T]
	rebuilds int
	seq      uint64 // construction seed sequence
}

var _ index.StatsIndex[int] = (*Store[int])(nil) // Store[T] satisfies StatsIndex[T]

// New builds a dynamic store over the initial items.
func New[T any](items []T, dist metric.DistanceFunc[T], opts Options) (*Store[T], error) {
	if opts.RebuildFraction == 0 {
		opts.RebuildFraction = 0.25
	}
	if opts.RebuildFraction <= 0 {
		return nil, errors.New("dynamic: RebuildFraction must be positive")
	}
	s := &Store[T]{opts: opts, itemDist: dist}
	s.dist = metric.NewCounter(func(a, b int) float64 {
		return dist(s.resolve(a), s.resolve(b))
	})
	s.items = append(s.items, items...)
	s.alive = make([]bool, len(items))
	for i := range s.alive {
		s.alive[i] = true
	}
	s.live = len(items)
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// resolve maps an ID to its item: non-negative IDs index the backing
// table, negative IDs are per-query slots registered by acquireQuery.
// Slots let any number of concurrent searches present their (distinct)
// query items to the shared tree-over-IDs without writing a shared
// field.
func (s *Store[T]) resolve(id int) T {
	if id < 0 {
		v, ok := s.queries.Load(id)
		if !ok {
			panic("dynamic: distance requested for released query slot")
		}
		return v.(T)
	}
	return s.items[id]
}

// acquireQuery registers q under a fresh negative slot ID for the
// duration of one search. releaseQuery must be called when the search
// finishes.
func (s *Store[T]) acquireQuery(q T) int {
	slot := int(-s.slotSeq.Add(1)) // -1, -2, -3, ...
	s.queries.Store(slot, q)
	return slot
}

func (s *Store[T]) releaseQuery(slot int) { s.queries.Delete(slot) }

// Len reports the number of live items.
func (s *Store[T]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// DistanceCount reports the total metric invocations made by the store,
// including rebuilds.
func (s *Store[T]) DistanceCount() int64 { return s.dist.Count() }

// Rebuilds reports how many times the underlying tree has been rebuilt
// (the initial construction counts as one).
func (s *Store[T]) Rebuilds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rebuilds
}

// Buffered reports the current overflow-buffer size (diagnostics).
func (s *Store[T]) Buffered() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buffer)
}

// Insert adds one item. Amortized cost: O(log n) distance computations.
func (s *Store[T]) Insert(item T) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := len(s.items)
	s.items = append(s.items, item)
	s.alive = append(s.alive, true)
	s.live++
	s.buffer = append(s.buffer, id)
	return s.maybeRebuild()
}

// Delete removes every live item at distance zero from item
// (delete-by-value, the only identity a metric space offers) and
// reports how many were removed.
func (s *Store[T]) Delete(item T) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	slot := s.acquireQuery(item)
	defer s.releaseQuery(slot)
	for _, id := range s.tree.Range(slot, 0) {
		if s.alive[id] {
			s.alive[id] = false
			s.treeDead++
			s.live--
			removed++
		}
	}
	kept := s.buffer[:0]
	for _, id := range s.buffer {
		if s.alive[id] && s.dist.Distance(slot, id) == 0 {
			s.alive[id] = false
			s.live--
			removed++
			continue
		}
		kept = append(kept, id)
	}
	s.buffer = kept
	if err := s.maybeRebuild(); err != nil {
		return removed, err
	}
	return removed, nil
}

func (s *Store[T]) maybeRebuild() error {
	if float64(len(s.buffer)+s.treeDead) <= s.opts.RebuildFraction*float64(max(s.live, 1)) {
		return nil
	}
	return s.rebuild()
}

// rebuild compacts the backing table to the live items and constructs a
// fresh balanced tree over all of them.
func (s *Store[T]) rebuild() error {
	compact := make([]T, 0, s.live)
	for id, a := range s.alive {
		if a {
			compact = append(compact, s.items[id])
		}
	}
	s.items = compact
	s.alive = make([]bool, len(compact))
	ids := make([]int, len(compact))
	for i := range compact {
		s.alive[i] = true
		ids[i] = i
	}
	opts := s.opts.Tree
	opts.Seed = s.opts.Tree.Seed + s.seq
	s.seq++
	tree, err := mvp.New(ids, s.dist, opts)
	if err != nil {
		return err
	}
	s.tree = tree
	s.treeIDs = len(compact)
	s.treeDead = 0
	s.buffer = s.buffer[:0]
	s.rebuilds++
	return nil
}

// Range returns every live item within distance r of q. Any number of
// Range/KNN calls may run concurrently; they block only while an update
// holds the write lock. It delegates to RangeWithStats so there is
// exactly one query implementation.
func (s *Store[T]) Range(q T, r float64) []T {
	out, _ := s.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown: the underlying
// tree's stats with the overflow buffer's linear tail folded in.
func (s *Store[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := s.StartQuery(obs.KindRange)
	var st SearchStats
	if r < 0 {
		span.Done(&st)
		return nil, st
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	var out []T
	ids, st := s.tree.RangeWithStats(slot, r)
	for _, id := range ids {
		if s.alive[id] {
			out = append(out, s.items[id])
		}
	}
	for _, id := range s.buffer {
		if !s.alive[id] {
			continue
		}
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		// Membership only, so the kernel may abandon at r.
		if s.dist.DistanceUpTo(slot, id, r) <= r {
			out = append(out, s.items[id])
		}
	}
	st.Results = len(out)
	span.Done(&st)
	return out, st
}

// KNN returns the k live items nearest to q in ascending distance
// order. It delegates to KNNWithStats.
func (s *Store[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := s.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown: the underlying
// tree's stats with the overflow buffer's linear tail folded in.
func (s *Store[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := s.StartQuery(obs.KindKNN)
	var st SearchStats
	if k <= 0 {
		span.Done(&st)
		return nil, st
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.live == 0 {
		span.Done(&st)
		return nil, st
	}
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	// The tree may return tombstoned items; ask for enough extras to
	// guarantee k live ones among the answers.
	fromTree, st := s.tree.KNNWithStats(slot, k+s.treeDead)
	best := heapx.NewKBest[T](k)
	for _, nb := range fromTree {
		if s.alive[nb.Item] {
			best.Push(s.items[nb.Item], nb.Dist)
		}
	}
	for _, id := range s.buffer {
		if !s.alive[id] {
			continue
		}
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		// Push ignores anything ≥ the current k-th best: abandon at τ.
		best.Push(s.items[id], s.dist.DistanceUpTo(slot, id, best.Threshold()))
	}
	out := best.Sorted()
	st.Results = len(out)
	span.Done(&st)
	return out, st
}
