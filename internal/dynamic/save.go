package dynamic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/wire"
)

// Persistence for the dynamic store. Save first compacts the store (a
// rebuild, dropping tombstones and folding the overflow buffer into the
// tree) and then writes the item table followed by the inner mvp-tree,
// so Load restores a clean store with zero distance computations.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "MVPDYN1"

// Save compacts the store and writes it to w. Note the compaction: Save
// is a mutating operation (equivalent to a rebuild), which is also what
// makes the saved form simple — pure tree, no buffer, no tombstones.
// Like Insert and Delete it takes the write lock, excluding queries for
// its duration.
func (s *Store[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rebuild(); err != nil {
		return err
	}
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	pw.Float(s.opts.RebuildFraction)
	saveTreeOptions(pw, s.opts.Tree)
	pw.Uvarint(s.seq)
	pw.Int(len(s.items))
	for _, it := range s.items {
		b, err := enc(it)
		if err != nil {
			return fmt.Errorf("dynamic: encoding item: %w", err)
		}
		pw.Bytes(b)
	}
	// The inner tree indexes IDs; persist it with a varint ID codec as
	// a length-prefixed blob inside the payload.
	var treeBytes bytes.Buffer
	if err := s.tree.Save(&treeBytes, encodeIDItem); err != nil {
		return err
	}
	pw.Bytes(treeBytes.Bytes())
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

func saveTreeOptions(w *wire.Writer, o mvp.Options) {
	w.Int(o.Partitions)
	w.Int(o.LeafCapacity)
	// PathLength uses -1 as "genuine zero"; shift to keep it varint-able.
	w.Int(o.PathLength + 1)
	w.Bool(o.RandomSecondVantage)
	w.Int(o.Workers)
	w.Uvarint(o.Seed)
}

func loadTreeOptions(r *wire.Reader) mvp.Options {
	var o mvp.Options
	o.Partitions = r.Int()
	o.LeafCapacity = r.Int()
	o.PathLength = r.Int() - 1
	o.RandomSecondVantage = r.Bool()
	o.Workers = r.Int()
	o.Seed = r.Uvarint()
	return o
}

func encodeIDItem(id int) ([]byte, error) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(id))
	return buf[:n], nil
}

func decodeIDItem(b []byte) (int, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("dynamic: invalid ID encoding")
	}
	return int(u), nil
}

// Load reads a store written by Save. dist must be the same metric the
// store was built with.
func Load[T any](r io.Reader, dist metric.DistanceFunc[T], dec ItemDecoder[T]) (*Store[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("dynamic: bad magic (not a dynamic-store stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("dynamic: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))

	s := &Store[T]{itemDist: dist}
	s.dist = metric.NewCounter(func(a, b int) float64 {
		return dist(s.resolve(a), s.resolve(b))
	})
	s.opts.RebuildFraction = rr.Float()
	s.opts.Tree = loadTreeOptions(rr)
	s.seq = rr.Uvarint()
	count := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if s.opts.RebuildFraction <= 0 {
		return nil, fmt.Errorf("dynamic: corrupt header (rebuild fraction %g)", s.opts.RebuildFraction)
	}
	s.items = make([]T, count)
	s.alive = make([]bool, count)
	for i := 0; i < count; i++ {
		b := rr.Bytes()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		it, err := dec(b)
		if err != nil {
			return nil, fmt.Errorf("dynamic: decoding item: %w", err)
		}
		s.items[i] = it
		s.alive[i] = true
	}
	s.live = count

	treeBytes := rr.Bytes()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	tree, err := mvp.Load(bytes.NewReader(treeBytes), s.dist, decodeIDItem)
	if err != nil {
		return nil, err
	}
	if tree.Len() != count {
		return nil, fmt.Errorf("dynamic: tree holds %d items, table %d", tree.Len(), count)
	}
	s.tree = tree
	s.treeIDs = count
	s.rebuilds = 1
	return s, nil
}
