package dynamic

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/obs"
)

// newStatsStore builds a store with a mix of tree-resident, buffered and
// tombstoned items so the stats paths exercise every branch.
func newStatsStore(t *testing.T) (*Store[[]float64], [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 11))
	const dim = 4
	initial := make([][]float64, 150)
	for i := range initial {
		initial[i] = randVec(rng, dim)
	}
	s, err := New(initial, metric.L2, Options{
		Tree:            mvp.Options{Partitions: 2, LeafCapacity: 8, PathLength: 3, Build: mvp.Build{Seed: 3}},
		RebuildFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a few inserts (below the rebuild threshold) and tombstone a
	// few tree-resident items.
	for i := 0; i < 10; i++ {
		if err := s.Insert(randVec(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Delete(initial[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Buffered() == 0 {
		t.Fatal("want a non-empty overflow buffer for the stats test")
	}
	queries := make([][]float64, 20)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}
	return s, queries
}

// TestWithStatsMatchesPlainQueries checks the delegation contract: the
// WithStats variants return exactly the plain results, and the reported
// Computed+VantagePoints equals the counter delta of the query.
func TestWithStatsMatchesPlainQueries(t *testing.T) {
	s, queries := newStatsStore(t)
	for _, q := range queries {
		before := s.DistanceCount()
		got, st := s.RangeWithStats(q, 0.4)
		delta := s.DistanceCount() - before
		if st.Distances() != delta {
			t.Fatalf("range: stats report %d distances, counter moved %d", st.Distances(), delta)
		}
		if st.Results != len(got) {
			t.Fatalf("range: Results = %d, got %d items", st.Results, len(got))
		}
		plain := s.Range(q, 0.4)
		if len(plain) != len(got) {
			t.Fatalf("range: plain returned %d items, WithStats %d", len(plain), len(got))
		}

		before = s.DistanceCount()
		nbs, st := s.KNNWithStats(q, 7)
		delta = s.DistanceCount() - before
		if st.Distances() != delta {
			t.Fatalf("knn: stats report %d distances, counter moved %d", st.Distances(), delta)
		}
		if st.Results != len(nbs) {
			t.Fatalf("knn: Results = %d, got %d neighbors", st.Results, len(nbs))
		}
		plainN := s.KNN(q, 7)
		if len(plainN) != len(nbs) {
			t.Fatalf("knn: plain returned %d, WithStats %d", len(plainN), len(nbs))
		}
		for i := range nbs {
			if plainN[i].Dist != nbs[i].Dist {
				t.Fatalf("knn: neighbor %d dist mismatch: %v vs %v", i, plainN[i].Dist, nbs[i].Dist)
			}
		}
	}
}

// TestStoreObserverTotals checks that an attached Observer's snapshot
// accounts for exactly the distances the store computed while serving
// queries.
func TestStoreObserverTotals(t *testing.T) {
	s, queries := newStatsStore(t)
	o := obs.NewObserver(4)
	s.SetObserver(o)
	before := s.DistanceCount()
	for _, q := range queries {
		s.Range(q, 0.4)
		s.KNN(q, 5)
	}
	delta := s.DistanceCount() - before
	snap := o.Snapshot()
	if snap.Distances != delta {
		t.Fatalf("observer saw %d distances, counter moved %d", snap.Distances, delta)
	}
	if want := int64(2 * len(queries)); snap.Queries != want {
		t.Fatalf("observer saw %d queries, want %d", snap.Queries, want)
	}
	if snap.Range.Queries != int64(len(queries)) || snap.KNN.Queries != int64(len(queries)) {
		t.Fatalf("per-kind query counts: range %d knn %d, want %d each",
			snap.Range.Queries, snap.KNN.Queries, len(queries))
	}
}
