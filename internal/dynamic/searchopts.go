package dynamic

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Store[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact paths, byte-identical to
// RangeWithStats / KNNWithStats. Approximate requests forward Epsilon,
// Budget and Patience to the underlying mvp-tree; the overflow
// buffer's linear tail then spends whatever budget the tree left
// (ε and patience do not apply to a plain scan — every live buffered
// item the budget allows is checked exactly). Workers and Bound are
// not supported by the store and are ignored.
func (s *Store[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, st := s.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: st}
		}
		return s.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, st := s.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: st}
	}
	return s.rangeApprox(req.Point, req.Radius, req.Opts)
}

// tailBudget reports how much of the query budget the tree phase left
// for the buffer tail: -1 for unlimited, never negative otherwise.
func tailBudget(o index.SearchOptions, treeStats index.SearchStats) int64 {
	if o.Budget <= 0 {
		return -1
	}
	if rem := o.Budget - treeStats.Distances(); rem > 0 {
		return rem
	}
	return 0
}

func (s *Store[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := s.StartQuery(obs.KindRange)
	var st SearchStats
	if r < 0 {
		span.Done(&st)
		return index.Result[T]{Stats: st}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	inner := index.Query[int]{Point: slot, Radius: r,
		Opts: index.SearchOptions{Epsilon: o.Epsilon, Budget: o.Budget}}
	res := s.tree.Search(inner)
	st = res.Stats
	var out []T
	for _, id := range res.Items {
		if s.alive[id] {
			out = append(out, s.items[id])
		}
	}
	remaining := tailBudget(o, st)
	for _, id := range s.buffer {
		if !s.alive[id] {
			continue
		}
		if remaining == 0 {
			st.BudgetExhausted = 1
			break
		}
		if remaining > 0 {
			remaining--
		}
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		if s.dist.DistanceUpTo(slot, id, r) <= r {
			out = append(out, s.items[id])
		}
	}
	if st.BudgetExhausted > 0 || o.Epsilon > 0 {
		st.Approximated = 1
	}
	st.Results = len(out)
	span.Done(&st)
	return index.Result[T]{Items: out, Stats: st}
}

func (s *Store[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := s.StartQuery(obs.KindKNN)
	var st SearchStats
	if k <= 0 {
		span.Done(&st)
		return index.Result[T]{Stats: st}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.live == 0 {
		span.Done(&st)
		return index.Result[T]{Stats: st}
	}
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	inner := index.Query[int]{Point: slot, K: k + s.treeDead,
		Opts: index.SearchOptions{Epsilon: o.Epsilon, Budget: o.Budget, Patience: o.Patience}}
	res := s.tree.Search(inner)
	st = res.Stats
	best := heapx.NewKBest[T](k)
	for _, nb := range res.Neighbors {
		if s.alive[nb.Item] {
			best.Push(s.items[nb.Item], nb.Dist)
		}
	}
	remaining := tailBudget(o, st)
	for _, id := range s.buffer {
		if !s.alive[id] {
			continue
		}
		if remaining == 0 {
			st.BudgetExhausted = 1
			break
		}
		if remaining > 0 {
			remaining--
		}
		st.Candidates++
		st.Computed++
		s.TraceDistance(1)
		best.Push(s.items[id], s.dist.DistanceUpTo(slot, id, best.Threshold()))
	}
	if st.BudgetExhausted > 0 || o.Epsilon > 0 {
		st.Approximated = 1
	}
	out := best.Sorted()
	st.Results = len(out)
	span.Done(&st)
	return index.Result[T]{Neighbors: out, Stats: st}
}
