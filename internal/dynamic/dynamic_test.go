package dynamic

import (
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// model is the trivially correct reference implementation the store is
// checked against: a plain slice with linear operations.
type model struct {
	items [][]float64
}

func (m *model) insert(v []float64) { m.items = append(m.items, v) }

func (m *model) delete(v []float64) int {
	kept := m.items[:0]
	removed := 0
	for _, it := range m.items {
		if metric.L2(it, v) == 0 {
			removed++
			continue
		}
		kept = append(kept, it)
	}
	m.items = kept
	return removed
}

func (m *model) scan() *linear.Scan[[]float64] {
	return linear.New(m.items, metric.NewCounter(metric.L2))
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func TestRandomizedOperationsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 5))
	const dim = 5
	var m model
	initial := make([][]float64, 200)
	for i := range initial {
		initial[i] = randVec(rng, dim)
		m.insert(initial[i])
	}
	s, err := New(initial, metric.L2, Options{
		Tree:            mvp.Options{Partitions: 2, LeafCapacity: 8, PathLength: 3, Build: mvp.Build{Seed: 1}},
		RebuildFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func(step int) {
		t.Helper()
		if s.Len() != len(m.items) {
			t.Fatalf("step %d: Len = %d, model has %d", step, s.Len(), len(m.items))
		}
		q := randVec(rng, dim)
		for _, r := range []float64{0.2, 0.5, 1.0} {
			got := distSignature(q, s.Range(q, r))
			want := distSignature(q, m.scan().Range(q, r))
			if !equalFloats(got, want) {
				t.Fatalf("step %d: Range(r=%g) distances %v, want %v", step, r, got, want)
			}
		}
		for _, k := range []int{1, 7, 400} {
			got := s.KNN(q, k)
			want := m.scan().KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("step %d: KNN(k=%d) sizes %d vs %d", step, k, len(got), len(want))
			}
			for i := range got {
				if diff := got[i].Dist - want[i].Dist; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("step %d: KNN(k=%d)[%d] = %g, want %g", step, k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}

	check(-1)
	for step := 0; step < 300; step++ {
		switch op := rng.IntN(10); {
		case op < 6: // insert a fresh vector
			v := randVec(rng, dim)
			m.insert(v)
			if err := s.Insert(v); err != nil {
				t.Fatal(err)
			}
		case op < 8 && len(m.items) > 0: // delete an existing item
			v := m.items[rng.IntN(len(m.items))]
			wantN := m.delete(v)
			gotN, err := s.Delete(v)
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("step %d: Delete removed %d, model %d", step, gotN, wantN)
			}
		default: // delete a (likely absent) random vector
			v := randVec(rng, dim)
			wantN := m.delete(v)
			gotN, err := s.Delete(v)
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("step %d: Delete(absent) removed %d, model %d", step, gotN, wantN)
			}
		}
		if step%25 == 0 {
			check(step)
		}
	}
	check(300)
	if s.Rebuilds() < 2 {
		t.Errorf("only %d rebuilds over 300 updates at fraction 0.2; threshold not firing", s.Rebuilds())
	}
}

func distSignature(q []float64, items [][]float64) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = metric.L2(q, it)
	}
	sort.Float64s(out)
	return out
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDuplicateDeleteRemovesAllCopies(t *testing.T) {
	v := []float64{1, 2}
	items := [][]float64{v, {3, 4}, v, v}
	s, err := New(items, metric.L2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Delete([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || s.Len() != 1 {
		t.Errorf("Delete removed %d, Len = %d; want 3, 1", n, s.Len())
	}
	// Deleting again is a no-op.
	n, err = s.Delete([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("second Delete removed %d", n)
	}
}

func TestDeleteFromBuffer(t *testing.T) {
	s, err := New(nil, metric.L2, Options{RebuildFraction: 100}) // never rebuild
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if s.Buffered() != 2 {
		t.Fatalf("Buffered = %d", s.Buffered())
	}
	n, err := s.Delete([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Len() != 1 {
		t.Errorf("Delete from buffer: n=%d Len=%d", n, s.Len())
	}
	got := s.Range([]float64{0}, 5)
	if len(got) != 1 || got[0][0] != 2 {
		t.Errorf("Range after buffer delete = %v", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := New[[]float64](nil, metric.L2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Range([]float64{0}, 1) != nil || s.KNN([]float64{0}, 2) != nil {
		t.Error("empty store misbehaves")
	}
	n, err := s.Delete([]float64{0})
	if err != nil || n != 0 {
		t.Errorf("Delete on empty: %d, %v", n, err)
	}
	if err := s.Insert([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if got := s.KNN([]float64{0}, 1); len(got) != 1 || got[0].Dist != 1 {
		t.Errorf("KNN after first insert = %v", got)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New[[]float64](nil, metric.L2, Options{RebuildFraction: -1}); err == nil {
		t.Error("negative RebuildFraction accepted")
	}
}

func TestAmortizedCostBeatsPerUpdateRebuild(t *testing.T) {
	// 500 inserts into a 2000-item store must cost far less than 500
	// full reconstructions.
	rng := rand.New(rand.NewPCG(92, 5))
	initial := make([][]float64, 2000)
	for i := range initial {
		initial[i] = randVec(rng, 6)
	}
	s, err := New(initial, metric.L2, Options{
		Tree: mvp.Options{Partitions: 3, LeafCapacity: 20, PathLength: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := s.DistanceCount()
	const inserts = 800 // enough to cross the 0.25 rebuild threshold
	for i := 0; i < inserts; i++ {
		if err := s.Insert(randVec(rng, 6)); err != nil {
			t.Fatal(err)
		}
	}
	perInsert := float64(s.DistanceCount()-base) / inserts
	// One rebuild costs ~n·log n ≈ 2000·11 ≈ 22k computations; per
	// insert cost must be orders of magnitude below that.
	if perInsert > 2000 {
		t.Errorf("amortized insert cost %.0f distance computations; scheme not amortizing", perInsert)
	}
	if s.Rebuilds() < 2 {
		t.Errorf("expected a rebuild during %d inserts, got %d total", inserts, s.Rebuilds())
	}
}

func TestQueriesStayTreeFastAfterRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 5))
	initial := make([][]float64, 3000)
	for i := range initial {
		initial[i] = randVec(rng, 4)
	}
	s, err := New(initial, metric.L2, Options{
		Tree: mvp.Options{Partitions: 3, LeafCapacity: 40, PathLength: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: inserts and deletes, then ensure a small range query does
	// not degenerate to a linear scan.
	for i := 0; i < 1000; i++ {
		if err := s.Insert(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.DistanceCount()
	s.Range(randVec(rng, 4), 0.05)
	cost := s.DistanceCount() - before
	if cost > int64(s.Len())/2 {
		t.Errorf("post-churn query cost %d over %d items; buffer not being folded in", cost, s.Len())
	}
}

func TestFarthestQueriesMatchModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 5))
	initial := make([][]float64, 300)
	for i := range initial {
		initial[i] = randVec(rng, 5)
	}
	var m model
	for _, v := range initial {
		m.insert(v)
	}
	s, err := New(initial, metric.L2, Options{RebuildFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// Churn so the tree has tombstones and the buffer has members.
	for i := 0; i < 80; i++ {
		v := randVec(rng, 5)
		m.insert(v)
		if err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		v := m.items[rng.IntN(len(m.items))]
		m.delete(v)
		if _, err := s.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 10; qi++ {
		q := randVec(rng, 5)
		for _, r := range []float64{0.3, 0.8, 1.5} {
			got := distSignature(q, s.RangeFarther(q, r))
			want := distSignature(q, m.scan().RangeFarther(q, r))
			if !equalFloats(got, want) {
				t.Fatalf("RangeFarther(r=%g): %d vs %d results", r, len(got), len(want))
			}
		}
		for _, k := range []int{1, 5, 500} {
			a := s.KFarthest(q, k)
			b := m.scan().KFarthest(q, k)
			if len(a) != len(b) {
				t.Fatalf("KFarthest(k=%d): %d vs %d", k, len(a), len(b))
			}
			for i := range a {
				if d := a[i].Dist - b[i].Dist; d > 1e-12 || d < -1e-12 {
					t.Fatalf("KFarthest(k=%d)[%d]: %g vs %g", k, i, a[i].Dist, b[i].Dist)
				}
			}
		}
	}
}
