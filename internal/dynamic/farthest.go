package dynamic

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// Farthest-object queries over the dynamic store: the tree answers for
// its live members, the overflow buffer is scanned, tombstones are
// filtered.

// RangeFarther returns every live item at distance ≥ r from q.
func (s *Store[T]) RangeFarther(q T, r float64) []T {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	var out []T
	for _, id := range s.tree.RangeFarther(slot, r) {
		if s.alive[id] {
			out = append(out, s.items[id])
		}
	}
	for _, id := range s.buffer {
		if s.alive[id] && s.dist.Distance(slot, id) >= r {
			out = append(out, s.items[id])
		}
	}
	return out
}

// KFarthest returns the k live items farthest from q in descending
// distance order.
func (s *Store[T]) KFarthest(q T, k int) []index.Neighbor[T] {
	if k <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.live == 0 {
		return nil
	}
	slot := s.acquireQuery(q)
	defer s.releaseQuery(slot)
	fromTree := s.tree.KFarthest(slot, k+s.treeDead)
	best := heapx.NewKLargest[T](k)
	for _, nb := range fromTree {
		if s.alive[nb.Item] {
			best.Push(s.items[nb.Item], nb.Dist)
		}
	}
	for _, id := range s.buffer {
		if s.alive[id] {
			best.Push(s.items[id], s.dist.Distance(slot, id))
		}
	}
	return best.Sorted()
}
