package dynamic

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"mvptree/internal/codec"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 5))
	initial := make([][]float64, 400)
	for i := range initial {
		initial[i] = randVec(rng, 6)
	}
	s, err := New(initial, metric.L2, Options{
		Tree: mvp.Options{Partitions: 3, LeafCapacity: 10, PathLength: 4, Build: mvp.Build{Seed: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the store so Save has something to compact.
	for i := 0; i < 60; i++ {
		if err := s.Insert(randVec(rng, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete(initial[3]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	if s.Buffered() != 0 {
		t.Errorf("Save did not compact: %d buffered", s.Buffered())
	}
	loaded, err := Load(&buf, metric.L2, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DistanceCount() != 0 {
		t.Errorf("loading computed %d distances", loaded.DistanceCount())
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), s.Len())
	}
	for qi := 0; qi < 8; qi++ {
		q := randVec(rng, 6)
		a, b := s.Range(q, 0.5), loaded.Range(q, 0.5)
		if len(a) != len(b) {
			t.Fatalf("Range: %d vs %d results", len(a), len(b))
		}
		na, nb := s.KNN(q, 5), loaded.KNN(q, 5)
		for i := range na {
			if na[i].Dist != nb[i].Dist {
				t.Fatalf("KNN differs after reload")
			}
		}
	}
	// The loaded store remains fully dynamic.
	v := randVec(rng, 6)
	if err := loaded.Insert(v); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Range(v, 0); len(got) != 1 {
		t.Errorf("insert after reload not found")
	}
	if n, err := loaded.Delete(v); err != nil || n != 1 {
		t.Errorf("delete after reload: %d, %v", n, err)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	s, err := New[[]float64](nil, metric.L2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, metric.L2, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("Len = %d", loaded.Len())
	}
	if err := loaded.Insert([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Errorf("post-insert Len = %d", loaded.Len())
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 5))
	initial := make([][]float64, 50)
	for i := range initial {
		initial[i] = randVec(rng, 3)
	}
	s, err := New(initial, metric.L2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, i := range []int{5, len(valid) / 2, len(valid) - 3} {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x11
		if _, err := Load(bytes.NewReader(data), metric.L2, codec.DecodeVector); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
}

func TestOptionsSurviveReload(t *testing.T) {
	s, err := New([][]float64{{1}, {2}, {3}}, metric.L2, Options{
		Tree:            mvp.Options{Partitions: 4, LeafCapacity: 7, PathLength: 3, Build: mvp.Build{Seed: 5}},
		RebuildFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, metric.L2, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.opts.RebuildFraction != 0.5 {
		t.Errorf("RebuildFraction = %g", loaded.opts.RebuildFraction)
	}
	if o := loaded.opts.Tree; o.Partitions != 4 || o.LeafCapacity != 7 || o.PathLength != 3 {
		t.Errorf("tree options = %+v", o)
	}
}
