// Package shard is the partitioned serving layer: one logical index
// made of S independent per-shard index structures (mvp-trees by
// default) over a disjoint partition of the item set. Sharding buys
// three things the single-tree layout cannot offer at once:
//
//   - parallel construction with coarser grain than internal/build's
//     intra-tree forking — shards build concurrently, each with its own
//     worker budget;
//
//   - fan-out query serving: one range query runs over all shards
//     concurrently, with a deterministic merge (results are exactly the
//     concatenation of per-shard answers in ascending shard order, at
//     every worker count);
//
//   - cross-shard kNN bound sharing: the shrinking k-th-best distance τ
//     is shared between per-shard searches through index.KNNBound, so a
//     tight neighbor found in one shard prunes the others. Two modes
//     are offered — deterministic sequential tightening (shards in
//     order, carried bound; reproducible distance counts for the
//     paper's cost metric) and opportunistic parallel sharing (atomic
//     bound; wall-clock fastest, counts vary with scheduling) — and
//     their costs are reported separately.
//
// Every shard observes distances through one shared metric.Counter, so
// DistanceCount stays the paper's single cost ledger for the whole
// logical index.
package shard

import (
	"fmt"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// Assignment selects how items are partitioned across shards. Both
// strategies are deterministic functions of (items, shards, seed) —
// independent of worker count — so a sharded build is reproducible.
type Assignment int

const (
	// RoundRobin deals items[i] to shard i mod S. With i.i.d. data the
	// shards are statistically interchangeable, and assignment costs no
	// distance computations.
	RoundRobin Assignment = iota
	// Balanced orders items by distance to a seeded reference pivot and
	// deals consecutive ranks round-robin, so every shard receives the
	// same distance profile (near, mid and far items alike). It costs n
	// distance computations, spread over the build worker pool, and
	// protects fan-out latency from a shard that happens to collect all
	// the dense clumps.
	Balanced
)

func (a Assignment) String() string {
	switch a {
	case RoundRobin:
		return "roundrobin"
	case Balanced:
		return "balanced"
	default:
		return fmt.Sprintf("assignment(%d)", int(a))
	}
}

// Assignments lists every valid Assignment, in declaration order. It is
// the single source of truth for name parsing and for table tests.
var Assignments = []Assignment{RoundRobin, Balanced}

// ParseAssignment maps an Assignment's String form back to the value.
// Unknown names are an error — the persistence manifest goes through
// this, so a typo or a future strategy name is rejected loudly instead
// of silently degrading to RoundRobin.
func ParseAssignment(s string) (Assignment, error) {
	for _, a := range Assignments {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown assignment %q", s)
}

// Options configure a sharded build.
type Options struct {
	// Shards is the shard count S. The default (<= 0) is 1.
	Shards int
	// Assignment selects the partitioning strategy.
	Assignment Assignment
	// Workers bounds the goroutines the whole build may use, shared
	// between concurrent shard builds (each shard build receives an
	// equal slice of the budget). Values <= 1 build serially. The built
	// shards are identical at every worker count.
	Workers int
	// Seed drives the Balanced pivot choice and is mixed into each
	// shard's backend seed so sibling shards do not repeat vantage
	// choices.
	Seed uint64
}

func (o Options) shards() int {
	if o.Shards <= 0 {
		return 1
	}
	return o.Shards
}

// Index is the partitioned logical index. It implements
// index.StatsIndex, so everything that serves a single tree — the
// batch executor, the experiment harness, telemetry — serves a sharded
// index unchanged.
//
// The embedded obs.Hooks observe logical queries (one span per Range /
// KNN call, carrying the merged cross-shard stats). Per-shard
// observers, when wanted, are attached with AttachShardObservers and
// read back with ShardSnapshots.
type Index[T any] struct {
	obs.Hooks

	shards []index.StatsIndex[T]
	dist   *metric.Counter[T]
	size   int
	opts   Options

	// shardObs[i] observes shard i's logical sub-queries; nil until
	// AttachShardObservers.
	shardObs []*obs.Observer
}

// BuildStats extends the uniform construction report with the sharded
// layer's own numbers.
type BuildStats struct {
	build.Stats
	// AssignDistances is the portion of Stats.Distances spent by the
	// assignment phase (zero for RoundRobin).
	AssignDistances int64
	// ShardSizes is the item count per shard.
	ShardSizes []int
	// ShardBuilds is each shard's own construction report.
	ShardBuilds []build.Stats
}

// New builds a sharded index over items through the backend be.
func New[T any](items []T, dist *metric.Counter[T], be Backend[T], opts Options) (*Index[T], error) {
	x, _, err := NewWithStats(items, dist, be, opts)
	return x, err
}

// NewWithStats is New plus the construction report.
func NewWithStats[T any](items []T, dist *metric.Counter[T], be Backend[T], opts Options) (*Index[T], BuildStats, error) {
	var bs BuildStats
	if be.New == nil {
		return nil, bs, fmt.Errorf("shard: backend %q has no constructor", be.Name)
	}
	s := opts.shards()
	if s > len(items) && len(items) > 0 {
		s = len(items)
	}
	b := build.Start(dist, build.Options{Workers: opts.Workers, Seed: opts.Seed})
	parts, assignCost, err := assign(items, s, dist, b, opts)
	if err != nil {
		return nil, bs, err
	}

	// Build shards concurrently on the same bounded pool the
	// assignment used; each shard build gets an equal slice of the
	// worker budget for its own internal parallelism.
	per := b.Workers() / s
	if per < 1 {
		per = 1
	}
	shards := make([]index.StatsIndex[T], s)
	stats := make([]build.Stats, s)
	errs := make([]error, s)
	b.Fork(s, func(i int) {
		shards[i], stats[i], errs[i] = be.New(parts[i], dist, per, opts.Seed+uint64(i)*0x9e3779b97f4a7c15)
	})
	for i, err := range errs {
		if err != nil {
			return nil, bs, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	bs.Stats = b.Finish()
	bs.AssignDistances = assignCost
	bs.ShardBuilds = stats
	bs.ShardSizes = make([]int, s)
	total := 0
	for i, p := range parts {
		bs.ShardSizes[i] = len(p)
		total += len(p)
	}
	for _, st := range stats {
		bs.Nodes += st.Nodes
		if st.MaxDepth > bs.MaxDepth {
			bs.MaxDepth = st.MaxDepth
		}
	}
	x := &Index[T]{shards: shards, dist: dist, size: total, opts: opts}
	x.opts.Shards = s
	return x, bs, nil
}

// assign partitions items into s buckets and reports the distance
// computations the strategy spent.
func assign[T any](items []T, s int, dist *metric.Counter[T], b *build.Builder[T], opts Options) ([][]T, int64, error) {
	parts := make([][]T, s)
	if len(items) == 0 {
		return parts, 0, nil
	}
	for i := range parts {
		parts[i] = make([]T, 0, (len(items)+s-1)/s)
	}
	switch opts.Assignment {
	case RoundRobin:
		for i, it := range items {
			parts[i%s] = append(parts[i%s], it)
		}
		return parts, 0, nil
	case Balanced:
		// Distance-balanced dealing: rank every item by distance to a
		// seeded pivot (measured on the shared pool, counted once) and
		// deal ranks round-robin. Ties rank by original position, so
		// the partition is deterministic.
		rng := build.NewRNG(opts.Seed, 0x5ca1ab1e).Rand()
		pivot := items[rng.IntN(len(items))]
		d := make([]float64, len(items))
		b.Measure(pivot, func(i int) T { return items[i] }, d)
		order := make([]int, len(items))
		for i := range order {
			order[i] = i
		}
		sortByDistanceThenIndex(order, d)
		for rank, i := range order {
			parts[rank%s] = append(parts[rank%s], items[i])
		}
		return parts, int64(len(items)), nil
	default:
		return nil, 0, fmt.Errorf("shard: unknown assignment %d", int(opts.Assignment))
	}
}

// sortByDistanceThenIndex sorts order by (d[i], i) ascending: a plain
// deterministic tie-broken sort, kept dependency-free.
func sortByDistanceThenIndex(order []int, d []float64) {
	less := func(a, b int) bool {
		if d[a] != d[b] {
			return d[a] < d[b]
		}
		return a < b
	}
	// order is a permutation of [0,n); quicksort with median-of-three.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			mid := lo + (hi-lo)/2
			if less(order[mid], order[lo]) {
				order[mid], order[lo] = order[lo], order[mid]
			}
			if less(order[hi-1], order[lo]) {
				order[hi-1], order[lo] = order[lo], order[hi-1]
			}
			if less(order[hi-1], order[mid]) {
				order[hi-1], order[mid] = order[mid], order[hi-1]
			}
			p := order[mid]
			i, j := lo, hi-1
			for {
				for less(order[i], p) {
					i++
				}
				for less(p, order[j]) {
					j--
				}
				if i >= j {
					break
				}
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
			if j-lo < hi-j-1 {
				qs(lo, j+1)
				lo = j + 1
			} else {
				qs(j+1, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && less(order[j], order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	qs(0, len(order))
}

// Shards reports the shard count.
func (x *Index[T]) Shards() int { return len(x.shards) }

// Shard returns shard i's underlying index, for inspection and tests.
func (x *Index[T]) Shard(i int) index.StatsIndex[T] { return x.shards[i] }

// Len reports the total number of indexed items.
func (x *Index[T]) Len() int { return x.size }

// DistanceCount reports the shared counter: every distance computation
// made by any shard, build and queries alike.
func (x *Index[T]) DistanceCount() int64 { return x.dist.Count() }

// EnableCascade builds the cross-query bound cascade (internal/cascade)
// on every shard: each shard precomputes its own pivot × item distance
// rows through the shared counter and thereafter reuses query-time
// vantage distances to skip leaf candidates by the triangle inequality.
// Results are byte-identical with the cascade on or off and per-query
// distance counts can only decrease, shard by shard. It errors if the
// backend's structure does not expose EnableCascade (both built-in
// backends, mvp and vptree, do). Like the per-structure method, it is
// not synchronized with in-flight queries — enable before serving —
// and the cascade is not serialized by SaveDir: re-enable after
// LoadDir.
func (x *Index[T]) EnableCascade(opts cascade.Options) error {
	for i, s := range x.shards {
		c, ok := s.(interface {
			EnableCascade(cascade.Options) error
		})
		if !ok {
			return fmt.Errorf("shard %d: backend does not support the bound cascade", i)
		}
		if err := c.EnableCascade(opts); err != nil {
			return fmt.Errorf("shard %d: enable cascade: %w", i, err)
		}
	}
	return nil
}

// EnableQuantize arms the quantized lower-bound pre-filter
// (internal/quant) on every shard: each shard encodes its own leaf
// vectors into a companion arena consulted before the exact kernel.
// Results, stats and counter deltas are byte-identical with the filter
// on or off, shard by shard; shards whose metric has no quantized
// shape are left unfiltered silently, exactly as the per-structure
// method behaves. It errors if the backend's structure does not expose
// EnableQuantize (both built-in backends, mvp and vptree, do). Not
// synchronized with in-flight queries — arm before serving — and the
// arenas are not serialized by SaveDir: re-enable after LoadDir.
func (x *Index[T]) EnableQuantize(mode quant.Mode) error {
	for i, s := range x.shards {
		q, ok := s.(interface {
			EnableQuantize(quant.Mode) error
		})
		if !ok {
			return fmt.Errorf("shard %d: backend does not support the quantized pre-filter", i)
		}
		if err := q.EnableQuantize(mode); err != nil {
			return fmt.Errorf("shard %d: enable quantize: %w", i, err)
		}
	}
	return nil
}

// SetObserver attaches the Observer to the index's own hooks (logical
// whole-index queries) and additionally registers it as each backend's
// quantize-prune relay: quantized pre-filter tallies are flushed on the
// backend hosting the arenas and deliberately bypass the per-query
// SearchStats the shard layer merges, so without the relay they would
// never reach a shard-level Observer (or /stats in production). Only
// the prune channel is forwarded — backends do not record their own
// query spans into o, so nothing double counts.
func (x *Index[T]) SetObserver(o *obs.Observer) {
	x.Hooks.SetObserver(o)
	x.SetQuantObserver(o)
}

// SetQuantObserver fans the quantize-prune relay out to every shard
// (overriding the promoted Hooks method, whose index-level relay no
// search path would flush). serve attaches its observer through this
// hook so sharded daemons report filtered_by_quantized.
func (x *Index[T]) SetQuantObserver(o *obs.Observer) {
	for _, s := range x.shards {
		if h, ok := s.(interface{ SetQuantObserver(*obs.Observer) }); ok {
			h.SetQuantObserver(o)
		}
	}
}

// AttachShardObservers gives every shard its own obs.Observer (sharded
// over conc slots, as obs.NewObserver), so per-shard query telemetry
// can be read back with ShardSnapshots. Logical whole-index queries are
// observed by the Index's own hooks independently; attaching the same
// Observer at both levels would double count, which is why this method
// creates fresh per-shard observers instead of accepting one.
func (x *Index[T]) AttachShardObservers(conc int) {
	x.shardObs = make([]*obs.Observer, len(x.shards))
	for i, s := range x.shards {
		o := obs.NewObserver(conc)
		x.shardObs[i] = o
		if h, ok := s.(interface{ SetObserver(*obs.Observer) }); ok {
			h.SetObserver(o)
		}
	}
}

// ShardSnapshots returns each shard observer's snapshot plus their
// merge. It returns nils before AttachShardObservers.
func (x *Index[T]) ShardSnapshots() ([]obs.Snapshot, *obs.Snapshot) {
	if x.shardObs == nil {
		return nil, nil
	}
	snaps := make([]obs.Snapshot, len(x.shardObs))
	var merged obs.Snapshot
	for i, o := range x.shardObs {
		snaps[i] = o.Snapshot()
		merged.Merge(snaps[i])
	}
	return snaps, &merged
}

var _ index.StatsIndex[int] = (*Index[int])(nil)
