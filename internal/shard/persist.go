package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Directory persistence for a sharded index: a JSON manifest naming the
// layout plus one blob per shard in the backend's own wire format
// (which carries its own magic, version and integrity checks). The
// manifest is the source of truth for the shard count and the backend;
// LoadDir cross-checks both before touching a blob.

// manifestName is the manifest's filename inside the index directory.
const manifestName = "manifest.json"

// manifestVersion guards the manifest schema itself.
const manifestVersion = 1

type manifest struct {
	Version    int    `json:"version"`
	Backend    string `json:"backend"`
	Shards     int    `json:"shards"`
	Assignment string `json:"assignment"`
	Seed       uint64 `json:"seed"`
	Sizes      []int  `json:"sizes"`
}

func shardBlobName(i int) string { return fmt.Sprintf("shard-%04d.bin", i) }

// SaveDir writes the index into dir (created if missing): the manifest
// plus one blob per shard.
func (x *Index[T]) SaveDir(dir string, be Backend[T], enc func(T) ([]byte, error)) error {
	if be.Save == nil {
		return fmt.Errorf("shard: backend %q cannot save", be.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{
		Version:    manifestVersion,
		Backend:    be.Name,
		Shards:     len(x.shards),
		Assignment: x.opts.Assignment.String(),
		Seed:       x.opts.Seed,
		Sizes:      make([]int, len(x.shards)),
	}
	for i, s := range x.shards {
		m.Sizes[i] = s.Len()
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), append(raw, '\n'), 0o644); err != nil {
		return err
	}
	for i, s := range x.shards {
		f, err := os.Create(filepath.Join(dir, shardBlobName(i)))
		if err != nil {
			return err
		}
		if err := be.Save(s, f, enc); err != nil {
			f.Close()
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads an index previously written by SaveDir. The backend
// must match the one named in the manifest.
func LoadDir[T any](dir string, dist *metric.Counter[T], be Backend[T], dec func([]byte) (T, error)) (*Index[T], error) {
	if be.Load == nil {
		return nil, fmt.Errorf("shard: backend %q cannot load", be.Name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Backend != be.Name {
		return nil, fmt.Errorf("shard: manifest backend %q, loading with %q", m.Backend, be.Name)
	}
	if m.Shards <= 0 || m.Shards != len(m.Sizes) {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d sizes", m.Shards, len(m.Sizes))
	}
	x := &Index[T]{
		shards: make([]index.StatsIndex[T], m.Shards),
		dist:   dist,
		opts:   Options{Shards: m.Shards, Seed: m.Seed},
	}
	if m.Assignment == Balanced.String() {
		x.opts.Assignment = Balanced
	}
	for i := range x.shards {
		f, err := os.Open(filepath.Join(dir, shardBlobName(i)))
		if err != nil {
			return nil, err
		}
		s, err := be.Load(f, dist, dec)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Len() != m.Sizes[i] {
			return nil, fmt.Errorf("shard %d: %d items, manifest says %d", i, s.Len(), m.Sizes[i])
		}
		x.shards[i] = s
		x.size += s.Len()
	}
	return x, nil
}
