package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Directory persistence for a sharded index: a JSON manifest naming the
// layout plus one blob per shard in the backend's own wire format
// (which carries its own magic, version and integrity checks). The
// manifest is the source of truth for the shard count, the backend and
// the blob file names; LoadDir cross-checks all three before touching a
// blob.
//
// Crash safety. A snapshot directory must never be loadable-but-wrong:
// the manifest's presence implies a complete, consistent snapshot. Two
// disciplines enforce that:
//
//   - Every file — blob and manifest alike — is written to a temp file
//     in the same directory, fsynced, and renamed into place. A crash
//     mid-write leaves only a stray temp file, never a torn file under
//     the real name.
//
//   - Blobs are written first and the manifest last, and each save
//     writes its blobs under fresh generation-numbered names
//     (shard-0007-g00000003.bin) that cannot collide with the blobs the
//     live manifest references. The manifest rename is therefore the
//     atomic commit point: a crash anywhere before it leaves the
//     previous snapshot fully intact (old manifest → old blobs), and a
//     crash after it leaves the new snapshot fully written. Stale
//     blobs from earlier generations are garbage-collected only after
//     the commit, and a crash during GC merely leaves unreferenced
//     files behind.

// manifestName is the manifest's filename inside the index directory.
const manifestName = "manifest.json"

// manifestVersion guards the manifest schema itself. Version 1 readers
// ignore the generation/blob fields added for crash safety, so version
// stays at 1; manifests written before those fields existed load
// through the legacy fixed blob names.
const manifestVersion = 1

type manifest struct {
	Version    int    `json:"version"`
	Backend    string `json:"backend"`
	Shards     int    `json:"shards"`
	Assignment string `json:"assignment"`
	Seed       uint64 `json:"seed"`
	Sizes      []int  `json:"sizes"`
	// Generation increments on every SaveDir into the same directory;
	// Blobs names the generation's shard files. Both are absent from
	// legacy manifests, which used the fixed legacyBlobName layout.
	Generation uint64   `json:"generation,omitempty"`
	Blobs      []string `json:"blobs,omitempty"`
}

// legacyBlobName is the fixed pre-generation blob layout, still
// accepted by LoadDir for manifests that carry no Blobs list.
func legacyBlobName(i int) string { return fmt.Sprintf("shard-%04d.bin", i) }

func blobName(i int, gen uint64) string {
	return fmt.Sprintf("shard-%04d-g%08d.bin", i, gen)
}

// writeFileAtomic writes name inside dir through a same-directory temp
// file, fsyncs it, and renames it into place, so the file either exists
// complete under its final name or not at all.
func writeFileAtomic(dir, name string, write func(f *os.File) error) (err error) {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name))
}

// syncDir fsyncs the directory itself so renames are durable. Best
// effort: some filesystems refuse fsync on directories, and the rename
// ordering alone already guarantees consistency (just not durability of
// the very last save).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// nextGeneration picks a generation number strictly above anything in
// the directory: the live manifest's generation and any blob file left
// by an interrupted save.
func nextGeneration(dir string) uint64 {
	var maxGen uint64
	if raw, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(raw, &m) == nil && m.Generation > maxGen {
			maxGen = m.Generation
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return maxGen + 1
	}
	for _, e := range entries {
		var i int
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "shard-%04d-g%08d.bin", &i, &g); n == 2 && g > maxGen {
			maxGen = g
		}
	}
	return maxGen + 1
}

// SaveDir writes the index into dir (created if missing): one blob per
// shard first, the manifest last. The manifest rename is the atomic
// commit point — a crash anywhere during SaveDir leaves the directory
// loading exactly the previous snapshot (or failing loudly if there
// never was one), never a mix.
func (x *Index[T]) SaveDir(dir string, be Backend[T], enc func(T) ([]byte, error)) error {
	if be.Save == nil {
		return fmt.Errorf("shard: backend %q cannot save", be.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen := nextGeneration(dir)
	m := manifest{
		Version:    manifestVersion,
		Backend:    be.Name,
		Shards:     len(x.shards),
		Assignment: x.opts.Assignment.String(),
		Seed:       x.opts.Seed,
		Sizes:      make([]int, len(x.shards)),
		Generation: gen,
		Blobs:      make([]string, len(x.shards)),
	}
	for i, s := range x.shards {
		m.Sizes[i] = s.Len()
		m.Blobs[i] = blobName(i, gen)
	}
	// Blobs first: fresh generation names, so nothing the live manifest
	// references is touched.
	for i, s := range x.shards {
		err := writeFileAtomic(dir, m.Blobs[i], func(f *os.File) error {
			return be.Save(s, f, enc)
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	syncDir(dir)
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	// Manifest last: the commit point.
	err = writeFileAtomic(dir, manifestName, func(f *os.File) error {
		_, werr := f.Write(append(raw, '\n'))
		return werr
	})
	if err != nil {
		return err
	}
	syncDir(dir)
	gcStaleBlobs(dir, m.Blobs)
	return nil
}

// gcStaleBlobs removes snapshot files (blobs and temp leftovers) not
// referenced by the just-committed manifest. Best effort: a failure
// leaves garbage, never breaks the snapshot.
func gcStaleBlobs(dir string, keep []string) {
	live := make(map[string]bool, len(keep)+1)
	live[manifestName] = true
	for _, b := range keep {
		live[b] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if live[name] {
			continue
		}
		if strings.HasPrefix(name, "shard-") || strings.Contains(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadDir reads an index previously written by SaveDir. The backend
// must match the one named in the manifest.
func LoadDir[T any](dir string, dist *metric.Counter[T], be Backend[T], dec func([]byte) (T, error)) (*Index[T], error) {
	if be.Load == nil {
		return nil, fmt.Errorf("shard: backend %q cannot load", be.Name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Backend != be.Name {
		return nil, fmt.Errorf("shard: manifest backend %q, loading with %q", m.Backend, be.Name)
	}
	if m.Shards <= 0 || m.Shards != len(m.Sizes) {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d sizes", m.Shards, len(m.Sizes))
	}
	assignment, err := ParseAssignment(m.Assignment)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	blobs := m.Blobs
	if blobs == nil {
		// Legacy manifest from before generation-numbered blobs.
		blobs = make([]string, m.Shards)
		for i := range blobs {
			blobs[i] = legacyBlobName(i)
		}
	}
	if len(blobs) != m.Shards {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d blobs", m.Shards, len(blobs))
	}
	x := &Index[T]{
		shards: make([]index.StatsIndex[T], m.Shards),
		dist:   dist,
		opts:   Options{Shards: m.Shards, Seed: m.Seed, Assignment: assignment},
	}
	for i := range x.shards {
		f, err := os.Open(filepath.Join(dir, blobs[i]))
		if err != nil {
			return nil, err
		}
		s, err := be.Load(f, dist, dec)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if s.Len() != m.Sizes[i] {
			return nil, fmt.Errorf("shard %d: %d items, manifest says %d", i, s.Len(), m.Sizes[i])
		}
		x.shards[i] = s
		x.size += s.Len()
	}
	return x, nil
}
