package shard

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/codec"
	"mvptree/internal/dataset"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// TestEnableCascadeAcrossSaveLoad pins the documented lifecycle: the
// cascade is not serialized by SaveDir, but re-enabling it on a LoadDir
// index restores the exact pruning behavior of the original — identical
// results, identical per-query stats including FilteredByCascade.
func TestEnableCascadeAcrossSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	items := dataset.UniformVectors(rng, 3000, 20)
	queries := dataset.UniformQueries(rng, 10, 20)
	be := MVP[[]float64](mvp.Options{Partitions: 3, LeafCapacity: 50, PathLength: 5})

	x, _, err := NewWithStats(items, metric.NewCounter(metric.L2), be, Options{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := x.SaveDir(dir, be, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	y, err := LoadDir(dir, metric.NewCounter[[]float64](metric.L2), be, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if err := y.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}

	builtPruned := 0
	for _, q := range queries {
		resX, sX := x.RangeWithStats(q, 0.35)
		resY, sY := y.RangeWithStats(q, 0.35)
		if len(resX) != len(resY) {
			t.Fatalf("result sets differ: %d built vs %d loaded", len(resX), len(resY))
		}
		if sX != sY {
			t.Fatalf("stats differ: built %+v vs loaded %+v", sX, sY)
		}
		builtPruned += sX.FilteredByCascade
	}
	if builtPruned == 0 {
		t.Fatal("cascade never pruned on this workload; test is vacuous")
	}
}
