package shard

import (
	"io"

	"mvptree/internal/build"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// Backend packages the per-shard structure behind closures: how to
// build one shard, and how to serialize/deserialize it for the
// directory persistence layer. A struct of closures rather than an
// interface because the index packages' encoder types are named
// function types, which would not satisfy literal method signatures.
type Backend[T any] struct {
	// Name identifies the backend in the persistence manifest; LoadDir
	// refuses a manifest naming a different backend.
	Name string
	// New builds one shard over items with the given intra-shard
	// worker budget and seed, reporting its construction stats.
	New func(items []T, dist *metric.Counter[T], workers int, seed uint64) (index.StatsIndex[T], build.Stats, error)
	// Save serializes one shard previously built by New.
	Save func(s index.StatsIndex[T], w io.Writer, enc func(T) ([]byte, error)) error
	// Load deserializes one shard written by Save.
	Load func(r io.Reader, dist *metric.Counter[T], dec func([]byte) (T, error)) (index.StatsIndex[T], error)
}

// MVP is the default backend: one mvp-tree per shard. The options'
// Build.Workers and Build.Seed are overridden per shard by the sharded
// build (budget slicing and per-shard seed mixing).
func MVP[T any](opts mvp.Options) Backend[T] {
	return Backend[T]{
		Name: "mvp",
		New: func(items []T, dist *metric.Counter[T], workers int, seed uint64) (index.StatsIndex[T], build.Stats, error) {
			o := opts
			o.Build.Workers = workers
			o.Build.Seed = seed
			return mvp.NewWithStats(items, dist, o)
		},
		Save: func(s index.StatsIndex[T], w io.Writer, enc func(T) ([]byte, error)) error {
			return s.(*mvp.Tree[T]).Save(w, enc)
		},
		Load: func(r io.Reader, dist *metric.Counter[T], dec func([]byte) (T, error)) (index.StatsIndex[T], error) {
			return mvp.Load(r, dist, dec)
		},
	}
}

// VP is the vp-tree backend, mostly exercised by tests and experiments
// comparing shard behavior across structures.
func VP[T any](opts vptree.Options) Backend[T] {
	return Backend[T]{
		Name: "vptree",
		New: func(items []T, dist *metric.Counter[T], workers int, seed uint64) (index.StatsIndex[T], build.Stats, error) {
			o := opts
			o.Build.Workers = workers
			o.Build.Seed = seed
			return vptree.NewWithStats(items, dist, o)
		},
		Save: func(s index.StatsIndex[T], w io.Writer, enc func(T) ([]byte, error)) error {
			return s.(*vptree.Tree[T]).Save(w, enc)
		},
		Load: func(r io.Reader, dist *metric.Counter[T], dec func([]byte) (T, error)) (index.StatsIndex[T], error) {
			return vptree.Load(r, dist, dec)
		},
	}
}
