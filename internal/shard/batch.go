package shard

import (
	"fmt"

	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.BatchSearcher[int] = (*Index[int])(nil)

// SearchBatch answers a query group against the sharded index
// (index.BatchSearcher), byte-identical to per-query Search calls.
//
// Exact single-worker range members are the batched path: the whole
// group fans out shard by shard, each shard answering it through its
// own SearchBatch in one shared traversal (per-query Search when the
// backend lacks the surface), and per-query merges then concatenate
// shard answers in ascending shard order exactly as Search does.
//
// kNN members fall back to per-query Search: the sequential-tightening
// τ carried across shards is a per-query external bound, which the
// per-shard batch surface deliberately refuses. Approximate and
// multi-worker members fall back for the same reason Search routes
// them specially — their fan-out is already per-query.
func (x *Index[T]) SearchBatch(reqs []index.Query[T], out []index.Result[T]) {
	if len(reqs) != len(out) {
		panic(fmt.Sprintf("shard: SearchBatch called with %d queries and %d result slots", len(reqs), len(out)))
	}
	if len(reqs) == 0 {
		return
	}
	if len(reqs) == 1 {
		// A group of one shares nothing; the per-query path is the
		// reference the batch is pinned against, so delegating is
		// identical by definition and skips the group scaffolding.
		out[0] = x.Search(reqs[0])
		return
	}

	// Classify: exact single-worker range members batch, the rest take
	// the sequential entry point unchanged.
	idxs := make([]int, 0, len(reqs))
	for i, req := range reqs {
		if req.K <= 0 && !req.Opts.Approximate() && req.Opts.Workers <= 1 && req.Opts.Bound == nil {
			idxs = append(idxs, i)
		} else {
			out[i] = x.Search(req)
		}
	}
	if len(idxs) == 0 {
		return
	}

	group := make([]index.Query[T], len(idxs))
	spans := make([]obs.Span, len(idxs))
	merged := make([]index.Result[T], len(idxs))
	for gi, i := range idxs {
		group[gi] = reqs[i]
		spans[gi] = x.StartQuery(obs.KindRange)
	}

	// Shard-major fan-out: each shard sees the whole group once, so a
	// batch-capable backend amortizes its traversal over the group.
	sub := make([]index.Result[T], len(group))
	for _, sh := range x.shards {
		if b := index.CapabilitiesOf[T](sh).Batch; b != nil {
			b.SearchBatch(group, sub)
		} else {
			for gi, req := range group {
				items, st := sh.RangeWithStats(req.Point, req.Radius)
				sub[gi] = index.Result[T]{Items: items, Stats: st}
			}
		}
		for gi := range group {
			merged[gi].Items = append(merged[gi].Items, sub[gi].Items...)
			merged[gi].Stats.Add(sub[gi].Stats)
			sub[gi] = index.Result[T]{}
		}
	}
	for gi, i := range idxs {
		merged[gi].Stats.Results = len(merged[gi].Items)
		spans[gi].Done(&merged[gi].Stats)
		out[i] = merged[gi]
	}
}
