package shard

import (
	"math"
	"sync"
	"sync/atomic"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// carriedBound is the sequential-tightening index.KNNBound: single
// goroutine, shards searched in ascending id order, each inheriting the
// tightest k-th-best distance any earlier shard published. Entirely
// deterministic — the distance count it produces is a reproducible
// cost-model quantity.
type carriedBound struct{ tau float64 }

func (b *carriedBound) Tau() float64 { return b.tau }

func (b *carriedBound) Publish(t float64) {
	if t < b.tau {
		b.tau = t
	}
}

// sharedTau is the opportunistic index.KNNBound: one atomic float64
// shared by concurrent per-shard searches, stored as ordered bits
// (distances are non-negative, so the uint64 ordering matches the
// float ordering). Tau only ever decreases; Publish is a CAS-min.
type sharedTau struct{ bits atomic.Uint64 }

func newSharedTau() *sharedTau {
	s := &sharedTau{}
	s.bits.Store(math.Float64bits(math.Inf(1)))
	return s
}

func (s *sharedTau) Tau() float64 { return math.Float64frombits(s.bits.Load()) }

func (s *sharedTau) Publish(t float64) {
	nb := math.Float64bits(t)
	for {
		cur := s.bits.Load()
		if cur <= nb || s.bits.CompareAndSwap(cur, nb) {
			return
		}
	}
}

// Range returns every item within r of q: the concatenation of each
// shard's answer in ascending shard order.
func (x *Index[T]) Range(q T, r float64) []T {
	out, _ := x.RangeWithStats(q, r)
	return out
}

// RangeWithStats fans the query out over the shards sequentially and
// returns the per-shard stats summed in shard order.
func (x *Index[T]) RangeWithStats(q T, r float64) ([]T, index.SearchStats) {
	return x.RangeParallelWithStats(q, r, 1)
}

// RangeParallelWithStats answers one range query with up to workers
// goroutines, one shard per task. The contract matches
// index.ParallelRangeIndex: for every workers value the merged result
// is identical — each shard's answer is deterministic and the merge is
// concatenation in ascending shard order — and the summed stats and
// distance counts are identical too.
func (x *Index[T]) RangeParallelWithStats(q T, r float64, workers int) ([]T, index.SearchStats) {
	span := x.StartQuery(obs.KindRange)
	outs := make([][]T, len(x.shards))
	stats := make([]index.SearchStats, len(x.shards))
	x.fanOut(workers, func(i int) {
		outs[i], stats[i] = x.shards[i].RangeWithStats(q, r)
	})
	var s index.SearchStats
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	var out []T
	if total > 0 {
		out = make([]T, 0, total)
	}
	for i, o := range outs {
		out = append(out, o...)
		s.Add(stats[i])
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// KNN returns the k nearest items across all shards, ordered by
// ascending distance (ties by shard order, then by the shard's own
// output order).
func (x *Index[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := x.KNNWithStats(q, k)
	return out
}

// KNNWithStats is the deterministic sequential-tightening mode: shards
// are searched in ascending id order, each bounded by the tightest
// k-th-best distance published so far (when the backend implements
// index.BoundedKNNIndex; plain KNNWithStats otherwise). The distance
// count is reproducible run to run — this is the mode experiments use
// for the paper's cost metric.
func (x *Index[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], index.SearchStats) {
	span := x.StartQuery(obs.KindKNN)
	var s index.SearchStats
	if k <= 0 {
		span.Done(&s)
		return nil, s
	}
	bound := &carriedBound{tau: math.Inf(1)}
	lists := make([][]index.Neighbor[T], len(x.shards))
	for i, sh := range x.shards {
		var st index.SearchStats
		if b := index.CapabilitiesOf[T](sh).BoundedKNN; b != nil {
			lists[i], st = b.KNNWithStatsBound(q, k, bound)
		} else {
			lists[i], st = sh.KNNWithStats(q, k)
			if len(lists[i]) >= k {
				bound.Publish(lists[i][len(lists[i])-1].Dist)
			}
		}
		s.Add(st)
	}
	out := mergeKNN(lists, k)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// KNNParallelWithStats is the opportunistic mode: per-shard searches
// run concurrently on up to workers goroutines and share one atomic τ,
// so a tight neighbor found in any shard immediately prunes the
// others. The returned neighbor set matches the sequential modes
// (ties at the k-th distance aside, as the KNN contract permits), but
// the distance count depends on scheduling — whichever shard publishes
// a tight τ first saves the others work — and is therefore reported by
// this method separately from the deterministic KNNWithStats count.
func (x *Index[T]) KNNParallelWithStats(q T, k int, workers int) ([]index.Neighbor[T], index.SearchStats) {
	span := x.StartQuery(obs.KindKNN)
	var s index.SearchStats
	if k <= 0 {
		span.Done(&s)
		return nil, s
	}
	tau := newSharedTau()
	lists := make([][]index.Neighbor[T], len(x.shards))
	stats := make([]index.SearchStats, len(x.shards))
	x.fanOut(workers, func(i int) {
		if b := index.CapabilitiesOf[T](x.shards[i]).BoundedKNN; b != nil {
			lists[i], stats[i] = b.KNNWithStatsBound(q, k, tau)
		} else {
			lists[i], stats[i] = x.shards[i].KNNWithStats(q, k)
			if len(lists[i]) >= k {
				tau.Publish(lists[i][len(lists[i])-1].Dist)
			}
		}
	})
	for _, st := range stats {
		s.Add(st)
	}
	out := mergeKNN(lists, k)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// fanOut runs task(i) for every shard on up to workers goroutines
// (the calling goroutine included), claiming shard indices from an
// atomic cursor. workers <= 1 runs sequentially in shard order.
func (x *Index[T]) fanOut(workers int, task func(int)) {
	n := len(x.shards)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	w := min(workers, n)
	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			task(i)
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// mergeKNN merges per-shard neighbor lists (each ascending) into the
// global top-k. The merge is a stable k-way pick: ties on distance are
// resolved by shard order first, then by position within the shard's
// list, so the merged result is a deterministic function of the lists.
func mergeKNN[T any](lists [][]index.Neighbor[T], k int) []index.Neighbor[T] {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	if k > total {
		k = total
	}
	out := make([]index.Neighbor[T], 0, k)
	pos := make([]int, len(lists))
	for len(out) < k {
		bestShard := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if bestShard < 0 || l[pos[i]].Dist < lists[bestShard][pos[bestShard]].Dist {
				bestShard = i
			}
		}
		if bestShard < 0 {
			break
		}
		out = append(out, lists[bestShard][pos[bestShard]])
		pos[bestShard]++
	}
	return out
}

// Threshold-merge alternative kept for the KBest-based callers; unused
// today but exercised by tests to cross-check mergeKNN.
func mergeKNNHeap[T any](lists [][]index.Neighbor[T], k int) []index.Neighbor[T] {
	best := heapx.NewKBest[T](k)
	for _, l := range lists {
		for _, nb := range l {
			best.Push(nb.Item, nb.Dist)
		}
	}
	return best.Sorted()
}

var _ index.ParallelRangeIndex[int] = (*Index[int])(nil)
