package shard

import (
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/testutil"
	"mvptree/internal/vptree"
)

var mvpOpts = mvp.Options{Partitions: 3, LeafCapacity: 13, PathLength: 5}
var vpOpts = vptree.Options{Order: 3, LeafCapacity: 8}

func backends() map[string]func() Backend[int] {
	return map[string]func() Backend[int]{
		"mvp": func() Backend[int] { return MVP[int](mvpOpts) },
		"vp":  func() Backend[int] { return VP[int](vpOpts) },
	}
}

func sortedIDs(items []int) []int {
	out := append([]int(nil), items...)
	sort.Ints(out)
	return out
}

// The headline invariance: a sharded index answers every range query
// with exactly the same item set as the unsharded tree over the same
// points, for every shard count, assignment, worker count and backend.
func TestShardedRangeMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 2))
	w := testutil.NewVectorWorkload(rng, 500, 8, 10, metric.L2)
	for name, mk := range backends() {
		for _, assignment := range []Assignment{RoundRobin, Balanced} {
			for _, s := range []int{1, 2, 3, 7} {
				c := metric.NewCounter(w.Dist)
				x, bs, err := NewWithStats(w.Items, c, mk(), Options{
					Shards: s, Assignment: assignment, Workers: 4, Seed: 7,
				})
				if err != nil {
					t.Fatalf("%s S=%d: NewWithStats: %v", name, s, err)
				}
				if x.Len() != len(w.Items) {
					t.Fatalf("%s S=%d: Len=%d, want %d", name, s, x.Len(), len(w.Items))
				}
				sizes := 0
				for _, n := range bs.ShardSizes {
					sizes += n
					if n == 0 {
						t.Fatalf("%s S=%d %v: empty shard (sizes %v)", name, s, assignment, bs.ShardSizes)
					}
				}
				if sizes != len(w.Items) {
					t.Fatalf("%s S=%d: shard sizes sum to %d", name, s, sizes)
				}
				testutil.CheckRange(t, name+"-sharded", x, w, []float64{0, 0.2, 0.5, 1.0})
				testutil.CheckKNN(t, name+"-sharded", x, w, []int{1, 3, 10, 600})

				// Fan-out determinism: every worker count returns the
				// byte-identical merged slice and summed stats.
				for _, q := range w.Queries[:4] {
					want, wantStats := x.RangeWithStats(q, 0.6)
					for _, workers := range []int{1, 2, 3, 8} {
						got, gotStats := x.RangeParallelWithStats(q, 0.6, workers)
						if len(got) != len(want) {
							t.Fatalf("%s S=%d W=%d: %d results, want %d", name, s, workers, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s S=%d W=%d: result[%d]=%d, want %d", name, s, workers, i, got[i], want[i])
							}
						}
						if gotStats != wantStats {
							t.Fatalf("%s S=%d W=%d: stats %+v, want %+v", name, s, workers, gotStats, wantStats)
						}
					}
				}
			}
		}
	}
}

// Sequential-tightening kNN is deterministic: repeated runs return the
// identical neighbor list and identical distance count, and the
// distances always match the ground truth.
func TestShardedKNNSequentialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 2))
	w := testutil.NewVectorWorkload(rng, 400, 6, 8, metric.L2)
	for name, mk := range backends() {
		c := metric.NewCounter(w.Dist)
		x, err := New(w.Items, c, mk(), Options{Shards: 4, Workers: 2, Seed: 7})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		for _, q := range w.Queries {
			for _, k := range []int{1, 5, 20} {
				before := c.Count()
				first, firstStats := x.KNNWithStats(q, k)
				firstCost := c.Count() - before
				for rep := 0; rep < 3; rep++ {
					before = c.Count()
					got, gotStats := x.KNNWithStats(q, k)
					cost := c.Count() - before
					if gotStats != firstStats || cost != firstCost {
						t.Fatalf("%s q=%d k=%d rep=%d: stats/cost changed: %+v/%d vs %+v/%d",
							name, q, k, rep, gotStats, cost, firstStats, firstCost)
					}
					if len(got) != len(first) {
						t.Fatalf("%s q=%d k=%d rep=%d: %d results, want %d", name, q, k, rep, len(got), len(first))
					}
					for i := range got {
						if got[i] != first[i] {
							t.Fatalf("%s q=%d k=%d rep=%d: result[%d] changed", name, q, k, rep, i)
						}
					}
				}
				if gotStats := firstStats; int64(gotStats.Computed+gotStats.VantagePoints) != firstCost {
					t.Fatalf("%s q=%d k=%d: stats say %d distances, counter says %d",
						name, q, k, gotStats.Computed+gotStats.VantagePoints, firstCost)
				}
			}
		}
	}
}

// The opportunistic parallel mode returns the same neighbor distances
// as the deterministic mode at every worker count (items may differ
// only on ties at the k-th distance, which the KNN contract permits).
func TestShardedKNNParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 2))
	w := testutil.NewVectorWorkload(rng, 400, 6, 8, metric.L2)
	for name, mk := range backends() {
		c := metric.NewCounter(w.Dist)
		x, err := New(w.Items, c, mk(), Options{Shards: 5, Workers: 2, Seed: 7})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		for _, q := range w.Queries {
			for _, k := range []int{1, 4, 15} {
				want := x.KNN(q, k)
				for _, workers := range []int{1, 2, 3, 8} {
					got, _ := x.KNNParallelWithStats(q, k, workers)
					if len(got) != len(want) {
						t.Fatalf("%s q=%d k=%d W=%d: %d results, want %d", name, q, k, workers, len(got), len(want))
					}
					for i := range got {
						if got[i].Dist != want[i].Dist {
							t.Fatalf("%s q=%d k=%d W=%d: dist[%d]=%g, want %g",
								name, q, k, workers, i, got[i].Dist, want[i].Dist)
						}
					}
				}
			}
		}
	}
}

// The balanced assignment is a deterministic function of (items, S,
// seed): two builds produce identical partitions, and the dealt shard
// sizes differ by at most one.
func TestBalancedAssignmentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(34, 2))
	w := testutil.NewVectorWorkload(rng, 300, 5, 2, metric.L2)
	mk := func() (*Index[int], BuildStats) {
		c := metric.NewCounter(w.Dist)
		x, bs, err := NewWithStats(w.Items, c, MVP[int](mvpOpts), Options{
			Shards: 4, Assignment: Balanced, Workers: 3, Seed: 99,
		})
		if err != nil {
			t.Fatalf("NewWithStats: %v", err)
		}
		return x, bs
	}
	a, abs := mk()
	b, bbs := mk()
	if abs.AssignDistances != int64(len(w.Items)) {
		t.Fatalf("AssignDistances=%d, want %d", abs.AssignDistances, len(w.Items))
	}
	for i := range abs.ShardSizes {
		if abs.ShardSizes[i] != bbs.ShardSizes[i] {
			t.Fatalf("shard sizes differ between identical builds: %v vs %v", abs.ShardSizes, bbs.ShardSizes)
		}
		if diff := abs.ShardSizes[i] - abs.ShardSizes[0]; diff < -1 || diff > 1 {
			t.Fatalf("balanced sizes not within one: %v", abs.ShardSizes)
		}
	}
	for i := 0; i < a.Shards(); i++ {
		ga := sortedIDs(a.Shard(i).Range(w.Queries[0], 1e9))
		gb := sortedIDs(b.Shard(i).Range(w.Queries[0], 1e9))
		if len(ga) != len(gb) {
			t.Fatalf("shard %d contents differ", i)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("shard %d contents differ at %d", i, j)
			}
		}
	}
}

// mergeKNN agrees with the heap-based merge on randomized inputs.
func TestMergeKNNCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 2))
	for trial := 0; trial < 200; trial++ {
		lists := make([][]index.Neighbor[int], 1+rng.IntN(5))
		id := 0
		for i := range lists {
			n := rng.IntN(6)
			ds := make([]float64, n)
			for j := range ds {
				ds[j] = float64(rng.IntN(8)) // many duplicate distances
			}
			sort.Float64s(ds)
			for _, d := range ds {
				lists[i] = append(lists[i], index.Neighbor[int]{Item: id, Dist: d})
				id++
			}
		}
		k := 1 + rng.IntN(10)
		a := mergeKNN(lists, k)
		b := mergeKNNHeap(lists, k)
		if len(a) != len(b) {
			t.Fatalf("trial %d: lengths %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Dist != b[i].Dist {
				t.Fatalf("trial %d: dist[%d] %g vs %g", trial, i, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestShardEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(36, 2))
	w := testutil.NewVectorWorkload(rng, 5, 4, 2, metric.L2)
	c := metric.NewCounter(w.Dist)
	// More shards than items: clamp, no empty shard.
	x, bs, err := NewWithStats(w.Items, c, MVP[int](mvpOpts), Options{Shards: 12, Workers: 2})
	if err != nil {
		t.Fatalf("NewWithStats: %v", err)
	}
	if x.Shards() != 5 || len(bs.ShardSizes) != 5 {
		t.Fatalf("shard count %d (sizes %v), want clamp to 5", x.Shards(), bs.ShardSizes)
	}
	testutil.CheckRange(t, "tiny", x, w, []float64{0.5, 2})
	// Empty build.
	e, err := New(nil, metric.NewCounter(w.Dist), MVP[int](mvpOpts), Options{Shards: 3})
	if err != nil {
		t.Fatalf("empty New: %v", err)
	}
	if e.Len() != 0 || e.Range(w.Queries[0], 10) != nil {
		t.Fatalf("empty index answered non-empty")
	}
	if got := e.KNN(w.Queries[0], 3); got != nil {
		t.Fatalf("empty KNN: %v", got)
	}
	// k <= 0.
	if got := x.KNN(w.Queries[0], 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
}
