package shard

import (
	"math"
	"sort"
	"testing"

	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// Tie-breaking table test: a fixture built from groups of exactly
// coincident points, so the k-th distance is almost always a tie shared
// by several items. For every mode — unsharded tree, sharded
// sequential tightening, sharded opportunistic parallel, and the
// intra-query parallel traversal — at several shard/worker counts, the
// returned distance multiset must equal the ground truth exactly, the
// list must be sorted, and the deterministic modes must return the
// identical item sequence on repeated runs.
func TestKNNTieBreaking(t *testing.T) {
	// 120 items in 30 groups of 4 coincident 1-D points: data[i] = i/4.
	const n, group = 120, 4
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{float64(i / group)}
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	dist := func(a, b int) float64 { return math.Abs(data[a][0] - data[b][0]) }

	truthDists := func(q, k int) []float64 {
		ds := make([]float64, n)
		for i := range ds {
			ds[i] = dist(q, i)
		}
		sort.Float64s(ds)
		if k > n {
			k = n
		}
		return ds[:k]
	}

	cases := []struct {
		name string
		q    int // query item id (distance ties guaranteed by the groups)
		k    int
	}{
		{"k-inside-tie-group", 0, 2},  // 4 items at distance 0
		{"k-at-group-boundary", 0, 4}, // exactly one full group
		{"k-spans-groups", 17, 10},    // ties at 0 and 1 both cut
		{"k-large", 50, 37},           // deep tie ladder
		{"k-all", 90, n},              // everything
	}

	type mode struct {
		name          string
		deterministic bool
		run           func(q, k int) []float64 // returns result distances, validates internally
	}

	opts := mvp.Options{Partitions: 2, LeafCapacity: 4, PathLength: 3}
	unsharded, err := mvp.New(items, metric.NewCounter(dist), opts)
	if err != nil {
		t.Fatalf("mvp.New: %v", err)
	}
	modes := []mode{{
		name:          "unsharded",
		deterministic: true,
		run: func(q, k int) []float64 {
			return neighborDists(t, "unsharded", unsharded.KNN(q, k))
		},
	}, {
		name:          "unsharded/bounded-nil",
		deterministic: true,
		run: func(q, k int) []float64 {
			out, _ := unsharded.KNNWithStatsBound(q, k, nil)
			return neighborDists(t, "bounded-nil", out)
		},
	}}
	for _, s := range []int{2, 3, 5} {
		x, err := New(items, metric.NewCounter(dist), MVP[int](opts), Options{Shards: s, Seed: 7})
		if err != nil {
			t.Fatalf("shard.New S=%d: %v", s, err)
		}
		modes = append(modes, mode{
			name:          "sharded-seq/S=" + string(rune('0'+s)),
			deterministic: true,
			run: func(q, k int) []float64 {
				return neighborDists(t, "sharded-seq", x.KNN(q, k))
			},
		})
		for _, w := range []int{1, 2, 8} {
			w := w
			modes = append(modes, mode{
				name: "sharded-par/S=" + string(rune('0'+s)) + "/W=" + string(rune('0'+w)),
				run: func(q, k int) []float64 {
					out, _ := x.KNNParallelWithStats(q, k, w)
					return neighborDists(t, "sharded-par", out)
				},
			})
		}
	}

	for _, tc := range cases {
		want := truthDists(tc.q, tc.k)
		for _, m := range modes {
			got := m.run(tc.q, tc.k)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d results, want %d", tc.name, m.name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: dist[%d]=%g, want %g (full: %v)", tc.name, m.name, i, got[i], want[i], got)
				}
			}
			if m.deterministic {
				again := m.run(tc.q, tc.k)
				for i := range again {
					if again[i] != got[i] {
						t.Fatalf("%s/%s: run-to-run distance drift at %d", tc.name, m.name, i)
					}
				}
			}
		}
	}
}

func neighborDists(t *testing.T, name string, nbs []index.Neighbor[int]) []float64 {
	t.Helper()
	out := make([]float64, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.Dist
		if i > 0 && out[i] < out[i-1] {
			t.Fatalf("%s: result not sorted at %d", name, i)
		}
	}
	return out
}
