package shard

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/codec"
	"mvptree/internal/dataset"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// TestEnableQuantizeAcrossSaveLoad pins the fan-out and the documented
// lifecycle: arming the pre-filter changes no result, stat or counter
// delta on the sharded index, and the arenas — not serialized by
// SaveDir — are rebuilt by re-enabling on the loaded index, restoring
// identical behavior.
func TestEnableQuantizeAcrossSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	items := dataset.UniformVectors(rng, 3000, 20)
	queries := dataset.UniformQueries(rng, 10, 20)
	be := MVP[[]float64](mvp.Options{Partitions: 3, LeafCapacity: 50, PathLength: 5})

	distP := metric.NewCounter(metric.L2)
	plain, _, err := NewWithStats(items, distP, be, Options{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	distQ := metric.NewCounter(metric.L2)
	quantized, _, err := NewWithStats(items, distQ, be, Options{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := quantized.EnableQuantize(quant.SQ8); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := quantized.SaveDir(dir, be, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir, metric.NewCounter[[]float64](metric.L2), be, codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.EnableQuantize(quant.SQ8); err != nil {
		t.Fatal(err)
	}

	// The identity checks below hold vacuously if the filter never
	// armed; the observer assertion after the loop proves it engaged on
	// both the built and the loaded index (the prune tallies flow from
	// the backends through the shard-level quant relay).
	obQ, obL := obs.NewObserver(1), obs.NewObserver(1)
	quantized.SetObserver(obQ)
	loaded.SetObserver(obL)

	for qi, q := range queries {
		p0, q0 := distP.Count(), distQ.Count()
		resP, sP := plain.RangeWithStats(q, 0.35)
		resQ, sQ := quantized.RangeWithStats(q, 0.35)
		resL, sL := loaded.RangeWithStats(q, 0.35)
		if len(resP) != len(resQ) || len(resP) != len(resL) {
			t.Fatalf("q%d: result counts differ: %d plain, %d quantized, %d loaded", qi, len(resP), len(resQ), len(resL))
		}
		if sP != sQ || sQ != sL {
			t.Fatalf("q%d: stats differ:\nplain  %+v\nquant  %+v\nloaded %+v", qi, sP, sQ, sL)
		}
		if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
			t.Fatalf("q%d: counter delta differs: %d plain vs %d quantized", qi, pd, qd)
		}
	}
	if n := obQ.Snapshot().Search.FilteredByQuantized; n == 0 {
		t.Fatal("built index: no quantize prunes reached the shard-level observer")
	}
	if n := obL.Snapshot().Search.FilteredByQuantized; n == 0 {
		t.Fatal("loaded index: no quantize prunes reached the shard-level observer")
	}
}
