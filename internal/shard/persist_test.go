package shard

import (
	"encoding/binary"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/testutil"
)

func intCodec() (func(int) ([]byte, error), func([]byte) (int, error)) {
	enc := func(v int) ([]byte, error) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		return b[:], nil
	}
	dec := func(b []byte) (int, error) {
		return int(binary.LittleEndian.Uint64(b)), nil
	}
	return enc, dec
}

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 6, metric.L2)
	enc, dec := intCodec()
	for name, mk := range backends() {
		be := mk()
		c := metric.NewCounter(w.Dist)
		x, err := New(w.Items, c, be, Options{Shards: 3, Assignment: Balanced, Workers: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		dir := filepath.Join(t.TempDir(), "idx")
		if err := x.SaveDir(dir, be, enc); err != nil {
			t.Fatalf("%s: SaveDir: %v", name, err)
		}
		y, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec)
		if err != nil {
			t.Fatalf("%s: LoadDir: %v", name, err)
		}
		if y.Len() != x.Len() || y.Shards() != x.Shards() {
			t.Fatalf("%s: loaded Len=%d Shards=%d, want %d/%d", name, y.Len(), y.Shards(), x.Len(), x.Shards())
		}
		// Loaded index answers every query byte-identically.
		for _, q := range w.Queries {
			a := x.Range(q, 0.7)
			b := y.Range(q, 0.7)
			if len(a) != len(b) {
				t.Fatalf("%s: range sizes %d vs %d", name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: range result[%d] differs", name, i)
				}
			}
			ka := x.KNN(q, 7)
			kb := y.KNN(q, 7)
			for i := range ka {
				if ka[i].Item != kb[i].Item || ka[i].Dist != kb[i].Dist {
					t.Fatalf("%s: knn result[%d] differs", name, i)
				}
			}
		}
	}
}

func TestLoadDirRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	w := testutil.NewVectorWorkload(rng, 60, 4, 2, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	x, err := New(w.Items, metric.NewCounter(w.Dist), be, Options{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir, be, enc); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	// Wrong backend.
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), VP[int](vpOpts), dec); err == nil {
		t.Fatalf("LoadDir accepted mismatched backend")
	}
	// Missing blob.
	if err := os.Remove(filepath.Join(dir, shardBlobName(1))); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted missing shard blob")
	}
	// Corrupt manifest.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted corrupt manifest")
	}
}

// Per-shard observers see exactly the sub-queries their shard served,
// and the merged snapshot equals the whole fan-out; the index's own
// observer sees one span per logical query.
func TestShardObserverMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 2))
	w := testutil.NewVectorWorkload(rng, 200, 5, 4, metric.L2)
	x, err := New(w.Items, metric.NewCounter(w.Dist), MVP[int](mvpOpts), Options{Shards: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	logical := obs.NewObserver(1)
	x.SetObserver(logical)
	x.AttachShardObservers(1)

	const nq = 8
	var wantComputed int64
	for _, q := range w.Queries[:2] {
		_, s1 := x.RangeWithStats(q, 0.5)
		_, s2 := x.KNNWithStats(q, 5)
		_, s3 := x.RangeParallelWithStats(q, 0.5, 2)
		_, s4 := x.KNNParallelWithStats(q, 5, 2)
		wantComputed += s1.Distances() + s2.Distances() + s3.Distances() + s4.Distances()
	}

	ls := logical.Snapshot()
	if ls.Queries != nq {
		t.Fatalf("logical observer saw %d queries, want %d", ls.Queries, nq)
	}
	if ls.Distances != wantComputed {
		t.Fatalf("logical observer distance total %d, want %d", ls.Distances, wantComputed)
	}
	snaps, merged := x.ShardSnapshots()
	if len(snaps) != 3 || merged == nil {
		t.Fatalf("ShardSnapshots: %d snaps", len(snaps))
	}
	// Every logical query fans out to all 3 shards, and every distance
	// computation happens inside some shard's sub-query.
	if merged.Queries != nq*3 {
		t.Fatalf("merged shard observers saw %d sub-queries, want %d", merged.Queries, nq*3)
	}
	if merged.Distances != wantComputed {
		t.Fatalf("merged shard distance total %d, want %d", merged.Distances, wantComputed)
	}
	var sum int64
	for _, sn := range snaps {
		sum += sn.Queries
	}
	if sum != nq*3 {
		t.Fatalf("per-shard query sum %d, want %d", sum, nq*3)
	}
}
