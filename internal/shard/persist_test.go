package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/testutil"
)

func intCodec() (func(int) ([]byte, error), func([]byte) (int, error)) {
	enc := func(v int) ([]byte, error) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		return b[:], nil
	}
	dec := func(b []byte) (int, error) {
		return int(binary.LittleEndian.Uint64(b)), nil
	}
	return enc, dec
}

func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 6, metric.L2)
	enc, dec := intCodec()
	for name, mk := range backends() {
		be := mk()
		c := metric.NewCounter(w.Dist)
		x, err := New(w.Items, c, be, Options{Shards: 3, Assignment: Balanced, Workers: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		dir := filepath.Join(t.TempDir(), "idx")
		if err := x.SaveDir(dir, be, enc); err != nil {
			t.Fatalf("%s: SaveDir: %v", name, err)
		}
		y, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec)
		if err != nil {
			t.Fatalf("%s: LoadDir: %v", name, err)
		}
		if y.Len() != x.Len() || y.Shards() != x.Shards() {
			t.Fatalf("%s: loaded Len=%d Shards=%d, want %d/%d", name, y.Len(), y.Shards(), x.Len(), x.Shards())
		}
		// Loaded index answers every query byte-identically.
		for _, q := range w.Queries {
			a := x.Range(q, 0.7)
			b := y.Range(q, 0.7)
			if len(a) != len(b) {
				t.Fatalf("%s: range sizes %d vs %d", name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: range result[%d] differs", name, i)
				}
			}
			ka := x.KNN(q, 7)
			kb := y.KNN(q, 7)
			for i := range ka {
				if ka[i].Item != kb[i].Item || ka[i].Dist != kb[i].Dist {
					t.Fatalf("%s: knn result[%d] differs", name, i)
				}
			}
		}
	}
}

func TestLoadDirRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	w := testutil.NewVectorWorkload(rng, 60, 4, 2, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	x, err := New(w.Items, metric.NewCounter(w.Dist), be, Options{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir, be, enc); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	// Wrong backend.
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), VP[int](vpOpts), dec); err == nil {
		t.Fatalf("LoadDir accepted mismatched backend")
	}
	// Missing blob.
	if err := os.Remove(filepath.Join(dir, readManifest(t, dir).Blobs[1])); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted missing shard blob")
	}
	// Corrupt manifest.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted corrupt manifest")
	}
}

// assertSameAnswers asserts y answers every workload query exactly like x.
func assertSameAnswers(t *testing.T, name string, x, y *Index[int], w *testutil.Workload) {
	t.Helper()
	for _, q := range w.Queries {
		a := x.Range(q, 0.7)
		b := y.Range(q, 0.7)
		if len(a) != len(b) {
			t.Fatalf("%s: range sizes %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: range result[%d] differs", name, i)
			}
		}
		ka := x.KNN(q, 7)
		kb := y.KNN(q, 7)
		if len(ka) != len(kb) {
			t.Fatalf("%s: knn sizes %d vs %d", name, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i].Item != kb[i].Item || ka[i].Dist != kb[i].Dist {
				t.Fatalf("%s: knn result[%d] differs", name, i)
			}
		}
	}
}

// readManifest parses the on-disk manifest for white-box assertions.
func readManifest(t *testing.T, dir string) manifest {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parse manifest: %v", err)
	}
	return m
}

// A save that dies mid-way — at any point before the final manifest
// rename — must leave the directory loading exactly the previous
// snapshot. The kill is injected through the item encoder: enc fails
// after a budget of calls, aborting SaveDir at every possible depth
// (before any blob, between blobs, mid-blob). The manifest-written-last
// discipline plus generation-numbered blob names make every such torn
// state load as the old snapshot.
func TestSaveDirTornWriteKeepsOldSnapshot(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 2))
	w1 := testutil.NewVectorWorkload(rng, 240, 6, 5, metric.L2)
	w2 := testutil.NewVectorWorkload(rng, 180, 6, 5, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	v1, err := New(w1.Items, metric.NewCounter(w1.Dist), be, Options{Shards: 3, Seed: 9})
	if err != nil {
		t.Fatalf("New v1: %v", err)
	}
	v2, err := New(w2.Items, metric.NewCounter(w2.Dist), be, Options{Shards: 3, Seed: 9})
	if err != nil {
		t.Fatalf("New v2: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := v1.SaveDir(dir, be, enc); err != nil {
		t.Fatalf("SaveDir v1: %v", err)
	}
	gen1 := readManifest(t, dir).Generation

	// Kill the v2 save after `budget` successful item encodes, for
	// every budget until the save finally succeeds.
	succeeded := false
	for budget := 0; budget < 10_000; budget += 1 + budget/2 {
		calls := 0
		killEnc := func(v int) ([]byte, error) {
			if calls >= budget {
				return nil, fmt.Errorf("injected crash after %d encodes", calls)
			}
			calls++
			return enc(v)
		}
		err := v2.SaveDir(dir, be, killEnc)
		if err == nil {
			succeeded = true
			break
		}
		// Torn state: the old snapshot must load, byte-identically.
		got, lerr := LoadDir(dir, metric.NewCounter(w1.Dist), be, dec)
		if lerr != nil {
			t.Fatalf("budget %d: LoadDir after torn save failed: %v", budget, lerr)
		}
		if got.Len() != v1.Len() {
			t.Fatalf("budget %d: torn dir loaded %d items, want old snapshot's %d", budget, got.Len(), v1.Len())
		}
		if g := readManifest(t, dir).Generation; g != gen1 {
			t.Fatalf("budget %d: manifest generation %d, want untouched %d", budget, g, gen1)
		}
		assertSameAnswers(t, fmt.Sprintf("budget-%d", budget), v1, got, w1)
	}
	if !succeeded {
		t.Fatalf("SaveDir v2 never succeeded within the budget sweep")
	}

	// After the completed save the new snapshot is live...
	got, err := LoadDir(dir, metric.NewCounter(w2.Dist), be, dec)
	if err != nil {
		t.Fatalf("LoadDir after completed save: %v", err)
	}
	if got.Len() != v2.Len() {
		t.Fatalf("loaded %d items, want new snapshot's %d", got.Len(), v2.Len())
	}
	assertSameAnswers(t, "committed-v2", v2, got, w2)

	// ...and GC left exactly the manifest plus the live blobs.
	m := readManifest(t, dir)
	live := map[string]bool{manifestName: true}
	for _, b := range m.Blobs {
		live[b] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !live[e.Name()] {
			t.Fatalf("stale file %q survived GC", e.Name())
		}
	}
}

// The other torn shape: every new blob written but the manifest rename
// never reached (crash between the two phases). Simulated by committing
// v2 into a scratch dir and copying only its blobs — not its manifest —
// next to v1's live manifest. The old snapshot must still load.
func TestSaveDirCrashBeforeManifestCommit(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 2))
	w1 := testutil.NewVectorWorkload(rng, 200, 6, 4, metric.L2)
	w2 := testutil.NewVectorWorkload(rng, 150, 6, 4, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	v1, err := New(w1.Items, metric.NewCounter(w1.Dist), be, Options{Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(w2.Items, metric.NewCounter(w2.Dist), be, Options{Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	scratch := filepath.Join(t.TempDir(), "scratch")
	if err := v1.SaveDir(dir, be, enc); err != nil {
		t.Fatal(err)
	}
	if err := v1.SaveDir(scratch, be, enc); err != nil {
		t.Fatal(err)
	}
	if err := v2.SaveDir(scratch, be, enc); err != nil {
		t.Fatal(err)
	}
	// scratch is now at generation 2, matching what a second save into
	// dir would have produced; copy only the blobs.
	m2 := readManifest(t, scratch)
	for _, b := range m2.Blobs {
		raw, err := os.ReadFile(filepath.Join(scratch, b))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, b), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadDir(dir, metric.NewCounter(w1.Dist), be, dec)
	if err != nil {
		t.Fatalf("LoadDir with uncommitted new blobs: %v", err)
	}
	if got.Len() != v1.Len() {
		t.Fatalf("loaded %d items, want old snapshot's %d", got.Len(), v1.Len())
	}
	assertSameAnswers(t, "uncommitted-blobs", v1, got, w1)
}

// Corruption in a shard blob — truncation, a flipped payload bit, or an
// insane length prefix — must surface as a load error, never as a
// quietly different index.
func TestLoadDirDetectsCorruptBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(46, 2))
	w := testutil.NewVectorWorkload(rng, 200, 5, 2, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	x, err := New(w.Items, metric.NewCounter(w.Dist), be, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir, be, enc); err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(dir, readManifest(t, dir).Blobs[0])
	pristine, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(blob, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Sanity: pristine dir loads.
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err != nil {
		t.Fatalf("pristine LoadDir: %v", err)
	}

	// Truncation: half the blob gone.
	if err := os.WriteFile(blob, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted a truncated blob")
	}
	restore()

	// A single flipped bit mid-payload: caught by the blob's checksum.
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)/2] ^= 0x10
	if err := os.WriteFile(blob, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted a bit-flipped blob")
	}
	restore()

	// An all-ones header turns the leading length prefix into a huge
	// varint: caught by the wire.MaxBytes bound (or the magic check).
	smashed := append([]byte(nil), pristine...)
	for i := 0; i < 12 && i < len(smashed); i++ {
		smashed[i] = 0xFF
	}
	if err := os.WriteFile(blob, smashed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
		t.Fatalf("LoadDir accepted a blob with a smashed header")
	}
	restore()

	// Swapping two blobs of different sizes trips the manifest's
	// per-shard size cross-check.
	m := readManifest(t, dir)
	if m.Sizes[0] != m.Sizes[1] {
		a := filepath.Join(dir, m.Blobs[0])
		b := filepath.Join(dir, m.Blobs[1])
		ra, _ := os.ReadFile(a)
		rb, _ := os.ReadFile(b)
		os.WriteFile(a, rb, 0o644)
		os.WriteFile(b, ra, 0o644)
		if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
			t.Fatalf("LoadDir accepted swapped shard blobs of different sizes")
		}
	}
}

// Every Assignment round-trips through its manifest string, and unknown
// names are rejected instead of silently becoming RoundRobin.
func TestAssignmentRoundTrip(t *testing.T) {
	for _, a := range Assignments {
		got, err := ParseAssignment(a.String())
		if err != nil {
			t.Fatalf("ParseAssignment(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("ParseAssignment(%q) = %v, want %v", a.String(), got, a)
		}
	}
	for _, bad := range []string{"", "round-robin", "BALANCED", "hash", "assignment(7)"} {
		if _, err := ParseAssignment(bad); err == nil {
			t.Fatalf("ParseAssignment(%q) accepted an unknown name", bad)
		}
	}

	// End to end: each assignment survives SaveDir → LoadDir, and a
	// manifest naming an unknown assignment refuses to load.
	rng := rand.New(rand.NewPCG(47, 2))
	w := testutil.NewVectorWorkload(rng, 90, 4, 2, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	for _, a := range Assignments {
		x, err := New(w.Items, metric.NewCounter(w.Dist), be, Options{Shards: 2, Assignment: a, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "idx-"+a.String())
		if err := x.SaveDir(dir, be, enc); err != nil {
			t.Fatal(err)
		}
		y, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec)
		if err != nil {
			t.Fatal(err)
		}
		if y.opts.Assignment != a {
			t.Fatalf("assignment %v loaded back as %v", a, y.opts.Assignment)
		}

		raw, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			t.Fatal(err)
		}
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		m.Assignment = "definitely-not-a-strategy"
		mangled, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec); err == nil {
			t.Fatalf("LoadDir accepted unknown assignment name")
		}
	}
}

// Manifests written before generation-numbered blobs (no blobs list)
// still load through the fixed legacy names.
func TestLoadDirLegacyLayout(t *testing.T) {
	rng := rand.New(rand.NewPCG(48, 2))
	w := testutil.NewVectorWorkload(rng, 120, 5, 3, metric.L2)
	enc, dec := intCodec()
	be := MVP[int](mvpOpts)
	x, err := New(w.Items, metric.NewCounter(w.Dist), be, Options{Shards: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir, be, enc); err != nil {
		t.Fatal(err)
	}
	// Rewrite the directory into the legacy shape: fixed blob names, a
	// manifest without generation/blobs fields.
	m := readManifest(t, dir)
	for i, b := range m.Blobs {
		if err := os.Rename(filepath.Join(dir, b), filepath.Join(dir, legacyBlobName(i))); err != nil {
			t.Fatal(err)
		}
	}
	m.Blobs = nil
	m.Generation = 0
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	y, err := LoadDir(dir, metric.NewCounter(w.Dist), be, dec)
	if err != nil {
		t.Fatalf("LoadDir legacy layout: %v", err)
	}
	if y.Len() != x.Len() {
		t.Fatalf("legacy load: %d items, want %d", y.Len(), x.Len())
	}
	assertSameAnswers(t, "legacy", x, y, w)
}

// Per-shard observers see exactly the sub-queries their shard served,
// and the merged snapshot equals the whole fan-out; the index's own
// observer sees one span per logical query.
func TestShardObserverMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 2))
	w := testutil.NewVectorWorkload(rng, 200, 5, 4, metric.L2)
	x, err := New(w.Items, metric.NewCounter(w.Dist), MVP[int](mvpOpts), Options{Shards: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	logical := obs.NewObserver(1)
	x.SetObserver(logical)
	x.AttachShardObservers(1)

	const nq = 8
	var wantComputed int64
	for _, q := range w.Queries[:2] {
		_, s1 := x.RangeWithStats(q, 0.5)
		_, s2 := x.KNNWithStats(q, 5)
		_, s3 := x.RangeParallelWithStats(q, 0.5, 2)
		_, s4 := x.KNNParallelWithStats(q, 5, 2)
		wantComputed += s1.Distances() + s2.Distances() + s3.Distances() + s4.Distances()
	}

	ls := logical.Snapshot()
	if ls.Queries != nq {
		t.Fatalf("logical observer saw %d queries, want %d", ls.Queries, nq)
	}
	if ls.Distances != wantComputed {
		t.Fatalf("logical observer distance total %d, want %d", ls.Distances, wantComputed)
	}
	snaps, merged := x.ShardSnapshots()
	if len(snaps) != 3 || merged == nil {
		t.Fatalf("ShardSnapshots: %d snaps", len(snaps))
	}
	// Every logical query fans out to all 3 shards, and every distance
	// computation happens inside some shard's sub-query.
	if merged.Queries != nq*3 {
		t.Fatalf("merged shard observers saw %d sub-queries, want %d", merged.Queries, nq*3)
	}
	if merged.Distances != wantComputed {
		t.Fatalf("merged shard distance total %d, want %d", merged.Distances, wantComputed)
	}
	var sum int64
	for _, sn := range snaps {
		sum += sn.Queries
	}
	if sum != nq*3 {
		t.Fatalf("per-shard query sum %d, want %d", sum, nq*3)
	}
}
