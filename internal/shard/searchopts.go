package shard

import (
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var (
	_ index.Searcher[int]           = (*Index[int])(nil)
	_ index.ParallelKNNIndex[int]   = (*Index[int])(nil)
	_ index.CapabilityReporter[int] = (*Index[int])(nil)
)

// Capabilities publishes the sharded index's capability report
// directly (index.CapabilityReporter): everything it offers is listed
// here, and BoundedKNN is deliberately absent — the carried / shared τ
// machinery is the shard layer's own, and an external bound would
// race with it.
func (x *Index[T]) Capabilities() index.Capabilities[T] {
	return index.Capabilities[T]{
		Stats:         x,
		Search:        x,
		Batch:         x,
		ParallelRange: x,
		ParallelKNN:   x,
	}
}

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact fan-out, byte-identical
// to RangeWithStats / KNNWithStats (Workers > 1 selects the parallel
// fan-out variants). Approximate requests split the distance budget
// across the shards — Budget/S each, the remainder dealt to the lowest
// shard ids — while Epsilon and Patience pass through unchanged, so
// the logical query never spends more than its budget no matter how
// many shards it touches. An external Bound is ignored: cross-shard τ
// sharing is the shard layer's own machinery.
func (x *Index[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			if req.Opts.Workers > 1 {
				nb, s := x.KNNParallelWithStats(req.Point, req.K, req.Opts.Workers)
				return index.Result[T]{Neighbors: nb, Stats: s}
			}
			nb, s := x.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return x.knnApprox(req)
	}
	if !req.Opts.Approximate() {
		out, s := x.RangeParallelWithStats(req.Point, req.Radius, req.Opts.Workers)
		return index.Result[T]{Items: out, Stats: s}
	}
	return x.rangeApprox(req)
}

// splitBudget deals a logical distance budget across s shards: base
// share Budget/s, remainder to the lowest shard ids. A zero or
// negative total means unlimited, reported as all zeroes.
func splitBudget(total int64, s int) []int64 {
	per := make([]int64, s)
	if total <= 0 {
		return per
	}
	base, rem := total/int64(s), total%int64(s)
	for i := range per {
		per[i] = base
		if int64(i) < rem {
			per[i]++
		}
	}
	return per
}

// shardApprox runs one shard's slice of an approximate query. Shards
// whose budget share is zero (more shards than budget) are skipped
// entirely and reported as exhausted. Backends that do not implement
// index.Searcher fall back to their exact path — a valid superset —
// with the budget unenforced for that shard.
func shardApprox[T any](sh index.StatsIndex[T], req index.Query[T], budget int64, limited bool) index.Result[T] {
	if limited && budget == 0 {
		return index.Result[T]{Stats: index.SearchStats{BudgetExhausted: 1, Approximated: 1}}
	}
	sub := req
	sub.Opts = index.SearchOptions{Epsilon: req.Opts.Epsilon, Budget: budget, Patience: req.Opts.Patience}
	if s := index.CapabilitiesOf[T](sh).Search; s != nil {
		return s.Search(sub)
	}
	if req.K > 0 {
		nb, st := sh.KNNWithStats(req.Point, req.K)
		return index.Result[T]{Neighbors: nb, Stats: st}
	}
	out, st := sh.RangeWithStats(req.Point, req.Radius)
	return index.Result[T]{Items: out, Stats: st}
}

func (x *Index[T]) rangeApprox(req index.Query[T]) index.Result[T] {
	span := x.StartQuery(obs.KindRange)
	budgets := splitBudget(req.Opts.Budget, len(x.shards))
	limited := req.Opts.Budget > 0
	results := make([]index.Result[T], len(x.shards))
	x.fanOut(req.Opts.Workers, func(i int) {
		results[i] = shardApprox(x.shards[i], req, budgets[i], limited)
	})
	var s index.SearchStats
	total := 0
	for _, r := range results {
		total += len(r.Items)
	}
	var out []T
	if total > 0 {
		out = make([]T, 0, total)
	}
	for _, r := range results {
		out = append(out, r.Items...)
		s.Add(r.Stats)
	}
	clampApproxFlags(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (x *Index[T]) knnApprox(req index.Query[T]) index.Result[T] {
	span := x.StartQuery(obs.KindKNN)
	var s index.SearchStats
	if req.K <= 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	budgets := splitBudget(req.Opts.Budget, len(x.shards))
	limited := req.Opts.Budget > 0
	results := make([]index.Result[T], len(x.shards))
	x.fanOut(req.Opts.Workers, func(i int) {
		results[i] = shardApprox(x.shards[i], req, budgets[i], limited)
	})
	lists := make([][]index.Neighbor[T], len(x.shards))
	for i, r := range results {
		lists[i] = r.Neighbors
		s.Add(r.Stats)
	}
	clampApproxFlags(&s)
	out := mergeKNN(lists, req.K)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}

// clampApproxFlags reduces summed per-shard 0/1 flags back to the
// logical query's 0/1: any exhausted or approximate slice makes the
// whole answer so.
func clampApproxFlags(s *index.SearchStats) {
	if s.BudgetExhausted > 0 {
		s.BudgetExhausted = 1
		s.Approximated = 1
	}
	if s.Approximated > 0 {
		s.Approximated = 1
	}
}
