package shard

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// TestShardedBatchMatchesSequential pins the sharded SearchBatch: for
// every backend, shard count and batch size, a mixed group of range,
// kNN, approximate and budgeted queries returns byte-identical results,
// stats and summed counter deltas compared to per-query Search calls.
func TestShardedBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 2))
	w := testutil.NewVectorWorkload(rng, 600, 8, 12, metric.L2)
	var reqs []index.Query[int]
	for qi, q := range w.Queries {
		reqs = append(reqs, index.RangeQuery(q, []float64{0.2, 0.6}[qi%2]))
		reqs = append(reqs, index.KNNQuery(q, 1+qi%7))
		switch qi % 3 {
		case 0:
			r := index.RangeQuery(q, 0.4)
			r.Opts.Epsilon = 0.3
			reqs = append(reqs, r)
		case 1:
			r := index.KNNQuery(q, 4)
			r.Opts.Budget = 120
			reqs = append(reqs, r)
		case 2:
			reqs = append(reqs, index.RangeQuery(q, 0))
		}
	}

	for name, mk := range backends() {
		for _, s := range []int{1, 3, 5} {
			c := metric.NewCounter(w.Dist)
			x, err := New(w.Items, c, mk(), Options{Shards: s, Workers: 2, Seed: 7})
			if err != nil {
				t.Fatalf("%s S=%d: New: %v", name, s, err)
			}

			want := make([]index.Result[int], len(reqs))
			wantDelta := make([]int64, len(reqs))
			for i, req := range reqs {
				c0 := c.Count()
				want[i] = x.Search(req)
				wantDelta[i] = c.Count() - c0
			}

			for _, b := range []int{1, 4, 16, 64} {
				for lo := 0; lo < len(reqs); lo += b {
					hi := min(lo+b, len(reqs))
					chunk := reqs[lo:hi]
					got := make([]index.Result[int], len(chunk))
					c0 := c.Count()
					x.SearchBatch(chunk, got)
					delta := c.Count() - c0
					var wd int64
					for i := lo; i < hi; i++ {
						wd += wantDelta[i]
					}
					if delta != wd {
						t.Errorf("%s S=%d B=%d chunk [%d,%d): counter delta %d, sequential %d",
							name, s, b, lo, hi, delta, wd)
					}
					for i := range chunk {
						if !reflect.DeepEqual(got[i], want[lo+i]) {
							t.Fatalf("%s S=%d B=%d query %d: batch result differs\nseq   %+v\nbatch %+v",
								name, s, b, lo+i, want[lo+i], got[i])
						}
					}
				}
			}
		}
	}
}

// TestShardedBatchEdgeCases pins the panic and empty-group contracts.
func TestShardedBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2))
	w := testutil.NewVectorWorkload(rng, 30, 4, 2, metric.L2)
	c := metric.NewCounter(w.Dist)
	x, err := New(w.Items, c, MVP[int](mvpOpts), Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched lengths did not panic")
			}
		}()
		x.SearchBatch(make([]index.Query[int], 2), make([]index.Result[int], 1))
	}()
	x.SearchBatch(nil, nil) // no-op
}
