package bktree

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"mvptree/internal/metric"
	"mvptree/internal/wire"
)

// Persistence for BK-trees, in the same CRC-protected envelope as the
// other structures. Children are written in ascending key order so the
// output is deterministic for a given tree.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "BKTREE1"

// Save writes the tree to w. The metric is not serialized; Load must be
// given the same (integer-valued) metric.
func (t *Tree[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	pw.Int(t.size)
	hasRoot := t.root != nil
	pw.Bool(hasRoot)
	if hasRoot {
		if err := saveNode(pw, t.root, enc); err != nil {
			return err
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

func saveNode[T any](w *wire.Writer, n *node[T], enc ItemEncoder[T]) error {
	b, err := enc(n.item)
	if err != nil {
		return fmt.Errorf("bktree: encoding item: %w", err)
	}
	w.Bytes(b)
	keys := make([]int, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		if err := saveNode(w, n.children[k], enc); err != nil {
			return err
		}
	}
	return w.Err()
}

// maxLoadDepth guards against corrupt streams. BK-trees built by
// insertion can be deeper than balanced trees, so the bound is generous.
const maxLoadDepth = 4096

// Load reads a tree written by Save.
func Load[T any](r io.Reader, dist *metric.Counter[T], dec ItemDecoder[T]) (*Tree[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("bktree: bad magic (not a BK-tree stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("bktree: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))
	t := &Tree[T]{dist: dist}
	t.size = rr.Int()
	hasRoot := rr.Bool()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if t.size < 0 || (t.size > 0) != hasRoot {
		return nil, fmt.Errorf("bktree: corrupt header (n=%d, root=%v)", t.size, hasRoot)
	}
	if hasRoot {
		root, err := loadNode(rr, dec, 0)
		if err != nil {
			return nil, err
		}
		t.root = root
	}
	return t, nil
}

func loadNode[T any](r *wire.Reader, dec ItemDecoder[T], depth int) (*node[T], error) {
	if depth > maxLoadDepth {
		return nil, fmt.Errorf("bktree: tree deeper than %d levels (corrupt stream)", maxLoadDepth)
	}
	b := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	item, err := dec(b)
	if err != nil {
		return nil, fmt.Errorf("bktree: decoding item: %w", err)
	}
	n := &node[T]{item: item}
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if count > 0 {
		n.children = make(map[int]*node[T], count)
		for i := 0; i < count; i++ {
			key := r.Int()
			if err := r.Err(); err != nil {
				return nil, err
			}
			child, err := loadNode(r, dec, depth+1)
			if err != nil {
				return nil, err
			}
			if _, dup := n.children[key]; dup {
				return nil, fmt.Errorf("bktree: duplicate child key %d (corrupt stream)", key)
			}
			n.children[key] = child
		}
	}
	return n, nil
}
