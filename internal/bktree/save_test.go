package bktree

import (
	"bytes"
	"sort"
	"testing"

	"mvptree/internal/codec"
	"mvptree/internal/metric"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	orig, err := New(words, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeString); err != nil {
		t.Fatal(err)
	}
	c2 := metric.NewCounter(metric.Edit)
	loaded, err := Load(&buf, c2, codec.DecodeString)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
	}
	if c2.Count() != 0 {
		t.Errorf("loading computed %d distances", c2.Count())
	}
	for _, q := range []string{"book", "fish", "zzz"} {
		for _, r := range []float64{0, 1, 2} {
			a := append([]string(nil), orig.Range(q, r)...)
			b := append([]string(nil), loaded.Range(q, r)...)
			sort.Strings(a)
			sort.Strings(b)
			if len(a) != len(b) {
				t.Fatalf("Range(%q, %g): %d vs %d results", q, r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("Range(%q, %g) differs after reload", q, r)
				}
			}
		}
	}
	// The loaded tree remains insertable.
	if err := loaded.Insert("bop"); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Range("bop", 0); len(got) != 1 {
		t.Errorf("inserted item not found after reload: %v", got)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	orig, err := New(nil, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeString); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, c, codec.DecodeString)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.Range("x", 3) != nil {
		t.Error("empty tree misbehaves after reload")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	orig, err := New(words, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeString); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, i := range []int{10, len(valid) / 2, len(valid) - 3} {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x3C
		if _, err := Load(bytes.NewReader(data), c, codec.DecodeString); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk")), c, codec.DecodeString); err == nil {
		t.Error("junk accepted")
	}
}
