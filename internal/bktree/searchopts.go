package bktree

import (
	"math"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact traversal, byte-identical
// to RangeWithStats / KNNWithStats (which remain as thin wrappers over
// the same code paths); Epsilon, Budget or Patience switch to the
// approximate traversal below. Approximate traversals do not consult
// the cascade; Workers and Bound are not supported by this structure
// and are ignored.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox narrows the child key window to [⌈d−rp⌉, ⌊d+rp⌋] with
// rp = r/(1+ε) while acceptance keeps the full r, and debits the
// budget before every computation. Every reported item is within r;
// every item within rp is guaranteed reported.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, a *index.Approx, out *[]T, s *SearchStats) {
	if a.Stop() || !a.Pay(1) {
		return
	}
	s.NodesVisited++
	leaf := n.children == nil
	t.TraceNode(leaf)
	s.Candidates++
	s.Computed++
	t.TraceDistance(1)
	if leaf {
		s.LeavesVisited++
		if t.dist.DistanceUpTo(q, n.item, r) <= r {
			*out = append(*out, n.item)
		}
		return
	}
	d := t.dist.Distance(q, n.item)
	if d <= r {
		*out = append(*out, n.item)
	}
	lo := int(math.Ceil(d - rp))
	hi := int(math.Floor(d + rp))
	for key, c := range n.children {
		if key >= lo && key <= hi {
			t.rangeNodeApprox(c, q, r, rp, a, out, s)
			if a.Stop() {
				return
			}
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// knnApprox is best-first kNN with the approximation knobs: a child
// is discarded once its lower bound |d − key| reaches τ/(1+ε), the
// budget is debited before every computation, and patience stops the
// search after the configured number of consecutive non-improving
// leaves (for the bk-tree, nodes whose push failed to tighten τ).
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for !a.Stop() {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		if !a.Pay(1) {
			break
		}
		s.NodesVisited++
		leaf := n.children == nil
		t.TraceNode(leaf)
		if leaf {
			s.LeavesVisited++
		}
		s.Candidates++
		s.Computed++
		t.TraceDistance(1)
		var d float64
		if leaf {
			d = t.dist.DistanceUpTo(q, n.item, best.Threshold())
		} else {
			d = t.dist.Distance(q, n.item)
		}
		best.Push(n.item, d)
		if leaf {
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		for key, c := range n.children {
			lb := math.Abs(d - float64(key))
			if lb < bound {
				lb = bound
			}
			if lb < a.Shrink(best.Threshold()) {
				queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}
