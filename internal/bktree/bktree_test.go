package bktree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/linear"
	"mvptree/internal/metric"
)

var words = []string{
	"book", "books", "boo", "boon", "cook", "cake", "cape", "cart",
	"case", "cast", "bake", "lake", "take", "rake", "fake", "face",
	"fact", "fast", "mast", "most", "must", "mist", "fist", "fish",
	"wish", "wash", "cash", "dash", "dish", "dosh",
}

func TestRangeMatchesLinearScan(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	tree, err := New(words, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := linear.New(words, metric.NewCounter(metric.Edit))
	for _, q := range []string{"book", "fish", "zzz", "", "cas"} {
		for _, r := range []float64{0, 1, 2, 3, 10} {
			got := append([]string(nil), tree.Range(q, r)...)
			want := append([]string(nil), truth.Range(q, r)...)
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("Range(%q, %g) = %v, want %v", q, r, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Range(%q, %g) = %v, want %v", q, r, got, want)
				}
			}
		}
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	tree, err := New(words, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := linear.New(words, metric.NewCounter(metric.Edit))
	for _, q := range []string{"book", "fish", "zzzzz", ""} {
		for _, k := range []int{1, 3, 10, 100} {
			got := tree.KNN(q, k)
			want := truth.KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("KNN(%q, %d): %d results, want %d", q, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("KNN(%q, %d)[%d].Dist = %g, want %g", q, k, i, got[i].Dist, want[i].Dist)
				}
				if metric.Edit(q, got[i].Item) != got[i].Dist {
					t.Fatalf("KNN(%q, %d)[%d] reported wrong distance", q, k, i)
				}
			}
		}
	}
}

func TestDuplicates(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	tree, err := New([]string{"dup", "dup", "dup", "other"}, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 4 {
		t.Errorf("Len() = %d, want 4", tree.Len())
	}
	if got := tree.Range("dup", 0); len(got) != 3 {
		t.Errorf("Range(dup, 0) = %v, want 3 copies", got)
	}
}

func TestNonIntegerMetricRejected(t *testing.T) {
	c := metric.NewCounter(metric.L2)
	if _, err := New([][]float64{{0.5}, {1.3}}, c, Options{}); err == nil {
		t.Error("non-integer metric accepted")
	}
}

func TestRandomizedHamming(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 1))
	items := make([]string, 300)
	for i := range items {
		b := make([]byte, 8)
		for j := range b {
			b[j] = 'a' + byte(rng.IntN(4))
		}
		items[i] = string(b)
	}
	c := metric.NewCounter(metric.Hamming)
	tree, err := New(items, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := linear.New(items, metric.NewCounter(metric.Hamming))
	for qi := 0; qi < 10; qi++ {
		b := make([]byte, 8)
		for j := range b {
			b[j] = 'a' + byte(rng.IntN(4))
		}
		q := string(b)
		for _, r := range []float64{0, 1, 2, 4, 8} {
			got := tree.Range(q, r)
			want := truth.Range(q, r)
			if len(got) != len(want) {
				t.Fatalf("Range(%q, %g): %d results, want %d", q, r, len(got), len(want))
			}
		}
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	c := metric.NewCounter(metric.Edit)
	tree, err := New(nil, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Errorf("empty Len() = %d", tree.Len())
	}
	if got := tree.Range("x", 5); got != nil {
		t.Errorf("empty Range = %v", got)
	}
	if got := tree.KNN("x", 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
	if got := tree.Range("x", -1); got != nil {
		t.Errorf("negative radius Range = %v", got)
	}
}

func TestPruningSavesWork(t *testing.T) {
	// BK-tree range queries with small radius must touch far fewer
	// nodes than the corpus size on a diverse corpus.
	rng := rand.New(rand.NewPCG(52, 1))
	items := make([]string, 2000)
	for i := range items {
		n := 4 + rng.IntN(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = 'a' + byte(rng.IntN(26))
		}
		items[i] = string(b)
	}
	c := metric.NewCounter(metric.Edit)
	tree, err := New(items, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	tree.Range("hello", 1)
	if c.Count() > int64(len(items))/2 {
		t.Errorf("Range(hello, 1) used %d distance computations over %d items; no pruning", c.Count(), len(items))
	}
}
