package bktree

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree
// (internal/cascade). The BK-tree stores one item per node, so the
// roles split by node kind at enable time: the first opts.Pivots
// internal-node items (breadth-first) become cascade pivots — their
// query distances are always computed exactly anyway, to position the
// child key window — and every current leaf item gets a row in the
// pivot × item distance table, precomputed through the tree's own
// counter. Afterwards Range/KNN queries register the internal-node
// distances they pay for regardless and skip a leaf's distance
// computation entirely when the triangle-inequality lower bound over
// the registered pivots already exceeds the query threshold (a leaf
// has no children, so its distance decides membership only). Results
// are the same sets with the cascade on or off; per-query distance
// counts can only decrease.
//
// Items added by Insert after EnableCascade stay unstamped and are
// simply never filtered — correct, just not accelerated; re-enable to
// cover them. The precomputation costs Pivots × Leaves distance
// computations, reported by Cascade().BuildDistances. A tree too small
// to hold both internal nodes and leaves is left uncascaded silently.
// EnableCascade mutates nodes and, like Insert, must be serialized
// against queries externally.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.children == nil {
			n.casID = b.AddItem(n.item) + 1
			continue
		}
		n.cas = b.AddPivot(n.item)
		for _, c := range n.children {
			queue = append(queue, c)
		}
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
