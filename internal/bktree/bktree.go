// Package bktree implements the Burkhard–Keller tree [BK73], the first
// method the paper reviews (§3.2): a hierarchical multi-way
// decomposition for metrics that take discrete (integer) values, such as
// edit distance or Hamming distance.
//
// Each node holds one item; children are keyed by the integer distance
// from the node's item, so all keys at distance d from the node's item
// live under child d. Range search with radius r at a node whose item is
// at distance d from the query needs only the children keyed d−r … d+r,
// by the triangle inequality.
//
// Unlike the other structures in this repository, the BK-tree is
// naturally incremental: Insert is exposed alongside bulk construction.
// Bulk construction groups items by their distance to the subtree root
// in one batched pass per node — the resulting tree, and the number of
// distance computations, are exactly those of inserting the items in
// order, but sibling subtrees can be built in parallel.
//
// Queries are safe to run concurrently against one tree, but Insert
// mutates nodes and must be serialized against queries externally.
package bktree

import (
	"errors"
	"math"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so bktree call sites match the
// other index packages. Every BK-tree node holds one data item whose
// query distance is always computed, so Candidates == Computed counts
// visited nodes, VantagePoints stays zero, and ShellsPruned counts
// children outside the d±r key window.
type SearchStats = index.SearchStats

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure bulk construction. The BK-tree has no structural
// parameters (its shape is fixed by the data and insertion order); only
// the shared construction knobs apply. Seed is accepted for uniformity
// but unused — BK-tree construction involves no random choices.
type Options struct {
	Build
}

// Tree is a Burkhard–Keller tree over items under a discrete metric.
// The embedded obs.Hooks let callers attach an Observer and/or Tracer;
// with neither attached the query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	cas        *cascade.Filter[T]
	size       int
	buildStats build.Stats
}

var _ index.StatsIndex[string] = (*Tree[string])(nil)

type node[T any] struct {
	item     T
	children map[int]*node[T]

	// Cascade stamps (see cascade.go; both zero until EnableCascade).
	cas   int32 // pivot stamp, set on internal nodes
	casID int32 // item id + 1, set on nodes that were leaves at enable time
}

// New builds a BK-tree equivalent to inserting items in order. The
// metric must return non-negative integer values; New returns an error
// on the first non-integer distance it computes.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	if err := opts.Build.Validate("bktree"); err != nil {
		return nil, build.Stats{}, err
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	b := build.Start(dist, opts.Build)
	var err error
	t.root, err = bulkBuild(b, items, 0)
	if err != nil {
		return nil, build.Stats{}, err
	}
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// bulkBuild constructs the subtree rooted at items[0] over all of
// items. Grouping the remaining items by their integer distance to the
// root, preserving order within each group, reproduces sequential
// insertion exactly: under ordered insertion every item passing through
// this node computes precisely its distance to the node's item, the
// first item of a distance group becomes that child's node item, and
// the rest descend into it in order.
func bulkBuild[T any](b *build.Builder[T], items []T, depth int) (*node[T], error) {
	if len(items) == 0 {
		return nil, nil
	}
	b.Node(depth)
	n := &node[T]{item: items[0]}
	rest := items[1:]
	if len(rest) == 0 {
		return n, nil
	}
	ds := make([]float64, len(rest))
	b.Measure(n.item, func(i int) T { return rest[i] }, ds)
	groups := make(map[int][]T)
	var keys []int
	for i, it := range rest {
		d := ds[i]
		di := int(d)
		if float64(di) != d || d < 0 {
			return nil, errors.New("bktree: metric returned a non-integer distance")
		}
		if _, ok := groups[di]; !ok {
			keys = append(keys, di)
		}
		groups[di] = append(groups[di], it)
	}
	children := make([]*node[T], len(keys))
	errs := make([]error, len(keys))
	b.Fork(len(keys), func(gi int) {
		children[gi], errs[gi] = bulkBuild(b, groups[keys[gi]], depth+1)
	})
	n.children = make(map[int]*node[T], len(keys))
	for gi, key := range keys {
		if errs[gi] != nil {
			return nil, errs[gi]
		}
		n.children[key] = children[gi]
	}
	return n, nil
}

// Insert adds one item to the tree.
func (t *Tree[T]) Insert(item T) error {
	if t.root == nil {
		t.root = &node[T]{item: item}
		t.size++
		return nil
	}
	n := t.root
	for {
		d := t.dist.Distance(item, n.item)
		di := int(d)
		if float64(di) != d || d < 0 {
			return errors.New("bktree: metric returned a non-integer distance")
		}
		if di == 0 {
			// Duplicate (distance zero): store under child 0 so it is
			// still retrievable; a chain of identical items forms.
			if n.children == nil {
				n.children = make(map[int]*node[T])
			}
			if c, ok := n.children[0]; ok {
				n = c
				continue
			}
			n.children[0] = &node[T]{item: item}
			t.size++
			return nil
		}
		if n.children == nil {
			n.children = make(map[int]*node[T])
		}
		c, ok := n.children[di]
		if !ok {
			n.children[di] = &node[T]{item: item}
			t.size++
			return nil
		}
		n = c
	}
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + inserts + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports the number of distance computations made during
// bulk construction (zero for a tree grown purely by Insert).
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full bulk-construction report.
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Range returns every indexed item within distance r of q. It delegates
// to RangeWithStats so there is exactly one traversal implementation.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	var out []T
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, cc, &out, &s)
	if cc != nil {
		t.cas.Put(cc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	s.NodesVisited++
	leaf := n.children == nil
	t.TraceNode(leaf)
	s.Candidates++
	if leaf {
		s.LeavesVisited++
		// A leaf's distance only decides membership — so the cascade
		// may skip the computation outright when the registered-pivot
		// lower bound already exceeds r.
		if cc != nil && n.casID != 0 && cc.Registered() > 0 {
			if lb := t.cas.LowerBound(cc, n.casID-1); lb > r {
				s.FilteredByCascade++
				t.TracePrune(obs.FilterCascade, 1)
				return
			}
		}
		s.Computed++
		t.TraceDistance(1)
		// Membership only: the kernel may abandon at r.
		if t.dist.DistanceUpTo(q, n.item, r) <= r {
			*out = append(*out, n.item)
		}
		return
	}
	s.Computed++
	t.TraceDistance(1)
	// An internal node's distance positions the child key window
	// [⌈d−r⌉, ⌊d+r⌋] — a two-sided use an understated distance would
	// corrupt — so it stays exact, and the cascade shares it for free.
	d := t.dist.Distance(q, n.item)
	if cc != nil && n.cas != 0 && cc.Wants() {
		cc.Register(n.cas-1, d)
	}
	if d <= r {
		*out = append(*out, n.item)
	}
	lo := int(math.Ceil(d - r))
	hi := int(math.Floor(d + r))
	for key, c := range n.children {
		if key >= lo && key <= hi {
			t.rangeNode(c, q, r, cc, out, s)
		} else {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
		}
	}
}

// KNN returns the k nearest indexed items by best-first traversal: a
// child keyed key under a node at distance d from the query has lower
// bound |d − key|. It delegates to KNNWithStats (single traversal
// implementation).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
		defer t.cas.Put(cc)
	}
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		s.NodesVisited++
		leaf := n.children == nil
		t.TraceNode(leaf)
		if leaf {
			s.LeavesVisited++
		}
		s.Candidates++
		if leaf && cc != nil && n.casID != 0 && cc.Registered() > 0 {
			// A leaf with no children contributes only a heap push; a
			// lower bound the heap would reject proves the push would
			// be rejected too, so skip the computation outright.
			if clb := t.cas.LowerBound(cc, n.casID-1); !best.Accepts(clb) {
				s.FilteredByCascade++
				t.TracePrune(obs.FilterCascade, 1)
				continue
			}
		}
		s.Computed++
		t.TraceDistance(1)
		var d float64
		if leaf {
			// Membership only ⇒ abandon at τ; internal distances feed
			// the two-sided |d − key| child bounds and stay exact.
			d = t.dist.DistanceUpTo(q, n.item, best.Threshold())
		} else {
			d = t.dist.Distance(q, n.item)
			if cc != nil && n.cas != 0 && cc.Wants() {
				cc.Register(n.cas-1, d) // already exact; free to share
			}
		}
		best.Push(n.item, d)
		for key, c := range n.children {
			lb := math.Abs(d - float64(key))
			if lb < bound {
				lb = bound
			}
			if best.Accepts(lb) {
				queue.PushNode(c, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
