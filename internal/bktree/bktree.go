// Package bktree implements the Burkhard–Keller tree [BK73], the first
// method the paper reviews (§3.2): a hierarchical multi-way
// decomposition for metrics that take discrete (integer) values, such as
// edit distance or Hamming distance.
//
// Each node holds one item; children are keyed by the integer distance
// from the node's item, so all keys at distance d from the node's item
// live under child d. Range search with radius r at a node whose item is
// at distance d from the query needs only the children keyed d−r … d+r,
// by the triangle inequality.
//
// Unlike the other structures in this repository, the BK-tree is
// naturally incremental: Insert is exposed alongside bulk construction.
//
// Queries are safe to run concurrently against one tree, but Insert
// mutates nodes and must be serialized against queries externally.
package bktree

import (
	"errors"
	"math"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Tree is a Burkhard–Keller tree over items under a discrete metric.
type Tree[T any] struct {
	root *node[T]
	dist *metric.Counter[T]
	size int
}

var _ index.Index[string] = (*Tree[string])(nil)

type node[T any] struct {
	item     T
	children map[int]*node[T]
}

// New builds a BK-tree by inserting items in order. The metric must
// return non-negative integer values; New returns an error on the first
// non-integer distance it computes.
func New[T any](items []T, dist *metric.Counter[T]) (*Tree[T], error) {
	t := &Tree[T]{dist: dist}
	for _, it := range items {
		if err := t.Insert(it); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Insert adds one item to the tree.
func (t *Tree[T]) Insert(item T) error {
	if t.root == nil {
		t.root = &node[T]{item: item}
		t.size++
		return nil
	}
	n := t.root
	for {
		d := t.dist.Distance(item, n.item)
		di := int(d)
		if float64(di) != d || d < 0 {
			return errors.New("bktree: metric returned a non-integer distance")
		}
		if di == 0 {
			// Duplicate (distance zero): store under child 0 so it is
			// still retrievable; a chain of identical items forms.
			if n.children == nil {
				n.children = make(map[int]*node[T])
			}
			if c, ok := n.children[0]; ok {
				n = c
				continue
			}
			n.children[0] = &node[T]{item: item}
			t.size++
			return nil
		}
		if n.children == nil {
			n.children = make(map[int]*node[T])
		}
		c, ok := n.children[di]
		if !ok {
			n.children[di] = &node[T]{item: item}
			t.size++
			return nil
		}
		n = c
	}
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// Range returns every indexed item within distance r of q.
func (t *Tree[T]) Range(q T, r float64) []T {
	if r < 0 || t.root == nil {
		return nil
	}
	var out []T
	t.rangeNode(t.root, q, r, &out)
	return out
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, out *[]T) {
	d := t.dist.Distance(q, n.item)
	if d <= r {
		*out = append(*out, n.item)
	}
	if n.children == nil {
		return
	}
	lo := int(math.Ceil(d - r))
	hi := int(math.Floor(d + r))
	for key, c := range n.children {
		if key >= lo && key <= hi {
			t.rangeNode(c, q, r, out)
		}
	}
}

// KNN returns the k nearest indexed items by best-first traversal: a
// child keyed key under a node at distance d from the query has lower
// bound |d − key|.
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		d := t.dist.Distance(q, n.item)
		best.Push(n.item, d)
		for key, c := range n.children {
			lb := math.Abs(d - float64(key))
			if lb < bound {
				lb = bound
			}
			if best.Accepts(lb) {
				queue.PushNode(c, lb)
			}
		}
	}
	return best.Sorted()
}
