// Package ghtree implements the generalized hyperplane tree of Uhlmann
// [Uhl91], the second structure introduced alongside the vp-tree and
// reviewed by the paper in §3.2.
//
// Each internal node holds two pivot points; the remaining points are
// split by which pivot they are closer to (a generalized hyperplane
// rather than a spherical cut). A subtree can be pruned when the query
// ball cannot cross the hyperplane: if d(q,p1) − d(q,p2) > 2r, no point
// closer to p1 than to p2 can be within r of q.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package ghtree

import (
	"errors"
	"math/rand/v2"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Options configure construction of a gh-tree.
type Options struct {
	// LeafCapacity is the maximum number of points in a leaf bucket.
	// Default 1.
	LeafCapacity int
	// Seed seeds pivot selection.
	Seed uint64
}

// Tree is a generalized hyperplane tree over a fixed item set.
type Tree[T any] struct {
	root      *node[T]
	dist      *metric.Counter[T]
	size      int
	buildCost int64
}

var _ index.Index[int] = (*Tree[int])(nil)

type node[T any] struct {
	p1, p2      T
	hasP2       bool
	left, right *node[T] // closer to p1 / closer to p2
	leaf        bool
	items       []T
}

// New builds a gh-tree over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = 1
	}
	if opts.LeafCapacity < 1 {
		return nil, errors.New("ghtree: LeafCapacity must be at least 1")
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	work := make([]T, len(items))
	copy(work, items)
	rng := rand.New(rand.NewPCG(opts.Seed, 0x676874726565))
	before := dist.Count()
	t.root = t.build(work, rng, opts.LeafCapacity)
	t.buildCost = dist.Count() - before
	return t, nil
}

func (t *Tree[T]) build(work []T, rng *rand.Rand, leafCap int) *node[T] {
	if len(work) == 0 {
		return nil
	}
	if len(work) <= leafCap {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	n := &node[T]{}
	// First pivot random; second pivot the farthest point from the
	// first, which tends to produce well-separated hyperplanes.
	i1 := rng.IntN(len(work))
	work[i1], work[len(work)-1] = work[len(work)-1], work[i1]
	n.p1 = work[len(work)-1]
	rest := work[:len(work)-1]
	if len(rest) == 0 {
		return n
	}
	d1 := make([]float64, len(rest))
	far := 0
	for i, it := range rest {
		d1[i] = t.dist.Distance(n.p1, it)
		if d1[i] > d1[far] {
			far = i
		}
	}
	last := len(rest) - 1
	rest[far], rest[last] = rest[last], rest[far]
	d1[far], d1[last] = d1[last], d1[far]
	n.p2, n.hasP2 = rest[last], true
	rest, d1 = rest[:last], d1[:last]

	var left, right []T
	for i, it := range rest {
		if d1[i] <= t.dist.Distance(n.p2, it) {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	n.left = t.build(left, rng, leafCap)
	n.right = t.build(right, rng, leafCap)
	return n
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// BuildCost reports the number of distance computations made during
// construction.
func (t *Tree[T]) BuildCost() int64 { return t.buildCost }

// Range returns every indexed item within distance r of q.
func (t *Tree[T]) Range(q T, r float64) []T {
	if r < 0 {
		return nil
	}
	var out []T
	t.rangeNode(t.root, q, r, &out)
	return out
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, out *[]T) {
	if n == nil {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			if t.dist.Distance(q, it) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	d1 := t.dist.Distance(q, n.p1)
	if d1 <= r {
		*out = append(*out, n.p1)
	}
	if !n.hasP2 {
		return
	}
	d2 := t.dist.Distance(q, n.p2)
	if d2 <= r {
		*out = append(*out, n.p2)
	}
	// Hyperplane pruning: points on the p1 side satisfy
	// d(x,p1) ≤ d(x,p2); the query ball reaches that side only if
	// (d1 − d2)/2 ≤ r. Symmetrically for the p2 side.
	if (d1-d2)/2 <= r {
		t.rangeNode(n.left, q, r, out)
	}
	if (d2-d1)/2 <= r {
		t.rangeNode(n.right, q, r, out)
	}
}

// KNN returns the k nearest indexed items by best-first traversal using
// the hyperplane lower bound max(0, (dNear − dFar)/2).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		if n.leaf {
			for _, it := range n.items {
				best.Push(it, t.dist.Distance(q, it))
			}
			continue
		}
		d1 := t.dist.Distance(q, n.p1)
		best.Push(n.p1, d1)
		if !n.hasP2 {
			continue
		}
		d2 := t.dist.Distance(q, n.p2)
		best.Push(n.p2, d2)
		if n.left != nil {
			lb := max(bound, (d1-d2)/2)
			if best.Accepts(lb) {
				queue.PushNode(n.left, lb)
			}
		}
		if n.right != nil {
			lb := max(bound, (d2-d1)/2)
			if best.Accepts(lb) {
				queue.PushNode(n.right, lb)
			}
		}
	}
	return best.Sorted()
}
