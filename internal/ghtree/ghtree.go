// Package ghtree implements the generalized hyperplane tree of Uhlmann
// [Uhl91], the second structure introduced alongside the vp-tree and
// reviewed by the paper in §3.2.
//
// Each internal node holds two pivot points; the remaining points are
// split by which pivot they are closer to (a generalized hyperplane
// rather than a spherical cut). A subtree can be pruned when the query
// ball cannot cross the hyperplane: if d(q,p1) − d(q,p2) > 2r, no point
// closer to p1 than to p2 can be within r of q.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package ghtree

import (
	"errors"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so ghtree call sites match the
// other index packages. Pivot distances count as VantagePoints and a
// skipped subtree as one ShellsPruned; with no stored leaf distances,
// FilteredByD/FilteredByPath stay zero and Computed == Candidates.
type SearchStats = index.SearchStats

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction of a gh-tree.
type Options struct {
	// Build holds the shared construction knobs (Workers, Seed); the
	// tree built is identical for every worker count.
	Build
	// LeafCapacity is the maximum number of points in a leaf bucket.
	// Default 1.
	LeafCapacity int
}

// Tree is a generalized hyperplane tree over a fixed item set. The
// embedded obs.Hooks let callers attach an Observer and/or Tracer; with
// neither attached the query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	cas        *cascade.Filter[T]
	size       int
	buildStats build.Stats
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

type node[T any] struct {
	p1, p2      T
	hasP2       bool
	left, right *node[T] // closer to p1 / closer to p2
	leaf        bool
	items       []T

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	cas1, cas2 int32
	casBase    int32
}

// New builds a gh-tree over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = 1
	}
	if err := opts.Build.Validate("ghtree"); err != nil {
		return nil, build.Stats{}, err
	}
	if opts.LeafCapacity < 1 {
		return nil, build.Stats{}, errors.New("ghtree: LeafCapacity must be at least 1")
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	work := make([]T, len(items))
	copy(work, items)
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, work, build.NewRNG(opts.Seed, 0x676874726565), opts.LeafCapacity, 0)
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// build consumes work. src is the splittable RNG fixed by this subtree's
// position, so the tree is identical for every worker count.
func (t *Tree[T]) build(b *build.Builder[T], work []T, src build.RNG, leafCap, depth int) *node[T] {
	if len(work) == 0 {
		return nil
	}
	b.Node(depth)
	if len(work) <= leafCap {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	n := &node[T]{}
	// First pivot random; second pivot the farthest point from the
	// first, which tends to produce well-separated hyperplanes.
	i1 := src.Rand().IntN(len(work))
	work[i1], work[len(work)-1] = work[len(work)-1], work[i1]
	n.p1 = work[len(work)-1]
	rest := work[:len(work)-1]
	if len(rest) == 0 {
		return n
	}
	d1 := make([]float64, len(rest))
	b.Measure(n.p1, func(i int) T { return rest[i] }, d1)
	far := 0
	for i := range rest {
		if d1[i] > d1[far] {
			far = i
		}
	}
	last := len(rest) - 1
	rest[far], rest[last] = rest[last], rest[far]
	d1[far], d1[last] = d1[last], d1[far]
	n.p2, n.hasP2 = rest[last], true
	rest, d1 = rest[:last], d1[:last]

	d2 := make([]float64, len(rest))
	b.Measure(n.p2, func(i int) T { return rest[i] }, d2)
	var left, right []T
	for i, it := range rest {
		if d1[i] <= d2[i] {
			left = append(left, it)
		} else {
			right = append(right, it)
		}
	}
	b.Fork(2, func(side int) {
		if side == 0 {
			n.left = t.build(b, left, src.Child(0), leafCap, depth+1)
		} else {
			n.right = t.build(b, right, src.Child(1), leafCap, depth+1)
		}
	})
	return n
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports the number of distance computations made during
// construction.
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report.
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Range returns every indexed item within distance r of q. It delegates
// to RangeWithStats so there is exactly one traversal implementation.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return nil, s
	}
	var out []T
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, cc, &out, &s)
	if cc != nil {
		t.cas.Put(cc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		cas, base := t.cas, n.casBase
		useCas := cc != nil && cc.Registered() > 0
		filtered := 0
		for i, it := range n.items {
			s.Candidates++
			if useCas {
				if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
					filtered++
					continue
				}
			}
			s.Computed++
			t.TraceDistance(1)
			// Membership only, so the kernel may abandon at r. The
			// pivot distances below stay exact: the hyperplane test
			// (d1−d2)/2 uses them two-sidedly.
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		if filtered > 0 {
			s.FilteredByCascade += filtered
			t.TracePrune(obs.FilterCascade, filtered)
		}
		return
	}
	d1 := t.dist.Distance(q, n.p1)
	if cc != nil && n.cas1 != 0 && cc.Wants() {
		cc.Register(n.cas1-1, d1) // already exact; free to share
	}
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= r {
		*out = append(*out, n.p1)
	}
	if !n.hasP2 {
		return
	}
	d2 := t.dist.Distance(q, n.p2)
	if cc != nil && n.cas2 != 0 && cc.Wants() {
		cc.Register(n.cas2-1, d2)
	}
	s.VantagePoints++
	t.TraceDistance(1)
	if d2 <= r {
		*out = append(*out, n.p2)
	}
	// Hyperplane pruning: points on the p1 side satisfy
	// d(x,p1) ≤ d(x,p2); the query ball reaches that side only if
	// (d1 − d2)/2 ≤ r. Symmetrically for the p2 side.
	if (d1-d2)/2 <= r {
		t.rangeNode(n.left, q, r, cc, out, s)
	} else if n.left != nil {
		s.ShellsPruned++
		t.TracePrune(obs.FilterShell, 1)
	}
	if (d2-d1)/2 <= r {
		t.rangeNode(n.right, q, r, cc, out, s)
	} else if n.right != nil {
		s.ShellsPruned++
		t.TracePrune(obs.FilterShell, 1)
	}
}

// KNN returns the k nearest indexed items by best-first traversal using
// the hyperplane lower bound max(0, (dNear − dFar)/2). It delegates to
// KNNWithStats (single traversal implementation).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
		defer t.cas.Put(cc)
	}
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			cas, base := t.cas, n.casBase
			useCas := cc != nil && cc.Registered() > 0
			filtered := 0
			for i, it := range n.items {
				s.Candidates++
				if useCas {
					// A candidate whose lower bound the heap would
					// reject cannot change the result set: the bounded
					// kernel below would return a value ≥ the bound.
					if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
						filtered++
						continue
					}
				}
				s.Computed++
				t.TraceDistance(1)
				// Push ignores anything ≥ the k-th best, so the kernel
				// may abandon at τ; pivot distances stay exact (the
				// hyperplane bound uses them two-sidedly).
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			if filtered > 0 {
				s.FilteredByCascade += filtered
				t.TracePrune(obs.FilterCascade, filtered)
			}
			continue
		}
		d1 := t.dist.Distance(q, n.p1)
		if cc != nil && n.cas1 != 0 && cc.Wants() {
			cc.Register(n.cas1-1, d1) // already exact; free to share
		}
		best.Push(n.p1, d1)
		s.VantagePoints++
		t.TraceDistance(1)
		if !n.hasP2 {
			continue
		}
		d2 := t.dist.Distance(q, n.p2)
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			cc.Register(n.cas2-1, d2)
		}
		best.Push(n.p2, d2)
		s.VantagePoints++
		t.TraceDistance(1)
		if n.left != nil {
			lb := max(bound, (d1-d2)/2)
			if best.Accepts(lb) {
				queue.PushNode(n.left, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
		if n.right != nil {
			lb := max(bound, (d2-d1)/2)
			if best.Accepts(lb) {
				queue.PushNode(n.right, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
