package ghtree

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact traversal, byte-identical
// to RangeWithStats / KNNWithStats (which remain as thin wrappers over
// the same code paths); Epsilon, Budget or Patience switch to the
// approximate traversal below. Approximate traversals do not consult
// the cascade; Workers and Bound are not supported by this structure
// and are ignored.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox tests the hyperplane prune against the shrunken radius
// rp = r/(1+ε) while acceptance keeps the full r, and debits the
// budget before every computation. Every reported item is within r;
// every item within rp is guaranteed reported.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, a *index.Approx, out *[]T, s *SearchStats) {
	if n == nil || a.Stop() {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		computed := 0
		for _, it := range n.items {
			if !a.Pay(1) {
				break
			}
			s.Candidates++
			computed++
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		s.Computed += computed
		if computed > 0 {
			t.TraceDistance(computed)
		}
		return
	}
	if !a.Pay(1) {
		return
	}
	d1 := t.dist.Distance(q, n.p1)
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= r {
		*out = append(*out, n.p1)
	}
	if !n.hasP2 {
		return
	}
	if !a.Pay(1) {
		return
	}
	d2 := t.dist.Distance(q, n.p2)
	s.VantagePoints++
	t.TraceDistance(1)
	if d2 <= r {
		*out = append(*out, n.p2)
	}
	if (d1-d2)/2 <= rp {
		t.rangeNodeApprox(n.left, q, r, rp, a, out, s)
	} else if n.left != nil {
		s.ShellsPruned++
		t.TracePrune(obs.FilterShell, 1)
	}
	if (d2-d1)/2 <= rp {
		t.rangeNodeApprox(n.right, q, r, rp, a, out, s)
	} else if n.right != nil {
		s.ShellsPruned++
		t.TracePrune(obs.FilterShell, 1)
	}
}

// knnApprox is best-first kNN with the approximation knobs: a side of
// the hyperplane is discarded once its lower bound reaches τ/(1+ε),
// the budget is debited before every computation, and patience stops
// the search after the configured number of consecutive leaves that
// fail to tighten τ.
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for !a.Stop() {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			computed := 0
			for _, it := range n.items {
				if !a.Pay(1) {
					break
				}
				s.Candidates++
				computed++
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			s.Computed += computed
			if computed > 0 {
				t.TraceDistance(computed)
			}
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		if !a.Pay(1) {
			break
		}
		d1 := t.dist.Distance(q, n.p1)
		best.Push(n.p1, d1)
		s.VantagePoints++
		t.TraceDistance(1)
		if !n.hasP2 {
			continue
		}
		if !a.Pay(1) {
			break
		}
		d2 := t.dist.Distance(q, n.p2)
		best.Push(n.p2, d2)
		s.VantagePoints++
		t.TraceDistance(1)
		if n.left != nil {
			lb := max(bound, (d1-d2)/2)
			if lb < a.Shrink(best.Threshold()) {
				queue.PushNode(n.left, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
		if n.right != nil {
			lb := max(bound, (d2-d1)/2)
			if lb < a.Shrink(best.Threshold()) {
				queue.PushNode(n.right, lb)
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}
