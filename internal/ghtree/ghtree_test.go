package ghtree

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 1))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	for _, opts := range []Options{{Build: Build{Seed: 7}}, {LeafCapacity: 8, Build: Build{Seed: 7}}} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckRange(t, "ght", tree, w, []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0})
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 1))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{LeafCapacity: 4, Build: Build{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckKNN(t, "ght", tree, w, []int{1, 2, 5, 17, 300, 1000})
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 1))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckRange(t, "ght-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
	testutil.CheckKNN(t, "ght-clumped", tree, w, []int{1, 3, 10})
	testutil.CheckContainsAllOnce(t, "ght-clumped", tree, w, 1e6)
}

func TestTinyAndEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 5; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		if got := tree.Range([]float64{0}, 100); len(got) != n {
			t.Errorf("n=%d: full range = %d items", n, len(got))
		}
		if got := tree.Range([]float64{0}, -1); got != nil {
			t.Errorf("n=%d: negative radius returned %v", n, got)
		}
		if got := tree.KNN([]float64{0}, 0); got != nil {
			t.Errorf("n=%d: KNN(0) returned %v", n, got)
		}
	}
	if _, err := New([][]float64{{1}}, dist, Options{LeafCapacity: -1}); err == nil {
		t.Error("negative LeafCapacity accepted")
	}
}
