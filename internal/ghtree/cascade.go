package ghtree

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree
// (internal/cascade): a breadth-first walk collects the first
// opts.Pivots hyperplane pivots as cascade pivots (stamping their
// nodes) and assigns every leaf item a contiguous id, then precomputes
// the pivot × item distance rows through the tree's own counter.
// Afterwards every Range/KNN query registers the exact pivot distances
// it computes anyway and skips leaf candidates whose
// triangle-inequality lower bound over those registered distances
// already exceeds the query threshold. The gh-tree's leaf scans have no
// filter of their own (Computed == Candidates without the cascade), so
// this is the structure's first stored-distance leaf filter. Results
// are byte-identical with the cascade on or off; per-query distance
// counts can only decrease.
//
// The precomputation is lazy — nothing is spent unless this is called —
// and costs Pivots × LeafItems distance computations, reported by
// Cascade().BuildDistances. A tree too small to hold leaf items (or
// pivots) is left uncascaded silently. EnableCascade is not
// synchronized with in-flight queries: enable the cascade before
// serving.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.leaf {
			n.casBase = b.AddItems(n.items)
			continue
		}
		n.cas1 = b.AddPivot(n.p1)
		if n.hasP2 {
			n.cas2 = b.AddPivot(n.p2)
		}
		if n.left != nil {
			queue = append(queue, n.left)
		}
		if n.right != nil {
			queue = append(queue, n.right)
		}
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
