package gmvp

// Property-based testing: random (v, m, k, p) configurations over
// random workloads must agree with the linear scan.

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

type quickParams struct {
	V, M, K, P uint8
	N          uint16
	Dim        uint8
	Seed       uint64
	Radius     float64
}

func TestQuickRandomConfigurations(t *testing.T) {
	check := func(p quickParams) bool {
		v := int(p.V)%4 + 1     // 1..4
		m := int(p.M)%3 + 2     // 2..4
		k := int(p.K)%60 + 1    // 1..60
		pl := int(p.P)%9 - 1    // -1..7
		n := int(p.N)%300 + 1   // 1..300
		dim := int(p.Dim)%8 + 1 // 1..8
		r := p.Radius
		if r < 0 {
			r = -r
		}
		if r != r || r > 1e12 {
			r = 1
		}
		for r > 10 {
			r /= 10
		}
		rng := rand.New(rand.NewPCG(p.Seed, 77))
		w := testutil.NewVectorWorkload(rng, n, dim, 3, metric.L2)
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{
			Vantages: v, Partitions: m, LeafCapacity: k, PathLength: pl, Build: Build{Seed: p.Seed},
		})
		if err != nil {
			t.Logf("New(v=%d m=%d k=%d p=%d): %v", v, m, k, pl, err)
			return false
		}
		truth := linear.New(w.Items, metric.NewCounter(w.Dist))
		for _, q := range w.Queries {
			got := append([]int(nil), tree.Range(q, r)...)
			want := append([]int(nil), truth.Range(q, r)...)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Logf("v=%d m=%d k=%d p=%d n=%d r=%g: %d vs %d results", v, m, k, pl, n, r, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
