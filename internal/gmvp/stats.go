package gmvp

import "mvptree/internal/index"

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so gmvp call sites match the mvp
// and vptree packages.
type SearchStats = index.SearchStats

// Stats describes the shape of a built tree.
type Stats struct {
	Nodes         int
	Leaves        int
	VantagePoints int
	LeafItems     int
	Height        int
	MaxPathLen    int
}

// Height reports the height of the tree in node levels below the root.
func (t *Tree[T]) Height() int { return nodeHeight(t.root) }

func nodeHeight[T any](n *node[T]) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	h := 0
	forEachChild(n.top, func(c *node[T]) {
		if ch := nodeHeight(c); ch > h {
			h = ch
		}
	})
	return h + 1
}

// Shape walks the tree and reports its Stats.
func (t *Tree[T]) Shape() Stats {
	var s Stats
	walkShape(t.root, &s)
	s.Height = t.Height()
	return s
}

func walkShape[T any](n *node[T], s *Stats) {
	if n == nil {
		return
	}
	s.Nodes++
	s.VantagePoints += len(n.vantages)
	if n.isLeaf() {
		s.Leaves++
		s.LeafItems += len(n.items)
		for _, p := range n.paths {
			if len(p) > s.MaxPathLen {
				s.MaxPathLen = len(p)
			}
		}
		return
	}
	forEachChild(n.top, func(c *node[T]) { walkShape(c, s) })
}

// forEachChild visits every child node reachable through a cascade.
func forEachChild[T any](sp *split[T], f func(*node[T])) {
	if sp == nil {
		return
	}
	for _, sub := range sp.subs {
		forEachChild(sub, f)
	}
	for _, c := range sp.children {
		if c != nil {
			f(c)
		}
	}
}
