package gmvp

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"mvptree/internal/metric"
	"mvptree/internal/wire"
)

// Persistence for the generalized tree, in the same CRC-protected
// envelope as internal/mvp: items travel through caller-supplied
// encode/decode functions; vantage points, cutoff cascades, stored
// distances and PATH prefixes are written verbatim so loading performs
// zero distance computations.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "GMVPTREE1"

const (
	tagNil      = 0
	tagLeaf     = 1
	tagInternal = 2
	kindSubs    = 0
	kindChild   = 1
)

// Save writes the tree to w.
func (t *Tree[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	pw.Int(t.v)
	pw.Int(t.m)
	pw.Int(t.k)
	pw.Int(t.p)
	pw.Int(t.size)
	if err := saveNode(pw, t.root, enc); err != nil {
		return err
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

func saveNode[T any](w *wire.Writer, n *node[T], enc ItemEncoder[T]) error {
	if n == nil {
		w.Byte(tagNil)
		return w.Err()
	}
	item := func(it T) error {
		b, err := enc(it)
		if err != nil {
			return fmt.Errorf("gmvp: encoding item: %w", err)
		}
		w.Bytes(b)
		return w.Err()
	}
	writeVantages := func() error {
		w.Int(len(n.vantages))
		for _, v := range n.vantages {
			if err := item(v); err != nil {
				return err
			}
		}
		return w.Err()
	}
	if n.isLeaf() {
		w.Byte(tagLeaf)
		if err := writeVantages(); err != nil {
			return err
		}
		w.Int(len(n.items))
		for i, it := range n.items {
			if err := item(it); err != nil {
				return err
			}
			w.Int(len(n.dists))
			for j := range n.dists {
				w.Float(n.dists[j][i])
			}
			w.Floats(n.paths[i])
		}
		return w.Err()
	}
	w.Byte(tagInternal)
	if err := writeVantages(); err != nil {
		return err
	}
	return saveSplit(w, n.top, enc)
}

func saveSplit[T any](w *wire.Writer, sp *split[T], enc ItemEncoder[T]) error {
	w.Int(sp.level)
	w.Floats(sp.cutoffs)
	if sp.subs != nil {
		w.Byte(kindSubs)
		w.Int(len(sp.subs))
		for _, sub := range sp.subs {
			if err := saveSplit(w, sub, enc); err != nil {
				return err
			}
		}
		return w.Err()
	}
	w.Byte(kindChild)
	w.Int(len(sp.children))
	for _, c := range sp.children {
		if err := saveNode(w, c, enc); err != nil {
			return err
		}
	}
	return w.Err()
}

// maxLoadDepth guards against corrupt streams.
const maxLoadDepth = 96

// Load reads a tree written by Save, verifying the checksum. dist must
// wrap the same metric the tree was built with.
func Load[T any](r io.Reader, dist *metric.Counter[T], dec ItemDecoder[T]) (*Tree[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("gmvp: bad magic (not a gmvp-tree stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("gmvp: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))
	t := &Tree[T]{dist: dist}
	t.v = rr.Int()
	t.m = rr.Int()
	t.k = rr.Int()
	t.p = rr.Int()
	t.size = rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if t.v < 1 || t.m < 2 || t.k < 1 || t.p < 0 || t.size < 0 {
		return nil, fmt.Errorf("gmvp: corrupt header (v=%d m=%d k=%d p=%d n=%d)", t.v, t.m, t.k, t.p, t.size)
	}
	root, err := loadNode(rr, dec, t.v, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func loadNode[T any](r *wire.Reader, dec ItemDecoder[T], v, depth int) (*node[T], error) {
	if depth > maxLoadDepth {
		return nil, fmt.Errorf("gmvp: tree deeper than %d levels (corrupt stream)", maxLoadDepth)
	}
	item := func() (T, error) {
		b := r.Bytes()
		if err := r.Err(); err != nil {
			var zero T
			return zero, err
		}
		it, err := dec(b)
		if err != nil {
			var zero T
			return zero, fmt.Errorf("gmvp: decoding item: %w", err)
		}
		return it, nil
	}
	readVantages := func(n *node[T]) error {
		count := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if count > v {
			return fmt.Errorf("gmvp: node claims %d vantage points, tree allows %d", count, v)
		}
		n.vantages = make([]T, count)
		var err error
		for i := 0; i < count; i++ {
			if n.vantages[i], err = item(); err != nil {
				return err
			}
		}
		return nil
	}
	switch tag := r.Byte(); tag {
	case tagNil:
		return nil, r.Err()
	case tagLeaf:
		n := &node[T]{}
		if err := readVantages(n); err != nil {
			return nil, err
		}
		count := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if count > 0 {
			n.items = make([]T, count)
			n.paths = make([][]float64, count)
			var err error
			for i := 0; i < count; i++ {
				if n.items[i], err = item(); err != nil {
					return nil, err
				}
				cols := r.Int()
				if err := r.Err(); err != nil {
					return nil, err
				}
				if i == 0 {
					if cols > v {
						return nil, fmt.Errorf("gmvp: leaf claims %d distance columns", cols)
					}
					n.dists = make([][]float64, cols)
					for j := range n.dists {
						n.dists[j] = make([]float64, count)
					}
				} else if cols != len(n.dists) {
					return nil, fmt.Errorf("gmvp: inconsistent distance columns (corrupt stream)")
				}
				for j := 0; j < cols; j++ {
					n.dists[j][i] = r.Float()
				}
				n.paths[i] = r.Floats()
			}
		}
		return n, r.Err()
	case tagInternal:
		n := &node[T]{}
		if err := readVantages(n); err != nil {
			return nil, err
		}
		top, err := loadSplit(r, dec, v, depth)
		if err != nil {
			return nil, err
		}
		n.top = top
		return n, nil
	default:
		return nil, fmt.Errorf("gmvp: unknown node tag %d (corrupt stream)", tag)
	}
}

func loadSplit[T any](r *wire.Reader, dec ItemDecoder[T], v, depth int) (*split[T], error) {
	if depth > maxLoadDepth {
		return nil, fmt.Errorf("gmvp: cascade deeper than %d levels (corrupt stream)", maxLoadDepth)
	}
	sp := &split[T]{}
	sp.level = r.Int()
	sp.cutoffs = r.Floats()
	kind := r.Byte()
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if sp.level >= v {
		return nil, fmt.Errorf("gmvp: split level %d ≥ v = %d (corrupt stream)", sp.level, v)
	}
	switch kind {
	case kindSubs:
		sp.subs = make([]*split[T], count)
		var err error
		for i := 0; i < count; i++ {
			if sp.subs[i], err = loadSplit(r, dec, v, depth+1); err != nil {
				return nil, err
			}
		}
	case kindChild:
		sp.children = make([]*node[T], count)
		var err error
		for i := 0; i < count; i++ {
			if sp.children[i], err = loadNode(r, dec, v, depth+1); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("gmvp: unknown split kind %d (corrupt stream)", kind)
	}
	return sp, nil
}
