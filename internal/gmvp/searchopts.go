package gmvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). With
// zero-valued SearchOptions it runs the exact traversal, byte-identical
// to RangeWithStats / KNNWithStats (which remain as thin wrappers over
// the same code paths); Epsilon, Budget or Patience switch to the
// approximate traversal below. Approximate traversals do not consult
// the cascade; Workers and Bound are not supported by this structure
// and are ignored.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStats(req.Point, req.K)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox prunes splits and filters leaf candidates against the
// shrunken radius rp = r/(1+ε) while acceptance keeps the full r, and
// debits the budget before every computation. Every reported item is
// within r; every item within rp is guaranteed reported.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), make([]float64, 0, t.p), &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, qpath []float64, a *index.Approx, out *[]T, s *SearchStats) {
	if n == nil || a.Stop() {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.isLeaf())
	dq := make([]float64, len(n.vantages))
	for j, v := range n.vantages {
		if !a.Pay(1) {
			return
		}
		dq[j] = t.dist.Distance(q, v)
		s.VantagePoints++
		t.TraceDistance(1)
		if dq[j] <= r {
			*out = append(*out, v)
		}
		if len(qpath) < t.p {
			qpath = append(qpath, dq[j])
		}
	}
	if n.isLeaf() {
		s.LeavesVisited++
	items:
		for i, it := range n.items {
			if a.Stop() {
				break
			}
			s.Candidates++
			for j := range n.dists {
				if d := n.dists[j][i]; d < dq[j]-rp || d > dq[j]+rp {
					s.FilteredByD++
					t.TracePrune(obs.FilterD, 1)
					continue items
				}
			}
			path := n.paths[i]
			for l := 0; l < len(path) && l < len(qpath); l++ {
				if path[l] < qpath[l]-rp || path[l] > qpath[l]+rp {
					s.FilteredByPath++
					t.TracePrune(obs.FilterPath, 1)
					continue items
				}
			}
			if !a.Pay(1) {
				s.Candidates--
				break
			}
			s.Computed++
			t.TraceDistance(1)
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		return
	}
	t.rangeSplitApprox(n.top, q, r, rp, dq, qpath, a, out, s)
}

func (t *Tree[T]) rangeSplitApprox(sp *split[T], q T, r, rp float64, dq, qpath []float64, a *index.Approx, out *[]T, s *SearchStats) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		if a.Stop() {
			return
		}
		lo, hi := shellBounds(sp.cutoffs, g)
		if d+rp < lo || d-rp > hi {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
			continue
		}
		if sp.subs != nil {
			t.rangeSplitApprox(sp.subs[g], q, r, rp, dq, qpath, a, out, s)
		} else if sp.children[g] != nil {
			t.rangeNodeApprox(sp.children[g], q, r, rp, qpath, a, out, s)
		}
	}
}

// knnApprox is best-first kNN with the approximation knobs: subtrees
// and leaf candidates are discarded once their lower bound reaches
// τ/(1+ε), the budget is debited before every computation, and
// patience stops the search after the configured number of
// consecutive leaves that fail to tighten τ.
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	var queue heapx.NodeQueue[knnPending[T]]
	queue.PushNode(knnPending[T]{t.root, make([]float64, 0, t.p)}, 0)
	for !a.Stop() {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		n, qpath := pn.n, pn.qpath
		s.NodesVisited++
		t.TraceNode(n.isLeaf())
		dq := make([]float64, len(n.vantages))
		paid := true
		for j, v := range n.vantages {
			if !a.Pay(1) {
				paid = false
				break
			}
			dq[j] = t.dist.Distance(q, v)
			s.VantagePoints++
			t.TraceDistance(1)
			best.Push(v, dq[j])
		}
		if !paid {
			break
		}
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			for _, d := range dq {
				if len(ext) < t.p {
					ext = append(ext, d)
				}
			}
			qpath = ext
		}
		if n.isLeaf() {
			s.LeavesVisited++
			for i, it := range n.items {
				if a.Stop() {
					break
				}
				s.Candidates++
				lbD := 0.0
				for j := range n.dists {
					if b := abs(dq[j] - n.dists[j][i]); b > lbD {
						lbD = b
					}
				}
				tauA := a.Shrink(best.Threshold())
				if lbD >= tauA {
					s.FilteredByD++
					t.TracePrune(obs.FilterD, 1)
					continue
				}
				lb := lbD
				path := n.paths[i]
				for l := 0; l < len(path) && l < len(qpath); l++ {
					if b := abs(qpath[l] - path[l]); b > lb {
						lb = b
					}
				}
				if lb >= tauA {
					s.FilteredByPath++
					t.TracePrune(obs.FilterPath, 1)
					continue
				}
				if !a.Pay(1) {
					s.Candidates--
					break
				}
				s.Computed++
				t.TraceDistance(1)
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		t.knnSplitApprox(n.top, dq, qpath, bound, best, &a, &queue, &s)
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}

func (t *Tree[T]) knnSplitApprox(sp *split[T], dq, qpath []float64, bound float64,
	best *heapx.KBest[T], a *index.Approx, queue *heapx.NodeQueue[knnPending[T]], s *SearchStats) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		lo, hi := shellBounds(sp.cutoffs, g)
		lb := bound
		switch {
		case d < lo:
			if gap := lo - d; gap > lb {
				lb = gap
			}
		case d > hi:
			if gap := d - hi; gap > lb {
				lb = gap
			}
		}
		if lb >= a.Shrink(best.Threshold()) {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
			continue
		}
		if sp.subs != nil {
			t.knnSplitApprox(sp.subs[g], dq, qpath, lb, best, a, queue, s)
		} else if sp.children[g] != nil {
			queue.PushNode(knnPending[T]{sp.children[g], qpath}, lb)
		}
	}
}
