package gmvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeFartherMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	w := testutil.NewVectorWorkload(rng, 400, 8, 8, metric.L2)
	radii := []float64{0, 0.3, 0.8, 1.2, 2.0, 10}
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRangeFarther(t, "gmvpt", tree, w, radii)
	}
}

func TestKFarthestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 7))
	w := testutil.NewVectorWorkload(rng, 300, 6, 6, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckKFarthest(t, "gmvpt", tree, w, []int{1, 2, 5, 17, 300, 1000})
	}
}

func TestRangeFartherFastPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 7))
	w := testutil.NewVectorWorkload(rng, 1500, 8, 1, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Vantages: 2, Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 3}})
	c.Reset()
	if got := tree.RangeFarther(w.Queries[0], 0); len(got) != 1500 || c.Count() != 0 {
		t.Errorf("RangeFarther(0): %d items, %d computations", len(got), c.Count())
	}
	c.Reset()
	got := tree.RangeFarther(w.Queries[0], 1e-9)
	if len(got) != 1500 {
		t.Fatalf("RangeFarther(tiny) = %d items", len(got))
	}
	if c.Count() > 200 {
		t.Errorf("RangeFarther(tiny) used %d computations; wholesale fast path broken", c.Count())
	}
}

func TestShapeAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 7))
	for _, opts := range optionMatrix {
		for _, n := range []int{0, 1, 5, 333, 1000} {
			w := testutil.NewVectorWorkload(rng, n, 6, 1, metric.L2)
			tree, _ := buildWorkloadTree(t, w, opts)
			s := tree.Shape()
			if s.VantagePoints+s.LeafItems != n {
				t.Errorf("opts %+v n=%d: %d vantage points + %d leaf items != n",
					opts, n, s.VantagePoints, s.LeafItems)
			}
			if s.MaxPathLen > tree.PathLength() {
				t.Errorf("MaxPathLen %d exceeds p %d", s.MaxPathLen, tree.PathLength())
			}
		}
	}
}

func TestHeightShrinksWithFanout(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 7))
	w := testutil.NewVectorWorkload(rng, 3000, 6, 1, metric.L2)
	small, _ := buildWorkloadTree(t, w, Options{Vantages: 1, Partitions: 2, LeafCapacity: 5, PathLength: 4, Build: Build{Seed: 2}})
	big, _ := buildWorkloadTree(t, w, Options{Vantages: 3, Partitions: 3, LeafCapacity: 5, PathLength: 4, Build: Build{Seed: 2}})
	if big.Height() >= small.Height() {
		t.Errorf("fanout 27 height %d ≥ fanout 2 height %d", big.Height(), small.Height())
	}
}
