package gmvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func buildWorkloadTree(t *testing.T, w *testutil.Workload, opts Options) (*Tree[int], *metric.Counter[int]) {
	t.Helper()
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree, c
}

var optionMatrix = []Options{
	{Vantages: 1, Partitions: 2, LeafCapacity: 1, PathLength: -1, Build: Build{Seed: 7}},
	{Vantages: 1, Partitions: 9, LeafCapacity: 20, PathLength: 5, Build: Build{Seed: 7}},
	{Vantages: 2, Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 7}},
	{Vantages: 3, Partitions: 2, LeafCapacity: 13, PathLength: 6, Build: Build{Seed: 7}},
	{Vantages: 4, Partitions: 2, LeafCapacity: 40, PathLength: 8, Build: Build{Seed: 7}},
	{Vantages: 3, Partitions: 3, LeafCapacity: 30, PathLength: 5, Build: Build{Seed: 7}},
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 7))
	w := testutil.NewVectorWorkload(rng, 500, 8, 10, metric.L2)
	radii := []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0}
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRange(t, "gmvpt", tree, w, radii)
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 7))
	w := testutil.NewVectorWorkload(rng, 350, 6, 8, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckKNN(t, "gmvpt", tree, w, []int{1, 2, 5, 17, 350, 1000})
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 7))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 6, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRange(t, "gmvpt-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
		testutil.CheckContainsAllOnce(t, "gmvpt-clumped", tree, w, 1e6)
	}
}

func TestTinyTrees(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 10; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{Vantages: 3, Partitions: 2, LeafCapacity: 2, PathLength: 4})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		if got := tree.Range([]float64{0}, 100); len(got) != n {
			t.Errorf("n=%d: full range returned %d items", n, len(got))
		}
		nn := tree.KNN([]float64{0.2}, 3)
		if want := min(3, n); len(nn) != want {
			t.Errorf("n=%d: KNN returned %d items, want %d", n, len(nn), want)
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	items := [][]float64{{1}, {2}, {3}}
	for _, opts := range []Options{
		{Vantages: -1},
		{Partitions: 1},
		{LeafCapacity: -3},
	} {
		if _, err := New(items, dist, opts); err == nil {
			t.Errorf("New with %+v succeeded, want error", opts)
		}
	}
}

func TestDefaults(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Vantages() != 2 || tree.Partitions() != 3 || tree.LeafCapacity() != 80 || tree.PathLength() != 5 {
		t.Errorf("defaults = (v=%d m=%d k=%d p=%d)", tree.Vantages(), tree.Partitions(), tree.LeafCapacity(), tree.PathLength())
	}
}

func TestMoreVantagesFilterMoreAtFixedFanout(t *testing.T) {
	// The design question behind the generalization: with node fanout
	// held at ~8-9, do more vantage points per node (fewer, deeper
	// distance computations reused more) beat fewer? v=2,m=3 (fanout 9)
	// should beat v=1,m=9 (fanout 9) — that is the mvp-tree's core
	// claim — and v=3,m=2 (fanout 8) should be competitive.
	rng := rand.New(rand.NewPCG(4, 7))
	w := testutil.NewVectorWorkload(rng, 6000, 20, 25, metric.L2)
	cost := func(v, m int) float64 {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Vantages: v, Partitions: m, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 11}})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, q := range w.Queries {
			c.Reset()
			tree.Range(q, 0.25)
			total += c.Count()
		}
		return float64(total) / float64(len(w.Queries))
	}
	v1 := cost(1, 9)
	v2 := cost(2, 3)
	v3 := cost(3, 2)
	if v2 >= v1 {
		t.Errorf("v=2,m=3 cost %.0f ≥ v=1,m=9 cost %.0f; sharing vantage points must help", v2, v1)
	}
	// v=3,m=2 is measurably worse than v=2,m=3 (binary shells are too
	// thin in 20 dimensions, echoing the paper's m=3 > m=2 finding);
	// assert only that it stays within the same order of magnitude.
	if v3 > 2*v2 {
		t.Errorf("v=3,m=2 cost %.0f more than 2× v=2,m=3 cost %.0f", v3, v2)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	w := testutil.NewVectorWorkload(rng, 300, 6, 4, metric.L2)
	run := func() []int64 {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Vantages: 3, Partitions: 2, LeafCapacity: 10, PathLength: 5, Build: Build{Seed: 42}})
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for _, q := range w.Queries {
			c.Reset()
			tree.Range(q, 0.4)
			out = append(out, c.Count())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("query %d: counts differ across identical builds", i)
		}
	}
}

func TestStringsWorkToo(t *testing.T) {
	words := []string{"book", "books", "cake", "boo", "boon", "cook", "cape", "cart", "case", "cast",
		"bake", "lake", "take", "rake", "fake", "face", "fact", "fast", "mast", "most"}
	c := metric.NewCounter(metric.Edit)
	tree, err := New(words, c, Options{Vantages: 3, Partitions: 2, LeafCapacity: 4, PathLength: 4, Build: Build{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Range("book", 1)
	if len(got) != 5 {
		t.Errorf("Range(book, 1) = %v, want 5 words", got)
	}
}
