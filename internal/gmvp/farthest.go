package gmvp

import (
	"math"

	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// Farthest-object queries for the generalized tree, mirroring
// internal/mvp: shells are pruned by the distance upper bound dq + hi,
// taken wholesale when their lower bound already clears the range, and
// leaf candidates are resolved by the stored-distance bounds before any
// real computation.

// RangeFarther returns every indexed item at distance ≥ r from q.
func (t *Tree[T]) RangeFarther(q T, r float64) []T {
	if t.root == nil {
		return nil
	}
	var out []T
	if r <= 0 {
		collectAll(t.root, &out)
		return out
	}
	qpath := make([]float64, 0, t.p)
	t.rangeFartherNode(t.root, q, r, qpath, &out)
	return out
}

func (t *Tree[T]) rangeFartherNode(n *node[T], q T, r float64, qpath []float64, out *[]T) {
	if n == nil {
		return
	}
	dq := make([]float64, len(n.vantages))
	for j, v := range n.vantages {
		dq[j] = t.dist.Distance(q, v)
		if dq[j] >= r {
			*out = append(*out, v)
		}
		if len(qpath) < t.p {
			qpath = append(qpath, dq[j])
		}
	}
	if n.isLeaf() {
		for i, it := range n.items {
			lb, ub := t.leafBounds(n, i, dq, qpath)
			switch {
			case ub < r:
				// Provably too close.
			case lb >= r:
				*out = append(*out, it)
			default:
				if t.dist.Distance(q, it) >= r {
					*out = append(*out, it)
				}
			}
		}
		return
	}
	t.rangeFartherSplit(n.top, q, r, dq, qpath, 0, out)
}

// rangeFartherSplit walks a cascade; gap carries the best (largest)
// shell lower bound seen on the path so far.
func (t *Tree[T]) rangeFartherSplit(sp *split[T], q T, r float64, dq, qpath []float64, gap float64, out *[]T) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		lo, hi := shellBounds(sp.cutoffs, g)
		if d+hi < r {
			continue // whole region provably too close
		}
		regionGap := gap
		switch {
		case d < lo:
			if x := lo - d; x > regionGap {
				regionGap = x
			}
		case d > hi:
			if x := d - hi; x > regionGap {
				regionGap = x
			}
		}
		if sp.subs != nil {
			if regionGap >= r {
				forEachChild(sp.subs[g], func(c *node[T]) { collectAll(c, out) })
				continue
			}
			t.rangeFartherSplit(sp.subs[g], q, r, dq, qpath, regionGap, out)
			continue
		}
		if c := sp.children[g]; c != nil {
			if regionGap >= r {
				collectAll(c, out)
				continue
			}
			t.rangeFartherNode(c, q, r, qpath, out)
		}
	}
}

// leafBounds returns triangle-inequality lower and upper bounds on
// d(q, items[i]) from the stored leaf distances and PATH prefix.
func (t *Tree[T]) leafBounds(n *node[T], i int, dq, qpath []float64) (lb, ub float64) {
	ub = math.Inf(1) // until an anchor tightens it; leaves have ≥1 vantage when items exist
	for j := range n.dists {
		if b := abs(dq[j] - n.dists[j][i]); b > lb {
			lb = b
		}
		if b := dq[j] + n.dists[j][i]; b < ub {
			ub = b
		}
	}
	path := n.paths[i]
	for l := 0; l < len(path) && l < len(qpath); l++ {
		if b := abs(qpath[l] - path[l]); b > lb {
			lb = b
		}
		if b := qpath[l] + path[l]; b < ub {
			ub = b
		}
	}
	return lb, ub
}

// collectAll appends every data point of a subtree with no distance
// computations.
func collectAll[T any](n *node[T], out *[]T) {
	if n == nil {
		return
	}
	*out = append(*out, n.vantages...)
	if n.isLeaf() {
		*out = append(*out, n.items...)
		return
	}
	forEachChild(n.top, func(c *node[T]) { collectAll(c, out) })
}

// KFarthest returns the k items farthest from q in descending distance
// order.
func (t *Tree[T]) KFarthest(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKLargest[T](k)
	var queue heapx.NodeQueue[knnPending[T]]
	queue.PushNode(knnPending[T]{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, negUB, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(-negUB) {
			break
		}
		n, qpath := pn.n, pn.qpath
		dq := make([]float64, len(n.vantages))
		for j, v := range n.vantages {
			dq[j] = t.dist.Distance(q, v)
			best.Push(v, dq[j])
		}
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			for _, d := range dq {
				if len(ext) < t.p {
					ext = append(ext, d)
				}
			}
			qpath = ext
		}
		if n.isLeaf() {
			for i, it := range n.items {
				if _, ub := t.leafBounds(n, i, dq, qpath); best.Accepts(ub) {
					best.Push(it, t.dist.Distance(q, it))
				}
			}
			continue
		}
		t.kFarthestSplit(n.top, dq, qpath, math.Inf(1), best, &queue)
	}
	return best.Sorted()
}

// kFarthestSplit walks a cascade accumulating upper bounds (the minimum
// of dq+hi over levels) and enqueues surviving child nodes.
func (t *Tree[T]) kFarthestSplit(sp *split[T], dq, qpath []float64, ub float64,
	best *heapx.KLargest[T], queue *heapx.NodeQueue[knnPending[T]]) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		_, hi := shellBounds(sp.cutoffs, g)
		regionUB := ub
		if b := d + hi; b < regionUB {
			regionUB = b
		}
		if !best.Accepts(regionUB) {
			continue
		}
		if sp.subs != nil {
			t.kFarthestSplit(sp.subs[g], dq, qpath, regionUB, best, queue)
		} else if c := sp.children[g]; c != nil {
			queue.PushNode(knnPending[T]{c, qpath}, -regionUB)
		}
	}
}
