package gmvp

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func encodeID(id int) ([]byte, error) {
	return []byte{byte(id), byte(id >> 8)}, nil
}

func decodeID(b []byte) (int, error) {
	if len(b) != 2 {
		return 0, errors.New("bad id encoding")
	}
	return int(b[0]) | int(b[1])<<8, nil
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 7))
	w := testutil.NewVectorWorkload(rng, 600, 8, 8, metric.L2)
	for _, opts := range optionMatrix {
		c := metric.NewCounter(w.Dist)
		orig, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf, encodeID); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := Load(&buf, c, decodeID)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if loaded.Len() != orig.Len() || loaded.Vantages() != orig.Vantages() ||
			loaded.Partitions() != orig.Partitions() || loaded.PathLength() != orig.PathLength() {
			t.Fatal("parameters changed across save/load")
		}
		testutil.CheckRange(t, "loaded-gmvpt", loaded, w, []float64{0, 0.2, 0.6, 1.5})
		testutil.CheckKNN(t, "loaded-gmvpt", loaded, w, []int{1, 5, 50})
		testutil.CheckRangeFarther(t, "loaded-gmvpt", loaded, w, []float64{0.5, 1.5})
	}
}

func TestSaveLoadIdenticalQueryCosts(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 7))
	w := testutil.NewVectorWorkload(rng, 400, 6, 6, metric.L2)
	c := metric.NewCounter(w.Dist)
	orig, err := New(w.Items, c, Options{Vantages: 3, Partitions: 2, LeafCapacity: 10, PathLength: 5, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	c2 := metric.NewCounter(w.Dist)
	loaded, err := Load(&buf, c2, decodeID)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		c.Reset()
		orig.Range(q, 0.4)
		c2.Reset()
		loaded.Range(q, 0.4)
		if c.Count() != c2.Count() {
			t.Fatalf("query cost differs after reload: %d vs %d", c.Count(), c2.Count())
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 7))
	w := testutil.NewVectorWorkload(rng, 100, 4, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	orig, err := New(w.Items, c, Options{Build: Build{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, i := range []int{15, len(valid) / 2, len(valid) - 5} {
		data := append([]byte(nil), valid...)
		data[i] ^= 0x5A
		if _, err := Load(bytes.NewReader(data), c, decodeID); err == nil {
			t.Errorf("byte %d flipped: Load succeeded", i)
		}
	}
	if _, err := Load(bytes.NewReader(nil), c, decodeID); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSaveLoadEmptyAndTiny(t *testing.T) {
	dist := metric.NewCounter(metric.Discrete[int]())
	for n := 0; n <= 5; n++ {
		orig, err := New(testutil.IDs(n), dist, Options{Vantages: 2, Partitions: 2, LeafCapacity: 2, PathLength: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf, encodeID); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		loaded, err := Load(&buf, dist, decodeID)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := loaded.Range(0, 2); len(got) != n {
			t.Errorf("n=%d: loaded full range = %d items", n, len(got))
		}
	}
}
