package gmvp

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree
// (internal/cascade): a breadth-first walk collects the first
// opts.Pivots vantage points as cascade pivots (stamping their nodes)
// and assigns every leaf item a contiguous id, then precomputes the
// pivot × item distance rows through the tree's own counter.
// Afterwards every Range/KNN query registers the exact vantage
// distances it computes anyway and skips leaf candidates whose
// triangle-inequality lower bound over those registered distances
// already exceeds the query threshold, after the stored D and PATH
// filters have had their chance. Results are byte-identical with the
// cascade on or off; per-query distance counts can only decrease.
//
// The precomputation is lazy — nothing is spent unless this is called —
// and costs Pivots × LeafItems distance computations, reported by
// Cascade().BuildDistances. A tree too small to hold leaf items (or
// vantage points) is left uncascaded silently. EnableCascade is not
// synchronized with in-flight queries: enable the cascade before
// serving. The cascade state is not serialized by Save; re-enable
// after Load.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for j := range n.vantages {
			st := b.AddPivot(n.vantages[j])
			if st == 0 {
				break // pivot budget exhausted; later vantages stay unstamped
			}
			if n.casV == nil {
				n.casV = make([]int32, len(n.vantages))
			}
			n.casV[j] = st
		}
		if n.isLeaf() {
			n.casBase = b.AddItems(n.items)
			continue
		}
		appendSplitChildren(n.top, &queue)
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// appendSplitChildren collects the child nodes at the bottom of a
// cascade of splits, in region order.
func appendSplitChildren[T any](sp *split[T], queue *[]*node[T]) {
	if sp == nil {
		return
	}
	if sp.subs != nil {
		for _, sub := range sp.subs {
			appendSplitChildren(sub, queue)
		}
		return
	}
	for _, c := range sp.children {
		if c != nil {
			*queue = append(*queue, c)
		}
	}
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
