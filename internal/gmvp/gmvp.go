// Package gmvp generalizes the mvp-tree to any number v of vantage
// points per node. The paper notes (§4.2): "the mvp-tree construction
// can be modified easily so that more than 2 vantage points can be kept
// in one node"; this package is that modification, with the paper's
// tree as the special case v = 2 (and the bucketed m-way vp-tree with
// PATH filtering as v = 1).
//
// Each node chooses v vantage points in sequence — the first at random,
// each next one the point farthest from its predecessor — and applies
// them as a cascade: vantage 1 splits the node's points into m
// equal-cardinality shells, vantage 2 splits every shell into m, and so
// on, giving fanout m^v with only v vantage points. As in the mvp-tree,
// every vantage distance computed during construction is retained for
// leaf points up to the PATH cap p and reused as a query-time filter.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package gmvp

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction.
type Options struct {
	// Build holds the shared construction knobs (Workers, Seed); the
	// tree built is identical for every worker count.
	Build
	// Vantages is v, the number of vantage points per node; fanout is
	// Partitions^Vantages. Default 2 (the paper's mvp-tree).
	Vantages int
	// Partitions is m, the partitions per vantage point. Default 3.
	Partitions int
	// LeafCapacity is the maximum number of data points in a leaf in
	// addition to the leaf's vantage points. Default 80.
	LeafCapacity int
	// PathLength is p, the retained ancestor-distance prefix per leaf
	// point; -1 requests a genuine zero (0 means default). Default 5.
	PathLength int
}

func (o *Options) setDefaults() {
	if o.Vantages == 0 {
		o.Vantages = 2
	}
	if o.Partitions == 0 {
		o.Partitions = 3
	}
	if o.LeafCapacity == 0 {
		o.LeafCapacity = 80
	}
	switch {
	case o.PathLength == 0:
		o.PathLength = 5
	case o.PathLength < 0:
		o.PathLength = 0
	}
}

func (o *Options) validate() error {
	if err := o.Build.Validate("gmvp"); err != nil {
		return err
	}
	if o.Vantages < 1 {
		return errors.New("gmvp: Vantages must be at least 1")
	}
	if o.Partitions < 2 {
		return errors.New("gmvp: Partitions must be at least 2")
	}
	if o.LeafCapacity < 1 {
		return errors.New("gmvp: LeafCapacity must be at least 1")
	}
	return nil
}

// Tree is a generalized multi-vantage-point tree. The embedded
// obs.Hooks let callers attach an Observer and/or Tracer; with neither
// attached the query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	cas        *cascade.Filter[T]
	size       int
	v, m, k    int
	p          int
	buildStats build.Stats
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

// node is a leaf or an internal node. Internal nodes hold exactly v
// vantage points and a cascade of splits; leaves hold up to v vantage
// points and a bucket of items with their stored distances.
type node[T any] struct {
	vantages []T

	// Internal node: the cascade. top partitions by vantages[0]; its
	// sub-splits partition by vantages[1], and so on; the final level
	// holds child nodes.
	top *split[T]

	// Leaf node: dists[j][i] = d(items[i], vantages[j]); paths[i] is
	// the retained ancestor PATH prefix.
	items []T
	dists [][]float64
	paths [][]float64

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	casV    []int32 // casV[j] stamps vantages[j]; nil when none is a pivot
	casBase int32
}

func (n *node[T]) isLeaf() bool { return n.top == nil }

// split partitions one region of a node's points by the distance to
// vantages[level]. Region g covers the closed interval
// [cutoffs[g-1], cutoffs[g]] (0 and +Inf at the ends). Exactly one of
// subs (next cascade level) or children (actual subtrees) is non-nil.
type split[T any] struct {
	level    int
	cutoffs  []float64
	subs     []*split[T]
	children []*node[T]
}

// entry carries an item and its accumulating PATH during construction.
type entry[T any] struct {
	item T
	path []float64
}

// New builds a generalized mvp-tree over items using the counted metric
// dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	opts.setDefaults()
	if err := opts.validate(); err != nil {
		return nil, build.Stats{}, err
	}
	t := &Tree[T]{
		dist: dist,
		size: len(items),
		v:    opts.Vantages,
		m:    opts.Partitions,
		k:    opts.LeafCapacity,
		p:    opts.PathLength,
	}
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{item: it}
	}
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, entries, build.NewRNG(opts.Seed, 0x676d7670), 0)
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports construction distance computations.
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report.
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Vantages, Partitions, LeafCapacity and PathLength report the
// parameters in effect.
func (t *Tree[T]) Vantages() int     { return t.v }
func (t *Tree[T]) Partitions() int   { return t.m }
func (t *Tree[T]) LeafCapacity() int { return t.k }
func (t *Tree[T]) PathLength() int   { return t.p }

// build constructs the subtree over entries. src is the splittable RNG
// fixed by this subtree's position, so the tree is identical for every
// worker count.
func (t *Tree[T]) build(b *build.Builder[T], entries []entry[T], src build.RNG, depth int) *node[T] {
	if len(entries) == 0 {
		return nil
	}
	b.Node(depth)
	if len(entries) <= t.k+t.v {
		return t.buildLeaf(b, entries, src.Rand())
	}
	return t.buildInternal(b, entries, src, depth)
}

// chooseVantages picks up to v vantage points from entries: the first
// uniformly at random, each subsequent one the remaining point farthest
// from its predecessor. It returns the vantage items, the per-vantage
// distance slices over the surviving entries, and the surviving entries
// themselves (with PATH prefixes extended, capped at p).
func (t *Tree[T]) chooseVantages(b *build.Builder[T], entries []entry[T], rng *rand.Rand, v int) (vantages []T, dists [][]float64, rest []entry[T]) {
	rest = entries
	for j := 0; j < v && len(rest) > 0; j++ {
		var pick int
		if j == 0 {
			pick = rng.IntN(len(rest))
		} else {
			prev := dists[j-1] // distances to the previous vantage
			pick = 0
			for i := range prev {
				if prev[i] > prev[pick] {
					pick = i
				}
			}
		}
		// Move the picked point to the end, mirroring the swap in every
		// earlier vantage's distance slice, then truncate it away.
		last := len(rest) - 1
		rest[pick], rest[last] = rest[last], rest[pick]
		for jj := range dists {
			dists[jj][pick], dists[jj][last] = dists[jj][last], dists[jj][pick]
			dists[jj] = dists[jj][:last]
		}
		vantage := rest[last].item
		vantages = append(vantages, vantage)
		rest = rest[:last]

		ds := make([]float64, len(rest))
		b.Measure(vantage, func(i int) T { return rest[i].item }, ds)
		for i := range rest {
			if len(rest[i].path) < t.p {
				rest[i].path = append(rest[i].path, ds[i])
			}
		}
		dists = append(dists, ds)
	}
	return vantages, dists, rest
}

func (t *Tree[T]) buildLeaf(b *build.Builder[T], entries []entry[T], rng *rand.Rand) *node[T] {
	n := &node[T]{}
	vantages, dists, rest := t.chooseVantages(b, entries, rng, t.v)
	n.vantages = vantages
	if len(rest) == 0 {
		return n
	}
	n.items = make([]T, len(rest))
	n.paths = make([][]float64, len(rest))
	for i := range rest {
		n.items[i] = rest[i].item
		n.paths[i] = rest[i].path
	}
	// Note: chooseVantages already appended the leaf vantage distances
	// to each item's PATH (up to p); the leaf additionally stores them
	// all exactly, like the paper's D1/D2 arrays.
	n.dists = dists
	return n
}

func (t *Tree[T]) buildInternal(b *build.Builder[T], entries []entry[T], src build.RNG, depth int) *node[T] {
	n := &node[T]{}
	vantages, dists, rest := t.chooseVantages(b, entries, src.Rand(), t.v)
	n.vantages = vantages
	ids := make([]int, len(rest))
	for i := range ids {
		ids[i] = i
	}
	// The cascade partitions without any distance computations; child
	// subtrees are collected during the walk and then built through the
	// pool, each with an RNG derived from its cascade position.
	var tasks []childTask[T]
	n.top = t.buildSplit(rest, dists, ids, 0, &tasks)
	b.Fork(len(tasks), func(i int) {
		ct := tasks[i]
		ct.sp.children[ct.g] = t.build(b, ct.entries, src.Child(i), depth+1)
	})
	return n
}

// childTask is one child subtree to build: slot (sp, g) gets the tree
// over entries.
type childTask[T any] struct {
	sp      *split[T]
	g       int
	entries []entry[T]
}

// buildSplit partitions the region holding the points rest[ids] by the
// distance slice dists[level], recursing down the cascade and finally
// into child subtrees.
func (t *Tree[T]) buildSplit(rest []entry[T], dists [][]float64, ids []int, level int, tasks *[]childTask[T]) *split[T] {
	ds := dists[level]
	sort.Slice(ids, func(a, b int) bool { return ds[ids[a]] < ds[ids[b]] })
	sp := &split[T]{level: level}
	groups := equalGroups(len(ids), t.m)
	last := level == len(dists)-1
	if !last {
		sp.subs = make([]*split[T], len(groups))
	} else {
		sp.children = make([]*node[T], len(groups))
	}
	sp.cutoffs = make([]float64, len(groups)-1)
	for g, grp := range groups {
		if g < len(groups)-1 {
			sp.cutoffs[g] = (ds[ids[grp.hi-1]] + ds[ids[grp.hi]]) / 2
		}
		region := ids[grp.lo:grp.hi]
		if !last {
			sp.subs[g] = t.buildSplit(rest, dists, region, level+1, tasks)
			continue
		}
		child := make([]entry[T], len(region))
		for i, id := range region {
			child[i] = rest[id]
		}
		*tasks = append(*tasks, childTask[T]{sp, g, child})
	}
	return sp
}

// rankRange is a half-open rank interval.
type rankRange struct{ lo, hi int }

// equalGroups splits n ranks into at most m near-equal groups.
func equalGroups(n, m int) []rankRange {
	if n == 0 {
		return nil
	}
	if m > n {
		m = n
	}
	groups := make([]rankRange, m)
	base, extra := n/m, n%m
	lo := 0
	for g := 0; g < m; g++ {
		hi := lo + base
		if g < extra {
			hi++
		}
		groups[g] = rankRange{lo, hi}
		lo = hi
	}
	return groups
}

// shellBounds returns the closed interval of region g.
func shellBounds(cutoffs []float64, g int) (lo, hi float64) {
	lo, hi = 0, math.Inf(1)
	if g > 0 {
		lo = cutoffs[g-1]
	}
	if g < len(cutoffs) {
		hi = cutoffs[g]
	}
	return lo, hi
}

// Range returns every indexed item within distance r of q. It delegates
// to RangeWithStats so there is exactly one traversal implementation;
// the two are guaranteed to agree in both results and distance
// computations.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query filtering breakdown shared
// with the mvp-tree: FilteredByD counts candidates excluded by a stored
// leaf-vantage distance, FilteredByPath those additionally excluded by
// a retained PATH entry.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	var out []T
	qpath := make([]float64, 0, t.p)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, qpath, cc, &out, &s)
	if cc != nil {
		t.cas.Put(cc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, qpath []float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.isLeaf())
	dq := make([]float64, len(n.vantages))
	for j, v := range n.vantages {
		dq[j] = t.dist.Distance(q, v)
		if cc != nil && n.casV != nil && n.casV[j] != 0 && cc.Wants() {
			cc.Register(n.casV[j]-1, dq[j]) // already exact; free to share
		}
		s.VantagePoints++
		t.TraceDistance(1)
		if dq[j] <= r {
			*out = append(*out, v)
		}
		if len(qpath) < t.p {
			qpath = append(qpath, dq[j])
		}
	}
	if n.isLeaf() {
		s.LeavesVisited++
		cas, base := t.cas, n.casBase
		useCas := cc != nil && cc.Registered() > 0
		filtered := 0
	items:
		for i, it := range n.items {
			s.Candidates++
			for j := range n.dists {
				if d := n.dists[j][i]; d < dq[j]-r || d > dq[j]+r {
					s.FilteredByD++
					t.TracePrune(obs.FilterD, 1)
					continue items
				}
			}
			path := n.paths[i]
			for l := 0; l < len(path) && l < len(qpath); l++ {
				if path[l] < qpath[l]-r || path[l] > qpath[l]+r {
					s.FilteredByPath++
					t.TracePrune(obs.FilterPath, 1)
					continue items
				}
			}
			// Last chance to skip the real computation: the cascade's
			// registered-pivot lower bound.
			if useCas {
				if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
					filtered++
					continue items
				}
			}
			s.Computed++
			t.TraceDistance(1)
			// Membership only, so the kernel may abandon at r; vantage
			// distances stay exact (they feed qpath and the two-sided
			// D-filters above).
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		if filtered > 0 {
			s.FilteredByCascade += filtered
			t.TracePrune(obs.FilterCascade, filtered)
		}
		return
	}
	t.rangeSplit(n.top, q, r, dq, qpath, cc, out, s)
}

func (t *Tree[T]) rangeSplit(sp *split[T], q T, r float64, dq, qpath []float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		lo, hi := shellBounds(sp.cutoffs, g)
		if d+r < lo || d-r > hi {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
			continue
		}
		if sp.subs != nil {
			t.rangeSplit(sp.subs[g], q, r, dq, qpath, cc, out, s)
		} else if sp.children[g] != nil {
			t.rangeNode(sp.children[g], q, r, qpath, cc, out, s)
		}
	}
}

// KNN returns the k nearest indexed items by best-first traversal. It
// delegates to KNNWithStats (single traversal implementation).
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query filtering breakdown. Leaf
// attribution mirrors the mvp-tree: the stored leaf-vantage distances
// get first credit (FilteredByD); a PATH entry gets credit only when it
// tightens the bound past the acceptance threshold on its own
// (FilteredByPath). The accept/reject outcome is identical either way —
// the final bound is the same maximum.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
		defer t.cas.Put(cc)
	}
	var queue heapx.NodeQueue[knnPending[T]]
	queue.PushNode(knnPending[T]{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		n, qpath := pn.n, pn.qpath
		s.NodesVisited++
		t.TraceNode(n.isLeaf())
		dq := make([]float64, len(n.vantages))
		for j, v := range n.vantages {
			dq[j] = t.dist.Distance(q, v)
			if cc != nil && n.casV != nil && n.casV[j] != 0 && cc.Wants() {
				cc.Register(n.casV[j]-1, dq[j]) // already exact; free to share
			}
			s.VantagePoints++
			t.TraceDistance(1)
			best.Push(v, dq[j])
		}
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			for _, d := range dq {
				if len(ext) < t.p {
					ext = append(ext, d)
				}
			}
			qpath = ext
		}
		if n.isLeaf() {
			s.LeavesVisited++
			cas, base := t.cas, n.casBase
			useCas := cc != nil && cc.Registered() > 0
			filtered := 0
			for i, it := range n.items {
				s.Candidates++
				lbD := 0.0
				for j := range n.dists {
					if b := abs(dq[j] - n.dists[j][i]); b > lbD {
						lbD = b
					}
				}
				if !best.Accepts(lbD) {
					s.FilteredByD++
					t.TracePrune(obs.FilterD, 1)
					continue
				}
				lb := lbD
				path := n.paths[i]
				for l := 0; l < len(path) && l < len(qpath); l++ {
					if b := abs(qpath[l] - path[l]); b > lb {
						lb = b
					}
				}
				if !best.Accepts(lb) {
					s.FilteredByPath++
					t.TracePrune(obs.FilterPath, 1)
					continue
				}
				// Last chance to skip the real computation: a cascade
				// lower bound the heap would reject proves the push
				// below would be rejected too.
				if useCas {
					if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
						filtered++
						continue
					}
				}
				s.Computed++
				t.TraceDistance(1)
				// Abandon at τ; vantage distances stay exact (qpath and
				// two-sided D-filters).
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			if filtered > 0 {
				s.FilteredByCascade += filtered
				t.TracePrune(obs.FilterCascade, filtered)
			}
			continue
		}
		t.knnSplit(n.top, dq, qpath, bound, best, &queue, &s)
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// knnPending is one enqueued subtree in the best-first kNN traversal.
type knnPending[T any] struct {
	n     *node[T]
	qpath []float64
}

// knnSplit walks a cascade accumulating interval-gap lower bounds and
// enqueues surviving child nodes.
func (t *Tree[T]) knnSplit(sp *split[T], dq, qpath []float64, bound float64,
	best *heapx.KBest[T], queue *heapx.NodeQueue[knnPending[T]], s *SearchStats) {
	d := dq[sp.level]
	count := len(sp.cutoffs) + 1
	for g := 0; g < count; g++ {
		lo, hi := shellBounds(sp.cutoffs, g)
		lb := bound
		switch {
		case d < lo:
			if gap := lo - d; gap > lb {
				lb = gap
			}
		case d > hi:
			if gap := d - hi; gap > lb {
				lb = gap
			}
		}
		if !best.Accepts(lb) {
			s.ShellsPruned++
			t.TracePrune(obs.FilterShell, 1)
			continue
		}
		if sp.subs != nil {
			t.knnSplit(sp.subs[g], dq, qpath, lb, best, queue, s)
		} else if sp.children[g] != nil {
			queue.PushNode(knnPending[T]{sp.children[g], qpath}, lb)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
