package build

import "math/rand/v2"

// RNG is a splittable deterministic random source for parallel
// construction. Each tree node derives its local rand.Rand from an RNG
// fixed by the node's position in the tree (the chain of Child indices
// from the root), never from execution order, so random choices —
// vantage points, pivots, split samples — are identical for every
// worker count. This is the construction-side counterpart of PR 1's
// query-determinism discipline.
//
// RNG is a value type; copies are independent.
type RNG struct {
	key uint64
}

// golden is 2^64 / φ, the Weyl increment of SplitMix64.
const golden = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 output function, a high-quality 64-bit
// mixer used both to whiten seeds and to derive child keys.
func splitmix64(x uint64) uint64 {
	x += golden
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRNG returns the root RNG for a build: seed is the user's
// construction seed, salt a per-package constant so different
// structures built from one seed do not correlate.
func NewRNG(seed, salt uint64) RNG {
	return RNG{key: splitmix64(seed) ^ splitmix64(splitmix64(salt))}
}

// Child derives the RNG for the i-th child subtree. Distinct indices
// yield statistically independent streams; the derivation depends only
// on the parent's key and i.
func (r RNG) Child(i int) RNG {
	return RNG{key: splitmix64(r.key + golden*uint64(i+1))}
}

// Rand returns a fresh rand.Rand for this tree position's local random
// decisions. Repeated calls return identically-seeded sources; draw
// from one instance for sequenced decisions within a node.
func (r RNG) Rand() *rand.Rand {
	return rand.New(rand.NewPCG(r.key, 0x6275696c642e726e)) // "build.rn"
}
