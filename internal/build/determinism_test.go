package build_test

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mvptree/internal/balltree"
	"mvptree/internal/bktree"
	"mvptree/internal/build"
	"mvptree/internal/codec"
	"mvptree/internal/ghtree"
	"mvptree/internal/gmvp"
	"mvptree/internal/gnat"
	"mvptree/internal/laesa"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

func vectors(n, dim int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 99))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func words(n int, seed uint64) []string {
	rng := rand.New(rand.NewPCG(seed, 98))
	out := make([]string, n)
	for i := range out {
		b := make([]byte, 3+rng.IntN(6))
		for j := range b {
			b[j] = byte('a' + rng.IntN(6))
		}
		out[i] = string(b)
	}
	return out
}

// saver abstracts the Save method the serializable structures share.
type saver interface {
	Save(w *bytes.Buffer) error
}

// buildCase builds one structure at the given worker count and returns
// its Save bytes (nil buf means the structure is compared by shape
// instead) plus its construction stats.
type buildCase struct {
	name string
	// build returns the serialized bytes of the structure (or a
	// reflect.DeepEqual-comparable representation for the structures
	// without Save) plus the construction stats.
	build func(t *testing.T, workers int) (any, build.Stats)
}

func determinismCases() []buildCase {
	items := vectors(800, 8, 7)
	ws := words(500, 7)
	opt := func(workers int) build.Options { return build.Options{Workers: workers, Seed: 42} }
	return []buildCase{
		{name: "mvp", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := mvp.NewWithStats(items, metric.NewCounter(metric.L2), mvp.Options{
				Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Save(&buf, codec.EncodeVector); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), st
		}},
		{name: "vptree", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := vptree.NewWithStats(items, metric.NewCounter(metric.L2), vptree.Options{
				Order: 3, LeafCapacity: 4, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Save(&buf, codec.EncodeVector); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), st
		}},
		{name: "gmvp", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := gmvp.NewWithStats(items, metric.NewCounter(metric.L2), gmvp.Options{
				Vantages: 3, Partitions: 2, LeafCapacity: 20, PathLength: 4, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Save(&buf, codec.EncodeVector); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), st
		}},
		{name: "laesa", build: func(t *testing.T, workers int) (any, build.Stats) {
			tb, st, err := laesa.NewWithStats(items, metric.NewCounter(metric.L2), laesa.Options{
				Pivots: 16, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tb.Save(&buf, codec.EncodeVector); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), st
		}},
		{name: "bktree", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := bktree.NewWithStats(ws, metric.NewCounter(metric.Edit), bktree.Options{
				Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tr.Save(&buf, codec.EncodeString); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), st
		}},
		// ghtree, gnat and balltree have no Save; compare by the answers
		// they give — a full range scan at several radii pins the tree
		// shape tightly (same partitions, same pivots).
		{name: "ghtree", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := ghtree.NewWithStats(items, metric.NewCounter(metric.L2), ghtree.Options{
				LeafCapacity: 4, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			return rangeFingerprint(tr, items), st
		}},
		{name: "gnat", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := gnat.NewWithStats(items, metric.NewCounter(metric.L2), gnat.Options{
				Degree: 6, LeafCapacity: 8, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			return rangeFingerprint(tr, items), st
		}},
		{name: "balltree", build: func(t *testing.T, workers int) (any, build.Stats) {
			tr, st, err := balltree.NewWithStats(items, metric.NewCounter(metric.L2), balltree.Options{
				Fanout: 6, LeafCapacity: 8, Build: opt(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			return rangeFingerprint(tr, items), st
		}},
	}
}

// ranger is the query surface shared by the non-serializable trees.
type ranger interface {
	Range(q []float64, r float64) [][]float64
	Counter() *metric.Counter[[]float64]
}

// rangeFingerprint captures result ORDER as well as content (result
// order follows traversal order, which follows tree shape) plus the
// exact number of distance computations spent answering, so two trees
// fingerprinting equal are the same tree for every practical purpose.
func rangeFingerprint(tr ranger, items [][]float64) any {
	type answer struct {
		Results [][]float64
		Cost    int64
	}
	var fp []answer
	for qi := 0; qi < 5; qi++ {
		for _, r := range []float64{0.3, 0.6, 0.9} {
			before := tr.Counter().Count()
			res := tr.Range(items[qi*37], r)
			fp = append(fp, answer{Results: res, Cost: tr.Counter().Count() - before})
		}
	}
	return fp
}

// TestWorkerCountInvariance is the tentpole guarantee: the index built
// with Workers=1 and Workers=8 is identical — same Save bytes where the
// structure serializes, same traversal fingerprint where it does not —
// and the distance-computation count, node count and depth agree
// exactly.
func TestWorkerCountInvariance(t *testing.T) {
	for _, tc := range determinismCases() {
		t.Run(tc.name, func(t *testing.T) {
			serial, sStats := tc.build(t, 1)
			parallel, pStats := tc.build(t, 8)
			if sb, ok := serial.([]byte); ok {
				if !bytes.Equal(sb, parallel.([]byte)) {
					t.Fatalf("%s: Workers=1 and Workers=8 Save bytes differ (%d vs %d bytes)",
						tc.name, len(sb), len(parallel.([]byte)))
				}
			} else if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("%s: Workers=1 and Workers=8 trees answer differently", tc.name)
			}
			if sStats.Distances != pStats.Distances {
				t.Errorf("%s: build cost %d (serial) != %d (parallel)", tc.name, sStats.Distances, pStats.Distances)
			}
			if sStats.Nodes != pStats.Nodes {
				t.Errorf("%s: node count %d (serial) != %d (parallel)", tc.name, sStats.Nodes, pStats.Nodes)
			}
			if sStats.MaxDepth != pStats.MaxDepth {
				t.Errorf("%s: max depth %d (serial) != %d (parallel)", tc.name, sStats.MaxDepth, pStats.MaxDepth)
			}
			if sStats.Distances <= 0 {
				t.Errorf("%s: build made no distance computations", tc.name)
			}
			if sStats.Workers != 1 || pStats.Workers != 8 {
				t.Errorf("%s: Stats.Workers = %d/%d, want 1/8", tc.name, sStats.Workers, pStats.Workers)
			}
		})
	}
}

// TestParallelBuildsRace exercises every structure's parallel build
// path concurrently; its value is under `go test -race`, where any
// unsynchronized access in Measure/Fork/Node is reported.
func TestParallelBuildsRace(t *testing.T) {
	cases := determinismCases()
	var wg sync.WaitGroup
	for _, tc := range cases {
		wg.Add(1)
		go func(tc buildCase) {
			defer wg.Done()
			tc.build(t, 8)
		}(tc)
	}
	wg.Wait()
}

// TestValidationErrors table-tests the uniform option-validation
// surface: every structure rejects a negative worker count and its
// non-positive structural parameters (degree, fanout, leaf capacity,
// pivot count, ...) with an error naming the package. Zero values are
// the documented "use the default" convention and must NOT error; only
// genuinely out-of-range values may.
func TestValidationErrors(t *testing.T) {
	items := vectors(32, 4, 1)
	ws := words(32, 1)
	bad := build.Options{Workers: -1}
	c := func() *metric.Counter[[]float64] { return metric.NewCounter(metric.L2) }
	cases := []struct {
		name string
		pkg  string
		err  error
	}{
		{"mvp/workers", "mvp", func() error {
			_, err := mvp.New(items, c(), mvp.Options{Build: bad})
			return err
		}()},
		{"mvp/partitions", "mvp", func() error {
			_, err := mvp.New(items, c(), mvp.Options{Partitions: 1})
			return err
		}()},
		{"mvp/leafcap", "mvp", func() error {
			_, err := mvp.New(items, c(), mvp.Options{LeafCapacity: -1})
			return err
		}()},
		{"vptree/workers", "vptree", func() error {
			_, err := vptree.New(items, c(), vptree.Options{Build: bad})
			return err
		}()},
		{"vptree/order", "vptree", func() error {
			_, err := vptree.New(items, c(), vptree.Options{Order: 1})
			return err
		}()},
		{"vptree/leafcap", "vptree", func() error {
			_, err := vptree.New(items, c(), vptree.Options{LeafCapacity: -1})
			return err
		}()},
		{"vptree/candidates", "vptree", func() error {
			_, err := vptree.New(items, c(), vptree.Options{Candidates: -1})
			return err
		}()},
		{"gmvp/workers", "gmvp", func() error {
			_, err := gmvp.New(items, c(), gmvp.Options{Build: bad})
			return err
		}()},
		{"gmvp/vantages", "gmvp", func() error {
			_, err := gmvp.New(items, c(), gmvp.Options{Vantages: -1})
			return err
		}()},
		{"gmvp/partitions", "gmvp", func() error {
			_, err := gmvp.New(items, c(), gmvp.Options{Partitions: 1})
			return err
		}()},
		{"gmvp/leafcap", "gmvp", func() error {
			_, err := gmvp.New(items, c(), gmvp.Options{LeafCapacity: -1})
			return err
		}()},
		{"ghtree/workers", "ghtree", func() error {
			_, err := ghtree.New(items, c(), ghtree.Options{Build: bad})
			return err
		}()},
		{"ghtree/leafcap", "ghtree", func() error {
			_, err := ghtree.New(items, c(), ghtree.Options{LeafCapacity: -1})
			return err
		}()},
		{"gnat/workers", "gnat", func() error {
			_, err := gnat.New(items, c(), gnat.Options{Build: bad})
			return err
		}()},
		{"gnat/degree", "gnat", func() error {
			_, err := gnat.New(items, c(), gnat.Options{Degree: 1})
			return err
		}()},
		{"gnat/leafcap", "gnat", func() error {
			_, err := gnat.New(items, c(), gnat.Options{LeafCapacity: -1})
			return err
		}()},
		{"gnat/candidatefactor", "gnat", func() error {
			_, err := gnat.New(items, c(), gnat.Options{CandidateFactor: -1})
			return err
		}()},
		{"balltree/workers", "balltree", func() error {
			_, err := balltree.New(items, c(), balltree.Options{Build: bad})
			return err
		}()},
		{"balltree/fanout", "balltree", func() error {
			_, err := balltree.New(items, c(), balltree.Options{Fanout: 1})
			return err
		}()},
		{"balltree/leafcap", "balltree", func() error {
			_, err := balltree.New(items, c(), balltree.Options{LeafCapacity: -1})
			return err
		}()},
		{"laesa/workers", "laesa", func() error {
			_, err := laesa.New(items, c(), laesa.Options{Build: bad})
			return err
		}()},
		{"laesa/pivots", "laesa", func() error {
			_, err := laesa.New(items, c(), laesa.Options{Pivots: -1})
			return err
		}()},
		{"bktree/workers", "bktree", func() error {
			_, err := bktree.New(ws, metric.NewCounter(metric.Edit), bktree.Options{Build: bad})
			return err
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: invalid option accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(tc.err.Error(), tc.pkg) {
			t.Errorf("%s: error %q does not name the package", tc.name, tc.err)
		}
	}
	// Zero values mean "default", never an error.
	if _, err := mvp.New(items, c(), mvp.Options{}); err != nil {
		t.Errorf("mvp: zero options rejected: %v", err)
	}
	if _, err := vptree.New(items, c(), vptree.Options{}); err != nil {
		t.Errorf("vptree: zero options rejected: %v", err)
	}
	if _, err := gnat.New(items, c(), gnat.Options{}); err != nil {
		t.Errorf("gnat: zero options rejected: %v", err)
	}
}
