// Package build is the shared parallel construction core every index
// structure in this repository is built through. The paper treats
// construction cost — distance computations and wall-clock time — as a
// first-class concern (§4.2 analyses the mvp-tree's O(n·log_{m²} n)
// build), and surveys of metric indexing describe the vp-tree family,
// gh-trees, GNATs and ball trees as instances of one pivot-partition
// template. This package is that template's engine room; the index
// packages keep only their structure-specific partitioning logic.
//
// It provides three primitives:
//
//   - Measure, a batch-distance evaluator that spreads the distances
//     from one vantage point to a set of items over a bounded worker
//     pool shared across the whole build;
//
//   - Fork, subtree-level task spawning for the recursive builders,
//     paired with a splittable deterministic RNG (see RNG) so that the
//     tree built with Workers=1 and Workers=N is identical — same
//     shape, same vantage points, same Save bytes;
//
//   - Stats, the uniform construction report (distance computations,
//     wall time, node count, max depth) returned by every structure's
//     NewWithStats.
//
// Determinism discipline: nothing observable may depend on goroutine
// scheduling. Measure writes each distance to a caller-fixed slot and
// settles the shared Counter once per batch, so distances and counter
// totals are scheduling-independent; Fork gives every subtree its own
// RNG derived from the parent's by index, so random choices are fixed
// by tree position, not by execution order.
package build

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvptree/internal/metric"
)

// Options are the construction knobs shared by every index package;
// each package embeds them in its Options.
type Options struct {
	// Workers is the number of goroutines construction may use. Values
	// <= 1 build serially; the tree built is byte-for-byte identical
	// for every worker count (parallelism trades wall-clock time only).
	// The metric function must be safe for concurrent calls when
	// Workers > 1 — all built-in metrics are.
	Workers int
	// Seed seeds vantage-point / pivot selection, making construction
	// deterministic.
	Seed uint64
}

// Validate checks the shared options; pkg names the index package for
// error messages.
func (o Options) Validate(pkg string) error {
	if o.Workers < 0 {
		return fmt.Errorf("%s: Workers must be non-negative, got %d", pkg, o.Workers)
	}
	return nil
}

// WorkerCount normalizes Workers: values <= 1 mean one (serial).
func (o Options) WorkerCount() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// Stats is the uniform construction report returned by every
// structure's NewWithStats.
type Stats struct {
	// Distances is the number of distance computations construction
	// made — the paper's build-cost measure. It is identical for every
	// worker count.
	Distances int64
	// Wall is the wall-clock construction time; the quantity Workers
	// trades against.
	Wall time.Duration
	// Nodes counts nodes created (for the pivot table: pivots).
	Nodes int
	// MaxDepth is the deepest node level reached; a root-only
	// structure has MaxDepth 0.
	MaxDepth int
	// Workers is the worker count actually used.
	Workers int
}

// MeasureThreshold is the minimum batch size Measure fans out to worker
// goroutines; below it scheduling overhead dominates the metric calls.
const MeasureThreshold = 256

// Builder is the shared construction context for one index build: the
// bounded worker pool, the distance counter bracket, and the node/depth
// tally behind Stats. Create one with Start, thread it through the
// recursive build, then call Finish for the Stats.
//
// Builder methods may be called from any goroutine spawned by Fork.
type Builder[T any] struct {
	dist    *metric.Counter[T]
	raw     metric.DistanceFunc[T]
	workers int
	sem     chan struct{} // worker tokens; capacity workers-1
	start   time.Time
	before  int64
	nodes   atomic.Int64
	depth   atomic.Int64
}

// Start opens a build context measuring distances through dist.
func Start[T any](dist *metric.Counter[T], opts Options) *Builder[T] {
	b := &Builder[T]{
		dist:    dist,
		raw:     dist.Func(),
		workers: opts.WorkerCount(),
		start:   time.Now(),
		before:  dist.Count(),
	}
	if b.workers > 1 {
		b.sem = make(chan struct{}, b.workers-1)
	}
	return b
}

// Workers reports the normalized worker count of the build.
func (b *Builder[T]) Workers() int { return b.workers }

// Measure fills out[i] with the distance from item(i) to the vantage
// point v for every i in [0, len(out)). With more than one worker and a
// large enough batch the raw metric runs on pool goroutines and the
// shared Counter is settled once at the end; otherwise it runs
// sequentially through the Counter. Either way the resulting distances
// and the final count are identical.
func (b *Builder[T]) Measure(v T, item func(int) T, out []float64) {
	n := len(out)
	if b.workers <= 1 || n < MeasureThreshold {
		for i := 0; i < n; i++ {
			out[i] = b.dist.Distance(item(i), v)
		}
		return
	}
	chunk := (n + b.workers - 1) / b.workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		if hi == n {
			// Run the last chunk on this goroutine: it is a worker too.
			for i := lo; i < hi; i++ {
				out[i] = b.raw(item(i), v)
			}
			break
		}
		select {
		case b.sem <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { <-b.sem }()
				for i := lo; i < hi; i++ {
					out[i] = b.raw(item(i), v)
				}
			}(lo, hi)
		default:
			// Pool saturated: do the work inline rather than queue.
			for i := lo; i < hi; i++ {
				out[i] = b.raw(item(i), v)
			}
		}
	}
	wg.Wait()
	b.dist.Add(int64(n))
}

// Fork runs task(i) for every i in [0, n), spawning pool goroutines
// when worker tokens are free and running inline otherwise, and returns
// when all tasks finished. Tasks may themselves call Fork and Measure:
// token acquisition never blocks (a saturated pool degrades to inline
// execution), so nested forks cannot deadlock. Tasks must write to
// disjoint state — typically distinct child slots of one node.
func (b *Builder[T]) Fork(n int, task func(int)) {
	if b.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case b.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-b.sem }()
				task(i)
			}(i)
		default:
			task(i)
		}
	}
	wg.Wait()
}

// Node records one node created at the given depth (root = 0) for the
// Stats tally. Safe to call from Fork tasks.
func (b *Builder[T]) Node(depth int) {
	b.nodes.Add(1)
	for {
		cur := b.depth.Load()
		if int64(depth) <= cur || b.depth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// Finish closes the build context and reports its Stats.
func (b *Builder[T]) Finish() Stats {
	return Stats{
		Distances: b.dist.Count() - b.before,
		Wall:      time.Since(b.start),
		Nodes:     int(b.nodes.Load()),
		MaxDepth:  int(b.depth.Load()),
		Workers:   b.workers,
	}
}
