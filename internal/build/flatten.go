package build

// FlattenVectors copies the vectors held in each group into one shared
// contiguous arena and re-slices the groups to point into it, so that a
// scan over a group reads sequential memory. It is the opt-in leaf
// vector arena behind the index packages' FlatVectors option.
//
// The rewrite is a pure relocation: every slice keeps its length and
// values (re-sliced with a full capacity cap so appends cannot alias a
// neighbor), only the backing storage changes. When the item type is
// not []float64 — FlattenVectors is generic so index packages can call
// it on []T leaves without knowing T — it reports false and leaves the
// groups untouched.
func FlattenVectors[T any](groups [][]T) bool {
	total := 0
	vecGroups := make([][][]float64, 0, len(groups))
	for _, g := range groups {
		vg, ok := any(g).([][]float64)
		if !ok {
			return false
		}
		vecGroups = append(vecGroups, vg)
		for _, v := range vg {
			total += len(v)
		}
	}
	arena := make([]float64, 0, total)
	for _, vg := range vecGroups {
		for i, v := range vg {
			off := len(arena)
			arena = append(arena, v...)
			vg[i] = arena[off:len(arena):len(arena)]
		}
	}
	return true
}
