package build

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"mvptree/internal/metric"
)

func absDiff(a, b float64) float64 { return math.Abs(a - b) }

func TestMeasureMatchesSerialAndSettlesCounter(t *testing.T) {
	items := make([]float64, 3000)
	for i := range items {
		items[i] = float64(i) * 0.5
	}
	for _, workers := range []int{0, 1, 4, 16} {
		ctr := metric.NewCounter(absDiff)
		b := Start(ctr, Options{Workers: workers})
		out := make([]float64, len(items))
		b.Measure(100, func(i int) float64 { return items[i] }, out)
		for i := range out {
			if want := absDiff(items[i], 100); out[i] != want {
				t.Fatalf("workers=%d: out[%d] = %g, want %g", workers, i, out[i], want)
			}
		}
		if got := ctr.Count(); got != int64(len(items)) {
			t.Errorf("workers=%d: counter = %d, want %d", workers, got, len(items))
		}
		s := b.Finish()
		if s.Distances != int64(len(items)) {
			t.Errorf("workers=%d: Stats.Distances = %d, want %d", workers, s.Distances, len(items))
		}
		if s.Workers != max(workers, 1) {
			t.Errorf("workers=%d: Stats.Workers = %d", workers, s.Workers)
		}
	}
}

func TestMeasureEmptyAndSmallBatches(t *testing.T) {
	ctr := metric.NewCounter(absDiff)
	b := Start(ctr, Options{Workers: 8})
	b.Measure(1, func(i int) float64 { t.Fatal("item called for empty batch"); return 0 }, nil)
	out := make([]float64, 3) // below MeasureThreshold: serial path
	b.Measure(1, func(i int) float64 { return float64(i) }, out)
	if ctr.Count() != 3 {
		t.Errorf("counter = %d, want 3", ctr.Count())
	}
}

func TestForkRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctr := metric.NewCounter(absDiff)
		b := Start(ctr, Options{Workers: workers})
		const n = 500
		ran := make([]atomic.Int32, n)
		b.Fork(n, func(i int) { ran[i].Add(1) })
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForkNestedDoesNotDeadlock(t *testing.T) {
	ctr := metric.NewCounter(absDiff)
	b := Start(ctr, Options{Workers: 4})
	var total atomic.Int64
	b.Fork(8, func(i int) {
		b.Fork(8, func(j int) {
			b.Fork(4, func(k int) { total.Add(1) })
		})
	})
	if got := total.Load(); got != 8*8*4 {
		t.Fatalf("nested fork ran %d leaf tasks, want %d", got, 8*8*4)
	}
}

func TestForkBoundsConcurrency(t *testing.T) {
	const workers = 4
	ctr := metric.NewCounter(absDiff)
	b := Start(ctr, Options{Workers: workers})
	var cur, peak atomic.Int64
	var mu sync.Mutex
	b.Fork(64, func(i int) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		for j := 0; j < 1000; j++ {
			_ = splitmix64(uint64(j))
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestNodeTracksCountAndDepth(t *testing.T) {
	ctr := metric.NewCounter(absDiff)
	b := Start(ctr, Options{Workers: 8})
	b.Fork(100, func(i int) { b.Node(i % 7) })
	s := b.Finish()
	if s.Nodes != 100 {
		t.Errorf("Nodes = %d, want 100", s.Nodes)
	}
	if s.MaxDepth != 6 {
		t.Errorf("MaxDepth = %d, want 6", s.MaxDepth)
	}
}

func TestRNGDeterministicSplitting(t *testing.T) {
	root := NewRNG(42, 0xabc)
	if NewRNG(42, 0xabc) != root {
		t.Fatal("NewRNG not deterministic")
	}
	if NewRNG(43, 0xabc) == root || NewRNG(42, 0xabd) == root {
		t.Fatal("seed or salt ignored")
	}
	a, b := root.Child(0), root.Child(1)
	if a == b {
		t.Fatal("distinct children share a key")
	}
	if root.Child(0) != a {
		t.Fatal("Child not deterministic")
	}
	// Identical positions draw identical sequences, independent of any
	// other RNG's use.
	r1 := root.Child(3).Rand()
	_ = root.Child(7).Rand().IntN(1000)
	r2 := root.Child(3).Rand()
	for i := 0; i < 100; i++ {
		if r1.IntN(1<<30) != r2.IntN(1<<30) {
			t.Fatal("same position produced different draws")
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Workers: -1}).Validate("pkg"); err == nil {
		t.Error("negative Workers accepted")
	}
	for _, w := range []int{0, 1, 32} {
		if err := (Options{Workers: w}).Validate("pkg"); err != nil {
			t.Errorf("Workers=%d rejected: %v", w, err)
		}
	}
	if (Options{}).WorkerCount() != 1 || (Options{Workers: 5}).WorkerCount() != 5 {
		t.Error("WorkerCount normalization wrong")
	}
}
