package build

import (
	"mvptree/internal/metric"
	"mvptree/internal/quant"
)

// QuantizeVectors trains a quantized companion representation over the
// vectors held in groups (one group per leaf, the same shape
// FlattenVectors takes) and encodes each group into a shared arena,
// returning per-group views parallel to the input. It is the
// construction half of the opt-in quantized pre-filter behind the
// index packages' Quantize option.
//
// Like FlattenVectors it is generic so index packages can call it on
// []T leaves without knowing T; it reports false — callers then leave
// the pre-filter off — when T is not []float64 or the dataset cannot
// be quantized (empty, inconsistent dimensions, non-finite
// coordinates, or a float32 overflow in F32 mode).
func QuantizeVectors[T any](groups [][]T, kind metric.QuantKind, mode quant.Mode) (*quant.Quantized, bool) {
	vecGroups := make([][][]float64, 0, len(groups))
	for _, g := range groups {
		vg, ok := any(g).([][]float64)
		if !ok {
			return nil, false
		}
		vecGroups = append(vecGroups, vg)
	}
	q, err := quant.Build(kind, mode, vecGroups)
	if err != nil {
		return nil, false
	}
	return q, true
}
