// Package gnat implements Brin's Geometric Near-neighbor Access Tree
// [Bri95], reviewed by the paper in §3.2 as the closest contemporary
// competitor to vp-trees.
//
// Each node holds k split points chosen to be far apart; every remaining
// point joins the dataset of its closest split point. The node records,
// for every (split point i, dataset j) pair, the minimum and maximum
// distance from split point i to the points of dataset j ("ranges").
// Search computes distances from the query to split points one at a time
// and discards any dataset whose range around any split point cannot
// intersect the query ball, often eliminating datasets without ever
// touching their split point.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package gnat

import (
	"errors"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
)

// SearchStats is the shared per-query filtering breakdown
// (index.SearchStats), aliased here so gnat call sites match the other
// index packages. GNAT fills VantagePoints with split-point distances
// and ShellsPruned with datasets discarded through the stored ranges;
// having no stored leaf distances, FilteredByD/FilteredByPath stay zero
// and Computed == Candidates.
type SearchStats = index.SearchStats

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction of a GNAT.
type Options struct {
	// Build holds the shared construction knobs (Workers, Seed); the
	// tree built is identical for every worker count.
	Build
	// Degree is the number of split points per node, k in [Bri95].
	// Default 8.
	Degree int
	// LeafCapacity is the maximum number of points stored in a leaf
	// bucket. Default 16.
	LeafCapacity int
	// CandidateFactor controls split-point sampling: Degree ×
	// CandidateFactor random candidates are drawn and a greedy
	// max-min-distance subset of size Degree is kept, as in [Bri95].
	// Default 3.
	CandidateFactor int
	// Adaptive, when true, gives every child node a degree
	// proportional to its dataset's share of the parent's points,
	// clamped to [MinDegree, MaxDegree] — [Bri95]: "the number of
	// split points, k, is parametrized and is chosen to be a different
	// value for each data set depending on its cardinality".
	Adaptive bool
	// MinDegree and MaxDegree clamp adaptive degrees. Defaults 2 and
	// 4 × Degree.
	MinDegree, MaxDegree int
}

func (o *Options) setDefaults() {
	if o.Degree == 0 {
		o.Degree = 8
	}
	if o.LeafCapacity == 0 {
		o.LeafCapacity = 16
	}
	if o.CandidateFactor == 0 {
		o.CandidateFactor = 3
	}
	if o.MinDegree == 0 {
		o.MinDegree = 2
	}
	if o.MaxDegree == 0 {
		o.MaxDegree = 4 * o.Degree
	}
}

// Tree is a GNAT over a fixed item set. The embedded obs.Hooks let
// callers attach an Observer and/or Tracer; with neither attached the
// query paths pay only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	cas        *cascade.Filter[T]
	size       int
	buildStats build.Stats
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

type node[T any] struct {
	splits   []T
	lo, hi   [][]float64 // lo[i][j], hi[i][j]: range of d(splits[i], dataset j)
	children []*node[T]
	leaf     bool
	items    []T

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	casS    []int32 // casS[i] stamps splits[i]; nil when no split is a pivot
	casBase int32
}

// New builds a GNAT over items using the counted metric dist.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	opts.setDefaults()
	if err := opts.Build.Validate("gnat"); err != nil {
		return nil, build.Stats{}, err
	}
	if opts.Degree < 2 {
		return nil, build.Stats{}, errors.New("gnat: Degree must be at least 2")
	}
	if opts.LeafCapacity < 1 {
		return nil, build.Stats{}, errors.New("gnat: LeafCapacity must be at least 1")
	}
	if opts.CandidateFactor < 1 {
		return nil, build.Stats{}, errors.New("gnat: CandidateFactor must be at least 1")
	}
	if opts.Adaptive && (opts.MinDegree < 2 || opts.MaxDegree < opts.MinDegree) {
		return nil, build.Stats{}, errors.New("gnat: adaptive degree bounds must satisfy 2 <= MinDegree <= MaxDegree")
	}
	t := &Tree[T]{dist: dist, size: len(items)}
	work := make([]T, len(items))
	copy(work, items)
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, work, build.NewRNG(opts.Seed, 0x676e6174), &opts, opts.Degree, 0)
	t.buildStats = b.Finish()
	return t, t.buildStats, nil
}

// build consumes work. src is the splittable RNG fixed by this subtree's
// position, so the tree is identical for every worker count.
func (t *Tree[T]) build(b *build.Builder[T], work []T, src build.RNG, opts *Options, degree, depth int) *node[T] {
	if len(work) == 0 {
		return nil
	}
	b.Node(depth)
	if len(work) <= opts.LeafCapacity || len(work) <= degree {
		leaf := &node[T]{leaf: true, items: make([]T, len(work))}
		copy(leaf.items, work)
		return leaf
	}
	k := degree
	splits := t.chooseSplits(b, work, k, src, opts.CandidateFactor)
	n := &node[T]{splits: make([]T, k)}
	inSplit := make(map[int]bool, k)
	for i, wi := range splits {
		n.splits[i] = work[wi]
		inSplit[wi] = true
	}

	// Assignment pass: distance from every remaining point to every
	// split point, batched one split point at a time (same computations
	// as the point-at-a-time loop, so the cost counter is unchanged).
	rest := make([]T, 0, len(work)-k)
	for wi, it := range work {
		if !inSplit[wi] {
			rest = append(rest, it)
		}
	}
	dmat := make([][]float64, k) // dmat[j][i] = d(rest[i], splits[j])
	for j := 0; j < k; j++ {
		dmat[j] = make([]float64, len(rest))
		b.Measure(n.splits[j], func(i int) T { return rest[i] }, dmat[j])
	}
	datasets := make([][]T, k)
	for i, it := range rest {
		bestJ, bestD := 0, 0.0
		for j := 0; j < k; j++ {
			if d := dmat[j][i]; j == 0 || d < bestD {
				bestJ, bestD = j, d
			}
		}
		datasets[bestJ] = append(datasets[bestJ], it)
	}

	// Ranges: lo/hi of d(split i, x) over each dataset j *including*
	// split point j itself, as in [Bri95] — pruning dataset j also
	// prunes split point j, so the range must cover it. This is the
	// second pass of distance computations [Bri95] pays for at
	// construction ("more expensive preprocessing than the vp-tree").
	// Batched per split point i over [splits..., dataset 0..., 1..., ...].
	flat := make([]T, 0, len(work))
	flat = append(flat, n.splits...)
	for j := range datasets {
		flat = append(flat, datasets[j]...)
	}
	row := make([]float64, len(flat))
	n.lo = make([][]float64, k)
	n.hi = make([][]float64, k)
	for i := 0; i < k; i++ {
		b.Measure(n.splits[i], func(x int) T { return flat[x] }, row)
		n.lo[i] = make([]float64, k)
		n.hi[i] = make([]float64, k)
		off := k
		for j := range datasets {
			lo := row[j] // d(split i, split j)
			hi := lo
			for x := 0; x < len(datasets[j]); x++ {
				d := row[off+x]
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
			n.lo[i][j], n.hi[i][j] = lo, hi
			off += len(datasets[j])
		}
	}

	n.children = make([]*node[T], k)
	total := 0
	for j := range datasets {
		total += len(datasets[j])
	}
	childDegs := make([]int, k)
	for j := range datasets {
		childDeg := opts.Degree
		if opts.Adaptive && total > 0 {
			// Proportional to the dataset's share, averaging Degree.
			childDeg = int(float64(opts.Degree*k)*float64(len(datasets[j]))/float64(total) + 0.5)
			childDeg = max(opts.MinDegree, min(opts.MaxDegree, childDeg))
		}
		childDegs[j] = childDeg
	}
	b.Fork(k, func(j int) {
		n.children[j] = t.build(b, datasets[j], src.Child(j), opts, childDegs[j], depth+1)
	})
	return n
}

// chooseSplits returns indices into work of k split points: sample
// k·factor candidates, keep a greedy max-min-distance subset.
func (t *Tree[T]) chooseSplits(b *build.Builder[T], work []T, k int, src build.RNG, factor int) []int {
	candN := min(len(work), k*factor)
	cands := src.Rand().Perm(len(work))[:candN]
	chosen := make([]int, 0, k)
	chosen = append(chosen, cands[0])
	minDist := make([]float64, candN) // distance to nearest chosen split
	b.Measure(work[chosen[0]], func(i int) T { return work[cands[i]] }, minDist)
	row := make([]float64, candN)
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for i, c := range cands {
			if containsInt(chosen, c) {
				continue
			}
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, cands[best])
		b.Measure(work[cands[best]], func(i int) T { return work[cands[i]] }, row)
		for i := range cands {
			if row[i] < minDist[i] {
				minDist[i] = row[i]
			}
		}
	}
	return chosen
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports the number of distance computations made during
// construction.
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report.
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Range returns every indexed item within distance r of q, following
// [Bri95]'s search: split points are consumed one at a time and each
// distance prunes sibling datasets through the stored ranges.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus the per-query breakdown. It is the only
// range traversal implementation — Range delegates here.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 {
		span.Done(&s)
		return nil, s
	}
	var out []T
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, cc, &out, &s)
	if cc != nil {
		t.cas.Put(cc)
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, cc *cascade.Cache, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.leaf)
	if n.leaf {
		s.LeavesVisited++
		cas, base := t.cas, n.casBase
		useCas := cc != nil && cc.Registered() > 0
		filtered := 0
		for i, it := range n.items {
			s.Candidates++
			if useCas {
				if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
					filtered++
					continue
				}
			}
			s.Computed++
			t.TraceDistance(1)
			// Membership only, so the kernel may abandon at r; split
			// point distances stay exact (the range tables use them
			// two-sidedly).
			if t.dist.DistanceUpTo(q, it, r) <= r {
				*out = append(*out, it)
			}
		}
		if filtered > 0 {
			s.FilteredByCascade += filtered
			t.TracePrune(obs.FilterCascade, filtered)
		}
		return
	}
	k := len(n.splits)
	alive := make([]bool, k)
	for j := range alive {
		alive[j] = true
	}
	visited := make([]bool, k)
	for {
		// Pick an unvisited split point whose dataset is still alive.
		i := -1
		for j := 0; j < k; j++ {
			if alive[j] && !visited[j] {
				i = j
				break
			}
		}
		if i < 0 {
			break
		}
		visited[i] = true
		d := t.dist.Distance(q, n.splits[i])
		if cc != nil && n.casS != nil && n.casS[i] != 0 && cc.Wants() {
			cc.Register(n.casS[i]-1, d) // already exact; free to share
		}
		s.VantagePoints++
		t.TraceDistance(1)
		if d <= r {
			*out = append(*out, n.splits[i])
		}
		for j := 0; j < k; j++ {
			if !alive[j] {
				continue
			}
			if d+r < n.lo[i][j] || d-r > n.hi[i][j] {
				alive[j] = false
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	for j := 0; j < k; j++ {
		if alive[j] {
			t.rangeNode(n.children[j], q, r, cc, out, s)
		}
	}
}

// KNN returns the k nearest indexed items via best-first traversal. The
// lower bound of a child dataset is the tightest interval gap over all
// split points whose query distance was computed.
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

// KNNWithStats is KNN plus the per-query breakdown. It is the only
// best-first kNN traversal implementation — KNN delegates here.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
		defer t.cas.Put(cc)
	}
	var queue heapx.NodeQueue[*node[T]]
	queue.PushNode(t.root, 0)
	for {
		n, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		s.NodesVisited++
		t.TraceNode(n.leaf)
		if n.leaf {
			s.LeavesVisited++
			cas, base := t.cas, n.casBase
			useCas := cc != nil && cc.Registered() > 0
			filtered := 0
			for i, it := range n.items {
				s.Candidates++
				if useCas {
					// A candidate whose lower bound the heap would
					// reject cannot change the result set: the bounded
					// kernel below would return a value ≥ the bound.
					if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
						filtered++
						continue
					}
				}
				s.Computed++
				t.TraceDistance(1)
				// Abandon at τ; split point distances stay exact (the
				// range tables use them two-sidedly).
				best.Push(it, t.dist.DistanceUpTo(q, it, best.Threshold()))
			}
			if filtered > 0 {
				s.FilteredByCascade += filtered
				t.TracePrune(obs.FilterCascade, filtered)
			}
			continue
		}
		nk := len(n.splits)
		lbs := make([]float64, nk)
		for j := range lbs {
			lbs[j] = bound
		}
		for i := 0; i < nk; i++ {
			d := t.dist.Distance(q, n.splits[i])
			if cc != nil && n.casS != nil && n.casS[i] != 0 && cc.Wants() {
				cc.Register(n.casS[i]-1, d) // already exact; free to share
			}
			best.Push(n.splits[i], d)
			s.VantagePoints++
			t.TraceDistance(1)
			for j := 0; j < nk; j++ {
				gap := 0.0
				switch {
				case d < n.lo[i][j]:
					gap = n.lo[i][j] - d
				case d > n.hi[i][j]:
					gap = d - n.hi[i][j]
				}
				if gap > lbs[j] {
					lbs[j] = gap
				}
			}
		}
		for j := 0; j < nk; j++ {
			if n.children[j] == nil {
				continue
			}
			if best.Accepts(lbs[j]) {
				queue.PushNode(n.children[j], lbs[j])
			} else {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}
