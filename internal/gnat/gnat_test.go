package gnat

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	for _, opts := range []Options{
		{Build: Build{Seed: 7}},
		{Degree: 4, LeafCapacity: 4, Build: Build{Seed: 7}},
		{Degree: 16, LeafCapacity: 32, Build: Build{Seed: 7}},
	} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.CheckRange(t, "gnat", tree, w, []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0})
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Degree: 5, LeafCapacity: 8, Build: Build{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckKNN(t, "gnat", tree, w, []int{1, 2, 5, 17, 300, 1000})
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 1))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckRange(t, "gnat-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
	testutil.CheckKNN(t, "gnat-clumped", tree, w, []int{1, 3, 10})
	testutil.CheckContainsAllOnce(t, "gnat-clumped", tree, w, 1e6)
}

func TestTinyAndEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 10; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{Degree: 3, LeafCapacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		if got := tree.Range([]float64{0}, 100); len(got) != n {
			t.Errorf("n=%d: full range = %d items, want %d", n, len(got), n)
		}
	}
	for _, opts := range []Options{{Degree: 1}, {LeafCapacity: -1}, {CandidateFactor: -2}} {
		if _, err := New([][]float64{{1}, {2}, {3}}, dist, opts); err == nil {
			t.Errorf("invalid options %+v accepted", opts)
		}
	}
}

func TestBuildIsMoreExpensiveThanSearchStructure(t *testing.T) {
	// [Bri95]: GNAT preprocessing is more expensive than the vp-tree's
	// O(n log n); sanity check that BuildCost is superlinear but sane.
	rng := rand.New(rand.NewPCG(44, 1))
	w := testutil.NewVectorWorkload(rng, 1000, 6, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Degree: 8, Build: Build{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.BuildCost() < int64(len(w.Items)) {
		t.Errorf("BuildCost %d below n", tree.BuildCost())
	}
	if tree.BuildCost() > int64(len(w.Items))*int64(len(w.Items)) {
		t.Errorf("BuildCost %d exceeds n², table construction is wrong", tree.BuildCost())
	}
}

func TestAdaptiveDegreeCorrectness(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 1))
	for name, w := range map[string]*testutil.Workload{
		"uniform": testutil.NewVectorWorkload(rng, 600, 6, 8, metric.L2),
		"clumped": testutil.NewClumpedWorkload(rng, 600, 5, 8, metric.L2),
	} {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Degree: 6, Adaptive: true, Build: Build{Seed: 5}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckRange(t, "gnat-adaptive-"+name, tree, w, []float64{0, 0.1, 0.4, 1.0})
		testutil.CheckKNN(t, "gnat-adaptive-"+name, tree, w, []int{1, 5, 20})
	}
}

func TestAdaptiveValidation(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	items := [][]float64{{1}, {2}, {3}}
	if _, err := New(items, dist, Options{Adaptive: true, MinDegree: 1, MaxDegree: 3}); err == nil {
		t.Error("MinDegree 1 accepted")
	}
	if _, err := New(items, dist, Options{Adaptive: true, MinDegree: 5, MaxDegree: 3}); err == nil {
		t.Error("MinDegree > MaxDegree accepted")
	}
}
