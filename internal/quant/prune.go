package quant

import (
	"math"

	"mvptree/internal/metric"
)

// Prepared is the per-query state of the pre-filter, built once by
// Prepare and consulted per candidate by PruneAt. Callers pool it
// (index packages keep one in their query scratch) so steady-state
// queries allocate nothing; every buffer is reused at capacity.
type Prepared struct {
	// table is the SQ8 contribution table: table[j·256+c] is the
	// per-dimension lower bound of dimension j at cell c against this
	// query — eta-deflated, squared for L2, rounded toward zero so a
	// lookup never overstates. float32 keeps the table L1-resident
	// (dim·1 KB), which is what makes the byte scan cheaper than the
	// f64 kernel it screens for.
	table []float32
	// q is the query vector (aliased, not copied) for F32 mode.
	q []float64

	// Threshold cache: thresholds are a function of the candidate
	// bound, which is constant for a range query and changes only when
	// a kNN heap improves, so the inflated comparison values are
	// memoized per bound.
	cachedBound float64
	thr32       float32 // SQ8 comparison value (squared for L2)
	thr64       float64 // F32 comparison value (squared for L2)
}

// Prepare arms p for query q against the set. Must be called before
// PruneAt; p is reusable across queries and sets.
//
// The SQ8 table fill is on the per-query critical path (dim·256
// entries), so it runs as three branch-light segments per dimension:
// the query coordinate splits the cell axis into cells entirely below
// it (contribution qj − cellHi, shrinking toward the query), a zero
// band around it (widened by one cell each side so boundary rounding
// can only lose a sliver of pruning power, never soundness), and cells
// entirely above (cellLo − qj). Every entry is eta-deflated; the f64→
// f32 conversion and the L2 squaring round freely because their
// relative error is absorbed by the set's comparison slack.
func (s *Set) Prepare(p *Prepared, q []float64) {
	p.cachedBound = math.NaN()
	p.q = q
	if s.mode != SQ8 {
		return
	}
	dim := s.dim
	if cap(p.table) < dim*256 {
		p.table = make([]float32, dim*256)
	}
	tbl := p.table[:dim*256]
	squared := s.kind == metric.QuantL2
	for j := 0; j < dim; j++ {
		lo, st, eta, qj := s.lo[j], s.step[j], s.eta[j], q[j]
		row := tbl[j*256 : j*256+256 : j*256+256]
		d := qj - lo
		if st == 0 {
			// Constant dimension: one exact cell, every code is 0.
			m := math.Abs(d) - eta
			if m < 0 {
				m = 0
			}
			if squared {
				m *= m
			}
			f := float32(m)
			for c := range row {
				row[c] = f
			}
			continue
		}
		x := d / st
		if x < 0 {
			x = 0
		} else if x > 255 {
			x = 255
		}
		ci := int(x)
		cLo, cHi := ci-1, ci+1
		if cLo < 0 {
			cLo = 0
		}
		if cHi > 255 {
			cHi = 255
		}
		// Cells below the query: m = (qj − lo) − (c+1)·step − eta. The
		// cell counter runs as an exact small-integer float so the only
		// rounding is the mul/sub chain eta covers.
		base := d - eta
		cf := 1.0
		for c := 0; c < cLo; c++ {
			m := base - cf*st
			cf++
			if m < 0 {
				m = 0
			}
			if squared {
				m *= m
			}
			row[c] = float32(m)
		}
		for c := cLo; c <= cHi; c++ {
			row[c] = 0
		}
		// Cells above the query: m = c·step − (qj − lo) − eta.
		base = d + eta
		cf = float64(cHi + 1)
		for c := cHi + 1; c < 256; c++ {
			m := cf*st - base
			cf++
			if m < 0 {
				m = 0
			}
			if squared {
				m *= m
			}
			row[c] = float32(m)
		}
	}
}

// Release drops the query alias so a pooled Prepared does not pin the
// caller's vector between queries; the table keeps its capacity.
func (p *Prepared) Release() { p.q = nil }

// PruneAt reports whether candidate i of the encoded block (codes for
// SQ8, f32s for F32 — exactly one is non-nil) is certified to have
// exact distance > bound from the prepared query. A true return is a
// guarantee — the exact kernel's float64 result would exceed bound —
// so the caller may skip the exact computation without changing any
// result, ordering or count; a false return says nothing. The scan
// early-exits once the partial bound crosses the threshold, mirroring
// the exact kernels' abandonment.
func (s *Set) PruneAt(p *Prepared, codes []byte, f32s []float32, i int, bound float64) bool {
	// +Inf (an unfilled kNN heap) can never be exceeded and NaN/negative
	// bounds never reach leaf scans with work to skip; bail before
	// paying for a scan.
	if !(bound >= 0) || math.IsInf(bound, 1) {
		return false
	}
	if bound != p.cachedBound {
		p.reThreshold(s, bound)
	}
	dim := s.dim
	if codes != nil {
		return s.pruneSQ8(p, codes[i*dim:i*dim+dim])
	}
	return s.pruneF32(p, f32s[i*dim:i*dim+dim])
}

// reThreshold recomputes the memoized comparison values for a new
// bound. The comparison is deflated by the set's relative slack
// (rejection needs lb > bound·(1+slack)); inflating the float32 form
// by one ulp keeps the conversion itself from tightening it.
func (p *Prepared) reThreshold(s *Set, bound float64) {
	p.cachedBound = bound
	thr := bound * (1 + s.slack)
	if s.kind == metric.QuantL2 {
		thr *= thr
	}
	p.thr64 = thr
	p.thr32 = math.Nextafter32(float32(thr), float32(math.Inf(1)))
}

// pruneSQ8 scans one code block through the contribution table:
// 4-wide, one early exit per chunk. Partial sums (and maxes) of
// non-negative contributions are monotone, so crossing the threshold
// early is the same decision the full aggregate would make.
func (s *Set) pruneSQ8(p *Prepared, code []byte) bool {
	tbl := p.table
	thr := p.thr32
	if s.kind == metric.QuantLInf {
		for j, c := range code {
			if tbl[j<<8|int(c)] > thr {
				return true
			}
		}
		return false
	}
	// L1 and L2 share the loop: the table rows are already squared for
	// L2, so both aggregate by summation.
	var sum float32
	j := 0
	for ; j+4 <= len(code); j += 4 {
		sum += tbl[j<<8|int(code[j])]
		sum += tbl[(j+1)<<8|int(code[j+1])]
		sum += tbl[(j+2)<<8|int(code[j+2])]
		sum += tbl[(j+3)<<8|int(code[j+3])]
		if sum > thr {
			return true
		}
	}
	for ; j < len(code); j++ {
		sum += tbl[j<<8|int(code[j])]
	}
	return sum > thr
}

// pruneF32 scans one float32 block with the rounding-error-compensated
// kernel: |q_j − w_j| − ferr_j is a lower bound on |q_j − v_j| because
// ferr_j bounds the representation error of dimension j.
func (s *Set) pruneF32(p *Prepared, w []float32) bool {
	q := p.q[:len(w)]
	ferr := s.ferr[:len(w)]
	thr := p.thr64
	switch s.kind {
	case metric.QuantL2:
		var sum float64
		j := 0
		for ; j+4 <= len(w); j += 4 {
			sum += sq32Term(q[j], w[j], ferr[j])
			sum += sq32Term(q[j+1], w[j+1], ferr[j+1])
			sum += sq32Term(q[j+2], w[j+2], ferr[j+2])
			sum += sq32Term(q[j+3], w[j+3], ferr[j+3])
			if sum > thr {
				return true
			}
		}
		for ; j < len(w); j++ {
			sum += sq32Term(q[j], w[j], ferr[j])
		}
		return sum > thr
	case metric.QuantLInf:
		for j, x := range w {
			if t := math.Abs(q[j]-float64(x)) - ferr[j]; t > thr {
				return true
			}
		}
		return false
	default: // QuantL1
		var sum float64
		j := 0
		for ; j+4 <= len(w); j += 4 {
			sum += abs32Term(q[j], w[j], ferr[j])
			sum += abs32Term(q[j+1], w[j+1], ferr[j+1])
			sum += abs32Term(q[j+2], w[j+2], ferr[j+2])
			sum += abs32Term(q[j+3], w[j+3], ferr[j+3])
			if sum > thr {
				return true
			}
		}
		for ; j < len(w); j++ {
			sum += abs32Term(q[j], w[j], ferr[j])
		}
		return sum > thr
	}
}

func abs32Term(q float64, w float32, e float64) float64 {
	t := math.Abs(q-float64(w)) - e
	if t < 0 {
		return 0
	}
	return t
}

func sq32Term(q float64, w float32, e float64) float64 {
	t := math.Abs(q-float64(w)) - e
	if t < 0 {
		return 0
	}
	return t * t
}

// LowerBoundAt returns the full (non-early-exiting) lower bound the
// pre-filter holds for candidate i, in the metric's own units — the
// quantLB(q, v) ≤ exact(q, v) quantity the property tests pin. The
// aggregate is deflated by the set's relative slack, the same margin
// PruneAt demands before rejecting, which is what absorbs the
// ulp-level arithmetic rounding of the per-dimension terms (ferr and
// eta cover representation error only). Query paths use PruneAt
// instead; this is the observable form.
func (s *Set) LowerBoundAt(p *Prepared, codes []byte, f32s []float32, i int) float64 {
	dim := s.dim
	var sum, mx float64
	if codes != nil {
		for j, c := range codes[i*dim : i*dim+dim] {
			t := float64(p.table[j<<8|int(c)])
			sum += t
			if t > mx {
				mx = t
			}
		}
	} else {
		for j, x := range f32s[i*dim : i*dim+dim] {
			t := math.Abs(p.q[j]-float64(x)) - s.ferr[j]
			if t < 0 {
				t = 0
			}
			if s.kind == metric.QuantL2 {
				t *= t
			}
			sum += t
			if t > mx {
				mx = t
			}
		}
	}
	switch s.kind {
	case metric.QuantL2:
		return math.Sqrt(sum) / (1 + s.slack)
	case metric.QuantLInf:
		return mx / (1 + s.slack)
	default:
		return sum / (1 + s.slack)
	}
}
