package quant

import (
	"math"
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
)

// exactFor returns the exact kernel a QuantKind lower-bounds.
func exactFor(kind metric.QuantKind) func(a, b []float64) float64 {
	switch kind {
	case metric.QuantL1:
		return metric.L1
	case metric.QuantL2:
		return metric.L2
	case metric.QuantLInf:
		return metric.LInf
	}
	panic("no exact kernel")
}

var kinds = []metric.QuantKind{metric.QuantL1, metric.QuantL2, metric.QuantLInf}

// genVectors builds a dataset with deliberately nasty per-dimension
// scales: huge magnitudes, tiny ranges, constant dimensions and
// sign-crossing ranges, to exercise the float-safety margins.
func genVectors(rng *rand.Rand, n, dim int) [][]float64 {
	center := make([]float64, dim)
	width := make([]float64, dim)
	for j := range center {
		switch j % 4 {
		case 0: // unit scale
			center[j], width[j] = rng.Float64()*2-1, 1
		case 1: // huge offset, small range
			center[j], width[j] = (rng.Float64()*2-1)*1e9, 1e-3
		case 2: // constant dimension
			center[j], width[j] = rng.Float64()*10, 0
		default: // wide sign-crossing range
			center[j], width[j] = 0, 1e4
		}
	}
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = center[j] + (rng.Float64()*2-1)*width[j]
		}
		out[i] = v
	}
	return out
}

// TestLowerBoundNeverExceedsExact is the property test of the
// pre-filter's whole contract: for random datasets and queries, across
// both representations and all three metric shapes, the reported lower
// bound never exceeds the exact distance, and a positive PruneAt
// decision never fires at a bound the exact distance does not exceed.
func TestLowerBoundNeverExceedsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, mode := range []Mode{SQ8, F32} {
		for _, kind := range kinds {
			exact := exactFor(kind)
			for _, dim := range []int{1, 3, 8, 20, 50} {
				items := genVectors(rng, 64, dim)
				q, err := Build(kind, mode, [][][]float64{items})
				if err != nil {
					t.Fatalf("%v/%v dim=%d: Build: %v", mode, kind, dim, err)
				}
				var codes []byte
				var f32s []float32
				if mode == SQ8 {
					codes = q.Codes[0]
				} else {
					f32s = q.F32s[0]
				}
				var p Prepared
				for qi := 0; qi < 8; qi++ {
					query := genVectors(rng, 1, dim)[0]
					q.Set.Prepare(&p, query)
					for i, v := range items {
						d := exact(query, v)
						lb := q.Set.LowerBoundAt(&p, codes, f32s, i)
						if lb > d {
							t.Fatalf("%v/%v dim=%d item %d: lower bound %v exceeds exact %v", mode, kind, dim, i, lb, d)
						}
						// Prune decisions must be certificates: pruned ⟹ exact > bound.
						for _, bound := range []float64{0, d * 0.5, d * 0.999999, d, d * 1.5, math.Inf(1)} {
							if q.Set.PruneAt(&p, codes, f32s, i, bound) && d <= bound {
								t.Fatalf("%v/%v dim=%d item %d: pruned at bound %v but exact is %v", mode, kind, dim, i, bound, d)
							}
						}
					}
				}
			}
		}
	}
}

// TestPruneActuallyPrunes guards against the filter silently degrading
// to a no-op: with tight SQ8 cells on a well-scaled dataset, far
// candidates at a small bound must be pruned nearly always.
func TestPruneActuallyPrunes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	dim := 20
	items := make([][]float64, 256)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	for _, mode := range []Mode{SQ8, F32} {
		q, err := Build(metric.QuantL2, mode, [][][]float64{items})
		if err != nil {
			t.Fatal(err)
		}
		var codes []byte
		var f32s []float32
		if mode == SQ8 {
			codes = q.Codes[0]
		} else {
			f32s = q.F32s[0]
		}
		var p Prepared
		query := make([]float64, dim)
		for j := range query {
			query[j] = rng.Float64()
		}
		q.Set.Prepare(&p, query)
		pruned := 0
		for i, v := range items {
			if metric.L2(query, v) < 0.3 {
				continue
			}
			if q.Set.PruneAt(&p, codes, f32s, i, 0.3) {
				pruned++
			}
		}
		if pruned < len(items)/2 {
			t.Fatalf("%v: pruned only %d of %d far candidates", mode, pruned, len(items))
		}
	}
}

// FuzzPruneSoundness drives the SQ8 and F32 prune decisions from fuzzed
// scalar inputs: whatever the coordinates, a prune must certify that
// the exact distance exceeds the bound.
func FuzzPruneSoundness(f *testing.F) {
	f.Add(0.25, 0.75, 0.5, 0.3, uint8(2))
	f.Add(1e9, -1e9, 0.0, 1.0, uint8(0))
	f.Add(0.1, 0.1000001, 0.1, 0.0, uint8(1))
	f.Fuzz(func(t *testing.T, a, b, qc, bound float64, kindSel uint8) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(qc) || math.IsInf(qc, 0) || math.IsNaN(bound) {
			t.Skip()
		}
		kind := kinds[int(kindSel)%len(kinds)]
		exact := exactFor(kind)
		items := [][]float64{{a, b}, {b, a}, {a, a}}
		query := []float64{qc, qc}
		for _, mode := range []Mode{SQ8, F32} {
			q, err := Build(kind, mode, [][][]float64{items})
			if err != nil {
				continue // unquantizable input (e.g. f32 overflow) is a valid off outcome
			}
			var p Prepared
			q.Set.Prepare(&p, query)
			for i, v := range items {
				var codes []byte
				var f32s []float32
				if mode == SQ8 {
					codes = q.Codes[0]
				} else {
					f32s = q.F32s[0]
				}
				if q.Set.PruneAt(&p, codes, f32s, i, bound) && exact(query, v) <= bound {
					t.Fatalf("%v/%v: pruned %v at bound %v but exact is %v", mode, kind, v, bound, exact(query, v))
				}
			}
		}
	})
}

// TestBuildRejects pins the inputs Build must refuse, which callers
// rely on to fall back to the unfiltered path.
func TestBuildRejects(t *testing.T) {
	ok := [][][]float64{{{1, 2}, {3, 4}}}
	cases := []struct {
		name   string
		kind   metric.QuantKind
		mode   Mode
		groups [][][]float64
	}{
		{"none kind", metric.QuantNone, SQ8, ok},
		{"off mode", metric.QuantL2, Off, ok},
		{"empty", metric.QuantL2, SQ8, nil},
		{"dim mismatch", metric.QuantL2, SQ8, [][][]float64{{{1, 2}, {1, 2, 3}}}},
		{"nan", metric.QuantL2, SQ8, [][][]float64{{{math.NaN(), 2}}}},
		{"inf", metric.QuantL2, F32, [][][]float64{{{math.Inf(1), 2}}}},
		{"f32 overflow", metric.QuantL2, F32, [][][]float64{{{1e300, 2}}}},
	}
	for _, c := range cases {
		if _, err := Build(c.kind, c.mode, c.groups); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
	if _, err := Build(metric.QuantL2, SQ8, [][][]float64{{{1e300, 2}}}); err != nil {
		t.Errorf("sq8 accepts large finite values: %v", err)
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("zstd"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}
