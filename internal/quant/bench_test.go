package quant

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
)

func benchData(dim, n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewPCG(1, 2))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.Float64()
	}
	return items, q
}

func BenchmarkPrepareSQ8(b *testing.B) {
	for _, dim := range []int{20, 50} {
		items, q := benchData(dim, 256)
		qz, err := Build(metric.QuantL2, SQ8, [][][]float64{items})
		if err != nil {
			b.Fatal(err)
		}
		var p Prepared
		b.Run(map[int]string{20: "dim20", 50: "dim50"}[dim], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qz.Set.Prepare(&p, q)
			}
		})
	}
}

func BenchmarkPruneSQ8(b *testing.B) {
	items, q := benchData(20, 1024)
	qz, err := Build(metric.QuantL2, SQ8, [][][]float64{items})
	if err != nil {
		b.Fatal(err)
	}
	var p Prepared
	qz.Set.Prepare(&p, q)
	codes := qz.Codes[0]
	b.ResetTimer()
	pruned := 0
	for i := 0; i < b.N; i++ {
		if qz.Set.PruneAt(&p, codes, nil, i&1023, 0.5) {
			pruned++
		}
	}
	_ = pruned
}

func BenchmarkExactL2UpTo(b *testing.B) {
	items, q := benchData(20, 1024)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += metric.L2UpTo(q, items[i&1023], 0.5)
	}
	_ = acc
}

func BenchmarkPruneF32(b *testing.B) {
	items, q := benchData(20, 1024)
	qz, err := Build(metric.QuantL2, F32, [][][]float64{items})
	if err != nil {
		b.Fatal(err)
	}
	var p Prepared
	qz.Set.Prepare(&p, q)
	f32s := qz.F32s[0]
	b.ResetTimer()
	pruned := 0
	for i := 0; i < b.N; i++ {
		if qz.Set.PruneAt(&p, nil, f32s, i&1023, 0.5) {
			pruned++
		}
	}
	_ = pruned
}
