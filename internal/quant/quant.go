// Package quant builds small companion representations of []float64
// datasets — SQ8 byte codes or float32 copies — together with
// guaranteed lower-bound distance kernels over them, so leaf scans can
// reject most candidates from 1/8th (SQ8) or 1/2 (f32) of the memory
// traffic before touching the exact f64 vectors.
//
// The pre-filter is decision-preserving by construction: a candidate
// is skipped only when its lower bound certifies that the exact
// float64 kernel would report a distance strictly above the caller's
// threshold. Query results, result order, SearchStats and distance
// counts are therefore byte-identical with the filter on or off —
// callers charge a skipped candidate exactly as they charge an
// abandoned DistanceUpTo call (one computation), because the skip is
// an abandonment certificate, just a cheaper one.
//
// # SQ8 lower bounds
//
// Training scans the dataset once per dimension for [lo_j, hi_j] and
// splits the range into 256 cells of width step_j. Encoding stores the
// cell index; the kernel knows the true coordinate lies inside the
// cell, so the distance from the query coordinate to the cell interval
// is a per-dimension lower bound (interval arithmetic), aggregated by
// the metric's QuantKind: summed for L1, summed in squared space for
// L2, maxed for L∞.
//
// Floating-point safety is handled in two layers. Encoding nudges the
// cell index with the same float expressions the kernel evaluates, so
// cell membership holds in float arithmetic up to a few ulps; a
// per-dimension absolute margin eta_j (a small multiple of the
// dimension's magnitude ulp) is subtracted from every contribution to
// absorb that residue. Accumulation error is relative and absorbed by
// deflating comparisons: the filter rejects only when the accumulated
// bound exceeds threshold·(1+slack), with slack sized to dominate
// every rounding term (see slackFor). The float32 contribution tables
// are rounded toward zero, so table lookups never overstate.
//
// # Float32 lower bounds
//
// The f32 companion stores float32(v). Training measures the actual
// per-dimension representation error ferr_j = max_i |v_ij −
// float64(float32(v_ij))|, and the kernel uses |q_j − w_j| − ferr_j as
// the per-dimension bound — the rounding-error-compensated form. The
// same relative slack covers accumulation.
package quant

import (
	"errors"
	"fmt"
	"math"

	"mvptree/internal/metric"
)

// Mode selects the companion representation.
type Mode uint8

const (
	// Off disables the quantized pre-filter.
	Off Mode = iota
	// SQ8 stores one byte per coordinate: per-dimension min/max scalar
	// quantization into 256 cells. Smallest representation, loosest
	// bounds; wins when scans are memory-bound.
	SQ8
	// F32 stores one float32 per coordinate. Half the traffic of the
	// exact vectors with bounds tight to ~1e-7 relative, so almost
	// every prunable candidate is pruned.
	F32
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case SQ8:
		return "sq8"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Modes lists every valid Mode, the source of truth for flag parsing
// and table tests.
var Modes = []Mode{Off, SQ8, F32}

// ParseMode maps a Mode's String form back to the value.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if m.String() == s {
			return m, nil
		}
	}
	return Off, fmt.Errorf("quant: unknown mode %q (want off, sq8 or f32)", s)
}

// Set is a trained quantization: the per-dataset parameters shared by
// every encoded block plus the metric shape the lower bounds aggregate
// under. It is immutable after Build and safe for concurrent queries.
type Set struct {
	kind metric.QuantKind
	mode Mode
	dim  int

	// SQ8: cell c of dimension j spans [lo+c·step, lo+(c+1)·step];
	// eta is the absolute float-slop margin subtracted from every
	// contribution (see the package comment).
	lo, step, eta []float64

	// F32: measured max representation error per dimension.
	ferr []float64

	// slack deflates threshold comparisons to absorb relative
	// accumulation error; fixed at training from the dimension.
	slack float64
}

// Kind reports the metric aggregation shape the set serves.
func (s *Set) Kind() metric.QuantKind { return s.kind }

// ModeOf reports the companion representation the set was trained for.
func (s *Set) ModeOf() Mode { return s.mode }

// Dim reports the vector dimensionality; every encoded block holds
// Dim() entries per item.
func (s *Set) Dim() int { return s.dim }

// slackFor sizes the relative comparison slack: a 1e-6 base plus a
// per-dimension term dominating every rounding source — float32 table
// accumulation (≤ dim·2⁻²⁴ ≈ dim·6e-8 relative), the couple of
// correctly-rounded f64 ops per term, and the exact kernel's own
// summation error on the other side of the comparison. Only true
// distances within a 1e-6 relative band of the threshold escape
// pruning because of it, a negligible power loss.
func slackFor(dim int) float64 { return 1e-6 + float64(dim)*1e-7 }

// ulp returns the distance from |x| to the next float64 toward +Inf.
func ulp(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}

// Quantized is the result of Build: the trained Set plus per-group
// views into one contiguous arena (Codes for SQ8, F32s for F32),
// parallel to the input groups. Views are len(group)·Dim entries; the
// representation of group item i starts at i·Dim.
type Quantized struct {
	Set   *Set
	Codes [][]byte
	F32s  [][]float32
}

// Build trains a Set over every vector in groups and encodes each
// group into a shared arena. It fails — callers should then leave the
// pre-filter off — when kind is QuantNone, mode is Off, the dataset is
// empty or dimensionally inconsistent, any coordinate is non-finite,
// or (F32 mode) a coordinate overflows float32.
func Build(kind metric.QuantKind, mode Mode, groups [][][]float64) (*Quantized, error) {
	if kind == metric.QuantNone {
		return nil, errors.New("quant: metric has no quantized lower-bound shape")
	}
	if mode != SQ8 && mode != F32 {
		return nil, fmt.Errorf("quant: cannot build arenas for mode %v", mode)
	}
	dim, total := -1, 0
	for _, g := range groups {
		for _, v := range g {
			if dim == -1 {
				dim = len(v)
			} else if len(v) != dim {
				return nil, fmt.Errorf("quant: inconsistent dimensions %d and %d", dim, len(v))
			}
			total++
		}
	}
	if total == 0 || dim <= 0 {
		return nil, errors.New("quant: no vectors to quantize")
	}
	s := &Set{kind: kind, mode: mode, dim: dim, slack: slackFor(dim)}
	q := &Quantized{Set: s}
	if err := s.train(groups); err != nil {
		return nil, err
	}
	switch mode {
	case SQ8:
		arena := make([]byte, total*dim)
		off := 0
		for _, g := range groups {
			view := arena[off : off+len(g)*dim : off+len(g)*dim]
			for i, v := range g {
				s.encodeSQ8(v, view[i*dim:(i+1)*dim])
			}
			q.Codes = append(q.Codes, view)
			off += len(g) * dim
		}
	case F32:
		arena := make([]float32, total*dim)
		off := 0
		for _, g := range groups {
			view := arena[off : off+len(g)*dim : off+len(g)*dim]
			for i, v := range g {
				for j, x := range v {
					view[i*dim+j] = float32(x)
				}
			}
			q.F32s = append(q.F32s, view)
			off += len(g) * dim
		}
	}
	return q, nil
}

// train fits the per-dimension parameters over every vector.
func (s *Set) train(groups [][][]float64) error {
	dim := s.dim
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	ferr := make([]float64, dim)
	for _, g := range groups {
		for _, v := range g {
			for j, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return errors.New("quant: dataset has non-finite coordinates")
				}
				if x < lo[j] {
					lo[j] = x
				}
				if x > hi[j] {
					hi[j] = x
				}
				if s.mode == F32 {
					w := float32(x)
					if math.IsInf(float64(w), 0) {
						return errors.New("quant: coordinate overflows float32")
					}
					if e := math.Abs(x - float64(w)); e > ferr[j] {
						ferr[j] = e
					}
				}
			}
		}
	}
	if s.mode == F32 {
		s.ferr = ferr
		return nil
	}
	step := make([]float64, dim)
	eta := make([]float64, dim)
	for j := range step {
		scale := math.Max(math.Abs(lo[j]), math.Abs(hi[j]))
		if hi[j] > lo[j] {
			st := (hi[j] - lo[j]) / 256
			// The top cell must cover hi under the kernel's own float
			// expressions (cellLo(255)+step ≥ hi); widen the step until
			// it does. The ulp floor makes the nextafter loop converge
			// in a handful of iterations; the doubling fallback bounds
			// it absolutely.
			if u := ulp(scale); st < u {
				st = u
			}
			for i := 0; lo[j]+255*st+st < hi[j]; i++ {
				if i < 64 {
					st = math.Nextafter(st, math.Inf(1))
				} else {
					st *= 2
				}
			}
			step[j] = st
		}
		// Cell membership is enforced with the kernel's own float
		// expressions up to a few ulps of the dimension's magnitude
		// (see encodeSQ8); 8 ulps of the widest value a cell bound can
		// take absorbs the residue.
		eta[j] = 8 * ulp(scale+256*step[j])
	}
	s.lo, s.step, s.eta = lo, step, eta
	return nil
}

// encodeSQ8 writes v's cell indices into dst. The initial index is the
// arithmetic guess; the nudge loops re-evaluate the exact expressions
// the contribution table uses (lo + c·step and +step), so membership
// holds in float arithmetic up to the ulp residue eta absorbs. The
// bottom cell's lower bound is exactly lo (the true minimum) and
// training guaranteed the top cell covers hi, so the extremes are
// exact.
func (s *Set) encodeSQ8(v []float64, dst []byte) {
	for j, x := range v {
		lo, st := s.lo[j], s.step[j]
		c := 0
		if st > 0 {
			c = int((x - lo) / st)
			if c < 0 {
				c = 0
			} else if c > 255 {
				c = 255
			}
			for c > 0 && lo+float64(c)*st > x {
				c--
			}
			for c < 255 && lo+float64(c)*st+st < x {
				c++
			}
		}
		dst[j] = byte(c)
	}
}
