package mvp

import (
	"mvptree/internal/index"
)

// KNN returns the k indexed items nearest to q in ascending distance
// order, using best-first branch-and-bound traversal. Subtrees are
// expanded in order of their triangle-inequality lower bound; leaf
// points are additionally filtered through their stored D1/D2 and PATH
// distances, so the pre-computed distances pay off for nearest-neighbor
// queries exactly as they do for range queries. (Nearest-neighbor search
// over vp-tree-style structures follows [Chi94]; the paper lists kNN as
// a straightforward variation of the near-neighbor query.)
//
// KNN delegates to KNNWithStats so there is exactly one traversal
// implementation; the two are guaranteed to agree in both results and
// distance computations.
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	out, _ := t.KNNWithStats(q, k)
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
