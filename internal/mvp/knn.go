package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// KNN returns the k indexed items nearest to q in ascending distance
// order, using best-first branch-and-bound traversal. Subtrees are
// expanded in order of their triangle-inequality lower bound; leaf
// points are additionally filtered through their stored D1/D2 and PATH
// distances, so the pre-computed distances pay off for nearest-neighbor
// queries exactly as they do for range queries. (Nearest-neighbor search
// over vp-tree-style structures follows [Chi94]; the paper lists kNN as
// a straightforward variation of the near-neighbor query.)
func (t *Tree[T]) KNN(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKBest[T](k)
	type pending struct {
		n     *node[T]
		qpath []float64
	}
	var queue heapx.NodeQueue[pending]
	queue.PushNode(pending{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		n, qpath := pn.n, pn.qpath
		if n.isLeaf() {
			t.knnLeaf(n, q, qpath, best)
			continue
		}
		d1 := t.dist.Distance(q, n.sv1)
		best.Push(n.sv1, d1)
		d2 := t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
		if len(qpath) < t.p {
			// Copy before extending: sibling queue entries share the
			// parent's backing array.
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			ext = append(ext, d1)
			if len(ext) < t.p {
				ext = append(ext, d2)
			}
			qpath = ext
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if !best.Accepts(max(lb1, bound)) {
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(bound, lb1, intervalGap(d2, lo2, hi2))
				if best.Accepts(lb) {
					queue.PushNode(pending{c, qpath}, lb)
				}
			}
		}
	}
	return best.Sorted()
}

func (t *Tree[T]) knnLeaf(n *node[T], q T, qpath []float64, best *heapx.KBest[T]) {
	if !n.hasSV1 {
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	best.Push(n.sv1, d1)
	var d2 float64
	if n.hasSV2 {
		d2 = t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
	}
	for i, it := range n.items {
		// Lower-bound the true distance by every pre-computed
		// distance before paying for the real computation.
		lb := abs(d1 - n.d1[i])
		if n.hasSV2 {
			if b := abs(d2 - n.d2[i]); b > lb {
				lb = b
			}
		}
		path := n.paths[i]
		for l := 0; l < len(path) && l < len(qpath); l++ {
			if b := abs(qpath[l] - path[l]); b > lb {
				lb = b
			}
		}
		if best.Accepts(lb) {
			best.Push(it, t.dist.Distance(q, it))
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
