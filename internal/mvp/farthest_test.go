package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeFartherMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 2))
	w := testutil.NewVectorWorkload(rng, 400, 8, 10, metric.L2)
	radii := []float64{0, 0.3, 0.8, 1.2, 2.0, 10}
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRangeFarther(t, "mvpt", tree, w, radii)
	}
}

func TestKFarthestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 8, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckKFarthest(t, "mvpt", tree, w, []int{1, 2, 5, 17, 300, 1000})
	}
}

func TestRangeFartherComplement(t *testing.T) {
	// Range(q, r) and RangeFarther(q, r+ε) partition the dataset when
	// no point lies in (r, r+ε]; with ε→0 they overlap exactly on
	// points at distance r. Check the partition property on a grid.
	rng := rand.New(rand.NewPCG(33, 2))
	w := testutil.NewVectorWorkload(rng, 500, 5, 5, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 10, PathLength: 4, Build: Build{Seed: 9}})
	for _, q := range w.Queries {
		for _, r := range []float64{0.2, 0.5, 1.0} {
			near := tree.Range(q, r)
			seen := map[int]int{}
			for _, it := range near {
				seen[it]++
			}
			far := tree.RangeFarther(q, r)
			for _, it := range far {
				seen[it]++
			}
			// Points exactly at distance r appear in both sets; all
			// others exactly once.
			total := 0
			for it, c := range seen {
				switch c {
				case 1:
					total++
				case 2:
					if w.Dist(q, it) != r {
						t.Fatalf("item %d double-counted but not at distance r", it)
					}
					total++
				default:
					t.Fatalf("item %d appeared %d times", it, c)
				}
			}
			if total != len(w.Items) {
				t.Fatalf("near ∪ far covers %d of %d items at r=%g", total, len(w.Items), r)
			}
		}
	}
}

func TestRangeFartherUsesFewDistancesAtTinyRadius(t *testing.T) {
	// With r ≤ tiny, nearly every subtree is provably far, so the
	// collect-all fast path answers with almost no computations.
	rng := rand.New(rand.NewPCG(34, 2))
	w := testutil.NewVectorWorkload(rng, 2000, 8, 1, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 3}})
	c.Reset()
	got := tree.RangeFarther(w.Queries[0], 1e-9)
	if len(got) != 2000 {
		t.Fatalf("RangeFarther(tiny) = %d items", len(got))
	}
	if c.Count() > 200 {
		t.Errorf("RangeFarther(tiny) used %d distance computations; fast path broken", c.Count())
	}
	// r ≤ 0 must use zero computations.
	c.Reset()
	if got := tree.RangeFarther(w.Queries[0], 0); len(got) != 2000 || c.Count() != 0 {
		t.Errorf("RangeFarther(0): %d items, %d computations", len(got), c.Count())
	}
}

func TestKFarthestEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {5}, {9}}, dist, Options{LeafCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KFarthest([]float64{0}, 0); got != nil {
		t.Errorf("KFarthest(k=0) = %v", got)
	}
	got := tree.KFarthest([]float64{0}, 2)
	if len(got) != 2 || got[0].Dist != 9 || got[1].Dist != 5 {
		t.Errorf("KFarthest = %v", got)
	}
	empty, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.KFarthest([]float64{0}, 3); got != nil {
		t.Errorf("empty KFarthest = %v", got)
	}
	if got := empty.RangeFarther([]float64{0}, 1); got != nil {
		t.Errorf("empty RangeFarther = %v", got)
	}
}
