package mvp

import "fmt"

// Validate recomputes every stored distance and partition bound in the
// tree and verifies the structural invariants the search algorithms
// rely on: leaf D1/D2 arrays and PATH prefixes equal to fresh metric
// evaluations, and every point inside its shells' closed intervals.
//
// A failure means either the tree was built with a different metric
// than the one now wired in (the classic persistence mistake — Load
// cannot detect it) or the metric is not deterministic. Validate costs
// O(n·(log n + p)) distance computations through the tree's Counter; it
// is a diagnostic, not something to run per query.
func (t *Tree[T]) Validate() error {
	return t.validateNode(t.root, nil)
}

func (t *Tree[T]) validateNode(n *node[T], ancestors []T) error {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		for i, it := range n.items {
			if got := t.dist.Distance(it, n.sv1); got != n.d1[i] {
				return fmt.Errorf("mvp: leaf D1[%d] = %g, metric now yields %g (wrong metric for this tree?)", i, n.d1[i], got)
			}
			if got := t.dist.Distance(it, n.sv2); got != n.d2[i] {
				return fmt.Errorf("mvp: leaf D2[%d] = %g, metric now yields %g", i, n.d2[i], got)
			}
			path := n.path(i)
			if len(path) > t.p {
				return fmt.Errorf("mvp: PATH length %d exceeds p = %d", len(path), t.p)
			}
			if want := min(t.p, len(ancestors)); len(path) != want {
				return fmt.Errorf("mvp: PATH length %d, want %d", len(path), want)
			}
			for l, stored := range path {
				if got := t.dist.Distance(it, ancestors[l]); got != stored {
					return fmt.Errorf("mvp: PATH[%d] = %g, metric now yields %g", l, stored, got)
				}
			}
		}
		return nil
	}
	if len(n.cut2) != len(n.children) {
		return fmt.Errorf("mvp: internal node has %d cut2 rows for %d child rows", len(n.cut2), len(n.children))
	}
	next := append(append([]T(nil), ancestors...), n.sv1, n.sv2)
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		for h, c := range row {
			lo2, hi2 := shellBounds(n.cut2[g], h)
			var bad error
			t.forEachPoint(c, func(pt T) {
				if bad != nil {
					return
				}
				if d := t.dist.Distance(pt, n.sv1); d < lo1 || d > hi1 {
					bad = fmt.Errorf("mvp: point at distance %g from first vantage point outside shell [%g, %g]", d, lo1, hi1)
					return
				}
				if d := t.dist.Distance(pt, n.sv2); d < lo2 || d > hi2 {
					bad = fmt.Errorf("mvp: point at distance %g from second vantage point outside sub-shell [%g, %g]", d, lo2, hi2)
				}
			})
			if bad != nil {
				return bad
			}
			if err := t.validateNode(c, next); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *Tree[T]) forEachPoint(n *node[T], f func(T)) {
	if n == nil {
		return
	}
	if n.hasSV1 {
		f(n.sv1)
	}
	if n.hasSV2 {
		f(n.sv2)
	}
	if n.isLeaf() {
		for _, it := range n.items {
			f(it)
		}
		return
	}
	for _, row := range n.children {
		for _, c := range row {
			t.forEachPoint(c, f)
		}
	}
}
