package mvp

import (
	"math"

	"mvptree/internal/obs"
)

// knnBatch runs the exact kNN slots of a batch in lockstep rounds.
// Each round, every still-active query pops exactly one node from its
// private queue — the same "process one node fully per pop" step the
// sequential best-first loop takes — then the round's pops are grouped
// by node and each group is processed with blocked kernel calls. No
// state is shared between queries (heap, queue, PATH arena, cascade
// cache and quantized prep are all per-slot), so each query's pop
// sequence, τ evolution, pushes and stats are exactly its sequential
// ones regardless of how rounds interleave the group.
func (t *Tree[T]) knnBatch(bs *batchScratch[T]) {
	rounds := append(bs.rounds[:0], bs.knnLst...)
	bs.rounds = rounds
	nGroups := 0
	var vis1 []knnVisit
	for len(rounds) > 0 {
		// Lone survivor: with one active query no sharing is possible, so
		// drain its queue in the sequential loop shape without any round
		// or grouping bookkeeping. The pop sequence is unchanged — it is
		// exactly what the rounds would have produced.
		if len(rounds) == 1 {
			j := rounds[0]
			sl := &bs.knn[j]
			if vis1 == nil {
				vis1 = make([]knnVisit, 1)
			}
			for {
				pn, bound, ok := sl.queue.PopNode()
				if !ok {
					break
				}
				tau := sl.best.Threshold()
				if bound >= tau {
					break
				}
				v := knnVisit{slot: j, off: pn.off, plen: pn.plen, bound: bound, tau: tau}
				if pn.n.isLeaf() {
					t.knnBatchLeaf1(pn.n, v, bs)
				} else {
					vis1[0] = v
					t.knnBatchInternal(pn.n, vis1, bs)
				}
			}
			return
		}
		w := 0
		for _, j := range rounds {
			sl := &bs.knn[j]
			pn, bound, ok := sl.queue.PopNode()
			if !ok {
				continue // queue drained: this query is finished
			}
			tau := sl.best.Threshold()
			if bound >= tau {
				continue // sequential break: the rest of the queue is dead
			}
			rounds[w] = j
			w++
			gi, seen := bs.gMap[pn.n]
			if !seen {
				gi = int32(nGroups)
				bs.gMap[pn.n] = gi
				if nGroups == len(bs.gNodes) {
					bs.gNodes = append(bs.gNodes, pn.n)
					bs.gVisits = append(bs.gVisits, nil)
				} else {
					bs.gNodes[nGroups] = pn.n
					bs.gVisits[nGroups] = bs.gVisits[nGroups][:0]
				}
				nGroups++
			}
			bs.gVisits[gi] = append(bs.gVisits[gi], knnVisit{slot: j, off: pn.off, plen: pn.plen, bound: bound, tau: tau})
		}
		rounds = rounds[:w]
		for gi := 0; gi < nGroups; gi++ {
			n := bs.gNodes[gi]
			vis := bs.gVisits[gi]
			if n.isLeaf() {
				t.knnBatchLeaf(n, vis, bs)
			} else {
				t.knnBatchInternal(n, vis, bs)
			}
		}
		clear(bs.gMap)
		nGroups = 0
	}
}

// knnBatchInternal processes one internal node for every group member,
// mirroring the internal-node body of KNNWithStatsBound (with no
// external bound: extTau is +Inf and nothing is published). Vantage
// bounds use each member's τ snapshot from its pop, exactly as the
// sequential loop reads τ once per node.
func (t *Tree[T]) knnBatchInternal(n *node[T], vis []knnVisit, bs *batchScratch[T]) {
	nv := len(vis)
	for _, v := range vis {
		bs.stats[v.slot].NodesVisited++
		t.TraceNode(false)
	}
	pts := bs.pts[:0]
	for _, v := range vis {
		pts = append(pts, bs.qs[v.slot])
	}
	bs.pts = pts
	blk := t.dist.BlockKernel()
	dv1 := growF(bs.dv1, nv)
	bs.dv1 = dv1
	dv2 := growF(bs.dv2, nv)
	bs.dv2 = dv2

	// Singleton groups — the common case once frontiers diverge — use
	// the direct one-to-one kernel: bit-identical to a one-element
	// blocked call by the block contract, minus its checks and dispatch.
	kernel := t.dist.Kernel()

	// plen is a function of tree position, identical for every member.
	if int(vis[0].plen) >= t.p {
		bounds := growF(bs.bounds, nv)
		bs.bounds = bounds
		for i, v := range vis {
			if cc := bs.ccs[v.slot]; cc != nil && n.cas1 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = v.tau + n.cut1Max
			}
		}
		if nv == 1 {
			dv1[0] = kernel(pts[0], n.sv1, bounds[0])
		} else {
			blk(n.sv1, pts, bounds, dv1)
		}
		if n.cas1 != 0 {
			for i, v := range vis {
				if cc := bs.ccs[v.slot]; cc != nil && cc.Wants() {
					cc.Register(n.cas1-1, dv1[i])
				}
			}
		}
		for i, v := range vis {
			if cc := bs.ccs[v.slot]; cc != nil && n.cas2 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = v.tau + n.cut2Max
			}
		}
		if nv == 1 {
			dv2[0] = kernel(pts[0], n.sv2, bounds[0])
		} else {
			blk(n.sv2, pts, bounds, dv2)
		}
		if n.cas2 != 0 {
			for i, v := range vis {
				if cc := bs.ccs[v.slot]; cc != nil && cc.Wants() {
					cc.Register(n.cas2-1, dv2[i])
				}
			}
		}
	} else {
		if nv == 1 {
			inf := math.Inf(1)
			dv1[0] = kernel(pts[0], n.sv1, inf)
			dv2[0] = kernel(pts[0], n.sv2, inf)
		} else {
			blk(n.sv1, pts, nil, dv1)
			blk(n.sv2, pts, nil, dv2)
		}
		for i, v := range vis {
			cc := bs.ccs[v.slot]
			if cc == nil {
				continue
			}
			if n.cas1 != 0 && cc.Wants() {
				cc.Register(n.cas1-1, dv1[i])
			}
			if n.cas2 != 0 && cc.Wants() {
				cc.Register(n.cas2-1, dv2[i])
			}
		}
	}
	t.dist.Add(int64(2 * nv))

	for i, v := range vis {
		sl := &bs.knn[v.slot]
		s := &bs.stats[v.slot]
		d1, d2 := dv1[i], dv2[i]
		if d1 <= v.tau+n.cut1Max {
			sl.best.Push(n.sv1, d1)
		}
		if d2 <= v.tau+n.cut2Max {
			sl.best.Push(n.sv2, d2)
		}
		s.VantagePoints += 2
		t.TraceDistance(2)
		off, plen := v.off, v.plen
		if int(plen) < t.p {
			noff := int32(len(sl.arena))
			sl.arena = append(sl.arena, sl.arena[off:off+plen]...)
			sl.arena = append(sl.arena, d1)
			if int(plen)+1 < t.p {
				sl.arena = append(sl.arena, d2)
			}
			off, plen = noff, int32(len(sl.arena))-noff
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if gb := max(lb1, v.bound); !sl.best.Accepts(gb) {
				s.ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(v.bound, lb1, intervalGap(d2, lo2, hi2))
				if sl.best.Accepts(lb) {
					sl.queue.PushNode(pendingRef[T]{n: c, off: off, plen: plen}, lb)
				} else {
					s.ShellsPruned++
					t.TracePrune(obs.FilterShell, 1)
				}
			}
		}
	}
}

// knnBatchLeaf processes one leaf for every group member, mirroring
// knnLeafStats: blocked vantage evaluations (each member's bound read
// from its own heap at the sequential moment — b2 after that member's
// sv1 push), then an item-major candidate scan where each member
// applies its D/PATH/cascade/quantized filters in order and one blocked
// call evaluates the survivors against each member's current τ.
func (t *Tree[T]) knnBatchLeaf(n *node[T], vis []knnVisit, bs *batchScratch[T]) {
	if len(vis) == 1 {
		t.knnBatchLeaf1(n, vis[0], bs)
		return
	}
	for _, v := range vis {
		s := &bs.stats[v.slot]
		s.NodesVisited++
		t.TraceNode(true)
		s.LeavesVisited++
	}
	if !n.hasSV1 {
		return
	}
	nv := len(vis)
	blk := t.dist.BlockKernel()
	pts := bs.pts[:0]
	for _, v := range vis {
		pts = append(pts, bs.qs[v.slot])
	}
	bs.pts = pts
	bounds := growF(bs.bounds, nv)
	bs.bounds = bounds
	vb := growF(bs.vb, nv)
	bs.vb = vb
	dv1 := growF(bs.dv1, nv)
	bs.dv1 = dv1
	dv2 := growF(bs.dv2, nv)
	bs.dv2 = dv2

	for i, v := range vis {
		b1 := bs.knn[v.slot].best.Threshold() + n.maxD1
		vb[i] = b1
		if cc := bs.ccs[v.slot]; cc != nil && n.cas1 != 0 && cc.Wants() {
			bounds[i] = math.Inf(1)
		} else {
			bounds[i] = b1
		}
	}
	blk(n.sv1, pts, bounds, dv1)
	for i, v := range vis {
		d1 := dv1[i]
		if cc := bs.ccs[v.slot]; cc != nil && n.cas1 != 0 && cc.Wants() {
			cc.Register(n.cas1-1, d1)
		}
		if d1 <= vb[i] {
			bs.knn[v.slot].best.Push(n.sv1, d1)
		}
		s := &bs.stats[v.slot]
		s.VantagePoints++
		t.TraceDistance(1)
	}
	vantages := 1
	if n.hasSV2 {
		for i, v := range vis {
			b2 := bs.knn[v.slot].best.Threshold() + n.maxD2
			vb[i] = b2
			if cc := bs.ccs[v.slot]; cc != nil && n.cas2 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = b2
			}
		}
		blk(n.sv2, pts, bounds, dv2)
		for i, v := range vis {
			d2 := dv2[i]
			if cc := bs.ccs[v.slot]; cc != nil && n.cas2 != 0 && cc.Wants() {
				cc.Register(n.cas2-1, d2)
			}
			if d2 <= vb[i] {
				bs.knn[v.slot].best.Push(n.sv2, d2)
			}
			s := &bs.stats[v.slot]
			s.VantagePoints++
			t.TraceDistance(1)
		}
		vantages = 2
	}

	for _, v := range vis {
		j := v.slot
		bs.fD[j], bs.fP[j], bs.fC[j], bs.fQ[j], bs.comp[j] = 0, 0, 0, 0, 0
	}
	items := n.items
	d1s := n.d1[:len(items)]
	d2s := n.d2
	hasSV2 := n.hasSV2
	if hasSV2 {
		d2s = d2s[:len(items)]
	}
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	hasQuant := qcodes != nil || qf32 != nil
	for i := range items {
		surv := bs.sslots[:0]
		spts := bs.spts[:0]
		sbounds := bs.sbounds[:0]
		for mi, v := range vis {
			j := v.slot
			sl := &bs.knn[j]
			lbD := abs(dv1[mi] - d1s[i])
			if hasSV2 {
				if b := abs(dv2[mi] - d2s[i]); b > lbD {
					lbD = b
				}
			}
			if !sl.best.Accepts(lbD) {
				bs.fD[j]++
				continue
			}
			lb := lbD
			qpath := sl.arena[v.off : v.off+v.plen]
			path := n.pathData[n.pathOff[i]:n.pathOff[i+1]]
			if len(path) > len(qpath) {
				path = path[:len(qpath)]
			}
			for l, pd := range path {
				if b := abs(qpath[l] - pd); b > lb {
					lb = b
				}
			}
			if !sl.best.Accepts(lb) {
				bs.fP[j]++
				continue
			}
			if cc := bs.ccs[j]; cc != nil && cc.Registered() > 0 {
				if clb := cas.LowerBound(cc, base+int32(i)); !sl.best.Accepts(clb) {
					bs.fC[j]++
					continue
				}
			}
			bs.comp[j]++
			cb := sl.best.Threshold()
			if hasQuant && bs.quantOn[j] && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, cb) {
				bs.fQ[j]++
				continue
			}
			surv = append(surv, j)
			spts = append(spts, bs.qs[j])
			sbounds = append(sbounds, cb)
		}
		bs.sslots, bs.spts, bs.sbounds = surv, spts, sbounds
		if len(surv) > 0 {
			sdv := growF(bs.sdv, len(surv))
			bs.sdv = sdv
			blk(items[i], spts, sbounds, sdv)
			for k, j := range surv {
				if d := sdv[k]; d <= sbounds[k] {
					bs.knn[j].best.Push(items[i], d)
				}
			}
		}
	}

	total := 0
	for _, v := range vis {
		j := v.slot
		total += vantages + bs.comp[j]
		s := &bs.stats[j]
		s.Candidates += len(items)
		s.FilteredByD += bs.fD[j]
		s.FilteredByPath += bs.fP[j]
		s.FilteredByCascade += bs.fC[j]
		s.Computed += bs.comp[j]
		bs.quantPruned[j] += bs.fQ[j]
		if bs.fD[j] > 0 {
			t.TracePrune(obs.FilterD, bs.fD[j])
		}
		if bs.fP[j] > 0 {
			t.TracePrune(obs.FilterPath, bs.fP[j])
		}
		if bs.fC[j] > 0 {
			t.TracePrune(obs.FilterCascade, bs.fC[j])
		}
		if bs.fQ[j] > 0 {
			t.TracePrune(obs.FilterQuantized, bs.fQ[j])
		}
		if bs.comp[j] > 0 {
			t.TraceDistance(bs.comp[j])
		}
	}
	t.dist.Add(int64(total))
}

// knnBatchLeaf1 is knnBatchLeaf for a singleton group. Once frontiers
// diverge, most lockstep rounds pop distinct nodes and every group has
// one member, where the gather/blocked-call scaffolding only costs.
// This path runs the same vantage evaluations and candidate filters in
// the same order with the direct one-to-one kernel — bit-identical to
// one-element blocked calls by the block contract — and settles stats
// and counts exactly as the group path does.
func (t *Tree[T]) knnBatchLeaf1(n *node[T], v knnVisit, bs *batchScratch[T]) {
	j := v.slot
	s := &bs.stats[j]
	s.NodesVisited++
	t.TraceNode(true)
	s.LeavesVisited++
	if !n.hasSV1 {
		return
	}
	sl := &bs.knn[j]
	best := sl.best
	kernel := t.dist.Kernel()
	q := bs.qs[j]
	cc := bs.ccs[j]

	b1 := best.Threshold() + n.maxD1
	kb1 := b1
	if cc != nil && n.cas1 != 0 && cc.Wants() {
		kb1 = math.Inf(1)
	}
	d1 := kernel(q, n.sv1, kb1)
	if cc != nil && n.cas1 != 0 && cc.Wants() {
		cc.Register(n.cas1-1, d1)
	}
	if d1 <= b1 {
		best.Push(n.sv1, d1)
	}
	s.VantagePoints++
	t.TraceDistance(1)
	vantages := 1
	var d2 float64
	hasSV2 := n.hasSV2
	if hasSV2 {
		b2 := best.Threshold() + n.maxD2
		kb2 := b2
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			kb2 = math.Inf(1)
		}
		d2 = kernel(q, n.sv2, kb2)
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			cc.Register(n.cas2-1, d2)
		}
		if d2 <= b2 {
			best.Push(n.sv2, d2)
		}
		s.VantagePoints++
		t.TraceDistance(1)
		vantages = 2
	}

	items := n.items
	d1s := n.d1[:len(items)]
	d2s := n.d2
	if hasSV2 {
		d2s = d2s[:len(items)]
	}
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	useQuant := bs.quantOn[j] && (qcodes != nil || qf32 != nil)
	hasCas := cc != nil && cc.Registered() > 0
	qpath := sl.arena[v.off : v.off+v.plen]
	fD, fP, fC, fQ, comp := 0, 0, 0, 0, 0
	for i, it := range items {
		lbD := abs(d1 - d1s[i])
		if hasSV2 {
			if b := abs(d2 - d2s[i]); b > lbD {
				lbD = b
			}
		}
		if !best.Accepts(lbD) {
			fD++
			continue
		}
		lb := lbD
		path := n.pathData[n.pathOff[i]:n.pathOff[i+1]]
		if len(path) > len(qpath) {
			path = path[:len(qpath)]
		}
		for l, pd := range path {
			if b := abs(qpath[l] - pd); b > lb {
				lb = b
			}
		}
		if !best.Accepts(lb) {
			fP++
			continue
		}
		if hasCas {
			if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) {
				fC++
				continue
			}
		}
		comp++
		cb := best.Threshold()
		if useQuant && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, cb) {
			fQ++
			continue
		}
		if d := kernel(q, it, cb); d <= cb {
			best.Push(it, d)
		}
	}

	s.Candidates += len(items)
	s.FilteredByD += fD
	s.FilteredByPath += fP
	s.FilteredByCascade += fC
	s.Computed += comp
	bs.quantPruned[j] += fQ
	if fD > 0 {
		t.TracePrune(obs.FilterD, fD)
	}
	if fP > 0 {
		t.TracePrune(obs.FilterPath, fP)
	}
	if fC > 0 {
		t.TracePrune(obs.FilterCascade, fC)
	}
	if fQ > 0 {
		t.TracePrune(obs.FilterQuantized, fQ)
	}
	if comp > 0 {
		t.TraceDistance(comp)
	}
	t.dist.Add(int64(vantages + comp))
}
