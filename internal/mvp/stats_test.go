package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestRangeWithStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 3))
	w := testutil.NewVectorWorkload(rng, 2000, 10, 10, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 9}})
	for _, q := range w.Queries {
		for _, r := range []float64{0.1, 0.4, 0.9} {
			c.Reset()
			out, s := tree.RangeWithStats(q, r)
			// The stats must reconcile exactly with the cost meter and
			// the result set.
			if got := int64(s.Computed + s.VantagePoints); got != c.Count() {
				t.Fatalf("r=%g: stats count %d distance computations, counter says %d", r, got, c.Count())
			}
			if s.Results != len(out) {
				t.Fatalf("r=%g: Results = %d, len(out) = %d", r, s.Results, len(out))
			}
			if s.Candidates != s.FilteredByD+s.FilteredByPath+s.Computed {
				t.Fatalf("r=%g: candidate accounting %d != %d+%d+%d",
					r, s.Candidates, s.FilteredByD, s.FilteredByPath, s.Computed)
			}
			if s.LeavesVisited > s.NodesVisited {
				t.Fatalf("r=%g: more leaves than nodes visited", r)
			}
		}
	}
}

func TestPathFilterActuallyFires(t *testing.T) {
	// On the paper's workload shape the PATH filter must exclude a
	// nontrivial share of candidates at small radii.
	rng := rand.New(rand.NewPCG(62, 3))
	w := testutil.NewVectorWorkload(rng, 4000, 20, 20, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 5}})
	var total SearchStats
	for _, q := range w.Queries {
		_, s := tree.RangeWithStats(q, 0.2)
		total.Candidates += s.Candidates
		total.FilteredByD += s.FilteredByD
		total.FilteredByPath += s.FilteredByPath
		total.Computed += s.Computed
	}
	if total.FilteredByPath == 0 {
		t.Error("PATH filter never fired on the paper workload")
	}
	if total.Computed*2 > total.Candidates {
		t.Errorf("filters passed %d of %d candidates at r=0.2; filtering too weak",
			total.Computed, total.Candidates)
	}
}

func TestStatsZeroOnDegenerateQueries(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {2}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, s := tree.RangeWithStats([]float64{0}, -1); out != nil || s != (SearchStats{}) {
		t.Errorf("negative radius: out=%v stats=%+v", out, s)
	}
	empty, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, s := empty.RangeWithStats([]float64{0}, 1); out != nil || s != (SearchStats{}) {
		t.Errorf("empty tree: out=%v stats=%+v", out, s)
	}
}

func TestKNNWithStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 3))
	w := testutil.NewVectorWorkload(rng, 2000, 10, 10, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 9}})
	for _, q := range w.Queries {
		for _, k := range []int{1, 5, 25} {
			c.Reset()
			out, s := tree.KNNWithStats(q, k)
			if got := int64(s.Computed + s.VantagePoints); got != c.Count() {
				t.Fatalf("k=%d: stats count %d, counter %d", k, got, c.Count())
			}
			if s.Results != len(out) {
				t.Fatalf("k=%d: Results = %d, len = %d", k, s.Results, len(out))
			}
			if s.Candidates != s.FilteredByD+s.FilteredByPath+s.Computed {
				t.Fatalf("k=%d: candidate accounting broken: %+v", k, s)
			}
			// Results must match the plain KNN.
			want := tree.KNN(q, k)
			if len(out) != len(want) {
				t.Fatalf("k=%d: %d vs %d results", k, len(out), len(want))
			}
			for i := range out {
				if out[i].Dist != want[i].Dist {
					t.Fatalf("k=%d: dist[%d] differs", k, i)
				}
			}
		}
	}
}

func TestKNNWithStatsEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	empty, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, s := empty.KNNWithStats([]float64{0}, 3); out != nil || s != (SearchStats{}) {
		t.Errorf("empty: %v, %+v", out, s)
	}
	tree, err := New([][]float64{{1}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, s := tree.KNNWithStats([]float64{0}, 0); out != nil || s != (SearchStats{}) {
		t.Errorf("k=0: %v, %+v", out, s)
	}
}
