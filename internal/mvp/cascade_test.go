package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// newCascadePair builds two identical trees over the same items and
// enables the cascade on the second.
func newCascadePair(t *testing.T, items [][]float64) (off, on *Tree[[]float64]) {
	t.Helper()
	opts := Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 7}}
	var err error
	if off, err = New(items, metric.NewCounter(metric.L2), opts); err != nil {
		t.Fatal(err)
	}
	if on, err = New(items, metric.NewCounter(metric.L2), opts); err != nil {
		t.Fatal(err)
	}
	if err := on.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}
	if on.Cascade() == nil {
		t.Fatal("EnableCascade left the filter nil")
	}
	return off, on
}

// TestCascadeInvariance checks the core cascade contract on the
// mvp-tree: byte-identical results with cascade on and off, and
// per-query distance counts that never increase.
func TestCascadeInvariance(t *testing.T) {
	items := uniformItems(41, 3000, 12)
	off, on := newCascadePair(t, items)
	rng := rand.New(rand.NewPCG(5, 5))
	var pruned int
	for qi := 0; qi < 40; qi++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.Float64()
		}
		for _, r := range []float64{0.3, 0.6, 0.9} {
			a, sa := off.RangeWithStats(q, r)
			b, sb := on.RangeWithStats(q, r)
			if len(a) != len(b) {
				t.Fatalf("r=%v: %d results off, %d on", r, len(a), len(b))
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("r=%v: result %d differs", r, i)
					}
				}
			}
			if sb.Distances() > sa.Distances() {
				t.Fatalf("r=%v: cascade-on used %d distances, off %d", r, sb.Distances(), sa.Distances())
			}
			pruned += sb.FilteredByCascade
		}
		for _, k := range []int{1, 10, 50} {
			a, sa := off.KNNWithStats(q, k)
			b, sb := on.KNNWithStats(q, k)
			if len(a) != len(b) {
				t.Fatalf("k=%d: %d results off, %d on", k, len(a), len(b))
			}
			for i := range a {
				if a[i].Dist != b[i].Dist {
					t.Fatalf("k=%d: neighbor %d dist %v off, %v on", k, i, a[i].Dist, b[i].Dist)
				}
			}
			if sb.Distances() > sa.Distances() {
				t.Fatalf("k=%d: cascade-on used %d distances, off %d", k, sb.Distances(), sa.Distances())
			}
			pruned += sb.FilteredByCascade
		}
	}
	if pruned == 0 {
		t.Fatal("cascade never pruned a candidate across 40 queries")
	}
}

// TestCascadeSteadyStateAllocations re-pins the PR 4 zero-alloc serving
// guarantee with the cascade enabled: the pooled per-query cache must
// not add a steady-state allocation.
func TestCascadeSteadyStateAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := uniformItems(13, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	near := items[17]
	tree.Range(far, 0.5)
	tree.KNN(near, 10)
	if allocs := testing.AllocsPerRun(200, func() { tree.Range(far, 0.5) }); allocs != 0 {
		t.Errorf("cascaded empty-result Range allocated %.1f times per query, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.KNN(near, 10) }); allocs > 1 {
		t.Errorf("cascaded KNN allocated %.1f times per query, want <= 1 (the result slice)", allocs)
	}
}

// TestCascadeConcurrentQueries runs cascaded queries from many
// goroutines for the race detector: caches are pooled but single-owner.
func TestCascadeConcurrentQueries(t *testing.T) {
	items := uniformItems(3, 1200, 8)
	_, on := newCascadePair(t, items)
	done := make(chan struct{})
	for g := 0; g < 6; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewPCG(uint64(g), 9))
			for i := 0; i < 60; i++ {
				q := make([]float64, 8)
				for j := range q {
					q[j] = rng.Float64()
				}
				on.Range(q, 0.4)
				on.KNN(q, 5)
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		<-done
	}
}
