package mvp

// White-box structural invariant checks: the stored cutoffs, D1/D2
// arrays and PATH prefixes must all agree with freshly recomputed
// distances, for every node of trees built over varied workloads.

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// checkNode recursively verifies subtree invariants. ancestors holds the
// vantage points of the nodes above, in PATH order (sv1 then sv2 per
// level); raw is the uncounted distance function.
func checkNode(t *testing.T, tr *Tree[int], n *node[int], raw metric.DistanceFunc[int], ancestors []int) {
	t.Helper()
	if n == nil {
		return
	}
	if n.isLeaf() {
		for i, it := range n.items {
			if got := raw(it, n.sv1); got != n.d1[i] {
				t.Fatalf("leaf D1[%d] = %g, recomputed %g", i, n.d1[i], got)
			}
			if got := raw(it, n.sv2); got != n.d2[i] {
				t.Fatalf("leaf D2[%d] = %g, recomputed %g", i, n.d2[i], got)
			}
			path := n.path(i)
			if len(path) > tr.p {
				t.Fatalf("leaf PATH length %d exceeds p = %d", len(path), tr.p)
			}
			if want := min(tr.p, len(ancestors)); len(path) != want {
				t.Fatalf("leaf PATH length %d, want %d (p=%d, %d ancestors)",
					len(path), want, tr.p, len(ancestors))
			}
			for l, stored := range path {
				if got := raw(it, ancestors[l]); got != stored {
					t.Fatalf("leaf PATH[%d] = %g, recomputed %g", l, stored, got)
				}
			}
		}
		return
	}

	if len(n.cut2) != len(n.children) {
		t.Fatalf("internal node: %d cut2 rows for %d child rows", len(n.cut2), len(n.children))
	}
	next := append(append([]int(nil), ancestors...), n.sv1, n.sv2)
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		for h, c := range row {
			lo2, hi2 := shellBounds(n.cut2[g], h)
			forEachPoint(c, func(pt int) {
				d1 := raw(pt, n.sv1)
				if d1 < lo1 || d1 > hi1 {
					t.Fatalf("point %d in shell %d has d1 = %g outside [%g, %g]", pt, g, d1, lo1, hi1)
				}
				d2 := raw(pt, n.sv2)
				if d2 < lo2 || d2 > hi2 {
					t.Fatalf("point %d in sub-shell (%d,%d) has d2 = %g outside [%g, %g]", pt, g, h, d2, lo2, hi2)
				}
			})
			checkNode(t, tr, c, raw, next)
		}
	}
}

func forEachPoint(n *node[int], f func(int)) {
	if n == nil {
		return
	}
	if n.hasSV1 {
		f(n.sv1)
	}
	if n.hasSV2 {
		f(n.sv2)
	}
	if n.isLeaf() {
		for _, it := range n.items {
			f(it)
		}
		return
	}
	for _, row := range n.children {
		for _, c := range row {
			forEachPoint(c, f)
		}
	}
}

func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	workloads := map[string]*testutil.Workload{
		"uniform": testutil.NewVectorWorkload(rng, 600, 8, 1, metric.L2),
		"clumped": testutil.NewClumpedWorkload(rng, 600, 5, 1, metric.L2),
		"l1":      testutil.NewVectorWorkload(rng, 300, 12, 1, metric.L1),
	}
	for name, w := range workloads {
		for _, opts := range optionMatrix {
			c := metric.NewCounter(w.Dist)
			tree, err := New(w.Items, c, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkNode(t, tree, tree.root, w.Dist, nil)
		}
	}
}

func TestSecondVantageIsFarthestInLeaf(t *testing.T) {
	// §4.2: in leaves the second vantage point is the farthest point
	// from the first. Build a pure-leaf tree and check directly.
	data := [][]float64{{0}, {1}, {2}, {3}, {10}}
	ids := testutil.IDs(len(data))
	dist := testutil.IDDistance(data, metric.L2)
	c := metric.NewCounter(dist)
	tree, err := New(ids, c, Options{Partitions: 2, LeafCapacity: 10, PathLength: 2, Build: Build{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	n := tree.root
	if !n.isLeaf() {
		t.Fatal("expected a single leaf")
	}
	// Whatever sv1 is, sv2 must maximize distance from it.
	want := 0.0
	for _, id := range ids {
		if d := dist(id, n.sv1); d > want {
			want = d
		}
	}
	if got := dist(n.sv2, n.sv1); got != want {
		t.Errorf("sv2 at distance %g from sv1, farthest is %g", got, want)
	}
}

func TestInternalSecondVantageFromOutermostShell(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	w := testutil.NewVectorWorkload(rng, 500, 6, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Partitions: 3, LeafCapacity: 5, PathLength: 4, Build: Build{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	n := tree.root
	if n.isLeaf() {
		t.Fatal("root unexpectedly a leaf")
	}
	// sv2 must lie in the outermost shell of sv1's partition: its
	// distance to sv1 must be ≥ the last cutoff.
	d := w.Dist(n.sv2, n.sv1)
	if last := n.cut1[len(n.cut1)-1]; d < last {
		t.Errorf("sv2 at distance %g from sv1, outermost shell starts at %g", d, last)
	}
}

func TestValidateAcceptsHealthyTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 22))
	w := testutil.NewVectorWorkload(rng, 400, 6, 1, metric.L2)
	for _, opts := range optionMatrix {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

func TestValidateDetectsWrongMetric(t *testing.T) {
	// The persistence footgun: load a tree with a different metric.
	rng := rand.New(rand.NewPCG(26, 22))
	w := testutil.NewVectorWorkload(rng, 200, 6, 1, metric.L2)
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, Options{Partitions: 3, LeafCapacity: 10, PathLength: 4, Build: Build{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Reload the tree under a metric that disagrees with the one it
	// was built with.
	var buf bytes.Buffer
	if err := tree.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	wrong := metric.NewCounter(func(a, b int) float64 { return w.Dist(a, b) * 2 })
	loaded, err := Load(&buf, wrong, decodeID)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err == nil {
		t.Error("Validate accepted a tree loaded with the wrong metric")
	}
}
