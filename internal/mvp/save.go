package mvp

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"mvptree/internal/metric"
	"mvptree/internal/wire"
)

// Persistence: a built mvp-tree can be written to a stream and loaded
// back without recomputing any distances — worthwhile precisely because
// construction is the expensive part (O(n log n) metric invocations on
// costly domains). Items are serialized through caller-supplied
// encode/decode functions; everything else (cutoffs, D1/D2, PATH
// arrays, shape) is stored verbatim.

// ItemEncoder serializes one item.
type ItemEncoder[T any] func(T) ([]byte, error)

// ItemDecoder deserializes one item.
type ItemDecoder[T any] func([]byte) (T, error)

const saveMagic = "MVPTREE1"

// Save writes the tree to w as a CRC-protected payload. The distance
// function is not serialized; Load must be given the same metric or
// queries will be silently wrong.
func (t *Tree[T]) Save(w io.Writer, enc ItemEncoder[T]) error {
	var payload bytes.Buffer
	pw := wire.NewWriter(&payload)
	pw.Int(t.m)
	pw.Int(t.k)
	pw.Int(t.p)
	pw.Int(t.size)
	if err := t.saveNode(pw, t.root, enc); err != nil {
		return err
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(saveMagic))
	ww.Bytes(payload.Bytes())
	ww.Uvarint(uint64(crc32.ChecksumIEEE(payload.Bytes())))
	return ww.Flush()
}

const (
	tagNil      = 0
	tagLeaf     = 1
	tagInternal = 2
)

func (t *Tree[T]) saveNode(w *wire.Writer, n *node[T], enc ItemEncoder[T]) error {
	if n == nil {
		w.Byte(tagNil)
		return w.Err()
	}
	item := func(it T) error {
		b, err := enc(it)
		if err != nil {
			return fmt.Errorf("mvp: encoding item: %w", err)
		}
		w.Bytes(b)
		return w.Err()
	}
	if n.isLeaf() {
		w.Byte(tagLeaf)
		w.Bool(n.hasSV1)
		w.Bool(n.hasSV2)
		if n.hasSV1 {
			if err := item(n.sv1); err != nil {
				return err
			}
		}
		if n.hasSV2 {
			if err := item(n.sv2); err != nil {
				return err
			}
		}
		w.Int(len(n.items))
		for i, it := range n.items {
			if err := item(it); err != nil {
				return err
			}
			w.Float(n.d1[i])
			w.Float(n.d2[i])
			w.Floats(n.path(i))
		}
		return w.Err()
	}
	w.Byte(tagInternal)
	if err := item(n.sv1); err != nil {
		return err
	}
	if err := item(n.sv2); err != nil {
		return err
	}
	w.Floats(n.cut1)
	w.Int(len(n.children))
	for g, row := range n.children {
		w.Floats(n.cut2[g])
		w.Int(len(row))
		for _, c := range row {
			if err := t.saveNode(w, c, enc); err != nil {
				return err
			}
		}
	}
	return w.Err()
}

// Load reads a tree written by Save, verifying the payload checksum.
// dist must wrap the same metric the tree was built with.
func Load[T any](r io.Reader, dist *metric.Counter[T], dec ItemDecoder[T]) (*Tree[T], error) {
	outer := wire.NewReader(r)
	if string(outer.Bytes()) != saveMagic {
		return nil, fmt.Errorf("mvp: bad magic (not an mvp-tree stream)")
	}
	payload := outer.Bytes()
	sum := outer.Uvarint()
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if uint64(crc32.ChecksumIEEE(payload)) != sum {
		return nil, fmt.Errorf("mvp: checksum mismatch (corrupt stream)")
	}
	rr := wire.NewReader(bytes.NewReader(payload))
	t := &Tree[T]{dist: dist}
	t.m = rr.Int()
	t.k = rr.Int()
	t.p = rr.Int()
	t.size = rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if t.m < 2 || t.k < 1 || t.p < 0 || t.size < 0 {
		return nil, fmt.Errorf("mvp: corrupt header (m=%d k=%d p=%d n=%d)", t.m, t.k, t.p, t.size)
	}
	root, err := loadNode(rr, dec, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// maxLoadDepth guards against corrupt streams describing pathologically
// deep recursion.
const maxLoadDepth = 64

func loadNode[T any](r *wire.Reader, dec ItemDecoder[T], depth int) (*node[T], error) {
	if depth > maxLoadDepth {
		return nil, fmt.Errorf("mvp: tree deeper than %d levels (corrupt stream)", maxLoadDepth)
	}
	item := func() (T, error) {
		b := r.Bytes()
		if err := r.Err(); err != nil {
			var zero T
			return zero, err
		}
		it, err := dec(b)
		if err != nil {
			var zero T
			return zero, fmt.Errorf("mvp: decoding item: %w", err)
		}
		return it, nil
	}
	switch tag := r.Byte(); tag {
	case tagNil:
		return nil, r.Err()
	case tagLeaf:
		n := &node[T]{}
		n.hasSV1 = r.Bool()
		n.hasSV2 = r.Bool()
		var err error
		if n.hasSV1 {
			if n.sv1, err = item(); err != nil {
				return nil, err
			}
		}
		if n.hasSV2 {
			if n.sv2, err = item(); err != nil {
				return nil, err
			}
		}
		count := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if count > 0 {
			n.items = make([]T, count)
			n.d1 = make([]float64, count)
			n.d2 = make([]float64, count)
			// PATHs go straight into the contiguous backing array; the
			// wire format allows each item its own length (offsets, not
			// a fixed stride), though built trees always store uniform
			// lengths within a leaf.
			n.pathOff = make([]int32, count+1)
			for i := 0; i < count; i++ {
				if n.items[i], err = item(); err != nil {
					return nil, err
				}
				n.d1[i] = r.Float()
				n.d2[i] = r.Float()
				n.pathData = append(n.pathData, r.Floats()...)
				n.pathOff[i+1] = int32(len(n.pathData))
			}
		}
		n.setDerived()
		return n, r.Err()
	case tagInternal:
		n := &node[T]{hasSV1: true, hasSV2: true}
		var err error
		if n.sv1, err = item(); err != nil {
			return nil, err
		}
		if n.sv2, err = item(); err != nil {
			return nil, err
		}
		n.cut1 = r.Floats()
		rows := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if rows == 0 {
			return nil, fmt.Errorf("mvp: internal node with no children (corrupt stream)")
		}
		n.cut2 = make([][]float64, rows)
		n.children = make([][]*node[T], rows)
		for g := 0; g < rows; g++ {
			n.cut2[g] = r.Floats()
			cols := r.Int()
			if err := r.Err(); err != nil {
				return nil, err
			}
			n.children[g] = make([]*node[T], cols)
			for h := 0; h < cols; h++ {
				if n.children[g][h], err = loadNode(r, dec, depth+1); err != nil {
					return nil, err
				}
			}
		}
		n.setDerived()
		return n, r.Err()
	default:
		return nil, fmt.Errorf("mvp: unknown node tag %d (corrupt stream)", tag)
	}
}
