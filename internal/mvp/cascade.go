package mvp

import "mvptree/internal/cascade"

// EnableCascade builds the cross-query bound cascade for the tree: a
// breadth-first walk collects the first opts.Pivots vantage points as
// cascade pivots (stamping their nodes) and assigns every leaf item a
// contiguous id, then precomputes the pivot × item distance rows
// through the tree's own counter (internal/cascade). Afterwards every
// Range/KNN query registers the exact distances it computes at stamped
// vantage points — distances the traversal pays for anyway — and skips
// leaf candidates whose triangle-inequality lower bound over those
// registered distances already exceeds the query threshold, before the
// stored D1/D2 and PATH filters would have let them through to a real
// distance computation. Results are byte-identical with the cascade on
// or off; per-query distance counts can only decrease.
//
// The precomputation is lazy — nothing is spent unless this is called —
// and costs Pivots × LeafItems distance computations, reported by
// Cascade().BuildDistances. A tree too small to hold leaf items (or
// vantage points) is left uncascaded silently.
//
// EnableCascade is not synchronized with in-flight queries: enable the
// cascade before serving. The cascade state is not serialized by Save;
// re-enable after Load. Intra-query parallel range (RangeParallel) does
// not consult the cascade — its per-query cache is single-owner — so
// its results stay identical at every worker count.
func (t *Tree[T]) EnableCascade(opts cascade.Options) error {
	if t.root == nil {
		return nil
	}
	b, err := cascade.NewBuilder[T](opts)
	if err != nil {
		return err
	}
	queue := []*node[T]{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.hasSV1 {
			n.cas1 = b.AddPivot(n.sv1)
		}
		if n.hasSV2 {
			n.cas2 = b.AddPivot(n.sv2)
		}
		if n.isLeaf() {
			n.casBase = b.AddItems(n.items)
			continue
		}
		for _, row := range n.children {
			for _, c := range row {
				if c != nil {
					queue = append(queue, c)
				}
			}
		}
	}
	if b.NumPivots() == 0 || b.NumItems() == 0 {
		return nil
	}
	f, err := b.Build(t.dist)
	if err != nil {
		return err
	}
	t.cas = f
	return nil
}

// Cascade returns the tree's cascade filter, nil unless EnableCascade
// built one.
func (t *Tree[T]) Cascade() *cascade.Filter[T] { return t.cas }
