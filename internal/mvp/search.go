package mvp

import (
	"math"

	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// SearchStats breaks a range search down into the paper's filtering
// stages, making Observation 2 (the power of the pre-computed
// distances) directly measurable per query. It is the shared
// index.SearchStats; the alias preserves existing call sites.
type SearchStats = index.SearchStats

// Range returns every indexed item within distance r of q, implementing
// the paper's similarity-search algorithm (§4.3) generalized to m
// partitions per vantage point. While descending, the query's own
// distances to the first p vantage points are recorded in qpath and used
// at the leaves to filter points through their stored PATH arrays before
// any real distance computation.
//
// Distance computations whose outcome is only ever compared against a
// threshold go through the metric's early-abandoning fast path when one
// is attached (metric.Counter.DistanceUpTo): candidate scans abandon at
// the radius, leaf vantage points at radius+maxD, and internal vantage
// points — once the query PATH is full, so no abandoned value can leak
// into it — at radius+cutMax. Every bound is chosen so an abandoned
// kernel forces exactly the decisions the exact kernel would have made;
// results, distance counts and per-query stats are identical either way.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus a per-query breakdown of the filtering
// stages.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	var out []T
	sc := t.getScratch()
	t.prepareQuant(sc, q)
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	t.rangeNode(t.root, q, r, 0, sc, cc, &out, &s)
	if t.cas != nil {
		t.cas.Put(cc)
	}
	t.finishQuant(sc)
	t.putScratch(sc)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, plen int, sc *queryScratch[T], cc *cascade.Cache, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.isLeaf())
	if n.isLeaf() {
		t.rangeLeaf(n, q, r, plen, sc, cc, out, s)
		return
	}

	// Step 3.1: one distance computation per vantage point serves every
	// child shell (this is the mvp-tree's first saving over the vp-tree).
	// While the query PATH is still filling, the distances must be exact
	// because they are recorded in it; once it is full they are only
	// compared against shell boundaries ≤ cutMax and the radius, so the
	// kernel may abandon past r+cutMax without changing any decision.
	// A vantage point stamped as a cascade pivot is computed exactly
	// while the query's cache still wants registrations — an exact value
	// is a valid bounded-kernel result, so every decision below is
	// unchanged — and the distance doubles as a global filter bound.
	var d1, d2 float64
	if plen >= t.p {
		if cc != nil && n.cas1 != 0 && cc.Wants() {
			d1 = t.dist.Distance(q, n.sv1)
			cc.Register(n.cas1-1, d1)
		} else {
			d1 = t.dist.DistanceUpTo(q, n.sv1, r+n.cut1Max)
		}
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			d2 = t.dist.Distance(q, n.sv2)
			cc.Register(n.cas2-1, d2)
		} else {
			d2 = t.dist.DistanceUpTo(q, n.sv2, r+n.cut2Max)
		}
	} else {
		d1 = t.dist.Distance(q, n.sv1)
		d2 = t.dist.Distance(q, n.sv2)
		if cc != nil {
			if n.cas1 != 0 && cc.Wants() {
				cc.Register(n.cas1-1, d1)
			}
			if n.cas2 != 0 && cc.Wants() {
				cc.Register(n.cas2-1, d2)
			}
		}
	}
	s.VantagePoints += 2
	t.TraceDistance(2)
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	if d2 <= r {
		*out = append(*out, n.sv2)
	}
	if plen < t.p {
		sc.qpath[plen] = d1
		sc.qlo[plen] = d1 - r
		sc.qhi[plen] = d1 + r
		plen++
		if plen < t.p {
			sc.qpath[plen] = d2
			sc.qlo[plen] = d2 - r
			sc.qhi[plen] = d2 + r
			plen++
		}
	}

	// Steps 3.2/3.3 generalized: visit shell (g, h) only if the query
	// ball intersects both its sv1 shell and its sv2 sub-shell.
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		if d1+r < lo1 || d1-r > hi1 {
			s.ShellsPruned += len(row)
			t.TracePrune(obs.FilterShell, len(row))
			continue
		}
		for h, c := range row {
			if c == nil {
				continue
			}
			lo2, hi2 := shellBounds(n.cut2[g], h)
			if d2+r < lo2 || d2-r > hi2 {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
				continue
			}
			t.rangeNode(c, q, r, plen, sc, cc, out, s)
		}
	}
}

// rangeLeaf implements step 2 of the search algorithm: filter each leaf
// point through its exact distances to the leaf vantage points (D1, D2)
// and through its PATH prefix, computing the real distance only for
// survivors — and only up to r, since membership is all that matters.
func (t *Tree[T]) rangeLeaf(n *node[T], q T, r float64, plen int, sc *queryScratch[T], cc *cascade.Cache, out *[]T, s *SearchStats) {
	s.LeavesVisited++
	if !n.hasSV1 {
		return
	}
	// Every distance in a leaf — the two vantage points and the
	// surviving candidates — is threshold-only, so all of them go
	// through the uncounted kernel and the whole batch is settled on the
	// counter once at the end (totals match per-call accounting).
	kernel := t.dist.Kernel()
	// A vantage distance certified to exceed r+maxD guarantees every
	// stored distance fails the |d−D| ≤ r window, so the kernel may
	// abandon there: the same points get filtered, just cheaper. A
	// stamped cascade pivot is computed exactly instead (bound +Inf) and
	// registered; decisions are unchanged.
	var d1 float64
	if cc != nil && n.cas1 != 0 && cc.Wants() {
		d1 = kernel(q, n.sv1, math.Inf(1))
		cc.Register(n.cas1-1, d1)
	} else {
		d1 = kernel(q, n.sv1, r+n.maxD1)
	}
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	vantages := 1
	var d2 float64
	if n.hasSV2 {
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			d2 = kernel(q, n.sv2, math.Inf(1))
			cc.Register(n.cas2-1, d2)
		} else {
			d2 = kernel(q, n.sv2, r+n.maxD2)
		}
		vantages = 2
		s.VantagePoints++
		t.TraceDistance(1)
		if d2 <= r {
			*out = append(*out, n.sv2)
		}
	}
	// The candidate loop is the hottest code in the tree: hoist the
	// filter windows and slice headers, keep the stage tallies in
	// locals, and report stats and trace events once per leaf (the same
	// batching rangeNode applies to shell pruning — totals are
	// identical, only the event granularity coarsens).
	d1lo, d1hi := d1-r, d1+r
	d2lo, d2hi := d2-r, d2+r
	items := n.items
	d1s := n.d1[:len(items)] // len(d1)==len(items): lets the compiler drop the d1s[i] bounds check
	d2s := n.d2
	hasSV2 := n.hasSV2
	if hasSV2 {
		d2s = d2s[:len(items)]
	}
	qlo := sc.qlo[:plen]
	qhi := sc.qhi[:plen]
	cas, base := t.cas, n.casBase
	useCas := cc != nil && cc.Registered() > 0
	// Quantized pre-filter state (quantize.go). A pruned candidate is
	// still counted in computed — the skip stands in for an abandoned
	// kernel call — so every stat and counter below is unchanged.
	useQuant := sc.quantOn && (n.qcodes != nil || n.qf32 != nil)
	qset, qprep, qcodes, qf32 := t.qset, &sc.qprep, n.qcodes, n.qf32
	var filteredD, filteredPath, filteredCascade, filteredQuant, computed int
items:
	for i := range items {
		// |d(Q,SV) − d(Si,SV)| > r ⟹ d(Q,Si) > r by the triangle
		// inequality; likewise for every retained PATH entry. The D2
		// window only applies when the leaf actually has a second
		// vantage point (a single-vantage leaf stores no D2 distances,
		// and d2 would be a meaningless zero).
		if x := d1s[i]; x < d1lo || x > d1hi {
			filteredD++
			continue
		}
		if hasSV2 {
			if x := d2s[i]; x < d2lo || x > d2hi {
				filteredD++
				continue
			}
		}
		path := n.pathData[n.pathOff[i]:n.pathOff[i+1]]
		if len(path) > plen {
			path = path[:plen]
		}
		// Ranging over the window slice lets the compiler drop the
		// path[l] bounds check (len(path) ≤ plen by the clamp above).
		for l, lo := range qlo[:len(path)] {
			if pd := path[l]; pd < lo || pd > qhi[l] {
				filteredPath++
				continue items
			}
		}
		// Last, cheapest-to-skip filter: the cascade lower bound over
		// the vantage distances this query registered on its way down.
		// It only ever skips candidates whose true distance provably
		// exceeds r, so the result set is unchanged.
		if useCas {
			if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
				filteredCascade++
				continue
			}
		}
		computed++
		// The quantized lower bound certifies d > r from the companion
		// representation alone; the exact kernel would have returned a
		// value > r (abandoning), so skipping it changes nothing — the
		// candidate already joined computed above.
		if useQuant && qset.PruneAt(qprep, qcodes, qf32, i, r) {
			filteredQuant++
			continue
		}
		if kernel(q, items[i], r) <= r {
			*out = append(*out, items[i])
		}
	}
	t.dist.Add(int64(vantages + computed))
	s.Candidates += len(items)
	s.FilteredByD += filteredD
	s.FilteredByPath += filteredPath
	s.FilteredByCascade += filteredCascade
	s.Computed += computed
	sc.quantPruned += filteredQuant
	if filteredD > 0 {
		t.TracePrune(obs.FilterD, filteredD)
	}
	if filteredPath > 0 {
		t.TracePrune(obs.FilterPath, filteredPath)
	}
	if filteredCascade > 0 {
		t.TracePrune(obs.FilterCascade, filteredCascade)
	}
	if filteredQuant > 0 {
		t.TracePrune(obs.FilterQuantized, filteredQuant)
	}
	if computed > 0 {
		t.TraceDistance(computed)
	}
}
