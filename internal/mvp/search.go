package mvp

import (
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// SearchStats breaks a range search down into the paper's filtering
// stages, making Observation 2 (the power of the pre-computed
// distances) directly measurable per query. It is the shared
// index.SearchStats; the alias preserves existing call sites.
type SearchStats = index.SearchStats

// Range returns every indexed item within distance r of q, implementing
// the paper's similarity-search algorithm (§4.3) generalized to m
// partitions per vantage point. While descending, the query's own
// distances to the first p vantage points are recorded in qpath and used
// at the leaves to filter points through their stored PATH arrays before
// any real distance computation.
func (t *Tree[T]) Range(q T, r float64) []T {
	out, _ := t.RangeWithStats(q, r)
	return out
}

// RangeWithStats is Range plus a per-query breakdown of the filtering
// stages.
func (t *Tree[T]) RangeWithStats(q T, r float64) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	var out []T
	qpath := make([]float64, 0, t.p)
	t.rangeNode(t.root, q, r, qpath, &out, &s)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) rangeNode(n *node[T], q T, r float64, qpath []float64, out *[]T, s *SearchStats) {
	if n == nil {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.isLeaf())
	if n.isLeaf() {
		t.rangeLeaf(n, q, r, qpath, out, s)
		return
	}

	// Step 3.1: one distance computation per vantage point serves every
	// child shell (this is the mvp-tree's first saving over the vp-tree).
	d1 := t.dist.Distance(q, n.sv1)
	s.VantagePoints++
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	d2 := t.dist.Distance(q, n.sv2)
	s.VantagePoints++
	t.TraceDistance(2)
	if d2 <= r {
		*out = append(*out, n.sv2)
	}
	if len(qpath) < t.p {
		qpath = append(qpath, d1)
		if len(qpath) < t.p {
			qpath = append(qpath, d2)
		}
	}

	// Steps 3.2/3.3 generalized: visit shell (g, h) only if the query
	// ball intersects both its sv1 shell and its sv2 sub-shell.
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		if d1+r < lo1 || d1-r > hi1 {
			s.ShellsPruned += len(row)
			t.TracePrune(obs.FilterShell, len(row))
			continue
		}
		for h, c := range row {
			if c == nil {
				continue
			}
			lo2, hi2 := shellBounds(n.cut2[g], h)
			if d2+r < lo2 || d2-r > hi2 {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
				continue
			}
			t.rangeNode(c, q, r, qpath, out, s)
		}
	}
}

// rangeLeaf implements step 2 of the search algorithm: filter each leaf
// point through its exact distances to the leaf vantage points (D1, D2)
// and through its PATH prefix, computing the real distance only for
// survivors.
func (t *Tree[T]) rangeLeaf(n *node[T], q T, r float64, qpath []float64, out *[]T, s *SearchStats) {
	s.LeavesVisited++
	if !n.hasSV1 {
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	var d2 float64
	if n.hasSV2 {
		d2 = t.dist.Distance(q, n.sv2)
		s.VantagePoints++
		t.TraceDistance(1)
		if d2 <= r {
			*out = append(*out, n.sv2)
		}
	}
items:
	for i, it := range n.items {
		s.Candidates++
		// |d(Q,SV) − d(Si,SV)| > r ⟹ d(Q,Si) > r by the triangle
		// inequality; likewise for every retained PATH entry.
		if n.d1[i] < d1-r || n.d1[i] > d1+r {
			s.FilteredByD++
			t.TracePrune(obs.FilterD, 1)
			continue
		}
		if n.d2[i] < d2-r || n.d2[i] > d2+r {
			s.FilteredByD++
			t.TracePrune(obs.FilterD, 1)
			continue
		}
		path := n.paths[i]
		for l := 0; l < len(path) && l < len(qpath); l++ {
			if path[l] < qpath[l]-r || path[l] > qpath[l]+r {
				s.FilteredByPath++
				t.TracePrune(obs.FilterPath, 1)
				continue items
			}
		}
		s.Computed++
		t.TraceDistance(1)
		if t.dist.Distance(q, it) <= r {
			*out = append(*out, it)
		}
	}
}
