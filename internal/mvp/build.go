package mvp

import (
	"sort"

	"mvptree/internal/build"
)

// build recursively constructs the subtree over entries, following the
// paper's construction algorithm (§4.2) generalized from m=2 to any m.
// Each entry's path slice accumulates distances to the vantage points of
// the internal nodes above it, capped at p entries; leaves retain the
// accumulated paths.
//
// src is the splittable RNG fixed by this subtree's position, so the
// tree is identical for every worker count.
func (t *Tree[T]) build(b *build.Builder[T], entries []entry[T], src build.RNG, opts *Options, depth int) *node[T] {
	switch {
	case len(entries) == 0:
		return nil
	case len(entries) <= t.k+2:
		return t.buildLeaf(b, entries, src, depth)
	default:
		return t.buildInternal(b, entries, src, opts, depth)
	}
}

// buildLeaf implements step 2 of the paper's algorithm: pick the first
// vantage point arbitrarily, the second as the farthest point from the
// first, and store exact distances D1, D2 for the remaining points.
func (t *Tree[T]) buildLeaf(b *build.Builder[T], entries []entry[T], src build.RNG, depth int) *node[T] {
	b.Node(depth)
	rng := src.Rand()
	n := &node[T]{}
	// First vantage point: arbitrary (seeded-random, like the paper's
	// implementation).
	vi := rng.IntN(len(entries))
	entries[vi], entries[len(entries)-1] = entries[len(entries)-1], entries[vi]
	n.sv1, n.hasSV1 = entries[len(entries)-1].item, true
	rest := entries[:len(entries)-1]
	if len(rest) == 0 {
		return n
	}

	d1 := make([]float64, len(rest))
	b.Measure(n.sv1, func(i int) T { return rest[i].item }, d1)
	far := 0
	for i := range rest {
		if d1[i] > d1[far] {
			far = i
		}
	}
	// Second vantage point: the farthest point from the first (§4.2:
	// "we chose the second vantage point in a leaf node to be the
	// farthest point from the first vantage point of that leaf node").
	last := len(rest) - 1
	rest[far], rest[last] = rest[last], rest[far]
	d1[far], d1[last] = d1[last], d1[far]
	n.sv2, n.hasSV2 = rest[last].item, true
	rest, d1 = rest[:last], d1[:last]
	if len(rest) == 0 {
		return n
	}

	n.items = make([]T, len(rest))
	n.d1 = d1
	n.d2 = make([]float64, len(rest))
	total := 0
	for i := range rest {
		total += len(rest[i].path)
	}
	n.pathData = make([]float64, 0, total)
	n.pathOff = make([]int32, len(rest)+1)
	for i := range rest {
		n.items[i] = rest[i].item
		n.pathData = append(n.pathData, rest[i].path...)
		n.pathOff[i+1] = int32(len(n.pathData))
	}
	b.Measure(n.sv2, func(i int) T { return n.items[i] }, n.d2)
	n.setDerived()
	return n
}

// buildInternal implements step 3 of the paper's algorithm generalized
// to m partitions per vantage point: the first vantage point splits the
// set into m equal shells; one second vantage point (from the outermost
// shell) splits every shell into m more. Child subtrees build through
// the shared pool via Fork, each with its own position-derived RNG.
func (t *Tree[T]) buildInternal(b *build.Builder[T], entries []entry[T], src build.RNG, opts *Options, depth int) *node[T] {
	b.Node(depth)
	rng := src.Rand()
	n := &node[T]{}
	vi := rng.IntN(len(entries))
	entries[vi], entries[len(entries)-1] = entries[len(entries)-1], entries[vi]
	n.sv1, n.hasSV1 = entries[len(entries)-1].item, true
	rest := entries[:len(entries)-1]

	// Distances to sv1; retain in PATH while below the cap.
	d1 := make([]float64, len(rest))
	b.Measure(n.sv1, func(i int) T { return rest[i].item }, d1)
	for i := range rest {
		if len(rest[i].path) < t.p {
			rest[i].path = append(rest[i].path, d1[i])
		}
	}

	ord := sortedOrder(d1)
	groups, cut1 := splitEqual(d1, ord, t.m)
	n.cut1 = cut1

	// Second vantage point: from the outermost shell — the farthest
	// point from sv1 by default, or a random member for the ablation.
	outer := groups[len(groups)-1]
	var pick int // rank within ord
	if opts.RandomSecondVantage {
		pick = outer.lo + rng.IntN(outer.hi-outer.lo)
	} else {
		pick = outer.hi - 1 // ranks are sorted by d1: the farthest point
	}
	svIdx := ord[pick]
	n.sv2, n.hasSV2 = rest[svIdx].item, true
	// Remove the picked rank from the order (and from its group).
	copy(ord[pick:], ord[pick+1:])
	ord = ord[:len(ord)-1]
	groups[len(groups)-1].hi--

	// Distances to sv2 for every remaining point, across all shells.
	d2 := make([]float64, len(rest))
	dOrd := make([]float64, len(ord))
	b.Measure(n.sv2, func(i int) T { return rest[ord[i]].item }, dOrd)
	for k, i := range ord {
		d2[i] = dOrd[k]
		if len(rest[i].path) < t.p {
			rest[i].path = append(rest[i].path, d2[i])
		}
	}

	// Partition into child entry sets sequentially (cheap: no distance
	// computations), then recurse through the pool. Each task writes one
	// distinct child slot and derives its RNG from the child's position.
	type childTask struct {
		g, h    int
		entries []entry[T]
		rng     build.RNG
	}
	var tasks []childTask
	childIdx := 0
	n.cut2 = make([][]float64, len(groups))
	n.children = make([][]*node[T], len(groups))
	for g, grp := range groups {
		shell := ord[grp.lo:grp.hi]
		// Order the shell's points by distance to sv2 and split again.
		sort.Slice(shell, func(a, b int) bool { return d2[shell[a]] < d2[shell[b]] })
		subGroups, cut2 := splitEqualRanks(d2, shell, t.m)
		n.cut2[g] = cut2
		n.children[g] = make([]*node[T], len(subGroups))
		for h, sub := range subGroups {
			child := make([]entry[T], sub.hi-sub.lo)
			for i := sub.lo; i < sub.hi; i++ {
				child[i-sub.lo] = rest[shell[i]]
			}
			tasks = append(tasks, childTask{g, h, child, src.Child(childIdx)})
			childIdx++
		}
		if len(n.children[g]) == 0 {
			// An empty shell (possible when sv2 came from a shell of
			// size one): keep a placeholder so cut2/children stay
			// index-aligned with cut1 shells.
			n.children[g] = []*node[T]{nil}
		}
	}
	n.setDerived()
	b.Fork(len(tasks), func(i int) {
		ct := tasks[i]
		n.children[ct.g][ct.h] = t.build(b, ct.entries, ct.rng, opts, depth+1)
	})
	return n
}

// rankRange is a half-open interval of ranks into a sorted order.
type rankRange struct{ lo, hi int }

// sortedOrder returns the permutation that sorts d ascending.
func sortedOrder(d []float64) []int {
	ord := make([]int, len(d))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return d[ord[a]] < d[ord[b]] })
	return ord
}

// splitEqual splits the sorted order ord over distances d into at most m
// equal-cardinality groups and returns the groups' rank ranges together
// with the cutoff values between consecutive groups. A cutoff is the
// midpoint between the last distance of one group and the first of the
// next, so every group's distances lie within its closed shell.
func splitEqual(d []float64, ord []int, m int) ([]rankRange, []float64) {
	return splitEqualRanks(d, ord, m)
}

// splitEqualRanks is splitEqual for an order slice that may be a
// sub-slice (ranks local to the slice).
func splitEqualRanks(d []float64, ord []int, m int) ([]rankRange, []float64) {
	n := len(ord)
	if n == 0 {
		return nil, nil
	}
	if m > n {
		m = n
	}
	groups := make([]rankRange, m)
	cutoffs := make([]float64, m-1)
	base, extra := n/m, n%m
	lo := 0
	for g := 0; g < m; g++ {
		hi := lo + base
		if g < extra {
			hi++
		}
		groups[g] = rankRange{lo, hi}
		if g < m-1 {
			cutoffs[g] = (d[ord[hi-1]] + d[ord[hi]]) / 2
		}
		lo = hi
	}
	return groups, cutoffs
}
