package mvp

import (
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func uniformItems(seed uint64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	items := make([][]float64, n)
	for i := range items {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	return items
}

// TestSteadyStateQueryAllocations pins the PR's zero-alloc serving claim
// absolutely: once the scratch pool is warm, a range query that returns
// nothing performs zero heap allocations, and a kNN query performs at
// most one — the result slice handed to the caller. (AllocsPerRun runs
// the body once before measuring, which warms the pool.)
func TestSteadyStateQueryAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := uniformItems(13, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}

	// Far outside [0,1]^8: every point is at distance > 200, so a small
	// radius returns nothing and the result slice is never allocated.
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	near := items[17]

	// Warm the pool and sanity-check the workload shape.
	if got := tree.Range(far, 0.5); len(got) != 0 {
		t.Fatalf("far query returned %d results, want 0", len(got))
	}
	if got := tree.KNN(near, 10); len(got) != 10 {
		t.Fatalf("KNN returned %d results, want 10", len(got))
	}

	if allocs := testing.AllocsPerRun(200, func() { tree.Range(far, 0.5) }); allocs != 0 {
		t.Errorf("empty-result Range allocated %.1f times per query, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.KNN(near, 10) }); allocs > 1 {
		t.Errorf("KNN allocated %.1f times per query, want <= 1 (the result slice)", allocs)
	}
	// Stats variants share the same pooled traversal.
	if allocs := testing.AllocsPerRun(200, func() { tree.RangeWithStats(far, 0.5) }); allocs != 0 {
		t.Errorf("empty-result RangeWithStats allocated %.1f times per query, want 0", allocs)
	}
}

// TestSingleVantageLeafFiltering is the regression test for the leaf
// scan's D2-filter guard: a leaf that stores items but has no second
// vantage point (possible via Load; the builder always promotes one)
// must skip the D2 window entirely — d2 is a meaningless zero there and
// n.d2 is empty — and still answer exactly like a linear scan.
func TestSingleVantageLeafFiltering(t *testing.T) {
	pts := uniformItems(29, 24, 6)
	sv1 := pts[0]
	rest := pts[1:]

	n := &node[[]float64]{sv1: sv1, hasSV1: true}
	n.items = rest
	n.d1 = make([]float64, len(rest))
	for i, it := range rest {
		n.d1[i] = metric.L2(sv1, it)
	}
	n.pathOff = make([]int32, len(rest)+1) // empty PATHs
	n.setDerived()

	dist := metric.NewCounter(metric.L2)
	tree := &Tree[[]float64]{root: n, dist: dist, size: len(pts), m: 2, k: len(rest), p: 0}

	q := pts[5]
	for _, r := range []float64{0, 0.3, 0.8, 2.5} {
		var want []float64 // sorted distances of the expected result set
		for _, it := range pts {
			if d := metric.L2(q, it); d <= r {
				want = append(want, d)
			}
		}
		sort.Float64s(want)
		before := dist.Count()
		got, s := tree.RangeWithStats(q, r)
		delta := dist.Count() - before

		gotD := make([]float64, len(got))
		for i, it := range got {
			gotD[i] = metric.L2(q, it)
		}
		sort.Float64s(gotD)
		if len(gotD) != len(want) {
			t.Fatalf("r=%v: got %d results, want %d", r, len(gotD), len(want))
		}
		for i := range want {
			if gotD[i] != want[i] {
				t.Fatalf("r=%v: result distance %v != expected %v", r, gotD[i], want[i])
			}
		}
		if s.VantagePoints != 1 {
			t.Errorf("r=%v: VantagePoints = %d, want 1 (no second vantage point)", r, s.VantagePoints)
		}
		if s.Candidates != len(rest) {
			t.Errorf("r=%v: Candidates = %d, want %d", r, s.Candidates, len(rest))
		}
		if want := int64(s.VantagePoints + s.Computed); delta != want {
			t.Errorf("r=%v: counter delta = %d, want VantagePoints+Computed = %d", r, delta, want)
		}
	}

	// kNN over the same single-vantage leaf must match brute force too.
	for _, k := range []int{1, 5, len(pts)} {
		all := make([]float64, len(pts))
		for i, it := range pts {
			all[i] = metric.L2(q, it)
		}
		sort.Float64s(all)
		got, s := tree.KNNWithStats(q, k)
		if len(got) != min(k, len(pts)) {
			t.Fatalf("k=%d: got %d neighbors, want %d", k, len(got), min(k, len(pts)))
		}
		for i, nb := range got {
			if nb.Dist != all[i] {
				t.Fatalf("k=%d: neighbor %d dist %v, want %v", k, i, nb.Dist, all[i])
			}
		}
		if s.VantagePoints != 1 {
			t.Errorf("k=%d: VantagePoints = %d, want 1", k, s.VantagePoints)
		}
	}
}
