package mvp

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"mvptree/internal/codec"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func encodeID(id int) ([]byte, error) {
	return []byte{byte(id), byte(id >> 8), byte(id >> 16)}, nil
}

func decodeID(b []byte) (int, error) {
	if len(b) != 3 {
		return 0, errors.New("bad id encoding")
	}
	return int(b[0]) | int(b[1])<<8 | int(b[2])<<16, nil
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 3))
	w := testutil.NewVectorWorkload(rng, 700, 8, 10, metric.L2)
	for _, opts := range optionMatrix {
		orig, c := buildWorkloadTree(t, w, opts)
		var buf bytes.Buffer
		if err := orig.Save(&buf, encodeID); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := Load(&buf, c, decodeID)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if loaded.Len() != orig.Len() {
			t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
		}
		if loaded.Partitions() != orig.Partitions() || loaded.LeafCapacity() != orig.LeafCapacity() ||
			loaded.PathLength() != orig.PathLength() {
			t.Fatal("parameters changed across save/load")
		}
		// The loaded tree must answer every query identically and
		// satisfy all structural invariants.
		testutil.CheckRange(t, "loaded-mvpt", loaded, w, []float64{0, 0.2, 0.6, 1.5})
		testutil.CheckKNN(t, "loaded-mvpt", loaded, w, []int{1, 5, 50})
		checkNode(t, loaded, loaded.root, w.Dist, nil)
	}
}

func TestSaveLoadIdenticalQueryCosts(t *testing.T) {
	// Loading must reproduce the exact same structure: identical
	// distance computations per query, not just identical answers.
	rng := rand.New(rand.NewPCG(72, 3))
	w := testutil.NewVectorWorkload(rng, 500, 6, 8, metric.L2)
	orig, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 9, PathLength: 5, Build: Build{Seed: 3}})
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	c2 := metric.NewCounter(w.Dist)
	loaded, err := Load(&buf, c2, decodeID)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		c.Reset()
		orig.Range(q, 0.4)
		c2.Reset()
		loaded.Range(q, 0.4)
		if c.Count() != c2.Count() {
			t.Fatalf("query cost differs after reload: %d vs %d", c.Count(), c2.Count())
		}
	}
}

func TestSaveLoadEmptyAndTiny(t *testing.T) {
	dist := metric.NewCounter(metric.Discrete[int]())
	for n := 0; n <= 4; n++ {
		orig, err := New(testutil.IDs(n), dist, Options{LeafCapacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf, encodeID); err != nil {
			t.Fatalf("n=%d: Save: %v", n, err)
		}
		loaded, err := Load(&buf, dist, decodeID)
		if err != nil {
			t.Fatalf("n=%d: Load: %v", n, err)
		}
		if got := loaded.Range(0, 2); len(got) != n {
			t.Errorf("n=%d: loaded full range = %d items", n, len(got))
		}
	}
}

func TestLoadRejectsCorruptStreams(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 3))
	w := testutil.NewVectorWorkload(rng, 100, 4, 1, metric.L2)
	orig, c := buildWorkloadTree(t, w, Options{Build: Build{Seed: 1}})
	var buf bytes.Buffer
	if err := orig.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{8}, []byte("NOTMVPTR")...),
		"truncated":   valid[:len(valid)/2],
		"one byte":    valid[:1],
		"flipped tag": flipByte(valid, len(valid)-1),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data), c, decodeID); err == nil {
			t.Errorf("%s: Load succeeded on corrupt data", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestEncoderErrorsPropagate(t *testing.T) {
	dist := metric.NewCounter(metric.Discrete[int]())
	tree, err := New(testutil.IDs(10), dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	boom := errors.New("boom")
	if err := tree.Save(&buf, func(int) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("Save error = %v, want wrapped boom", err)
	}
	// Decoder failure on load.
	buf.Reset()
	if err := tree.Save(&buf, encodeID); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, dist, func([]byte) (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Errorf("Load error = %v, want wrapped boom", err)
	}
}

func TestSaveLoadVectorsViaCodec(t *testing.T) {
	rng := rand.New(rand.NewPCG(74, 3))
	vecs := testutil.RandomVectors(rng, 300, 6)
	c := metric.NewCounter(metric.L2)
	orig, err := New(vecs, c, Options{Partitions: 2, LeafCapacity: 8, PathLength: 3, Build: Build{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, codec.EncodeVector); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, metric.NewCounter(metric.L2), codec.DecodeVector)
	if err != nil {
		t.Fatal(err)
	}
	q := vecs[7]
	a := orig.KNN(q, 5)
	b := loaded.KNN(q, 5)
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatalf("KNN differs after reload: %v vs %v", a[i], b[i])
		}
	}
}
