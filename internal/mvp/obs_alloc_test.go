package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/testutil"
)

// TestQueryAllocationsUnaffectedByHooks pins the tentpole's "free when
// disabled" claim at the structure level: arming an Observer must not
// add a single allocation per query over the disarmed fast path (the
// Span is a value and the observer records into preallocated shard
// atomics), and the disarmed path itself must not regress.
func TestQueryAllocationsUnaffectedByHooks(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	rng := rand.New(rand.NewPCG(3, 9))
	items := make([][]float64, 800)
	for i := range items {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = v
	}
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 2, LeafCapacity: 16, PathLength: 3, Build: Build{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	q := items[0]

	disarmedRange := testing.AllocsPerRun(100, func() { tree.RangeWithStats(q, 0.3) })
	disarmedKNN := testing.AllocsPerRun(100, func() { tree.KNNWithStats(q, 5) })

	tree.SetObserver(obs.NewObserver(1))
	defer tree.SetObserver(nil)
	armedRange := testing.AllocsPerRun(100, func() { tree.RangeWithStats(q, 0.3) })
	armedKNN := testing.AllocsPerRun(100, func() { tree.KNNWithStats(q, 5) })

	if armedRange > disarmedRange {
		t.Errorf("range: observer added allocations: %.1f armed vs %.1f disarmed", armedRange, disarmedRange)
	}
	if armedKNN > disarmedKNN {
		t.Errorf("knn: observer added allocations: %.1f armed vs %.1f disarmed", armedKNN, disarmedKNN)
	}
}
