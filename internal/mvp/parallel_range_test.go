package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// The ParallelRangeIndex contract: for every worker count the result
// slice is byte-identical to the sequential traversal — same items,
// same order — and the stats and metric-counter delta are identical
// too.
func TestRangeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 2))
	w := testutil.NewVectorWorkload(rng, 600, 8, 15, metric.L2)
	for _, opts := range optionMatrix {
		tree, c := buildWorkloadTree(t, w, opts)
		for _, q := range w.Queries {
			for _, r := range []float64{0, 0.2, 0.5, 0.9, 1.5} {
				before := c.Count()
				want, wantStats := tree.RangeWithStats(q, r)
				seqCost := c.Count() - before
				for _, workers := range []int{1, 2, 3, 8} {
					before = c.Count()
					got, gotStats := tree.RangeParallelWithStats(q, r, workers)
					cost := c.Count() - before
					if len(got) != len(want) {
						t.Fatalf("workers=%d q=%d r=%g: got %d results, want %d", workers, q, r, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d q=%d r=%g: result[%d]=%d, want %d (order must match)", workers, q, r, i, got[i], want[i])
						}
					}
					if gotStats != wantStats {
						t.Fatalf("workers=%d q=%d r=%g: stats %+v, want %+v", workers, q, r, gotStats, wantStats)
					}
					if cost != seqCost {
						t.Fatalf("workers=%d q=%d r=%g: counter delta %d, want %d", workers, q, r, cost, seqCost)
					}
				}
			}
		}
	}
}

func TestRangeParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 2))
	w := testutil.NewVectorWorkload(rng, 40, 4, 4, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 2, LeafCapacity: 4, Build: Build{Seed: 7}})
	if got := tree.RangeParallel(w.Queries[0], -1, 4); got != nil {
		t.Fatalf("negative radius: got %v, want nil", got)
	}
	// More workers than frontier subtrees.
	seq := tree.Range(w.Queries[0], 0.8)
	par := tree.RangeParallel(w.Queries[0], 0.8, 64)
	if len(seq) != len(par) {
		t.Fatalf("workers=64: got %d results, want %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("workers=64: result[%d] mismatch", i)
		}
	}
	// Empty tree.
	empty, err := New[int](nil, metric.NewCounter(w.Dist), Options{Partitions: 2, LeafCapacity: 4})
	if err != nil {
		t.Fatalf("New(empty): %v", err)
	}
	if got := empty.RangeParallel(w.Queries[0], 1, 4); got != nil {
		t.Fatalf("empty tree: got %v, want nil", got)
	}
}
