package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/quant"
	"mvptree/internal/testutil"
)

// checkBatchMatchesSequential pins the SearchBatch contract: for every
// batch size, results, neighbor order, SearchStats, and the tree's
// counter delta are byte-identical to per-query Search calls.
func checkBatchMatchesSequential[T any](t *testing.T, tree *Tree[T], dist *metric.Counter[T],
	reqs []index.Query[T], sizes []int, eq func(a, b T) bool) {
	t.Helper()

	want := make([]index.Result[T], len(reqs))
	wantDelta := make([]int64, len(reqs))
	for i, req := range reqs {
		c0 := dist.Count()
		want[i] = tree.Search(req)
		wantDelta[i] = dist.Count() - c0
	}

	for _, b := range sizes {
		for lo := 0; lo < len(reqs); lo += b {
			hi := min(lo+b, len(reqs))
			chunk := reqs[lo:hi]
			got := make([]index.Result[T], len(chunk))
			c0 := dist.Count()
			tree.SearchBatch(chunk, got)
			delta := dist.Count() - c0
			var wd int64
			for i := lo; i < hi; i++ {
				wd += wantDelta[i]
			}
			if delta != wd {
				t.Errorf("B=%d chunk [%d,%d): counter delta %d, sequential %d", b, lo, hi, delta, wd)
			}
			for i := range chunk {
				w, g := want[lo+i], got[i]
				if w.Stats != g.Stats {
					t.Errorf("B=%d query %d: stats differ\nseq   %+v\nbatch %+v", b, lo+i, w.Stats, g.Stats)
				}
				if len(w.Items) != len(g.Items) {
					t.Fatalf("B=%d query %d: %d items sequential, %d batched", b, lo+i, len(w.Items), len(g.Items))
				}
				for k := range w.Items {
					if !eq(w.Items[k], g.Items[k]) {
						t.Fatalf("B=%d query %d: item %d differs", b, lo+i, k)
					}
				}
				if len(w.Neighbors) != len(g.Neighbors) {
					t.Fatalf("B=%d query %d: %d neighbors sequential, %d batched", b, lo+i, len(w.Neighbors), len(g.Neighbors))
				}
				for k := range w.Neighbors {
					if w.Neighbors[k].Dist != g.Neighbors[k].Dist || !eq(w.Neighbors[k].Item, g.Neighbors[k].Item) {
						t.Fatalf("B=%d query %d: neighbor %d differs (%v vs %v)", b, lo+i, k,
							w.Neighbors[k].Dist, g.Neighbors[k].Dist)
					}
				}
			}
		}
	}
}

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mixedVectorRequests interleaves exact range, exact kNN, approximate,
// and budgeted requests over the query points so every batch chunk mixes
// the shared-traversal and fallback paths.
func mixedVectorRequests(queries [][]float64, radii []float64, ks []int) []index.Query[[]float64] {
	var reqs []index.Query[[]float64]
	for qi, q := range queries {
		reqs = append(reqs, index.RangeQuery(q, radii[qi%len(radii)]))
		reqs = append(reqs, index.KNNQuery(q, ks[qi%len(ks)]))
		switch qi % 4 {
		case 0: // (1+ε)-approximate range: fallback path inside the batch.
			r := index.RangeQuery(q, radii[0])
			r.Opts.Epsilon = 0.5
			reqs = append(reqs, r)
		case 1: // budgeted kNN: fallback path.
			r := index.KNNQuery(q, ks[0])
			r.Opts.Budget = 200
			reqs = append(reqs, r)
		case 2: // patience kNN: fallback path.
			r := index.KNNQuery(q, ks[len(ks)-1])
			r.Opts.Patience = 2
			reqs = append(reqs, r)
		case 3: // zero-radius point query on the shared path.
			reqs = append(reqs, index.RangeQuery(q, 0))
		}
	}
	return reqs
}

var batchSizes = []int{1, 4, 16, 64}

// TestBatchInvarianceUniform pins batch == sequential on uniform
// vectors under L2 with the quantized pre-filter armed — the registered
// block-kernel path plus quant consultation.
func TestBatchInvarianceUniform(t *testing.T) {
	items := uniformItems(101, 2500, 12)
	dist := metric.NewCounter(metric.L2)
	tree, err := New(items, dist, Options{
		Partitions: 3, LeafCapacity: 20, PathLength: 4,
		Quantize: quant.SQ8, Build: Build{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := uniformItems(102, 30, 12)
	queries = append(queries, items[3], items[1234])
	reqs := mixedVectorRequests(queries, []float64{0.4, 0.9}, []int{1, 10})
	checkBatchMatchesSequential(t, tree, dist, reqs, batchSizes, vecEq)
}

// TestBatchInvarianceClustered pins batch == sequential on clumped,
// duplicate-heavy vectors under L1 with the cross-query bound cascade
// enabled — registration order inside the shared traversal must match
// the sequential one exactly for the cache state (and hence Wants()
// decisions and prune counts) to agree.
func TestBatchInvarianceClustered(t *testing.T) {
	items := clusteredItems(103, 2000, 10, 6)
	dist := metric.NewCounter(metric.L1)
	tree, err := New(items, dist, Options{
		Partitions: 3, LeafCapacity: 24, PathLength: 4, Build: Build{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableCascade(cascade.Options{}); err != nil {
		t.Fatal(err)
	}
	queries := uniformItems(104, 30, 10)
	for i := range queries {
		for j := range queries[i] {
			queries[i][j] *= 10 // match the clustered data's spread
		}
	}
	queries = append(queries, items[0], items[999])
	reqs := mixedVectorRequests(queries, []float64{0.5, 2.5}, []int{1, 8})
	checkBatchMatchesSequential(t, tree, dist, reqs, batchSizes, vecEq)
}

// TestBatchInvarianceEdit pins batch == sequential over strings under
// edit distance — a metric with no registered block kernel, so the
// fallback one-at-a-time block adapter carries the traversal.
func TestBatchInvarianceEdit(t *testing.T) {
	rng := rand.New(rand.NewPCG(105, 106))
	const letters = "abcdef"
	words := make([]string, 600)
	for i := range words {
		n := 3 + rng.IntN(6)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.IntN(len(letters))]
		}
		words[i] = string(b)
	}
	dist := metric.NewCounter(metric.Edit)
	tree, err := New(words, dist, Options{
		Partitions: 2, LeafCapacity: 8, PathLength: 3, Build: Build{Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []index.Query[string]
	for qi := 0; qi < 24; qi++ {
		q := words[rng.IntN(len(words))] + string(letters[rng.IntN(len(letters))])
		reqs = append(reqs, index.RangeQuery(q, float64(1+qi%3)))
		reqs = append(reqs, index.KNNQuery(q, 1+qi%7))
	}
	checkBatchMatchesSequential(t, tree, dist, reqs, batchSizes,
		func(a, b string) bool { return a == b })
}

// TestBatchEdgeCases covers the contract's edges: length mismatch
// panics, empty batches are no-ops, and empty trees answer cleanly.
func TestBatchEdgeCases(t *testing.T) {
	items := uniformItems(107, 50, 4)
	tree, err := New(items, metric.NewCounter(metric.L2), Options{
		Partitions: 2, LeafCapacity: 4, PathLength: 2, Build: Build{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SearchBatch with mismatched lengths did not panic")
			}
		}()
		tree.SearchBatch(make([]index.Query[[]float64], 2), make([]index.Result[[]float64], 1))
	}()
	tree.SearchBatch(nil, nil)

	empty, err := New(nil, metric.NewCounter(metric.L2), Options{Partitions: 2, LeafCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5, 0.5, 0.5}
	reqs := []index.Query[[]float64]{index.RangeQuery(q, 1), index.KNNQuery(q, 3)}
	res := make([]index.Result[[]float64], 2)
	empty.SearchBatch(reqs, res)
	if len(res[0].Items) != 0 || len(res[1].Neighbors) != 0 {
		t.Errorf("empty tree answered %d items / %d neighbors", len(res[0].Items), len(res[1].Neighbors))
	}

	// Negative radius and zero K behave like Search.
	neg := []index.Query[[]float64]{{Point: q, Radius: -1}, {Point: q, K: 0, Radius: 0.5}}
	resN := make([]index.Result[[]float64], 2)
	tree.SearchBatch(neg, resN)
	if len(resN[0].Items) != 0 {
		t.Errorf("negative radius answered %d items", len(resN[0].Items))
	}
	wantPoint := tree.Search(neg[1])
	if len(resN[1].Items) != len(wantPoint.Items) {
		t.Errorf("point query: %d batched items, %d sequential", len(resN[1].Items), len(wantPoint.Items))
	}
}

// TestBatchSteadyStateAllocations pins the pooled batch scratch: once
// warm, a batch of empty-result range queries allocates nothing.
func TestBatchSteadyStateAllocations(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := uniformItems(109, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	reqs := make([]index.Query[[]float64], 16)
	for i := range reqs {
		reqs[i] = index.RangeQuery(far, 0.5)
	}
	results := make([]index.Result[[]float64], len(reqs))
	tree.SearchBatch(reqs, results) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() {
		tree.SearchBatch(reqs, results)
	}); allocs != 0 {
		t.Errorf("steady-state batch Range allocated %.1f times per batch, want 0", allocs)
	}
}
