package mvp

import (
	"math/rand/v2"
	"testing"
	"time"

	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
	"mvptree/internal/testutil"
)

func clusteredItems(seed uint64, n, dim, clusters int) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	centers := make([][]float64, clusters)
	for c := range centers {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		centers[c] = v
	}
	items := make([][]float64, n)
	for i := range items {
		c := centers[i%clusters]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.1
		}
		items[i] = v
	}
	return items
}

// TestQuantizeEquivalence pins the tentpole contract on the mvp-tree:
// with the quantized pre-filter armed (either mode, any registered
// metric shape, across workload shapes), every query returns
// byte-identical results in identical order with identical SearchStats
// and identical counter deltas as the unfiltered tree.
func TestQuantizeEquivalence(t *testing.T) {
	workloads := []struct {
		name  string
		items [][]float64
		radii []float64
	}{
		{"uniform", uniformItems(61, 1200, 8), []float64{0.2, 0.6, 1.1}},
		{"clustered", clusteredItems(62, 1200, 8, 7), []float64{0.15, 0.5, 3}},
		{"highdim", uniformItems(63, 900, 40), []float64{0.8, 1.6, 2.4}},
	}
	metrics := []struct {
		name string
		fn   metric.DistanceFunc[[]float64]
	}{
		{"l1", metric.L1},
		{"l2", metric.L2},
		{"linf", metric.LInf},
	}
	opts := Options{Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: Build{Seed: 9}}
	for _, w := range workloads {
		for _, m := range metrics {
			for _, mode := range []quant.Mode{quant.SQ8, quant.F32} {
				t.Run(w.name+"/"+m.name+"/"+mode.String(), func(t *testing.T) {
					distP := metric.NewCounter(m.fn)
					plain, err := New(w.items, distP, opts)
					if err != nil {
						t.Fatal(err)
					}
					optsQ := opts
					optsQ.Quantize = mode
					distQ := metric.NewCounter(m.fn)
					quantized, err := New(w.items, distQ, optsQ)
					if err != nil {
						t.Fatal(err)
					}
					if quantized.Quantized() == nil {
						t.Fatal("pre-filter did not arm on a quantizable tree")
					}
					queries := uniformItems(64, 6, len(w.items[0]))
					queries = append(queries, w.items[3], w.items[77])
					for qi, q := range queries {
						for _, r := range w.radii {
							p0, q0 := distP.Count(), distQ.Count()
							resP, stP := plain.RangeWithStats(q, r)
							resQ, stQ := quantized.RangeWithStats(q, r)
							if len(resP) != len(resQ) {
								t.Fatalf("q%d r=%v: %d results plain vs %d quantized", qi, r, len(resP), len(resQ))
							}
							for i := range resP {
								for j := range resP[i] {
									if resP[i][j] != resQ[i][j] {
										t.Fatalf("q%d r=%v: result %d differs", qi, r, i)
									}
								}
							}
							if stP != stQ {
								t.Errorf("q%d r=%v: stats differ:\nplain %+v\nquant %+v", qi, r, stP, stQ)
							}
							if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
								t.Errorf("q%d r=%v: counter delta differs: %d plain vs %d quantized", qi, r, pd, qd)
							}
						}
						for _, k := range []int{1, 10} {
							p0, q0 := distP.Count(), distQ.Count()
							nbP, stP := plain.KNNWithStats(q, k)
							nbQ, stQ := quantized.KNNWithStats(q, k)
							if len(nbP) != len(nbQ) {
								t.Fatalf("q%d k=%d: %d neighbors plain vs %d quantized", qi, k, len(nbP), len(nbQ))
							}
							for i := range nbP {
								if nbP[i].Dist != nbQ[i].Dist {
									t.Errorf("q%d k=%d: neighbor %d dist %v plain vs %v quantized", qi, k, i, nbP[i].Dist, nbQ[i].Dist)
									break
								}
							}
							if stP != stQ {
								t.Errorf("q%d k=%d: stats differ:\nplain %+v\nquant %+v", qi, k, stP, stQ)
							}
							if pd, qd := distP.Count()-p0, distQ.Count()-q0; pd != qd {
								t.Errorf("q%d k=%d: counter delta differs: %d plain vs %d quantized", qi, k, pd, qd)
							}
						}
					}
				})
			}
		}
	}
}

// pruneTracer tallies FilterQuantized trace events.
type pruneTracer struct{ quantized int }

func (p *pruneTracer) OnQueryStart(obs.Kind)  {}
func (p *pruneTracer) OnNodeVisit(bool)       {}
func (p *pruneTracer) OnDistance(int)         {}
func (p *pruneTracer) OnQueryDone(_ obs.Kind, _ time.Duration, _ SearchStats) {}
func (p *pruneTracer) OnFilterPrune(f obs.Filter, n int) {
	if f == obs.FilterQuantized {
		p.quantized += n
	}
}

// TestQuantizeTelemetry pins the observability of the pre-filter: the
// skipped evaluations are invisible in SearchStats (by design) but
// must surface as FilterQuantized trace events and in the Observer's
// filtered_by_quantized total.
func TestQuantizeTelemetry(t *testing.T) {
	items := uniformItems(71, 1500, 12)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 5}, Quantize: quant.SQ8})
	if err != nil {
		t.Fatal(err)
	}
	tr := &pruneTracer{}
	ob := obs.NewObserver(1)
	tree.SetTracer(tr)
	tree.SetObserver(ob)
	queries := uniformItems(72, 16, 12)
	for _, q := range queries {
		tree.Range(q, 0.4)
		tree.KNN(q, 5)
	}
	if tr.quantized == 0 {
		t.Error("no FilterQuantized trace events fired")
	}
	got := ob.Snapshot().Search.FilteredByQuantized
	if got != int64(tr.quantized) {
		t.Errorf("observer filtered_by_quantized = %d, tracer saw %d", got, tr.quantized)
	}
}

// TestQuantizeZeroAlloc pins that arming the pre-filter keeps the
// steady-state query paths allocation-free: the per-query Prepare
// reuses the pooled scratch table and the query-vector assertion does
// not box.
func TestQuantizeZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	items := uniformItems(81, 2000, 8)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 3, LeafCapacity: 40, PathLength: 4, Build: Build{Seed: 7}, Quantize: quant.SQ8})
	if err != nil {
		t.Fatal(err)
	}
	far := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	near := items[17]
	tree.Range(far, 0.5)
	tree.KNN(near, 10)
	if allocs := testing.AllocsPerRun(200, func() { tree.Range(far, 0.5) }); allocs != 0 {
		t.Errorf("quantized empty-result Range allocated %.1f times per query, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { tree.KNN(near, 10) }); allocs > 1 {
		t.Errorf("quantized KNN allocated %.1f times per query, want <= 1", allocs)
	}
}

// TestQuantizeLifecycle pins mode switching: Off tears the filter
// down, re-enabling with a different mode swaps representations, and
// an unquantizable metric leaves the tree unfiltered silently.
func TestQuantizeLifecycle(t *testing.T) {
	items := uniformItems(91, 600, 6)
	tree, err := New(items, metric.NewCounter(metric.L2),
		Options{Partitions: 2, LeafCapacity: 15, Build: Build{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Quantized() != nil {
		t.Fatal("filter armed without the option")
	}
	if err := tree.EnableQuantize(quant.SQ8); err != nil {
		t.Fatal(err)
	}
	if s := tree.Quantized(); s == nil || s.ModeOf() != quant.SQ8 {
		t.Fatalf("expected armed sq8 filter, got %+v", tree.Quantized())
	}
	if err := tree.EnableQuantize(quant.F32); err != nil {
		t.Fatal(err)
	}
	if s := tree.Quantized(); s == nil || s.ModeOf() != quant.F32 {
		t.Fatalf("expected armed f32 filter, got %+v", tree.Quantized())
	}
	if err := tree.EnableQuantize(quant.Off); err != nil {
		t.Fatal(err)
	}
	if tree.Quantized() != nil {
		t.Fatal("Off did not tear the filter down")
	}
	if err := tree.EnableQuantize(quant.Mode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}

	// Angular has no quantized shape: the tree must stay unfiltered.
	ang, err := New(items, metric.NewCounter(metric.Angular),
		Options{Partitions: 2, LeafCapacity: 15, Build: Build{Seed: 3}, Quantize: quant.SQ8})
	if err != nil {
		t.Fatal(err)
	}
	if ang.Quantized() != nil {
		t.Fatal("filter armed for a metric with no quantized shape")
	}
}
