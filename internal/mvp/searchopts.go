package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

var _ index.Searcher[int] = (*Tree[int])(nil)

// Search is the unified query entry point (index.Searcher). A request
// with zero-valued SearchOptions runs the exact traversal and is
// byte-identical — results, order, distance counts, stats — to
// RangeWithStats / KNNWithStats / their parallel and bounded variants,
// which remain as thin wrappers over the same code paths. Epsilon,
// Budget or Patience switch to the approximate traversal below; see
// index.SearchOptions for the semantics of each knob.
//
// Approximate traversals do not consult the cross-query bound cascade
// or an external KNNBound — those are exact-mode machinery — and
// Workers is honored only on exact range queries.
func (t *Tree[T]) Search(req index.Query[T]) index.Result[T] {
	if req.K > 0 {
		if !req.Opts.Approximate() {
			nb, s := t.KNNWithStatsBound(req.Point, req.K, req.Opts.Bound)
			return index.Result[T]{Neighbors: nb, Stats: s}
		}
		return t.knnApprox(req.Point, req.K, req.Opts)
	}
	if !req.Opts.Approximate() {
		if req.Opts.Workers > 1 {
			out, s := t.RangeParallelWithStats(req.Point, req.Radius, req.Opts.Workers)
			return index.Result[T]{Items: out, Stats: s}
		}
		out, s := t.RangeWithStats(req.Point, req.Radius)
		return index.Result[T]{Items: out, Stats: s}
	}
	return t.rangeApprox(req.Point, req.Radius, req.Opts)
}

// rangeApprox is the (1+ε)-approximate / budgeted range traversal: the
// same descent as rangeNode but every prune and filter decision tests
// the shrunken radius rp = r/(1+ε) while acceptance keeps the full r.
// Every reported item is therefore a true answer (distance ≤ r) and
// every item within rp is guaranteed reported; items in (rp, r] may be
// skipped — that slack is where the distance savings come from. The
// budget is debited before each computation, so SearchStats.Distances()
// equals the Counter delta even when the traversal stops mid-leaf.
func (t *Tree[T]) rangeApprox(q T, r float64, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	qpath := make([]float64, t.p)
	qlo := make([]float64, t.p)
	qhi := make([]float64, t.p)
	var out []T
	t.rangeNodeApprox(t.root, q, r, a.Shrink(r), 0, qpath, qlo, qhi, &a, &out, &s)
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Items: out, Stats: s}
}

func (t *Tree[T]) rangeNodeApprox(n *node[T], q T, r, rp float64, plen int, qpath, qlo, qhi []float64, a *index.Approx, out *[]T, s *SearchStats) {
	if n == nil || a.Stop() {
		return
	}
	s.NodesVisited++
	t.TraceNode(n.isLeaf())
	if n.isLeaf() {
		t.rangeLeafApprox(n, q, r, rp, plen, qlo, qhi, a, out, s)
		return
	}
	if !a.Pay(2) {
		return
	}
	// The kernel bounds are the exact path's (r + cutMax): an abandoned
	// value and the true value land on the same side of every rp-window
	// test below because rp ≤ r, so shrinking the prune radius never
	// invalidates the abandonment certificate.
	var d1, d2 float64
	if plen >= t.p {
		d1 = t.dist.DistanceUpTo(q, n.sv1, r+n.cut1Max)
		d2 = t.dist.DistanceUpTo(q, n.sv2, r+n.cut2Max)
	} else {
		d1 = t.dist.Distance(q, n.sv1)
		d2 = t.dist.Distance(q, n.sv2)
	}
	s.VantagePoints += 2
	t.TraceDistance(2)
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	if d2 <= r {
		*out = append(*out, n.sv2)
	}
	if plen < t.p {
		qpath[plen], qlo[plen], qhi[plen] = d1, d1-rp, d1+rp
		plen++
		if plen < t.p {
			qpath[plen], qlo[plen], qhi[plen] = d2, d2-rp, d2+rp
			plen++
		}
	}
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		if d1+rp < lo1 || d1-rp > hi1 {
			s.ShellsPruned += len(row)
			t.TracePrune(obs.FilterShell, len(row))
			continue
		}
		for h, c := range row {
			if c == nil {
				continue
			}
			lo2, hi2 := shellBounds(n.cut2[g], h)
			if d2+rp < lo2 || d2-rp > hi2 {
				s.ShellsPruned++
				t.TracePrune(obs.FilterShell, 1)
				continue
			}
			t.rangeNodeApprox(c, q, r, rp, plen, qpath, qlo, qhi, a, out, s)
			if a.Stop() {
				return
			}
		}
	}
}

func (t *Tree[T]) rangeLeafApprox(n *node[T], q T, r, rp float64, plen int, qlo, qhi []float64, a *index.Approx, out *[]T, s *SearchStats) {
	s.LeavesVisited++
	if !n.hasSV1 || !a.Pay(1) {
		return
	}
	d1 := t.dist.DistanceUpTo(q, n.sv1, r+n.maxD1)
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= r {
		*out = append(*out, n.sv1)
	}
	var d2 float64
	if n.hasSV2 {
		if !a.Pay(1) {
			return
		}
		d2 = t.dist.DistanceUpTo(q, n.sv2, r+n.maxD2)
		s.VantagePoints++
		t.TraceDistance(1)
		if d2 <= r {
			*out = append(*out, n.sv2)
		}
	}
	d1lo, d1hi := d1-rp, d1+rp
	d2lo, d2hi := d2-rp, d2+rp
	var filteredD, filteredPath, computed, cand int
items:
	for i := range n.items {
		cand++
		if x := n.d1[i]; x < d1lo || x > d1hi {
			filteredD++
			continue
		}
		if n.hasSV2 {
			if x := n.d2[i]; x < d2lo || x > d2hi {
				filteredD++
				continue
			}
		}
		path := n.path(i)
		if len(path) > plen {
			path = path[:plen]
		}
		for l, pd := range path {
			if pd < qlo[l] || pd > qhi[l] {
				filteredPath++
				continue items
			}
		}
		if !a.Pay(1) {
			cand-- // not considered: the budget stopped the scan first
			break
		}
		computed++
		if t.dist.DistanceUpTo(q, n.items[i], r) <= r {
			*out = append(*out, n.items[i])
		}
	}
	s.Candidates += cand
	s.FilteredByD += filteredD
	s.FilteredByPath += filteredPath
	s.Computed += computed
	if filteredD > 0 {
		t.TracePrune(obs.FilterD, filteredD)
	}
	if filteredPath > 0 {
		t.TracePrune(obs.FilterPath, filteredPath)
	}
	if computed > 0 {
		t.TraceDistance(computed)
	}
}

// knnApprox is the (1+ε)-approximate / budgeted / early-terminating
// kNN traversal: best-first like KNNWithStats, but subtrees and leaf
// candidates are discarded once their lower bound reaches τ/(1+ε)
// (each returned neighbor distance is within (1+ε) of the true i-th
// nearest), the budget is debited before every computation (anytime:
// the heap always holds the best candidates seen so far), and patience
// stops the search after the configured number of consecutive leaves
// that fail to tighten τ.
func (t *Tree[T]) knnApprox(q T, k int, o index.SearchOptions) index.Result[T] {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return index.Result[T]{Stats: s}
	}
	a := index.StartApprox(o)
	best := heapx.NewKBest[T](k)
	type pending struct {
		n     *node[T]
		qpath []float64
	}
	var queue heapx.NodeQueue[pending]
	queue.PushNode(pending{t.root, make([]float64, 0, t.p)}, 0)
	for !a.Stop() {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		tau := best.Threshold()
		if bound >= a.Shrink(tau) {
			break
		}
		n, qpath := pn.n, pn.qpath
		s.NodesVisited++
		t.TraceNode(n.isLeaf())
		if n.isLeaf() {
			s.LeavesVisited++
			t.knnLeafApprox(n, q, qpath, best, &a, &s)
			a.LeafDone(best.Threshold() < tau, best.Full())
			continue
		}
		if !a.Pay(2) {
			break
		}
		var d1, d2 float64
		if len(qpath) >= t.p {
			d1 = t.dist.DistanceUpTo(q, n.sv1, tau+n.cut1Max)
			d2 = t.dist.DistanceUpTo(q, n.sv2, tau+n.cut2Max)
		} else {
			d1 = t.dist.Distance(q, n.sv1)
			d2 = t.dist.Distance(q, n.sv2)
		}
		if d1 <= tau+n.cut1Max {
			best.Push(n.sv1, d1)
		}
		if d2 <= tau+n.cut2Max {
			best.Push(n.sv2, d2)
		}
		s.VantagePoints += 2
		t.TraceDistance(2)
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			ext = append(ext, d1)
			if len(ext) < t.p {
				ext = append(ext, d2)
			}
			qpath = ext
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if gb := max(lb1, bound); gb >= a.Shrink(best.Threshold()) {
				s.ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(bound, lb1, intervalGap(d2, lo2, hi2))
				if lb < a.Shrink(best.Threshold()) {
					queue.PushNode(pending{c, qpath}, lb)
				} else {
					s.ShellsPruned++
					t.TracePrune(obs.FilterShell, 1)
				}
			}
		}
	}
	out := best.Sorted()
	a.Finish(&s)
	s.Results = len(out)
	span.Done(&s)
	return index.Result[T]{Neighbors: out, Stats: s}
}

func (t *Tree[T]) knnLeafApprox(n *node[T], q T, qpath []float64, best *heapx.KBest[T], a *index.Approx, s *SearchStats) {
	if !n.hasSV1 || !a.Pay(1) {
		return
	}
	b1 := best.Threshold() + n.maxD1
	d1 := t.dist.DistanceUpTo(q, n.sv1, b1)
	s.VantagePoints++
	t.TraceDistance(1)
	if d1 <= b1 {
		best.Push(n.sv1, d1)
	}
	var d2 float64
	if n.hasSV2 {
		if !a.Pay(1) {
			return
		}
		b2 := best.Threshold() + n.maxD2
		d2 = t.dist.DistanceUpTo(q, n.sv2, b2)
		s.VantagePoints++
		t.TraceDistance(1)
		if d2 <= b2 {
			best.Push(n.sv2, d2)
		}
	}
	var filteredD, filteredPath, computed, cand int
	for i := range n.items {
		cand++
		lbD := abs(d1 - n.d1[i])
		if n.hasSV2 {
			if b := abs(d2 - n.d2[i]); b > lbD {
				lbD = b
			}
		}
		tauA := a.Shrink(best.Threshold())
		if lbD >= tauA {
			filteredD++
			continue
		}
		lb := lbD
		path := n.path(i)
		if len(path) > len(qpath) {
			path = path[:len(qpath)]
		}
		for l, pd := range path {
			if b := abs(qpath[l] - pd); b > lb {
				lb = b
			}
		}
		if lb >= tauA {
			filteredPath++
			continue
		}
		if !a.Pay(1) {
			cand--
			break
		}
		computed++
		cb := best.Threshold()
		if d := t.dist.DistanceUpTo(q, n.items[i], cb); d <= cb {
			best.Push(n.items[i], d)
		}
	}
	s.Candidates += cand
	s.FilteredByD += filteredD
	s.FilteredByPath += filteredPath
	s.Computed += computed
	if filteredD > 0 {
		t.TracePrune(obs.FilterD, filteredD)
	}
	if filteredPath > 0 {
		t.TracePrune(obs.FilterPath, filteredPath)
	}
	if computed > 0 {
		t.TraceDistance(computed)
	}
}
