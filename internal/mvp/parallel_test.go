package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestParallelBuildIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 6))
	w := testutil.NewVectorWorkload(rng, 3000, 10, 10, metric.L2)
	seq, seqC := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 8}})
	par, parC := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 8, Workers: 8}})

	if seq.BuildCost() != par.BuildCost() {
		t.Errorf("build cost differs: sequential %d, parallel %d", seq.BuildCost(), par.BuildCost())
	}
	// Identical structure ⟹ identical per-query distance counts.
	for _, q := range w.Queries {
		for _, r := range []float64{0.1, 0.4} {
			seqC.Reset()
			a := seq.Range(q, r)
			parC.Reset()
			b := par.Range(q, r)
			if seqC.Count() != parC.Count() {
				t.Fatalf("query cost differs: %d vs %d", seqC.Count(), parC.Count())
			}
			if len(a) != len(b) {
				t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
			}
		}
	}
	// And identical invariants.
	checkNode(t, par, par.root, w.Dist, nil)
}

func TestParallelBuildCorrectness(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 6))
	w := testutil.NewVectorWorkload(rng, 1500, 8, 8, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 2, LeafCapacity: 10, PathLength: 4, Build: Build{Seed: 3, Workers: 4}})
	testutil.CheckRange(t, "mvpt-parallel", tree, w, []float64{0, 0.2, 0.6})
	testutil.CheckKNN(t, "mvpt-parallel", tree, w, []int{1, 5})
}
