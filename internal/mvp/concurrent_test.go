package mvp

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// TestConcurrentQueriesCountExactly shares one tree between concurrent
// Range and KNN queries and reconciles the shared atomic Counter
// against the per-query SearchStats: the final count must equal the sum
// of every query's Computed + VantagePoints delta. Before the Counter
// became atomic this lost increments (and failed under -race).
func TestConcurrentQueriesCountExactly(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 4))
	w := testutil.NewVectorWorkload(rng, 3000, 10, 16, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 3}})

	// Sequential reference answers, one per (query, kind).
	type answer struct {
		rangeLen int
		knnDists []float64
	}
	want := make([]answer, len(w.Queries))
	for i, q := range w.Queries {
		want[i].rangeLen = len(tree.Range(q, 0.6))
		for _, nb := range tree.KNN(q, 7) {
			want[i].knnDists = append(want[i].knnDists, nb.Dist)
		}
	}

	c.Reset()
	var statsTotal atomic.Int64
	var wg sync.WaitGroup
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for i, q := range w.Queries {
			wg.Add(2)
			go func(i, round int, q int) {
				defer wg.Done()
				out, s := tree.RangeWithStats(q, 0.6)
				statsTotal.Add(int64(s.Computed + s.VantagePoints))
				if len(out) != want[i].rangeLen {
					t.Errorf("concurrent Range(q=%d) returned %d items, sequential %d", q, len(out), want[i].rangeLen)
				}
			}(i, round, q)
			go func(i, round int, q int) {
				defer wg.Done()
				nn, s := tree.KNNWithStats(q, 7)
				statsTotal.Add(int64(s.Computed + s.VantagePoints))
				if len(nn) != len(want[i].knnDists) {
					t.Errorf("concurrent KNN(q=%d) returned %d items, sequential %d", q, len(nn), len(want[i].knnDists))
					return
				}
				for j, nb := range nn {
					if nb.Dist != want[i].knnDists[j] {
						t.Errorf("concurrent KNN(q=%d)[%d].Dist = %g, sequential %g", q, j, nb.Dist, want[i].knnDists[j])
						return
					}
				}
			}(i, round, q)
		}
	}
	wg.Wait()
	if got := c.Count(); got != statsTotal.Load() {
		t.Fatalf("shared counter says %d distance computations, per-query stats sum to %d", got, statsTotal.Load())
	}
}

// TestKNNMatchesKNNWithStats pins the unification of the two kNN
// implementations: on a seeded workload, KNN and KNNWithStats must
// return identical neighbors and make identical numbers of distance
// computations.
func TestKNNMatchesKNNWithStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(72, 4))
	w := testutil.NewVectorWorkload(rng, 2500, 12, 12, metric.L2)
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 40, PathLength: 5, Build: Build{Seed: 11}})
	for _, q := range w.Queries {
		for _, k := range []int{1, 5, 10} {
			c.Reset()
			plain := tree.KNN(q, k)
			plainCost := c.Count()

			c.Reset()
			stats, s := tree.KNNWithStats(q, k)
			statsCost := c.Count()

			if plainCost != statsCost {
				t.Fatalf("k=%d: KNN made %d distance computations, KNNWithStats %d", k, plainCost, statsCost)
			}
			if int64(s.Computed+s.VantagePoints) != statsCost {
				t.Fatalf("k=%d: stats account for %d computations, counter says %d", k, s.Computed+s.VantagePoints, statsCost)
			}
			if len(plain) != len(stats) {
				t.Fatalf("k=%d: result sizes %d vs %d", k, len(plain), len(stats))
			}
			for i := range plain {
				if plain[i].Item != stats[i].Item || plain[i].Dist != stats[i].Dist {
					t.Fatalf("k=%d: result[%d] differs: %v/%g vs %v/%g",
						k, i, plain[i].Item, plain[i].Dist, stats[i].Item, stats[i].Dist)
				}
			}
		}
	}
}
