package mvp

// Shared-traversal batch execution. SearchBatch answers a group of
// queries by descending the tree once for the whole group: each node's
// vantage distances are computed for all still-active queries with one
// blocked metric call (metric.Counter.BlockKernel), per-query prune
// state lives in pooled struct-of-arrays scratch, and each leaf arena
// is streamed once for the group. The batched paths replicate the
// sequential traversals' decisions exactly — every per-query result,
// order, SearchStats and counter delta is byte-identical to Search at
// every batch size; batching changes memory traffic, never answers.
//
// Why that equivalence holds:
//
//   - Exact range is a DFS whose per-node decisions for one query
//     depend only on (q, r) and the query's own PATH windows, so a
//     shared DFS with per-query active lists visits, per query, exactly
//     the sequential node set in the same (g ascending, h ascending)
//     order, and item-major leaf scans preserve each query's item
//     order and therefore its append order.
//   - Exact kNN is best-first with exactly one node fully processed per
//     pop. Lockstep rounds — each active query pops one node, pops are
//     grouped by node and processed with blocked kernels — preserve
//     each query's pop sequence and τ evolution exactly, because no
//     state is shared between queries.
//   - The block kernels produce bit-identical values to the one-to-one
//     bounded kernels for every (query, point, bound) triple (see
//     metric.BlockDistanceFunc), so no traversal decision can differ.
//
// Queries the shared traversal cannot batch — approximate modes
// (Epsilon/Budget/Patience), intra-query parallel requests (Workers >
// 1) and external kNN bounds — are answered by per-query Search calls
// inside the same invocation, which is trivially byte-identical.

import (
	"math"

	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

var _ index.BatchSearcher[int] = (*Tree[int])(nil)

// knnSlot is one query's private best-first state inside a batch: its
// candidate heap, node queue and query-PATH arena — the same trio
// queryScratch pools for sequential kNN.
type knnSlot[T any] struct {
	best  *heapx.KBest[T]
	queue heapx.NodeQueue[pendingRef[T]]
	arena []float64
}

// knnVisit is one query's pop in a lockstep round: the slot, its
// query-PATH window, the popped bound, and the τ snapshot read at pop
// time (sequential reads τ once per node; only the query's own
// processing can change it before the group is handled).
type knnVisit struct {
	slot      int32
	off, plen int32
	bound     float64
	tau       float64
}

// batchScratch is the pooled working state of one SearchBatch call.
// Per-slot arrays are indexed by the query's position in reqs; shared
// gather buffers are valid only across one blocked kernel call; the
// act/dstack arenas follow stack discipline through the range DFS so
// steady-state batches allocate nothing once capacities warm.
type batchScratch[T any] struct {
	// Shared gather buffers for blocked vantage calls.
	pts    []T
	bounds []float64
	dv1    []float64
	dv2    []float64
	vb     []float64
	// Survivor gather buffers for item-major leaf scans.
	spts    []T
	sbounds []float64
	sdv     []float64
	sslots  []int32

	// Stack-discipline arenas for the shared range DFS: act holds the
	// active-query windows of every live recursion level (slot ids, or
	// positions for the g-shell sublists), dstack the matching per-node
	// d1‖d2 values.
	act    []int32
	dstack []float64

	// Per-slot query state.
	qs          []T
	rads        []float64
	stats       []SearchStats
	outs        [][]T
	spans       []obs.Span
	ccs         []*cascade.Cache
	qpreps      []quant.Prepared
	quantOn     []bool
	quantPruned []int
	// qpath/qlo/qhi are B×p flat: slot j's windows live at [j·p, (j+1)·p).
	qpath []float64
	qlo   []float64
	qhi   []float64

	// Leaf-local per-slot windows and stage tallies (leaves never
	// recurse, so one set serves every leaf).
	wlo1, whi1, wlo2, whi2 []float64
	fD, fP, fC, fQ, comp   []int

	// Lockstep kNN bookkeeping.
	knn      []knnSlot[T]
	rangeLst []int32
	knnLst   []int32
	rounds   []int32
	gMap     map[*node[T]]int32
	gNodes   []*node[T]
	gVisits  [][]knnVisit
}

func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growTo(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]float64, n, 2*n)
	copy(ns, s)
	return ns
}

func (t *Tree[T]) getBatchScratch(b int) *batchScratch[T] {
	var bs *batchScratch[T]
	if v := t.bscratch.Get(); v != nil {
		bs = v.(*batchScratch[T])
	} else {
		bs = &batchScratch[T]{gMap: make(map[*node[T]]int32)}
	}
	bs.reserve(b, t.p)
	return bs
}

// reserve sizes every per-slot array for b slots (keeping pooled
// sub-state alive across growth) and resets the per-call lists.
func (bs *batchScratch[T]) reserve(b, p int) {
	if cap(bs.qs) < b {
		bs.qs = make([]T, b)
		bs.rads = make([]float64, b)
		bs.stats = make([]SearchStats, b)
		bs.outs = make([][]T, b)
		bs.spans = make([]obs.Span, b)
		bs.ccs = make([]*cascade.Cache, b)
		bs.qpreps = make([]quant.Prepared, b)
		bs.quantOn = make([]bool, b)
		bs.quantPruned = make([]int, b)
		bs.wlo1 = make([]float64, b)
		bs.whi1 = make([]float64, b)
		bs.wlo2 = make([]float64, b)
		bs.whi2 = make([]float64, b)
		bs.fD = make([]int, b)
		bs.fP = make([]int, b)
		bs.fC = make([]int, b)
		bs.fQ = make([]int, b)
		bs.comp = make([]int, b)
		knn := make([]knnSlot[T], b)
		copy(knn, bs.knn)
		bs.knn = knn
	} else {
		n := b
		bs.qs = bs.qs[:n]
		bs.rads = bs.rads[:n]
		bs.stats = bs.stats[:n]
		bs.outs = bs.outs[:n]
		bs.spans = bs.spans[:n]
		bs.ccs = bs.ccs[:n]
		bs.qpreps = bs.qpreps[:n]
		bs.quantOn = bs.quantOn[:n]
		bs.quantPruned = bs.quantPruned[:n]
		bs.wlo1, bs.whi1 = bs.wlo1[:n], bs.whi1[:n]
		bs.wlo2, bs.whi2 = bs.wlo2[:n], bs.whi2[:n]
		bs.fD, bs.fP, bs.fC = bs.fD[:n], bs.fP[:n], bs.fC[:n]
		bs.fQ, bs.comp = bs.fQ[:n], bs.comp[:n]
		bs.knn = bs.knn[:n]
	}
	if cap(bs.qpath) < b*p {
		bs.qpath = make([]float64, b*p)
		bs.qlo = make([]float64, b*p)
		bs.qhi = make([]float64, b*p)
	} else {
		bs.qpath = bs.qpath[:b*p]
		bs.qlo = bs.qlo[:b*p]
		bs.qhi = bs.qhi[:b*p]
	}
	bs.rangeLst = bs.rangeLst[:0]
	bs.knnLst = bs.knnLst[:0]
	bs.rounds = bs.rounds[:0]
}

// putBatchScratch clears every reference the scratch took from the
// caller or the tree (query objects, result slices, node pointers) so
// pooling never pins them, then returns it to the pool.
func (t *Tree[T]) putBatchScratch(bs *batchScratch[T]) {
	var zero T
	for i := range bs.qs {
		bs.qs[i] = zero
		bs.outs[i] = nil
		bs.ccs[i] = nil
		bs.qpreps[i].Release()
		bs.quantOn[i] = false
	}
	for i := range bs.knn {
		sl := &bs.knn[i]
		sl.arena = sl.arena[:0]
		sl.queue.Reset()
		if sl.best != nil {
			sl.best.Reset(1)
		}
	}
	clear(bs.pts)
	bs.pts = bs.pts[:0]
	clear(bs.spts)
	bs.spts = bs.spts[:0]
	bs.act = bs.act[:0]
	bs.dstack = bs.dstack[:0]
	clear(bs.gMap)
	for i := range bs.gNodes {
		bs.gNodes[i] = nil
	}
	t.bscratch.Put(bs)
}

// prepareQuantSlot is prepareQuant for one batch slot.
func (t *Tree[T]) prepareQuantSlot(bs *batchScratch[T], i int, q T) {
	bs.quantOn[i] = false
	bs.quantPruned[i] = 0
	if t.qset == nil {
		return
	}
	qv, ok := any(q).([]float64)
	if !ok {
		return
	}
	t.qset.Prepare(&bs.qpreps[i], qv)
	bs.quantOn[i] = true
}

// SearchBatch answers reqs[i] into results[i] with one shared traversal
// per query group (index.BatchSearcher). It panics unless len(results)
// == len(reqs). Exact range queries share one DFS, exact kNN queries
// run in lockstep rounds, and everything else falls back to per-query
// Search within the same call; every results[i] is byte-identical to
// Search(reqs[i]).
//
// SearchBatch is safe to call concurrently with itself and with Search;
// like Search, per-query counter attribution requires the per-Result
// Stats rather than Counter deltas when calls overlap.
func (t *Tree[T]) SearchBatch(reqs []index.Query[T], results []index.Result[T]) {
	if len(reqs) != len(results) {
		panic("mvp: SearchBatch requires len(results) == len(reqs)")
	}
	if len(reqs) == 0 {
		return
	}
	if len(reqs) == 1 {
		// A group of one shares nothing; the per-query path is the
		// reference the batch is pinned against, so delegating is
		// identical by definition and skips the group scaffolding.
		results[0] = t.Search(reqs[0])
		return
	}
	bs := t.getBatchScratch(len(reqs))
	for i := range reqs {
		req := &reqs[i]
		if req.K > 0 {
			if req.Opts.Approximate() || req.Opts.Bound != nil {
				results[i] = t.Search(*req)
				continue
			}
			bs.spans[i] = t.StartQuery(obs.KindKNN)
			bs.stats[i] = SearchStats{}
			if t.root == nil {
				bs.spans[i].Done(&bs.stats[i])
				results[i] = index.Result[T]{Stats: bs.stats[i]}
				continue
			}
			bs.qs[i] = req.Point
			t.prepareQuantSlot(bs, i, req.Point)
			if t.cas != nil {
				bs.ccs[i] = t.cas.Get()
			}
			sl := &bs.knn[i]
			if sl.best == nil {
				sl.best = heapx.NewKBest[T](req.K)
			} else {
				sl.best.Reset(req.K)
			}
			sl.queue.PushNode(pendingRef[T]{n: t.root}, 0)
			bs.knnLst = append(bs.knnLst, int32(i))
			continue
		}
		if req.Opts.Approximate() || req.Opts.Workers > 1 {
			results[i] = t.Search(*req)
			continue
		}
		bs.spans[i] = t.StartQuery(obs.KindRange)
		bs.stats[i] = SearchStats{}
		if req.Radius < 0 || t.root == nil {
			bs.spans[i].Done(&bs.stats[i])
			results[i] = index.Result[T]{Stats: bs.stats[i]}
			continue
		}
		bs.qs[i] = req.Point
		bs.rads[i] = req.Radius
		t.prepareQuantSlot(bs, i, req.Point)
		if t.cas != nil {
			bs.ccs[i] = t.cas.Get()
		}
		bs.rangeLst = append(bs.rangeLst, int32(i))
	}
	if len(bs.rangeLst) > 0 {
		t.rangeBatchNode(t.root, bs.rangeLst, 0, bs)
		for _, j := range bs.rangeLst {
			s := &bs.stats[j]
			if t.cas != nil {
				t.cas.Put(bs.ccs[j])
				bs.ccs[j] = nil
			}
			t.ObserveQuantPruned(bs.quantPruned[j])
			s.Results = len(bs.outs[j])
			bs.spans[j].Done(s)
			results[j] = index.Result[T]{Items: bs.outs[j], Stats: *s}
			bs.outs[j] = nil // the result slice escapes to the caller
		}
	}
	if len(bs.knnLst) > 0 {
		t.knnBatch(bs)
		for _, j := range bs.knnLst {
			sl := &bs.knn[j]
			out := sl.best.Sorted()
			s := &bs.stats[j]
			if t.cas != nil {
				t.cas.Put(bs.ccs[j])
				bs.ccs[j] = nil
			}
			t.ObserveQuantPruned(bs.quantPruned[j])
			s.Results = len(out)
			bs.spans[j].Done(s)
			results[j] = index.Result[T]{Neighbors: out, Stats: *s}
		}
	}
	t.putBatchScratch(bs)
}

// rangeBatchNode is rangeNode for a group: act holds the slots whose
// query balls can still reach n. plen is uniform across the group — it
// is a function of tree position, not of the query.
func (t *Tree[T]) rangeBatchNode(n *node[T], act []int32, plen int, bs *batchScratch[T]) {
	if n == nil || len(act) == 0 {
		return
	}
	leaf := n.isLeaf()
	for _, j := range act {
		bs.stats[j].NodesVisited++
		t.TraceNode(leaf)
	}
	if leaf {
		t.rangeBatchLeaf(n, act, plen, bs)
		return
	}

	na := len(act)
	pts := bs.pts[:0]
	for _, j := range act {
		pts = append(pts, bs.qs[j])
	}
	bs.pts = pts
	blk := t.dist.BlockKernel()

	// Per-node d1‖d2 values live on the dstack so sibling recursion
	// cannot clobber them; the block kernels write into the windows
	// directly.
	dBase := len(bs.dstack)
	bs.dstack = growTo(bs.dstack, dBase+2*na)
	d1v := bs.dstack[dBase : dBase+na]
	d2v := bs.dstack[dBase+na : dBase+2*na]

	// The two vantage phases replicate rangeNode exactly, one blocked
	// call per vantage point: while the query PATH is filling every
	// distance is exact; afterwards each query abandons past r+cutMax
	// unless it is a stamped cascade pivot the query's cache still
	// wants, which is computed exactly (+Inf bound) and registered. d1
	// registrations land before any d2 Wants() decision, preserving the
	// per-query registration order (and the cache's per-query limit
	// cut) of the sequential code.
	if plen >= t.p {
		bounds := growF(bs.bounds, na)
		for i, j := range act {
			if cc := bs.ccs[j]; cc != nil && n.cas1 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = bs.rads[j] + n.cut1Max
			}
		}
		bs.bounds = bounds
		blk(n.sv1, pts, bounds, d1v)
		if n.cas1 != 0 {
			for i, j := range act {
				if cc := bs.ccs[j]; cc != nil && cc.Wants() {
					cc.Register(n.cas1-1, d1v[i])
				}
			}
		}
		for i, j := range act {
			if cc := bs.ccs[j]; cc != nil && n.cas2 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = bs.rads[j] + n.cut2Max
			}
		}
		blk(n.sv2, pts, bounds, d2v)
		if n.cas2 != 0 {
			for i, j := range act {
				if cc := bs.ccs[j]; cc != nil && cc.Wants() {
					cc.Register(n.cas2-1, d2v[i])
				}
			}
		}
	} else {
		blk(n.sv1, pts, nil, d1v)
		blk(n.sv2, pts, nil, d2v)
		for i, j := range act {
			cc := bs.ccs[j]
			if cc == nil {
				continue
			}
			if n.cas1 != 0 && cc.Wants() {
				cc.Register(n.cas1-1, d1v[i])
			}
			if n.cas2 != 0 && cc.Wants() {
				cc.Register(n.cas2-1, d2v[i])
			}
		}
	}
	t.dist.Add(int64(2 * na))

	for i, j := range act {
		s := &bs.stats[j]
		s.VantagePoints += 2
		t.TraceDistance(2)
		r := bs.rads[j]
		if d1v[i] <= r {
			bs.outs[j] = append(bs.outs[j], n.sv1)
		}
		if d2v[i] <= r {
			bs.outs[j] = append(bs.outs[j], n.sv2)
		}
	}
	if plen < t.p {
		for i, j := range act {
			o := int(j)*t.p + plen
			r := bs.rads[j]
			bs.qpath[o] = d1v[i]
			bs.qlo[o] = d1v[i] - r
			bs.qhi[o] = d1v[i] + r
		}
		plen++
		if plen < t.p {
			for i, j := range act {
				o := int(j)*t.p + plen
				r := bs.rads[j]
				bs.qpath[o] = d2v[i]
				bs.qlo[o] = d2v[i] - r
				bs.qhi[o] = d2v[i] + r
			}
			plen++
		}
	}

	// Shell visiting order is g ascending then h ascending — each
	// query's node visit order is exactly its sequential DFS order. The
	// g sublist stores positions into act (so d1v/d2v stay addressable);
	// the recursion windows store slots. Stats mirror rangeNode: a
	// pruned g shell charges len(row) (nil children included), the
	// inner loop skips nil children before the d2 window check.
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		gBase := len(bs.act)
		for i, j := range act {
			r := bs.rads[j]
			if d1v[i]+r < lo1 || d1v[i]-r > hi1 {
				bs.stats[j].ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			bs.act = append(bs.act, int32(i))
		}
		gPos := bs.act[gBase:]
		if len(gPos) > 0 {
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				hBase := len(bs.act)
				for _, pi := range gPos {
					j := act[pi]
					r := bs.rads[j]
					if d2v[pi]+r < lo2 || d2v[pi]-r > hi2 {
						bs.stats[j].ShellsPruned++
						t.TracePrune(obs.FilterShell, 1)
						continue
					}
					bs.act = append(bs.act, j)
				}
				hAct := bs.act[hBase:]
				if len(hAct) > 0 {
					t.rangeBatchNode(c, hAct, plen, bs)
				}
				bs.act = bs.act[:hBase]
			}
		}
		bs.act = bs.act[:gBase]
	}
	bs.dstack = bs.dstack[:dBase]
}

// rangeBatchLeaf is rangeLeaf for a group: the vantage points are
// evaluated with one blocked call each, then the leaf arena is streamed
// item-major — every still-interested query filters item i through its
// D1/D2 windows, PATH prefix, cascade and quantized bounds in the
// sequential order, and one blocked call evaluates the survivors.
func (t *Tree[T]) rangeBatchLeaf(n *node[T], act []int32, plen int, bs *batchScratch[T]) {
	for _, j := range act {
		bs.stats[j].LeavesVisited++
	}
	if !n.hasSV1 {
		return
	}
	blk := t.dist.BlockKernel()
	na := len(act)
	pts := bs.pts[:0]
	for _, j := range act {
		pts = append(pts, bs.qs[j])
	}
	bs.pts = pts
	bounds := growF(bs.bounds, na)
	bs.bounds = bounds
	dv1 := growF(bs.dv1, na)
	bs.dv1 = dv1
	dv2 := growF(bs.dv2, na)
	bs.dv2 = dv2

	for i, j := range act {
		if cc := bs.ccs[j]; cc != nil && n.cas1 != 0 && cc.Wants() {
			bounds[i] = math.Inf(1)
		} else {
			bounds[i] = bs.rads[j] + n.maxD1
		}
	}
	blk(n.sv1, pts, bounds, dv1)
	for i, j := range act {
		d1 := dv1[i]
		if cc := bs.ccs[j]; cc != nil && n.cas1 != 0 && cc.Wants() {
			cc.Register(n.cas1-1, d1)
		}
		s := &bs.stats[j]
		s.VantagePoints++
		t.TraceDistance(1)
		if d1 <= bs.rads[j] {
			bs.outs[j] = append(bs.outs[j], n.sv1)
		}
	}
	vantages := 1
	if n.hasSV2 {
		for i, j := range act {
			if cc := bs.ccs[j]; cc != nil && n.cas2 != 0 && cc.Wants() {
				bounds[i] = math.Inf(1)
			} else {
				bounds[i] = bs.rads[j] + n.maxD2
			}
		}
		blk(n.sv2, pts, bounds, dv2)
		for i, j := range act {
			d2 := dv2[i]
			if cc := bs.ccs[j]; cc != nil && n.cas2 != 0 && cc.Wants() {
				cc.Register(n.cas2-1, d2)
			}
			s := &bs.stats[j]
			s.VantagePoints++
			t.TraceDistance(1)
			if d2 <= bs.rads[j] {
				bs.outs[j] = append(bs.outs[j], n.sv2)
			}
		}
		vantages = 2
	}

	for i, j := range act {
		r := bs.rads[j]
		bs.wlo1[j], bs.whi1[j] = dv1[i]-r, dv1[i]+r
		bs.wlo2[j], bs.whi2[j] = dv2[i]-r, dv2[i]+r
		bs.fD[j], bs.fP[j], bs.fC[j], bs.fQ[j], bs.comp[j] = 0, 0, 0, 0, 0
	}

	items := n.items
	d1s := n.d1[:len(items)]
	d2s := n.d2
	hasSV2 := n.hasSV2
	if hasSV2 {
		d2s = d2s[:len(items)]
	}
	cas, base := t.cas, n.casBase
	qset, qcodes, qf32 := t.qset, n.qcodes, n.qf32
	hasQuant := qcodes != nil || qf32 != nil
	p := t.p
	for i := range items {
		surv := bs.sslots[:0]
		spts := bs.spts[:0]
		sbounds := bs.sbounds[:0]
		for _, j := range act {
			if x := d1s[i]; x < bs.wlo1[j] || x > bs.whi1[j] {
				bs.fD[j]++
				continue
			}
			if hasSV2 {
				if x := d2s[i]; x < bs.wlo2[j] || x > bs.whi2[j] {
					bs.fD[j]++
					continue
				}
			}
			path := n.pathData[n.pathOff[i]:n.pathOff[i+1]]
			if len(path) > plen {
				path = path[:plen]
			}
			qbase := int(j) * p
			pathOK := true
			for l, pd := range path {
				if pd < bs.qlo[qbase+l] || pd > bs.qhi[qbase+l] {
					bs.fP[j]++
					pathOK = false
					break
				}
			}
			if !pathOK {
				continue
			}
			r := bs.rads[j]
			if cc := bs.ccs[j]; cc != nil && cc.Registered() > 0 {
				if lb := cas.LowerBound(cc, base+int32(i)); lb > r {
					bs.fC[j]++
					continue
				}
			}
			bs.comp[j]++
			if hasQuant && bs.quantOn[j] && qset.PruneAt(&bs.qpreps[j], qcodes, qf32, i, r) {
				bs.fQ[j]++
				continue
			}
			surv = append(surv, j)
			spts = append(spts, bs.qs[j])
			sbounds = append(sbounds, r)
		}
		bs.sslots, bs.spts, bs.sbounds = surv, spts, sbounds
		if len(surv) > 0 {
			sdv := growF(bs.sdv, len(surv))
			bs.sdv = sdv
			blk(items[i], spts, sbounds, sdv)
			for k, j := range surv {
				if sdv[k] <= sbounds[k] {
					bs.outs[j] = append(bs.outs[j], items[i])
				}
			}
		}
	}

	total := 0
	for _, j := range act {
		total += vantages + bs.comp[j]
		s := &bs.stats[j]
		s.Candidates += len(items)
		s.FilteredByD += bs.fD[j]
		s.FilteredByPath += bs.fP[j]
		s.FilteredByCascade += bs.fC[j]
		s.Computed += bs.comp[j]
		bs.quantPruned[j] += bs.fQ[j]
		if bs.fD[j] > 0 {
			t.TracePrune(obs.FilterD, bs.fD[j])
		}
		if bs.fP[j] > 0 {
			t.TracePrune(obs.FilterPath, bs.fP[j])
		}
		if bs.fC[j] > 0 {
			t.TracePrune(obs.FilterCascade, bs.fC[j])
		}
		if bs.fQ[j] > 0 {
			t.TracePrune(obs.FilterQuantized, bs.fQ[j])
		}
		if bs.comp[j] > 0 {
			t.TraceDistance(bs.comp[j])
		}
	}
	t.dist.Add(int64(total))
}
