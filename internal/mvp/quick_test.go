package mvp

// Property-based testing: random tree configurations over random
// workloads must always agree with the linear scan.

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

// quickParams is a randomly generated tree/workload configuration.
type quickParams struct {
	M, K, P     uint8
	N           uint16
	Dim         uint8
	Seed        uint64
	Radius      float64
	RandomSV2   bool
	ClumpedData bool
}

func TestQuickRandomConfigurations(t *testing.T) {
	check := func(p quickParams) bool {
		m := int(p.M)%4 + 2      // 2..5
		k := int(p.K)%100 + 1    // 1..100
		pl := int(p.P)%9 - 1     // -1..7
		n := int(p.N)%400 + 1    // 1..400
		dim := int(p.Dim)%12 + 1 // 1..12
		r := abs(p.Radius)       // any non-negative radius
		if r != r || r > 1e12 {
			r = 1 // NaN/huge radii are exercised by dedicated tests
		}
		for r > 10 {
			r /= 10
		}
		rng := rand.New(rand.NewPCG(p.Seed, 99))
		var w *testutil.Workload
		if p.ClumpedData {
			w = testutil.NewClumpedWorkload(rng, n, dim, 3, metric.L2)
		} else {
			w = testutil.NewVectorWorkload(rng, n, dim, 3, metric.L2)
		}
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{
			Partitions: m, LeafCapacity: k, PathLength: pl,
			RandomSecondVantage: p.RandomSV2, Build: Build{Seed: p.Seed},
		})
		if err != nil {
			t.Logf("New(m=%d k=%d p=%d): %v", m, k, pl, err)
			return false
		}
		truth := linear.New(w.Items, metric.NewCounter(w.Dist))
		for _, q := range w.Queries {
			got := append([]int(nil), tree.Range(q, r)...)
			want := append([]int(nil), truth.Range(q, r)...)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Logf("m=%d k=%d p=%d n=%d dim=%d r=%g: got %d results, want %d",
					m, k, pl, n, dim, r, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("result sets differ at %d", i)
					return false
				}
			}
			// kNN spot check.
			nn := tree.KNN(q, 3)
			tn := truth.KNN(q, 3)
			if len(nn) != len(tn) {
				return false
			}
			for i := range nn {
				if d := nn[i].Dist - tn[i].Dist; d > 1e-9 || d < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
