// Package mvp implements the multi-vantage-point (mvp) tree of Bozkaya &
// Ozsoyoglu (SIGMOD 1997), the paper's primary contribution.
//
// The mvp-tree is a static, balanced, distance-based index for metric
// spaces. It differs from the vp-tree in two ways:
//
//  1. Every node uses two vantage points. The first partitions the
//     node's points into m equal-cardinality spherical shells; the
//     second partitions each shell into m further parts, giving fanout
//     m² with only two vantage points — half as many vantage points per
//     level as an equivalent vp-tree, so fewer query-to-vantage-point
//     distance computations during search (paper Observation 1).
//
//  2. Every data point stored in a leaf keeps the first p distances to
//     the vantage points on its root-to-leaf path, computed anyway
//     during construction. At query time these pre-computed distances
//     give triangle-inequality lower bounds that filter leaf points
//     before any real distance computation (paper Observation 2).
//
// Leaves also store each point's exact distances to the leaf's own two
// vantage points (the D1/D2 arrays of the paper), and leaf capacity k is
// typically made large so that most points live in leaves, delaying the
// major filtering step to the leaf level where it is cheapest.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package mvp

import (
	"errors"
	"math"
	"sync"

	"mvptree/internal/build"
	"mvptree/internal/cascade"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"
)

// Build is the shared construction options (Workers, Seed) every index
// package embeds; see build.Options.
type Build = build.Options

// Options configure construction of an mvp-tree. The three parameters
// named in the paper (§4.2) are Partitions (m), LeafCapacity (k) and
// PathLength (p).
type Options struct {
	// Build holds the shared construction knobs: Workers spreads
	// construction's distance computations and subtree builds over a
	// bounded goroutine pool (the tree built is byte-for-byte identical
	// for every worker count), and Seed makes vantage-point selection
	// deterministic.
	Build
	// Partitions is m, the number of partitions created by each
	// vantage point; each node has fanout m². The paper finds m=3 the
	// sweet spot for its vector workloads. Default 2 (the paper's
	// presentation case).
	Partitions int
	// LeafCapacity is k, the maximum number of data points in a leaf
	// in addition to the leaf's two vantage points. The paper
	// recommends large leaves (e.g. 80) so most points are filtered by
	// the pre-computed distances. Default 13.
	LeafCapacity int
	// PathLength is p, the number of ancestor-vantage-point distances
	// retained for every leaf point. It cannot exceed the number of
	// vantage points on a root-to-leaf path; extra slots are simply
	// never filled. PathLength 0 disables path filtering (useful for
	// the ablation benchmark); -1 requests a genuine zero. Default 4.
	PathLength int
	// RandomSecondVantage, when true, picks the second vantage point
	// uniformly from the outermost shell instead of taking the point
	// farthest from the first vantage point. The paper argues the
	// farthest point is the best candidate (§4.2); this switch exists
	// for the ablation experiment that quantifies the claim.
	RandomSecondVantage bool
	// FlatVectors, for []float64 items only, copies every leaf's
	// vectors into one contiguous arena after construction so survivor
	// distance computations read sequential memory. Results, distance
	// counts and the serialized form are unaffected; the option is
	// silently ignored for non-vector item types.
	FlatVectors bool
	// Quantize, for []float64 items under a metric with a registered
	// quantized lower-bound shape (metric.RegisterQuantized), builds a
	// small companion representation of every leaf (internal/quant) that
	// leaf scans consult before the exact kernel: candidates whose
	// quantized lower bound certifies d > threshold skip the float64
	// evaluation. Results, order, SearchStats and counter deltas are
	// byte-identical on or off; the option is silently ignored when the
	// items or metric cannot be quantized. Equivalent to calling
	// EnableQuantize after construction.
	Quantize quant.Mode
}

func (o *Options) setDefaults() {
	if o.Partitions == 0 {
		o.Partitions = 2
	}
	if o.LeafCapacity == 0 {
		o.LeafCapacity = 13
	}
	switch {
	case o.PathLength == 0:
		o.PathLength = 4
	case o.PathLength < 0:
		o.PathLength = 0
	}
}

func (o *Options) validate() error {
	if err := o.Build.Validate("mvp"); err != nil {
		return err
	}
	if o.Partitions < 2 {
		return errors.New("mvp: Partitions must be at least 2")
	}
	if o.LeafCapacity < 1 {
		return errors.New("mvp: LeafCapacity must be at least 1")
	}
	return nil
}

// Tree is a multi-vantage-point tree over a fixed item set. The
// embedded obs.Hooks let callers attach an Observer and/or Tracer
// (SetObserver / SetTracer); with neither attached the query paths pay
// only nil checks.
type Tree[T any] struct {
	obs.Hooks
	root       *node[T]
	dist       *metric.Counter[T]
	size       int
	m          int
	k          int
	p          int
	buildStats build.Stats
	scratch    sync.Pool // *queryScratch[T]; see pool.go
	bscratch   sync.Pool // *batchScratch[T]; see batch.go
	// cas is the cross-query bound cascade, nil unless EnableCascade
	// built one; see cascade.go.
	cas *cascade.Filter[T]
	// qset is the trained quantized pre-filter, nil unless
	// EnableQuantize built one; see quantize.go.
	qset *quant.Set
}

var _ index.StatsIndex[int] = (*Tree[int])(nil)

// node is either an internal node (children != nil) or a leaf. Both
// kinds carry up to two vantage points, which are real data points.
type node[T any] struct {
	sv1, sv2 T
	hasSV1   bool
	hasSV2   bool

	// Internal node: cut1 partitions by distance to sv1 into
	// len(cut1)+1 shells; cut2[g] partitions shell g by distance to
	// sv2. children[g][h] indexes shell g, sub-shell h. cut1Max and
	// cut2Max cache the largest finite shell boundary per vantage
	// point: any query-to-vantage distance certified to exceed
	// radius+cutMax prunes every inner shell and leaves only the
	// unbounded outermost one, which is what lets the search pass a
	// finite bound to the distance kernel without changing a single
	// traversal decision.
	cut1     []float64
	cut2     [][]float64
	children [][]*node[T]
	cut1Max  float64
	cut2Max  float64

	// Leaf node: items with exact distances to the leaf vantage
	// points (the paper's D1, D2 arrays) and the retained PATH
	// prefix of ancestor vantage distances. PATHs live in one
	// contiguous backing array (pathData) addressed by pathOff
	// (len(items)+1 offsets), so the Observation-2 filter scans
	// sequential memory instead of chasing a pointer per point.
	// maxD1/maxD2 cache the largest stored leaf distance, the
	// abandonment bounds for the leaf's vantage-point kernels.
	items    []T
	d1       []float64
	d2       []float64
	pathData []float64
	pathOff  []int32
	maxD1    float64
	maxD2    float64

	// Cascade stamps (see cascade.go; all zero until EnableCascade).
	// cas1/cas2 mark the node's vantage points as cascade pivots (the
	// stamp is the pivot index plus one; zero means unstamped) and
	// casBase is the cascade id of the leaf's first item.
	cas1, cas2 int32
	casBase    int32

	// Quantized companion views of items (exactly one non-nil when the
	// tree's qset is armed): len(items)·dim entries, item i's block at
	// i·dim. See quantize.go.
	qcodes []byte
	qf32   []float32
}

func (n *node[T]) isLeaf() bool { return n.children == nil }

// path returns leaf point i's retained PATH prefix (a view into the
// leaf's contiguous backing array).
func (n *node[T]) path(i int) []float64 {
	return n.pathData[n.pathOff[i]:n.pathOff[i+1]]
}

// setDerived recomputes the cached filter bounds (maxD1/maxD2 for
// leaves, cut1Max/cut2Max for internal nodes) from the node's stored
// distances. Construction and Load both route through it so the two
// always agree.
func (n *node[T]) setDerived() {
	if n.isLeaf() {
		n.maxD1, n.maxD2 = maxOf(n.d1), maxOf(n.d2)
		return
	}
	n.cut1Max = maxOf(n.cut1)
	n.cut2Max = 0
	for _, row := range n.cut2 {
		if m := maxOf(row); m > n.cut2Max {
			n.cut2Max = m
		}
	}
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// entry carries an item and its accumulating PATH during construction.
type entry[T any] struct {
	item T
	path []float64
}

// New builds an mvp-tree over items using the counted metric dist. The
// items slice is not retained. Construction makes O(n · log_{m²} n)
// distance computations, visible on dist and recorded in BuildCost.
func New[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], error) {
	t, _, err := NewWithStats(items, dist, opts)
	return t, err
}

// NewWithStats is New plus the shared construction report: distance
// computations, wall time, node count and depth (build.Stats).
func NewWithStats[T any](items []T, dist *metric.Counter[T], opts Options) (*Tree[T], build.Stats, error) {
	opts.setDefaults()
	if err := opts.validate(); err != nil {
		return nil, build.Stats{}, err
	}
	t := &Tree[T]{
		dist: dist,
		size: len(items),
		m:    opts.Partitions,
		k:    opts.LeafCapacity,
		p:    opts.PathLength,
	}
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{item: it}
	}
	b := build.Start(dist, opts.Build)
	t.root = t.build(b, entries, build.NewRNG(opts.Seed, 0x6d767074726565), &opts, 0)
	t.buildStats = b.Finish()
	if opts.FlatVectors {
		t.flattenLeafVectors()
	}
	if opts.Quantize != quant.Off {
		if err := t.EnableQuantize(opts.Quantize); err != nil {
			return nil, build.Stats{}, err
		}
	}
	return t, t.buildStats, nil
}

// flattenLeafVectors rewrites every leaf's item vectors into one
// contiguous arena (no-op for non-[]float64 item types).
func (t *Tree[T]) flattenLeafVectors() {
	var groups [][]T
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			if len(n.items) > 0 {
				groups = append(groups, n.items)
			}
			return
		}
		for _, row := range n.children {
			for _, c := range row {
				walk(c)
			}
		}
	}
	walk(t.root)
	build.FlattenVectors(groups)
}

// Len reports the number of indexed items.
func (t *Tree[T]) Len() int { return t.size }

// Counter returns the counted metric the tree measures distances with.
func (t *Tree[T]) Counter() *metric.Counter[T] { return t.dist }

// DistanceCount reports the cumulative distance computations on the
// tree's counter (build + queries), the paper's cost metric.
func (t *Tree[T]) DistanceCount() int64 { return t.dist.Count() }

// BuildCost reports the number of distance computations made during
// construction.
func (t *Tree[T]) BuildCost() int64 { return t.buildStats.Distances }

// BuildStats reports the full construction report (zero for a tree
// produced by Load, which computes no distances).
func (t *Tree[T]) BuildStats() build.Stats { return t.buildStats }

// Partitions returns m, LeafCapacity returns k and PathLength returns p
// as actually used (after defaulting).
func (t *Tree[T]) Partitions() int   { return t.m }
func (t *Tree[T]) LeafCapacity() int { return t.k }
func (t *Tree[T]) PathLength() int   { return t.p }

// Height reports the height of the tree in node levels below the root; a
// tree that is a single leaf has height 0.
func (t *Tree[T]) Height() int { return nodeHeight(t.root) }

func nodeHeight[T any](n *node[T]) int {
	if n == nil || n.isLeaf() {
		return 0
	}
	h := 0
	for _, row := range n.children {
		for _, c := range row {
			if ch := nodeHeight(c); ch > h {
				h = ch
			}
		}
	}
	return h + 1
}

// Stats describes the shape of a built tree.
type Stats struct {
	Nodes         int // total nodes (internal + leaf)
	Leaves        int
	VantagePoints int // data points promoted to vantage points
	LeafItems     int // data points stored in leaves
	Height        int
	MaxPathLen    int // longest retained PATH across all leaf points
}

// Shape walks the tree and reports its Stats.
func (t *Tree[T]) Shape() Stats {
	var s Stats
	walkShape(t.root, &s)
	s.Height = t.Height()
	return s
}

func walkShape[T any](n *node[T], s *Stats) {
	if n == nil {
		return
	}
	s.Nodes++
	if n.hasSV1 {
		s.VantagePoints++
	}
	if n.hasSV2 {
		s.VantagePoints++
	}
	if n.isLeaf() {
		s.Leaves++
		s.LeafItems += len(n.items)
		for i := range n.items {
			if l := len(n.path(i)); l > s.MaxPathLen {
				s.MaxPathLen = l
			}
		}
		return
	}
	for _, row := range n.children {
		for _, c := range row {
			walkShape(c, s)
		}
	}
}

// shellBounds returns the closed distance interval covered by shell g of
// a cutoff array (same convention as the vp-tree).
func shellBounds(cutoffs []float64, g int) (lo, hi float64) {
	lo, hi = 0, math.Inf(1)
	if g > 0 {
		lo = cutoffs[g-1]
	}
	if g < len(cutoffs) {
		hi = cutoffs[g]
	}
	return lo, hi
}

// intervalGap returns the lower bound on |x - y| for y ∈ [lo, hi]: zero
// when x is inside the interval, otherwise the distance to the nearer
// endpoint. It is the triangle-inequality lower bound used to prune a
// shell given the query's distance x to the shell's vantage point.
func intervalGap(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	default:
		return 0
	}
}
