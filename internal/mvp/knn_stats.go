package mvp

import (
	"math"

	"mvptree/internal/cascade"
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// KNNWithStats is KNN plus the same per-query filtering breakdown that
// RangeWithStats reports: how many leaf candidates the stored D1/D2
// distances excluded on their own, how many additionally needed a PATH
// entry, and how many real distance computations remained.
//
// The traversal state (node queue, k-best heap, query-PATH arena) is
// pooled on the tree, and every threshold-only distance computation
// goes through the metric's early-abandoning fast path with τ — the
// current k-th best distance, +Inf until the heap fills — in the role
// the radius plays for Range. Steady state allocates nothing but the
// result slice, and results, distance counts and stats are identical to
// the exact-kernel traversal.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	return t.KNNWithStatsBound(q, k, nil)
}

// KNNWithStatsBound is KNNWithStats with an optional external pruning
// bound (index.KNNBound), the hook the sharded index uses to share the
// shrinking k-th-best distance across shards. With ext == nil the
// traversal, results, distance counts and stats are exactly those of
// KNNWithStats. With a bound attached, every pruning and abandonment
// decision consults τ′ = min(τ_local, ext.Tau()), the search publishes
// its own tightening threshold back through ext.Publish, and any
// candidate certified to exceed the external bound is discarded — it
// cannot belong to the global top-k the caller is assembling (ties
// exactly at the global k-th distance may be dropped, as the KNN
// contract permits). Consequently the returned list may be shorter
// than k; it always contains every indexed item whose distance is
// strictly below the external bound's final value, k best at most.
func (t *Tree[T]) KNNWithStatsBound(q T, k int, ext index.KNNBound) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	sc := t.getScratch()
	t.prepareQuant(sc, q)
	if sc.best == nil {
		sc.best = heapx.NewKBest[T](k)
	} else {
		sc.best.Reset(k)
	}
	best, queue := sc.best, &sc.queue
	var cc *cascade.Cache
	if t.cas != nil {
		cc = t.cas.Get()
	}
	queue.PushNode(pendingRef[T]{n: t.root}, 0)
	for {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		// τ is read once per node: the bounds below stay valid as the
		// heap tightens because τ only ever decreases. The external
		// bound joins here — τ′ = min(τ_local, ext.Tau()) — so a
		// tighter cross-shard bound prunes exactly like a tighter heap.
		tau := best.Threshold()
		if ext != nil {
			if e := ext.Tau(); e < tau {
				tau = e
			}
		}
		if bound >= tau {
			break
		}
		n := pn.n
		s.NodesVisited++
		t.TraceNode(n.isLeaf())
		if n.isLeaf() {
			s.LeavesVisited++
			t.knnLeafStats(n, q, sc.arena[pn.off:pn.off+pn.plen], best, ext, cc, sc, &s)
			continue
		}
		// Stamped cascade pivots are computed exactly while the cache
		// still wants registrations (an exact value is a valid bounded
		// result, so every decision below is unchanged).
		var d1, d2 float64
		if int(pn.plen) >= t.p {
			// The query PATH is full, so these distances are only
			// compared against shell boundaries and τ′; abandoning past
			// τ′+cutMax prunes exactly the shells the exact kernel
			// would.
			if cc != nil && n.cas1 != 0 && cc.Wants() {
				d1 = t.dist.Distance(q, n.sv1)
				cc.Register(n.cas1-1, d1)
			} else {
				d1 = t.dist.DistanceUpTo(q, n.sv1, tau+n.cut1Max)
			}
			if cc != nil && n.cas2 != 0 && cc.Wants() {
				d2 = t.dist.Distance(q, n.sv2)
				cc.Register(n.cas2-1, d2)
			} else {
				d2 = t.dist.DistanceUpTo(q, n.sv2, tau+n.cut2Max)
			}
		} else {
			d1 = t.dist.Distance(q, n.sv1)
			d2 = t.dist.Distance(q, n.sv2)
			if cc != nil {
				if n.cas1 != 0 && cc.Wants() {
					cc.Register(n.cas1-1, d1)
				}
				if n.cas2 != 0 && cc.Wants() {
					cc.Register(n.cas2-1, d2)
				}
			}
		}
		// A reported distance above the bound it was computed with may
		// understate the true value, and above the bound it is also
		// globally discardable (≥ τ_local rejects locally; ≥ ext.Tau()
		// cannot make the caller's merged top-k), so only in-bound
		// values enter the heap. With ext == nil this is equivalent to
		// the unconditional push: an out-of-bound value is ≥ τ_local
		// and the heap would reject it.
		if d1 <= tau+n.cut1Max {
			best.Push(n.sv1, d1)
		}
		if d2 <= tau+n.cut2Max {
			best.Push(n.sv2, d2)
		}
		s.VantagePoints += 2
		t.TraceDistance(2)
		extTau := math.Inf(1)
		if ext != nil {
			ext.Publish(best.Threshold())
			extTau = ext.Tau()
		}
		off, plen := pn.off, pn.plen
		if int(plen) < t.p {
			// Extend the query PATH in the arena: append the parent
			// window, then the new exact distances. Children reference
			// the new window by offset, so arena growth cannot
			// invalidate them.
			noff := int32(len(sc.arena))
			sc.arena = append(sc.arena, sc.arena[off:off+plen]...)
			sc.arena = append(sc.arena, d1)
			if int(plen)+1 < t.p {
				sc.arena = append(sc.arena, d2)
			}
			off, plen = noff, int32(len(sc.arena))-noff
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if gb := max(lb1, bound); !best.Accepts(gb) || gb >= extTau {
				s.ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(bound, lb1, intervalGap(d2, lo2, hi2))
				if best.Accepts(lb) && lb < extTau {
					queue.PushNode(pendingRef[T]{n: c, off: off, plen: plen}, lb)
				} else {
					s.ShellsPruned++
					t.TracePrune(obs.FilterShell, 1)
				}
			}
		}
	}
	out := best.Sorted()
	if t.cas != nil {
		t.cas.Put(cc)
	}
	t.finishQuant(sc)
	t.putScratch(sc)
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) knnLeafStats(n *node[T], q T, qpath []float64, best *heapx.KBest[T], ext index.KNNBound, cc *cascade.Cache, sc *queryScratch[T], s *SearchStats) {
	if !n.hasSV1 {
		return
	}
	extTau := math.Inf(1)
	if ext != nil {
		extTau = ext.Tau()
	}
	// Every leaf distance is threshold-only: vantage points and
	// surviving candidates all go through the uncounted kernel and the
	// batch is settled on the counter once at the end.
	kernel := t.dist.Kernel()
	// Same bound shape as rangeLeaf with τ′ in place of r: a vantage
	// distance certified past τ′+maxD rejects the vantage point and
	// D-filters every item, in both the abandoned and the exact world.
	// Stamped cascade pivots are computed exactly (bound +Inf) and
	// registered; the push decisions below are unchanged.
	b1 := min(best.Threshold(), extTau) + n.maxD1
	var d1 float64
	if cc != nil && n.cas1 != 0 && cc.Wants() {
		d1 = kernel(q, n.sv1, math.Inf(1))
		cc.Register(n.cas1-1, d1)
	} else {
		d1 = kernel(q, n.sv1, b1)
	}
	if d1 <= b1 {
		best.Push(n.sv1, d1)
	}
	vantages := 1
	s.VantagePoints++
	t.TraceDistance(1)
	var d2 float64
	if n.hasSV2 {
		b2 := min(best.Threshold(), extTau) + n.maxD2
		if cc != nil && n.cas2 != 0 && cc.Wants() {
			d2 = kernel(q, n.sv2, math.Inf(1))
			cc.Register(n.cas2-1, d2)
		} else {
			d2 = kernel(q, n.sv2, b2)
		}
		if d2 <= b2 {
			best.Push(n.sv2, d2)
		}
		vantages = 2
		s.VantagePoints++
		t.TraceDistance(1)
	}
	// Hot candidate loop: slice headers hoisted, stage tallies kept in
	// locals and reported once per leaf (totals identical, trace event
	// granularity coarsens — the same batching the shell filter uses).
	items := n.items
	d1s := n.d1[:len(items)] // len(d1)==len(items): lets the compiler drop the d1s[i] bounds check
	d2s := n.d2
	hasSV2 := n.hasSV2
	if hasSV2 {
		d2s = d2s[:len(items)]
	}
	cas, base := t.cas, n.casBase
	useCas := cc != nil && cc.Registered() > 0
	// Quantized pre-filter state (quantize.go); a pruned candidate still
	// joins computed, standing in for an abandoned kernel call.
	useQuant := sc.quantOn && (n.qcodes != nil || n.qf32 != nil)
	qset, qprep, qcodes, qf32 := t.qset, &sc.qprep, n.qcodes, n.qf32
	var filteredD, filteredPath, filteredCascade, filteredQuant, computed int
	for i := range items {
		// The D1/D2 bound first; a PATH entry only gets credit when it
		// tightens the bound past the acceptance threshold on its own.
		lbD := abs(d1 - d1s[i])
		if hasSV2 {
			if b := abs(d2 - d2s[i]); b > lbD {
				lbD = b
			}
		}
		if !best.Accepts(lbD) || lbD >= extTau {
			filteredD++
			continue
		}
		lb := lbD
		path := n.pathData[n.pathOff[i]:n.pathOff[i+1]]
		if len(path) > len(qpath) {
			path = path[:len(qpath)]
		}
		for l, pd := range path {
			if b := abs(qpath[l] - pd); b > lb {
				lb = b
			}
		}
		if !best.Accepts(lb) || lb >= extTau {
			filteredPath++
			continue
		}
		// Last filter: the cascade lower bound over the vantage
		// distances this query registered on its way down. A bound the
		// heap would reject (or one past the external τ) proves the
		// true distance would be rejected too, so skipping the
		// computation changes nothing.
		if useCas {
			if clb := cas.LowerBound(cc, base+int32(i)); !best.Accepts(clb) || clb >= extTau {
				filteredCascade++
				continue
			}
		}
		computed++
		cb := min(best.Threshold(), extTau)
		// The quantized lower bound certifies d > cb, so the kernel call
		// would abandon (> cb) and never push; skipping it changes no
		// heap state, stat or count (computed was charged above).
		if useQuant && qset.PruneAt(qprep, qcodes, qf32, i, cb) {
			filteredQuant++
			continue
		}
		if d := kernel(q, items[i], cb); d <= cb {
			best.Push(items[i], d)
		}
	}
	if ext != nil {
		ext.Publish(best.Threshold())
	}
	t.dist.Add(int64(vantages + computed))
	s.Candidates += len(items)
	s.FilteredByD += filteredD
	s.FilteredByPath += filteredPath
	s.FilteredByCascade += filteredCascade
	s.Computed += computed
	sc.quantPruned += filteredQuant
	if filteredD > 0 {
		t.TracePrune(obs.FilterD, filteredD)
	}
	if filteredPath > 0 {
		t.TracePrune(obs.FilterPath, filteredPath)
	}
	if filteredCascade > 0 {
		t.TracePrune(obs.FilterCascade, filteredCascade)
	}
	if filteredQuant > 0 {
		t.TracePrune(obs.FilterQuantized, filteredQuant)
	}
	if computed > 0 {
		t.TraceDistance(computed)
	}
}
