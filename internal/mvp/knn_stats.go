package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// KNNWithStats is KNN plus the same per-query filtering breakdown that
// RangeWithStats reports: how many leaf candidates the stored D1/D2
// distances excluded on their own, how many additionally needed a PATH
// entry, and how many real distance computations remained.
func (t *Tree[T]) KNNWithStats(q T, k int) ([]index.Neighbor[T], SearchStats) {
	span := t.StartQuery(obs.KindKNN)
	var s SearchStats
	if k <= 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	best := heapx.NewKBest[T](k)
	type pending struct {
		n     *node[T]
		qpath []float64
	}
	var queue heapx.NodeQueue[pending]
	queue.PushNode(pending{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, bound, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(bound) {
			break
		}
		n, qpath := pn.n, pn.qpath
		s.NodesVisited++
		t.TraceNode(n.isLeaf())
		if n.isLeaf() {
			s.LeavesVisited++
			t.knnLeafStats(n, q, qpath, best, &s)
			continue
		}
		d1 := t.dist.Distance(q, n.sv1)
		best.Push(n.sv1, d1)
		d2 := t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
		s.VantagePoints += 2
		t.TraceDistance(2)
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			ext = append(ext, d1)
			if len(ext) < t.p {
				ext = append(ext, d2)
			}
			qpath = ext
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if !best.Accepts(max(lb1, bound)) {
				s.ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(bound, lb1, intervalGap(d2, lo2, hi2))
				if best.Accepts(lb) {
					queue.PushNode(pending{c, qpath}, lb)
				} else {
					s.ShellsPruned++
					t.TracePrune(obs.FilterShell, 1)
				}
			}
		}
	}
	out := best.Sorted()
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

func (t *Tree[T]) knnLeafStats(n *node[T], q T, qpath []float64, best *heapx.KBest[T], s *SearchStats) {
	if !n.hasSV1 {
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	best.Push(n.sv1, d1)
	s.VantagePoints++
	t.TraceDistance(1)
	var d2 float64
	if n.hasSV2 {
		d2 = t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
		s.VantagePoints++
		t.TraceDistance(1)
	}
	for i, it := range n.items {
		s.Candidates++
		// The D1/D2 bound first; a PATH entry only gets credit when it
		// tightens the bound past the acceptance threshold on its own.
		lbD := abs(d1 - n.d1[i])
		if n.hasSV2 {
			if b := abs(d2 - n.d2[i]); b > lbD {
				lbD = b
			}
		}
		if !best.Accepts(lbD) {
			s.FilteredByD++
			t.TracePrune(obs.FilterD, 1)
			continue
		}
		lb := lbD
		path := n.paths[i]
		for l := 0; l < len(path) && l < len(qpath); l++ {
			if b := abs(qpath[l] - path[l]); b > lb {
				lb = b
			}
		}
		if !best.Accepts(lb) {
			s.FilteredByPath++
			t.TracePrune(obs.FilterPath, 1)
			continue
		}
		s.Computed++
		t.TraceDistance(1)
		best.Push(it, t.dist.Distance(q, it))
	}
}
