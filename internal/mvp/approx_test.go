package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func TestKNNBudgetedUnlimitedIsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 9))
	w := testutil.NewVectorWorkload(rng, 500, 8, 10, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 20, PathLength: 4, Build: Build{Seed: 7}})
	for _, q := range w.Queries {
		for _, k := range []int{1, 5, 20} {
			got, exact := tree.KNNBudgeted(q, k, 1<<40)
			if !exact {
				t.Fatalf("unlimited budget reported inexact")
			}
			want := tree.KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d vs %d results", k, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("k=%d: dist[%d] = %g, want %g", k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestKNNBudgetedRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(112, 9))
	w := testutil.NewVectorWorkload(rng, 3000, 20, 10, metric.L2) // high-dim: exact kNN ≈ linear
	tree, c := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 7}})
	for _, budget := range []int64{10, 100, 1000} {
		for _, q := range w.Queries {
			c.Reset()
			_, exact := tree.KNNBudgeted(q, 5, budget)
			if c.Count() > budget {
				t.Fatalf("budget %d: spent %d distance computations", budget, c.Count())
			}
			if exact && c.Count() >= int64(tree.Len()) {
				t.Fatalf("budget %d: claimed exact after full scan", budget)
			}
		}
	}
}

func TestKNNBudgetedRecallGrowsWithBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 9))
	w := testutil.NewVectorWorkload(rng, 4000, 20, 20, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 7}})
	const k = 10
	recall := func(budget int64) float64 {
		hits, total := 0, 0
		for _, q := range w.Queries {
			truth := map[int]bool{}
			for _, nb := range w.Truth.KNN(q, k) {
				truth[nb.Item] = true
			}
			got, _ := tree.KNNBudgeted(q, k, budget)
			for _, nb := range got {
				if truth[nb.Item] {
					hits++
				}
			}
			total += k
		}
		return float64(hits) / float64(total)
	}
	low := recall(100)
	mid := recall(1000)
	if mid <= low {
		t.Errorf("recall did not grow with budget: %.3f @100 vs %.3f @1000", low, mid)
	}
	if mid < 0.3 {
		t.Errorf("recall %.3f at budget 1000 over 4000 items; anytime behaviour broken", mid)
	}
}

func TestKNNBudgetedEdgeCases(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {2}, {3}}, dist, Options{LeafCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, exact := tree.KNNBudgeted([]float64{0}, 0, 100); got != nil || !exact {
		t.Errorf("k=0: %v, %v", got, exact)
	}
	if got, exact := tree.KNNBudgeted([]float64{0}, 2, 0); got != nil || exact {
		t.Errorf("budget 0: %v, %v", got, exact)
	}
	empty, err := New(nil, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, exact := empty.KNNBudgeted([]float64{0}, 2, 100); got != nil || !exact {
		t.Errorf("empty: %v, %v", got, exact)
	}
}
