package mvp

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/testutil"
	"mvptree/internal/vptree"
)

func buildWorkloadTree(t *testing.T, w *testutil.Workload, opts Options) (*Tree[int], *metric.Counter[int]) {
	t.Helper()
	c := metric.NewCounter(w.Dist)
	tree, err := New(w.Items, c, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree, c
}

var optionMatrix = []Options{
	{Partitions: 2, LeafCapacity: 1, PathLength: -1, Build: Build{Seed: 7}},
	{Partitions: 2, LeafCapacity: 4, PathLength: 2, Build: Build{Seed: 7}},
	{Partitions: 2, LeafCapacity: 16, PathLength: 5, Build: Build{Seed: 7}},
	{Partitions: 3, LeafCapacity: 9, PathLength: 5, Build: Build{Seed: 7}},
	{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 7}},
	{Partitions: 4, LeafCapacity: 13, PathLength: 8, Build: Build{Seed: 7}},
	{Partitions: 3, LeafCapacity: 13, PathLength: 4, RandomSecondVantage: true, Build: Build{Seed: 7}},
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	w := testutil.NewVectorWorkload(rng, 400, 8, 12, metric.L2)
	radii := []float64{0, 0.1, 0.3, 0.6, 1.0, 2.0}
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRange(t, "mvpt", tree, w, radii)
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 10, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckKNN(t, "mvpt", tree, w, []int{1, 2, 5, 17, 300, 1000})
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 2))
	w := testutil.NewClumpedWorkload(rng, 500, 5, 8, metric.L2)
	for _, opts := range optionMatrix {
		tree, _ := buildWorkloadTree(t, w, opts)
		testutil.CheckRange(t, "mvpt-clumped", tree, w, []float64{0, 0.01, 0.05, 0.5, 3})
		testutil.CheckKNN(t, "mvpt-clumped", tree, w, []int{1, 3, 10})
		testutil.CheckContainsAllOnce(t, "mvpt-clumped", tree, w, 1e6)
	}
}

func TestTinyTrees(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	for n := 0; n <= 8; n++ {
		items := make([][]float64, n)
		for i := range items {
			items[i] = []float64{float64(i)}
		}
		tree, err := New(items, dist, Options{Partitions: 2, LeafCapacity: 2, PathLength: 3})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len() = %d", n, tree.Len())
		}
		if got := tree.Range([]float64{0}, 100); len(got) != n {
			t.Errorf("n=%d: full range returned %d items", n, len(got))
		}
		nn := tree.KNN([]float64{0.2}, 3)
		if want := min(3, n); len(nn) != want {
			t.Errorf("n=%d: KNN returned %d items, want %d", n, len(nn), want)
		}
		if n > 0 && nn[0].Item[0] != 0 {
			t.Errorf("n=%d: nearest to 0.2 is %v, want [0]", n, nn[0].Item)
		}
	}
}

func TestNegativeRadiusAndZeroK(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {2}, {3}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Range([]float64{1}, -0.5); got != nil {
		t.Errorf("Range with negative radius = %v, want nil", got)
	}
	if got := tree.KNN([]float64{1}, 0); got != nil {
		t.Errorf("KNN(k=0) = %v, want nil", got)
	}
}

func TestInvalidOptions(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	items := [][]float64{{1}, {2}, {3}}
	for _, opts := range []Options{
		{Partitions: 1},
		{Partitions: -1},
		{LeafCapacity: -2},
	} {
		if _, err := New(items, dist, opts); err == nil {
			t.Errorf("New with %+v succeeded, want error", opts)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	tree, err := New([][]float64{{1}, {2}}, dist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Partitions() != 2 || tree.LeafCapacity() != 13 || tree.PathLength() != 4 {
		t.Errorf("defaults = (m=%d, k=%d, p=%d), want (2, 13, 4)",
			tree.Partitions(), tree.LeafCapacity(), tree.PathLength())
	}
	tree, err = New([][]float64{{1}}, dist, Options{PathLength: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.PathLength() != 0 {
		t.Errorf("PathLength(-1) = %d, want 0", tree.PathLength())
	}
}

func TestAccountingInvariant(t *testing.T) {
	// Every data point is either a vantage point or a leaf item.
	rng := rand.New(rand.NewPCG(4, 2))
	for _, n := range []int{0, 1, 2, 3, 50, 333, 1000} {
		w := testutil.NewVectorWorkload(rng, n, 6, 1, metric.L2)
		tree, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 7, PathLength: 5, Build: Build{Seed: 5}})
		s := tree.Shape()
		if s.VantagePoints+s.LeafItems != n {
			t.Errorf("n=%d: %d vantage points + %d leaf items != n", n, s.VantagePoints, s.LeafItems)
		}
		if s.MaxPathLen > 5 {
			t.Errorf("n=%d: MaxPathLen = %d exceeds p = 5", n, s.MaxPathLen)
		}
	}
}

func TestVantagePointCountFormula(t *testing.T) {
	// The paper: a full mvp-tree of height h has 2·(m^{2h} − 1)/(m² − 1)
	// vantage points (two per node). Check the "two per node" part on
	// arbitrary trees: internal nodes always carry exactly two.
	rng := rand.New(rand.NewPCG(5, 2))
	w := testutil.NewVectorWorkload(rng, 2000, 8, 1, metric.L2)
	tree, _ := buildWorkloadTree(t, w, Options{Partitions: 2, LeafCapacity: 10, PathLength: 4, Build: Build{Seed: 9}})
	s := tree.Shape()
	if s.VantagePoints < 2*(s.Nodes-s.Leaves) {
		t.Errorf("internal nodes missing vantage points: %d VPs for %d internal nodes",
			s.VantagePoints, s.Nodes-s.Leaves)
	}
	if s.Leaves == 0 || s.LeafItems == 0 {
		t.Error("tree of 2000 points built no leaves")
	}
}

func TestLargerLeavesMeanFewerVantagePoints(t *testing.T) {
	// §4.2: keeping k large makes the ratio of vantage points to leaf
	// points smaller — the design argument for big leaves.
	rng := rand.New(rand.NewPCG(6, 2))
	w := testutil.NewVectorWorkload(rng, 3000, 8, 1, metric.L2)
	small, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 9, PathLength: 5, Build: Build{Seed: 1}})
	large, _ := buildWorkloadTree(t, w, Options{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 1}})
	sS, sL := small.Shape(), large.Shape()
	if sL.VantagePoints >= sS.VantagePoints {
		t.Errorf("k=80 has %d vantage points, k=9 has %d; want fewer",
			sL.VantagePoints, sS.VantagePoints)
	}
	if sL.Height >= sS.Height {
		t.Errorf("k=80 height %d, k=9 height %d; want shorter", sL.Height, sS.Height)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2))
	w := testutil.NewVectorWorkload(rng, 300, 6, 5, metric.L2)
	run := func() []int64 {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Partitions: 3, LeafCapacity: 9, PathLength: 5, Build: Build{Seed: 42}})
		if err != nil {
			t.Fatal(err)
		}
		var counts []int64
		for _, q := range w.Queries {
			c.Reset()
			tree.Range(q, 0.4)
			counts = append(counts, c.Count())
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("query %d: counts differ across identical builds: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPathFilteringReducesCost(t *testing.T) {
	// The headline mechanism: with PATH filtering enabled (p > 0) a
	// range query must cost no more distance computations than the
	// same tree without it, and strictly less on aggregate.
	rng := rand.New(rand.NewPCG(8, 2))
	w := testutil.NewVectorWorkload(rng, 4000, 10, 30, metric.L2)
	cost := func(p int) int64 {
		c := metric.NewCounter(w.Dist)
		tree, err := New(w.Items, c, Options{Partitions: 3, LeafCapacity: 40, PathLength: p, Build: Build{Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, q := range w.Queries {
			c.Reset()
			tree.Range(q, 0.5)
			total += c.Count()
		}
		return total
	}
	without := cost(-1) // p = 0
	with := cost(6)
	if with >= without {
		t.Errorf("PATH filtering did not reduce cost: with p=6 %d, with p=0 %d", with, without)
	}
}

func TestMVPBeatsVPOnPaperWorkload(t *testing.T) {
	// Scaled-down Figure 8 shape check: mvpt(3, large-k) must make
	// fewer distance computations than a binary vp-tree at small radii.
	rng := rand.New(rand.NewPCG(9, 2))
	w := testutil.NewVectorWorkload(rng, 4000, 20, 25, metric.L2)

	vc := metric.NewCounter(w.Dist)
	vt, err := vptree.New(w.Items, vc, vptree.Options{Order: 2, Build: Build{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	mc := metric.NewCounter(w.Dist)
	mt, err := New(w.Items, mc, Options{Partitions: 3, LeafCapacity: 80, PathLength: 5, Build: Build{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var vTotal, mTotal int64
	for _, q := range w.Queries {
		vc.Reset()
		vt.Range(q, 0.3)
		vTotal += vc.Count()
		mc.Reset()
		mt.Range(q, 0.3)
		mTotal += mc.Count()
	}
	if mTotal >= vTotal {
		t.Errorf("mvpt(3,80) cost %d ≥ vpt(2) cost %d on the paper's workload shape", mTotal, vTotal)
	}
}

func TestEditDistanceStrings(t *testing.T) {
	words := []string{"book", "books", "cake", "boo", "boon", "cook", "cape", "cart", "case", "cast",
		"bake", "lake", "take", "rake", "fake", "face", "fact", "fast", "mast", "most"}
	c := metric.NewCounter(metric.Edit)
	tree, err := New(words, c, Options{Partitions: 2, LeafCapacity: 4, PathLength: 2, Build: Build{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Range("book", 1)
	want := map[string]bool{"book": true, "books": true, "boo": true, "boon": true, "cook": true}
	if len(got) != len(want) {
		t.Fatalf("Range(book, 1) = %v, want %v", got, want)
	}
	for _, wd := range got {
		if !want[wd] {
			t.Errorf("unexpected word %q", wd)
		}
	}
	nn := tree.KNN("bake", 4)
	if len(nn) != 4 || nn[0].Dist != 0 || nn[0].Item != "bake" {
		t.Errorf("KNN(bake, 4) = %v", nn)
	}
}
