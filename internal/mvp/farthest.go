package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// The paper (§2) lists, among the similarity-query variants, queries for
// objects *farther* than a range and for the k *farthest* objects. Both
// are supported here with the same machinery as near-neighbor search,
// with the triangle-inequality bounds reversed: a shell [lo, hi] around
// a vantage point at distance d from the query bounds the distance of
// its members to the query within [gap, d+hi], where gap is the interval
// distance. Pre-computed leaf distances additionally allow accepting a
// point without computing its distance when its lower bound already
// clears the range.

// RangeFarther returns every indexed item at distance ≥ r from q.
func (t *Tree[T]) RangeFarther(q T, r float64) []T {
	if t.root == nil {
		return nil
	}
	var out []T
	if r <= 0 {
		collectAll(t.root, &out)
		return out
	}
	qpath := make([]float64, 0, t.p)
	t.rangeFartherNode(t.root, q, r, qpath, &out)
	return out
}

func (t *Tree[T]) rangeFartherNode(n *node[T], q T, r float64, qpath []float64, out *[]T) {
	if n == nil {
		return
	}
	if n.isLeaf() {
		t.rangeFartherLeaf(n, q, r, qpath, out)
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	if d1 >= r {
		*out = append(*out, n.sv1)
	}
	d2 := t.dist.Distance(q, n.sv2)
	if d2 >= r {
		*out = append(*out, n.sv2)
	}
	if len(qpath) < t.p {
		qpath = append(qpath, d1)
		if len(qpath) < t.p {
			qpath = append(qpath, d2)
		}
	}
	for g, row := range n.children {
		lo1, hi1 := shellBounds(n.cut1, g)
		if d1+hi1 < r {
			continue // every point in the shell is provably too close
		}
		for h, c := range row {
			if c == nil {
				continue
			}
			lo2, hi2 := shellBounds(n.cut2[g], h)
			if d2+hi2 < r {
				continue
			}
			// If the whole sub-shell is provably far enough, take it
			// wholesale without any further distance computations.
			if intervalGap(d1, lo1, hi1) >= r || intervalGap(d2, lo2, hi2) >= r {
				collectAll(c, out)
				continue
			}
			t.rangeFartherNode(c, q, r, qpath, out)
		}
	}
}

func (t *Tree[T]) rangeFartherLeaf(n *node[T], q T, r float64, qpath []float64, out *[]T) {
	if !n.hasSV1 {
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	if d1 >= r {
		*out = append(*out, n.sv1)
	}
	var d2 float64
	if n.hasSV2 {
		d2 = t.dist.Distance(q, n.sv2)
		if d2 >= r {
			*out = append(*out, n.sv2)
		}
	}
	for i, it := range n.items {
		lb, ub := t.leafBounds(n, i, d1, d2, qpath)
		switch {
		case ub < r:
			// Provably too close.
		case lb >= r:
			// Provably far enough: no distance computation needed.
			*out = append(*out, it)
		default:
			if t.dist.Distance(q, it) >= r {
				*out = append(*out, it)
			}
		}
	}
}

// leafBounds returns lower and upper triangle-inequality bounds on the
// distance from the query to leaf item i, using the stored D1/D2 and
// PATH distances together with the query's qpath.
func (t *Tree[T]) leafBounds(n *node[T], i int, d1, d2 float64, qpath []float64) (lb, ub float64) {
	lb = abs(d1 - n.d1[i])
	ub = d1 + n.d1[i]
	if n.hasSV2 {
		if b := abs(d2 - n.d2[i]); b > lb {
			lb = b
		}
		if b := d2 + n.d2[i]; b < ub {
			ub = b
		}
	}
	path := n.path(i)
	for l := 0; l < len(path) && l < len(qpath); l++ {
		if b := abs(qpath[l] - path[l]); b > lb {
			lb = b
		}
		if b := qpath[l] + path[l]; b < ub {
			ub = b
		}
	}
	return lb, ub
}

// collectAll appends every data point in the subtree without any
// distance computations.
func collectAll[T any](n *node[T], out *[]T) {
	if n == nil {
		return
	}
	if n.hasSV1 {
		*out = append(*out, n.sv1)
	}
	if n.hasSV2 {
		*out = append(*out, n.sv2)
	}
	if n.isLeaf() {
		*out = append(*out, n.items...)
		return
	}
	for _, row := range n.children {
		for _, c := range row {
			collectAll(c, out)
		}
	}
}

// KFarthest returns the k indexed items farthest from q in descending
// distance order, by best-first traversal on distance upper bounds.
func (t *Tree[T]) KFarthest(q T, k int) []index.Neighbor[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	best := heapx.NewKLargest[T](k)
	type pending struct {
		n     *node[T]
		qpath []float64
	}
	// NodeQueue is a min-heap; store the negated upper bound so the
	// most promising (largest upper bound) subtree pops first.
	var queue heapx.NodeQueue[pending]
	queue.PushNode(pending{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, negUB, ok := queue.PopNode()
		if !ok {
			break
		}
		if !best.Accepts(-negUB) {
			break
		}
		n, qpath := pn.n, pn.qpath
		if n.isLeaf() {
			t.kFarthestLeaf(n, q, qpath, best)
			continue
		}
		d1 := t.dist.Distance(q, n.sv1)
		best.Push(n.sv1, d1)
		d2 := t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			ext = append(ext, d1)
			if len(ext) < t.p {
				ext = append(ext, d2)
			}
			qpath = ext
		}
		for g, row := range n.children {
			_, hi1 := shellBounds(n.cut1, g)
			ub1 := d1 + hi1
			if !best.Accepts(ub1) {
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				_, hi2 := shellBounds(n.cut2[g], h)
				ub := min(ub1, d2+hi2)
				if best.Accepts(ub) {
					queue.PushNode(pending{c, qpath}, -ub)
				}
			}
		}
	}
	return best.Sorted()
}

func (t *Tree[T]) kFarthestLeaf(n *node[T], q T, qpath []float64, best *heapx.KLargest[T]) {
	if !n.hasSV1 {
		return
	}
	d1 := t.dist.Distance(q, n.sv1)
	best.Push(n.sv1, d1)
	var d2 float64
	if n.hasSV2 {
		d2 = t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
	}
	for i, it := range n.items {
		_, ub := t.leafBounds(n, i, d1, d2, qpath)
		if best.Accepts(ub) {
			best.Push(it, t.dist.Distance(q, it))
		}
	}
}
