package mvp

import "mvptree/internal/index"

// KNNBudgeted answers a k-nearest-neighbor query under a hard budget of
// distance computations, returning the best k candidates found before
// the budget ran out.
//
// With a budget ≥ the cost of an exact search the result is exact (the
// traversal is identical); with a smaller budget the result is a
// best-effort approximation whose recall grows with the budget. Because
// best-first visits subtrees in lower-bound order, early candidates are
// disproportionately likely to be true neighbors — the standard
// anytime-search property — which makes the budget an effective quality
// dial on workloads where exact kNN degenerates toward a linear scan
// (high-dimensional data; see EXPERIMENTS.md ext-knn).
//
// The returned exact flag reports whether the traversal completed
// within budget, i.e. whether the result is provably the true k nearest.
//
// Deprecated: KNNBudgeted is the legacy budget entry point; it is a
// thin wrapper over Search with SearchOptions.Budget set, which also
// reports the query's SearchStats.
func (t *Tree[T]) KNNBudgeted(q T, k int, budget int64) (neighbors []index.Neighbor[T], exact bool) {
	if budget <= 0 {
		return nil, false
	}
	res := t.Search(index.Query[T]{Point: q, K: k, Opts: index.SearchOptions{Budget: budget}})
	return res.Neighbors, !res.Exhausted()
}
