package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
)

// KNNBudgeted answers a k-nearest-neighbor query under a hard budget of
// distance computations. It runs the same best-first traversal as KNN
// but stops expanding once the budget is spent, returning the best k
// candidates found so far.
//
// With a budget ≥ the cost of an exact search the result is exact (the
// traversal is identical); with a smaller budget the result is a
// best-effort approximation whose recall grows with the budget. Because
// best-first visits subtrees in lower-bound order, early candidates are
// disproportionately likely to be true neighbors — the standard
// anytime-search property — which makes the budget an effective quality
// dial on workloads where exact kNN degenerates toward a linear scan
// (high-dimensional data; see EXPERIMENTS.md ext-knn).
//
// The returned exact flag reports whether the traversal completed
// within budget, i.e. whether the result is provably the true k nearest.
func (t *Tree[T]) KNNBudgeted(q T, k int, budget int64) (neighbors []index.Neighbor[T], exact bool) {
	if k <= 0 || t.root == nil {
		return nil, true
	}
	if budget <= 0 {
		return nil, false
	}
	spent := int64(0)
	pay := func(n int64) bool { // false when the budget is exhausted
		spent += n
		return spent <= budget
	}
	best := heapx.NewKBest[T](k)
	type pending struct {
		n     *node[T]
		qpath []float64
	}
	var queue heapx.NodeQueue[pending]
	queue.PushNode(pending{t.root, make([]float64, 0, t.p)}, 0)
	for {
		pn, bound, ok := queue.PopNode()
		if !ok {
			return best.Sorted(), true
		}
		if !best.Accepts(bound) {
			return best.Sorted(), true
		}
		n, qpath := pn.n, pn.qpath
		if n.isLeaf() {
			if !n.hasSV1 {
				continue
			}
			if !pay(1) {
				return best.Sorted(), false
			}
			d1 := t.dist.Distance(q, n.sv1)
			best.Push(n.sv1, d1)
			var d2 float64
			if n.hasSV2 {
				if !pay(1) {
					return best.Sorted(), false
				}
				d2 = t.dist.Distance(q, n.sv2)
				best.Push(n.sv2, d2)
			}
			for i, it := range n.items {
				lb := abs(d1 - n.d1[i])
				if n.hasSV2 {
					if b := abs(d2 - n.d2[i]); b > lb {
						lb = b
					}
				}
				path := n.path(i)
				for l := 0; l < len(path) && l < len(qpath); l++ {
					if b := abs(qpath[l] - path[l]); b > lb {
						lb = b
					}
				}
				if best.Accepts(lb) {
					if !pay(1) {
						return best.Sorted(), false
					}
					best.Push(it, t.dist.Distance(q, it))
				}
			}
			continue
		}
		if !pay(2) {
			return best.Sorted(), false
		}
		d1 := t.dist.Distance(q, n.sv1)
		best.Push(n.sv1, d1)
		d2 := t.dist.Distance(q, n.sv2)
		best.Push(n.sv2, d2)
		if len(qpath) < t.p {
			ext := make([]float64, len(qpath), t.p)
			copy(ext, qpath)
			ext = append(ext, d1)
			if len(ext) < t.p {
				ext = append(ext, d2)
			}
			qpath = ext
		}
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			lb1 := intervalGap(d1, lo1, hi1)
			if !best.Accepts(max(lb1, bound)) {
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				lb := max(bound, lb1, intervalGap(d2, lo2, hi2))
				if best.Accepts(lb) {
					queue.PushNode(pending{c, qpath}, lb)
				}
			}
		}
	}
}
