package mvp

import (
	"mvptree/internal/heapx"
	"mvptree/internal/quant"
)

// queryScratch is the per-query working state Range and KNN borrow from
// the tree's sync.Pool so steady-state queries allocate nothing but the
// result slice. Every buffer is reused at its high-water capacity.
type queryScratch[T any] struct {
	// qpath is the recursive range search's query-PATH buffer (always
	// capacity p; the live prefix length is threaded through the
	// recursion). qlo/qhi hold the precomputed per-level filter windows
	// qpath[l]±r so the leaf scan compares candidates against ready-made
	// bounds instead of re-deriving them per item.
	qpath []float64
	qlo   []float64
	qhi   []float64
	// best and queue drive best-first kNN. best is created lazily
	// because heapx.NewKBest requires k up front; Reset re-arms it for
	// each query's k.
	best  *heapx.KBest[T]
	queue heapx.NodeQueue[pendingRef[T]]
	// arena backs the per-node query PATHs of best-first kNN: each
	// pending node references a stable (offset, length) window instead
	// of owning a copied slice, which removes the dominant allocation
	// of the previous implementation.
	arena []float64
	// Quantized pre-filter state, re-armed per query by prepareQuant
	// (quantOn guards staleness across pool reuse); quantPruned tallies
	// the query's skipped exact evaluations for the Observer.
	qprep       quant.Prepared
	quantOn     bool
	quantPruned int
}

// pendingRef is a queued subtree plus its query PATH as a window into
// the scratch arena. Offsets stay valid across arena growth, unlike
// slices into it.
type pendingRef[T any] struct {
	n    *node[T]
	off  int32
	plen int32
}

func (t *Tree[T]) getScratch() *queryScratch[T] {
	var sc *queryScratch[T]
	if v := t.scratch.Get(); v != nil {
		sc = v.(*queryScratch[T])
	} else {
		sc = &queryScratch[T]{}
	}
	// The range recursion writes qpath[plen] directly, so the buffers
	// are kept at their full length (p entries) up front.
	if len(sc.qpath) < t.p {
		sc.qpath = make([]float64, t.p)
		sc.qlo = make([]float64, t.p)
		sc.qhi = make([]float64, t.p)
	}
	return sc
}

// putScratch returns sc to the pool. The queue is reset here (not at
// Get) so pooled scratch never pins tree nodes between queries.
func (t *Tree[T]) putScratch(sc *queryScratch[T]) {
	sc.arena = sc.arena[:0]
	sc.quantOn = false
	sc.qprep.Release()
	sc.queue.Reset()
	if sc.best != nil {
		sc.best.Reset(1) // clears retained neighbors; re-armed per query
	}
	t.scratch.Put(sc)
}
