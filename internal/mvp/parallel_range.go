package mvp

import (
	"sync"
	"sync/atomic"

	"mvptree/internal/index"
	"mvptree/internal/obs"
)

// Intra-query parallel range search: one large query is answered by
// several goroutines over a single tree. The traversal is split in two
// phases so that parallelism cannot perturb anything observable:
//
//  1. Plan (sequential): the top of the tree is expanded exactly as the
//     recursive search would — same vantage distances, same bounded
//     kernels, same shell pruning — until the surviving frontier holds
//     enough independent subtrees to feed the workers. Vantage-point
//     hits found while planning are parked in order-preserving chunks.
//
//  2. Execute (parallel): frontier subtrees are claimed from an atomic
//     cursor by a bounded worker pool (the same pool shape
//     internal/build uses). Each worker runs the ordinary sequential
//     traversal over its subtree with its own pooled query scratch,
//     writing results and stats into the subtree's dedicated slot.
//
// Concatenating the slots in frontier order reproduces the sequential
// depth-first output byte for byte, and summing the per-slot stats in
// that order reproduces the sequential SearchStats exactly: every
// distance computation made here is one the sequential search makes,
// so the paper's cost metric is untouched at every worker count.

// parallelRangeTargetFactor sizes the planned frontier: expansion stops
// once it holds at least workers×factor subtrees, so the slowest
// subtree cannot straggle the whole query badly.
const parallelRangeTargetFactor = 4

// parallelRangeMaxRounds caps frontier expansion (each round expands
// one tree level) so planning work stays negligible.
const parallelRangeMaxRounds = 6

// planElem is one ordered slot of the planned traversal: results
// produced during planning (the expanded nodes' vantage-point hits),
// followed optionally by a pending subtree, identified by its index
// into the task arrays.
type planElem[T any] struct {
	out  []T
	task int // -1 when the slot carries only planned output
}

// rangePlan accumulates the sequential expansion phase. The query-PATH
// prefixes of pending subtrees live in shared growing arenas addressed
// by (offset, length) windows, the same representation best-first kNN
// uses, so sibling tasks share their common prefix.
type rangePlan[T any] struct {
	elems []planElem[T]
	tasks []pendingRef[T]
	path  []float64 // concatenated qpath windows
	lo    []float64 // matching qpath[l]-r windows
	hi    []float64 // matching qpath[l]+r windows
}

// RangeParallel is Range answered by up to workers goroutines. The
// result slice is byte-identical to Range(q, r) for every workers
// value; values <= 1 run the plain sequential traversal.
func (t *Tree[T]) RangeParallel(q T, r float64, workers int) []T {
	out, _ := t.RangeParallelWithStats(q, r, workers)
	return out
}

// RangeParallelWithStats is RangeWithStats answered by up to workers
// goroutines, with identical results, stats and distance counts at
// every worker count (see the file comment for how).
func (t *Tree[T]) RangeParallelWithStats(q T, r float64, workers int) ([]T, SearchStats) {
	span := t.StartQuery(obs.KindRange)
	var s SearchStats
	if r < 0 || t.root == nil {
		span.Done(&s)
		return nil, s
	}
	// The parallel traversal never consults the cascade: the per-query
	// cache is single-owner, and sharing one across workers would make
	// stats depend on scheduling. Passing nil keeps results and stats
	// identical at every worker count (the cascade only ever skips work,
	// never changes answers).
	sc := t.getScratch()
	if workers <= 1 {
		var out []T
		t.rangeNode(t.root, q, r, 0, sc, nil, &out, &s)
		t.putScratch(sc)
		s.Results = len(out)
		span.Done(&s)
		return out, s
	}

	// Phase 1: sequential frontier expansion.
	plan := &rangePlan[T]{
		elems: []planElem[T]{{task: 0}},
		tasks: []pendingRef[T]{{n: t.root}},
	}
	target := workers * parallelRangeTargetFactor
	for round := 0; round < parallelRangeMaxRounds && len(plan.tasks) < target; round++ {
		if !t.expandPlanLevel(plan, q, r, &s) {
			break
		}
	}

	// Phase 2: claim subtrees from an atomic cursor; each worker owns a
	// pooled scratch and writes into its task's dedicated slots.
	tasks := plan.tasks
	outs := make([][]T, len(tasks))
	stats := make([]SearchStats, len(tasks))
	w := min(workers, len(tasks))
	var cursor atomic.Int64
	runWorker := func(sc *queryScratch[T]) {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(tasks) {
				return
			}
			pn := tasks[i]
			copy(sc.qpath, plan.path[pn.off:pn.off+pn.plen])
			copy(sc.qlo, plan.lo[pn.off:pn.off+pn.plen])
			copy(sc.qhi, plan.hi[pn.off:pn.off+pn.plen])
			t.rangeNode(pn.n, q, r, int(pn.plen), sc, nil, &outs[i], &stats[i])
		}
	}
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wsc := t.getScratch()
			runWorker(wsc)
			t.putScratch(wsc)
		}()
	}
	runWorker(sc) // the calling goroutine is a worker too
	wg.Wait()
	t.putScratch(sc)

	// Stitch: slots in plan order, stats summed in the same order.
	total := 0
	for _, e := range plan.elems {
		total += len(e.out)
		if e.task >= 0 {
			total += len(outs[e.task])
		}
	}
	out := make([]T, 0, total)
	for _, e := range plan.elems {
		out = append(out, e.out...)
		if e.task >= 0 {
			out = append(out, outs[e.task]...)
			s.Add(stats[e.task])
		}
	}
	s.Results = len(out)
	span.Done(&s)
	return out, s
}

// expandPlanLevel expands every pending internal-node subtree of the
// plan by one level, exactly as rangeNode would visit it: vantage
// distances (bounded once the query PATH is full), vantage hits, shell
// pruning. Pending leaves stay pending — they are executed, not
// planned. Reports whether anything was expanded.
func (t *Tree[T]) expandPlanLevel(plan *rangePlan[T], q T, r float64, s *SearchStats) bool {
	expanded := false
	elems := plan.elems
	tasks := plan.tasks
	plan.elems = make([]planElem[T], 0, len(elems)*2)
	plan.tasks = make([]pendingRef[T], 0, len(tasks)*2)
	for _, e := range elems {
		if e.task < 0 || tasks[e.task].n.isLeaf() {
			if e.task >= 0 {
				plan.tasks = append(plan.tasks, tasks[e.task])
				e.task = len(plan.tasks) - 1
			}
			plan.elems = append(plan.elems, e)
			continue
		}
		expanded = true
		pn := tasks[e.task]
		n := pn.n
		s.NodesVisited++
		t.TraceNode(false)
		plen := int(pn.plen)
		var d1, d2 float64
		if plen >= t.p {
			d1 = t.dist.DistanceUpTo(q, n.sv1, r+n.cut1Max)
			d2 = t.dist.DistanceUpTo(q, n.sv2, r+n.cut2Max)
		} else {
			d1 = t.dist.Distance(q, n.sv1)
			d2 = t.dist.Distance(q, n.sv2)
		}
		s.VantagePoints += 2
		t.TraceDistance(2)
		chunk := e.out
		if d1 <= r {
			chunk = append(chunk, n.sv1)
		}
		if d2 <= r {
			chunk = append(chunk, n.sv2)
		}
		off := pn.off
		if plen < t.p {
			noff := int32(len(plan.path))
			plan.path = append(plan.path, plan.path[off:off+pn.plen]...)
			plan.lo = append(plan.lo, plan.lo[off:off+pn.plen]...)
			plan.hi = append(plan.hi, plan.hi[off:off+pn.plen]...)
			plan.path = append(plan.path, d1)
			plan.lo = append(plan.lo, d1-r)
			plan.hi = append(plan.hi, d1+r)
			plen++
			if plen < t.p {
				plan.path = append(plan.path, d2)
				plan.lo = append(plan.lo, d2-r)
				plan.hi = append(plan.hi, d2+r)
				plen++
			}
			off = noff
		}
		plan.elems = append(plan.elems, planElem[T]{out: chunk, task: -1})
		for g, row := range n.children {
			lo1, hi1 := shellBounds(n.cut1, g)
			if d1+r < lo1 || d1-r > hi1 {
				s.ShellsPruned += len(row)
				t.TracePrune(obs.FilterShell, len(row))
				continue
			}
			for h, c := range row {
				if c == nil {
					continue
				}
				lo2, hi2 := shellBounds(n.cut2[g], h)
				if d2+r < lo2 || d2-r > hi2 {
					s.ShellsPruned++
					t.TracePrune(obs.FilterShell, 1)
					continue
				}
				plan.tasks = append(plan.tasks, pendingRef[T]{n: c, off: off, plen: int32(plen)})
				plan.elems = append(plan.elems, planElem[T]{task: len(plan.tasks) - 1})
			}
		}
	}
	return expanded
}

var _ index.ParallelRangeIndex[int] = (*Tree[int])(nil)
var _ index.BoundedKNNIndex[int] = (*Tree[int])(nil)
