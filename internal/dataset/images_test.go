package dataset

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/histogram"
	"mvptree/internal/pgm"
)

func TestSyntheticImagesBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 1))
	imgs := SyntheticImages(rng, 40, ImageOptions{Width: 32, Height: 32, Subjects: 4})
	if len(imgs) != 40 {
		t.Fatalf("len = %d", len(imgs))
	}
	for _, im := range imgs {
		if im.Width != 32 || im.Height != 32 {
			t.Fatalf("dims %dx%d", im.Width, im.Height)
		}
	}
	// Images must not be blank: the head must light up a nontrivial
	// fraction of pixels.
	for i, im := range imgs {
		bright := 0
		for _, p := range im.Pix {
			if p > 60 {
				bright++
			}
		}
		if frac := float64(bright) / float64(len(im.Pix)); frac < 0.1 {
			t.Fatalf("image %d has only %.2f bright fraction", i, frac)
		}
	}
}

func TestSyntheticImagesSubjectStructure(t *testing.T) {
	// Instances of the same subject (indices ≡ mod Subjects) must be
	// mutually closer than instances of different subjects.
	rng := rand.New(rand.NewPCG(92, 1))
	const subjects = 5
	imgs := SyntheticImages(rng, 50, ImageOptions{Width: 32, Height: 32, Subjects: subjects})
	var intra, inter float64
	var ni, nx int
	for i := 0; i < len(imgs); i++ {
		for j := i + 1; j < len(imgs); j++ {
			d := pgm.L1(imgs[i], imgs[j])
			if i%subjects == j%subjects {
				intra += d
				ni++
			} else {
				inter += d
				nx++
			}
		}
	}
	mi, mx := intra/float64(ni), inter/float64(nx)
	if mi*2 >= mx {
		t.Errorf("mean intra-subject L1 = %.0f, inter = %.0f; want clear separation", mi, mx)
	}
}

func TestSyntheticImagesBimodalDistances(t *testing.T) {
	// The defining property of the paper's image workload (Figs 6–7):
	// the pairwise-distance histogram has (at least) two peaks — one
	// near zero for same-subject pairs, one far out for cross-subject
	// pairs.
	rng := rand.New(rand.NewPCG(93, 1))
	imgs := SyntheticImages(rng, 80, ImageOptions{Width: 32, Height: 32, Subjects: 8})
	h := histogram.Pairwise(imgs, pgm.L1, 2000)
	peaks := h.Peaks(5, 0.05)
	if len(peaks) < 2 {
		t.Errorf("pairwise L1 histogram has %d peaks, want ≥ 2 (bimodal)", len(peaks))
	}
}

func TestSyntheticImagesDeterministic(t *testing.T) {
	a := SyntheticImages(rand.New(rand.NewPCG(94, 1)), 5, ImageOptions{Width: 16, Height: 16})
	b := SyntheticImages(rand.New(rand.NewPCG(94, 1)), 5, ImageOptions{Width: 16, Height: 16})
	for i := range a {
		for j := range a[i].Pix {
			if a[i].Pix[j] != b[i].Pix[j] {
				t.Fatal("SyntheticImages not deterministic for equal seeds")
			}
		}
	}
}
