package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"mvptree/internal/metric"
	"mvptree/internal/pgm"
)

func TestUniformVectorsShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 1))
	vs := UniformVectors(rng, 1000, 20)
	if len(vs) != 1000 {
		t.Fatalf("len = %d", len(vs))
	}
	var sum float64
	for _, v := range vs {
		if len(v) != 20 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if x < 0 || x >= 1 {
				t.Fatalf("coordinate %g outside [0,1)", x)
			}
			sum += x
		}
	}
	mean := sum / float64(1000*20)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("coordinate mean = %g, want ≈ 0.5", mean)
	}
}

func TestUniformVectorsDistanceConcentration(t *testing.T) {
	// §5.1.A: for 20-d uniform vectors pairwise L2 distances
	// concentrate around ~1.75 in [1, 2.5] — the Figure 4 shape.
	rng := rand.New(rand.NewPCG(82, 1))
	vs := UniformVectors(rng, 400, 20)
	var within, total int
	var sum float64
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			d := metric.L2(vs[i], vs[j])
			sum += d
			total++
			if d >= 1 && d <= 2.5 {
				within++
			}
		}
	}
	if frac := float64(within) / float64(total); frac < 0.99 {
		t.Errorf("only %.3f of pairwise distances in [1, 2.5]", frac)
	}
	if mean := sum / float64(total); math.Abs(mean-1.75) > 0.15 {
		t.Errorf("mean pairwise distance %g, paper reports ≈ 1.75", mean)
	}
}

func TestClusteredVectorsStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 1))
	const n, dim, cs = 600, 20, 100
	vs := ClusteredVectors(rng, n, dim, cs, 0.15)
	if len(vs) != n {
		t.Fatalf("len = %d", len(vs))
	}
	// Distances within a cluster must be smaller on average than
	// across clusters (clusters are generated around distinct seeds).
	intra, inter := 0.0, 0.0
	ni, nx := 0, 0
	for s := 0; s < 300; s++ {
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j {
			continue
		}
		d := metric.L2(vs[i], vs[j])
		if i/cs == j/cs {
			intra += d
			ni++
		} else {
			inter += d
			nx++
		}
	}
	if ni == 0 || nx == 0 {
		t.Fatal("sampling failed to cover both intra and inter pairs")
	}
	if intra/float64(ni) >= inter/float64(nx) {
		t.Errorf("mean intra-cluster distance %.3f ≥ inter-cluster %.3f",
			intra/float64(ni), inter/float64(nx))
	}
}

func TestClusteredVectorsWiderSpreadThanUniform(t *testing.T) {
	// Figure 5 vs Figure 4: the clustered distribution has a wider
	// range of pairwise distances. Compare standard deviations.
	rng := rand.New(rand.NewPCG(84, 1))
	uni := UniformVectors(rng, 300, 20)
	clu := ClusteredVectors(rng, 300, 20, 50, 0.15)
	sd := func(vs [][]float64) float64 {
		var ds []float64
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				ds = append(ds, metric.L2(vs[i], vs[j]))
			}
		}
		var mean float64
		for _, d := range ds {
			mean += d
		}
		mean /= float64(len(ds))
		var v float64
		for _, d := range ds {
			v += (d - mean) * (d - mean)
		}
		return math.Sqrt(v / float64(len(ds)))
	}
	if su, sc := sd(uni), sd(clu); sc <= su {
		t.Errorf("clustered stddev %.3f ≤ uniform stddev %.3f; want wider", sc, su)
	}
}

func TestClusteredVectorsTruncation(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 1))
	vs := ClusteredVectors(rng, 250, 5, 100, 0.1)
	if len(vs) != 250 {
		t.Errorf("len = %d, want exactly 250 (truncated last cluster)", len(vs))
	}
}

func TestSampleQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(86, 1))
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := SampleQueries(rng, items, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, g := range got {
		if seen[g] {
			t.Errorf("duplicate sample %d", g)
		}
		seen[g] = true
	}
	all := SampleQueries(rng, items, 100)
	if len(all) != len(items) {
		t.Errorf("oversized request returned %d items", len(all))
	}
}

func TestWordsBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(87, 1))
	ws := Words(rng, 500, WordOptions{})
	if len(ws) != 500 {
		t.Fatalf("len = %d", len(ws))
	}
	for _, w := range ws {
		if len(w) < 3 || len(w) > 10 {
			t.Fatalf("word %q length outside [3,10]", w)
		}
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				t.Fatalf("word %q contains %q", w, w[i])
			}
		}
	}
}

func TestWordsMisspellingsAreNear(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 1))
	ws := Words(rng, 300, WordOptions{MisspellingsPer: 2})
	// Corpus layout: base, variant, variant, base, ... Every variant is
	// within edit distance 2 of its base.
	for i := 0; i+2 < len(ws); i += 3 {
		for t2 := 1; t2 <= 2; t2++ {
			if d := metric.Edit(ws[i], ws[i+t2]); d > 2 {
				t.Fatalf("variant %q of %q at edit distance %g", ws[i+t2], ws[i], d)
			}
		}
	}
}

func TestWordsInvalidBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(89, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid length bounds accepted")
		}
	}()
	Words(rng, 10, WordOptions{MinLen: 5, MaxLen: 2})
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := UniformVectors(rand.New(rand.NewPCG(90, 1)), 10, 4)
	b := UniformVectors(rand.New(rand.NewPCG(90, 1)), 10, 4)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("UniformVectors not deterministic for equal seeds")
			}
		}
	}
}

func TestLoadPGMDir(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(95, 1))
	want := SyntheticImages(rng, 4, ImageOptions{Width: 10, Height: 10, Subjects: 2})
	for i, im := range want {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("im%d.pgm", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := pgm.Encode(f, im); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644)

	got, err := LoadPGMDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("loaded %d images", len(got))
	}
	for i := range got {
		if pgm.L1(got[i], want[i]) != 0 {
			t.Errorf("image %d changed in round trip", i)
		}
	}
}

func TestLoadPGMDirErrors(t *testing.T) {
	if _, err := LoadPGMDir("/does/not/exist"); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := LoadPGMDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
	mixed := t.TempDir()
	rng := rand.New(rand.NewPCG(96, 1))
	a := SyntheticImages(rng, 1, ImageOptions{Width: 8, Height: 8})[0]
	b := SyntheticImages(rng, 1, ImageOptions{Width: 9, Height: 9})[0]
	for name, im := range map[string]*pgm.Image{"a.pgm": a, "b.pgm": b} {
		f, _ := os.Create(filepath.Join(mixed, name))
		pgm.Encode(f, im)
		f.Close()
	}
	if _, err := LoadPGMDir(mixed); err == nil {
		t.Error("mixed-size dir accepted")
	}
}
