package dataset

import "math/rand/v2"

// WordOptions configure the synthetic word-corpus generator used by the
// edit-distance experiments (the "best-match file searching" setting of
// [BK73]).
type WordOptions struct {
	// MinLen and MaxLen bound word lengths. Defaults 3 and 10.
	MinLen, MaxLen int
	// Alphabet is the character set. Default "abcdefghijklmnopqrstuvwxyz".
	Alphabet string
	// MisspellingsPer adds, for each base word, this many near
	// variants at edit distance 1–2 (simulating typos, the classic
	// BK-tree workload). Default 0.
	MisspellingsPer int
}

func (o *WordOptions) setDefaults() {
	if o.MinLen == 0 {
		o.MinLen = 3
	}
	if o.MaxLen == 0 {
		o.MaxLen = 10
	}
	if o.Alphabet == "" {
		o.Alphabet = "abcdefghijklmnopqrstuvwxyz"
	}
}

// Words returns n words. With MisspellingsPer = t, the corpus consists
// of ⌈n/(t+1)⌉ random base words each followed by t perturbed variants
// (truncated to exactly n entries).
func Words(rng *rand.Rand, n int, opts WordOptions) []string {
	opts.setDefaults()
	if opts.MinLen < 1 || opts.MaxLen < opts.MinLen {
		panic("dataset: invalid word length bounds")
	}
	out := make([]string, 0, n)
	for len(out) < n {
		base := randomWord(rng, &opts)
		out = append(out, base)
		for t := 0; t < opts.MisspellingsPer && len(out) < n; t++ {
			out = append(out, perturbWord(rng, base, &opts))
		}
	}
	return out
}

func randomWord(rng *rand.Rand, opts *WordOptions) string {
	n := opts.MinLen + rng.IntN(opts.MaxLen-opts.MinLen+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = opts.Alphabet[rng.IntN(len(opts.Alphabet))]
	}
	return string(b)
}

// perturbWord applies one or two random single-character edits.
func perturbWord(rng *rand.Rand, w string, opts *WordOptions) string {
	edits := 1 + rng.IntN(2)
	b := []byte(w)
	for e := 0; e < edits; e++ {
		switch op := rng.IntN(3); {
		case op == 0 && len(b) > opts.MinLen: // delete
			i := rng.IntN(len(b))
			b = append(b[:i], b[i+1:]...)
		case op == 1 && len(b) < opts.MaxLen: // insert
			i := rng.IntN(len(b) + 1)
			c := opts.Alphabet[rng.IntN(len(opts.Alphabet))]
			b = append(b[:i], append([]byte{c}, b[i:]...)...)
		default: // substitute
			if len(b) == 0 {
				continue
			}
			i := rng.IntN(len(b))
			b[i] = opts.Alphabet[rng.IntN(len(opts.Alphabet))]
		}
	}
	return string(b)
}
