package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mvptree/internal/pgm"
)

// LoadPGMDir reads every .pgm file in dir (sorted by name, so dataset
// order is stable) and verifies that all images share one size. It
// exists so the image experiments can run against a real collection —
// e.g. the paper's MRI scans, if available — instead of the synthetic
// substitute: `mvpbench -imgdir scans/`.
func LoadPGMDir(dir string) ([]*pgm.Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".pgm") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("dataset: no .pgm files in %s", dir)
	}
	sort.Strings(names)
	imgs := make([]*pgm.Image, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		im, err := pgm.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(imgs) > 0 && (im.Width != imgs[0].Width || im.Height != imgs[0].Height) {
			return nil, fmt.Errorf("%s: size %dx%d differs from %dx%d",
				path, im.Width, im.Height, imgs[0].Width, imgs[0].Height)
		}
		imgs = append(imgs, im)
	}
	return imgs, nil
}
