package dataset

import (
	"math"
	"math/rand/v2"

	"mvptree/internal/pgm"
)

// ImageOptions configure the synthetic gray-level image generator.
//
// The paper's image workload is 1151 MRI head scans of several people
// (256×256, 8-bit). Those scans are not available, so this generator
// produces the closest synthetic equivalent: "head phantom" images built
// from a small number of subject prototypes (a bright elliptical head
// with internal elliptical structures on a dark background), each
// instance perturbed by a small geometric shift, a global intensity
// change and per-pixel noise. What matters for index behaviour is the
// pairwise-distance distribution, which the paper shows is bimodal
// ("while most of the images are distant from each other, some of them
// are quite similar, probably forming several clusters"); instances of
// one subject are mutually close and instances of different subjects are
// far apart, reproducing that shape.
type ImageOptions struct {
	Width    int // default 64
	Height   int // default 64
	Subjects int // number of distinct prototypes ("people"); default 8
	// Noise is the per-pixel uniform noise amplitude in intensity
	// levels. Default 4.
	Noise int
	// Shift is the maximum per-instance translation in pixels.
	// Default 0 (no geometric jitter): pixel-wise Lp distances are so
	// sensitive to edge displacement that even one pixel of shift
	// moves same-subject pairs most of the way toward cross-subject
	// distances, destroying the bimodal shape the workload must have.
	Shift int
}

func (o *ImageOptions) setDefaults() {
	if o.Width == 0 {
		o.Width = 64
	}
	if o.Height == 0 {
		o.Height = 64
	}
	if o.Subjects == 0 {
		o.Subjects = 8
	}
	if o.Noise == 0 {
		o.Noise = 4
	}
}

// ellipse is one filled elliptical region of a prototype.
type ellipse struct {
	cx, cy, rx, ry float64
	intensity      float64
}

// prototype is the stable description of one subject; instances are
// rendered from it with per-instance jitter.
type prototype struct {
	background float64
	shapes     []ellipse
}

// SyntheticImages returns n gray-level images, cycling through the
// subjects so each contributes ⌈n/Subjects⌉ or ⌊n/Subjects⌋ instances.
func SyntheticImages(rng *rand.Rand, n int, opts ImageOptions) []*pgm.Image {
	opts.setDefaults()
	protos := make([]prototype, opts.Subjects)
	for i := range protos {
		protos[i] = randomPrototype(rng, opts.Width, opts.Height)
	}
	out := make([]*pgm.Image, n)
	for i := range out {
		out[i] = renderInstance(rng, &protos[i%len(protos)], &opts)
	}
	return out
}

func randomPrototype(rng *rand.Rand, w, h int) prototype {
	fw, fh := float64(w), float64(h)
	p := prototype{background: 5 + 40*rng.Float64()}
	// The head: a large bright ellipse roughly centered.
	head := ellipse{
		cx:        fw * (0.40 + 0.2*rng.Float64()),
		cy:        fh * (0.40 + 0.2*rng.Float64()),
		rx:        fw * (0.24 + 0.14*rng.Float64()),
		ry:        fh * (0.26 + 0.14*rng.Float64()),
		intensity: 80 + 120*rng.Float64(),
	}
	p.shapes = append(p.shapes, head)
	// Internal structures: ventricles, skull boundary, lesions...
	for s, count := 0, 4+rng.IntN(5); s < count; s++ {
		p.shapes = append(p.shapes, ellipse{
			cx:        head.cx + (rng.Float64()-0.5)*head.rx,
			cy:        head.cy + (rng.Float64()-0.5)*head.ry,
			rx:        head.rx * (0.1 + 0.35*rng.Float64()),
			ry:        head.ry * (0.1 + 0.35*rng.Float64()),
			intensity: 30 + 200*rng.Float64(),
		})
	}
	return p
}

func renderInstance(rng *rand.Rand, p *prototype, opts *ImageOptions) *pgm.Image {
	im := pgm.NewImage(opts.Width, opts.Height)
	var dx, dy float64
	if opts.Shift > 0 {
		dx = float64(rng.IntN(2*opts.Shift+1) - opts.Shift)
		dy = float64(rng.IntN(2*opts.Shift+1) - opts.Shift)
	}
	gain := 0.98 + 0.04*rng.Float64()
	for y := 0; y < opts.Height; y++ {
		fy := float64(y) - dy
		for x := 0; x < opts.Width; x++ {
			fx := float64(x) - dx
			v := p.background
			for _, e := range p.shapes {
				nx := (fx - e.cx) / e.rx
				ny := (fy - e.cy) / e.ry
				if nx*nx+ny*ny <= 1 {
					v = e.intensity
				}
			}
			v = v*gain + float64(rng.IntN(2*opts.Noise+1)-opts.Noise)
			im.Set(x, y, clamp8(v))
		}
	}
	return im
}

func clamp8(v float64) uint8 {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return uint8(math.Round(v))
	}
}
