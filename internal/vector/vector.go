// Package vector provides plain-text I/O for dense float64 vectors: one
// vector per line, coordinates separated by whitespace, '#' comments and
// blank lines ignored. The format is what cmd/datagen writes and
// cmd/mvpquery reads.
package vector

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format renders a vector as space-separated coordinates.
func Format(v []float64) string {
	var sb strings.Builder
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return sb.String()
}

// Parse parses a line of space-separated coordinates.
func Parse(s string) ([]float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("vector: empty input")
	}
	v := make([]float64, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("vector: coordinate %d: %w", i, err)
		}
		v[i] = x
	}
	return v, nil
}

// WriteAll writes vectors one per line.
func WriteAll(w io.Writer, vs [][]float64) error {
	bw := bufio.NewWriter(w)
	for _, v := range vs {
		if _, err := bw.WriteString(Format(v)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll reads vectors one per line, skipping blank lines and lines
// starting with '#'. All vectors must have the same dimensionality.
func ReadAll(r io.Reader) ([][]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out [][]float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if len(out) > 0 && len(v) != len(out[0]) {
			return nil, fmt.Errorf("line %d: dimension %d, want %d", line, len(v), len(out[0]))
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
