package vector

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse ensures the vector parser never panics and that accepted
// vectors re-format to something that parses back to the same values.
func FuzzParse(f *testing.F) {
	f.Add("1 2 3")
	f.Add("-1.5e10 0.0001")
	f.Add("")
	f.Add("NaN Inf -Inf")
	f.Add("1,2,3")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(Format(v))
		if err != nil {
			t.Fatalf("accepted vector does not re-parse: %v", err)
		}
		if len(back) != len(v) {
			t.Fatalf("length changed: %d → %d", len(v), len(back))
		}
		for i := range v {
			same := back[i] == v[i] || (math.IsNaN(back[i]) && math.IsNaN(v[i]))
			if !same {
				t.Fatalf("coordinate %d changed: %g → %g", i, v[i], back[i])
			}
		}
	})
}

// FuzzReadAll ensures the file reader is total over arbitrary text.
func FuzzReadAll(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("# comment\n\n1\n")
	f.Add("1 2\n3\n")
	f.Fuzz(func(t *testing.T, s string) {
		vs, err := ReadAll(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, v := range vs {
			if len(vs) > 0 && len(v) != len(vs[0]) {
				t.Fatal("accepted ragged vectors")
			}
		}
	})
}
