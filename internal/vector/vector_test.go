package vector

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		if len(v) == 0 {
			return true
		}
		for _, x := range v {
			if math.IsNaN(x) {
				return true // NaN never round-trips by ==
			}
		}
		got, err := Parse(Format(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "   ", "1.0 banana", "1 2 3x"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestReadAllSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n1 2 3\n\n  \n4 5 6\n# trailing\n"
	vs, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0][0] != 1 || vs[1][2] != 6 {
		t.Errorf("ReadAll = %v", vs)
	}
}

func TestReadAllDimensionMismatch(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("1 2\n1 2 3\n")); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	vs := [][]float64{{1.5, -2.25}, {0, 1e-17}, {3, 4}}
	var sb strings.Builder
	if err := WriteAll(&sb, vs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("got %d vectors", len(got))
	}
	for i := range vs {
		for j := range vs[i] {
			if got[i][j] != vs[i][j] {
				t.Errorf("[%d][%d] = %g, want %g", i, j, got[i][j], vs[i][j])
			}
		}
	}
}
