package testutil

import (
	"math"
	"sort"
	"testing"

	"mvptree/internal/index"
)

// FarthestSearcher is the optional interface for the farthest-object
// query variants of the paper's §2.
type FarthestSearcher[T any] interface {
	RangeFarther(q T, r float64) []T
	KFarthest(q T, k int) []index.Neighbor[T]
}

// CheckRangeFarther verifies that idx's RangeFarther answers match the
// linear-scan ground truth for every (query, radius) pair.
func CheckRangeFarther(t *testing.T, name string, idx FarthestSearcher[int], w *Workload, radii []float64) {
	t.Helper()
	for _, q := range w.Queries {
		for _, r := range radii {
			got := append([]int(nil), idx.RangeFarther(q, r)...)
			want := append([]int(nil), w.Truth.RangeFarther(q, r)...)
			sort.Ints(got)
			sort.Ints(want)
			if !equalInts(got, want) {
				t.Errorf("%s: RangeFarther(q=%d, r=%g) = %d items, want %d", name, q, r, len(got), len(want))
				return
			}
		}
	}
}

// CheckKFarthest verifies KFarthest against linear scan: same length,
// descending distances, identical distance multiset and truthful
// reported distances.
func CheckKFarthest(t *testing.T, name string, idx FarthestSearcher[int], w *Workload, ks []int) {
	t.Helper()
	for _, q := range w.Queries {
		for _, k := range ks {
			got := idx.KFarthest(q, k)
			want := w.Truth.KFarthest(q, k)
			if len(got) != len(want) {
				t.Errorf("%s: KFarthest(q=%d, k=%d) returned %d items, want %d", name, q, k, len(got), len(want))
				return
			}
			for i, nb := range got {
				if td := w.Dist(q, nb.Item); math.Abs(td-nb.Dist) > 1e-9 {
					t.Errorf("%s: KFarthest(q=%d, k=%d)[%d] reports dist %g, true %g", name, q, k, i, nb.Dist, td)
					return
				}
				if i > 0 && got[i-1].Dist < nb.Dist-1e-12 {
					t.Errorf("%s: KFarthest(q=%d, k=%d) not descending at %d", name, q, k, i)
					return
				}
				if math.Abs(nb.Dist-want[i].Dist) > 1e-9 {
					t.Errorf("%s: KFarthest(q=%d, k=%d)[%d].Dist = %g, want %g", name, q, k, i, nb.Dist, want[i].Dist)
					return
				}
			}
		}
	}
}
