//go:build !race

package testutil

// RaceEnabled reports whether the race detector is compiled in; see
// race_on.go.
const RaceEnabled = false
