// Package testutil provides the shared correctness harness used by the
// tests of every index structure: randomized workload generators and
// equivalence checks against the linear-scan ground truth.
//
// Workloads index item IDs (ints) into a shared dataset; the distance
// function closes over the dataset. Indexing small comparable IDs makes
// result-set comparison exact and keeps the harness structure-agnostic.
package testutil

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/index"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
)

// RandomVectors returns n vectors drawn uniformly from [0,1)^dim.
func RandomVectors(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// ClumpedVectors returns n vectors forming tight clumps: a harder case
// for equal-cardinality partitioning because many pairwise distances are
// nearly identical and duplicates occur.
func ClumpedVectors(rng *rand.Rand, n, dim, clumps int) [][]float64 {
	centers := RandomVectors(rng, clumps, dim)
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.IntN(clumps)]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + (rng.Float64()-0.5)*0.02
		}
		out[i] = v
	}
	// Inject exact duplicates.
	for i := 0; i < n/10; i++ {
		out[rng.IntN(n)] = out[rng.IntN(n)]
	}
	return out
}

// IDs returns the slice [0, 1, ..., n-1].
func IDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// IDDistance lifts a vector metric to a metric over item IDs in data.
// Query IDs may exceed len(data) by indexing into queries: pass
// data = append(dataset, queryPoints...) and use IDs ≥ len(dataset) as
// query IDs.
func IDDistance(data [][]float64, fn metric.DistanceFunc[[]float64]) metric.DistanceFunc[int] {
	return func(a, b int) float64 { return fn(data[a], data[b]) }
}

// Workload bundles a dataset of item IDs with query IDs and ground truth.
type Workload struct {
	Items   []int
	Queries []int
	Dist    metric.DistanceFunc[int]
	Truth   *linear.Scan[int]
}

// NewVectorWorkload builds a workload of n uniform dim-dimensional
// vectors and q query points under the given vector metric.
func NewVectorWorkload(rng *rand.Rand, n, dim, q int, fn metric.DistanceFunc[[]float64]) *Workload {
	data := RandomVectors(rng, n+q, dim)
	return newWorkload(data, n, q, fn)
}

// NewClumpedWorkload is NewVectorWorkload over clumped, duplicate-heavy
// data.
func NewClumpedWorkload(rng *rand.Rand, n, dim, q int, fn metric.DistanceFunc[[]float64]) *Workload {
	data := ClumpedVectors(rng, n+q, dim, 5)
	return newWorkload(data, n, q, fn)
}

func newWorkload(data [][]float64, n, q int, fn metric.DistanceFunc[[]float64]) *Workload {
	dist := IDDistance(data, fn)
	w := &Workload{
		Items:   IDs(n),
		Queries: make([]int, q),
		Dist:    dist,
	}
	for i := range w.Queries {
		w.Queries[i] = n + i
	}
	w.Truth = linear.New(w.Items, metric.NewCounter(dist))
	return w
}

// CheckRange verifies that idx answers every (query, radius) pair with
// exactly the same item set as the linear-scan ground truth.
func CheckRange(t *testing.T, name string, idx index.Index[int], w *Workload, radii []float64) {
	t.Helper()
	for _, q := range w.Queries {
		for _, r := range radii {
			got := append([]int(nil), idx.Range(q, r)...)
			want := append([]int(nil), w.Truth.Range(q, r)...)
			sort.Ints(got)
			sort.Ints(want)
			if !equalInts(got, want) {
				t.Errorf("%s: Range(q=%d, r=%g) = %v, want %v", name, q, r, got, want)
				return
			}
		}
	}
}

// CheckKNN verifies that idx's KNN answers match linear scan: same
// length, ascending distances, identical distance multiset (ties may be
// broken differently), and every reported distance is the item's true
// distance.
func CheckKNN(t *testing.T, name string, idx index.Index[int], w *Workload, ks []int) {
	t.Helper()
	for _, q := range w.Queries {
		for _, k := range ks {
			got := idx.KNN(q, k)
			want := w.Truth.KNN(q, k)
			if len(got) != len(want) {
				t.Errorf("%s: KNN(q=%d, k=%d) returned %d items, want %d", name, q, k, len(got), len(want))
				return
			}
			for i, nb := range got {
				if td := w.Dist(q, nb.Item); math.Abs(td-nb.Dist) > 1e-9 {
					t.Errorf("%s: KNN(q=%d, k=%d)[%d] reports dist %g, true %g", name, q, k, i, nb.Dist, td)
					return
				}
				if i > 0 && got[i-1].Dist > nb.Dist+1e-12 {
					t.Errorf("%s: KNN(q=%d, k=%d) not ascending at %d", name, q, k, i)
					return
				}
				if math.Abs(nb.Dist-want[i].Dist) > 1e-9 {
					t.Errorf("%s: KNN(q=%d, k=%d)[%d].Dist = %g, want %g", name, q, k, i, nb.Dist, want[i].Dist)
					return
				}
			}
		}
	}
}

// CheckContainsAllOnce verifies that a full-space range query returns
// each indexed item exactly once (no item lost or duplicated by the
// partitioning).
func CheckContainsAllOnce(t *testing.T, name string, idx index.Index[int], w *Workload, bigR float64) {
	t.Helper()
	if len(w.Queries) == 0 {
		return
	}
	got := append([]int(nil), idx.Range(w.Queries[0], bigR)...)
	sort.Ints(got)
	if !equalInts(got, w.Items) {
		t.Errorf("%s: full-range query returned %d items, want all %d exactly once", name, len(got), len(w.Items))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
