//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions (testing.AllocsPerRun) are meaningless
// under race instrumentation — the runtime allocates shadow state — so
// zero-alloc tests skip when this is true.
const RaceEnabled = true
