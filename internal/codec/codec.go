// Package codec provides item encoders/decoders for the persistence
// layer: vectors, strings and gray-level images — the three item types
// of the paper's workloads.
package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"mvptree/internal/pgm"
)

// EncodeVector serializes a float64 vector as little-endian IEEE-754
// words.
func EncodeVector(v []float64) ([]byte, error) {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out, nil
}

// DecodeVector reverses EncodeVector.
func DecodeVector(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("codec: vector encoding has %d bytes, not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// EncodeString serializes a string as its bytes.
func EncodeString(s string) ([]byte, error) { return []byte(s), nil }

// DecodeString reverses EncodeString.
func DecodeString(b []byte) (string, error) { return string(b), nil }

// EncodeImage serializes a gray-level image as binary PGM.
func EncodeImage(im *pgm.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := pgm.Encode(&buf, im); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeImage reverses EncodeImage.
func DecodeImage(b []byte) (*pgm.Image, error) {
	return pgm.Decode(bytes.NewReader(b))
}
