package codec

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mvptree/internal/pgm"
)

func TestVectorRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		b, err := EncodeVector(v)
		if err != nil {
			return false
		}
		got, err := DecodeVector(b)
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			same := got[i] == v[i] || (math.IsNaN(got[i]) && math.IsNaN(v[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVectorDecodeRejectsBadLength(t *testing.T) {
	if _, err := DecodeVector(make([]byte, 7)); err == nil {
		t.Error("7-byte vector accepted")
	}
	if got, err := DecodeVector(nil); err != nil || len(got) != 0 {
		t.Errorf("empty vector: %v, %v", got, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b, err := EncodeString(s)
		if err != nil {
			return false
		}
		got, err := DecodeString(b)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 4))
	im := pgm.NewImage(9, 7)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.IntN(256))
	}
	b, err := EncodeImage(im)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 9 || got.Height != 7 {
		t.Fatalf("dims %dx%d", got.Width, got.Height)
	}
	if pgm.L1(im, got) != 0 {
		t.Error("image changed in round trip")
	}
}

func TestImageDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeImage([]byte("not a pgm")); err == nil {
		t.Error("garbage image accepted")
	}
}
