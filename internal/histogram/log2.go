package histogram

import (
	"encoding/json"
	"math"
	"math/bits"
)

// Log2Buckets is the number of buckets of a Log2 histogram: bucket 0
// counts zeros and bucket b (1 ≤ b ≤ 64) counts values v with
// 2^(b−1) ≤ v < 2^b, so any non-negative int64 maps to exactly one
// bucket.
const Log2Buckets = 65

// Log2 is a log₂-bucketed histogram over non-negative int64 values —
// the shape used by the query-time observability layer for latencies
// (nanoseconds) and per-query distance counts, where values span many
// orders of magnitude and constant relative resolution matters more
// than constant absolute resolution.
//
// Log2 is a plain value type: snapshots of concurrent recorders are
// materialized as Log2 and combined with Merge, which is associative
// and commutative (it is a field-wise sum plus a max), so shards and
// per-worker partials can be folded in any grouping without changing
// the result.
type Log2 struct {
	Counts [Log2Buckets]int64
	N      int64 // number of recorded values
	Sum    int64 // sum of recorded values
	Max    int64 // largest recorded value
}

// Log2Bucket returns the bucket index of v (negative values are clamped
// to bucket 0; they cannot occur for latencies or counts).
func Log2Bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Log2BucketUpper returns the exclusive upper bound of bucket b: the
// smallest value that does NOT belong to bucket b or below. The last
// bucket's bound saturates at MaxInt64.
func Log2BucketUpper(b int) int64 {
	if b <= 0 {
		return 1
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1) << b
}

// Add records one value.
func (h *Log2) Add(v int64) {
	h.Counts[Log2Bucket(v)]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge accumulates o into h. Merge is associative and commutative, so
// per-shard or per-worker histograms may be folded in any order.
func (h *Log2) Merge(o Log2) {
	for b := range h.Counts {
		h.Counts[b] += o.Counts[b]
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Total reports the number of recorded values.
func (h *Log2) Total() int64 { return h.N }

// Mean reports the mean of recorded values (0 when empty).
func (h *Log2) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an upper bound of the q-quantile (0 ≤ q ≤ 1) at
// bucket resolution: the exclusive upper bound of the first bucket
// whose cumulative count reaches q·N, clamped to Max (the bound a
// recorded value is known not to exceed). It returns 0 when empty.
func (h *Log2) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.N)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range h.Counts {
		cum += c
		if cum >= target {
			upper := Log2BucketUpper(b) - 1
			if upper > h.Max {
				upper = h.Max
			}
			return upper
		}
	}
	return h.Max
}

// log2JSON is the sparse wire form of a Log2 histogram: only non-empty
// buckets, each with its exclusive upper bound.
type log2JSON struct {
	N       int64        `json:"n"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Buckets []log2Bucket `json:"buckets,omitempty"`
}

type log2Bucket struct {
	Lt    int64 `json:"lt"` // exclusive upper bound of the bucket
	Count int64 `json:"count"`
}

// MarshalJSON emits the histogram sparsely (non-empty buckets only), so
// telemetry artifacts stay readable.
func (h Log2) MarshalJSON() ([]byte, error) {
	out := log2JSON{N: h.N, Sum: h.Sum, Max: h.Max}
	for b, c := range h.Counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, log2Bucket{Lt: Log2BucketUpper(b), Count: c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON reads the sparse form written by MarshalJSON.
func (h *Log2) UnmarshalJSON(data []byte) error {
	var in log2JSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Log2{N: in.N, Sum: in.Sum, Max: in.Max}
	for _, b := range in.Buckets {
		h.Counts[Log2Bucket(b.Lt-1)] += b.Count
	}
	return nil
}
