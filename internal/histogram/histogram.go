// Package histogram computes pairwise-distance histograms, the analysis
// tool behind Figures 4–7 of the paper. The distance distribution of a
// dataset determines how well any distance-based index can prune, so the
// paper presents one histogram per workload; this package regenerates
// them and also derives "meaningful tolerance factors" (query radii)
// from distribution quantiles, as §5.1.B suggests.
package histogram

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strings"

	"mvptree/internal/metric"
)

// Histogram is a fixed-bucket-width histogram over [0, ∞). Values are
// assigned to bucket ⌊v / BucketWidth⌋; the bucket slice grows on demand.
type Histogram struct {
	BucketWidth float64
	Counts      []int64
	total       int64
	sum         float64
	max         float64
}

// New returns an empty histogram with the given bucket width, which must
// be positive.
func New(bucketWidth float64) *Histogram {
	if bucketWidth <= 0 || math.IsNaN(bucketWidth) || math.IsInf(bucketWidth, 0) {
		panic("histogram: bucket width must be positive and finite")
	}
	return &Histogram{BucketWidth: bucketWidth}
}

// Add records one value. Negative values are clamped to bucket 0 (they
// cannot occur for metric distances).
func (h *Histogram) Add(v float64) {
	b := 0
	if v > 0 {
		b = int(v / h.BucketWidth)
	}
	for b >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total reports the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// Mean reports the mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max reports the largest recorded value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound of the q-quantile (0 ≤ q ≤ 1) of the
// recorded values, at bucket resolution: the right edge of the first
// bucket whose cumulative count reaches q·Total.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range h.Counts {
		cum += c
		if cum >= target {
			return float64(b+1) * h.BucketWidth
		}
	}
	return float64(len(h.Counts)) * h.BucketWidth
}

// Smoothed returns the counts convolved with a centered moving-average
// window (window forced odd, ≥1), as floats.
func (h *Histogram) Smoothed(window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(h.Counts))
	for i := range out {
		var s float64
		var n int
		for j := i - half; j <= i+half; j++ {
			if j >= 0 && j < len(h.Counts) {
				s += float64(h.Counts[j])
				n++
			}
		}
		out[i] = s / float64(n)
	}
	return out
}

// Peaks returns the bucket indices of local maxima of the smoothed
// histogram whose height is at least minFrac of the global smoothed
// maximum, separated by a dip to below half their height. It is how the
// tests assert the qualitative shapes of Figures 4–7 (unimodal for
// uniform vectors, bimodal for images).
func (h *Histogram) Peaks(window int, minFrac float64) []int {
	s := h.Smoothed(window)
	if len(s) == 0 {
		return nil
	}
	globalMax := 0.0
	for _, v := range s {
		if v > globalMax {
			globalMax = v
		}
	}
	if globalMax == 0 {
		return nil
	}
	threshold := globalMax * minFrac
	// Candidate local maxima above the height threshold.
	var cands []int
	for i := range s {
		if s[i] < threshold {
			continue
		}
		if (i == 0 || s[i] >= s[i-1]) && (i == len(s)-1 || s[i] >= s[i+1]) {
			cands = append(cands, i)
		}
	}
	// Merge candidates that belong to the same hump: two maxima are
	// distinct peaks only if the valley between them drops below half
	// of the lower one.
	var peaks []int
	for _, c := range cands {
		if len(peaks) == 0 {
			peaks = append(peaks, c)
			continue
		}
		last := peaks[len(peaks)-1]
		valley := s[last]
		for j := last; j <= c; j++ {
			if s[j] < valley {
				valley = s[j]
			}
		}
		lower := min(s[last], s[c])
		if valley < lower/2 {
			peaks = append(peaks, c)
		} else if s[c] > s[last] {
			peaks[len(peaks)-1] = c
		}
	}
	return peaks
}

// Pairwise records the distances of all unordered pairs of items —
// n·(n−1)/2 distance computations, as the paper does for its 1151 images
// ("(1150*1151)/2 = 658795 different pairs").
func Pairwise[T any](items []T, fn metric.DistanceFunc[T], bucketWidth float64) *Histogram {
	h := New(bucketWidth)
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			h.Add(fn(items[i], items[j]))
		}
	}
	return h
}

// PairwiseSampled records the distances of pairs sampled uniformly with
// replacement (skipping i == j), for datasets whose full pair set is too
// large (50,000 vectors → 1.25 billion pairs).
func PairwiseSampled[T any](rng *rand.Rand, items []T, fn metric.DistanceFunc[T], bucketWidth float64, pairs int) *Histogram {
	h := New(bucketWidth)
	if len(items) < 2 {
		return h
	}
	for k := 0; k < pairs; k++ {
		i := rng.IntN(len(items))
		j := rng.IntN(len(items))
		if i == j {
			k--
			continue
		}
		h.Add(fn(items[i], items[j]))
	}
	return h
}

// WriteTo prints the histogram as "bucket_start<TAB>count" rows followed
// by a summary line, the textual form of the paper's Figures 4–7.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	for b, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%.4f\t%d\n", float64(b)*h.BucketWidth, c)
	}
	fmt.Fprintf(&sb, "# total=%d mean=%.4f max=%.4f\n", h.total, h.Mean(), h.max)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteCSV prints the histogram as "bucket_start,count" CSV rows.
func (h *Histogram) WriteCSV(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("bucket,count\n")
	for b, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%g,%d\n", float64(b)*h.BucketWidth, c)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}
