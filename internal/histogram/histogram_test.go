package histogram

import (
	"math/rand/v2"
	"strings"
	"testing"

	"mvptree/internal/metric"
)

func TestAddAndBuckets(t *testing.T) {
	h := New(0.5)
	for _, v := range []float64{0, 0.49, 0.5, 0.99, 1.7, -0.2} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Buckets: [0,0.5): {0, 0.49, -0.2}; [0.5,1): {0.5, 0.99}; [1.5,2): {1.7}
	want := []int64{3, 2, 0, 1}
	if len(h.Counts) != len(want) {
		t.Fatalf("Counts = %v", h.Counts)
	}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.Max() != 1.7 {
		t.Errorf("Max = %g", h.Max())
	}
}

func TestMeanAndQuantile(t *testing.T) {
	h := New(1)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("Mean = %g, want 50.5", m)
	}
	if q := h.Quantile(0.5); q < 50 || q > 52 {
		t.Errorf("median ≈ %g, want ≈ 51", q)
	}
	if q := h.Quantile(1.0); q < 100 {
		t.Errorf("Quantile(1) = %g, want ≥ 100", q)
	}
	if q := h.Quantile(0); q <= 0 {
		t.Errorf("Quantile(0) = %g, want right edge of first nonempty bucket", q)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New(1)
	if h.Total() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram misbehaves")
	}
	if peaks := h.Peaks(3, 0.1); peaks != nil {
		t.Errorf("empty Peaks = %v", peaks)
	}
}

func TestInvalidBucketWidthPanics(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%g) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestPeaksUnimodal(t *testing.T) {
	h := New(1)
	rng := rand.New(rand.NewPCG(101, 1))
	for i := 0; i < 10000; i++ {
		// Roughly normal around 50 via sum of uniforms.
		v := 0.0
		for j := 0; j < 12; j++ {
			v += rng.Float64()
		}
		h.Add(v/12*20 + 40)
	}
	peaks := h.Peaks(3, 0.1)
	if len(peaks) != 1 {
		t.Errorf("unimodal data produced peaks %v", peaks)
	}
}

func TestPeaksBimodal(t *testing.T) {
	h := New(1)
	rng := rand.New(rand.NewPCG(102, 1))
	for i := 0; i < 10000; i++ {
		center := 20.0
		if i%2 == 0 {
			center = 80
		}
		h.Add(center + rng.Float64()*10 - 5)
	}
	peaks := h.Peaks(3, 0.1)
	if len(peaks) != 2 {
		t.Errorf("bimodal data produced peaks %v", peaks)
	}
}

func TestPairwiseCountsAllPairs(t *testing.T) {
	items := [][]float64{{0}, {1}, {2}, {3}, {4}}
	h := Pairwise(items, metric.L2, 1)
	if h.Total() != 10 { // 5·4/2
		t.Errorf("Total = %d, want 10", h.Total())
	}
	// Distances: four 1s, three 2s, two 3s, one 4. Bucket b holds
	// values in [b, b+1): distance d lands in bucket d exactly.
	want := map[int]int64{1: 4, 2: 3, 3: 2, 4: 1}
	for b, c := range want {
		if h.Counts[b] != c {
			t.Errorf("Counts[%d] = %d, want %d", b, h.Counts[b], c)
		}
	}
}

func TestPairwiseSampled(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 1))
	items := [][]float64{{0}, {10}}
	h := PairwiseSampled(rng, items, metric.L2, 1, 500)
	if h.Total() != 500 {
		t.Errorf("Total = %d, want 500", h.Total())
	}
	if h.Counts[10] != 500 {
		t.Errorf("all sampled pairs have distance 10; Counts[10] = %d", h.Counts[10])
	}
	if small := PairwiseSampled(rng, items[:1], metric.L2, 1, 100); small.Total() != 0 {
		t.Errorf("single-item sampling recorded %d pairs", small.Total())
	}
}

func TestSmoothedPreservesMass(t *testing.T) {
	h := New(1)
	for _, v := range []float64{1, 1, 2, 5, 5, 5} {
		h.Add(v)
	}
	s := h.Smoothed(1) // window 1: identity
	for i, c := range h.Counts {
		if s[i] != float64(c) {
			t.Errorf("Smoothed(1)[%d] = %g, want %d", i, s[i], c)
		}
	}
}

func TestWriteTo(t *testing.T) {
	h := New(0.5)
	h.Add(0.2)
	h.Add(0.7)
	var sb strings.Builder
	if _, err := h.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0.0000\t1") || !strings.Contains(out, "0.5000\t1") {
		t.Errorf("WriteTo output:\n%s", out)
	}
	if !strings.Contains(out, "total=2") {
		t.Errorf("missing summary line:\n%s", out)
	}
}
