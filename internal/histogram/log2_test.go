package histogram

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestLog2Bucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {-5, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := Log2Bucket(c.v); got != c.want {
			t.Errorf("Log2Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
		// Every value must lie below its bucket's exclusive upper bound
		// and at or above the previous bucket's.
		if c.v >= 0 {
			b := Log2Bucket(c.v)
			// The top bucket's bound saturates at MaxInt64, where
			// exclusivity cannot hold.
			if c.v >= Log2BucketUpper(b) && Log2BucketUpper(b) != math.MaxInt64 {
				t.Errorf("value %d not below upper bound %d of bucket %d", c.v, Log2BucketUpper(b), b)
			}
			if b > 0 && c.v < Log2BucketUpper(b-1) {
				t.Errorf("value %d below upper bound %d of bucket %d", c.v, Log2BucketUpper(b-1), b-1)
			}
		}
	}
}

// TestLog2MergeAssociativity checks the property the observability layer
// leans on: folding per-shard partial histograms in any grouping or
// order yields the identical aggregate.
func TestLog2MergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	values := make([]int64, 5000)
	for i := range values {
		switch rng.Intn(3) {
		case 0:
			values[i] = int64(rng.Intn(10))
		case 1:
			values[i] = int64(rng.Intn(100_000))
		default:
			values[i] = rng.Int63()
		}
	}

	// Reference: a single histogram fed sequentially.
	var ref Log2
	for _, v := range values {
		ref.Add(v)
	}

	for trial := 0; trial < 20; trial++ {
		// Split into a random number of shards with random assignment.
		shards := make([]Log2, 1+rng.Intn(8))
		for _, v := range values {
			shards[rng.Intn(len(shards))].Add(v)
		}
		// Fold in a random order, alternating between (a·b)·c and a·(b·c)
		// style groupings by merging into accumulators at random positions.
		order := rng.Perm(len(shards))
		accs := make([]Log2, 1+rng.Intn(3))
		for _, i := range order {
			accs[rng.Intn(len(accs))].Merge(shards[i])
		}
		var got Log2
		for _, a := range accs {
			got.Merge(a)
		}
		if got != ref {
			t.Fatalf("trial %d: merged histogram differs from sequential reference\ngot  %+v\nwant %+v", trial, got, ref)
		}
	}
}

func TestLog2Quantile(t *testing.T) {
	var h Log2
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %d, want 0", h.Quantile(0.5))
	}
	for v := int64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.Total() != 1000 {
		t.Fatalf("Total = %d, want 1000", h.Total())
	}
	if got := h.Mean(); got != 500.5 {
		t.Fatalf("Mean = %v, want 500.5", got)
	}
	// Quantile is an upper bound at bucket resolution: it must be ≥ the
	// exact quantile and ≤ Max.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		exact := int64(math.Ceil(q * 1000))
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d, below exact %d", q, got, exact)
		}
		if got > h.Max {
			t.Errorf("Quantile(%v) = %d, above max %d", q, got, h.Max)
		}
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("Quantile(1.0) = %d, want clamped max 1000", got)
	}
}

func TestLog2JSONRoundTrip(t *testing.T) {
	var h Log2
	for _, v := range []int64{0, 1, 3, 900, 70_000, 1 << 40} {
		h.Add(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Log2
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip mismatch\ngot  %+v\nwant %+v", back, h)
	}
}
