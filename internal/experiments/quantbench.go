package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mvptree/internal/bench"
	"mvptree/internal/build"
	"mvptree/internal/dataset"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/quant"

	"math/rand/v2"
)

// QuantBenchRounds is the number of measured passes over the query
// batch per (structure, mode) cell, after one warm-up pass.
const QuantBenchRounds = 3

// QuantBenchK is the kNN width of the quantbench workload. kNN at this
// width touches most of the dataset at the benchmark's dimensions, so
// it is the bandwidth-bound case the pre-filter targets.
const QuantBenchK = 10

// QuantBenchRow is one (structure, metric, dim, mode) cell of the
// quantized pre-filter study: wall time and distance charges per
// query, plus the survivor rate — the fraction of charged leaf
// candidates that still reached the exact float64 kernel (1.0 when the
// filter is off; lower is better bandwidth savings).
type QuantBenchRow struct {
	Structure string  `json:"structure"`
	Metric    string  `json:"metric"`
	Dim       int     `json:"dim"`
	Radius    float64 `json:"radius"`
	Mode      string  `json:"mode"`
	BuildCost int64   `json:"build_cost"`

	RangeNsPerOp      float64 `json:"range_ns_per_op"`
	RangeDistPerQuery float64 `json:"range_dist_per_query"`
	RangeSurvivorRate float64 `json:"range_survivor_rate"`

	KNNNsPerOp      float64 `json:"knn_ns_per_op"`
	KNNDistPerQuery float64 `json:"knn_dist_per_query"`
	KNNSurvivorRate float64 `json:"knn_survivor_rate"`
}

// QuantBenchReport is the artifact cmd/mvpbench -quantjson writes and
// `benchguard -mode quant` gates on.
type QuantBenchReport struct {
	N       int             `json:"n"`
	Queries int             `json:"queries"`
	Rounds  int             `json:"rounds"`
	K       int             `json:"k"`
	Rows    []QuantBenchRow `json:"rows"`
}

// quantBenchConfig is one workload axis of the study. Radii scale with
// √dim so the range query keeps a comparable selectivity as the
// expected pairwise distance grows.
type quantBenchConfig struct {
	metricName string
	fn         metric.DistanceFunc[[]float64]
	dim        int
	radius     float64
}

// QuantBenchStudy measures the quantized pre-filter off vs on (both
// representations) over uniform vectors, per metric shape and
// dimension, on the two tree structures that host it plus the linear
// scan at the highest dimension. Every mode answers the same query
// batch; the study verifies result identity in-line (length and kNN
// distances against the mode-off run) before trusting the timings.
// Distance charges are byte-identical by construction — the filter's
// contract — so the comparison axis is purely wall time and the
// survivor rate explains where the time went.
func QuantBenchStudy(c Config) (*QuantBenchReport, error) {
	configs := []quantBenchConfig{
		{"l2", metric.L2, 20, 0.9},
		{"l1", metric.L1, 20, 3.2},
		{"linf", metric.LInf, 20, 0.45},
		{"l2", metric.L2, 50, 2.0},
	}
	rep := &QuantBenchReport{
		N: c.N, Queries: c.Queries, Rounds: QuantBenchRounds, K: QuantBenchK,
	}
	seed := c.TreeSeeds[0]
	for _, qc := range configs {
		rng := rand.New(rand.NewPCG(c.DataSeed, uint64(qc.dim)))
		items := dataset.UniformVectors(rng, c.N, qc.dim)
		queries := dataset.UniformQueries(rng, c.Queries, qc.dim)

		structures := []func(quant.Mode) bench.Structure[[]float64]{
			func(m quant.Mode) bench.Structure[[]float64] {
				if m == quant.Off {
					return bench.MVPT[[]float64](3, 80, 5)
				}
				return bench.MVPTQuantized[[]float64](3, 80, 5, m)
			},
			func(m quant.Mode) bench.Structure[[]float64] {
				if m == quant.Off {
					return bench.VPT[[]float64](3)
				}
				return bench.VPTQuantized[[]float64](3, m)
			},
		}
		for _, mk := range structures {
			// Reference results from the mode-off run, for the in-bench
			// identity check.
			var refRangeLen []int
			var refKNN [][]float64
			for _, mode := range []quant.Mode{quant.Off, quant.SQ8, quant.F32} {
				st := mk(mode)
				counter := metric.NewCounter[[]float64](qc.fn)
				idx, bs, err := st.Build(items, counter, build.Options{Seed: seed, Workers: c.BuildWorkers})
				if err != nil {
					return nil, fmt.Errorf("%s: %w", st.Name, err)
				}
				ob := obs.NewObserver(1)
				if h, ok := idx.(interface{ SetObserver(*obs.Observer) }); ok {
					h.SetObserver(ob)
				}
				row := QuantBenchRow{
					Structure: st.Name, Metric: qc.metricName, Dim: qc.dim,
					Radius: qc.radius, Mode: mode.String(), BuildCost: bs.Distances,
				}

				// Warm-up plus the identity check against the off run.
				for qi, q := range queries {
					res := idx.Range(q, qc.radius)
					nn := idx.KNN(q, QuantBenchK)
					dists := make([]float64, len(nn))
					for i, nb := range nn {
						dists[i] = nb.Dist
					}
					if mode == quant.Off {
						refRangeLen = append(refRangeLen, len(res))
						refKNN = append(refKNN, dists)
						continue
					}
					if len(res) != refRangeLen[qi] {
						return nil, fmt.Errorf("%s %s dim=%d q%d: range results %d, mode off returned %d",
							st.Name, qc.metricName, qc.dim, qi, len(res), refRangeLen[qi])
					}
					for i, d := range dists {
						if d != refKNN[qi][i] {
							return nil, fmt.Errorf("%s %s dim=%d q%d: knn distance %d differs from mode off",
								st.Name, qc.metricName, qc.dim, qi, i)
						}
					}
				}

				ops := int64(QuantBenchRounds * len(queries))
				s0 := ob.Snapshot().Search
				ns, _, dist := measureQuantLoop(counter, func() {
					for _, q := range queries {
						idx.Range(q, qc.radius)
					}
				})
				s1 := ob.Snapshot().Search
				row.RangeNsPerOp = float64(ns) / float64(ops)
				row.RangeDistPerQuery = float64(dist) / float64(ops)
				row.RangeSurvivorRate = survivorRate(s1, s0)

				ns, _, dist = measureQuantLoop(counter, func() {
					for _, q := range queries {
						idx.KNN(q, QuantBenchK)
					}
				})
				s2 := ob.Snapshot().Search
				row.KNNNsPerOp = float64(ns) / float64(ops)
				row.KNNDistPerQuery = float64(dist) / float64(ops)
				row.KNNSurvivorRate = survivorRate(s2, s1)

				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// measureQuantLoop is measureLoop under a name the querybench helper
// does not own; it shares the implementation.
func measureQuantLoop(counter *metric.Counter[[]float64], pass func()) (ns int64, allocs uint64, dist int64) {
	runs := QuantBenchRounds
	return measureN(counter, runs, pass)
}

// survivorRate computes the fraction of charged leaf candidates that
// reached the exact kernel between two snapshots: pruned candidates
// are counted inside Computed (the charge-1 discipline), so the rate
// is 1 − pruned/computed. NaN-guards to 1 when nothing was computed.
func survivorRate(after, before obs.SearchTotals) float64 {
	computed := after.Computed - before.Computed
	pruned := after.FilteredByQuantized - before.FilteredByQuantized
	if computed <= 0 {
		return 1
	}
	r := 1 - float64(pruned)/float64(computed)
	if math.IsNaN(r) {
		return 1
	}
	return r
}

// WriteQuantBench prints the study as a table grouped by workload.
func WriteQuantBench(w io.Writer, rep *QuantBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# quantized pre-filter: uniform vectors n=%d, %d queries x %d rounds, k=%d, 1 worker\n",
		rep.N, rep.Queries, rep.Rounds, rep.K)
	fmt.Fprintf(&sb, "%-14s %-6s %4s %6s %14s %12s %9s %14s %12s %9s\n",
		"structure", "metric", "dim", "mode", "range-ns/op", "range-dist", "range-sv", "knn-ns/op", "knn-dist", "knn-sv")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%-14s %-6s %4d %6s %14.0f %12.1f %9.3f %14.0f %12.1f %9.3f\n",
			r.Structure, r.Metric, r.Dim, r.Mode,
			r.RangeNsPerOp, r.RangeDistPerQuery, r.RangeSurvivorRate,
			r.KNNNsPerOp, r.KNNDistPerQuery, r.KNNSurvivorRate)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
