package experiments

import (
	"fmt"
	"io"
	"strings"

	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// FilterRow aggregates the mvp-tree's per-query filtering breakdown at
// one query radius: of all leaf candidates touched, what fraction each
// stage resolved. It is Observation 2 measured directly — the paper
// argues the pre-computed distances "provide further filtering at the
// leaf level"; this experiment shows how much of the work each filter
// absorbs.
type FilterRow struct {
	Radius float64
	// Candidates is the average number of leaf points considered per
	// query.
	Candidates float64
	// DFrac, PathFrac and ComputedFrac partition the candidates: share
	// excluded by the leaf's exact D1/D2 distances, share additionally
	// excluded by a retained PATH distance, share that required a real
	// distance computation.
	DFrac, PathFrac, ComputedFrac float64
	// VantageShare is the fraction of all distance computations spent
	// on vantage points rather than leaf candidates (Observation 1: the
	// mvp-tree keeps this low by sharing vantage points).
	VantageShare float64
}

// FilterStudy runs mvpt(3,80,p=5) over the uniform vector workload and
// reports the filtering breakdown per Figure 8 radius, averaged over
// seeds and queries.
func FilterStudy(c Config) ([]FilterRow, error) {
	items := c.UniformVectors()
	queries := c.VectorQueries()
	rows := make([]FilterRow, len(Fig8Radii))
	for i, r := range Fig8Radii {
		rows[i].Radius = r
	}
	for _, seed := range c.TreeSeeds {
		counter := metric.NewCounter[[]float64](metric.L2)
		tree, err := mvp.New(items, counter, mvp.Options{
			Partitions: 3, LeafCapacity: 80, PathLength: 5,
			Build: mvp.Build{Seed: seed, Workers: c.BuildWorkers},
		})
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			for i, r := range Fig8Radii {
				_, s := tree.RangeWithStats(q, r)
				rows[i].Candidates += float64(s.Candidates)
				rows[i].DFrac += float64(s.FilteredByD)
				rows[i].PathFrac += float64(s.FilteredByPath)
				rows[i].ComputedFrac += float64(s.Computed)
				if total := s.Computed + s.VantagePoints; total > 0 {
					rows[i].VantageShare += float64(s.VantagePoints) / float64(total)
				}
			}
		}
	}
	norm := float64(len(c.TreeSeeds) * len(queries))
	for i := range rows {
		if rows[i].Candidates > 0 {
			rows[i].DFrac /= rows[i].Candidates
			rows[i].PathFrac /= rows[i].Candidates
			rows[i].ComputedFrac /= rows[i].Candidates
		}
		rows[i].Candidates /= norm
		rows[i].VantageShare /= norm
	}
	return rows, nil
}

// WriteFilterRows prints the breakdown table.
func WriteFilterRows(w io.Writer, rows []FilterRow) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %10s %10s %10s %12s\n",
		"r", "candidates", "D1/D2", "PATH", "computed", "vantage-share")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-8.3g %12.1f %9.1f%% %9.1f%% %9.1f%% %11.1f%%\n",
			row.Radius, row.Candidates, 100*row.DFrac, 100*row.PathFrac,
			100*row.ComputedFrac, 100*row.VantageShare)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
