package experiments

import (
	"fmt"
	"io"
	"strings"

	"mvptree/internal/bench"
)

// Claim is one headline comparison in the form the paper states its
// results: "structure A makes X% fewer distance computations than
// structure B at query range r".
type Claim struct {
	Workload  string
	A, B      string
	Radius    float64
	SavingsPc float64
}

// Claims evaluates the paper's §1/§5.2 headline statements on both
// vector workloads: mvpt(3,9) and mvpt(3,80) versus the better vp-tree,
// at the smallest and largest swept radii. The paper reports 20–80%
// savings at small ranges shrinking to 10–30% at the largest.
func Claims(c Config) ([]Claim, error) {
	var claims []Claim
	for _, wk := range []struct {
		name  string
		run   func(Config) (*bench.Table, error)
		radii []float64
	}{
		{"uniform", Fig8, Fig8Radii},
		{"clustered", Fig9, Fig9Radii},
	} {
		tbl, err := wk.run(c)
		if err != nil {
			return nil, err
		}
		bestVP := betterOf(tbl, "vpt(2)", "vpt(3)")
		for _, mvpName := range []string{"mvpt(3,9)", "mvpt(3,80)"} {
			sav, err := tbl.SavingsPercent(mvpName, bestVP)
			if err != nil {
				return nil, err
			}
			claims = append(claims,
				Claim{wk.name, mvpName, bestVP, wk.radii[0], sav[0]},
				Claim{wk.name, mvpName, bestVP, wk.radii[len(wk.radii)-1], sav[len(sav)-1]},
			)
		}
	}
	return claims, nil
}

// betterOf returns whichever of the two structures made fewer distance
// computations summed over the sweep.
func betterOf(t *bench.Table, a, b string) string {
	var ta, tb float64
	for _, v := range t.Values {
		ca, errA := t.Cell(v, a)
		cb, errB := t.Cell(v, b)
		if errA != nil || errB != nil {
			return a
		}
		ta += ca.AvgDistComps
		tb += cb.AvgDistComps
	}
	if tb < ta {
		return b
	}
	return a
}

// WriteClaims prints claims in the paper's phrasing.
func WriteClaims(w io.Writer, claims []Claim) error {
	var sb strings.Builder
	for _, cl := range claims {
		fmt.Fprintf(&sb, "%-10s r=%-5.3g %-11s makes %6.1f%% fewer distance computations than %s\n",
			cl.Workload, cl.Radius, cl.A, cl.SavingsPc, cl.B)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
