package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"

	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// ApproxBenchRow is one point of a recall-versus-distance-count curve:
// one structure at one dimensionality, queried with one approximation
// knob setting through the unified Search entry point.
type ApproxBenchRow struct {
	Structure string `json:"structure"`
	Dim       int    `json:"dim"`
	// Workload is "uniform" or "clustered". Uniform high-dimensional
	// vectors concentrate distances, so ε-pruning buys little there;
	// clustered data is where approximation pays.
	Workload string `json:"workload"`
	// Mode is "budget" (Param is the per-query cap as a fraction of n)
	// or "epsilon" (Param is ε).
	Mode  string  `json:"mode"`
	Param float64 `json:"param"`
	// Recall is the fraction of true k-nearest neighbors returned,
	// averaged over queries (ground truth: linear scan).
	Recall float64 `json:"recall"`
	// DistPerQuery is the average distance computations per
	// approximate query; ExactDistPerQuery the exact traversal's cost
	// on the same tree and queries.
	DistPerQuery      float64 `json:"dist_per_query"`
	ExactDistPerQuery float64 `json:"exact_dist_per_query"`
	// CostFraction is DistPerQuery / ExactDistPerQuery.
	CostFraction float64 `json:"cost_fraction"`
	// ExhaustedFraction is the fraction of queries whose budget ran
	// out (always 0 in epsilon mode).
	ExhaustedFraction float64 `json:"exhausted_fraction"`
}

// ApproxBenchReport is the artifact cmd/mvpbench -approxjson writes
// (committed as BENCH_approx.json and gated by cmd/benchguard -mode
// approx). Every number is a deterministic function of the
// configuration — recall and distance counts, not wall-clock — so the
// gate is machine-independent.
type ApproxBenchReport struct {
	N       int   `json:"n"`
	Queries int   `json:"queries"`
	K       int   `json:"k"`
	Dims    []int `json:"dims"`

	BudgetFractions []float64 `json:"budget_fractions"`
	Epsilons        []float64 `json:"epsilons"`

	Rows []ApproxBenchRow `json:"rows"`
}

// ApproxBenchDims are the dimensionalities swept: the paper's dim=20
// plus the high-dimensional regimes where exact search degenerates
// toward the linear scan and approximation is the only lever left.
var ApproxBenchDims = []int{20, 50, 100}

// ApproxBenchBudgetFractions are the per-query distance caps, as
// fractions of the dataset size.
var ApproxBenchBudgetFractions = []float64{0.02, 0.05, 0.1, 0.25}

// ApproxBenchEpsilons are the (1+ε) slack settings swept.
var ApproxBenchEpsilons = []float64{0.2, 0.5, 1.0, 2.0}

// ApproxBenchK is the neighbor count.
const ApproxBenchK = 10

// approxBenchIndex is what the study needs from a structure: the
// unified Search entry point plus the exact kNN baseline.
type approxBenchIndex interface {
	index.Searcher[[]float64]
}

// ApproxBenchStudy measures the recall-versus-cost trade of the
// approximate and budgeted query modes on the structures that answer
// kNN through pruned traversals (mvp-tree and vp-tree), at each
// dimensionality in ApproxBenchDims, on uniform and clustered
// workloads. Per (structure, dim, workload) it measures the exact
// per-query cost, then sweeps the budget fractions and epsilons
// through Search, recording recall@k against a linear-scan ground
// truth and the measured distance counts.
func ApproxBenchStudy(c Config) (*ApproxBenchReport, error) {
	rep := &ApproxBenchReport{
		N: c.N, Queries: c.Queries, K: ApproxBenchK, Dims: ApproxBenchDims,
		BudgetFractions: ApproxBenchBudgetFractions,
		Epsilons:        ApproxBenchEpsilons,
	}
	for _, dim := range ApproxBenchDims {
		workloads := []struct {
			name  string
			items [][]float64
		}{
			{"uniform", dataset.UniformVectors(
				rand.New(rand.NewPCG(c.DataSeed, uint64(1000+dim))), c.N, dim)},
			{"clustered", dataset.ClusteredVectors(
				rand.New(rand.NewPCG(c.DataSeed, uint64(3000+dim))), c.N, dim, c.ClusterSize, c.Epsilon)},
		}
		qrng := rand.New(rand.NewPCG(c.DataSeed, uint64(2000+dim)))
		queries := dataset.UniformQueries(qrng, c.Queries, dim)
		for _, wl := range workloads {
			if err := approxBenchWorkload(c, rep, dim, wl.name, wl.items, queries); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// approxBenchWorkload appends every curve point for one (dim, dataset)
// cell to the report.
func approxBenchWorkload(c Config, rep *ApproxBenchReport, dim int, workload string,
	items, queries [][]float64) error {
	seed := c.TreeSeeds[0]
	// Ground truth per query, by item identity.
	truth := linear.New(items, metric.NewCounter[[]float64](metric.L2))
	want := make([]map[int]bool, len(queries))
	for i, q := range queries {
		want[i] = map[int]bool{}
		for _, nb := range truth.KNN(q, ApproxBenchK) {
			want[i][vectorKey(nb.Item)] = true
		}
	}

	builders := []struct {
		name  string
		build func(dist *metric.Counter[[]float64]) (approxBenchIndex, error)
	}{
		{"mvpt", func(dist *metric.Counter[[]float64]) (approxBenchIndex, error) {
			return mvp.New(items, dist, mvp.Options{
				Partitions: 3, LeafCapacity: 80, PathLength: 5,
				Build: mvp.Build{Seed: seed, Workers: c.BuildWorkers},
			})
		}},
		{"vpt", func(dist *metric.Counter[[]float64]) (approxBenchIndex, error) {
			return vptree.New(items, dist, vptree.Options{
				Order: 2, Build: vptree.Build{Seed: seed, Workers: c.BuildWorkers},
			})
		}},
	}
	for _, b := range builders {
		counter := metric.NewCounter[[]float64](metric.L2)
		tree, err := b.build(counter)
		if err != nil {
			return fmt.Errorf("approxbench %s/dim=%d/%s: build: %w", b.name, dim, workload, err)
		}
		// Warm-up, then the exact baseline cost.
		for _, q := range queries {
			tree.KNNWithStats(q, ApproxBenchK)
		}
		before := counter.Count()
		for _, q := range queries {
			tree.KNNWithStats(q, ApproxBenchK)
		}
		exactPer := float64(counter.Count()-before) / float64(len(queries))

		add := func(row ApproxBenchRow, mode string, param float64) {
			row.Structure, row.Dim, row.Workload = b.name, dim, workload
			row.Mode, row.Param = mode, param
			row.ExactDistPerQuery = exactPer
			row.CostFraction = row.DistPerQuery / exactPer
			rep.Rows = append(rep.Rows, row)
		}
		for _, f := range ApproxBenchBudgetFractions {
			opts := index.SearchOptions{Budget: int64(f * float64(c.N))}
			add(measureApproxRow(tree, counter, queries, want, opts), "budget", f)
		}
		for _, eps := range ApproxBenchEpsilons {
			opts := index.SearchOptions{Epsilon: eps}
			add(measureApproxRow(tree, counter, queries, want, opts), "epsilon", eps)
		}
	}
	return nil
}

// measureApproxRow runs every query through Search with opts and
// averages recall, cost and exhaustion.
func measureApproxRow(tree approxBenchIndex, counter *metric.Counter[[]float64],
	queries [][]float64, want []map[int]bool, opts index.SearchOptions) ApproxBenchRow {
	var row ApproxBenchRow
	hits, exhausted := 0, 0
	before := counter.Count()
	for i, q := range queries {
		res := tree.Search(index.Query[[]float64]{Point: q, K: ApproxBenchK, Opts: opts})
		for _, nb := range res.Neighbors {
			if want[i][vectorKey(nb.Item)] {
				hits++
			}
		}
		if res.Exhausted() {
			exhausted++
		}
	}
	nq := float64(len(queries))
	row.DistPerQuery = float64(counter.Count()-before) / nq
	row.Recall = float64(hits) / (nq * ApproxBenchK)
	row.ExhaustedFraction = float64(exhausted) / nq
	return row
}

// WriteApproxBench prints the study as one row per curve point.
func WriteApproxBench(w io.Writer, rep *ApproxBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# approximate & budgeted kNN: n=%d k=%d, %d queries, dims %v\n",
		rep.N, rep.K, rep.Queries, rep.Dims)
	fmt.Fprintf(&sb, "%-6s %5s %-10s %-8s %8s %8s %12s %12s %8s %10s\n",
		"struct", "dim", "workload", "mode", "param", "recall", "dist/q", "exact-d/q", "cost", "exhausted")
	for _, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-6s %5d %-10s %-8s %8.2f %7.1f%% %12.1f %12.1f %7.2f %9.1f%%\n",
			row.Structure, row.Dim, row.Workload, row.Mode, row.Param, 100*row.Recall,
			row.DistPerQuery, row.ExactDistPerQuery, row.CostFraction, 100*row.ExhaustedFraction)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
