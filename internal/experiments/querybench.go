package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"mvptree/internal/bench"
	"mvptree/internal/build"
	"mvptree/internal/metric"
)

// QueryBenchRounds is the number of measured passes over the query
// batch per structure (after one warm-up pass that fills the scratch
// pools and caches).
const QueryBenchRounds = 5

// QueryBenchRow is one structure's hot-path serving cost over the
// uniform vector workload: wall time, distance computations and heap
// allocations per query, for one range batch and one kNN batch. The
// allocation figures are the PR-level regression signal — steady-state
// range queries should allocate only when they return results, and kNN
// queries only the result slice.
type QueryBenchRow struct {
	Structure string `json:"structure"`
	BuildCost int64  `json:"build_cost"`

	RangeNsPerOp      float64 `json:"range_ns_per_op"`
	RangeDistPerQuery float64 `json:"range_dist_per_query"`
	RangeAllocsPerOp  float64 `json:"range_allocs_per_op"`
	RangeAvgResults   float64 `json:"range_avg_results"`

	KNNNsPerOp      float64 `json:"knn_ns_per_op"`
	KNNDistPerQuery float64 `json:"knn_dist_per_query"`
	KNNAllocsPerOp  float64 `json:"knn_allocs_per_op"`
}

// QueryBenchReport is the artifact cmd/mvpbench -queryjson writes: the
// per-structure serving cost of the uniform vector workload plus the
// run configuration needed to interpret it.
type QueryBenchReport struct {
	N       int             `json:"n"`
	Dim     int             `json:"dim"`
	Queries int             `json:"queries"`
	Rounds  int             `json:"rounds"`
	Radius  float64         `json:"radius"`
	K       int             `json:"k"`
	Rows    []QueryBenchRow `json:"structures"`
}

// QueryBenchStudy measures the serving hot path per structure: it
// builds each index once (first construction seed), then answers the
// query batch QueryBenchRounds times single-threaded, reporting wall
// time, distance-counter delta and heap-allocation delta per query.
// Queries run sequentially on one goroutine so the allocation counter
// attributes every allocation to the measured loop.
func QueryBenchStudy(c Config) (*QueryBenchReport, error) {
	items := c.UniformVectors()
	queries := c.VectorQueries()
	structures := []bench.Structure[[]float64]{
		bench.Linear[[]float64](),
		bench.VPT[[]float64](2),
		bench.VPT[[]float64](3),
		bench.MVPT[[]float64](3, 80, 5),
		bench.GHT[[]float64](8),
		bench.GNAT[[]float64](8),
		bench.BallTree[[]float64](8),
		bench.LAESA[[]float64](32),
	}
	rep := &QueryBenchReport{
		N: c.N, Dim: c.Dim, Queries: len(queries), Rounds: QueryBenchRounds,
		Radius: TelemetryRadius, K: TelemetryK,
	}
	seed := c.TreeSeeds[0]
	for _, st := range structures {
		counter := metric.NewCounter[[]float64](metric.L2)
		idx, bs, err := st.Build(items, counter, build.Options{Seed: seed, Workers: c.BuildWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.Name, err)
		}
		row := QueryBenchRow{Structure: st.Name, BuildCost: bs.Distances}

		results := 0
		for _, q := range queries { // warm-up: fills scratch pools
			results += len(idx.Range(q, TelemetryRadius))
			idx.KNN(q, TelemetryK)
		}
		row.RangeAvgResults = float64(results) / float64(len(queries))

		ops := int64(QueryBenchRounds * len(queries))
		rangeNs, rangeAllocs, rangeDist := measureLoop(counter, func() {
			for _, q := range queries {
				idx.Range(q, TelemetryRadius)
			}
		})
		row.RangeNsPerOp = float64(rangeNs) / float64(ops)
		row.RangeAllocsPerOp = float64(rangeAllocs) / float64(ops)
		row.RangeDistPerQuery = float64(rangeDist) / float64(ops)

		knnNs, knnAllocs, knnDist := measureLoop(counter, func() {
			for _, q := range queries {
				idx.KNN(q, TelemetryK)
			}
		})
		row.KNNNsPerOp = float64(knnNs) / float64(ops)
		row.KNNAllocsPerOp = float64(knnAllocs) / float64(ops)
		row.KNNDistPerQuery = float64(knnDist) / float64(ops)

		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// measureLoop runs pass QueryBenchRounds times and returns the elapsed
// wall time, the heap-allocation count delta and the distance-counter
// delta across all passes.
func measureLoop(counter *metric.Counter[[]float64], pass func()) (ns int64, allocs uint64, dist int64) {
	return measureN(counter, QueryBenchRounds, pass)
}

// measureN is measureLoop with an explicit round count, shared with
// the quantbench study.
func measureN(counter *metric.Counter[[]float64], rounds int, pass func()) (ns int64, allocs uint64, dist int64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	dist0 := counter.Count()
	start := time.Now()
	for r := 0; r < rounds; r++ {
		pass()
	}
	ns = time.Since(start).Nanoseconds()
	dist = counter.Count() - dist0
	runtime.ReadMemStats(&after)
	allocs = after.Mallocs - before.Mallocs
	return ns, allocs, dist
}

// WriteQueryBench prints the per-structure serving costs as a table.
func WriteQueryBench(w io.Writer, rep *QueryBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# uniform vectors n=%d dim=%d, %d queries x %d rounds, r=%g k=%d, 1 worker\n",
		rep.N, rep.Dim, rep.Queries, rep.Rounds, rep.Radius, rep.K)
	fmt.Fprintf(&sb, "%-12s %14s %12s %12s %14s %12s %12s\n",
		"structure", "range-ns/op", "range-dist", "range-allocs", "knn-ns/op", "knn-dist", "knn-allocs")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%-12s %14.0f %12.1f %12.2f %14.0f %12.1f %12.2f\n",
			r.Structure,
			r.RangeNsPerOp, r.RangeDistPerQuery, r.RangeAllocsPerOp,
			r.KNNNsPerOp, r.KNNDistPerQuery, r.KNNAllocsPerOp)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
