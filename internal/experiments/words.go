package experiments

import (
	"math/rand/v2"

	"mvptree/internal/dataset"
)

// wordCount scales the word corpus with the vector workload size so
// QuickConfig stays quick.
func (c *Config) wordCount() int {
	n := c.N / 5
	if n < 200 {
		n = 200
	}
	return n
}

// Words generates the edit-distance corpus for WordStudy: base words
// plus near-misspellings, the classic [BK73] best-match file.
func (c *Config) Words() []string {
	rng := rand.New(rand.NewPCG(c.DataSeed, 8))
	return dataset.Words(rng, c.wordCount(), dataset.WordOptions{MisspellingsPer: 2})
}

// WordQueries samples query words from the corpus and perturbs fresh
// ones, so queries include both exact members and strangers.
func (c *Config) WordQueries(words []string) []string {
	rng := rand.New(rand.NewPCG(c.DataSeed, 9))
	q := c.Queries
	if q > len(words) {
		q = len(words)
	}
	out := dataset.SampleQueries(rng, words, q/2)
	out = append(out, dataset.Words(rng, q-len(out), dataset.WordOptions{})...)
	return out
}
