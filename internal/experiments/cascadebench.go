package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"mvptree/internal/balltree"
	"mvptree/internal/bktree"
	"mvptree/internal/cascade"
	"mvptree/internal/ghtree"
	"mvptree/internal/gmvp"
	"mvptree/internal/gnat"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/vptree"
)

// CascadeBenchRow is one (structure, workload) cell: per-query distance
// counts with the cross-query bound cascade off and on, over the same
// tree and the same queries. Distance counts are machine-independent,
// which is what makes this artifact a CI gate rather than a wall-clock
// benchmark.
type CascadeBenchRow struct {
	Structure string `json:"structure"`
	Workload  string `json:"workload"`
	// PrecomputeDistances is the one-time cost EnableCascade paid for
	// the pivot rows (Pivots × stored items).
	PrecomputeDistances int64 `json:"precompute_distances"`

	RangeDistOff float64 `json:"range_dist_off"`
	RangeDistOn  float64 `json:"range_dist_on"`
	// RangeReductionPct is 100 × (off − on) / off.
	RangeReductionPct float64 `json:"range_reduction_pct"`
	// RangePrunedPerQuery is the FilteredByCascade count per range
	// query — candidates skipped by the registered pivot bounds.
	RangePrunedPerQuery float64 `json:"range_pruned_per_query"`

	// Counts for the bkt row may vary slightly run to run: its children
	// live in a Go map, so visit order — and therefore how fast the kNN
	// τ tightens and which pivots a query registers in the cascade — is
	// not fixed. Every other row is deterministic.
	KNNDistOff        float64 `json:"knn_dist_off"`
	KNNDistOn         float64 `json:"knn_dist_on"`
	KNNReductionPct   float64 `json:"knn_reduction_pct"`
	KNNPrunedPerQuery float64 `json:"knn_pruned_per_query"`
}

// CascadeBenchReport is the artifact cmd/mvpbench -cascadejson writes
// (committed as BENCH_cascade.json and gated by cmd/benchguard).
type CascadeBenchReport struct {
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Queries    int     `json:"queries"`
	Words      int     `json:"words"`
	Radius     float64 `json:"radius"`
	K          int     `json:"k"`
	EditRadius float64 `json:"edit_radius"`
	Pivots     int     `json:"pivots"`
	MaxPer     int     `json:"max_per_query"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	Rows []CascadeBenchRow `json:"rows"`
}

// casIndex is the slice of a structure the study needs: the stats query
// surface plus the cascade switch.
type casIndex[T any] interface {
	index.StatsIndex[T]
	EnableCascade(cascade.Options) error
}

// CascadeBenchStudy measures the cross-query bound cascade on every
// structure that supports it: the vector structures on the uniform and
// clustered workloads, and the discrete-metric structures (mvpt, vpt,
// bkt) on the edit-distance word corpus. Each cell builds one tree,
// measures per-query distance counts cascade-off, enables the cascade
// (recording the precompute cost), and re-measures — verifying along
// the way that the cascade changed no result set. The off/on counts are
// exact counter deltas, deterministic for every row except the bkt kNN
// column (map-ordered children), so regressions gate cleanly in CI.
func CascadeBenchStudy(c Config) (*CascadeBenchReport, error) {
	vectors := c.UniformVectors()
	clustered := c.ClusteredVectors()
	vqueries := c.VectorQueries()
	words := c.Words()
	wqueries := c.WordQueries(words)
	editRadius := WordRadii[len(WordRadii)/2]
	casOpts := cascade.Options{Workers: c.BuildWorkers}
	seed := c.TreeSeeds[0]
	bw := c.BuildWorkers

	rep := &CascadeBenchReport{
		N: c.N, Dim: c.Dim, Queries: len(vqueries), Words: len(words),
		Radius: TelemetryRadius, K: TelemetryK, EditRadius: editRadius,
		Pivots: cascade.DefaultPivots, MaxPer: cascade.DefaultMaxPerQuery,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	vecCells, err := vectorCells(vectors, clustered, vqueries, seed, bw, casOpts)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, vecCells...)

	wordCells, err := wordCellsStudy(words, wqueries, editRadius, seed, bw, casOpts)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, wordCells...)
	return rep, nil
}

// vectorCells runs every vector structure over both vector workloads.
func vectorCells(uniform, clustered [][]float64, queries [][]float64,
	seed uint64, bw int, casOpts cascade.Options) ([]CascadeBenchRow, error) {
	builders := []struct {
		name  string
		build func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error)
	}{
		{"mvpt", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return mvp.New(items, dist, mvp.Options{
				Partitions: 3, LeafCapacity: 80, PathLength: 5,
				Build: mvp.Build{Seed: seed, Workers: bw},
			})
		}},
		{"vpt", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return vptree.New(items, dist, vptree.Options{
				Order: 2, Build: vptree.Build{Seed: seed, Workers: bw},
			})
		}},
		{"gmvpt", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return gmvp.New(items, dist, gmvp.Options{
				Build: gmvp.Build{Seed: seed, Workers: bw},
			})
		}},
		{"gnat", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return gnat.New(items, dist, gnat.Options{
				Build: gnat.Build{Seed: seed, Workers: bw},
			})
		}},
		{"ght", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return ghtree.New(items, dist, ghtree.Options{
				Build: ghtree.Build{Seed: seed, Workers: bw},
			})
		}},
		{"ball", func(items [][]float64, dist *metric.Counter[[]float64]) (casIndex[[]float64], error) {
			return balltree.New(items, dist, balltree.Options{
				Build: balltree.Build{Seed: seed, Workers: bw},
			})
		}},
	}
	workloads := []struct {
		name  string
		items [][]float64
	}{
		{"uniform", uniform},
		{"clustered", clustered},
	}
	var rows []CascadeBenchRow
	for _, wl := range workloads {
		for _, b := range builders {
			counter := metric.NewCounter[[]float64](metric.L2)
			tree, err := b.build(wl.items, counter)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: build: %w", b.name, wl.name, err)
			}
			row, err := measureCell(b.name, wl.name, tree, counter, queries,
				TelemetryRadius, TelemetryK, casOpts, vectorResultKey, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// wordCellsStudy runs the discrete-metric structures over the
// edit-distance word corpus (the [BK73] best-match workload).
func wordCellsStudy(words, queries []string, r float64,
	seed uint64, bw int, casOpts cascade.Options) ([]CascadeBenchRow, error) {
	builders := []struct {
		name          string
		deterministic bool
		build         func(items []string, dist *metric.Counter[string]) (casIndex[string], error)
	}{
		{"mvpt", true, func(items []string, dist *metric.Counter[string]) (casIndex[string], error) {
			return mvp.New(items, dist, mvp.Options{
				Partitions: 3, LeafCapacity: 80, PathLength: 5,
				Build: mvp.Build{Seed: seed, Workers: bw},
			})
		}},
		{"vpt", true, func(items []string, dist *metric.Counter[string]) (casIndex[string], error) {
			return vptree.New(items, dist, vptree.Options{
				Order: 2, Build: vptree.Build{Seed: seed, Workers: bw},
			})
		}},
		{"bkt", false, func(items []string, dist *metric.Counter[string]) (casIndex[string], error) {
			return bktree.New(items, dist, bktree.Options{
				Build: bktree.Build{Seed: seed, Workers: bw},
			})
		}},
	}
	var rows []CascadeBenchRow
	for _, b := range builders {
		counter := metric.NewCounter[string](metric.Edit)
		tree, err := b.build(words, counter)
		if err != nil {
			return nil, fmt.Errorf("%s/words: build: %w", b.name, err)
		}
		row, err := measureCell(b.name, "words", tree, counter, queries,
			r, TelemetryK, casOpts, func(s string) string { return s }, b.deterministic)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// vectorResultKey is the canonical string of a vector, for
// order-insensitive result comparison.
func vectorResultKey(v []float64) string { return fmt.Sprint(v) }

// measureCell measures one tree: warm-up, cascade-off counts, enable,
// cascade-on counts, verifying the cascade changed no range result set
// and no kNN distance profile. Range results are compared as multisets
// of keyFn values (result order is unspecified); kNN answers are
// compared by their sorted distance sequence, which is invariant even
// for structures with tie-broken or map-ordered traversal. When
// deterministic is true the off/on counts are also checked for the
// guaranteed "on ≤ off" invariant.
func measureCell[T any](structure, workload string, tree casIndex[T],
	counter *metric.Counter[T], queries []T, r float64, k int,
	casOpts cascade.Options, keyFn func(T) string, deterministic bool) (*CascadeBenchRow, error) {
	nq := float64(len(queries))
	row := &CascadeBenchRow{Structure: structure, Workload: workload}

	// Warm-up pass: fills the per-structure scratch pools so the
	// measured passes run steady state.
	for _, q := range queries {
		tree.Range(q, r)
	}

	rangeOff := make([][]string, len(queries))
	before := counter.Count()
	for i, q := range queries {
		res, _ := tree.RangeWithStats(q, r)
		rangeOff[i] = resultKeys(res, keyFn)
	}
	row.RangeDistOff = float64(counter.Count()-before) / nq

	knnOff := make([][]float64, len(queries))
	before = counter.Count()
	for i, q := range queries {
		res, _ := tree.KNNWithStats(q, k)
		knnOff[i] = neighborDists(res)
	}
	row.KNNDistOff = float64(counter.Count()-before) / nq

	before = counter.Count()
	if err := tree.EnableCascade(casOpts); err != nil {
		return nil, fmt.Errorf("%s/%s: enable cascade: %w", structure, workload, err)
	}
	row.PrecomputeDistances = counter.Count() - before

	var pruned int64
	before = counter.Count()
	for i, q := range queries {
		res, s := tree.RangeWithStats(q, r)
		pruned += int64(s.FilteredByCascade)
		if got := resultKeys(res, keyFn); !equalKeys(got, rangeOff[i]) {
			return nil, fmt.Errorf("%s/%s: range query %d: cascade changed the result set (%d vs %d items)",
				structure, workload, i, len(got), len(rangeOff[i]))
		}
	}
	row.RangeDistOn = float64(counter.Count()-before) / nq
	row.RangePrunedPerQuery = float64(pruned) / nq

	pruned = 0
	before = counter.Count()
	for i, q := range queries {
		res, s := tree.KNNWithStats(q, k)
		pruned += int64(s.FilteredByCascade)
		if got := neighborDists(res); !equalDists(got, knnOff[i]) {
			return nil, fmt.Errorf("%s/%s: knn query %d: cascade changed the neighbor distances",
				structure, workload, i)
		}
	}
	row.KNNDistOn = float64(counter.Count()-before) / nq
	row.KNNPrunedPerQuery = float64(pruned) / nq

	if deterministic {
		if row.RangeDistOn > row.RangeDistOff {
			return nil, fmt.Errorf("%s/%s: cascade increased range distances (%.1f > %.1f)",
				structure, workload, row.RangeDistOn, row.RangeDistOff)
		}
		if row.KNNDistOn > row.KNNDistOff {
			return nil, fmt.Errorf("%s/%s: cascade increased knn distances (%.1f > %.1f)",
				structure, workload, row.KNNDistOn, row.KNNDistOff)
		}
	}
	row.RangeReductionPct = reductionPct(row.RangeDistOff, row.RangeDistOn)
	row.KNNReductionPct = reductionPct(row.KNNDistOff, row.KNNDistOn)
	return row, nil
}

// resultKeys maps a result set to its sorted key multiset.
func resultKeys[T any](res []T, keyFn func(T) string) []string {
	keys := make([]string, len(res))
	for i, x := range res {
		keys[i] = keyFn(x)
	}
	sort.Strings(keys)
	return keys
}

// neighborDists extracts the sorted distance sequence of a kNN answer.
func neighborDists[T any](res []index.Neighbor[T]) []float64 {
	ds := make([]float64, len(res))
	for i, nb := range res {
		ds[i] = nb.Dist
	}
	sort.Float64s(ds)
	return ds
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalDists(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reductionPct is 100 × (off − on) / off, 0 when off is 0.
func reductionPct(off, on float64) float64 {
	if off == 0 {
		return 0
	}
	return 100 * (off - on) / off
}

// WriteCascadeBench prints the cascade study as one row per
// (structure, workload) cell.
func WriteCascadeBench(w io.Writer, rep *CascadeBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# cascade off vs on: uniform/clustered n=%d dim=%d r=%g k=%d, words n=%d r=%g, %d queries, pivots=%d maxper=%d\n",
		rep.N, rep.Dim, rep.Radius, rep.K, rep.Words, rep.EditRadius, rep.Queries, rep.Pivots, rep.MaxPer)
	fmt.Fprintf(&sb, "%-7s %-10s %12s %12s %8s %12s %12s %8s %11s %11s\n",
		"struct", "workload", "range-off", "range-on", "range-%", "knn-off", "knn-on", "knn-%", "pruned/q", "precompute")
	for _, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-7s %-10s %12.1f %12.1f %8.1f %12.1f %12.1f %8.1f %11.1f %11d\n",
			row.Structure, row.Workload, row.RangeDistOff, row.RangeDistOn, row.RangeReductionPct,
			row.KNNDistOff, row.KNNDistOn, row.KNNReductionPct,
			row.RangePrunedPerQuery, row.PrecomputeDistances)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
