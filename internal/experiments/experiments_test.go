package experiments

// These tests run every experiment at a tiny scale and assert the
// qualitative shapes the paper reports — the same checks EXPERIMENTS.md
// documents at full scale.

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/bench"
	"mvptree/internal/dataset"
)

// tinyConfig is even smaller than QuickConfig, for unit-test latency.
func tinyConfig() Config {
	return Config{
		N: 1200, Dim: 20, Queries: 10,
		ClusterSize: 100, Epsilon: 0.15,
		ImageCount: 90, ImageDim: 24, ImageSubjects: 6, ImageQueries: 6,
		HistPairs: 30_000,
		DataSeed:  7, TreeSeeds: []uint64{1, 2},
	}
}

func TestFig4UnimodalConcentrated(t *testing.T) {
	h := Fig4(tinyConfig())
	if peaks := h.Peaks(5, 0.1); len(peaks) != 1 {
		t.Errorf("Figure 4 histogram peaks = %v, want exactly 1", peaks)
	}
	// The paper: distances concentrate around 1.75 within [1, 2.5].
	if m := h.Mean(); m < 1.6 || m > 1.9 {
		t.Errorf("Figure 4 mean distance = %g, paper reports ≈ 1.75", m)
	}
	if q := h.Quantile(0.99); q > 2.5 {
		t.Errorf("Figure 4 99th percentile = %g, paper reports distances ≤ 2.5", q)
	}
}

func TestFig5WiderThanFig4(t *testing.T) {
	c := tinyConfig()
	h4, h5 := Fig4(c), Fig5(c)
	// Figure 5's distribution has "a wider range" of pairwise
	// distances: compare interquantile spans.
	span4 := h4.Quantile(0.99) - h4.Quantile(0.01)
	span5 := h5.Quantile(0.99) - h5.Quantile(0.01)
	if span5 <= span4 {
		t.Errorf("clustered span %.3f ≤ uniform span %.3f; Figure 5 must be wider", span5, span4)
	}
}

func TestFig6And7Bimodal(t *testing.T) {
	c := tinyConfig()
	for name, h := range map[string]interface {
		Peaks(int, float64) []int
	}{"Fig6": Fig6(c), "Fig7": Fig7(c)} {
		if peaks := h.Peaks(5, 0.05); len(peaks) < 2 {
			t.Errorf("%s histogram peaks = %v, want ≥ 2 (two peaks per paper)", name, peaks)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The defining orderings of Figure 8: both mvp-trees beat both
	// vp-trees, and mvpt(3,80) is the best, at the smallest radius.
	r := Fig8Radii[0]
	get := func(name string) float64 {
		cell, err := tbl.Cell(r, name)
		if err != nil {
			t.Fatal(err)
		}
		return cell.AvgDistComps
	}
	vp2, vp3 := get("vpt(2)"), get("vpt(3)")
	m9, m80 := get("mvpt(3,9)"), get("mvpt(3,80)")
	bestVP := min(vp2, vp3)
	if m9 >= bestVP {
		t.Errorf("mvpt(3,9) = %.0f ≥ best vpt = %.0f at r=%g", m9, bestVP, r)
	}
	if m80 >= m9 {
		t.Errorf("mvpt(3,80) = %.0f ≥ mvpt(3,9) = %.0f at r=%g", m80, m9, r)
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := Fig9Radii[0]
	m80c, err := tbl.Cell(r, "mvpt(3,80)")
	if err != nil {
		t.Fatal(err)
	}
	vp3c, err := tbl.Cell(r, "vpt(3)")
	if err != nil {
		t.Fatal(err)
	}
	if m80c.AvgDistComps >= vp3c.AvgDistComps {
		t.Errorf("clustered: mvpt(3,80) = %.0f ≥ vpt(3) = %.0f at r=%g",
			m80c.AvgDistComps, vp3c.AvgDistComps, r)
	}
}

func TestFig10And11Shape(t *testing.T) {
	c := tinyConfig()
	for name, run := range map[string]func(Config) (*bench.Table, error){
		"Fig10": Fig10,
		"Fig11": Fig11,
	} {
		tbl, err := run(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// mvpt(3,13) gives the best performance among all structures
		// (paper §5.2.B), checked at a mid radius.
		r := ImageRadii[2]
		best, err := tbl.Cell(r, "mvpt(3,13)")
		if err != nil {
			t.Fatal(err)
		}
		vp2, err := tbl.Cell(r, "vpt(2)")
		if err != nil {
			t.Fatal(err)
		}
		if best.AvgDistComps >= vp2.AvgDistComps {
			t.Errorf("%s: mvpt(3,13) = %.0f ≥ vpt(2) = %.0f at r=%g",
				name, best.AvgDistComps, vp2.AvgDistComps, r)
		}
	}
}

func TestClaims(t *testing.T) {
	claims, err := Claims(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 8 {
		t.Fatalf("got %d claims, want 8", len(claims))
	}
	for _, cl := range claims {
		if cl.A == "mvpt(3,80)" && cl.SavingsPc <= 0 {
			t.Errorf("%s r=%g: mvpt(3,80) saves %.1f%%, want positive", cl.Workload, cl.Radius, cl.SavingsPc)
		}
	}
}

func TestAblationP(t *testing.T) {
	tbl, err := AblationP(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := Fig8Radii[0]
	p0, err := tbl.Cell(r, "mvpt-p=0")
	if err != nil {
		t.Fatal(err)
	}
	p8, err := tbl.Cell(r, "mvpt-p=8")
	if err != nil {
		t.Fatal(err)
	}
	if p8.AvgDistComps >= p0.AvgDistComps {
		t.Errorf("p=8 cost %.0f ≥ p=0 cost %.0f; PATH filtering must help", p8.AvgDistComps, p0.AvgDistComps)
	}
}

func TestAblationKMonotoneBuildCost(t *testing.T) {
	tbl, err := AblationK(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Larger leaves → shorter trees → cheaper construction.
	r := Fig8Radii[0]
	k5, err := tbl.Cell(r, "mvpt(3,5)")
	if err != nil {
		t.Fatal(err)
	}
	k160, err := tbl.Cell(r, "mvpt(3,160)")
	if err != nil {
		t.Fatal(err)
	}
	if k160.BuildCost >= k5.BuildCost {
		t.Errorf("k=160 build cost %.0f ≥ k=5 build cost %.0f", k160.BuildCost, k5.BuildCost)
	}
}

func TestAblationSV2(t *testing.T) {
	tbl, err := AblationSV2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must at least produce a working tree; farthest
	// should not be dramatically worse than random.
	sav, err := tbl.SavingsPercent("mvpt(3,80)", "mvpt(3,80)-rnd2")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sav {
		if s < -50 {
			t.Errorf("farthest sv2 %.1f%% worse than random at r=%g", -s, Fig8Radii[i])
		}
	}
}

func TestKNNStudy(t *testing.T) {
	tbl, err := KNNStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for vi, v := range tbl.Values {
		for si, s := range tbl.Structures {
			if got := tbl.Cells[vi][si].AvgResults; got != v {
				t.Errorf("%s returned %.1f results for k=%g", s, got, v)
			}
		}
	}
}

func TestStructureStudy(t *testing.T) {
	tbl, err := StructureStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every indexed structure must beat the linear scan at the
	// smallest radius, and all must agree on result counts.
	r := Fig8Radii[0]
	lin, err := tbl.Cell(r, "linear")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tbl.Structures {
		if s == "linear" {
			continue
		}
		cell, err := tbl.Cell(r, s)
		if err != nil {
			t.Fatal(err)
		}
		if cell.AvgDistComps >= lin.AvgDistComps {
			t.Errorf("%s cost %.0f ≥ linear %.0f at r=%g", s, cell.AvgDistComps, lin.AvgDistComps, r)
		}
		if cell.AvgResults != lin.AvgResults {
			t.Errorf("%s found %.2f results, linear %.2f", s, cell.AvgResults, lin.AvgResults)
		}
	}
}

func TestWordStudy(t *testing.T) {
	tbl, err := WordStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := WordRadii[0]
	lin, err := tbl.Cell(r, "linear")
	if err != nil {
		t.Fatal(err)
	}
	bkt, err := tbl.Cell(r, "bkt")
	if err != nil {
		t.Fatal(err)
	}
	if bkt.AvgDistComps >= lin.AvgDistComps {
		t.Errorf("BK-tree cost %.0f ≥ linear %.0f at r=%g", bkt.AvgDistComps, lin.AvgDistComps, r)
	}
	if bkt.AvgResults != lin.AvgResults {
		t.Errorf("BK-tree found %.2f results, linear %.2f", bkt.AvgResults, lin.AvgResults)
	}
}

func TestVantageStudy(t *testing.T) {
	tbl, err := VantageStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := Fig8Radii[0]
	v1, err := tbl.Cell(r, "gmvpt(1,9,80)")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tbl.Cell(r, "gmvpt(2,3,80)")
	if err != nil {
		t.Fatal(err)
	}
	if v2.AvgDistComps >= v1.AvgDistComps {
		t.Errorf("gmvpt(2,3) cost %.0f ≥ gmvpt(1,9) cost %.0f; sharing vantage points must help",
			v2.AvgDistComps, v1.AvgDistComps)
	}
	// All four structures agree on result counts.
	for vi := range tbl.Values {
		base := tbl.Cells[vi][0].AvgResults
		for si := range tbl.Structures {
			if tbl.Cells[vi][si].AvgResults != base {
				t.Errorf("%s disagrees on result count at %s=%g",
					tbl.Structures[si], tbl.Label, tbl.Values[vi])
			}
		}
	}
}

func TestApproxStudy(t *testing.T) {
	results, err := ApproxStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ApproxBudgetFractions) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Recall < 0 || r.Recall > 1 || r.ExactFraction < 0 || r.ExactFraction > 1 {
			t.Errorf("result %d out of range: %+v", i, r)
		}
	}
	last := results[len(results)-1]
	if last.Recall < 0.999 {
		t.Errorf("full-budget recall = %.3f, want ≈ 1", last.Recall)
	}
	if results[0].Recall >= last.Recall {
		t.Errorf("recall not increasing: %.3f at smallest budget vs %.3f at full", results[0].Recall, last.Recall)
	}
}

func TestFilterStudy(t *testing.T) {
	rows, err := FilterStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig8Radii) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		sum := row.DFrac + row.PathFrac + row.ComputedFrac
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("r=%g: fractions sum to %g", row.Radius, sum)
		}
		if row.VantageShare < 0 || row.VantageShare > 1 {
			t.Errorf("r=%g: vantage share %g", row.Radius, row.VantageShare)
		}
	}
	// At the smallest radius most candidates must be filtered without
	// a distance computation (that is the mvp-tree's entire point).
	if rows[0].ComputedFrac > 0.5 {
		t.Errorf("r=%g: %.0f%% of candidates needed real computations",
			rows[0].Radius, 100*rows[0].ComputedFrac)
	}
}

func TestImageSetOverride(t *testing.T) {
	// The -imgdir hook: supplying a real image collection must replace
	// the synthetic one everywhere the image experiments look.
	c := tinyConfig()
	rng := rand.New(rand.NewPCG(9, 9))
	custom := dataset.SyntheticImages(rng, 40, dataset.ImageOptions{Width: 16, Height: 16, Subjects: 4})
	c.ImageSet = custom
	c.ImageCount = len(custom)
	c.ImageDim = 16
	c.ImageQueries = 4
	if got := c.Images(); len(got) != 40 || got[0] != custom[0] {
		t.Fatal("Images() did not return the override set")
	}
	h := Fig6(c)
	if h.Total() != 40*39/2 {
		t.Errorf("Fig6 over override counted %d pairs", h.Total())
	}
	tbl, err := Fig10(c)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := tbl.Cell(ImageRadii[0], "vpt(2)")
	if err != nil {
		t.Fatal(err)
	}
	if cell.AvgDistComps <= 0 || cell.AvgDistComps > 40 {
		t.Errorf("Fig10 over 40 override images: %.1f computations", cell.AvgDistComps)
	}
}
