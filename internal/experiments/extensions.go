package experiments

import (
	"fmt"

	"mvptree/internal/bench"
	"mvptree/internal/build"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// The experiments below go beyond the paper's figures: ablations of the
// mvp-tree's design choices (DESIGN.md rows abl-p, abl-k, abl-sv2) and
// extension studies (kNN, the related structures of §3.2, and the
// BK-tree word workload).

// AblationPValues are the retained-path lengths swept by AblationP.
var AblationPValues = []int{0, 2, 5, 8, 12}

// AblationP quantifies Observation 2 (the pre-computed PATH distances):
// the same mvpt(3,80) tree with increasing p, on the uniform vector
// workload over the Figure 8 radii.
func AblationP(c Config) (*bench.Table, error) {
	var structures []bench.Structure[[]float64]
	for _, p := range AblationPValues {
		p := p
		structures = append(structures, bench.Structure[[]float64]{
			Name: fmt.Sprintf("mvpt-p=%d", p),
			Build: func(items [][]float64, dist *metric.Counter[[]float64], opts build.Options) (index.Index[[]float64], build.Stats, error) {
				pl := p
				if pl == 0 {
					pl = -1 // mvp.Options: -1 requests a genuine zero
				}
				return mvp.NewWithStats(items, dist, mvp.Options{
					Build: opts, Partitions: 3, LeafCapacity: 80, PathLength: pl,
				})
			},
		})
	}
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// AblationKValues are the leaf capacities swept by AblationK.
var AblationKValues = []int{5, 9, 20, 40, 80, 160}

// AblationK quantifies the paper's "keep k large" recommendation (§4.2):
// mvpt(3,k) for growing k, uniform vectors, Figure 8 radii.
func AblationK(c Config) (*bench.Table, error) {
	var structures []bench.Structure[[]float64]
	for _, k := range AblationKValues {
		structures = append(structures, bench.MVPT[[]float64](3, k, 5))
	}
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// AblationSV2 quantifies the farthest-point choice of the second vantage
// point (§4.2) against picking it randomly from the outermost shell.
func AblationSV2(c Config) (*bench.Table, error) {
	structures := []bench.Structure[[]float64]{
		bench.MVPT[[]float64](3, 80, 5),
		bench.MVPTRandomSV2[[]float64](3, 80, 5),
	}
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// KNNKs are the neighbor counts swept by KNNStudy.
var KNNKs = []int{1, 5, 10}

// KNNStudy compares all tree structures on k-nearest-neighbor queries
// over the uniform vector workload (the paper's "nearest neighbor query"
// variation, §2).
func KNNStudy(c Config) (*bench.Table, error) {
	structures := append(VectorStructures(),
		bench.VPTDepthFirst[[]float64](2), // [Chi94] traversal, same tree as vpt(2)
		bench.GHT[[]float64](8),
		bench.GNAT[[]float64](8),
		bench.LAESA[[]float64](32),
	)
	return bench.RunKNN(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, KNNKs, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// StructureStudy compares the related structures the paper reviews in
// §3.2 — gh-tree, GNAT, LAESA — against vp- and mvp-trees and the linear
// scan on the uniform vector workload.
func StructureStudy(c Config) (*bench.Table, error) {
	structures := []bench.Structure[[]float64]{
		bench.Linear[[]float64](),
		bench.VPT[[]float64](2),
		bench.MVPT[[]float64](3, 80, 5),
		bench.GHT[[]float64](8),
		bench.GNAT[[]float64](8),
		bench.BallTree[[]float64](8),
		bench.LAESA[[]float64](32),
	}
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// WordRadii are the edit-distance query radii swept by WordStudy.
var WordRadii = []float64{1, 2, 3}

// WordStudy runs the [BK73] workload: best-match searching in a word
// file under edit distance, comparing the BK-tree against vp-trees,
// mvp-trees and the linear scan.
func WordStudy(c Config) (*bench.Table, error) {
	words := c.Words()
	queries := c.WordQueries(words)
	structures := []bench.Structure[string]{
		bench.Linear[string](),
		bench.BKT[string](),
		bench.VPT[string](3),
		bench.MVPT[string](2, 20, 4),
	}
	return bench.RunRange(words, queries, metric.Edit, structures, WordRadii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// VantageStudy sweeps the number of vantage points per node at roughly
// constant fanout (the §4.2 "more than 2 vantage points" remark):
// gmvpt(1,9) is an m-way vp-tree with buckets and PATH, gmvpt(2,3) is
// the paper's mvp-tree, gmvpt(3,2) trades thinner binary shells for a
// third shared vantage point.
func VantageStudy(c Config) (*bench.Table, error) {
	structures := []bench.Structure[[]float64]{
		bench.GMVPT[[]float64](1, 9, 80, 5),
		bench.GMVPT[[]float64](2, 3, 80, 5),
		bench.GMVPT[[]float64](3, 2, 80, 5),
		bench.MVPT[[]float64](3, 80, 5), // reference implementation of v=2
	}
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		structures, Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// BuildStudy measures construction cost (distance computations) for
// every structure on the uniform vector workload — the preprocessing
// trade-off the paper discusses when comparing against GNAT ([Bri95]:
// "the preprocessing step of GNAT is more expensive than the vp-tree").
func BuildStudy(c Config) (*bench.Table, error) {
	structures := []bench.Structure[[]float64]{
		bench.VPT[[]float64](2),
		bench.VPT[[]float64](3),
		bench.MVPT[[]float64](3, 9, 5),
		bench.MVPT[[]float64](3, 80, 5),
		bench.GHT[[]float64](8),
		bench.GNAT[[]float64](8),
		bench.LAESA[[]float64](32),
	}
	// A single token radius: only the BuildCost column matters here.
	return bench.RunRange(c.UniformVectors(), c.VectorQueries()[:1], metric.L2,
		structures, []float64{0.1}, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}
