package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestTelemetryStudyAccounting checks that every structure's snapshot
// is internally consistent: queries counted, distance totals matching
// the SearchStats sums, and the linear baseline costing exactly n per
// range query.
func TestTelemetryStudyAccounting(t *testing.T) {
	c := tinyConfig()
	rep, err := TelemetryStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Structures) == 0 {
		t.Fatal("no structures in telemetry report")
	}
	for _, e := range rep.Structures {
		s := e.Snapshot
		if s.Queries != int64(2*c.Queries) {
			t.Fatalf("%s: %d queries observed, want %d", e.Structure, s.Queries, 2*c.Queries)
		}
		if got := s.Search.Computed + s.Search.VantagePoints; got != s.Distances {
			t.Fatalf("%s: SearchStats account for %d distances, snapshot says %d",
				e.Structure, got, s.Distances)
		}
		if s.DistanceHist.N != s.Queries {
			t.Fatalf("%s: distance histogram has %d entries, want %d",
				e.Structure, s.DistanceHist.N, s.Queries)
		}
		if e.Structure == "linear" {
			if want := int64(c.N * c.Queries); s.Range.Queries != int64(c.Queries) ||
				s.Distances < want {
				t.Fatalf("linear: %d distances over %d range queries, want at least %d",
					s.Distances, s.Range.Queries, want)
			}
		}
	}
}

// TestTelemetryReportJSONAndText checks both output forms: the JSON
// artifact round-trips and the text table has one row per structure.
func TestTelemetryReportJSONAndText(t *testing.T) {
	rep, err := TelemetryStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back TelemetryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Structures) != len(rep.Structures) {
		t.Fatalf("round-trip lost structures: %d -> %d", len(rep.Structures), len(back.Structures))
	}
	for i := range rep.Structures {
		if back.Structures[i].Snapshot.Distances != rep.Structures[i].Snapshot.Distances {
			t.Fatalf("%s: distance total lost in JSON round-trip", rep.Structures[i].Structure)
		}
	}

	var buf bytes.Buffer
	if err := WriteTelemetry(&buf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if want := len(rep.Structures) + 2; lines != want { // config line + header
		t.Fatalf("text table has %d lines, want %d:\n%s", lines, want, buf.String())
	}
}
