package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/shard"
)

// ShardBenchRounds is the number of measured passes over the query
// batch per configuration (after one warm-up pass).
const ShardBenchRounds = 3

// ShardQueryWorkerCounts is the default intra-query fan-out sweep.
var ShardQueryWorkerCounts = []int{1, 2, 4, 8}

// ShardCounts is the default shard-count sweep (1 = the unsharded
// baseline tree, measured through the same harness).
var ShardCounts = []int{1, 2, 4, 8}

// ShardWorkerPoint is one (query-worker count) cell of a shard row:
// serving wall time per query for the range fan-out and the
// opportunistic parallel kNN.
type ShardWorkerPoint struct {
	Workers      int     `json:"workers"`
	RangeNsPerOp float64 `json:"range_ns_per_op"`
	KNNNsPerOp   float64 `json:"knn_ns_per_op"`
	// KNNParDistPerQuery is the opportunistic mode's measured distance
	// count; unlike every other count in this repository it may vary
	// run to run (cross-shard τ races), which is exactly what the
	// deterministic column beside it is for.
	KNNParDistPerQuery float64 `json:"knn_par_dist_per_query"`
}

// ShardBenchRow is one shard count's build and serving costs.
type ShardBenchRow struct {
	Shards          int   `json:"shards"`
	BuildWallNs     int64 `json:"build_wall_ns"`
	BuildDistances  int64 `json:"build_distances"`
	AssignDistances int64 `json:"assign_distances"`

	// RangeDistPerQuery is identical at every worker count (the range
	// fan-out is deterministic); KNNSeqDistPerQuery is the
	// deterministic sequential-tightening mode's count.
	RangeDistPerQuery  float64            `json:"range_dist_per_query"`
	KNNSeqDistPerQuery float64            `json:"knn_seq_dist_per_query"`
	Points             []ShardWorkerPoint `json:"points"`
}

// ShardBenchReport is the artifact cmd/mvpbench -shardjson writes.
type ShardBenchReport struct {
	N            int             `json:"n"`
	Dim          int             `json:"dim"`
	Queries      int             `json:"queries"`
	Rounds       int             `json:"rounds"`
	Radius       float64         `json:"radius"`
	K            int             `json:"k"`
	BuildWorkers int             `json:"build_workers"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Assignment   string          `json:"assignment"`
	Rows         []ShardBenchRow `json:"rows"`
}

// ShardBenchStudy measures the sharded serving layer: for each shard
// count it builds a partitioned mvp-tree index (balanced assignment)
// and reports build wall time, per-query serving time for the range
// fan-out and both kNN modes across the intra-query worker sweep, and
// the deterministic distance counts beside the opportunistic one.
// Wall-clock speedups require real cores (see GOMAXPROCS in the
// report); distance-count behavior is machine-independent.
func ShardBenchStudy(c Config) (*ShardBenchReport, error) {
	items := c.UniformVectors()
	queries := c.VectorQueries()
	shardCounts := c.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = ShardCounts
	}
	workerCounts := c.ShardQueryWorkers
	if len(workerCounts) == 0 {
		workerCounts = ShardQueryWorkerCounts
	}
	bw := c.BuildWorkers
	if bw < 1 {
		bw = 1
	}
	rep := &ShardBenchReport{
		N: c.N, Dim: c.Dim, Queries: len(queries), Rounds: ShardBenchRounds,
		Radius: TelemetryRadius, K: TelemetryK,
		BuildWorkers: bw, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Assignment: shard.Balanced.String(),
	}
	opts := mvp.Options{Partitions: 3, LeafCapacity: 80, PathLength: 5}
	seed := c.TreeSeeds[0]
	for _, s := range shardCounts {
		counter := metric.NewCounter[[]float64](metric.L2)
		buildStart := time.Now()
		x, bs, err := shard.NewWithStats(items, counter, shard.MVP[[]float64](opts), shard.Options{
			Shards: s, Assignment: shard.Balanced, Workers: bw, Seed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", s, err)
		}
		row := ShardBenchRow{
			Shards:          s,
			BuildWallNs:     time.Since(buildStart).Nanoseconds(),
			BuildDistances:  bs.Stats.Distances,
			AssignDistances: bs.AssignDistances,
		}

		// Warm-up pass (fills per-shard scratch pools), plus the
		// deterministic counts measured once.
		for _, q := range queries {
			x.Range(q, TelemetryRadius)
		}
		before := counter.Count()
		for _, q := range queries {
			x.Range(q, TelemetryRadius)
		}
		row.RangeDistPerQuery = float64(counter.Count()-before) / float64(len(queries))
		before = counter.Count()
		for _, q := range queries {
			x.KNNWithStats(q, TelemetryK)
		}
		row.KNNSeqDistPerQuery = float64(counter.Count()-before) / float64(len(queries))

		ops := int64(ShardBenchRounds * len(queries))
		for _, w := range workerCounts {
			pt := ShardWorkerPoint{Workers: w}
			start := time.Now()
			for round := 0; round < ShardBenchRounds; round++ {
				for _, q := range queries {
					x.RangeParallelWithStats(q, TelemetryRadius, w)
				}
			}
			pt.RangeNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)

			before = counter.Count()
			start = time.Now()
			for round := 0; round < ShardBenchRounds; round++ {
				for _, q := range queries {
					x.KNNParallelWithStats(q, TelemetryK, w)
				}
			}
			pt.KNNNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(ops)
			pt.KNNParDistPerQuery = float64(counter.Count()-before) / float64(ops)
			row.Points = append(row.Points, pt)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteShardBench prints the shard scaling study as one row per
// (shards, workers) cell.
func WriteShardBench(w io.Writer, rep *ShardBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# uniform vectors n=%d dim=%d, %d queries, r=%g k=%d, %s assignment, GOMAXPROCS=%d\n",
		rep.N, rep.Dim, rep.Queries, rep.Radius, rep.K, rep.Assignment, rep.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-7s %8s %12s %12s %14s %12s %12s %14s\n",
		"shards", "workers", "range-ns/op", "knn-ns/op", "knn-par-dist", "range-dist", "knn-seq-dist", "build-wall")
	for _, row := range rep.Rows {
		for _, pt := range row.Points {
			fmt.Fprintf(&sb, "%-7d %8d %12.0f %12.0f %14.1f %12.1f %12.1f %14s\n",
				row.Shards, pt.Workers, pt.RangeNsPerOp, pt.KNNNsPerOp, pt.KNNParDistPerQuery,
				row.RangeDistPerQuery, row.KNNSeqDistPerQuery,
				time.Duration(row.BuildWallNs).Round(time.Millisecond))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
