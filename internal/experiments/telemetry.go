package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mvptree/internal/bench"
	"mvptree/internal/build"
	"mvptree/internal/metric"
	"mvptree/internal/obs"
	"mvptree/internal/qexec"
)

// TelemetryRadius and TelemetryK are the fixed query parameters of the
// telemetry study: one mid-sweep range radius (Figure 8's middle value)
// and the largest swept neighbor count.
var (
	TelemetryRadius = Fig8Radii[len(Fig8Radii)/2]
	TelemetryK      = KNNKs[len(KNNKs)-1]
)

// TelemetryEntry is one structure's merged query telemetry over the
// whole workload: the full Observer snapshot plus the wall time of the
// two query batches.
type TelemetryEntry struct {
	Structure string        `json:"structure"`
	BuildCost int64         `json:"build_cost"`
	RangeWall time.Duration `json:"range_wall_ns"`
	KNNWall   time.Duration `json:"knn_wall_ns"`
	Snapshot  obs.Snapshot  `json:"snapshot"`
}

// TelemetryReport is the artifact cmd/mvpbench -obsjson writes: the
// per-structure query telemetry of the uniform vector workload, with
// the run configuration needed to interpret it.
type TelemetryReport struct {
	N          int              `json:"n"`
	Dim        int              `json:"dim"`
	Queries    int              `json:"queries"`
	Workers    int              `json:"workers"`
	Radius     float64          `json:"radius"`
	K          int              `json:"k"`
	Structures []TelemetryEntry `json:"structures"`
}

// TelemetryStudy runs the §3.2 structure line-up over the uniform
// vector workload with a fresh Observer per structure, answering one
// range batch (r = TelemetryRadius) and one kNN batch
// (k = TelemetryK), and returns every structure's merged snapshot. The
// study uses the first construction seed only: telemetry is about the
// shape of one run's work, not seed-averaged cost (the figure
// experiments cover that).
func TelemetryStudy(c Config) (*TelemetryReport, error) {
	items := c.UniformVectors()
	queries := c.VectorQueries()
	structures := []bench.Structure[[]float64]{
		bench.Linear[[]float64](),
		bench.VPT[[]float64](2),
		bench.MVPT[[]float64](3, 80, 5),
		bench.GHT[[]float64](8),
		bench.GNAT[[]float64](8),
		bench.BallTree[[]float64](8),
		bench.LAESA[[]float64](32),
	}
	workers := c.QueryWorkers
	if workers < 1 {
		workers = 1
	}
	rep := &TelemetryReport{
		N: c.N, Dim: c.Dim, Queries: len(queries), Workers: workers,
		Radius: TelemetryRadius, K: TelemetryK,
	}
	seed := c.TreeSeeds[0]
	for _, st := range structures {
		counter := metric.NewCounter[[]float64](metric.L2)
		idx, bs, err := st.Build(items, counter, build.Options{Seed: seed, Workers: c.BuildWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.Name, err)
		}
		o := obs.NewObserver(workers)
		opts := qexec.Options{Workers: workers, Observer: o}
		_, rstats, err := qexec.RunRange(idx, queries, TelemetryRadius, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: range batch: %w", st.Name, err)
		}
		_, kstats, err := qexec.RunKNN(idx, queries, TelemetryK, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: knn batch: %w", st.Name, err)
		}
		rep.Structures = append(rep.Structures, TelemetryEntry{
			Structure: st.Name,
			BuildCost: bs.Distances,
			RangeWall: rstats.Wall,
			KNNWall:   kstats.Wall,
			Snapshot:  o.Snapshot(),
		})
	}
	return rep, nil
}

// WriteTelemetry prints the headline per-structure telemetry: average
// distance computations per query, filter efficacy shares, and latency
// quantiles.
func WriteTelemetry(w io.Writer, rep *TelemetryReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# uniform vectors n=%d dim=%d, %d queries, r=%g k=%d, %d workers\n",
		rep.N, rep.Dim, rep.Queries, rep.Radius, rep.K, rep.Workers)
	fmt.Fprintf(&sb, "%-12s %12s %10s %10s %10s %12s %12s\n",
		"structure", "dist/query", "shell", "D1/D2", "PATH", "range-p99", "knn-p99")
	for _, e := range rep.Structures {
		s := e.Snapshot
		perQuery := 0.0
		if s.Queries > 0 {
			perQuery = float64(s.Distances) / float64(s.Queries)
		}
		fmt.Fprintf(&sb, "%-12s %12.1f %10d %10d %10d %12s %12s\n",
			e.Structure, perQuery,
			s.Search.ShellsPruned, s.Search.FilteredByD, s.Search.FilteredByPath,
			s.Range.P99, s.KNN.P99)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
