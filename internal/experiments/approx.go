package experiments

import (
	"fmt"
	"io"
	"strings"

	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
)

// ApproxResult is one point of the recall-versus-budget curve for the
// budgeted (anytime) k-nearest-neighbor search.
type ApproxResult struct {
	// Budget is the hard cap on distance computations per query.
	Budget int64
	// Recall is the fraction of true k-nearest neighbors returned,
	// averaged over queries and seeds.
	Recall float64
	// ExactFraction is the fraction of queries whose traversal
	// finished within budget (result provably exact).
	ExactFraction float64
}

// ApproxKs is the neighbor count used by ApproxStudy.
const ApproxK = 10

// ApproxBudgets are the per-query distance-computation caps swept by
// ApproxStudy, as fractions of the dataset size.
var ApproxBudgetFractions = []float64{0.002, 0.01, 0.05, 0.2, 1.0}

// ApproxStudy measures the anytime behaviour of mvp-tree kNN on the
// uniform vector workload, where exact kNN approaches a linear scan
// (ext-knn): how much recall does a fixed distance-computation budget
// buy? Ground truth comes from a linear scan per query.
func ApproxStudy(c Config) ([]ApproxResult, error) {
	items := c.UniformVectors()
	queries := c.VectorQueries()
	results := make([]ApproxResult, len(ApproxBudgetFractions))
	for i, f := range ApproxBudgetFractions {
		results[i].Budget = int64(f * float64(len(items)))
	}

	truth := linear.New(items, metric.NewCounter[[]float64](metric.L2))
	for _, seed := range c.TreeSeeds {
		counter := metric.NewCounter[[]float64](metric.L2)
		tree, err := mvp.New(items, counter, mvp.Options{
			Partitions: 3, LeafCapacity: 80, PathLength: 5,
			Build: mvp.Build{Seed: seed, Workers: c.BuildWorkers},
		})
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			want := map[int]bool{}
			for _, nb := range truth.KNN(q, ApproxK) {
				want[vectorKey(nb.Item)] = true
			}
			for i := range results {
				got, exact := tree.KNNBudgeted(q, ApproxK, results[i].Budget)
				hits := 0
				for _, nb := range got {
					if want[vectorKey(nb.Item)] {
						hits++
					}
				}
				results[i].Recall += float64(hits)
				if exact {
					results[i].ExactFraction++
				}
			}
		}
	}
	norm := float64(len(c.TreeSeeds) * len(queries))
	for i := range results {
		results[i].Recall /= norm * ApproxK
		results[i].ExactFraction /= norm
	}
	return results, nil
}

// vectorKey identifies a vector by its first coordinates' bit patterns —
// sufficient to match items within one dataset (uniform random vectors
// collide with negligible probability).
func vectorKey(v []float64) int {
	h := 0
	for i := 0; i < len(v) && i < 4; i++ {
		h = h*1000003 + int(v[i]*1e9)
	}
	return h
}

// WriteApproxResults prints the recall curve.
func WriteApproxResults(w io.Writer, results []ApproxResult) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "budget", "recall", "exact")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-12d %9.1f%% %9.1f%%\n", r.Budget, 100*r.Recall, 100*r.ExactFraction)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
