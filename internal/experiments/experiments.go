// Package experiments defines every experiment of the paper's evaluation
// (and this repository's extensions) as a parameterized, reproducible
// function: the figures 4–11, the headline claims table, the ablations
// and the extension studies listed in DESIGN.md. cmd/mvpbench and the
// root benchmark suite both drive these definitions, so the figure a
// benchmark regenerates and the figure the CLI prints are the same code.
package experiments

import (
	"math"
	"math/rand/v2"

	"mvptree/internal/bench"
	"mvptree/internal/dataset"
	"mvptree/internal/histogram"
	"mvptree/internal/metric"
	"mvptree/internal/pgm"
)

// Config scales an experiment. DefaultConfig reproduces the paper's
// sizes; QuickConfig is a laptop-friendly reduction that preserves every
// qualitative shape.
type Config struct {
	// Vector workloads (§5.1.A).
	N           int     // dataset size (paper: 50,000)
	Dim         int     // dimensionality (paper: 20)
	Queries     int     // queries per run (paper: 100)
	ClusterSize int     // clustered workload cluster size (paper: 1,000)
	Epsilon     float64 // clustered workload perturbation (paper: 0.15)

	// Image workloads (§5.1.B).
	ImageCount    int // paper: 1,151
	ImageDim      int // square image side (paper: 256; default 64, see DESIGN.md)
	ImageSubjects int // distinct synthetic "people"
	ImageQueries  int // queries per run (paper: 30)

	// Histogram sampling for the 50,000-vector figures (the full pair
	// set is 1.25 billion).
	HistPairs int

	// Seeds: DataSeed generates workloads; TreeSeeds are the
	// construction seeds averaged over (paper: 4 runs).
	DataSeed  uint64
	TreeSeeds []uint64

	// QueryWorkers parallelizes query evaluation within each
	// (structure, seed) run (cmd/mvpbench -workers). Values <= 1 run
	// queries sequentially. The worker count never changes the
	// measured distance counts — each query's cost is independent —
	// only wall-clock time.
	QueryWorkers int

	// BuildWorkers parallelizes index construction within each
	// (structure, seed) run (cmd/mvpbench -buildworkers). Values <= 1
	// build sequentially. Construction is deterministic in the worker
	// count: the tree built and its distance-computation cost are
	// identical, only wall-clock time changes.
	BuildWorkers int

	// ImageSet, when non-nil, replaces the synthetic image workload —
	// the hook for running the image experiments against a real
	// collection (cmd/mvpbench -imgdir). ImageDim must be set to the
	// images' side length so distance normalization stays correct.
	ImageSet []*pgm.Image

	// ShardCounts and ShardQueryWorkers are the sweeps of the
	// shardbench experiment (cmd/mvpbench -shards / -queryworkers);
	// empty slices mean the experiment's defaults.
	ShardCounts       []int
	ShardQueryWorkers []int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		N: 50000, Dim: 20, Queries: 100,
		ClusterSize: 1000, Epsilon: 0.15,
		ImageCount: 1151, ImageDim: 64, ImageSubjects: 12, ImageQueries: 30,
		HistPairs: 2_000_000,
		DataSeed:  1997, TreeSeeds: bench.DefaultSeeds,
	}
}

// QuickConfig returns a reduced configuration for fast runs; every
// qualitative result still holds at this scale.
func QuickConfig() Config {
	return Config{
		N: 5000, Dim: 20, Queries: 30,
		ClusterSize: 100, Epsilon: 0.15,
		ImageCount: 200, ImageDim: 32, ImageSubjects: 8, ImageQueries: 10,
		HistPairs: 200_000,
		DataSeed:  1997, TreeSeeds: []uint64{101, 202},
	}
}

// UniformVectors generates the Figure 4/8 dataset for the configuration.
func (c *Config) UniformVectors() [][]float64 {
	rng := rand.New(rand.NewPCG(c.DataSeed, 1))
	return dataset.UniformVectors(rng, c.N, c.Dim)
}

// ClusteredVectors generates the Figure 5/9 dataset.
func (c *Config) ClusteredVectors() [][]float64 {
	rng := rand.New(rand.NewPCG(c.DataSeed, 2))
	return dataset.ClusteredVectors(rng, c.N, c.Dim, c.ClusterSize, c.Epsilon)
}

// VectorQueries generates the hypercube query batch for the vector
// experiments.
func (c *Config) VectorQueries() [][]float64 {
	rng := rand.New(rand.NewPCG(c.DataSeed, 3))
	return dataset.UniformQueries(rng, c.Queries, c.Dim)
}

// Images returns the Figure 6/7/10/11 image dataset: ImageSet if
// provided, the synthetic phantom collection otherwise.
func (c *Config) Images() []*pgm.Image {
	if c.ImageSet != nil {
		return c.ImageSet
	}
	rng := rand.New(rand.NewPCG(c.DataSeed, 4))
	return dataset.SyntheticImages(rng, c.ImageCount, dataset.ImageOptions{
		Width: c.ImageDim, Height: c.ImageDim, Subjects: c.ImageSubjects,
	})
}

// ImageQuerySet samples query images from the dataset, as the paper does.
func (c *Config) ImageQuerySet(imgs []*pgm.Image) []*pgm.Image {
	rng := rand.New(rand.NewPCG(c.DataSeed, 5))
	return dataset.SampleQueries(rng, imgs, c.ImageQueries)
}

// The paper normalizes raw image distances so that interesting query
// radii are small integers: L1 by 10,000 and L2 by 100, for
// 256×256 = 65,536-pixel images. For other image sizes the
// normalization keeps the same meaning by scaling with the pixel count
// (L1 grows linearly in pixels, L2 with the square root).

// ImageL1 returns the normalized L1 image metric for the configured
// image size.
func (c *Config) ImageL1() metric.DistanceFunc[*pgm.Image] {
	pixels := float64(c.ImageDim * c.ImageDim)
	return metric.Scaled(pgm.L1, 65536.0/(10000.0*pixels))
}

// ImageL2 returns the normalized L2 image metric for the configured
// image size.
func (c *Config) ImageL2() metric.DistanceFunc[*pgm.Image] {
	pixels := float64(c.ImageDim * c.ImageDim)
	return metric.Scaled(pgm.L2, math.Sqrt(65536.0/pixels)/100.0)
}

// Sweeps used by the paper's figures.
var (
	// Fig8Radii are the query ranges of Figure 8 (uniform vectors).
	Fig8Radii = []float64{0.15, 0.2, 0.3, 0.4, 0.5}
	// Fig9Radii are the query ranges of Figure 9 (clustered vectors;
	// the paper sweeps 0.2 to 1.0).
	Fig9Radii = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	// ImageRadii are the query ranges of Figures 10 and 11 (normalized
	// image distances).
	ImageRadii = []float64{10, 20, 30, 40, 50, 60, 80}
)

// VectorStructures returns the four structures of Figures 8 and 9:
// vpt(2), vpt(3), mvpt(3,9) and mvpt(3,80), all with p = 5.
func VectorStructures() []bench.Structure[[]float64] {
	return []bench.Structure[[]float64]{
		bench.VPT[[]float64](2),
		bench.VPT[[]float64](3),
		bench.MVPT[[]float64](3, 9, 5),
		bench.MVPT[[]float64](3, 80, 5),
	}
}

// ImageStructures returns the five structures of Figures 10 and 11:
// vpt(2), vpt(3), mvpt(2,16), mvpt(2,5) and mvpt(3,13), all with p = 4.
func ImageStructures() []bench.Structure[*pgm.Image] {
	return []bench.Structure[*pgm.Image]{
		bench.VPT[*pgm.Image](2),
		bench.VPT[*pgm.Image](3),
		bench.MVPT[*pgm.Image](2, 16, 4),
		bench.MVPT[*pgm.Image](2, 5, 4),
		bench.MVPT[*pgm.Image](3, 13, 4),
	}
}

// Fig4 regenerates Figure 4: the pairwise-distance histogram of the
// uniform vector dataset (bucket width 0.01, sampled pairs).
func Fig4(c Config) *histogram.Histogram {
	rng := rand.New(rand.NewPCG(c.DataSeed, 6))
	return histogram.PairwiseSampled(rng, c.UniformVectors(), metric.L2, 0.01, c.HistPairs)
}

// Fig5 regenerates Figure 5: the clustered-vector distance histogram.
func Fig5(c Config) *histogram.Histogram {
	rng := rand.New(rand.NewPCG(c.DataSeed, 7))
	return histogram.PairwiseSampled(rng, c.ClusteredVectors(), metric.L2, 0.01, c.HistPairs)
}

// Fig6 regenerates Figure 6: the all-pairs image distance histogram
// under normalized L1 (bucket width 1).
func Fig6(c Config) *histogram.Histogram {
	return histogram.Pairwise(c.Images(), c.ImageL1(), 1)
}

// Fig7 regenerates Figure 7: the image distance histogram under
// normalized L2.
func Fig7(c Config) *histogram.Histogram {
	return histogram.Pairwise(c.Images(), c.ImageL2(), 1)
}

// Fig8 regenerates Figure 8: distance computations per search on the
// uniform vector dataset for vpt(2), vpt(3), mvpt(3,9), mvpt(3,80).
func Fig8(c Config) (*bench.Table, error) {
	return bench.RunRange(c.UniformVectors(), c.VectorQueries(), metric.L2,
		VectorStructures(), Fig8Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// Fig9 regenerates Figure 9: the same four structures on the clustered
// vector dataset.
func Fig9(c Config) (*bench.Table, error) {
	return bench.RunRange(c.ClusteredVectors(), c.VectorQueries(), metric.L2,
		VectorStructures(), Fig9Radii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// Fig10 regenerates Figure 10: image similarity search under L1.
func Fig10(c Config) (*bench.Table, error) {
	imgs := c.Images()
	return bench.RunRange(imgs, c.ImageQuerySet(imgs), c.ImageL1(),
		ImageStructures(), ImageRadii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}

// Fig11 regenerates Figure 11: image similarity search under L2.
func Fig11(c Config) (*bench.Table, error) {
	imgs := c.Images()
	return bench.RunRange(imgs, c.ImageQuerySet(imgs), c.ImageL2(),
		ImageStructures(), ImageRadii, c.TreeSeeds, c.QueryWorkers, c.BuildWorkers)
}
