package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"reflect"
	"strings"

	"mvptree/internal/bench"
	"mvptree/internal/build"
	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/qexec"
)

// BatchBenchRounds is the number of measured passes over the query
// group per (structure, mode, batch-size) cell, after a warm-up pass
// that doubles as the result-identity check.
const BatchBenchRounds = 5

// BatchBenchQueries is the query-group size of the batchbench
// workload: the serving micro-batch regime the shared traversal
// targets (one collector flush of a loaded daemon).
const BatchBenchQueries = 64

// BatchBenchK is the kNN width of the study.
const BatchBenchK = 10

// BatchBenchSelectivity is the range-query selectivity target; the
// radius is calibrated from the dataset's own pairwise-distance
// distribution (bench.CalibrateRadius), so the workload keeps the same
// result density at any dimension.
const BatchBenchSelectivity = 0.02

// BatchBenchSizes are the shared-traversal batch sizes measured
// against the sequential (batch = 1) baseline.
var BatchBenchSizes = []int{8, 64}

// BatchBenchRow is one (structure, mode, batch-size) cell: wall time
// and distance charges per query, plus the speedup over the same
// (structure, mode) at batch size 1. Distance counts are byte-identical
// across batch sizes by the SearchBatch contract — the study verifies
// that in-line before trusting the timings — so the comparison axis is
// purely wall time.
type BatchBenchRow struct {
	Structure    string  `json:"structure"`
	Mode         string  `json:"mode"`
	BatchSize    int     `json:"batch_size"`
	NsPerQuery   float64 `json:"ns_per_query"`
	DistPerQuery float64 `json:"dist_per_query"`
	// Speedup is sequential ns-per-query divided by this row's; 1.0 on
	// the batch-size-1 rows by construction.
	Speedup float64 `json:"speedup"`
}

// BatchBenchReport is the artifact cmd/mvpbench -batchjson writes and
// `benchguard -mode batch` gates on.
type BatchBenchReport struct {
	N       int             `json:"n"`
	Dim     int             `json:"dim"`
	Queries int             `json:"queries"`
	Rounds  int             `json:"rounds"`
	K       int             `json:"k"`
	Radius  float64         `json:"radius"`
	Rows    []BatchBenchRow `json:"rows"`
}

// BatchBenchStudy measures shared-traversal batch execution against
// per-query execution over uniform L2 vectors: for the two structures
// implementing SearchBatch it answers one 64-query group sequentially
// and at each batch size, through the same qexec entry points serve
// uses. The warm-up pass cross-checks byte-identity (results and
// counter deltas) between every batched run and the sequential one, so
// a speedup can never come from answering a different query.
func BatchBenchStudy(c Config) (*BatchBenchReport, error) {
	dim := c.Dim
	if dim <= 0 {
		dim = 20
	}
	rng := rand.New(rand.NewPCG(c.DataSeed, 77))
	items := dataset.UniformVectors(rng, c.N, dim)
	queries := dataset.UniformQueries(rng, BatchBenchQueries, dim)
	radius, err := bench.CalibrateRadius(rng, items, metric.L2, BatchBenchSelectivity, 0)
	if err != nil {
		return nil, err
	}
	rep := &BatchBenchReport{
		N: c.N, Dim: dim, Queries: len(queries),
		Rounds: BatchBenchRounds, K: BatchBenchK, Radius: radius,
	}
	seed := c.TreeSeeds[0]
	structures := []bench.Structure[[]float64]{
		bench.MVPT[[]float64](3, 80, 5),
		bench.VPT[[]float64](3),
	}
	for _, st := range structures {
		counter := metric.NewCounter[[]float64](metric.L2)
		idx, _, err := st.Build(items, counter, build.Options{Seed: seed, Workers: c.BuildWorkers})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.Name, err)
		}
		if index.CapabilitiesOf[[]float64](idx).Batch == nil {
			return nil, fmt.Errorf("%s: structure does not implement SearchBatch", st.Name)
		}
		for _, mode := range []string{"range", "knn"} {
			var seqNs float64
			for _, b := range append([]int{1}, BatchBenchSizes...) {
				opts := qexec.Options{Workers: 1, Batch: b}
				row := BatchBenchRow{Structure: st.Name, Mode: mode, BatchSize: b}
				var ns, dist int64
				switch mode {
				case "range":
					// Warm-up + identity: the batched answer must equal the
					// sequential one item for item, at the same distance cost.
					counter.Reset()
					ref, _, _ := qexec.RunRange[[]float64](idx, queries, radius, qexec.Options{Workers: 1})
					refDist := counter.Count()
					counter.Reset()
					got, _, _ := qexec.RunRange[[]float64](idx, queries, radius, opts)
					if !reflect.DeepEqual(got, ref) || counter.Count() != refDist {
						return nil, fmt.Errorf("%s range B=%d: batched run diverged from sequential", st.Name, b)
					}
					ns, _, dist = measureN(counter, BatchBenchRounds, func() {
						qexec.RunRange[[]float64](idx, queries, radius, opts)
					})
				case "knn":
					counter.Reset()
					ref, _, _ := qexec.RunKNN[[]float64](idx, queries, BatchBenchK, qexec.Options{Workers: 1})
					refDist := counter.Count()
					counter.Reset()
					got, _, _ := qexec.RunKNN[[]float64](idx, queries, BatchBenchK, opts)
					if !reflect.DeepEqual(got, ref) || counter.Count() != refDist {
						return nil, fmt.Errorf("%s knn B=%d: batched run diverged from sequential", st.Name, b)
					}
					ns, _, dist = measureN(counter, BatchBenchRounds, func() {
						qexec.RunKNN[[]float64](idx, queries, BatchBenchK, opts)
					})
				}
				ops := int64(BatchBenchRounds * len(queries))
				row.NsPerQuery = float64(ns) / float64(ops)
				row.DistPerQuery = float64(dist) / float64(ops)
				if b == 1 {
					seqNs = row.NsPerQuery
					row.Speedup = 1
				} else if row.NsPerQuery > 0 {
					row.Speedup = seqNs / row.NsPerQuery
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// WriteBatchBench prints the study as a table grouped by structure and
// mode.
func WriteBatchBench(w io.Writer, rep *BatchBenchReport) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# shared-traversal batching: uniform vectors n=%d dim=%d, %d-query group x %d rounds, r=%.3f k=%d, 1 worker\n",
		rep.N, rep.Dim, rep.Queries, rep.Rounds, rep.Radius, rep.K)
	fmt.Fprintf(&sb, "%-12s %-6s %6s %14s %12s %9s\n",
		"structure", "mode", "batch", "ns/query", "dist/query", "speedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%-12s %-6s %6d %14.0f %12.1f %8.2fx\n",
			r.Structure, r.Mode, r.BatchSize, r.NsPerQuery, r.DistPerQuery, r.Speedup)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
