// Package bench is the experiment harness that regenerates the paper's
// evaluation (§5.2): it builds a set of index structures over a
// workload, runs a batch of range (or kNN) queries for every swept
// parameter value, and reports the average number of distance
// computations per query — the paper's cost measure — averaged over
// several construction seeds, exactly as the paper averages "4 different
// runs ... where a different seed is used in each run".
package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"

	"mvptree/internal/build"
	"mvptree/internal/index"
	"mvptree/internal/metric"
	"mvptree/internal/qexec"
)

// Structure names one index structure and knows how to build it over an
// item set with the shared construction options (seed and build-worker
// count); it reports the uniform construction Stats.
type Structure[T any] struct {
	Name  string
	Build func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error)
}

// Cell is one (sweep value, structure) measurement.
type Cell struct {
	// AvgDistComps is the average number of distance computations per
	// query — the paper's y-axis.
	AvgDistComps float64
	// AvgResults is the average result-set size, a sanity signal that
	// compared structures answered identically.
	AvgResults float64
	// BuildCost is the average construction cost in distance
	// computations across seeds.
	BuildCost float64
	// SeedStdDev is the standard deviation of the per-seed mean cost —
	// the sensitivity to the random vantage-point choice the paper
	// remarks on ("the random function that is used to pick vantage
	// points has a considerable effect").
	SeedStdDev float64
	// BuildWall is the average wall-clock construction time in seconds
	// across seeds — the quantity build workers trade against (the
	// distance-computation BuildCost is identical for every worker
	// count).
	BuildWall float64
}

// Table is the result of a sweep: rows are swept values (query radii or
// k), columns are structures.
type Table struct {
	// Label names the sweep parameter ("r" or "k").
	Label string
	// Values are the swept parameter values, one table row each.
	Values []float64
	// Structures are the column names in order.
	Structures []string
	// Cells is indexed [value][structure].
	Cells [][]Cell
}

// DefaultSeeds are the four construction seeds used throughout, mirroring
// the paper's four runs per configuration.
var DefaultSeeds = []uint64{101, 202, 303, 404}

// RunRange sweeps query radii: for every structure and every seed it
// builds the index once, then answers every query at every radius,
// counting distance computations per query. The optional workers
// arguments set the query-batch parallelism and the construction
// parallelism per (structure, seed) run — workers[0] is the query
// worker count, workers[1] the build worker count (both default 1,
// i.e. sequential). Neither changes any measured distance count: each
// query's cost is independent of its neighbors, and construction is
// deterministic in the build worker count.
func RunRange[T any](items, queries []T, distFn metric.DistanceFunc[T],
	structures []Structure[T], radii []float64, seeds []uint64, workers ...int) (*Table, error) {
	qw, bw := optWorkers(workers)
	return run(items, queries, distFn, structures, radii, seeds, qw, bw, "r",
		func(idx index.Index[T], qs []T, r float64, w int) []int {
			res, _, _ := qexec.RunRange(idx, qs, r, qexec.Options{Workers: w})
			return resultCounts(res)
		})
}

// RunKNN sweeps k values for k-nearest-neighbor queries. The optional
// workers arguments work as in RunRange.
func RunKNN[T any](items, queries []T, distFn metric.DistanceFunc[T],
	structures []Structure[T], ks []int, seeds []uint64, workers ...int) (*Table, error) {
	vals := make([]float64, len(ks))
	for i, k := range ks {
		vals[i] = float64(k)
	}
	qw, bw := optWorkers(workers)
	return run(items, queries, distFn, structures, vals, seeds, qw, bw, "k",
		func(idx index.Index[T], qs []T, k float64, w int) []int {
			res, _, _ := qexec.RunKNN(idx, qs, int(k), qexec.Options{Workers: w})
			return resultCounts(res)
		})
}

// optWorkers resolves the optional trailing worker arguments
// (query workers, then build workers); zero and negative values mean
// sequential.
func optWorkers(workers []int) (query, build int) {
	query, build = 1, 1
	if len(workers) > 0 && workers[0] > 1 {
		query = workers[0]
	}
	if len(workers) > 1 && workers[1] > 1 {
		build = workers[1]
	}
	return query, build
}

// resultCounts reduces per-query result sets to their sizes.
func resultCounts[R any](res []([]R)) []int {
	counts := make([]int, len(res))
	for i, r := range res {
		counts[i] = len(r)
	}
	return counts
}

func run[T any](items, queries []T, distFn metric.DistanceFunc[T],
	structures []Structure[T], values []float64, seeds []uint64, workers, buildWorkers int, label string,
	batch func(idx index.Index[T], qs []T, v float64, w int) []int) (*Table, error) {

	if len(structures) == 0 || len(values) == 0 {
		return nil, errors.New("bench: need at least one structure and one sweep value")
	}
	if len(queries) == 0 {
		return nil, errors.New("bench: need at least one query")
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	t := &Table{Label: label, Values: values}
	for _, s := range structures {
		t.Structures = append(t.Structures, s.Name)
	}
	t.Cells = make([][]Cell, len(values))
	for i := range t.Cells {
		t.Cells[i] = make([]Cell, len(structures))
	}

	// Every (structure, seed) run owns its counter and index, so runs
	// are independent; spread them over a bounded worker pool and merge
	// the partial sums in deterministic order afterwards.
	type job struct{ si, seedIdx int }
	jobs := make([]job, 0, len(structures)*len(seeds))
	for si := range structures {
		for seedIdx := range seeds {
			jobs = append(jobs, job{si, seedIdx})
		}
	}
	partial := make([][][]Cell, len(structures)) // [structure][seed][value]
	for si := range partial {
		partial[si] = make([][]Cell, len(seeds))
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := structures[j.si]
			counter := metric.NewCounter(distFn)
			idx, bstats, err := s.Build(items, counter, build.Options{Workers: buildWorkers, Seed: seeds[j.seedIdx]})
			if err != nil {
				errs[ji] = fmt.Errorf("bench: building %s: %w", s.Name, err)
				return
			}
			buildCost := float64(counter.Count())
			cells := make([]Cell, len(values))
			for vi, v := range values {
				cells[vi].BuildCost = buildCost
				cells[vi].BuildWall = bstats.Wall.Seconds()
				// The batch total is measured as one Counter delta: the
				// counter is atomic and per-query costs are independent,
				// so the sum equals the sequential per-query sum for any
				// worker count.
				counter.Reset()
				counts := batch(idx, queries, v, workers)
				cells[vi].AvgDistComps = float64(counter.Count())
				for _, n := range counts {
					cells[vi].AvgResults += float64(n)
				}
			}
			partial[j.si][j.seedIdx] = cells
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	norm := float64(len(seeds) * len(queries))
	for si := range structures {
		for seedIdx := range seeds {
			for vi := range values {
				cell := &t.Cells[vi][si]
				p := partial[si][seedIdx][vi]
				cell.BuildCost += p.BuildCost / float64(len(seeds))
				cell.BuildWall += p.BuildWall / float64(len(seeds))
				cell.AvgDistComps += p.AvgDistComps / norm
				cell.AvgResults += p.AvgResults / norm
			}
		}
		// Second pass: spread of the per-seed means around the overall
		// mean, the paper's seed-sensitivity.
		for vi := range values {
			cell := &t.Cells[vi][si]
			var ss float64
			for seedIdx := range seeds {
				mean := partial[si][seedIdx][vi].AvgDistComps / float64(len(queries))
				d := mean - cell.AvgDistComps
				ss += d * d
			}
			cell.SeedStdDev = math.Sqrt(ss / float64(len(seeds)))
		}
	}
	return t, nil
}

// Cell returns the measurement for a sweep value and structure name.
func (t *Table) Cell(value float64, name string) (Cell, error) {
	vi, si := -1, -1
	for i, v := range t.Values {
		if v == value {
			vi = i
		}
	}
	for i, s := range t.Structures {
		if s == name {
			si = i
		}
	}
	if vi < 0 || si < 0 {
		return Cell{}, fmt.Errorf("bench: no cell for %s=%g, structure %q", t.Label, value, name)
	}
	return t.Cells[vi][si], nil
}

// SavingsPercent reports, per sweep value, how many percent fewer
// distance computations structure a makes than structure b — the form in
// which the paper states every headline result ("mvp tree outperforms
// the vp-tree 20% to 80%").
func (t *Table) SavingsPercent(a, b string) ([]float64, error) {
	out := make([]float64, len(t.Values))
	for i, v := range t.Values {
		ca, err := t.Cell(v, a)
		if err != nil {
			return nil, err
		}
		cb, err := t.Cell(v, b)
		if err != nil {
			return nil, err
		}
		if cb.AvgDistComps == 0 {
			return nil, fmt.Errorf("bench: %q made zero distance computations at %s=%g", b, t.Label, v)
		}
		out[i] = 100 * (1 - ca.AvgDistComps/cb.AvgDistComps)
	}
	return out, nil
}

// WriteTo prints the table with one row per sweep value and one column
// per structure, matching the series the paper plots.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", t.Label)
	for _, s := range t.Structures {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteByte('\n')
	for vi, v := range t.Values {
		fmt.Fprintf(&sb, "%-10.4g", v)
		for si := range t.Structures {
			fmt.Fprintf(&sb, " %14.1f", t.Cells[vi][si].AvgDistComps)
		}
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteResultCounts prints average result-set sizes in the same layout,
// for cross-checking that structures agree.
func (t *Table) WriteResultCounts(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", t.Label)
	for _, s := range t.Structures {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteByte('\n')
	for vi, v := range t.Values {
		fmt.Fprintf(&sb, "%-10.4g", v)
		for si := range t.Structures {
			fmt.Fprintf(&sb, " %14.2f", t.Cells[vi][si].AvgResults)
		}
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// WriteBuildCosts prints average construction costs (distance
// computations, averaged over seeds) per structure — the preprocessing
// comparison the paper makes in §3.2/§4.2 (vp-tree O(n·log_m n), GNAT
// "more expensive", mvp-tree O(n·log_{m²} n)).
func (t *Table) WriteBuildCosts(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "build")
	for _, s := range t.Structures {
		fmt.Fprintf(&sb, " %14s", s)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-10s", "cost")
	for si := range t.Structures {
		fmt.Fprintf(&sb, " %14.0f", t.Cells[0][si].BuildCost)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-10s", "wall_s")
	for si := range t.Structures {
		fmt.Fprintf(&sb, " %14.4f", t.Cells[0][si].BuildWall)
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// BuildReport is the machine-readable form of one structure's
// construction measurements, averaged over seeds.
type BuildReport struct {
	Name       string  `json:"name"`
	BuildCost  float64 `json:"build_cost"`
	BuildWallS float64 `json:"build_wall_seconds"`
	SeedStdDev float64 `json:"seed_std_dev"`
}

// BuildReports extracts per-structure construction measurements from
// the table's first row (construction is per-structure, not per sweep
// value, so any row would do).
func (t *Table) BuildReports() []BuildReport {
	if len(t.Cells) == 0 {
		return nil
	}
	reports := make([]BuildReport, len(t.Structures))
	for si, name := range t.Structures {
		c := t.Cells[0][si]
		reports[si] = BuildReport{
			Name:       name,
			BuildCost:  c.BuildCost,
			BuildWallS: c.BuildWall,
			SeedStdDev: c.SeedStdDev,
		}
	}
	return reports
}

// WriteCSV prints the table as CSV (header row of structure names, one
// data row per sweep value) for consumption by plotting tools.
func (t *Table) WriteCSV(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Label)
	for _, s := range t.Structures {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s))
	}
	sb.WriteByte('\n')
	for vi, v := range t.Values {
		fmt.Fprintf(&sb, "%g", v)
		for si := range t.Structures {
			fmt.Fprintf(&sb, ",%g", t.Cells[vi][si].AvgDistComps)
		}
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// csvEscape quotes a field when it contains CSV metacharacters.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
