package bench

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"mvptree/internal/build"
	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

func smallWorkload() (items, queries [][]float64) {
	rng := rand.New(rand.NewPCG(111, 1))
	return dataset.UniformVectors(rng, 300, 6), dataset.UniformQueries(rng, 5, 6)
}

func TestRunRangeBasics(t *testing.T) {
	items, queries := smallWorkload()
	structures := []Structure[[]float64]{Linear[[]float64](), VPT[[]float64](2), MVPT[[]float64](2, 8, 3)}
	radii := []float64{0.2, 0.5}
	tbl, err := RunRange(items, queries, metric.L2, structures, radii, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 2 || len(tbl.Cells[0]) != 3 {
		t.Fatalf("table shape %dx%d", len(tbl.Cells), len(tbl.Cells[0]))
	}
	lin, err := tbl.Cell(0.2, "linear")
	if err != nil {
		t.Fatal(err)
	}
	if lin.AvgDistComps != 300 {
		t.Errorf("linear scan avg cost = %g, want exactly 300", lin.AvgDistComps)
	}
	if lin.BuildCost != 0 {
		t.Errorf("linear scan build cost = %g, want 0", lin.BuildCost)
	}
	// All structures must agree on result counts at every radius.
	for vi := range tbl.Values {
		base := tbl.Cells[vi][0].AvgResults
		for si := range tbl.Structures {
			if tbl.Cells[vi][si].AvgResults != base {
				t.Errorf("%s=%g: %s found %.2f results, linear found %.2f",
					tbl.Label, tbl.Values[vi], tbl.Structures[si], tbl.Cells[vi][si].AvgResults, base)
			}
		}
	}
}

func TestRunKNNBasics(t *testing.T) {
	items, queries := smallWorkload()
	structures := []Structure[[]float64]{Linear[[]float64](), MVPT[[]float64](3, 9, 4)}
	tbl, err := RunKNN(items, queries, metric.L2, structures, []int{1, 5}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	for vi, v := range tbl.Values {
		for si := range tbl.Structures {
			if got := tbl.Cells[vi][si].AvgResults; got != v {
				t.Errorf("k=%g: %s returned %.2f results", v, tbl.Structures[si], got)
			}
		}
	}
}

func TestSavingsPercent(t *testing.T) {
	items, queries := smallWorkload()
	structures := []Structure[[]float64]{Linear[[]float64](), MVPT[[]float64](3, 40, 4)}
	tbl, err := RunRange(items, queries, metric.L2, structures, []float64{0.3}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	sav, err := tbl.SavingsPercent("mvpt(3,40)", "linear")
	if err != nil {
		t.Fatal(err)
	}
	if sav[0] <= 0 || sav[0] >= 100 {
		t.Errorf("mvpt saves %.1f%% over linear; expected within (0, 100)", sav[0])
	}
	if _, err := tbl.SavingsPercent("nope", "linear"); err == nil {
		t.Error("unknown structure accepted")
	}
}

func TestTableWriters(t *testing.T) {
	items, queries := smallWorkload()
	tbl, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{VPT[[]float64](2)}, []float64{0.25}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tbl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vpt(2)") || !strings.Contains(out, "0.25") {
		t.Errorf("WriteTo output:\n%s", out)
	}
	sb.Reset()
	if _, err := tbl.WriteResultCounts(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vpt(2)") {
		t.Errorf("WriteResultCounts output:\n%s", sb.String())
	}
}

func TestRunValidation(t *testing.T) {
	items, queries := smallWorkload()
	if _, err := RunRange(items, queries, metric.L2, nil, []float64{1}, nil); err == nil {
		t.Error("no structures accepted")
	}
	if _, err := RunRange(items, nil, metric.L2,
		[]Structure[[]float64]{Linear[[]float64]()}, []float64{1}, nil); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{Linear[[]float64]()}, nil, nil); err == nil {
		t.Error("no sweep values accepted")
	}
}

func TestBuildErrorPropagates(t *testing.T) {
	items, queries := smallWorkload()
	failing := Structure[[]float64]{
		Name: "failing",
		Build: func(items [][]float64, dist *metric.Counter[[]float64], opts build.Options) (index.Index[[]float64], build.Stats, error) {
			return nil, build.Stats{}, errors.New("boom")
		},
	}
	if _, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{failing}, []float64{1}, nil); err == nil {
		t.Error("build error not propagated")
	}
}

func TestWriteCSV(t *testing.T) {
	items, queries := smallWorkload()
	tbl, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{VPT[[]float64](2), MVPT[[]float64](2, 8, 3)}, []float64{0.25, 0.5}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "r,vpt(2),\"mvpt(2,8)\"" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.25,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteBuildCosts(t *testing.T) {
	items, queries := smallWorkload()
	tbl, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{Linear[[]float64](), VPT[[]float64](2)}, []float64{0.25}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tbl.WriteBuildCosts(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vpt(2)") || !strings.Contains(sb.String(), "cost") {
		t.Errorf("WriteBuildCosts:\n%s", sb.String())
	}
}

func TestSeedStdDev(t *testing.T) {
	items, queries := smallWorkload()
	tbl, err := RunRange(items, queries, metric.L2,
		[]Structure[[]float64]{Linear[[]float64](), VPT[[]float64](2)},
		[]float64{0.3}, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := tbl.Cell(0.3, "linear")
	if err != nil {
		t.Fatal(err)
	}
	if lin.SeedStdDev != 0 {
		t.Errorf("linear scan seed stddev = %g; scans are seed-independent", lin.SeedStdDev)
	}
	vp, err := tbl.Cell(0.3, "vpt(2)")
	if err != nil {
		t.Fatal(err)
	}
	if vp.SeedStdDev <= 0 {
		t.Errorf("vp-tree seed stddev = %g; random vantage points must vary cost", vp.SeedStdDev)
	}
	if vp.SeedStdDev > vp.AvgDistComps {
		t.Errorf("seed stddev %g exceeds the mean %g", vp.SeedStdDev, vp.AvgDistComps)
	}
}

// TestWorkersDoNotChangeCounts is the harness-level determinism
// guarantee behind cmd/mvpbench -workers: evaluating the query batch in
// parallel must reproduce the sequential distance counts and result
// sizes exactly — parallelism trades wall-clock time only, never the
// paper's cost metric.
func TestWorkersDoNotChangeCounts(t *testing.T) {
	items, queries := smallWorkload()
	structures := []Structure[[]float64]{Linear[[]float64](), VPT[[]float64](2), MVPT[[]float64](2, 8, 3)}
	radii := []float64{0.2, 0.5}
	seeds := []uint64{1, 2}

	seq, err := RunRange(items, queries, metric.L2, structures, radii, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRange(items, queries, metric.L2, structures, radii, seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range seq.Values {
		for si := range seq.Structures {
			a, b := seq.Cells[vi][si], par.Cells[vi][si]
			// Wall-clock time is the one field parallelism may change.
			a.BuildWall, b.BuildWall = 0, 0
			if a != b {
				t.Errorf("%s=%g %s: workers=1 cell %+v, workers=8 cell %+v",
					seq.Label, seq.Values[vi], seq.Structures[si], a, b)
			}
		}
	}

	seqK, err := RunKNN(items, queries, metric.L2, structures, []int{3, 7}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parK, err := RunKNN(items, queries, metric.L2, structures, []int{3, 7}, seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range seqK.Values {
		for si := range seqK.Structures {
			a, b := seqK.Cells[vi][si], parK.Cells[vi][si]
			a.BuildWall, b.BuildWall = 0, 0
			if a != b {
				t.Errorf("k=%g %s: parallel KNN cell differs", seqK.Values[vi], seqK.Structures[si])
			}
		}
	}
}
