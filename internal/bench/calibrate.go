package bench

import (
	"errors"
	"math/rand/v2"

	"mvptree/internal/histogram"
	"mvptree/internal/metric"
)

// DefaultCalibrationPairs is the pairwise sample size CalibrateRadius
// uses: large enough that the empirical distance CDF is stable at the
// percent level, small enough to stay negligible next to index
// construction.
const DefaultCalibrationPairs = 20000

// CalibrateRadii derives query radii from the dataset's own distance
// distribution, the §5.1.B recipe for "meaningful tolerance factors":
// it samples pairwise distances (with replacement, pairs draws) into an
// internal/histogram, then returns for each target selectivity the
// distribution quantile at which a range query is expected to return
// that fraction of the dataset. A radius sweep calibrated this way
// transfers between workloads — r is no longer an absolute number that
// means "everything" on one dataset and "nothing" on another.
//
// The sampled histogram is returned too, so callers can report the
// distribution alongside the sweep (as the paper's Figures 4–7 do).
// Distances are computed directly through fn and deliberately bypass
// any metric.Counter: calibration is workload analysis, not query
// cost. Targets must lie in (0, 1]; items needs at least two entries;
// pairs <= 0 means DefaultCalibrationPairs.
func CalibrateRadii[T any](rng *rand.Rand, items []T, fn metric.DistanceFunc[T],
	targets []float64, pairs int) ([]float64, *histogram.Histogram, error) {
	if len(items) < 2 {
		return nil, nil, errors.New("bench: calibration needs at least two items")
	}
	if len(targets) == 0 {
		return nil, nil, errors.New("bench: calibration needs at least one target selectivity")
	}
	for _, t := range targets {
		if !(t > 0 && t <= 1) {
			return nil, nil, errors.New("bench: target selectivity must be in (0, 1]")
		}
	}
	if pairs <= 0 {
		pairs = DefaultCalibrationPairs
	}

	// Two passes over one reusable sample: the bucket width has to come
	// from the data (the histogram is fixed-width from zero), so draw
	// the distances first and size the buckets off the sample maximum.
	sample := make([]float64, 0, pairs)
	maxD := 0.0
	for k := 0; k < pairs; k++ {
		i := rng.IntN(len(items))
		j := rng.IntN(len(items))
		if i == j {
			k--
			continue
		}
		d := fn(items[i], items[j])
		sample = append(sample, d)
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		// Degenerate dataset (all items coincide): any radius returns
		// everything, zero is the only honest answer.
		out := make([]float64, len(targets))
		return out, histogram.New(1), nil
	}
	h := histogram.New(maxD / 512)
	for _, d := range sample {
		h.Add(d)
	}
	radii := make([]float64, len(targets))
	for i, t := range targets {
		radii[i] = h.Quantile(t)
	}
	return radii, h, nil
}

// CalibrateRadius is CalibrateRadii for a single target selectivity.
func CalibrateRadius[T any](rng *rand.Rand, items []T, fn metric.DistanceFunc[T],
	target float64, pairs int) (float64, error) {
	radii, _, err := CalibrateRadii(rng, items, fn, []float64{target}, pairs)
	if err != nil {
		return 0, err
	}
	return radii[0], nil
}
