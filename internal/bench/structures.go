package bench

import (
	"fmt"

	"mvptree/internal/balltree"
	"mvptree/internal/bktree"
	"mvptree/internal/build"
	"mvptree/internal/ghtree"
	"mvptree/internal/gmvp"
	"mvptree/internal/gnat"
	"mvptree/internal/index"
	"mvptree/internal/laesa"
	"mvptree/internal/linear"
	"mvptree/internal/metric"
	"mvptree/internal/mvp"
	"mvptree/internal/quant"
	"mvptree/internal/vptree"
)

// The constructors below adapt each index package to the harness and fix
// the naming convention the paper uses in its figures: vpt(m),
// mvpt(m,k).

// VPT returns a vp-tree structure of the given order, named vpt(m) as in
// the paper's figures.
func VPT[T any](order int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("vpt(%d)", order),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return vptree.NewWithStats(items, dist, vptree.Options{Build: opts, Order: order})
		},
	}
}

// MVPT returns an mvp-tree structure with m partitions per vantage
// point, leaf capacity k and path length p, named mvpt(m,k) as in the
// paper's figures (the paper suppresses p in the name since it is
// constant per figure).
func MVPT[T any](m, k, p int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("mvpt(%d,%d)", m, k),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return mvp.NewWithStats(items, dist, mvp.Options{Build: opts, Partitions: m, LeafCapacity: k, PathLength: p})
		},
	}
}

// MVPTQuantized is MVPT with the quantized lower-bound pre-filter
// armed in the given mode, named mvpt(m,k)+sq8 / +f32. Results are
// byte-identical to MVPT; the comparison axis is wall time.
func MVPTQuantized[T any](m, k, p int, mode quant.Mode) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("mvpt(%d,%d)+%s", m, k, mode),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return mvp.NewWithStats(items, dist, mvp.Options{
				Build: opts, Partitions: m, LeafCapacity: k, PathLength: p,
				Quantize: mode,
			})
		},
	}
}

// VPTQuantized is VPT with the quantized pre-filter armed, named
// vpt(m)+sq8 / +f32.
func VPTQuantized[T any](order int, mode quant.Mode) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("vpt(%d)+%s", order, mode),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return vptree.NewWithStats(items, dist, vptree.Options{Build: opts, Order: order, Quantize: mode})
		},
	}
}

// LinearQuantized is Linear with the quantized pre-filter armed, named
// linear+sq8 / +f32.
func LinearQuantized[T any](mode quant.Mode) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("linear+%s", mode),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			s := linear.New(items, dist)
			if err := s.EnableQuantize(mode); err != nil {
				return nil, build.Stats{}, err
			}
			return s, build.Stats{}, nil
		},
	}
}

// MVPTRandomSV2 is MVPT with the second vantage point chosen randomly
// from the outermost shell instead of farthest-first — the abl-sv2
// ablation.
func MVPTRandomSV2[T any](m, k, p int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("mvpt(%d,%d)-rnd2", m, k),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return mvp.NewWithStats(items, dist, mvp.Options{
				Build: opts, Partitions: m, LeafCapacity: k, PathLength: p,
				RandomSecondVantage: true,
			})
		},
	}
}

// GHT returns a gh-tree structure.
func GHT[T any](leafCapacity int) Structure[T] {
	return Structure[T]{
		Name: "ght",
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return ghtree.NewWithStats(items, dist, ghtree.Options{Build: opts, LeafCapacity: leafCapacity})
		},
	}
}

// GNAT returns a GNAT structure with the given degree.
func GNAT[T any](degree int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("gnat(%d)", degree),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return gnat.NewWithStats(items, dist, gnat.Options{Build: opts, Degree: degree})
		},
	}
}

// LAESA returns a pivot-table structure with the given pivot count.
func LAESA[T any](pivots int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("laesa(%d)", pivots),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return laesa.NewWithStats(items, dist, laesa.Options{Build: opts, Pivots: pivots})
		},
	}
}

// BKT returns a BK-tree structure (discrete metrics only).
func BKT[T any]() Structure[T] {
	return Structure[T]{
		Name: "bkt",
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return bktree.NewWithStats(items, dist, bktree.Options{Build: opts})
		},
	}
}

// Linear returns the brute-force baseline.
func Linear[T any]() Structure[T] {
	return Structure[T]{
		Name: "linear",
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return linear.New(items, dist), build.Stats{}, nil
		},
	}
}

// GMVPT returns a generalized mvp-tree with v vantage points per node,
// named gmvpt(v,m,k).
func GMVPT[T any](v, m, k, p int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("gmvpt(%d,%d,%d)", v, m, k),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return gmvp.NewWithStats(items, dist, gmvp.Options{
				Build: opts, Vantages: v, Partitions: m, LeafCapacity: k, PathLength: p,
			})
		},
	}
}

// dfsAdapter swaps a vp-tree's KNN for the [Chi94] depth-first variant.
type dfsAdapter[T any] struct{ *vptree.Tree[T] }

func (a dfsAdapter[T]) KNN(q T, k int) []index.Neighbor[T] {
	return a.Tree.KNNDepthFirst(q, k)
}

// VPTDepthFirst returns a vp-tree whose kNN queries use the
// decreasing-radius depth-first search of [Chi94] instead of the
// best-first traversal, named vpt(m)-dfs.
func VPTDepthFirst[T any](order int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("vpt(%d)-dfs", order),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			t, stats, err := vptree.NewWithStats(items, dist, vptree.Options{Build: opts, Order: order})
			if err != nil {
				return nil, build.Stats{}, err
			}
			return dfsAdapter[T]{t}, stats, nil
		},
	}
}

// BallTree returns the center/radius multi-way tree of [BK73]'s second
// method, named ball(fanout).
func BallTree[T any](fanout int) Structure[T] {
	return Structure[T]{
		Name: fmt.Sprintf("ball(%d)", fanout),
		Build: func(items []T, dist *metric.Counter[T], opts build.Options) (index.Index[T], build.Stats, error) {
			return balltree.NewWithStats(items, dist, balltree.Options{Build: opts, Fanout: fanout})
		},
	}
}
