package bench

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"mvptree/internal/build"
	"mvptree/internal/dataset"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// The tests below pin the PR's central equivalence claim across every
// structure the harness knows: attaching an early-abandoning distance
// kernel (the default — NewCounter discovers registered kernels) must
// change nothing observable. Results, per-query distance-counter
// deltas, and the per-query SearchStats breakdown are all compared
// against a twin index whose counter had the fast path detached with
// SetBounded(nil).

// canon returns an order-insensitive fingerprint of a range result set.
func canon[T any](items []T) []string {
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = fmt.Sprint(it)
	}
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariance builds the structure twice over the same items and
// seed — once with the counter's registered bounded kernel active, once
// with it detached — and requires bit-identical behavior on a grid of
// range and kNN queries.
//
// knnDeterministic relaxes the kNN cost comparison for structures whose
// best-first traversal order is not reproducible between runs even with
// one kernel (the BK-tree iterates a children map, so queue ties break
// in map order): neighbor distances must still match, but visit counts
// and stats may wobble.
func checkInvariance[T any](t *testing.T, s Structure[T], items, queries []T,
	distFn metric.DistanceFunc[T], radii []float64, ks []int, knnDeterministic bool) {
	t.Helper()
	opts := build.Options{Seed: 5}

	fast := metric.NewCounter(distFn)
	if fast.Bounded() == nil {
		t.Fatalf("%s: registry did not supply a bounded kernel for the metric", s.Name)
	}
	idxFast, _, err := s.Build(items, fast, opts)
	if err != nil {
		t.Fatalf("%s: build (bounded): %v", s.Name, err)
	}
	exact := metric.NewCounter(distFn)
	exact.SetBounded(nil)
	idxExact, _, err := s.Build(items, exact, opts)
	if err != nil {
		t.Fatalf("%s: build (exact): %v", s.Name, err)
	}
	if f, e := fast.Count(), exact.Count(); f != e {
		t.Errorf("%s: build cost differs: %d bounded vs %d exact", s.Name, f, e)
	}

	sFast, fastHasStats := idxFast.(index.StatsIndex[T])
	sExact, _ := idxExact.(index.StatsIndex[T])

	for qi, q := range queries {
		for _, r := range radii {
			f0, e0 := fast.Count(), exact.Count()
			resF := idxFast.Range(q, r)
			fd := fast.Count() - f0
			resE := idxExact.Range(q, r)
			ed := exact.Count() - e0
			if !equalStrings(canon(resF), canon(resE)) {
				t.Errorf("%s q%d r=%v: results differ: %d bounded vs %d exact",
					s.Name, qi, r, len(resF), len(resE))
			}
			if fd != ed {
				t.Errorf("%s q%d r=%v: distance count differs: %d bounded vs %d exact",
					s.Name, qi, r, fd, ed)
			}
			if fastHasStats {
				_, stF := sFast.RangeWithStats(q, r)
				_, stE := sExact.RangeWithStats(q, r)
				if stF != stE {
					t.Errorf("%s q%d r=%v: SearchStats differ:\nbounded %+v\nexact   %+v",
						s.Name, qi, r, stF, stE)
				}
			}
		}
		for _, k := range ks {
			f0, e0 := fast.Count(), exact.Count()
			nbF := idxFast.KNN(q, k)
			fd := fast.Count() - f0
			nbE := idxExact.KNN(q, k)
			ed := exact.Count() - e0
			if len(nbF) != len(nbE) {
				t.Fatalf("%s q%d k=%d: %d neighbors bounded vs %d exact", s.Name, qi, k, len(nbF), len(nbE))
			}
			for i := range nbF {
				if nbF[i].Dist != nbE[i].Dist {
					t.Errorf("%s q%d k=%d: neighbor %d distance differs: %v bounded vs %v exact",
						s.Name, qi, k, i, nbF[i].Dist, nbE[i].Dist)
					break
				}
				if knnDeterministic && fmt.Sprint(nbF[i].Item) != fmt.Sprint(nbE[i].Item) {
					t.Errorf("%s q%d k=%d: neighbor %d differs: (%v, %v) bounded vs (%v, %v) exact",
						s.Name, qi, k, i, nbF[i].Item, nbF[i].Dist, nbE[i].Item, nbE[i].Dist)
					break
				}
			}
			if !knnDeterministic {
				continue
			}
			if fd != ed {
				t.Errorf("%s q%d k=%d: distance count differs: %d bounded vs %d exact", s.Name, qi, k, fd, ed)
			}
			if fastHasStats {
				_, stF := sFast.KNNWithStats(q, k)
				_, stE := sExact.KNNWithStats(q, k)
				if stF != stE {
					t.Errorf("%s q%d k=%d: SearchStats differ:\nbounded %+v\nexact   %+v",
						s.Name, qi, k, stF, stE)
				}
			}
		}
	}
}

func TestBoundedKernelInvarianceVectors(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	items := dataset.UniformVectors(rng, 400, 6)
	queries := dataset.UniformQueries(rng, 6, 6)
	radii := []float64{0.05, 0.3, 0.8}
	ks := []int{1, 7}

	structures := []Structure[[]float64]{
		Linear[[]float64](),
		VPT[[]float64](2),
		VPT[[]float64](3),
		VPTDepthFirst[[]float64](2),
		MVPT[[]float64](2, 8, 3),
		MVPT[[]float64](3, 12, 4),
		MVPTRandomSV2[[]float64](3, 8, 3),
		GMVPT[[]float64](3, 2, 8, 3),
		GHT[[]float64](8),
		GNAT[[]float64](4),
		LAESA[[]float64](8),
		BallTree[[]float64](3),
	}
	for _, s := range structures {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checkInvariance(t, s, items, queries, metric.L2, radii, ks, true)
		})
	}
}

func TestBoundedKernelInvarianceStrings(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 3))
	items := dataset.Words(rng, 300, dataset.WordOptions{MisspellingsPer: 2})
	queries := dataset.SampleQueries(rng, items, 5)
	radii := []float64{1, 2, 3}
	ks := []int{1, 5}

	structures := []Structure[string]{
		Linear[string](),
		BKT[string](),
		VPT[string](2),
		MVPT[string](2, 6, 2),
		GHT[string](6),
	}
	for _, s := range structures {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checkInvariance(t, s, items, queries, metric.Edit, radii, ks, s.Name != "bkt")
		})
	}
}
