package bench

import (
	"math/rand/v2"
	"testing"

	"mvptree/internal/dataset"
	"mvptree/internal/metric"
)

// TestCalibrateRadiusHitsSelectivity checks the headline property: a
// range query at the calibrated radius returns roughly the target
// fraction of the dataset, measured by exhaustive scan over held-out
// query points.
func TestCalibrateRadiusHitsSelectivity(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 1))
	items := dataset.UniformVectors(rng, 3000, 10)
	queries := dataset.UniformQueries(rng, 200, 10)

	for _, target := range []float64{0.01, 0.05, 0.2} {
		r, err := CalibrateRadius(rng, items, metric.L2, target, 30000)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 {
			t.Fatalf("target %g: non-positive radius %g", target, r)
		}
		var hits int
		for _, q := range queries {
			for _, it := range items {
				if metric.L2(q, it) <= r {
					hits++
				}
			}
		}
		got := float64(hits) / float64(len(queries)*len(items))
		// Query points are drawn from the same distribution as items, so
		// the empirical selectivity should track the pairwise quantile;
		// allow generous slack for bucket resolution and sampling noise.
		if got < target/3 || got > target*3 {
			t.Errorf("target %g: calibrated radius %g yields selectivity %g", target, r, got)
		}
	}
}

// TestCalibrateRadiiMonotone pins that larger targets produce larger
// (or equal) radii and that the shared histogram is populated.
func TestCalibrateRadiiMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(52, 1))
	items := dataset.UniformVectors(rng, 1000, 6)
	targets := []float64{0.001, 0.01, 0.1, 0.5, 1}
	radii, h, err := CalibrateRadii(rng, items, metric.L2, targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != DefaultCalibrationPairs {
		t.Errorf("histogram recorded %d samples, want %d", h.Total(), DefaultCalibrationPairs)
	}
	for i := 1; i < len(radii); i++ {
		if radii[i] < radii[i-1] {
			t.Errorf("radii not monotone: %v", radii)
		}
	}
	if radii[len(radii)-1] < h.Max() {
		t.Errorf("selectivity-1 radius %g below sample max %g", radii[len(radii)-1], h.Max())
	}
}

// TestCalibrateRadiusErrors pins the input validation and the
// degenerate all-coincident dataset.
func TestCalibrateRadiusErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 1))
	items := dataset.UniformVectors(rng, 50, 4)
	if _, err := CalibrateRadius(rng, items[:1], metric.L2, 0.1, 100); err == nil {
		t.Error("single item: no error")
	}
	if _, err := CalibrateRadius(rng, items, metric.L2, 0, 100); err == nil {
		t.Error("zero selectivity: no error")
	}
	if _, err := CalibrateRadius(rng, items, metric.L2, 1.5, 100); err == nil {
		t.Error("selectivity > 1: no error")
	}
	same := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	r, err := CalibrateRadius(rng, same, metric.L2, 0.5, 100)
	if err != nil || r != 0 {
		t.Errorf("coincident items: r=%g err=%v, want 0, nil", r, err)
	}
}
