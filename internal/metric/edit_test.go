package metric

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEditKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"same", "same", 0},
		{"ab", "ba", 2}, // plain Levenshtein has no transposition
		{"book", "back", 2},
	}
	for _, c := range cases {
		if got := Edit(c.a, c.b); got != c.want {
			t.Errorf("Edit(%q, %q) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := Edit(c.b, c.a); got != c.want {
			t.Errorf("Edit(%q, %q) = %g, want %g (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEditAxioms(t *testing.T) {
	sample := []string{"", "a", "ab", "abc", "abd", "xabc", "hello", "help", "world", "word"}
	if err := CheckAxioms(Edit, sample, 0); err != nil {
		t.Error(err)
	}
}

func TestEditBounds(t *testing.T) {
	// Property: max(|a|,|b|) - common prefix matches cannot be beaten,
	// and the distance is always between abs(len diff) and max len.
	f := func(a, b string) bool {
		d := Edit(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= float64(lo) && d <= float64(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEditSingleOps(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const letters = "abcdefgh"
	for i := 0; i < 200; i++ {
		n := 1 + rng.IntN(12)
		s := make([]byte, n)
		for j := range s {
			s[j] = letters[rng.IntN(len(letters))]
		}
		orig := string(s)
		// One substitution with a guaranteed-different letter.
		pos := rng.IntN(n)
		sub := []byte(orig)
		sub[pos] = sub[pos]%8 + 'i' // maps a..h to distinct i..p
		if got := Edit(orig, string(sub)); got != 1 {
			t.Fatalf("Edit(%q, %q) = %g after one substitution, want 1", orig, sub, got)
		}
		// One deletion.
		del := orig[:pos] + orig[pos+1:]
		if got := Edit(orig, del); got != 1 {
			t.Fatalf("Edit(%q, %q) = %g after one deletion, want 1", orig, del, got)
		}
	}
}
