package metric

// Discrete returns the discrete (0/1) metric for any comparable type:
// 0 if the items are equal, 1 otherwise. It is the simplest metric and is
// used by tests to exercise index structures on degenerate distance
// distributions (every non-identical pair is equidistant).
func Discrete[T comparable]() DistanceFunc[T] {
	return func(a, b T) float64 {
		if a == b {
			return 0
		}
		return 1
	}
}
