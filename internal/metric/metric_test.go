package metric

import "testing"

func TestCounterCounts(t *testing.T) {
	c := NewCounter(L2)
	if c.Count() != 0 {
		t.Fatalf("fresh counter count = %d, want 0", c.Count())
	}
	a, b := []float64{0, 0}, []float64{3, 4}
	if got := c.Distance(a, b); got != 5 {
		t.Errorf("counted distance = %g, want 5", got)
	}
	c.Distance(a, a)
	c.Distance(b, b)
	if c.Count() != 3 {
		t.Errorf("count = %d, want 3", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("count after reset = %d, want 0", c.Count())
	}
}

func TestCounterFuncIsUncounted(t *testing.T) {
	c := NewCounter(L1)
	fn := c.Func()
	fn([]float64{0}, []float64{1})
	if c.Count() != 0 {
		t.Errorf("raw Func() call was counted: count = %d", c.Count())
	}
}

func TestDiscreteMetric(t *testing.T) {
	d := Discrete[int]()
	if d(3, 3) != 0 || d(3, 4) != 1 {
		t.Error("discrete metric wrong on ints")
	}
	s := Discrete[string]()
	if s("x", "x") != 0 || s("x", "y") != 1 {
		t.Error("discrete metric wrong on strings")
	}
	if err := CheckAxioms(d, []int{1, 2, 3, 4, 1}, 0); err != nil {
		t.Error(err)
	}
}

func TestCheckAxiomsDetectsViolations(t *testing.T) {
	sample := []int{0, 1, 2, 3}
	bad := map[string]DistanceFunc[int]{
		"identity": func(a, b int) float64 {
			return 1 // d(x,x) != 0
		},
		"symmetry": func(a, b int) float64 {
			if a == b {
				return 0
			}
			return float64(a - b + 10) // asymmetric
		},
		"positivity": func(a, b int) float64 {
			if a == b {
				return 0
			}
			return -1
		},
		"triangle": func(a, b int) float64 {
			if a == b {
				return 0
			}
			d := a - b
			if d < 0 {
				d = -d
			}
			return float64(d * d) // squared distance violates triangle
		},
	}
	for axiom, fn := range bad {
		err := CheckAxioms(fn, sample, 0)
		if err == nil {
			t.Errorf("CheckAxioms missed %s violation", axiom)
			continue
		}
		ae, ok := err.(*AxiomError)
		if !ok {
			t.Errorf("error is %T, want *AxiomError", err)
			continue
		}
		if ae.Axiom != axiom {
			t.Errorf("CheckAxioms reported %q for a %s violation", ae.Axiom, axiom)
		}
	}
}

func TestCheckAxiomsEmptyAndSingle(t *testing.T) {
	if err := CheckAxioms(Discrete[int](), nil, 0); err != nil {
		t.Errorf("empty sample: %v", err)
	}
	if err := CheckAxioms(Discrete[int](), []int{7}, 0); err != nil {
		t.Errorf("single sample: %v", err)
	}
}
