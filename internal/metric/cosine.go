package metric

import "math"

// Cosine is the exact "cosine distance" metric for unit vectors: the
// Euclidean distance between L2-normalized inputs. Cosine similarity
// itself (1 − cosθ) is not a metric — it violates the triangle
// inequality — but on unit vectors it is a monotone function of the
// chord length this function computes:
//
//	‖a − b‖² = 2 − 2·cosθ   ⟹   1 − cosθ = Cosine(a, b)² / 2
//
// so range and kNN queries under Cosine rank and select exactly as a
// cosine-similarity search would, while the index gets a true metric
// (it is literally L2 restricted to the unit sphere). Inputs must be
// unit vectors — run a dataset and its queries through NormalizeL2 (or
// NormalizeL2Set) first; the function does not re-normalize, so the
// normalization cost is paid once per vector, not per distance.
//
// Cosine shares every L2 fast path: NewCounter serves DistanceUpTo
// through the early-abandoning L2UpTo kernel, and the quantized
// pre-filter uses the L2 lower-bound shape (QuantL2), so
// embedding-style workloads get the whole hot-path stack for free.
// For non-normalized inputs that should compare by direction only, use
// Angular instead, which is scale-invariant but has no early-abandoning
// or quantized fast path.
func Cosine(a, b []float64) float64 { return L2(a, b) }

// NormalizeL2 scales v to unit Euclidean length in place and returns
// it, the preparation step for the Cosine metric. It panics on zero
// vectors and vectors with non-finite coordinates, which have no
// direction to preserve.
func NormalizeL2(v []float64) []float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 || math.IsInf(n, 1) || math.IsNaN(n) {
		panic("metric: NormalizeL2 requires a non-zero finite vector")
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// NormalizeL2Set normalizes every vector of a dataset in place and
// returns the slice, so items and queries can be prepared for Cosine
// in one call.
func NormalizeL2Set(vs [][]float64) [][]float64 {
	for _, v := range vs {
		NormalizeL2(v)
	}
	return vs
}
