package metric

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestBlockKernelsBitIdenticalToUpTo pins the stronger-than-contract
// property the batched traversals rely on: every out[j] a block kernel
// produces — abandoned or not — is bit-identical to what the one-to-one
// bounded kernel returns for the same (query, point, bound) triple,
// because both walk the same element order and take the same per-chunk
// abandonment decisions.
func TestBlockKernelsBitIdenticalToUpTo(t *testing.T) {
	kernels := []struct {
		name  string
		upTo  BoundedDistanceFunc[[]float64]
		block BlockDistanceFunc[[]float64]
	}{
		{"L1", L1UpTo, L1Block},
		{"L2", L2UpTo, L2Block},
		{"LInf", LInfUpTo, LInfBlock},
	}
	rng := rand.New(rand.NewPCG(7, 11))
	dims := []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 20, 33}
	blockSizes := []int{1, 2, 5, 63, 64, 65, 130}
	for _, k := range kernels {
		for _, dim := range dims {
			for _, nq := range blockSizes {
				p := randVec(rng, dim)
				qs := make([][]float64, nq)
				for j := range qs {
					qs[j] = randVec(rng, dim)
				}
				// Reference distances to craft adversarial bounds.
				ref := make([]float64, nq)
				inf := math.Inf(1)
				for j := range qs {
					ref[j] = k.upTo(qs[j], p, inf)
				}
				bounds := make([]float64, nq)
				out := make([]float64, nq)

				// nil bounds: exact everywhere.
				k.block(p, qs, nil, out)
				for j := range qs {
					if out[j] != ref[j] {
						t.Fatalf("%s dim=%d B=%d nil bounds: out[%d]=%v want %v", k.name, dim, nq, j, out[j], ref[j])
					}
				}

				// A spread of per-query bounds around each true distance,
				// cycling through degenerate and near-threshold values so
				// some queries in every block abandon and others survive.
				for trial := 0; trial < 4; trial++ {
					for j := range qs {
						sched := boundsFor(ref[j])
						bounds[j] = sched[(j+trial*3)%len(sched)]
					}
					k.block(p, qs, bounds, out)
					for j := range qs {
						want := k.upTo(qs[j], p, bounds[j])
						if out[j] != want && !(math.IsNaN(out[j]) && math.IsNaN(want)) {
							t.Fatalf("%s dim=%d B=%d trial=%d: out[%d]=%v want %v (bound %v)",
								k.name, dim, nq, trial, j, out[j], want, bounds[j])
						}
					}
				}
			}
		}
	}
}

// TestBlockKernelLengthChecks pins the panic behaviour on malformed
// slice shapes.
func TestBlockKernelLengthChecks(t *testing.T) {
	p := []float64{1, 2}
	qs := [][]float64{{3, 4}, {5, 6}}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("short out", func() { L2Block(p, qs, nil, make([]float64, 1)) })
	mustPanic("short bounds", func() { L2Block(p, qs, make([]float64, 1), make([]float64, 2)) })
	mustPanic("dim mismatch", func() { L2Block(p, [][]float64{{1, 2, 3}}, nil, make([]float64, 1)) })
}

// TestCounterBlockDispatch covers the Counter integration: registry
// probing, counting, the fallback loop for unregistered metrics (in the
// sequential query-first orientation), and SetBlock/SetBounded
// interplay.
func TestCounterBlockDispatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	p := randVec(rng, 12)
	qs := make([][]float64, 10)
	for j := range qs {
		qs[j] = randVec(rng, 12)
	}
	out := make([]float64, len(qs))

	t.Run("registered", func(t *testing.T) {
		c := NewCounter(L2)
		if c.Block() == nil {
			t.Fatal("NewCounter(L2) did not probe the block registry")
		}
		c.DistanceBlock(p, qs, out)
		if got := c.Count(); got != int64(len(qs)) {
			t.Fatalf("DistanceBlock counted %d, want %d", got, len(qs))
		}
		for j := range qs {
			if want := L2(qs[j], p); out[j] != want {
				t.Fatalf("out[%d] = %v, want %v", j, out[j], want)
			}
		}
		bounds := make([]float64, len(qs))
		for j := range bounds {
			bounds[j] = out[j] * 0.5
		}
		c.Reset()
		c.DistanceBlockUpTo(p, qs, bounds, out)
		if got := c.Count(); got != int64(len(qs)) {
			t.Fatalf("DistanceBlockUpTo counted %d, want %d", got, len(qs))
		}
		for j := range qs {
			if want := L2UpTo(qs[j], p, bounds[j]); out[j] != want {
				t.Fatalf("bounded out[%d] = %v, want %v", j, out[j], want)
			}
		}
	})

	t.Run("cosine aliases L2Block", func(t *testing.T) {
		if NewCounter(Cosine).Block() == nil {
			t.Fatal("NewCounter(Cosine) did not pick up the L2 block kernel")
		}
	})

	t.Run("fallback orientation", func(t *testing.T) {
		// A deliberately orientation-asymmetric closure: the fallback
		// must call kernel(query, point), matching sequential leaf scans.
		asym := func(a, b []float64) float64 {
			return a[0]*1000 + b[0]
		}
		c := NewCounter(asym)
		if c.Block() != nil {
			t.Fatal("closure metric unexpectedly found in block registry")
		}
		c.DistanceBlock(p, qs, out)
		if got := c.Count(); got != int64(len(qs)) {
			t.Fatalf("fallback DistanceBlock counted %d, want %d", got, len(qs))
		}
		for j := range qs {
			if want := asym(qs[j], p); out[j] != want {
				t.Fatalf("fallback out[%d] = %v, want %v (query-first orientation)", j, out[j], want)
			}
		}
	})

	t.Run("fallback honours SetBounded", func(t *testing.T) {
		exact := func(a, b []float64) float64 { return L1(a, b) }
		c := NewCounter(exact)
		c.SetBounded(L1UpTo)
		bounds := make([]float64, len(qs))
		for j := range bounds {
			bounds[j] = 0.5
		}
		c.DistanceBlockUpTo(p, qs, bounds, out)
		for j := range qs {
			if want := L1UpTo(qs[j], p, bounds[j]); out[j] != want {
				t.Fatalf("out[%d] = %v, want bounded-kernel value %v", j, out[j], want)
			}
		}
	})

	t.Run("SetBlock override and detach", func(t *testing.T) {
		exact := func(a, b []float64) float64 { return L1(a, b) }
		c := NewCounter(exact)
		c.SetBounded(L1UpTo)
		c.SetBlock(L1Block)
		c.DistanceBlock(p, qs, out)
		for j := range qs {
			if want := L1(qs[j], p); out[j] != want {
				t.Fatalf("SetBlock out[%d] = %v, want %v", j, out[j], want)
			}
		}
		c.SetBlock(nil)
		if c.Block() != nil {
			t.Fatal("SetBlock(nil) did not detach")
		}
		c.DistanceBlock(p, qs, out) // falls back to the loop
		for j := range qs {
			if want := L1(qs[j], p); out[j] != want {
				t.Fatalf("detached out[%d] = %v, want %v", j, out[j], want)
			}
		}
	})

	t.Run("string metric fallback", func(t *testing.T) {
		c := NewCounter(Edit)
		words := []string{"kitten", "sitting", "", "block"}
		sout := make([]float64, len(words))
		c.DistanceBlock("mitten", words, sout)
		for j, w := range words {
			if want := Edit(w, "mitten"); sout[j] != want {
				t.Fatalf("edit out[%d] = %v, want %v", j, sout[j], want)
			}
		}
	})
}
