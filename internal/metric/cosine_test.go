package metric

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestCosineAxioms validates the chord metric over a sample of
// normalized vectors — the domain Cosine is specified on.
func TestCosineAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(131, 1))
	sample := make([][]float64, 14)
	for i := range sample {
		sample[i] = NormalizeL2(randVec(rng, 6))
	}
	if err := CheckAxioms(Cosine, sample, 1e-12); err != nil {
		t.Error(err)
	}
}

// TestCosineMatchesAngularRanking pins the reason Cosine exists: on
// unit vectors it is a monotone function of the angle, so pairwise
// comparisons — and therefore range/kNN selections — agree with
// Angular exactly.
func TestCosineMatchesAngularRanking(t *testing.T) {
	rng := rand.New(rand.NewPCG(132, 1))
	vecs := make([][]float64, 30)
	for i := range vecs {
		vecs[i] = NormalizeL2(randVec(rng, 5))
	}
	q := NormalizeL2(randVec(rng, 5))
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			ca, cb := Cosine(q, vecs[i]), Cosine(q, vecs[j])
			aa, ab := Angular(q, vecs[i]), Angular(q, vecs[j])
			if (ca < cb) != (aa < ab) && ca != cb && aa != ab {
				t.Fatalf("ranking disagrees: Cosine %g vs %g, Angular %g vs %g", ca, cb, aa, ab)
			}
		}
	}
	// And the closed-form relation 1 − cosθ = Cosine²/2 holds.
	for _, v := range vecs {
		var dot float64
		for k := range q {
			dot += q[k] * v[k]
		}
		c := Cosine(q, v)
		if got, want := c*c/2, 1-dot; math.Abs(got-want) > 1e-12 {
			t.Fatalf("chord identity violated: Cosine²/2 = %g, 1−cosθ = %g", got, want)
		}
	}
}

// TestNormalizeL2 pins normalization semantics including the panics.
func TestNormalizeL2(t *testing.T) {
	v := NormalizeL2([]float64{3, 4})
	if !almostEqual(v[0], 0.6, 1e-15) || !almostEqual(v[1], 0.8, 1e-15) {
		t.Fatalf("NormalizeL2([3 4]) = %v", v)
	}
	set := NormalizeL2Set([][]float64{{2, 0}, {0, -5}})
	if set[0][0] != 1 || set[1][1] != -1 {
		t.Fatalf("NormalizeL2Set = %v", set)
	}
	for _, bad := range [][]float64{{0, 0}, {math.NaN(), 1}, {math.Inf(1), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalizeL2(%v) did not panic", bad)
				}
			}()
			NormalizeL2(bad)
		}()
	}
}

// TestAngularUpToIdentity pins that the bounded Angular kernel is the
// exact kernel bit for bit: the angle admits no partial-sum abandon, so
// registering it only removes the registry probe miss, never changes a
// value.
func TestAngularUpToIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(133, 1))
	for i := 0; i < 200; i++ {
		a, b := randVec(rng, 7), randVec(rng, 7)
		for _, bound := range []float64{0, 0.5, 2, math.Inf(1)} {
			if got, want := AngularUpTo(a, b, bound), Angular(a, b); got != want {
				t.Fatalf("AngularUpTo(bound=%g) = %g, Angular = %g", bound, got, want)
			}
		}
	}
}
