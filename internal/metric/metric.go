// Package metric defines metric distance functions for similarity search
// and the instrumentation used throughout this repository to count how
// many times a distance function is invoked.
//
// A metric distance function d satisfies, for all x, y, z:
//
//	d(x, y) == d(y, x)                  (symmetry)
//	0 < d(x, y) < +Inf  for x != y      (positivity)
//	d(x, x) == 0                        (identity)
//	d(x, y) <= d(x, z) + d(z, y)        (triangle inequality)
//
// Distance-based index structures rely only on these axioms; they never
// inspect coordinates. Because the paper's cost model is "number of
// distance computations per query", every index in this repository calls
// the metric exclusively through a Counter.
package metric

import "sync/atomic"

// DistanceFunc computes the distance between two items of type T. It must
// satisfy the metric axioms documented in the package comment for the
// index structures built on top of it to return correct results.
type DistanceFunc[T any] func(a, b T) float64

// Counter wraps a DistanceFunc and counts invocations. It is the cost
// meter used by every index structure and benchmark in this repository.
//
// Counter is safe for concurrent use: the count is a single atomic
// word, so queries sharing one index (and therefore one Counter) may
// run on any number of goroutines, provided the wrapped DistanceFunc is
// itself safe for concurrent calls (all built-in metrics are). Note the
// count is shared across every goroutine using the Counter; to attribute
// distance computations to one query while others are in flight, use the
// per-query SearchStats variants (RangeWithStats, KNNWithStats) instead
// of Count deltas.
type Counter[T any] struct {
	fn    DistanceFunc[T]
	count atomic.Int64
}

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistanceFunc[T]) *Counter[T] {
	return &Counter[T]{fn: fn}
}

// Distance computes fn(a, b) and increments the invocation count.
func (c *Counter[T]) Distance(a, b T) float64 {
	c.count.Add(1)
	return c.fn(a, b)
}

// Count reports the number of Distance calls since the last Reset.
func (c *Counter[T]) Count() int64 { return c.count.Load() }

// Add records n distance computations performed outside Distance — used
// by parallel construction, which evaluates the raw function on worker
// goroutines and settles the count once afterwards.
func (c *Counter[T]) Add(n int64) { c.count.Add(n) }

// Reset sets the invocation count back to zero.
func (c *Counter[T]) Reset() { c.count.Store(0) }

// Func returns the wrapped distance function, uncounted.
func (c *Counter[T]) Func() DistanceFunc[T] { return c.fn }
