// Package metric defines metric distance functions for similarity search
// and the instrumentation used throughout this repository to count how
// many times a distance function is invoked.
//
// A metric distance function d satisfies, for all x, y, z:
//
//	d(x, y) == d(y, x)                  (symmetry)
//	0 < d(x, y) < +Inf  for x != y      (positivity)
//	d(x, x) == 0                        (identity)
//	d(x, y) <= d(x, z) + d(z, y)        (triangle inequality)
//
// Distance-based index structures rely only on these axioms; they never
// inspect coordinates. Because the paper's cost model is "number of
// distance computations per query", every index in this repository calls
// the metric exclusively through a Counter.
package metric

// DistanceFunc computes the distance between two items of type T. It must
// satisfy the metric axioms documented in the package comment for the
// index structures built on top of it to return correct results.
type DistanceFunc[T any] func(a, b T) float64

// Counter wraps a DistanceFunc and counts invocations. It is the cost
// meter used by every index structure and benchmark in this repository.
//
// Counter is not safe for concurrent use; each index owns its own
// Counter and searches on one index must not run concurrently when
// counts are being read.
type Counter[T any] struct {
	fn    DistanceFunc[T]
	count int64
}

// NewCounter returns a Counter wrapping fn.
func NewCounter[T any](fn DistanceFunc[T]) *Counter[T] {
	return &Counter[T]{fn: fn}
}

// Distance computes fn(a, b) and increments the invocation count.
func (c *Counter[T]) Distance(a, b T) float64 {
	c.count++
	return c.fn(a, b)
}

// Count reports the number of Distance calls since the last Reset.
func (c *Counter[T]) Count() int64 { return c.count }

// Add records n distance computations performed outside Distance — used
// by parallel construction, which evaluates the raw function on worker
// goroutines and settles the count once afterwards.
func (c *Counter[T]) Add(n int64) { c.count += n }

// Reset sets the invocation count back to zero.
func (c *Counter[T]) Reset() { c.count = 0 }

// Func returns the wrapped distance function, uncounted.
func (c *Counter[T]) Func() DistanceFunc[T] { return c.fn }
