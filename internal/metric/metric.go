// Package metric defines metric distance functions for similarity search
// and the instrumentation used throughout this repository to count how
// many times a distance function is invoked.
//
// A metric distance function d satisfies, for all x, y, z:
//
//	d(x, y) == d(y, x)                  (symmetry)
//	0 < d(x, y) < +Inf  for x != y      (positivity)
//	d(x, x) == 0                        (identity)
//	d(x, y) <= d(x, z) + d(z, y)        (triangle inequality)
//
// Distance-based index structures rely only on these axioms; they never
// inspect coordinates. Because the paper's cost model is "number of
// distance computations per query", every index in this repository calls
// the metric exclusively through a Counter.
package metric

import (
	"math"
	"sync/atomic"
)

// DistanceFunc computes the distance between two items of type T. It must
// satisfy the metric axioms documented in the package comment for the
// index structures built on top of it to return correct results.
type DistanceFunc[T any] func(a, b T) float64

// Counter wraps a DistanceFunc and counts invocations. It is the cost
// meter used by every index structure and benchmark in this repository.
//
// Counter is safe for concurrent use: the count is a single atomic
// word, so queries sharing one index (and therefore one Counter) may
// run on any number of goroutines, provided the wrapped DistanceFunc is
// itself safe for concurrent calls (all built-in metrics are). Note the
// count is shared across every goroutine using the Counter; to attribute
// distance computations to one query while others are in flight, use the
// per-query SearchStats variants (RangeWithStats, KNNWithStats) instead
// of Count deltas.
type Counter[T any] struct {
	fn       DistanceFunc[T]
	bounded  BoundedDistanceFunc[T]
	fallback BoundedDistanceFunc[T] // fn ignoring the bound; built once
	block    BlockDistanceFunc[T]
	blockFB  BlockDistanceFunc[T] // loop over Kernel(); built once
	quant    QuantKind
	count    atomic.Int64
}

// NewCounter returns a Counter wrapping fn. If fn is a top-level
// function with a registered early-abandoning counterpart (see
// RegisterBounded), the Counter picks it up automatically and serves
// DistanceUpTo through it; otherwise DistanceUpTo falls back to the
// exact kernel. Use SetBounded to attach a fast path to a closure.
// The quantized lower-bound shape (RegisterQuantized) is probed the
// same way and reported by QuantKind.
func NewCounter[T any](fn DistanceFunc[T]) *Counter[T] {
	c := &Counter[T]{fn: fn, bounded: lookupBounded(fn), block: lookupBlock(fn), quant: lookupQuantized(fn)}
	if fn != nil {
		c.fallback = func(a, b T, _ float64) float64 { return fn(a, b) }
		// The block fallback loops the one-to-one kernel with the query as
		// the first argument — the orientation every sequential leaf scan
		// and vantage evaluation uses — so batched and per-query paths
		// agree bit-for-bit even for metrics whose float rounding is not
		// orientation-symmetric. It reads c.bounded at call time, so a
		// later SetBounded is honoured.
		c.blockFB = func(p T, qs []T, bounds, out []float64) {
			checkBlockLens(qs, bounds, out)
			k := c.Kernel()
			if bounds == nil {
				inf := math.Inf(1)
				for j, q := range qs {
					out[j] = k(q, p, inf)
				}
				return
			}
			for j, q := range qs {
				out[j] = k(q, p, bounds[j])
			}
		}
	}
	return c
}

// Distance computes fn(a, b) and increments the invocation count.
func (c *Counter[T]) Distance(a, b T) float64 {
	c.count.Add(1)
	return c.fn(a, b)
}

// DistanceUpTo computes the distance between a and b with permission to
// abandon early once the result is known to exceed bound. The return
// value obeys the BoundedDistanceFunc contract: if it is ≤ bound it is
// exactly Distance(a, b); if it is > bound then Distance(a, b) would
// also be > bound (but the value itself may understate it). Each call
// counts as one distance computation regardless of abandonment, so cost
// accounting is unchanged by the fast path. When no bounded kernel is
// attached this is exactly Distance.
func (c *Counter[T]) DistanceUpTo(a, b T, bound float64) float64 {
	c.count.Add(1)
	if c.bounded != nil {
		return c.bounded(a, b, bound)
	}
	return c.fn(a, b)
}

// SetBounded attaches (or, with nil, detaches) an early-abandoning fast
// path for the wrapped distance function, overriding whatever NewCounter
// discovered in the registry. fn must satisfy the BoundedDistanceFunc
// contract with respect to the wrapped exact kernel. This is the hook
// for closure-built metrics (Lp, WeightedLp, Scaled), which cannot be
// registered globally. SetBounded is not synchronized with in-flight
// queries; attach fast paths before serving.
func (c *Counter[T]) SetBounded(fn BoundedDistanceFunc[T]) { c.bounded = fn }

// Bounded returns the attached early-abandoning fast path, or nil.
func (c *Counter[T]) Bounded() BoundedDistanceFunc[T] { return c.bounded }

// Count reports the number of Distance calls since the last Reset.
func (c *Counter[T]) Count() int64 { return c.count.Load() }

// Add records n distance computations performed outside Distance — used
// by parallel construction, which evaluates the raw function on worker
// goroutines and settles the count once afterwards.
func (c *Counter[T]) Add(n int64) { c.count.Add(n) }

// Reset sets the invocation count back to zero.
func (c *Counter[T]) Reset() { c.count.Store(0) }

// Func returns the wrapped distance function, uncounted.
func (c *Counter[T]) Func() DistanceFunc[T] { return c.fn }

// DistanceBlock computes the distance between p and every query in qs,
// writing d(p, qs[j]) into out[j] exactly, and counts len(qs) distance
// computations — the same total as len(qs) Distance calls. When the
// wrapped function has a blocked kernel (RegisterBlock / SetBlock) the
// data vector is streamed once against the whole resident block;
// otherwise a loop over the one-to-one kernel produces identical
// values.
func (c *Counter[T]) DistanceBlock(p T, qs []T, out []float64) {
	c.count.Add(int64(len(qs)))
	c.BlockKernel()(p, qs, nil, out)
}

// DistanceBlockUpTo is DistanceBlock with a per-query abandonment
// threshold: each out[j] obeys the BoundedDistanceFunc contract with
// respect to bounds[j] (see BlockDistanceFunc). Every query counts as
// one distance computation regardless of abandonment, so cost
// accounting matches len(qs) DistanceUpTo calls exactly.
func (c *Counter[T]) DistanceBlockUpTo(p T, qs []T, bounds, out []float64) {
	c.count.Add(int64(len(qs)))
	c.BlockKernel()(p, qs, bounds, out)
}

// SetBlock attaches (or, with nil, detaches) a blocked one-to-many
// kernel, overriding whatever NewCounter discovered in the registry.
// fn must satisfy the BlockDistanceFunc contract with respect to the
// wrapped exact kernel. This is the hook for closure-built metrics,
// which cannot be registered globally. Like SetBounded, it is not
// synchronized with in-flight queries; attach fast paths before
// serving.
func (c *Counter[T]) SetBlock(fn BlockDistanceFunc[T]) { c.block = fn }

// Block returns the attached blocked kernel, or nil.
func (c *Counter[T]) Block() BlockDistanceFunc[T] { return c.block }

// BlockKernel returns the uncounted function DistanceBlock dispatches
// to: the attached blocked kernel, or a cached wrapper that loops the
// one-to-one Kernel over the block. Hot loops may call it directly and
// settle the count with Add(n·B), exactly as with Kernel.
func (c *Counter[T]) BlockKernel() BlockDistanceFunc[T] {
	if c.block != nil {
		return c.block
	}
	return c.blockFB
}

// Kernel returns the uncounted function DistanceUpTo dispatches to: the
// attached early-abandoning kernel, or a cached wrapper that ignores
// the bound and computes exactly. Hot loops that measure many distances
// against thresholds may call it directly and settle the batch with
// Add(n), paying one atomic update per batch instead of per distance;
// the final count is identical to calling DistanceUpTo n times.
func (c *Counter[T]) Kernel() BoundedDistanceFunc[T] {
	if c.bounded != nil {
		return c.bounded
	}
	return c.fallback
}
