package metric

import (
	"math"
	"sort"
)

// Angular returns the angle in radians between two non-zero vectors:
// arccos of their cosine similarity. On unit vectors (or, generally, on
// rays through the origin) it is a metric — the spherical geodesic
// distance — which makes it the correct way to use "cosine similarity"
// with distance-based indexes: 1−cos itself violates the triangle
// inequality, the angle does not.
//
// Angular is scale-invariant, so for non-normalized inputs it is a
// pseudometric: distinct parallel vectors are at distance 0. That
// coarsens results (parallel items become interchangeable) but never
// breaks index correctness. It panics on zero vectors, which have no
// direction.
func Angular(a, b []float64) float64 {
	checkLen(a, b)
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		panic("metric: Angular is undefined for zero vectors")
	}
	cos := dot / math.Sqrt(na*nb)
	// Clamp rounding noise outside [-1, 1] before arccos.
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}

// Jaccard returns the Jaccard distance 1 − |A∩B| / |A∪B| between two
// sets represented as sorted, duplicate-free string slices (use
// NormalizeSet to prepare arbitrary slices). It is a metric on sets;
// the distance of two empty sets is 0. Typical uses are shingled
// documents and tag sets.
func Jaccard(a, b []string) float64 {
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		union++
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union += len(a) - i + len(b) - j
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// NormalizeSet sorts and deduplicates a string slice in place, returning
// the set form Jaccard expects.
func NormalizeSet(s []string) []string {
	if len(s) < 2 {
		return s
	}
	sort.Strings(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
