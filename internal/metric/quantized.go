package metric

import (
	"reflect"
	"sync"
)

// QuantKind names the aggregation shape of a vector metric, which is
// all the quantized pre-filter layer (internal/quant) needs to build a
// guaranteed lower-bound kernel over a compressed companion
// representation: per-dimension interval distances are summed (L1),
// summed in squared space (L2) or maxed (LInf). It is the quantized
// analogue of the bounded-kernel registry — NewCounter probes it the
// same way it probes RegisterBounded — but where a bounded kernel
// replaces the exact computation, a QuantKind only licenses a cheap
// pre-filter whose survivors still pay the exact kernel.
type QuantKind uint8

const (
	// QuantNone marks a metric with no quantized lower-bound shape;
	// indexes leave the pre-filter off.
	QuantNone QuantKind = iota
	// QuantL1 sums per-dimension lower bounds.
	QuantL1
	// QuantL2 sums squared per-dimension lower bounds and compares
	// against the squared threshold.
	QuantL2
	// QuantLInf takes the maximum per-dimension lower bound.
	QuantLInf
)

func (k QuantKind) String() string {
	switch k {
	case QuantNone:
		return "none"
	case QuantL1:
		return "l1"
	case QuantL2:
		return "l2"
	case QuantLInf:
		return "linf"
	default:
		return "quantkind(?)"
	}
}

// quantRegistry maps the code pointer of a registered exact kernel to
// its QuantKind, mirroring boundedRegistry. Only top-level functions
// may be registered (closures share code pointers); use
// Counter.SetQuantKind for closure-built metrics.
var quantRegistry sync.Map // uintptr → QuantKind

// RegisterQuantized declares that the top-level distance function exact
// aggregates per-dimension contributions with the given QuantKind, so
// the quantized pre-filter (internal/quant) can serve a guaranteed
// lower bound for it. The declaration is a contract: for []float64
// vectors a and b, exact(a, b) must be ≥ the interval lower bound the
// kind implies (true for L1/L2/LInf themselves and for any metric
// equal to one of them, such as Cosine = L2 on unit vectors).
// Registering a kind that overstates the metric silently corrupts
// query results. Do not register closures.
func RegisterQuantized[T any](exact DistanceFunc[T], kind QuantKind) {
	if exact == nil {
		panic("metric: RegisterQuantized requires a non-nil function")
	}
	quantRegistry.Store(reflect.ValueOf(exact).Pointer(), kind)
}

// lookupQuantized returns the registered QuantKind for fn, or QuantNone.
func lookupQuantized[T any](fn DistanceFunc[T]) QuantKind {
	if fn == nil {
		return QuantNone
	}
	v, ok := quantRegistry.Load(reflect.ValueOf(fn).Pointer())
	if !ok {
		return QuantNone
	}
	k, _ := v.(QuantKind)
	return k
}

// QuantKind reports the quantized lower-bound shape of the wrapped
// metric (QuantNone when the metric has none). Index structures probe
// this before building a quantized companion arena.
func (c *Counter[T]) QuantKind() QuantKind { return c.quant }

// SetQuantKind overrides the QuantKind NewCounter discovered in the
// registry — the hook for closure-built metrics that are known to be
// one of the registered shapes. The same contract as RegisterQuantized
// applies. Not synchronized with in-flight queries; set before
// building quantized arenas.
func (c *Counter[T]) SetQuantKind(k QuantKind) { c.quant = k }

func init() {
	RegisterQuantized[[]float64](L1, QuantL1)
	RegisterQuantized[[]float64](L2, QuantL2)
	RegisterQuantized[[]float64](LInf, QuantLInf)
	// Cosine is L2 on unit vectors, so the L2 lower bound serves it.
	RegisterQuantized[[]float64](Cosine, QuantL2)
}
