package metric

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

// checkContract asserts the BoundedDistanceFunc contract for one call:
// a return ≤ bound must equal the exact kernel bit-for-bit, and a
// return > bound must only ever happen when the exact kernel also
// exceeds the bound.
func checkContract(t *testing.T, name string, exact, got, bound float64) {
	t.Helper()
	if got <= bound {
		if got != exact {
			t.Fatalf("%s: bounded returned %v (≤ bound %v) but exact kernel returns %v", name, got, bound, exact)
		}
	} else if exact <= bound {
		t.Fatalf("%s: bounded abandoned with %v but exact distance %v is within bound %v", name, got, exact, bound)
	}
}

// boundsFor returns the adversarial bound schedule for a pair with
// exact distance d: the degenerate bounds, the distance itself and its
// floating-point neighbours, and a spread of fractions around it.
func boundsFor(d float64) []float64 {
	return []float64{
		math.Inf(1), 0,
		d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)),
		d / 2, d * 0.9, d * 0.99, d * 1.01, d * 1.1, d * 2,
	}
}

func TestBoundedVectorKernelsAgreeWithExact(t *testing.T) {
	kernels := []struct {
		name    string
		exact   DistanceFunc[[]float64]
		bounded BoundedDistanceFunc[[]float64]
	}{
		{"L1", L1, L1UpTo},
		{"L2", L2, L2UpTo},
		{"LInf", LInf, LInfUpTo},
		{"Canberra", Canberra, CanberraUpTo},
		{"Lp(3)", Lp(3), LpUpTo(3)},
		{"Lp(1.5)", Lp(1.5), LpUpTo(1.5)},
	}
	w := []float64{0.5, 2, 1, 3, 0.25, 1, 1, 2, 0.75, 1.5, 1, 1, 2, 1, 0.5, 1, 1, 1, 2, 1}
	kernels = append(kernels,
		struct {
			name    string
			exact   DistanceFunc[[]float64]
			bounded BoundedDistanceFunc[[]float64]
		}{"WeightedLp(2.5)", WeightedLp(2.5, w), WeightedLpUpTo(2.5, w)},
		struct {
			name    string
			exact   DistanceFunc[[]float64]
			bounded BoundedDistanceFunc[[]float64]
		}{"WeightedLp(Inf)", WeightedLp(math.Inf(1), w), WeightedLpUpTo(math.Inf(1), w)},
	)

	rng := rand.New(rand.NewPCG(41, 7))
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			for trial := 0; trial < 400; trial++ {
				a := make([]float64, len(w))
				b := make([]float64, len(w))
				for i := range a {
					a[i] = rng.Float64()*2 - 1
					b[i] = rng.Float64()*2 - 1
				}
				if trial%5 == 0 {
					// Near-identical pair: distance concentrated in the
					// last dimension, the worst case for abandonment.
					copy(b, a)
					b[len(b)-1] += rng.Float64() * 0.01
				}
				exact := k.exact(a, b)
				for _, bound := range boundsFor(exact) {
					checkContract(t, k.name, exact, k.bounded(a, b, bound), bound)
				}
				for i := 0; i < 4; i++ {
					bound := rng.Float64() * exact * 2
					checkContract(t, k.name, exact, k.bounded(a, b, bound), bound)
				}
			}
		})
	}
}

// TestL2UpToSqrtBoundary drives the squared-space comparison through
// the rounding regime where fl(partial) exceeds fl(bound²) while
// fl(√partial) still equals the bound — the case the sqrt verification
// step exists for.
func TestL2UpToSqrtBoundary(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 19))
	for trial := 0; trial < 5000; trial++ {
		dim := 1 + rng.IntN(24)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = a[i] + (rng.Float64()-0.5)*1e-3
		}
		exact := L2(a, b)
		// Bounds straddling the exact value at ulp resolution.
		for _, bound := range []float64{
			exact,
			math.Nextafter(exact, 0),
			math.Nextafter(math.Nextafter(exact, 0), 0),
			math.Nextafter(exact, math.Inf(1)),
		} {
			checkContract(t, "L2", exact, L2UpTo(a, b, bound), bound)
		}
	}
}

func TestBoundedStringKernelsAgreeWithExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 23))
	alphabet := "abcde"
	randWord := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.IntN(len(alphabet))])
		}
		return sb.String()
	}
	kernels := []struct {
		name    string
		exact   DistanceFunc[string]
		bounded BoundedDistanceFunc[string]
	}{
		{"Edit", Edit, EditUpTo},
		{"Hamming", Hamming, HammingUpTo},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			for trial := 0; trial < 2000; trial++ {
				a := randWord(rng.IntN(20))
				b := randWord(rng.IntN(20))
				if trial%4 == 0 {
					// Mutate a into b so distances are small and the
					// threshold band actually gets exercised.
					rb := []byte(a)
					for i := range rb {
						if rng.IntN(6) == 0 {
							rb[i] = alphabet[rng.IntN(len(alphabet))]
						}
					}
					b = string(rb)
				}
				exact := k.exact(a, b)
				bounds := []float64{math.Inf(1), 0, exact, exact - 0.5, exact + 0.5,
					exact - 1, exact + 1, float64(rng.IntN(22)), 2.5}
				for _, bound := range bounds {
					checkContract(t, k.name, exact, k.bounded(a, b, bound), bound)
				}
			}
		})
	}
}

func FuzzEditUpTo(f *testing.F) {
	f.Add("kitten", "sitting", 2.0)
	f.Add("", "abc", 0.0)
	f.Add("abcdefgh", "abcdefgh", 1.0)
	f.Add("aaaa", "bbbb", 3.5)
	f.Fuzz(func(t *testing.T, a, b string, bound float64) {
		if len(a) > 256 || len(b) > 256 {
			return
		}
		if math.IsNaN(bound) {
			return
		}
		exact := Edit(a, b)
		got := EditUpTo(a, b, bound)
		if got <= bound && got != exact {
			t.Fatalf("EditUpTo(%q, %q, %v) = %v within bound but exact = %v", a, b, bound, got, exact)
		}
		if got > bound && exact <= bound {
			t.Fatalf("EditUpTo(%q, %q, %v) abandoned (%v) but exact = %v is within bound", a, b, bound, got, exact)
		}
	})
}

func FuzzL2UpTo(f *testing.F) {
	f.Add(0.1, 0.2, 0.3, 0.4, 0.25)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1, bound float64) {
		for _, v := range []float64{a0, a1, b0, b1, bound} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		a := []float64{a0, a1}
		b := []float64{b0, b1}
		exact := L2(a, b)
		got := L2UpTo(a, b, math.Abs(bound))
		bnd := math.Abs(bound)
		if got <= bnd && got != exact {
			t.Fatalf("L2UpTo within bound %v returned %v, exact %v", bnd, got, exact)
		}
		if got > bnd && exact <= bnd {
			t.Fatalf("L2UpTo abandoned (%v) but exact %v ≤ bound %v", got, exact, bnd)
		}
	})
}

func TestCounterProbesBoundedRegistry(t *testing.T) {
	c := NewCounter(L2)
	if c.Bounded() == nil {
		t.Fatal("NewCounter(L2) did not pick up the registered bounded kernel")
	}
	a := []float64{0, 0, 0}
	b := []float64{3, 4, 12}
	if got := c.DistanceUpTo(a, b, math.Inf(1)); got != 13 {
		t.Fatalf("DistanceUpTo with +Inf bound = %v, want 13", got)
	}
	if got := c.DistanceUpTo(a, b, 1); got <= 1 {
		t.Fatalf("DistanceUpTo should certify > bound, got %v", got)
	}
	if c.Count() != 2 {
		t.Fatalf("DistanceUpTo must count like Distance: count = %d, want 2", c.Count())
	}

	// A closure has no registry entry and must fall back to exact.
	closure := func(a, b []float64) float64 { return L2(a, b) }
	cc := NewCounter(closure)
	if cc.Bounded() != nil {
		t.Fatal("closure unexpectedly matched the bounded registry")
	}
	if got := cc.DistanceUpTo(a, b, 1); got != 13 {
		t.Fatalf("fallback DistanceUpTo = %v, want exact 13", got)
	}
	cc.SetBounded(L2UpTo)
	// Eight dimensions with all the mass in the first unrolled chunk:
	// the kernel abandons at the chunk boundary with √169 = 13, visibly
	// different from the exact √194 ≈ 13.93.
	la := []float64{0, 0, 0, 0, 0, 0, 0, 0}
	lb := []float64{3, 4, 12, 0, 5, 0, 0, 0}
	exactLong := L2(la, lb)
	if got := cc.DistanceUpTo(la, lb, 1); got <= 1 || got == exactLong {
		t.Fatalf("SetBounded fast path not used: got %v (exact %v)", got, exactLong)
	}
	cc.SetBounded(nil)
	if got := cc.DistanceUpTo(la, lb, 1); got != exactLong {
		t.Fatalf("SetBounded(nil) should restore exact fallback, got %v", got)
	}
}

func TestLpSpecializesToFastKernels(t *testing.T) {
	// Behaviour: identical to L1/L2 on random input (the generic pow
	// loop would differ in the last ulp for L2 on most inputs, so exact
	// equality over many trials is strong evidence of specialization)…
	rng := rand.New(rand.NewPCG(77, 3))
	lp1, lp2 := Lp(1), Lp(2)
	for trial := 0; trial < 200; trial++ {
		a := make([]float64, 16)
		b := make([]float64, 16)
		for i := range a {
			a[i] = rng.Float64() * 10
			b[i] = rng.Float64() * 10
		}
		if lp1(a, b) != L1(a, b) {
			t.Fatalf("Lp(1) diverges from L1")
		}
		if lp2(a, b) != L2(a, b) {
			t.Fatalf("Lp(2) diverges from L2")
		}
	}
	// …and, decisively: the returned functions carry L1/L2's registered
	// bounded kernels, which only top-level functions can.
	if NewCounter(lp1).Bounded() == nil {
		t.Fatal("Lp(1) did not return the registered L1 kernel")
	}
	if NewCounter(lp2).Bounded() == nil {
		t.Fatal("Lp(2) did not return the registered L2 kernel")
	}
	if NewCounter(Lp(math.Inf(1))).Bounded() == nil {
		t.Fatal("Lp(+Inf) did not return the registered LInf kernel")
	}
}

func TestLpUpToSpecializes(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := LpUpTo(1)(a, b, math.Inf(1)); got != 7 {
		t.Fatalf("LpUpTo(1) = %v, want 7", got)
	}
	if got := LpUpTo(2)(a, b, math.Inf(1)); got != 5 {
		t.Fatalf("LpUpTo(2) = %v, want 5", got)
	}
	if got := LpUpTo(math.Inf(1))(a, b, math.Inf(1)); got != 4 {
		t.Fatalf("LpUpTo(Inf) = %v, want 4", got)
	}
}
