package metric

// Edit returns the Levenshtein edit distance between two strings: the
// minimum number of single-character insertions, deletions and
// substitutions needed to turn a into b. Edit distance is a metric and is
// the canonical example of a non-spatial metric domain in the paper
// (§3.1, text databases). Distances are always non-negative integers,
// which also makes Edit suitable for the discrete-distance BK-tree.
//
// The strings are compared byte-wise; for the ASCII corpora used in this
// repository that coincides with character-wise comparison.
func Edit(a, b string) float64 {
	if a == b {
		return 0
	}
	// Ensure b is the shorter string so the DP rows stay small.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return float64(len(a))
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution or match
			if d := prev[j] + 1; d < m { // deletion from a
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insertion into a
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(b)])
}
