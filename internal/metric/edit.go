package metric

// Edit returns the Levenshtein edit distance between two strings: the
// minimum number of single-character insertions, deletions and
// substitutions needed to turn a into b. Edit distance is a metric and is
// the canonical example of a non-spatial metric domain in the paper
// (§3.1, text databases). Distances are always non-negative integers,
// which also makes Edit suitable for the discrete-distance BK-tree.
//
// The strings are compared byte-wise; for the ASCII corpora used in this
// repository that coincides with character-wise comparison.
func Edit(a, b string) float64 {
	if a == b {
		return 0
	}
	// Ensure b is the shorter string so the DP rows stay small.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return float64(len(a))
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution or match
			if d := prev[j] + 1; d < m { // deletion from a
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insertion into a
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(b)])
}

// EditUpTo is the early-abandoning (banded) Levenshtein distance. With
// halfwidth k = ⌊bound⌋ only DP cells within k of the diagonal can hold
// a value ≤ k, so the band suffices to decide whether the true distance
// is within bound; cells outside it act as +∞. When the band result
// exceeds k it may overestimate the true distance, but then the true
// distance also exceeds k ≥ nothing more is claimed than "> bound",
// which is exactly the BoundedDistanceFunc contract.
func EditUpTo(a, b string, bound float64) float64 {
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return float64(len(a))
	}
	if bound < 0 {
		bound = 0
	}
	var k int
	if float64(len(a)+len(b)) <= bound {
		// The band covers the whole table; the banded DP degenerates to
		// the full DP, so just run the exact kernel.
		return Edit(a, b)
	}
	k = int(bound)
	if len(a)-len(b) > k {
		// At least len(a)-len(b) insertions are unavoidable, and that
		// alone already exceeds the bound.
		return float64(len(a) - len(b))
	}
	// Banded two-row DP over columns j ∈ [i-k, i+k] clipped to [0, len(b)].
	// big is the +∞ sentinel for cells outside the band; it is chosen so
	// additions cannot overflow.
	const big = 1 << 30
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b) && j <= k; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
			cur[0] = i
		}
		hi := i + k
		if hi > len(b) {
			hi = len(b)
		}
		if lo > hi {
			return float64(k + 1)
		}
		ca := a[i-1]
		rowMin := big
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if j == i+k {
				// prev[j] is outside the band for row i-1.
			} else if d := prev[j] + 1; d < m {
				m = d
			}
			if j == lo && lo == i-k {
				// cur[j-1] is outside the band for row i.
			} else if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > k {
			// Every in-band cell exceeds k and values are monotone down
			// the table, so the true distance exceeds the bound.
			return float64(rowMin)
		}
		prev, cur = cur, prev
	}
	// A result ≤ k is exact; a result > k may be a band overestimate but
	// then the true distance is also > k ≥ ⌊bound⌋, i.e. > bound for the
	// integer-valued edit distance.
	return float64(prev[len(b)])
}
