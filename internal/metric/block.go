package metric

import (
	"math"
	"reflect"
	"sync"
)

// BlockDistanceFunc is the blocked one-to-many form of a DistanceFunc:
// it evaluates one point p against a resident block of queries qs,
// writing d(p, qs[j]) into out[j]. bounds carries an optional per-query
// abandonment threshold (nil means every query is computed exactly).
// Each out[j] obeys the BoundedDistanceFunc contract with respect to
// bounds[j]:
//
//	out[j] <= bounds[j]  ⟹  out[j] is exactly the exact kernel's value
//	out[j] >  bounds[j]  ⟹  the exact kernel's value is also > bounds[j]
//
// The payoff over calling a one-to-one kernel in a loop is memory
// traffic: the block kernels below stream the shared vector p once and
// evaluate each loaded element against every still-live query, so a
// batch of B queries reads the data vector one time instead of B times.
// Per-query accumulation stays in the exact element-at-a-time order of
// the one-to-one kernels, so every out[j] — including abandoned ones —
// is bit-identical to what L1UpTo/L2UpTo/LInfUpTo(qs[j], p, bounds[j])
// returns, and traversal decisions built on either path agree exactly.
//
// len(out) must equal len(qs), and bounds must be nil or the same
// length. Kernels panic on length mismatches, mirroring the one-to-one
// kernels' checkLen.
type BlockDistanceFunc[T any] func(p T, qs []T, bounds []float64, out []float64)

// blockRegistry maps the code pointer of a registered exact kernel to
// its blocked counterpart, exactly as boundedRegistry does for the
// early-abandoning one-to-one fast paths.
var blockRegistry sync.Map // uintptr → BlockDistanceFunc[X] (as any)

// RegisterBlock associates block as the blocked one-to-many kernel of
// the top-level distance function exact. Counters created by NewCounter
// over exact answer DistanceBlock/DistanceBlockUpTo through it. The two
// functions must satisfy the BlockDistanceFunc contract; violating it
// silently corrupts batched query results. Do not register closures —
// every closure from one function literal shares a code pointer (use
// Counter.SetBlock for those).
func RegisterBlock[T any](exact DistanceFunc[T], block BlockDistanceFunc[T]) {
	if exact == nil || block == nil {
		panic("metric: RegisterBlock requires non-nil functions")
	}
	blockRegistry.Store(reflect.ValueOf(exact).Pointer(), block)
}

// lookupBlock returns the registered blocked kernel for fn, or nil.
func lookupBlock[T any](fn DistanceFunc[T]) BlockDistanceFunc[T] {
	if fn == nil {
		return nil
	}
	v, ok := blockRegistry.Load(reflect.ValueOf(fn).Pointer())
	if !ok {
		return nil
	}
	b, _ := v.(BlockDistanceFunc[T])
	return b
}

func init() {
	RegisterBlock[[]float64](L1, L1Block)
	RegisterBlock[[]float64](L2, L2Block)
	RegisterBlock[[]float64](LInf, LInfBlock)
	// Cosine is exactly L2 on its (unit-vector) domain, so the L2 block
	// kernel is its blocked counterpart — same reasoning as the
	// RegisterBounded(Cosine, L2UpTo) entry.
	RegisterBlock[[]float64](Cosine, L2Block)
}

// checkBlockLens validates the slice-length invariants shared by every
// block kernel.
func checkBlockLens[T any](qs []T, bounds, out []float64) {
	if len(out) != len(qs) {
		panic("metric: block output length does not match query count")
	}
	if bounds != nil && len(bounds) != len(qs) {
		panic("metric: block bounds length does not match query count")
	}
}

// The blocked kernels below are query-major: each runs the exact
// one-to-one early-abandoning loop per query with the shared vector p
// as the second argument, so p is loaded from memory once and stays
// cache-resident across all B inner scans (at leaf-vector sizes it is a
// handful of cache lines). An element-major shape with per-element live
// masks was tried and rejected: it trades the tight two-slice inner
// loop — which the compiler keeps in registers with bounds checks
// hoisted — for scattered per-element accesses across B query vectors
// plus mask bookkeeping, and measures ~2x slower per distance at
// typical dimensions. Query-major keeps per-distance cost identical to
// the sequential path; the batch's win is that p (the streamed leaf
// arena or node vantage) is read once instead of B times, and that the
// caller settles counting once per block. Bit-identity with
// UpTo(qs[j], p, bounds[j]) is by construction: it is the same code.

// L1Block is the blocked Manhattan kernel: L1UpTo per query against the
// resident p.
func L1Block(p []float64, qs [][]float64, bounds, out []float64) {
	checkBlockLens(qs, bounds, out)
	for j := range qs {
		b := math.Inf(1)
		if bounds != nil {
			b = bounds[j]
		}
		out[j] = L1UpTo(qs[j], p, b)
	}
}

// L2Block is the blocked Euclidean kernel: L2UpTo per query against the
// resident p.
func L2Block(p []float64, qs [][]float64, bounds, out []float64) {
	checkBlockLens(qs, bounds, out)
	for j := range qs {
		b := math.Inf(1)
		if bounds != nil {
			b = bounds[j]
		}
		out[j] = L2UpTo(qs[j], p, b)
	}
}

// LInfBlock is the blocked Chebyshev kernel: LInfUpTo per query against
// the resident p.
func LInfBlock(p []float64, qs [][]float64, bounds, out []float64) {
	checkBlockLens(qs, bounds, out)
	for j := range qs {
		b := math.Inf(1)
		if bounds != nil {
			b = bounds[j]
		}
		out[j] = LInfUpTo(qs[j], p, b)
	}
}
