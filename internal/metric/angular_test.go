package metric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAngularKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 0},
		{[]float64{1, 0}, []float64{0, 1}, math.Pi / 2},
		{[]float64{1, 0}, []float64{-1, 0}, math.Pi},
		{[]float64{1, 0}, []float64{2, 0}, 0}, // scale-invariant
		{[]float64{1, 1}, []float64{1, 0}, math.Pi / 4},
	}
	for _, c := range cases {
		if got := Angular(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Angular(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestAngularZeroVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Angular on zero vector did not panic")
		}
	}()
	Angular([]float64{0, 0}, []float64{1, 0})
}

func TestAngularAxiomsOnSphere(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 1))
	sample := make([][]float64, 12)
	for i := range sample {
		v := randVec(rng, 6)
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] /= norm
		}
		sample[i] = v
	}
	if err := CheckAxioms(Angular, sample, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestAngularClampsRounding(t *testing.T) {
	// Parallel vectors whose dot product rounds above 1 must yield 0,
	// not NaN.
	a := []float64{0.1, 0.1, 0.1}
	if got := Angular(a, a); got != 0 || math.IsNaN(got) {
		t.Errorf("Angular(a, a) = %g", got)
	}
}

func TestJaccardKnownValues(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{[]string{"a", "b"}, []string{"a", "b"}, 0},
		{[]string{"a", "b"}, []string{"b", "c"}, 1 - 1.0/3},
		{[]string{"a"}, []string{"b"}, 1},
		{[]string{"a", "b", "c", "d"}, []string{"c", "d", "e"}, 1 - 2.0/5},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Jaccard(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardAxioms(t *testing.T) {
	sample := [][]string{
		nil,
		{"a"},
		{"a", "b"},
		{"b", "c", "d"},
		{"a", "b", "c", "d"},
		{"e"},
		{"a", "e"},
	}
	if err := CheckAxioms(Jaccard, sample, 1e-12); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSet(t *testing.T) {
	got := NormalizeSet([]string{"c", "a", "b", "a", "c", "c"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("NormalizeSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeSet = %v", got)
		}
	}
	if out := NormalizeSet(nil); out != nil {
		t.Errorf("NormalizeSet(nil) = %v", out)
	}
}

func TestJaccardBoundsQuick(t *testing.T) {
	f := func(a, b []string) bool {
		d := Jaccard(NormalizeSet(a), NormalizeSet(b))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
