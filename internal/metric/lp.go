package metric

import "math"

// L1 returns the Manhattan (city block) distance between two vectors.
// It panics if the vectors have different lengths.
func L1(a, b []float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	var s float64
	// Unrolled four-wide in the element-at-a-time accumulation order, so
	// the result is bit-for-bit what the plain loop computes.
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += math.Abs(a[i] - b[i])
		s += math.Abs(a[i+1] - b[i+1])
		s += math.Abs(a[i+2] - b[i+2])
		s += math.Abs(a[i+3] - b[i+3])
	}
	for ; i < len(a); i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// L2 returns the Euclidean distance between two vectors.
// It panics if the vectors have different lengths.
func L2(a, b []float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	var s float64
	// Unrolled four-wide in the element-at-a-time accumulation order, so
	// the result is bit-for-bit what the plain loop computes.
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// LInf returns the Chebyshev (maximum) distance between two vectors.
// It panics if the vectors have different lengths.
func LInf(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > s {
			s = d
		}
	}
	return s
}

// Lp returns the Minkowski distance of order p as a DistanceFunc.
// p must be >= 1 for the result to be a metric; Lp panics otherwise.
// Lp(1), Lp(2) and Lp(+Inf) return the specialized L1, L2 and LInf
// kernels, which skip the generic math.Pow loop and carry registered
// early-abandoning fast paths.
func Lp(p float64) DistanceFunc[[]float64] {
	if p < 1 {
		panic("metric: Lp requires p >= 1")
	}
	if math.IsInf(p, 1) {
		return LInf
	}
	switch p {
	case 1:
		return L1
	case 2:
		return L2
	}
	return func(a, b []float64) float64 {
		checkLen(a, b)
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// WeightedLp returns a weighted Minkowski distance of order p, where the
// absolute difference at dimension i is multiplied by w[i] before
// accumulation. All weights must be positive and p >= 1, or WeightedLp
// panics. The paper (§5.1.B) describes the weighted-L1 variant for
// emphasizing image regions; the weighted form is a metric because it is
// the Lp distance after a fixed per-axis rescaling.
func WeightedLp(p float64, w []float64) DistanceFunc[[]float64] {
	if p < 1 {
		panic("metric: WeightedLp requires p >= 1")
	}
	for _, x := range w {
		if x <= 0 {
			panic("metric: WeightedLp requires positive weights")
		}
	}
	weights := make([]float64, len(w))
	copy(weights, w)
	inf := math.IsInf(p, 1)
	return func(a, b []float64) float64 {
		checkLen(a, b)
		if len(a) != len(weights) {
			panic("metric: vector length does not match weight length")
		}
		var s float64
		for i := range a {
			d := math.Abs(a[i]-b[i]) * weights[i]
			if inf {
				if d > s {
					s = d
				}
			} else {
				s += math.Pow(d, p)
			}
		}
		if inf {
			return s
		}
		return math.Pow(s, 1/p)
	}
}

// Scaled returns fn with every distance multiplied by factor. factor must
// be positive or Scaled panics. Scaling a metric by a positive constant
// preserves all metric axioms; the paper normalizes image distances by
// 1/10000 (L1) and 1/100 (L2) this way.
func Scaled[T any](fn DistanceFunc[T], factor float64) DistanceFunc[T] {
	if factor <= 0 || math.IsInf(factor, 0) || math.IsNaN(factor) {
		panic("metric: Scaled requires a positive finite factor")
	}
	return func(a, b T) float64 { return fn(a, b) * factor }
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic("metric: vectors have different lengths")
	}
}

// Canberra returns the Canberra distance: the sum over dimensions of
// |aᵢ − bᵢ| / (|aᵢ| + |bᵢ|), with 0/0 terms counting zero. It is a
// metric, bounded by the dimensionality, and heavily weights
// differences near zero — useful when small coordinates carry meaning.
// It panics if the vectors have different lengths.
func Canberra(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		num := math.Abs(a[i] - b[i])
		if num == 0 {
			continue
		}
		s += num / (math.Abs(a[i]) + math.Abs(b[i]))
	}
	return s
}
