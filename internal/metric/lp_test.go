package metric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestL1KnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{0, 0}, 0},
		{[]float64{0, 0}, []float64{3, 4}, 7},
		{[]float64{1, -2, 3}, []float64{-1, 2, 3}, 6},
		{[]float64{}, []float64{}, 0},
		{[]float64{2.5}, []float64{-2.5}, 5},
	}
	for _, c := range cases {
		if got := L1(c.a, c.b); got != c.want {
			t.Errorf("L1(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestL2KnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{3, 4}, 5},
		{[]float64{1, 1, 1, 1}, []float64{0, 0, 0, 0}, 2},
		{[]float64{-1}, []float64{1}, 2},
		{[]float64{0, 0}, []float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := L2(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("L2(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestLInfKnownValues(t *testing.T) {
	if got := LInf([]float64{1, -5, 2}, []float64{0, 0, 0}); got != 5 {
		t.Errorf("LInf = %g, want 5", got)
	}
	if got := LInf(nil, nil); got != 0 {
		t.Errorf("LInf(nil, nil) = %g, want 0", got)
	}
}

func TestLpMatchesSpecializations(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	l1 := Lp(1)
	l2 := Lp(2)
	for i := 0; i < 100; i++ {
		a := randVec(rng, 8)
		b := randVec(rng, 8)
		if !almostEqual(l1(a, b), L1(a, b), 1e-9) {
			t.Fatalf("Lp(1) disagrees with L1 on %v, %v", a, b)
		}
		if !almostEqual(l2(a, b), L2(a, b), 1e-9) {
			t.Fatalf("Lp(2) disagrees with L2 on %v, %v", a, b)
		}
	}
}

func TestLpInfinity(t *testing.T) {
	f := Lp(math.Inf(1))
	a := []float64{1, 9, 3}
	b := []float64{2, 4, 3}
	if got := f(a, b); got != 5 {
		t.Errorf("Lp(+Inf) = %g, want 5", got)
	}
}

func TestLpPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lp(0.5) did not panic")
		}
	}()
	Lp(0.5)
}

func TestLengthMismatchPanics(t *testing.T) {
	fns := map[string]DistanceFunc[[]float64]{
		"L1": L1, "L2": L2, "LInf": LInf, "Lp(3)": Lp(3),
	}
	for name, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn([]float64{1}, []float64{1, 2})
		}()
	}
}

func TestWeightedLpUnitWeightsMatchLp(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	w := []float64{1, 1, 1, 1, 1}
	for _, p := range []float64{1, 2, 3, math.Inf(1)} {
		wf := WeightedLp(p, w)
		pf := Lp(p)
		for i := 0; i < 50; i++ {
			a := randVec(rng, 5)
			b := randVec(rng, 5)
			if !almostEqual(wf(a, b), pf(a, b), 1e-9) {
				t.Fatalf("WeightedLp(%g, unit) disagrees with Lp(%g)", p, p)
			}
		}
	}
}

func TestWeightedLpScalesAxes(t *testing.T) {
	f := WeightedLp(1, []float64{2, 3})
	if got := f([]float64{0, 0}, []float64{1, 1}); got != 5 {
		t.Errorf("weighted L1 = %g, want 5", got)
	}
}

func TestWeightedLpRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{{0, 1}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedLp accepted weights %v", w)
				}
			}()
			WeightedLp(2, w)
		}()
	}
}

func TestWeightedLpCopiesWeights(t *testing.T) {
	w := []float64{1, 1}
	f := WeightedLp(1, w)
	w[0] = 100 // mutating caller's slice must not affect the metric
	if got := f([]float64{0, 0}, []float64{1, 1}); got != 2 {
		t.Errorf("WeightedLp did not copy weights: got %g, want 2", got)
	}
}

func TestScaled(t *testing.T) {
	f := Scaled(L1, 0.5)
	if got := f([]float64{0}, []float64{4}); got != 2 {
		t.Errorf("Scaled = %g, want 2", got)
	}
	for _, factor := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled accepted factor %g", factor)
				}
			}()
			Scaled(L1, factor)
		}()
	}
}

// Property: every Lp variant satisfies the metric axioms on random samples.
func TestLpAxiomsQuick(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	fns := map[string]DistanceFunc[[]float64]{
		"L1":       L1,
		"L2":       L2,
		"LInf":     LInf,
		"Lp(1.5)":  Lp(1.5),
		"Lp(3)":    Lp(3),
		"weighted": WeightedLp(2, []float64{0.5, 2, 1, 3, 0.25, 1, 1, 1}),
	}
	for name, fn := range fns {
		sample := make([][]float64, 12)
		for i := range sample {
			sample[i] = randVec(rng, 8)
		}
		if err := CheckAxioms(fn, sample, 1e-9); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property via testing/quick: symmetry and triangle inequality of L2 hold
// for arbitrary generated vectors.
func TestL2TriangleQuick(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		x, y, z := a[:], b[:], c[:]
		dxy, dxz, dzy := L2(x, y), L2(x, z), L2(z, y)
		return dxy == L2(y, x) && dxy <= dxz+dzy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()*20 - 10
	}
	return v
}

func TestCanberraKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{0, 0}, 0},
		{[]float64{1, 0}, []float64{0, 0}, 1},
		{[]float64{1, 1}, []float64{1, 1}, 0},
		{[]float64{1, 2}, []float64{3, 2}, 0.5},
		{[]float64{-1, 0}, []float64{1, 0}, 1},
	}
	for _, c := range cases {
		if got := Canberra(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Canberra(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestCanberraAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	sample := make([][]float64, 10)
	for i := range sample {
		sample[i] = randVec(rng, 5)
	}
	sample = append(sample, []float64{0, 0, 0, 0, 0})
	if err := CheckAxioms(Canberra, sample, 1e-9); err != nil {
		t.Error(err)
	}
}
