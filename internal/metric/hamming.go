package metric

// Hamming returns the Hamming distance between two strings extended to
// unequal lengths: the number of positions (up to the shorter length)
// where the bytes differ, plus the difference in length. The extension
// keeps the function a metric: it equals the edit distance restricted to
// substitutions plus appends, and the triangle inequality holds because
// each term satisfies it independently.
func Hamming(a, b string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	d += len(a) - n + len(b) - n
	return float64(d)
}

// HammingBits returns the number of differing bits between two uint64
// values, a metric on 64-bit fingerprints.
func HammingBits(a, b uint64) float64 {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return float64(n)
}
