package metric

import (
	"math"
	"reflect"
	"sync"
)

// BoundedDistanceFunc is the early-abandoning fast path of a
// DistanceFunc. The contract, which every kernel here honours and which
// the index structures rely on for result equivalence, is:
//
//	ret := f(a, b, bound)
//	ret <= bound  ⟹  ret is exactly the value the exact kernel returns
//	ret >  bound  ⟹  the exact kernel's value is also > bound
//
// In other words the caller may trust any comparison of the returned
// value against thresholds ≤ bound, but must not interpret an abandoned
// value (> bound) as the true distance — it is only a certificate that
// the true distance exceeds the bound. bound = +Inf degrades to the
// exact kernel. The equivalence is in float64 arithmetic, not real
// arithmetic: an abandoned return is guaranteed to land on the same
// side of the bound as the exact kernel's rounded result, so query
// results and traversal decisions are bit-identical either way.
type BoundedDistanceFunc[T any] func(a, b T, bound float64) float64

// boundedRegistry maps the code pointer of a registered exact kernel to
// its bounded counterpart, so NewCounter can attach the fast path
// automatically. Only top-level functions may be registered: closures
// produced by the same function literal share one code pointer, which
// would make the lookup ambiguous (use Counter.SetBounded for those).
var boundedRegistry sync.Map // uintptr → BoundedDistanceFunc[X] (as any)

// RegisterBounded associates bounded as the early-abandoning fast path
// of the top-level distance function exact. Counters created by
// NewCounter over exact (or over a distinct top-level wrapper that was
// itself registered) will answer DistanceUpTo through bounded. The two
// functions must satisfy the BoundedDistanceFunc contract; violating it
// silently corrupts query results. Do not register closures — every
// closure from one function literal shares a code pointer.
func RegisterBounded[T any](exact DistanceFunc[T], bounded BoundedDistanceFunc[T]) {
	if exact == nil || bounded == nil {
		panic("metric: RegisterBounded requires non-nil functions")
	}
	boundedRegistry.Store(reflect.ValueOf(exact).Pointer(), bounded)
}

// lookupBounded returns the registered fast path for fn, or nil.
func lookupBounded[T any](fn DistanceFunc[T]) BoundedDistanceFunc[T] {
	if fn == nil {
		return nil
	}
	v, ok := boundedRegistry.Load(reflect.ValueOf(fn).Pointer())
	if !ok {
		return nil
	}
	b, _ := v.(BoundedDistanceFunc[T])
	return b
}

func init() {
	RegisterBounded[[]float64](L1, L1UpTo)
	RegisterBounded[[]float64](L2, L2UpTo)
	RegisterBounded[[]float64](LInf, LInfUpTo)
	RegisterBounded[[]float64](Canberra, CanberraUpTo)
	RegisterBounded[[]float64](Angular, AngularUpTo)
	// Cosine is exactly L2 on its (unit-vector) domain, so the L2
	// kernel is its early-abandoning fast path.
	RegisterBounded[[]float64](Cosine, L2UpTo)
	RegisterBounded[string](Edit, EditUpTo)
	RegisterBounded[string](Hamming, HammingUpTo)
}

// AngularUpTo is the bounded kernel for Angular. The angle admits no
// sound partial-sum abandonment: the three accumulators (dot product
// and both squared norms) are not monotone toward the final arccos,
// and by Cauchy–Schwarz an unseen coordinate tail can always pull the
// cosine arbitrarily close to 1 (distance toward 0), so no prefix
// state can certify "final angle > bound". The kernel therefore
// computes the exact value — trivially satisfying the
// BoundedDistanceFunc contract — and its registration keeps Counters
// over Angular on the registered-kernel dispatch path (no per-Counter
// fallback closure) instead of silently degrading leaf scans to the
// exact-only path. Workloads that can pre-normalize should prefer
// Cosine, whose L2 form abandons early and quantizes.
func AngularUpTo(a, b []float64, _ float64) float64 {
	return Angular(a, b)
}

// L1UpTo is the early-abandoning Manhattan distance: the partial sum is
// monotone, so once it exceeds bound the scan stops and the partial sum
// (already > bound, and a lower bound on the true distance) is returned.
func L1UpTo(a, b []float64, bound float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	var s float64
	// Unrolled four-wide with one abandonment check per chunk. The
	// accumulation order is exactly the element-at-a-time order, so any
	// value returned at or below the bound is bit-identical to L1's;
	// checking per chunk only delays abandonment by at most three terms
	// (the partial sum is monotone, so the decision cannot flip).
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += math.Abs(a[i] - b[i])
		s += math.Abs(a[i+1] - b[i+1])
		s += math.Abs(a[i+2] - b[i+2])
		s += math.Abs(a[i+3] - b[i+3])
		if s > bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// L2UpTo is the early-abandoning Euclidean distance. It accumulates in
// squared space and compares against bound² so the inner loop stays
// sqrt-free; when the squared partial first exceeds bound² the square
// root of the partial is taken once to verify the abandon is safe under
// float64 rounding (sqrt is correctly rounded and monotone, so
// √partial > bound implies the exact kernel's √total > bound).
func L2UpTo(a, b []float64, bound float64) float64 {
	checkLen(a, b)
	b = b[:len(a)]
	b2 := bound * bound
	var s float64
	// Unrolled four-wide with one abandonment check per chunk, in the
	// exact element-at-a-time accumulation order — any value returned at
	// or below the bound is bit-identical to L2's, and the monotone
	// partial sum means a per-chunk check only abandons a few terms
	// later than a per-element one would.
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
		if s > b2 {
			if ret := math.Sqrt(s); ret > bound {
				return ret
			}
			// Rounding left √s at or below the bound; keep scanning.
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// LInfUpTo is the early-abandoning Chebyshev distance: the running
// maximum is monotone, so the scan stops as soon as it exceeds bound.
func LInfUpTo(a, b []float64, bound float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > s {
			s = d
			if s > bound {
				return s
			}
		}
	}
	return s
}

// CanberraUpTo is the early-abandoning Canberra distance (monotone
// partial sum, same abandonment argument as L1UpTo).
func CanberraUpTo(a, b []float64, bound float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		num := math.Abs(a[i] - b[i])
		if num == 0 {
			continue
		}
		s += num / (math.Abs(a[i]) + math.Abs(b[i]))
		if s > bound {
			return s
		}
	}
	return s
}

// HammingUpTo is the early-abandoning Hamming distance: the mismatch
// count is monotone, so the scan stops once it exceeds bound.
func HammingUpTo(a, b string, bound float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := len(a) - n + len(b) - n // length-difference term, known up front
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
			if float64(d) > bound {
				return float64(d)
			}
		}
	}
	return float64(d)
}

// powAbandonSlack is the relative margin the math.Pow-based kernels
// demand before abandoning. math.Pow is not guaranteed correctly
// rounded, so — unlike sqrt — pow(partial, 1/p) > bound does not by
// itself prove pow(total, 1/p) > bound in float64. Requiring the
// finalized partial to clear the bound by ~4000 ulps puts the decision
// far outside pow's error bound; the cost is only that a vanishingly
// thin near-threshold band is never abandoned.
const powAbandonSlack = 1e-12

// LpUpTo returns the early-abandoning Minkowski distance of order
// p >= 1, the bounded counterpart of Lp(p). Attach it to a Counter with
// SetBounded (Lp's closures cannot be auto-registered). Lp(1), Lp(2)
// and Lp(+Inf) callers should prefer L1UpTo/L2UpTo/LInfUpTo, which
// NewCounter already wires automatically.
func LpUpTo(p float64) BoundedDistanceFunc[[]float64] {
	if p < 1 {
		panic("metric: LpUpTo requires p >= 1")
	}
	if math.IsInf(p, 1) {
		return LInfUpTo
	}
	switch p {
	case 1:
		return L1UpTo
	case 2:
		return L2UpTo
	}
	return func(a, b []float64, bound float64) float64 {
		checkLen(a, b)
		bp := math.Pow(bound, p)
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
			if s > bp {
				if ret := math.Pow(s, 1/p); ret > bound*(1+powAbandonSlack) && ret > bound {
					return ret
				}
			}
		}
		return math.Pow(s, 1/p)
	}
}

// WeightedLpUpTo returns the early-abandoning weighted Minkowski
// distance, the bounded counterpart of WeightedLp(p, w). Attach it to a
// Counter with SetBounded.
func WeightedLpUpTo(p float64, w []float64) BoundedDistanceFunc[[]float64] {
	if p < 1 {
		panic("metric: WeightedLpUpTo requires p >= 1")
	}
	for _, x := range w {
		if x <= 0 {
			panic("metric: WeightedLpUpTo requires positive weights")
		}
	}
	weights := make([]float64, len(w))
	copy(weights, w)
	if math.IsInf(p, 1) {
		return func(a, b []float64, bound float64) float64 {
			checkLen(a, b)
			checkWeightLen(a, weights)
			var s float64
			for i := range a {
				d := math.Abs(a[i]-b[i]) * weights[i]
				if d > s {
					s = d
					if s > bound {
						return s
					}
				}
			}
			return s
		}
	}
	return func(a, b []float64, bound float64) float64 {
		checkLen(a, b)
		checkWeightLen(a, weights)
		bp := math.Pow(bound, p)
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i])*weights[i], p)
			if s > bp {
				if ret := math.Pow(s, 1/p); ret > bound*(1+powAbandonSlack) && ret > bound {
					return ret
				}
			}
		}
		return math.Pow(s, 1/p)
	}
}

func checkWeightLen(a, weights []float64) {
	if len(a) != len(weights) {
		panic("metric: vector length does not match weight length")
	}
}
