package metric

import (
	"sync"
	"testing"
)

// TestCounterConcurrentDistance is the regression test for the atomic
// count: before the fix, concurrent c.count++ increments were lost (and
// flagged by -race). The final count must equal the exact number of
// Distance calls made across all goroutines.
func TestCounterConcurrentDistance(t *testing.T) {
	c := NewCounter(L2)
	a, b := []float64{0, 0}, []float64{3, 4}
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if d := c.Distance(a, b); d != 5 {
					t.Errorf("Distance = %g, want 5", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := c.Count(), int64(goroutines*perG); got != want {
		t.Fatalf("Count = %d after %d concurrent calls, want %d (lost increments)", got, want, want)
	}
}

// TestCounterConcurrentAdd checks that the parallel-construction path
// (Add) is also safe to mix with Distance across goroutines.
func TestCounterConcurrentAdd(t *testing.T) {
	c := NewCounter(L2)
	a, b := []float64{1}, []float64{2}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(2)
				c.Distance(a, b)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Count(), int64(4*1000*3); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("Count = %d after Reset", c.Count())
	}
}
