package metric

import (
	"testing"
	"testing/quick"
)

func TestHammingKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "xyz", 3},
		{"abc", "abcd", 1},
		{"", "abcd", 4},
		{"karolin", "kathrin", 3},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b); got != c.want {
			t.Errorf("Hamming(%q, %q) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingAxioms(t *testing.T) {
	sample := []string{"", "a", "b", "ab", "ba", "aaa", "aba", "abab", "zzzz"}
	if err := CheckAxioms(Hamming, sample, 0); err != nil {
		t.Error(err)
	}
}

func TestHammingDominatesEdit(t *testing.T) {
	// Edit distance is a lower bound of this extended Hamming distance
	// (every Hamming operation is also an edit operation).
	f := func(a, b string) bool { return Edit(a, b) <= Hamming(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHammingBits(t *testing.T) {
	cases := []struct {
		a, b uint64
		want float64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, ^uint64(0), 64},
		{0b1010, 0b0101, 4},
	}
	for _, c := range cases {
		if got := HammingBits(c.a, c.b); got != c.want {
			t.Errorf("HammingBits(%#x, %#x) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingBitsTriangleQuick(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return HammingBits(a, b) <= HammingBits(a, c)+HammingBits(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
