package metric

import (
	"fmt"
	"math"
)

// AxiomError describes a violation of a metric axiom found by CheckAxioms.
type AxiomError struct {
	Axiom  string // "symmetry", "identity", "positivity" or "triangle"
	Detail string
}

func (e *AxiomError) Error() string {
	return fmt.Sprintf("metric: %s violated: %s", e.Axiom, e.Detail)
}

// CheckAxioms exhaustively verifies the metric axioms over a sample of
// items, with a small floating-point tolerance eps for the triangle
// inequality (use 0 for integer-valued metrics). It checks all pairs for
// symmetry, identity and positivity and all ordered triples for the
// triangle inequality, so it is O(n³) in the sample size; intended for
// tests and for validating user-supplied distance functions on a sample
// before building an index.
//
// Positivity is only checked as non-negativity plus finiteness, because
// CheckAxioms cannot know whether two distinct sample items are "equal"
// in the metric's eyes (a pseudometric with d(x,y)=0 for x≠y still yields
// correct—if unhelpfully coarse—index behaviour).
func CheckAxioms[T any](fn DistanceFunc[T], sample []T, eps float64) error {
	n := len(sample)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d[i][j] = fn(sample[i], sample[j])
		}
	}
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			return &AxiomError{"identity", fmt.Sprintf("d(x,x) = %g for sample %d", d[i][i], i)}
		}
		for j := 0; j < n; j++ {
			if math.IsNaN(d[i][j]) || math.IsInf(d[i][j], 0) || d[i][j] < 0 {
				return &AxiomError{"positivity", fmt.Sprintf("d(%d,%d) = %g", i, j, d[i][j])}
			}
			if d[i][j] != d[j][i] {
				return &AxiomError{"symmetry", fmt.Sprintf("d(%d,%d) = %g but d(%d,%d) = %g", i, j, d[i][j], j, i, d[j][i])}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if d[i][j] > d[i][k]+d[k][j]+eps {
					return &AxiomError{"triangle", fmt.Sprintf(
						"d(%d,%d) = %g > d(%d,%d) + d(%d,%d) = %g + %g",
						i, j, d[i][j], i, k, k, j, d[i][k], d[k][j])}
				}
			}
		}
	}
	return nil
}
