package cascade

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"mvptree/internal/build"
	"mvptree/internal/metric"
	"mvptree/internal/testutil"
)

func uniform(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// buildFilter assembles a Filter over n uniform vectors with the first
// p of them as pivots, mirroring what a tree's EnableCascade walk does.
func buildFilter(t *testing.T, opts Options, items [][]float64) (*Filter[[]float64], *metric.Counter[[]float64]) {
	t.Helper()
	dist := metric.NewCounter(metric.L2)
	b, err := NewBuilder[[]float64](opts)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	for _, it := range items {
		if b.AddPivot(it) == 0 {
			break
		}
	}
	b.AddItems(items)
	f, err := b.Build(dist)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f, dist
}

// TestLowerBoundIsValid checks the core contract: for random queries,
// LowerBound never exceeds the true distance to any stored item.
func TestLowerBoundIsValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	items := uniform(rng, 300, 8)
	f, _ := buildFilter(t, Options{Pivots: 6, MaxPerQuery: 6}, items)
	for qi := 0; qi < 50; qi++ {
		q := uniform(rng, 1, 8)[0]
		c := f.Get()
		for j := 0; j < f.Pivots(); j++ {
			c.Register(int32(j), metric.L2(q, f.Pivot(j)))
		}
		for i, it := range items {
			lb := f.LowerBound(c, int32(i))
			d := metric.L2(q, it)
			if lb > d+1e-12 {
				t.Fatalf("query %d item %d: lower bound %v exceeds distance %v", qi, i, lb, d)
			}
		}
		f.Put(c)
	}
}

// TestLowerBoundMatchesBruteForce checks LowerBound against a direct
// max_j |qd − d(pivot_j, item)| computation.
func TestLowerBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	items := uniform(rng, 100, 4)
	f, _ := buildFilter(t, Options{Pivots: 4, MaxPerQuery: 4}, items)
	q := uniform(rng, 1, 4)[0]
	c := f.Get()
	defer f.Put(c)
	for j := 0; j < f.Pivots(); j++ {
		c.Register(int32(j), metric.L2(q, f.Pivot(j)))
	}
	for i, it := range items {
		want := 0.0
		for j := 0; j < f.Pivots(); j++ {
			b := math.Abs(metric.L2(q, f.Pivot(j)) - metric.L2(f.Pivot(j), it))
			want = math.Max(want, b)
		}
		if got := f.LowerBound(c, int32(i)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("item %d: LowerBound %v, brute force %v", i, got, want)
		}
	}
}

// TestMaxPerQueryCap checks registrations beyond the cap are dropped
// and Wants flips false.
func TestMaxPerQueryCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 0))
	items := uniform(rng, 50, 4)
	f, _ := buildFilter(t, Options{Pivots: 8, MaxPerQuery: 3}, items)
	c := f.Get()
	defer f.Put(c)
	for j := 0; j < 8; j++ {
		if want := j < 3; c.Wants() != want {
			t.Fatalf("after %d registrations Wants() = %v, want %v", j, c.Wants(), want)
		}
		c.Register(int32(j), float64(j))
	}
	if c.Registered() != 3 {
		t.Fatalf("Registered() = %d after cap 3", c.Registered())
	}
}

// TestBuilderStampsAndIDs checks the stamp (pivot index + 1, 0 when
// full) and id (contiguous) conventions the tree walks rely on.
func TestBuilderStampsAndIDs(t *testing.T) {
	b, err := NewBuilder[[]float64](Options{Pivots: 2, MaxPerQuery: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1}
	if got := b.AddPivot(v); got != 1 {
		t.Fatalf("first AddPivot stamp = %d, want 1", got)
	}
	if got := b.AddPivot(v); got != 2 {
		t.Fatalf("second AddPivot stamp = %d, want 2", got)
	}
	if got := b.AddPivot(v); got != 0 {
		t.Fatalf("over-cap AddPivot stamp = %d, want 0", got)
	}
	if base := b.AddItems([][]float64{v, v, v}); base != 0 {
		t.Fatalf("first AddItems base = %d, want 0", base)
	}
	if id := b.AddItem(v); id != 3 {
		t.Fatalf("AddItem id = %d, want 3", id)
	}
	if base := b.AddItems([][]float64{v}); base != 4 {
		t.Fatalf("second AddItems base = %d, want 4", base)
	}
}

// TestBuildCountsDistances checks row precomputation settles the
// structure's counter with pivots × items.
func TestBuildCountsDistances(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	items := uniform(rng, 40, 4)
	f, dist := buildFilter(t, Options{Pivots: 4, MaxPerQuery: 4}, items)
	if want := int64(4 * 40); dist.Count() != want || f.BuildDistances() != want {
		t.Fatalf("counter %d, BuildDistances %d, want %d", dist.Count(), f.BuildDistances(), want)
	}
}

// TestBuildWorkersIdentical checks parallel row precomputation yields
// the same rows and count as serial.
func TestBuildWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	items := uniform(rng, 600, 6)
	serial, _ := buildFilter(t, Options{Pivots: 5, MaxPerQuery: 5}, items)
	par, _ := buildFilter(t, Options{Pivots: 5, MaxPerQuery: 5, Workers: 4}, items)
	for j := range serial.rows {
		for i := range serial.rows[j] {
			if serial.rows[j][i] != par.rows[j][i] {
				t.Fatalf("row %d item %d: serial %v, parallel %v", j, i, serial.rows[j][i], par.rows[j][i])
			}
		}
	}
}

// TestEmptyBuildErrors checks Build refuses a walk that collected no
// pivots or no items.
func TestEmptyBuildErrors(t *testing.T) {
	dist := metric.NewCounter(metric.L2)
	b, _ := NewBuilder[[]float64](Options{})
	if _, err := b.Build(dist); err == nil {
		t.Fatal("Build with no pivots/items: want error")
	}
}

// TestNewFilterValidates checks shape validation of wrapped tables.
func TestNewFilterValidates(t *testing.T) {
	p := [][]float64{{1}, {2}}
	if _, err := NewFilter(p, [][]float64{{1, 2}}, 0); err == nil {
		t.Fatal("pivot/row count mismatch: want error")
	}
	if _, err := NewFilter(p, [][]float64{{1, 2}, {1}}, 0); err == nil {
		t.Fatal("ragged rows: want error")
	}
	f, err := NewFilter(p, [][]float64{{1, 2}, {3, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.MaxPerQuery() != 2 {
		t.Fatalf("MaxPerQuery defaulted to %d, want len(pivots)=2", f.MaxPerQuery())
	}
}

// TestGreedySelectMatchesLAESA re-runs the selection loop by hand and
// compares: GreedySelect is the laesa seed loop verbatim.
func TestGreedySelectMatchesLAESA(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 0))
	items := uniform(rng, 120, 5)
	dist := metric.NewCounter(metric.L2)
	b := build.Start(dist, build.Options{})
	pivots, rows := GreedySelect(b, items, 6, 17)

	// Reference: the original laesa selection loop.
	minDist := make([]float64, len(items))
	cur := 17
	for j := 0; j < 6; j++ {
		pv := items[cur]
		for i := range pivots[j] {
			if pivots[j][i] != pv[i] {
				t.Fatalf("pivot %d differs from reference", j)
			}
		}
		far, farD := cur, -1.0
		for i := range items {
			d := metric.L2(pv, items[i])
			if rows[j][i] != d {
				t.Fatalf("row %d item %d: %v want %v", j, i, rows[j][i], d)
			}
			if j == 0 || d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		cur = far
	}
}

// TestCachePoolReuseConcurrent hammers Get/Put and LowerBound from many
// goroutines for the race detector and checks caches come back clean.
func TestCachePoolReuseConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 0))
	items := uniform(rng, 200, 6)
	f, _ := buildFilter(t, Options{Pivots: 8, MaxPerQuery: 4}, items)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(100, uint64(g)))
			for iter := 0; iter < 200; iter++ {
				q := uniform(qrng, 1, 6)[0]
				c := f.Get()
				if c.Registered() != 0 {
					t.Errorf("pooled cache arrived dirty: %d registered", c.Registered())
				}
				for j := 0; j < f.Pivots() && c.Wants(); j++ {
					c.Register(int32(j), metric.L2(q, f.Pivot(j)))
				}
				for i := range items {
					if lb := f.LowerBound(c, int32(i)); lb > metric.L2(q, items[i])+1e-12 {
						t.Errorf("invalid bound under concurrency")
					}
				}
				f.Put(c)
			}
		}(g)
	}
	wg.Wait()
}

// TestGetAllocsSteadyState checks the pooled cache path allocates
// nothing once warm.
func TestGetAllocsSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	rng := rand.New(rand.NewPCG(2, 0))
	items := uniform(rng, 60, 4)
	f, _ := buildFilter(t, Options{Pivots: 4, MaxPerQuery: 4}, items)
	q := uniform(rng, 1, 4)[0]
	allocs := testing.AllocsPerRun(200, func() {
		c := f.Get()
		for j := 0; j < f.Pivots(); j++ {
			c.Register(int32(j), metric.L2(q, f.Pivot(j)))
		}
		for i := range items {
			_ = f.LowerBound(c, int32(i))
		}
		f.Put(c)
	})
	if allocs > 0 {
		t.Fatalf("Get/Register/LowerBound/Put allocates %.1f/op, want 0", allocs)
	}
}
