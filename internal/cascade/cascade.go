// Package cascade is the composable cross-query bound cascade: the
// pivot lower-bound machinery of the LAESA table (internal/laesa)
// extracted into a filter layer any index structure can consult.
//
// The idea, following the Cascading Metric Tree (arXiv 2112.10900), is
// that a query should waste none of the distances it pays for. Every
// tree traversal computes distances from the query q to vantage points,
// split points or centers and uses each one once — for the local
// routing decision — and then drops it. But any point p with a
// precomputed distance row d(p, ·) over the stored items turns that one
// paid distance into a global filter: by the triangle inequality,
//
//	max_p |d(q,p) − d(p,x)| ≤ d(q,x)
//
// for every stored item x, so a candidate whose bound already exceeds
// the query radius (or the current k-th best distance) is excluded
// without an exact distance computation — the paper's cost metric.
//
// The layer has three parts:
//
//   - Filter, the per-structure immutable state: the chosen pivot items
//     and their distance rows over the stored items, built once when a
//     structure enables cascading (Builder) or directly from an existing
//     table (NewFilter, how laesa reuses the core).
//
//   - Cache, the per-query scratch: the distances d(q, p) the traversal
//     has registered so far. Caches are pooled on the Filter (Get/Put),
//     so steady-state queries allocate nothing — the same discipline as
//     the qpath scratch pooling of the query hot paths.
//
//   - LowerBound, the consult: max over registered pivots of
//     |d(q,p) − row_p[x]|, O(registered) per candidate.
//
// Exactness: registration only stores distances the traversal computes
// anyway (sites that used a bounded kernel switch to the exact kernel
// when registering — an exact distance is a valid bounded kernel, so
// every routing decision is unchanged and the distance count is not).
// The consult only ever *skips* candidates whose true distance provably
// exceeds the current threshold, so result sets are byte-identical to
// the uncascaded query and per-query distance counts never increase.
package cascade

import (
	"errors"
	"fmt"
	"sync"

	"mvptree/internal/build"
	"mvptree/internal/metric"
)

// Default option values; see Options.
const (
	// DefaultPivots is the default cap on registered pivot points per
	// structure — the number of precomputed distance rows.
	DefaultPivots = 16
	// DefaultMaxPerQuery is the default cap on pivots one query
	// registers. Each registered pivot adds one |qd − row| comparison
	// per surviving candidate, so an unbounded cache could spend more on
	// bound checks than it saves in distance computations on easy
	// workloads; eight pivots keeps the consult a handful of cache-local
	// float compares while capturing the high-value early (near-root)
	// vantage points, which every query path evaluates anyway.
	DefaultMaxPerQuery = 8
)

// Options configure a structure's cascade filter (EnableCascade).
type Options struct {
	// Pivots caps how many vantage/pivot/center points the structure
	// precomputes distance rows for; rows cost one distance pass over
	// the stored items each, so the precomputation is Pivots × n.
	// Default DefaultPivots.
	Pivots int
	// MaxPerQuery caps how many pivot distances a single query
	// registers; see DefaultMaxPerQuery for the tradeoff. It is further
	// capped at the number of pivots actually collected.
	MaxPerQuery int
	// Workers bounds the goroutines used to precompute the pivot rows
	// (values <= 1 compute serially; the rows are identical either way).
	Workers int
}

// withDefaults returns o with zero fields defaulted.
func (o Options) withDefaults() Options {
	if o.Pivots == 0 {
		o.Pivots = DefaultPivots
	}
	if o.MaxPerQuery == 0 {
		o.MaxPerQuery = DefaultMaxPerQuery
	}
	return o
}

// Validate checks the options after defaulting.
func (o Options) Validate() error {
	if o.Pivots < 1 {
		return errors.New("cascade: Pivots must be at least 1")
	}
	if o.MaxPerQuery < 1 {
		return errors.New("cascade: MaxPerQuery must be at least 1")
	}
	if o.Workers < 0 {
		return errors.New("cascade: Workers must be non-negative")
	}
	return nil
}

// Filter is the immutable cascade state of one structure: pivot items,
// their precomputed distance rows over the stored items, and a pool of
// per-query Caches. A Filter is safe for concurrent queries once built.
type Filter[T any] struct {
	pivots []T
	rows   [][]float64 // rows[j][id] = d(pivots[j], item id)
	items  int
	maxPer int
	built  int64 // distance computations spent on rows
	pool   sync.Pool
}

// NewFilter wraps an existing pivot table — pivot items plus their
// distance rows over the stored items — as a Filter, without computing
// anything. This is how laesa rebuilds on the shared core: its greedy
// selection already produced exactly these rows. maxPerQuery values
// <= 0 or beyond len(pivots) mean every pivot registers.
func NewFilter[T any](pivots []T, rows [][]float64, maxPerQuery int) (*Filter[T], error) {
	if len(pivots) != len(rows) {
		return nil, fmt.Errorf("cascade: %d pivots but %d rows", len(pivots), len(rows))
	}
	n := 0
	for j, row := range rows {
		if j == 0 {
			n = len(row)
		} else if len(row) != n {
			return nil, fmt.Errorf("cascade: row %d has %d entries, row 0 has %d", j, len(row), n)
		}
	}
	if maxPerQuery <= 0 || maxPerQuery > len(pivots) {
		maxPerQuery = len(pivots)
	}
	return &Filter[T]{pivots: pivots, rows: rows, items: n, maxPer: maxPerQuery}, nil
}

// Pivots reports the number of pivot rows.
func (f *Filter[T]) Pivots() int { return len(f.pivots) }

// Pivot returns the j-th pivot item.
func (f *Filter[T]) Pivot(j int) T { return f.pivots[j] }

// Row returns the j-th pivot's distance row over the stored items. The
// returned slice is the filter's own state; callers must not modify it.
func (f *Filter[T]) Row(j int) []float64 { return f.rows[j] }

// Items reports the number of stored items covered by the rows.
func (f *Filter[T]) Items() int { return f.items }

// MaxPerQuery reports the per-query registration cap in effect.
func (f *Filter[T]) MaxPerQuery() int { return f.maxPer }

// BuildDistances reports the distance computations spent precomputing
// the rows (zero for NewFilter-wrapped tables, whose rows were already
// paid for by the caller's own build).
func (f *Filter[T]) BuildDistances() int64 { return f.built }

// Get returns a pooled, empty per-query Cache. Callers must Put it back
// when the query finishes; steady state allocates nothing.
func (f *Filter[T]) Get() *Cache {
	if c, ok := f.pool.Get().(*Cache); ok {
		return c
	}
	return &Cache{
		pivot: make([]int32, 0, f.maxPer),
		qd:    make([]float64, 0, f.maxPer),
		limit: f.maxPer,
	}
}

// Put resets c and returns it to the pool.
func (f *Filter[T]) Put(c *Cache) {
	if c == nil {
		return
	}
	c.pivot = c.pivot[:0]
	c.qd = c.qd[:0]
	f.pool.Put(c)
}

// LowerBound returns max over the registered pivots of
// |d(q,pivot) − rows[pivot][id]| — by the triangle inequality a lower
// bound on the distance from the query behind c to stored item id. With
// nothing registered it returns 0 (vacuous bound).
func (f *Filter[T]) LowerBound(c *Cache, id int32) float64 {
	var lb float64
	for k, j := range c.pivot {
		d := c.qd[k] - f.rows[j][id]
		if d < 0 {
			d = -d
		}
		if d > lb {
			lb = d
		}
	}
	return lb
}

// Cache is the per-query registered-distance scratch. It is owned by
// one query at a time (obtain with Filter.Get, return with Filter.Put)
// and is not safe for concurrent use.
type Cache struct {
	pivot []int32
	qd    []float64
	limit int
}

// Wants reports whether the cache still accepts registrations — query
// paths use it to decide whether a stamped vantage evaluation should
// compute exactly (and register) or stay on the bounded kernel.
func (c *Cache) Wants() bool { return len(c.pivot) < c.limit }

// Register records d = d(q, pivot j). d must be the exact distance
// (registering an early-abandoned value would produce invalid bounds).
// Registrations beyond the per-query cap are dropped.
func (c *Cache) Register(j int32, d float64) {
	if len(c.pivot) >= c.limit {
		return
	}
	c.pivot = append(c.pivot, j)
	c.qd = append(c.qd, d)
}

// Registered reports how many pivot distances the query has registered.
func (c *Cache) Registered() int { return len(c.pivot) }

// Builder accumulates a structure's pivots and stored items during the
// post-build tree walk of EnableCascade, then precomputes the rows.
// The walk calls AddPivot for each vantage/split/center in visit order
// (breadth-first from the root, so the pivots every query evaluates
// first get rows) and AddItems/AddItem for the leaf-stored items, whose
// returned ids the structure stamps onto its nodes.
type Builder[T any] struct {
	opts   Options
	pivots []T
	items  []T
}

// NewBuilder returns a Builder for the given (defaulted, validated)
// options.
func NewBuilder[T any](opts Options) (*Builder[T], error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Builder[T]{opts: opts}, nil
}

// AddPivot registers p as a pivot and returns its node stamp: the pivot
// index plus one, so that the zero value of a stamp field means "not a
// cascade pivot". Beyond the Pivots cap it returns 0.
func (b *Builder[T]) AddPivot(p T) int32 {
	if len(b.pivots) >= b.opts.Pivots {
		return 0
	}
	b.pivots = append(b.pivots, p)
	return int32(len(b.pivots))
}

// AddItems appends a leaf's items to the stored-item space and returns
// the id of the first: leaf item i has cascade id base+i.
func (b *Builder[T]) AddItems(items []T) int32 {
	base := int32(len(b.items))
	b.items = append(b.items, items...)
	return base
}

// AddItem appends a single stored item and returns its id.
func (b *Builder[T]) AddItem(item T) int32 {
	id := int32(len(b.items))
	b.items = append(b.items, item)
	return id
}

// NumPivots reports how many pivots the walk has collected so far.
func (b *Builder[T]) NumPivots() int { return len(b.pivots) }

// NumItems reports how many stored items the walk has collected so far.
func (b *Builder[T]) NumItems() int { return len(b.items) }

// Build precomputes the pivot × item distance rows through dist (the
// structure's own counter, so the precomputation shows up in the
// paper's cost metric as build cost) and returns the Filter. Returns an
// error if the walk registered no pivots or no items — cascading such a
// structure would be a silent no-op, which the caller should know.
func (b *Builder[T]) Build(dist *metric.Counter[T]) (*Filter[T], error) {
	if len(b.pivots) == 0 || len(b.items) == 0 {
		return nil, errors.New("cascade: structure yielded no pivots or no stored items")
	}
	bb := build.Start(dist, build.Options{Workers: b.opts.Workers})
	rows := make([][]float64, len(b.pivots))
	for j, pv := range b.pivots {
		row := make([]float64, len(b.items))
		bb.Measure(pv, func(i int) T { return b.items[i] }, row)
		rows[j] = row
	}
	st := bb.Finish()
	f, err := NewFilter(b.pivots, rows, min(b.opts.MaxPerQuery, len(b.pivots)))
	if err != nil {
		return nil, err
	}
	f.built = st.Distances
	return f, nil
}

// GreedySelect is the LAESA pivot selection the laesa package builds
// with: starting from items[start], repeatedly take the item with the
// maximum distance to its nearest already-chosen pivot. Each pivot
// costs one batched distance pass over all items through b — which
// doubles as the pivot's table row, so selection and table construction
// share every distance computation. It returns the chosen pivot items
// and their rows, ready for NewFilter.
func GreedySelect[T any](b *build.Builder[T], items []T, p, start int) (pivots []T, rows [][]float64) {
	pivots = make([]T, 0, p)
	rows = make([][]float64, 0, p)
	minDist := make([]float64, len(items)) // to nearest chosen pivot
	cur := start
	for j := 0; j < p; j++ {
		pv := items[cur]
		pivots = append(pivots, pv)
		b.Node(j)
		row := make([]float64, len(items))
		b.Measure(pv, func(i int) T { return items[i] }, row)
		far, farD := cur, -1.0
		for i := range items {
			if j == 0 || row[i] < minDist[i] {
				minDist[i] = row[i]
			}
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		rows = append(rows, row)
		cur = far
	}
	return pivots, rows
}
