// Package pgm provides gray-level images and Netpbm PGM (portable
// graymap) encoding and decoding. The paper's image experiments (§5.1.B)
// store MRI head scans as binary PGM with one byte per pixel; this
// package round-trips exactly that format (P5) and, for convenience, the
// ASCII variant (P2).
package pgm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
)

// Image is an 8-bit gray-level image with row-major pixels.
type Image struct {
	Width  int
	Height int
	Pix    []uint8 // len == Width*Height
}

// NewImage returns a black image of the given size. It panics if either
// dimension is not positive.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("pgm: image dimensions must be positive")
	}
	return &Image{Width: w, Height: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). No bounds checking beyond the slice's.
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.Width+x] }

// Set sets the pixel at (x, y).
func (im *Image) Set(x, y int, v uint8) { im.Pix[y*im.Width+x] = v }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.Width, im.Height)
	copy(out.Pix, im.Pix)
	return out
}

// L1 returns the pixel-wise L1 distance between two images: the sum of
// absolute intensity differences (paper §5.1.B: images treated as
// 65536-dimensional vectors). It panics if the dimensions differ.
func L1(a, b *Image) float64 {
	checkDims(a, b)
	var s int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return float64(s)
}

// L2 returns the pixel-wise Euclidean distance between two images. It
// panics if the dimensions differ.
func L2(a, b *Image) float64 {
	checkDims(a, b)
	var s int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		s += d * d
	}
	return math.Sqrt(float64(s))
}

func checkDims(a, b *Image) {
	if a.Width != b.Width || a.Height != b.Height {
		panic("pgm: image dimensions differ")
	}
}

// Histogram256 returns the 256-bucket intensity histogram of the image,
// the representation the paper suggests for gray-level image similarity
// without cross-talk (§5.1.B): "the histograms will simply be treated as
// if they are 256-dimensional vectors, and then an Lp metric can be
// used".
func (im *Image) Histogram256() []float64 {
	h := make([]float64, 256)
	for _, p := range im.Pix {
		h[p]++
	}
	return h
}

// Encode writes the image as binary PGM (P5, maxval 255).
func Encode(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.Width, im.Height); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeASCII writes the image as ASCII PGM (P2, maxval 255).
func EncodeASCII(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P2\n%d %d\n255\n", im.Width, im.Height); err != nil {
		return err
	}
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			sep := " "
			if x == im.Width-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(bw, "%d%s", im.At(x, y), sep); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a PGM image in either binary (P5) or ASCII (P2) form.
// Only maxval ≤ 255 single-byte images are supported.
func Decode(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := nextToken(br)
	if err != nil {
		return nil, fmt.Errorf("pgm: reading magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("pgm: unsupported magic %q", magic)
	}
	w, err := nextInt(br)
	if err != nil {
		return nil, fmt.Errorf("pgm: reading width: %w", err)
	}
	h, err := nextInt(br)
	if err != nil {
		return nil, fmt.Errorf("pgm: reading height: %w", err)
	}
	maxval, err := nextInt(br)
	if err != nil {
		return nil, fmt.Errorf("pgm: reading maxval: %w", err)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("pgm: invalid dimensions %dx%d", w, h)
	}
	if w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("pgm: dimensions %dx%d too large", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("pgm: unsupported maxval %d", maxval)
	}
	im := NewImage(w, h)
	if magic == "P5" {
		// Exactly one whitespace byte separates the header from the
		// raster; nextInt has already consumed it.
		if _, err := io.ReadFull(br, im.Pix); err != nil {
			return nil, fmt.Errorf("pgm: reading raster: %w", err)
		}
		return im, nil
	}
	for i := range im.Pix {
		v, err := nextInt(br)
		if err != nil {
			return nil, fmt.Errorf("pgm: reading pixel %d: %w", i, err)
		}
		if v < 0 || v > maxval {
			return nil, fmt.Errorf("pgm: pixel value %d out of range", v)
		}
		im.Pix[i] = uint8(v)
	}
	return im, nil
}

// nextToken returns the next whitespace-delimited token, skipping
// '#'-to-end-of-line comments, and consumes the single whitespace byte
// that terminates it.
func nextToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func nextInt(br *bufio.Reader) (int, error) {
	tok, err := nextToken(br)
	if err != nil {
		return 0, err
	}
	n := 0
	if len(tok) == 0 {
		return 0, errors.New("empty token")
	}
	for _, c := range []byte(tok) {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer %q", tok)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("integer %q too large", tok)
		}
	}
	return n, nil
}
