package pgm

import (
	"bytes"
	"testing"
)

// FuzzDecode ensures the PGM decoder never panics or hangs on arbitrary
// input, and that anything it accepts round-trips losslessly.
func FuzzDecode(f *testing.F) {
	im := NewImage(3, 2)
	im.Pix = []uint8{0, 1, 2, 253, 254, 255}
	var bin, ascii bytes.Buffer
	if err := Encode(&bin, im); err != nil {
		f.Fatal(err)
	}
	if err := EncodeASCII(&ascii, im); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(ascii.Bytes())
	f.Add([]byte("P5\n1 1\n255\nx"))
	f.Add([]byte("P2\n# comment\n2 1\n255\n0 255\n"))
	f.Add([]byte("P6\nnot a graymap"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.Width <= 0 || im.Height <= 0 || len(im.Pix) != im.Width*im.Height {
			t.Fatalf("accepted image with inconsistent shape: %dx%d, %d pixels",
				im.Width, im.Height, len(im.Pix))
		}
		var buf bytes.Buffer
		if err := Encode(&buf, im); err != nil {
			t.Fatalf("re-encoding accepted image: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decoding re-encoded image: %v", err)
		}
		if !bytes.Equal(back.Pix, im.Pix) {
			t.Fatal("accepted image does not round-trip")
		}
	})
}
