package pgm

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint8(rng.IntN(256))
	}
	return im
}

func TestRoundTripBinary(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 1))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {64, 64}, {17, 5}} {
		im := randomImage(rng, dims[0], dims[1])
		var buf bytes.Buffer
		if err := Encode(&buf, im); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Width != im.Width || got.Height != im.Height {
			t.Fatalf("dims %dx%d, want %dx%d", got.Width, got.Height, im.Width, im.Height)
		}
		if !bytes.Equal(got.Pix, im.Pix) {
			t.Fatal("pixels differ after binary round trip")
		}
	}
}

func TestRoundTripASCII(t *testing.T) {
	rng := rand.New(rand.NewPCG(72, 1))
	im := randomImage(rng, 9, 4)
	var buf bytes.Buffer
	if err := EncodeASCII(&buf, im); err != nil {
		t.Fatalf("EncodeASCII: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Fatal("pixels differ after ASCII round trip")
	}
}

func TestDecodeWithComments(t *testing.T) {
	src := "P2\n# a comment\n2 2\n# another\n255\n0 64\n128 255\n"
	im, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := []uint8{0, 64, 128, 255}
	if !bytes.Equal(im.Pix, want) {
		t.Errorf("Pix = %v, want %v", im.Pix, want)
	}
}

func TestDecodeBinaryRasterStartingWithWhitespaceByte(t *testing.T) {
	// A raster whose first pixel is 0x20 (the ASCII space) must not be
	// eaten by header parsing.
	im := NewImage(2, 1)
	im.Pix[0], im.Pix[1] = ' ', '\n'
	var buf bytes.Buffer
	if err := Encode(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Errorf("Pix = %v, want %v", got.Pix, im.Pix)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":      "P6\n2 2\n255\n....",
		"truncated":      "P5\n4 4\n255\nxx",
		"zero width":     "P5\n0 2\n255\n",
		"huge maxval":    "P5\n1 1\n65535\n\x00\x00",
		"negative-ish":   "P5\n-1 2\n255\n",
		"garbage number": "P2\n2 2\n255\n1 2 3 four\n",
		"empty":          "",
	}
	for name, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Decode succeeded, want error", name)
		}
	}
}

func TestImageDistances(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	b.Pix = []uint8{3, 0, 4, 0}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %g, want 7", got)
	}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %g, want 5", got)
	}
	if got := L2(a, a); got != 0 {
		t.Errorf("L2(a,a) = %g", got)
	}
}

func TestImageDistanceDimsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L1 on mismatched dims did not panic")
		}
	}()
	L1(NewImage(2, 2), NewImage(2, 3))
}

func TestL1DominatesL2(t *testing.T) {
	// ‖x‖₂ ≤ ‖x‖₁ always.
	rng := rand.New(rand.NewPCG(73, 1))
	for i := 0; i < 50; i++ {
		a := randomImage(rng, 8, 8)
		b := randomImage(rng, 8, 8)
		if L2(a, b) > L1(a, b)+1e-9 {
			t.Fatal("L2 exceeded L1")
		}
	}
}

func TestHistogram256(t *testing.T) {
	im := NewImage(4, 1)
	im.Pix = []uint8{0, 0, 255, 7}
	h := im.Histogram256()
	if len(h) != 256 || h[0] != 2 || h[255] != 1 || h[7] != 1 {
		t.Errorf("Histogram256 = h[0]=%g h[7]=%g h[255]=%g", h[0], h[7], h[255])
	}
	var total float64
	for _, v := range h {
		total += v
	}
	if total != 4 {
		t.Errorf("histogram mass = %g, want 4", total)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewImage(2, 2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Error("Clone shares pixel storage")
	}
}

func TestSetAt(t *testing.T) {
	im := NewImage(3, 2)
	im.Set(2, 1, 42)
	if im.At(2, 1) != 42 || im.Pix[5] != 42 {
		t.Error("Set/At row-major addressing wrong")
	}
}

func TestL2IsMetricOnSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(74, 1))
	imgs := make([]*Image, 6)
	for i := range imgs {
		imgs[i] = randomImage(rng, 6, 6)
	}
	for i := range imgs {
		for j := range imgs {
			for k := range imgs {
				if L2(imgs[i], imgs[j]) > L2(imgs[i], imgs[k])+L2(imgs[k], imgs[j])+1e-9 {
					t.Fatal("image L2 violates triangle inequality")
				}
			}
			if math.Abs(L2(imgs[i], imgs[j])-L2(imgs[j], imgs[i])) != 0 {
				t.Fatal("image L2 asymmetric")
			}
		}
	}
}
