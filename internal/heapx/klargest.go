package heapx

import "mvptree/internal/index"

// KLargest keeps the k largest-distance neighbors seen so far — the
// mirror of KBest, used by the farthest-neighbor queries the paper lists
// among the similarity-query variants (§2). It is a min-heap on distance
// so the current weakest candidate is inspectable in O(1).
type KLargest[T any] struct {
	k     int
	items []index.Neighbor[T]
}

// NewKLargest returns a KLargest that retains at most k neighbors. k
// must be positive or NewKLargest panics.
func NewKLargest[T any](k int) *KLargest[T] {
	if k <= 0 {
		panic("heapx: NewKLargest requires k > 0")
	}
	return &KLargest[T]{k: k, items: make([]index.Neighbor[T], 0, k)}
}

// Len reports how many neighbors are currently held (≤ k).
func (h *KLargest[T]) Len() int { return len(h.items) }

// Full reports whether k neighbors are held.
func (h *KLargest[T]) Full() bool { return len(h.items) == h.k }

// Accepts reports whether a candidate at distance d would be kept.
func (h *KLargest[T]) Accepts(d float64) bool {
	if !h.Full() {
		return true
	}
	return d > h.items[0].Dist
}

// Push offers a candidate; it is kept only if it is among the k largest.
func (h *KLargest[T]) Push(item T, d float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, index.Neighbor[T]{Item: item, Dist: d})
		h.up(len(h.items) - 1)
		return
	}
	if d <= h.items[0].Dist {
		return
	}
	h.items[0] = index.Neighbor[T]{Item: item, Dist: d}
	h.down(0)
}

// Sorted removes and returns all held neighbors ordered by descending
// distance (farthest first). The heap is empty afterwards.
func (h *KLargest[T]) Sorted() []index.Neighbor[T] {
	out := make([]index.Neighbor[T], len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.down(0)
		}
	}
	return out
}

func (h *KLargest[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[i].Dist >= h.items[parent].Dist {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *KLargest[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].Dist < h.items[small].Dist {
			small = l
		}
		if r < n && h.items[r].Dist < h.items[small].Dist {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
