package heapx

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestKBestKeepsSmallest(t *testing.T) {
	h := NewKBest[int](3)
	dists := []float64{5, 1, 9, 3, 7, 2, 8}
	for i, d := range dists {
		h.Push(i, d)
	}
	got := h.Sorted()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	wantDists := []float64{1, 2, 3}
	for i, n := range got {
		if n.Dist != wantDists[i] {
			t.Errorf("Sorted()[%d].Dist = %g, want %g", i, n.Dist, wantDists[i])
		}
	}
}

func TestKBestUnderfull(t *testing.T) {
	h := NewKBest[string](10)
	h.Push("a", 2)
	h.Push("b", 1)
	if h.Full() {
		t.Error("heap reports full with 2/10 items")
	}
	if _, ok := h.Bound(); ok {
		t.Error("underfull heap reported a bound")
	}
	got := h.Sorted()
	if len(got) != 2 || got[0].Item != "b" || got[1].Item != "a" {
		t.Errorf("Sorted() = %v", got)
	}
}

func TestKBestBoundAndAccepts(t *testing.T) {
	h := NewKBest[int](2)
	h.Push(0, 4)
	h.Push(1, 6)
	if w, ok := h.Bound(); !ok || w != 6 {
		t.Errorf("Bound() = %g, %v; want 6, true", w, ok)
	}
	if h.Accepts(6) {
		t.Error("Accepts(6) = true with bound 6; equal distance must be rejected")
	}
	if !h.Accepts(5.9) {
		t.Error("Accepts(5.9) = false with bound 6")
	}
	h.Push(2, 1)
	if w, _ := h.Bound(); w != 4 {
		t.Errorf("bound after displacement = %g, want 4", w)
	}
}

func TestKBestPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKBest(0) did not panic")
		}
	}()
	NewKBest[int](0)
}

// Property: KBest(k) over any distance sequence returns exactly the k
// smallest distances in ascending order.
func TestKBestMatchesSortQuick(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		h := NewKBest[int](k)
		clean := make([]float64, 0, len(raw))
		for i, d := range raw {
			if d != d || d < 0 { // skip NaN and negatives; distances are non-negative
				continue
			}
			clean = append(clean, d)
			h.Push(i, d)
		}
		sort.Float64s(clean)
		want := clean
		if len(want) > k {
			want = want[:k]
		}
		got := h.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodeQueueOrdering(t *testing.T) {
	var q NodeQueue[string]
	q.PushNode("c", 3)
	q.PushNode("a", 1)
	q.PushNode("d", 4)
	q.PushNode("b", 2)
	want := []string{"a", "b", "c", "d"}
	for _, w := range want {
		n, _, ok := q.PopNode()
		if !ok || n != w {
			t.Fatalf("PopNode() = %q, %v; want %q", n, ok, w)
		}
	}
	if _, _, ok := q.PopNode(); ok {
		t.Error("PopNode on empty queue returned ok")
	}
}

func TestNodeQueueRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	var q NodeQueue[int]
	var bounds []float64
	for i := 0; i < 500; i++ {
		b := rng.Float64()
		bounds = append(bounds, b)
		q.PushNode(i, b)
	}
	sort.Float64s(bounds)
	for i, want := range bounds {
		_, b, ok := q.PopNode()
		if !ok {
			t.Fatalf("queue empty after %d pops, want 500", i)
		}
		if b != want {
			t.Fatalf("pop %d: bound = %g, want %g", i, b, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len() = %d after draining", q.Len())
	}
}

func TestNodeQueueInterleaved(t *testing.T) {
	var q NodeQueue[int]
	q.PushNode(1, 10)
	q.PushNode(2, 1)
	if n, _, _ := q.PopNode(); n != 2 {
		t.Fatalf("got %d, want 2", n)
	}
	q.PushNode(3, 5)
	q.PushNode(4, 20)
	if n, _, _ := q.PopNode(); n != 3 {
		t.Fatalf("got %d, want 3", n)
	}
	if n, _, _ := q.PopNode(); n != 1 {
		t.Fatalf("got %d, want 1", n)
	}
	if n, _, _ := q.PopNode(); n != 4 {
		t.Fatalf("got %d, want 4", n)
	}
}
