// Package heapx provides the two small priority queues used by the
// k-nearest-neighbor search algorithms: a bounded max-heap that keeps the
// k best (smallest-distance) candidates seen so far, and a min-heap of
// pending search nodes ordered by lower-bound distance for best-first
// traversal.
package heapx

import (
	"math"

	"mvptree/internal/index"
)

// inf avoids re-deriving +Inf on the Threshold hot path.
var inf = math.Inf(1)

// KBest keeps the k smallest-distance neighbors seen so far. It is a
// max-heap on distance so the current worst candidate is inspectable in
// O(1) and replaceable in O(log k).
type KBest[T any] struct {
	k     int
	items []index.Neighbor[T]
}

// NewKBest returns a KBest that retains at most k neighbors. k must be
// positive or NewKBest panics.
func NewKBest[T any](k int) *KBest[T] {
	if k <= 0 {
		panic("heapx: NewKBest requires k > 0")
	}
	return &KBest[T]{k: k, items: make([]index.Neighbor[T], 0, k)}
}

// Len reports how many neighbors are currently held (≤ k).
func (h *KBest[T]) Len() int { return len(h.items) }

// Full reports whether k neighbors are held.
func (h *KBest[T]) Full() bool { return len(h.items) == h.k }

// Bound returns the current pruning bound: the k-th best distance if the
// heap is full, or +Inf-like sentinel behaviour via ok=false otherwise.
func (h *KBest[T]) Bound() (worst float64, ok bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Threshold returns the live pruning threshold τ for early-abandoning
// distance kernels: the current k-th best distance when the heap is
// full, +Inf otherwise. Any candidate whose distance provably exceeds
// Threshold() would be rejected by Push, so an abandoned (understated)
// distance > τ is safe to offer.
func (h *KBest[T]) Threshold() float64 {
	if !h.Full() {
		return inf
	}
	return h.items[0].Dist
}

// Reset empties the heap and re-arms it for at most k neighbors,
// retaining the backing array so a pooled KBest can serve queries with
// varying k without reallocating (the slice grows only when k exceeds
// every previous capacity). k must be positive or Reset panics.
func (h *KBest[T]) Reset(k int) {
	if k <= 0 {
		panic("heapx: Reset requires k > 0")
	}
	h.k = k
	if cap(h.items) < k {
		h.items = make([]index.Neighbor[T], 0, k)
	} else {
		clear(h.items)
		h.items = h.items[:0]
	}
}

// Accepts reports whether a candidate at distance d would be kept.
func (h *KBest[T]) Accepts(d float64) bool {
	if !h.Full() {
		return true
	}
	return d < h.items[0].Dist
}

// Push offers a candidate; it is kept only if it is among the k best.
func (h *KBest[T]) Push(item T, d float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, index.Neighbor[T]{Item: item, Dist: d})
		h.up(len(h.items) - 1)
		return
	}
	if d >= h.items[0].Dist {
		return
	}
	h.items[0] = index.Neighbor[T]{Item: item, Dist: d}
	h.down(0)
}

// Sorted removes and returns all held neighbors ordered by ascending
// distance. The heap is empty afterwards.
func (h *KBest[T]) Sorted() []index.Neighbor[T] {
	out := make([]index.Neighbor[T], len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.down(0)
		}
	}
	return out
}

func (h *KBest[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[i].Dist <= h.items[parent].Dist {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *KBest[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.items[l].Dist > h.items[big].Dist {
			big = l
		}
		if r < n && h.items[r].Dist > h.items[big].Dist {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

// NodeQueue is a min-heap of pending search nodes keyed by a lower bound
// on the distance from the query to anything inside the node. Best-first
// kNN search pops the most promising node first and stops once the best
// lower bound exceeds the current k-th neighbor distance.
type NodeQueue[N any] struct {
	nodes  []N
	bounds []float64
}

// PushNode adds a node with the given lower bound.
func (q *NodeQueue[N]) PushNode(n N, bound float64) {
	q.nodes = append(q.nodes, n)
	q.bounds = append(q.bounds, bound)
	i := len(q.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.bounds[i] >= q.bounds[parent] {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// PopNode removes and returns the node with the smallest lower bound.
// ok is false when the queue is empty.
func (q *NodeQueue[N]) PopNode() (n N, bound float64, ok bool) {
	if len(q.nodes) == 0 {
		return n, 0, false
	}
	n, bound = q.nodes[0], q.bounds[0]
	last := len(q.nodes) - 1
	q.swap(0, last)
	q.nodes = q.nodes[:last]
	q.bounds = q.bounds[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.bounds[l] < q.bounds[small] {
			small = l
		}
		if r < last && q.bounds[r] < q.bounds[small] {
			small = r
		}
		if small == i {
			break
		}
		q.swap(i, small)
		i = small
	}
	return n, bound, true
}

// Len reports the number of pending nodes.
func (q *NodeQueue[N]) Len() int { return len(q.nodes) }

// Reset empties the queue, retaining both backing arrays so a pooled
// NodeQueue serves subsequent queries without reallocating.
func (q *NodeQueue[N]) Reset() {
	clear(q.nodes)
	q.nodes = q.nodes[:0]
	q.bounds = q.bounds[:0]
}

func (q *NodeQueue[N]) swap(i, j int) {
	q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i]
	q.bounds[i], q.bounds[j] = q.bounds[j], q.bounds[i]
}
