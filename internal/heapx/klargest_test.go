package heapx

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKLargestKeepsLargest(t *testing.T) {
	h := NewKLargest[int](3)
	for i, d := range []float64{5, 1, 9, 3, 7, 2, 8} {
		h.Push(i, d)
	}
	got := h.Sorted()
	want := []float64{9, 8, 7}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, n := range got {
		if n.Dist != want[i] {
			t.Errorf("Sorted()[%d].Dist = %g, want %g", i, n.Dist, want[i])
		}
	}
}

func TestKLargestAccepts(t *testing.T) {
	h := NewKLargest[int](2)
	h.Push(0, 4)
	h.Push(1, 6)
	if h.Accepts(4) {
		t.Error("Accepts(4) with weakest 4; equal must be rejected")
	}
	if !h.Accepts(4.1) {
		t.Error("Accepts(4.1) = false")
	}
	h.Push(2, 10)
	got := h.Sorted()
	if got[0].Dist != 10 || got[1].Dist != 6 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestKLargestPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKLargest(0) did not panic")
		}
	}()
	NewKLargest[int](0)
}

func TestKLargestMatchesSortQuick(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		h := NewKLargest[int](k)
		clean := make([]float64, 0, len(raw))
		for i, d := range raw {
			if d != d || d < 0 {
				continue
			}
			clean = append(clean, d)
			h.Push(i, d)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(clean)))
		want := clean
		if len(want) > k {
			want = want[:k]
		}
		got := h.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
