package linear

import (
	"fmt"
	"sync"

	"mvptree/internal/build"
	"mvptree/internal/metric"
	"mvptree/internal/quant"
)

// EnableQuantize builds the quantized pre-filter for the scan: the
// item vectors are encoded into one companion arena (SQ8 byte codes or
// float32 copies, internal/quant) that Range and KNN consult before
// the exact kernel — a candidate whose quantized lower bound certifies
// its distance exceeds the query threshold skips the float64
// evaluation. The skip is charged to the distance counter and to
// SearchStats.Computed exactly as the abandoned kernel call would have
// been, so results, order, per-query stats and counter deltas are
// byte-identical with the filter on or off. Skipped evaluations
// surface as FilterQuantized trace events and in the Observer's
// filtered_by_quantized total.
//
// The filter applies only to []float64 items under a metric whose
// kernel registered a quantized lower-bound shape
// (metric.RegisterQuantized); any other scan, and any dataset
// quant.Build rejects, is left unfiltered silently. mode Off tears the
// filter down. The approximate Search paths do not consult the filter.
//
// EnableQuantize is not synchronized with in-flight queries: arm the
// filter before serving.
func (s *Scan[T]) EnableQuantize(mode quant.Mode) error {
	if mode == quant.Off {
		s.qset, s.qcodes, s.qf32 = nil, nil, nil
		return nil
	}
	if mode != quant.SQ8 && mode != quant.F32 {
		return fmt.Errorf("linear: unknown quantize mode %v", mode)
	}
	if len(s.items) == 0 {
		return nil
	}
	kind := s.dist.QuantKind()
	if kind == metric.QuantNone {
		return nil
	}
	q, ok := build.QuantizeVectors([][]T{s.items}, kind, mode)
	if !ok {
		return nil
	}
	s.qset, s.qcodes, s.qf32 = nil, nil, nil
	if mode == quant.SQ8 {
		s.qcodes = q.Codes[0]
	} else {
		s.qf32 = q.F32s[0]
	}
	s.qset = q.Set
	return nil
}

// Quantized reports the trained pre-filter, nil unless EnableQuantize
// armed one.
func (s *Scan[T]) Quantized() *quant.Set { return s.qset }

// qprepPool recycles query-side threshold tables across the scan's
// concurrent queries (the scan has no per-query scratch of its own to
// hang them on).
var qprepPool = sync.Pool{New: func() any { return new(quant.Prepared) }}

// prepareQuant arms a pooled Prepared for one query, nil when the
// filter is off or the query is not a vector.
func (s *Scan[T]) prepareQuant(q T) *quant.Prepared {
	if s.qset == nil {
		return nil
	}
	qv, ok := any(q).([]float64)
	if !ok {
		return nil
	}
	p := qprepPool.Get().(*quant.Prepared)
	s.qset.Prepare(p, qv)
	return p
}

// releaseQuant returns the query's Prepared to the pool and flushes
// the skipped-evaluation tally to the Observer.
func (s *Scan[T]) releaseQuant(p *quant.Prepared, pruned int) {
	if p == nil {
		return
	}
	p.Release()
	qprepPool.Put(p)
	s.ObserveQuantPruned(pruned)
}
