package linear

import (
	"testing"

	"mvptree/internal/metric"
)

func TestRangeExactCost(t *testing.T) {
	items := [][]float64{{0}, {1}, {2}, {3}}
	c := metric.NewCounter(metric.L2)
	s := New(items, c)
	if s.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", s.Len())
	}
	c.Reset()
	got := s.Range([]float64{1.4}, 0.5)
	if c.Count() != 4 {
		t.Errorf("Range cost = %d, want exactly n = 4", c.Count())
	}
	if len(got) != 1 || got[0][0] != 1 {
		t.Errorf("Range = %v, want [[1]]", got)
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	c := metric.NewCounter(metric.L2)
	s := New([][]float64{{0}, {2}}, c)
	if got := s.Range([]float64{0}, 2); len(got) != 2 {
		t.Errorf("Range(0, 2) = %v; boundary must be inclusive", got)
	}
}

func TestKNNOrderingAndBounds(t *testing.T) {
	items := [][]float64{{5}, {1}, {3}, {2}, {4}}
	c := metric.NewCounter(metric.L2)
	s := New(items, c)
	nn := s.KNN([]float64{0}, 3)
	want := []float64{1, 2, 3}
	if len(nn) != 3 {
		t.Fatalf("KNN returned %d items", len(nn))
	}
	for i, n := range nn {
		if n.Dist != want[i] {
			t.Errorf("KNN[%d].Dist = %g, want %g", i, n.Dist, want[i])
		}
	}
	if got := s.KNN([]float64{0}, 100); len(got) != 5 {
		t.Errorf("KNN(k>n) returned %d, want 5", len(got))
	}
	if got := s.KNN([]float64{0}, 0); got != nil {
		t.Errorf("KNN(0) = %v", got)
	}
}

func TestItemsCopied(t *testing.T) {
	items := [][]float64{{0}}
	c := metric.NewCounter(metric.L2)
	s := New(items, c)
	items[0] = []float64{99} // mutating the caller's slice header must not matter
	if got := s.Range([]float64{0}, 0.1); len(got) != 1 {
		t.Errorf("index affected by caller mutation: %v", got)
	}
}

func TestEmpty(t *testing.T) {
	c := metric.NewCounter(metric.L2)
	s := New(nil, c)
	if s.Len() != 0 || s.Range([]float64{0}, 1) != nil || s.KNN([]float64{0}, 2) != nil {
		t.Error("empty scan misbehaves")
	}
}

func TestFarthestQueries(t *testing.T) {
	items := [][]float64{{0}, {1}, {5}, {9}}
	c := metric.NewCounter(metric.L2)
	s := New(items, c)
	far := s.RangeFarther([]float64{0}, 5)
	if len(far) != 2 {
		t.Errorf("RangeFarther = %v, want the two items at distance ≥ 5", far)
	}
	kf := s.KFarthest([]float64{0}, 2)
	if len(kf) != 2 || kf[0].Dist != 9 || kf[1].Dist != 5 {
		t.Errorf("KFarthest = %v", kf)
	}
	if got := s.KFarthest([]float64{0}, 0); got != nil {
		t.Errorf("KFarthest(0) = %v", got)
	}
}
