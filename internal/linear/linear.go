// Package linear implements brute-force similarity search by scanning
// every indexed item. It is the ground truth the tree structures are
// validated against and the worst-case baseline in the benchmarks: a
// range query always costs exactly n distance computations.
//
// Queries (Range, KNN and their variants) read only immutable state and
// are safe to run concurrently against one instance; the shared
// distance counter is atomic.
package linear

import (
	"mvptree/internal/heapx"
	"mvptree/internal/index"
	"mvptree/internal/metric"
)

// Scan is a linear-scan index over a fixed item set.
type Scan[T any] struct {
	items []T
	dist  *metric.Counter[T]
}

var _ index.Index[int] = (*Scan[int])(nil)

// New returns a Scan over items measuring distances through dist. The
// item slice is copied.
func New[T any](items []T, dist *metric.Counter[T]) *Scan[T] {
	s := &Scan[T]{items: make([]T, len(items)), dist: dist}
	copy(s.items, items)
	return s
}

// Len reports the number of indexed items.
func (s *Scan[T]) Len() int { return len(s.items) }

// Counter returns the counted metric the scan measures distances with.
func (s *Scan[T]) Counter() *metric.Counter[T] { return s.dist }

// Range returns every item within distance r of q, computing exactly
// Len() distances.
func (s *Scan[T]) Range(q T, r float64) []T {
	var out []T
	for _, it := range s.items {
		if s.dist.Distance(q, it) <= r {
			out = append(out, it)
		}
	}
	return out
}

// KNN returns the k items nearest to q in ascending distance order.
func (s *Scan[T]) KNN(q T, k int) []index.Neighbor[T] {
	if k <= 0 || len(s.items) == 0 {
		return nil
	}
	h := heapx.NewKBest[T](k)
	for _, it := range s.items {
		h.Push(it, s.dist.Distance(q, it))
	}
	return h.Sorted()
}
